package qosres_test

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"qosres"
)

// buildTinyService exercises the public API the way a downstream user
// would.
func buildTinyService(t *testing.T) (*qosres.Service, qosres.Binding) {
	t.Helper()
	hi := qosres.MustVector(qosres.P("rate", 30))
	lo := qosres.MustVector(qosres.P("rate", 15))
	src := &qosres.Component{
		ID:  "src",
		In:  []qosres.Level{{Name: "in", Vector: hi}},
		Out: []qosres.Level{{Name: "hi", Vector: hi}, {Name: "lo", Vector: lo}},
		Translate: qosres.TranslationTable{
			"in": {"hi": qosres.ResourceVector{"cpu": 50}, "lo": qosres.ResourceVector{"cpu": 20}},
		}.Func(),
		Resources: []string{"cpu"},
	}
	dst := &qosres.Component{
		ID:  "dst",
		In:  []qosres.Level{{Name: "d-hi", Vector: hi}, {Name: "d-lo", Vector: lo}},
		Out: []qosres.Level{{Name: "good", Vector: qosres.MustVector(qosres.P("rate", 30), qosres.P("d", 1))}, {Name: "poor", Vector: qosres.MustVector(qosres.P("rate", 15), qosres.P("d", 2))}},
		Translate: qosres.TranslationTable{
			"d-hi": {"good": qosres.ResourceVector{"net": 60}},
			"d-lo": {"good": qosres.ResourceVector{"net": 90}, "poor": qosres.ResourceVector{"net": 30}},
		}.Func(),
		Resources: []string{"net"},
	}
	s, err := qosres.NewService("tiny", []*qosres.Component{src, dst},
		[]qosres.ServiceEdge{{From: "src", To: "dst"}}, []string{"good", "poor"})
	if err != nil {
		t.Fatal(err)
	}
	return s, qosres.Binding{
		"src": {"cpu": "cpu@a"},
		"dst": {"net": "net@a"},
	}
}

func TestPublicAPIQuickstartFlow(t *testing.T) {
	service, binding := buildTinyService(t)
	pool := qosres.NewPool(nil)
	if _, err := pool.AddLocal("cpu", "a", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.AddLocal("net", "a", 100); err != nil {
		t.Fatal(err)
	}
	snap, err := pool.Snapshot(0, []string{"cpu@a", "net@a"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := qosres.BuildQRG(service, binding, snap)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := qosres.NewBasicPlanner().Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if plan.EndToEnd.Name != "good" || plan.Psi != 0.6 {
		t.Fatalf("plan = %s / %v", plan.EndToEnd.Name, plan.Psi)
	}
	res, err := pool.ReserveAll(0, plan.Requirement())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Release(1); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIVectorOrdering(t *testing.T) {
	a := qosres.MustVector(qosres.P("x", 1), qosres.P("y", 2))
	b := qosres.MustVector(qosres.P("x", 2), qosres.P("y", 2))
	ord, err := a.Compare(b)
	if err != nil || ord != qosres.Less {
		t.Fatalf("Compare = %v, %v", ord, err)
	}
	if qosres.Incomparable == qosres.Equal {
		t.Fatal("ordering constants collide")
	}
}

func TestPublicAPIInfeasible(t *testing.T) {
	service, binding := buildTinyService(t)
	snap := &qosres.Snapshot{Avail: qosres.ResourceVector{"cpu@a": 5, "net@a": 5}, Alpha: map[string]float64{}}
	g, err := qosres.BuildQRG(service, binding, snap)
	if err != nil {
		t.Fatal(err)
	}
	_, err = qosres.NewBasicPlanner().Plan(g)
	if !errors.Is(err, qosres.ErrInfeasible) {
		t.Fatalf("err = %v, want qosres.ErrInfeasible", err)
	}
}

func TestPublicAPIPlanners(t *testing.T) {
	service, binding := buildTinyService(t)
	snap := &qosres.Snapshot{Avail: qosres.ResourceVector{"cpu@a": 100, "net@a": 100}, Alpha: map[string]float64{"cpu@a": 1, "net@a": 1}}
	g, err := qosres.BuildQRG(service, binding, snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []qosres.Planner{
		qosres.NewBasicPlanner(),
		qosres.NewTradeoffPlanner(),
		qosres.NewRandomPlanner(1),
		qosres.NewTwoPassPlanner(),
		qosres.NewExhaustivePlanner(),
	} {
		plan, err := p.Plan(g)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if plan.EndToEnd.Name != "good" {
			t.Errorf("%s picked %s", p.Name(), plan.EndToEnd.Name)
		}
	}
}

func TestPublicAPITopology(t *testing.T) {
	topo := qosres.Figure9Topology()
	if len(topo.Hosts()) != 12 || len(topo.Links()) != 14 {
		t.Fatalf("figure 9 shape wrong: %d hosts, %d links", len(topo.Hosts()), len(topo.Links()))
	}
	custom, err := qosres.NewTopology(
		[]qosres.HostID{"a", "b"},
		[]qosres.Link{{ID: "l", A: "a", B: "b"}})
	if err != nil {
		t.Fatal(err)
	}
	route, err := custom.Route("a", "b")
	if err != nil || len(route) != 1 {
		t.Fatalf("route = %v, %v", route, err)
	}
}

func TestPublicAPISimulation(t *testing.T) {
	cfg := qosres.DefaultSimConfig(qosres.SimBasic, 120, 9)
	cfg.Duration = 600
	res, err := qosres.RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Overall.Attempts == 0 {
		t.Fatal("no sessions simulated")
	}
	rate := res.Metrics.Overall.SuccessRate()
	if rate <= 0 || rate > 1 {
		t.Fatalf("success rate = %v", rate)
	}
}

func TestPublicAPIRuntime(t *testing.T) {
	service, binding := buildTinyService(t)
	clock := &qosres.ManualClock{}
	rt := qosres.NewRuntime(clock)
	if _, err := rt.AddHost("a"); err != nil {
		t.Fatal(err)
	}
	cpu, err := qosres.NewLocalBroker("cpu@a", 100)
	if err != nil {
		t.Fatal(err)
	}
	net, err := qosres.NewLocalBroker("net@a", 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Deploy("a", cpu); err != nil {
		t.Fatal(err)
	}
	if err := rt.Deploy("a", net); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	session, err := rt.Establish("a", qosres.SessionSpec{
		Service: service, Binding: binding, Planner: qosres.NewBasicPlanner(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if session.Plan.EndToEnd.Name != "good" {
		t.Fatalf("end-to-end = %s", session.Plan.EndToEnd.Name)
	}
	clock.Advance(10)
	if err := session.Release(); err != nil {
		t.Fatal(err)
	}
	if cpu.Available() != 100 || net.Available() != 100 {
		t.Fatal("release did not restore availability")
	}
}

func TestFacadeWrapperCoverage(t *testing.T) {
	// Exercise the thin facade wrappers end to end.
	if qosres.NewWallClock(2) == nil {
		t.Fatal("NewWallClock")
	}
	ring := qosres.NewTraceRing(4)
	var buf bytes.Buffer
	csvT, err := qosres.NewTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := qosres.DefaultSimConfig(qosres.SimTradeoff, 90, 2)
	cfg.Duration = 300
	cfg.Tracer = qosres.TraceMulti{ring, csvT}
	res, err := qosres.RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Len() == 0 {
		t.Fatal("ring tracer empty")
	}
	if err := csvT.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("csv tracer empty")
	}
	_ = res

	service, binding := buildTinyService(t)
	snap := &qosres.Snapshot{
		Avail: qosres.ResourceVector{"cpu@a": 100, "net@a": 100},
		Alpha: map[string]float64{},
	}
	g, err := qosres.BuildQRG(service, binding, snap)
	if err != nil {
		t.Fatal(err)
	}
	counts := qosres.FeasiblePlanCounts(g)
	if len(counts) == 0 {
		t.Fatal("no plan counts")
	}
	plan, err := qosres.NewBasicPlanner().Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := qosres.ValidatePlan(g, plan); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.DOT(), "digraph QRG") {
		t.Fatal("DOT export broken through facade")
	}

	rngPlanner := qosres.NewRandomPlannerRNG(rand.New(rand.NewSource(1)))
	if _, err := rngPlanner.Plan(g); err != nil {
		t.Fatal(err)
	}

	reg := qosres.NewAdvanceRegistry()
	if _, err := reg.Add("cpu@a", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("net@a", 100); err != nil {
		t.Fatal(err)
	}
	adm := &qosres.AdvanceAdmission{
		Registry: reg, Service: service, Binding: binding,
		Planner: qosres.NewBasicPlanner(),
	}
	start, _, booking, err := adm.EarliestFeasible(0, 100, 10, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if start != 0 {
		t.Fatalf("earliest = %v", start)
	}
	if err := booking.Release(); err != nil {
		t.Fatal(err)
	}
	if qosres.ErrNoWindow == nil || qosres.ErrInsufficient == nil || qosres.ErrInfeasible == nil {
		t.Fatal("sentinel errors missing")
	}
}
