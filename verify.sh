#!/usr/bin/env bash
# Repository verification gate: static checks, a full build, and the
# test suite under the race detector. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race -shuffle=on ./..."
# -shuffle=on randomizes test (and subtest) execution order so
# order-dependent tests fail loudly instead of passing by accident; the
# chosen seed is printed for replay with -shuffle=<seed>.
go test -race -shuffle=on ./...

echo "verify: OK"
