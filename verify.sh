#!/usr/bin/env bash
# Repository verification gate: static checks, a full build, and the
# test suite under the race detector. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "verify: OK"
