// Package qosres is a Go implementation of the QoS and contention-aware
// multi-resource reservation framework of Xu, Nahrstedt and Wichadakul
// (HPDC 2000): a component-based QoS-Resource Model for distributed
// services, Resource Brokers with two-level end-to-end network resource
// management, QoSProxy coordinators, and the runtime algorithms that
// compute end-to-end multi-resource reservation plans over a
// QoS-Resource Graph (QRG).
//
// The package is a facade re-exporting the library's public surface:
//
//   - the QoS-Resource Model: Vector, ResourceVector, Level, Component,
//     Service, TranslationTable, Binding;
//   - QRG construction (BuildQRG) and the planners: NewBasicPlanner
//     (max-plus Dijkstra, section 4.1), NewTradeoffPlanner (availability
//     trend policy, section 4.3.1), NewTwoPassPlanner (DAG heuristic,
//     section 4.3.2), NewRandomPlanner (contention-unaware baseline) and
//     NewExhaustivePlanner (exact embedded-graph optimum, for small
//     services);
//   - the reservation-enabled environment: Pool, Local and Network
//     brokers, Topology;
//   - the QoSProxy runtime architecture: Runtime, Session;
//   - the paper's simulation study: SimConfig, RunSimulation.
//
// See README.md for a quickstart and DESIGN.md for the system inventory.
package qosres

import (
	"io"
	"math/rand"

	"qosres/internal/advance"
	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/proxy"
	"qosres/internal/qos"
	"qosres/internal/qrg"
	"qosres/internal/sim"
	"qosres/internal/svc"
	"qosres/internal/topo"
	"qosres/internal/trace"
)

// QoS-Resource Model types (sections 2.1-2.2).
type (
	// Vector is an application-level QoS vector of discrete parameters.
	Vector = qos.Vector
	// Param is one named QoS parameter.
	Param = qos.Param
	// Ordering is the result of a partial-order comparison.
	Ordering = qos.Ordering
	// ResourceVector is a resource requirement/availability vector.
	ResourceVector = qos.ResourceVector
	// Level is one discrete QoS level of a component's Qin or Qout.
	Level = svc.Level
	// Component is a service component with its translation function.
	Component = svc.Component
	// ComponentID names a component within a service.
	ComponentID = svc.ComponentID
	// Service is a distributed service: components plus dependency graph.
	Service = svc.Service
	// ServiceEdge is a dependency edge between two components.
	ServiceEdge = svc.Edge
	// TranslationFunc is a component's T_c plug-in function.
	TranslationFunc = svc.TranslationFunc
	// TranslationTable is a table-driven TranslationFunc.
	TranslationTable = svc.TranslationTable
	// Binding maps component-local resource names to concrete resource
	// IDs for one session.
	Binding = svc.Binding
)

// Partial-order results.
const (
	Incomparable = qos.Incomparable
	Less         = qos.Less
	Equal        = qos.Equal
	Greater      = qos.Greater
)

// NewVector builds a QoS vector from parameters.
func NewVector(params ...Param) (Vector, error) { return qos.NewVector(params...) }

// MustVector is NewVector that panics on error.
func MustVector(params ...Param) Vector { return qos.MustVector(params...) }

// P is shorthand for a Param.
func P(name string, value float64) Param { return qos.P(name, value) }

// NewService builds and validates a Service.
func NewService(name string, components []*Component, edges []ServiceEdge, ranking []string) (*Service, error) {
	return svc.NewService(name, components, edges, ranking)
}

// QRG and planning (section 4).
type (
	// Graph is a QoS-Resource Graph.
	Graph = qrg.Graph
	// Snapshot is the availability/α snapshot a QRG is built from.
	Snapshot = broker.Snapshot
	// Plan is an end-to-end multi-resource reservation plan.
	Plan = core.Plan
	// PlanChoice is one component's selected (Qin, Qout, requirement).
	PlanChoice = core.Choice
	// Planner computes plans from QRGs.
	Planner = core.Planner
)

// ErrInfeasible is returned when no feasible end-to-end plan exists.
var ErrInfeasible = core.ErrInfeasible

// BuildQRG constructs the QoS-Resource Graph of one service session
// (section 4.1.1).
func BuildQRG(service *Service, binding Binding, snap *Snapshot) (*Graph, error) {
	return qrg.Build(service, binding, snap)
}

// NewBasicPlanner returns the paper's basic runtime algorithm
// (section 4.1): highest reachable end-to-end QoS, smallest bottleneck
// contention index.
func NewBasicPlanner() Planner { return core.Basic{} }

// NewTradeoffPlanner returns the basic algorithm extended with the
// QoS/success-rate trade-off policy of section 4.3.1.
func NewTradeoffPlanner() Planner { return core.Tradeoff{} }

// NewRandomPlanner returns the contention-unaware baseline of section 5,
// seeded deterministically.
func NewRandomPlanner(seed int64) Planner { return core.NewRandom(seed) }

// NewRandomPlannerRNG returns the baseline over a caller-owned RNG.
func NewRandomPlannerRNG(rng *rand.Rand) Planner { return &core.Random{RNG: rng} }

// NewTwoPassPlanner returns the two-pass heuristic of section 4.3.2 for
// services with DAG dependency graphs.
func NewTwoPassPlanner() Planner { return core.TwoPass{} }

// NewExhaustivePlanner returns the exact embedded-graph enumerator, an
// exponential-time quality baseline for small services.
func NewExhaustivePlanner() Planner { return core.Exhaustive{} }

// ValidatePlan checks that a plan is a consistent, feasible selection
// over the QRG's service and snapshot; use it before reserving plans
// that were persisted, transported, or hand-edited.
func ValidatePlan(g *Graph, p *Plan) error { return core.ValidatePlan(g, p) }

// PlanCount summarizes the feasible plans a QRG admits at one
// end-to-end QoS level.
type PlanCount = core.PlanCount

// FeasiblePlanCounts counts, per end-to-end level (best first), how
// many feasible reservation plans the QRG admits.
func FeasiblePlanCounts(g *Graph) []PlanCount { return core.FeasiblePlanCounts(g) }

// Reservation-enabled environment (section 3).
type (
	// Time is simulation time in the paper's abstract Time Units.
	Time = broker.Time
	// Broker is a Resource Broker.
	Broker = broker.Broker
	// LocalBroker manages one local resource or network link.
	LocalBroker = broker.Local
	// NetworkBroker manages a two-level end-to-end network resource.
	NetworkBroker = broker.Network
	// Pool is the registry of every broker in an environment.
	Pool = broker.Pool
	// MultiReservation backs one end-to-end reservation plan.
	MultiReservation = broker.MultiReservation
	// Report is a broker's availability + change-index report.
	Report = broker.Report
	// ReservationID identifies a reservation at a broker.
	ReservationID = broker.ReservationID
	// Topology is the host/link substrate.
	Topology = topo.Topology
	// HostID identifies an end host.
	HostID = topo.HostID
	// LinkID identifies a network link.
	LinkID = topo.LinkID
	// Link is an undirected network link.
	Link = topo.Link
)

// ErrInsufficient is returned when a reservation exceeds availability.
var ErrInsufficient = broker.ErrInsufficient

// NewLocalBroker creates a broker for one local resource.
func NewLocalBroker(resource string, capacity float64) (*LocalBroker, error) {
	return broker.NewLocal(resource, capacity)
}

// NewPool creates a broker pool over a topology (nil for local-only).
func NewPool(t *Topology) *Pool { return broker.NewPool(t) }

// NewTopology builds a topology with precomputed minimum-hop routes.
func NewTopology(hosts []HostID, links []Link) (*Topology, error) {
	return topo.New(hosts, links)
}

// Figure9Topology builds the paper's simulated environment topology.
func Figure9Topology() *Topology { return topo.Figure9() }

// QoSProxy runtime architecture (section 3).
type (
	// Runtime deploys QoSProxies over hosts.
	Runtime = proxy.Runtime
	// QoSProxy is a per-host reservation coordinator.
	QoSProxy = proxy.QoSProxy
	// Session is an established end-to-end reservation.
	Session = proxy.Session
	// SessionSpec describes a session to establish.
	SessionSpec = proxy.SessionSpec
	// Clock supplies time to a Runtime.
	Clock = proxy.Clock
	// ManualClock is a settable Clock.
	ManualClock = proxy.ManualClock
	// WallClock is a Clock driven by the host's wall time.
	WallClock = proxy.WallClock
	// Skeleton is the distributed-model service shape stored at a main
	// QoSProxy (section 3's distributed model-storage approach).
	Skeleton = proxy.Skeleton
)

// NewWallClock creates a wall clock advancing tuPerSecond Time Units
// per second.
func NewWallClock(tuPerSecond float64) *WallClock { return proxy.NewWallClock(tuPerSecond) }

// NewRuntime creates a QoSProxy runtime over a clock.
func NewRuntime(clock Clock) *Runtime { return proxy.NewRuntime(clock) }

// Advance reservations (the extension named in section 6).
type (
	// AdvanceBook is a single resource's advance-reservation ledger.
	AdvanceBook = advance.Book
	// AdvanceRegistry is the multi-resource advance ledger.
	AdvanceRegistry = advance.Registry
	// AdvanceBooking backs one advance end-to-end reservation plan.
	AdvanceBooking = advance.MultiBooking
	// AdvanceStep is one flat segment of an availability profile.
	AdvanceStep = advance.Step
	// BookingID identifies a booking within an AdvanceBook.
	BookingID = advance.BookingID
)

// NewAdvanceRegistry creates an empty advance-reservation registry.
func NewAdvanceRegistry() *AdvanceRegistry { return advance.NewRegistry() }

// AdvanceAdmission plans and books advance sessions for one service
// against an AdvanceRegistry, including earliest-feasible-window search.
type AdvanceAdmission = advance.Admission

// ErrNoWindow is returned when an earliest-feasible scan exhausts its
// horizon.
var ErrNoWindow = advance.ErrNoWindow

// Simulation study (section 5).
type (
	// SimConfig parameterizes one simulation run.
	SimConfig = sim.Config
	// SimResult is the outcome of one run.
	SimResult = sim.Result
	// SimAlgorithm selects the planning algorithm of a run.
	SimAlgorithm = sim.Algorithm
)

// Session tracing (observability for simulations and runtimes).
type (
	// Tracer consumes session-lifecycle events.
	Tracer = trace.Tracer
	// TraceEvent is one session-lifecycle event.
	TraceEvent = trace.Event
	// TraceKind classifies a TraceEvent.
	TraceKind = trace.Kind
	// TraceRing keeps the last N events in memory.
	TraceRing = trace.Ring
	// TraceCSV streams events as CSV.
	TraceCSV = trace.CSV
	// TraceMulti fans events out to several tracers.
	TraceMulti = trace.Multi
)

// NewTraceRing creates an in-memory ring tracer holding up to n events.
func NewTraceRing(n int) *TraceRing { return trace.NewRing(n) }

// NewTraceCSV creates a CSV tracer over a writer.
func NewTraceCSV(w io.Writer) (*TraceCSV, error) { return trace.NewCSV(w) }

// Simulation algorithms.
const (
	SimBasic    = sim.AlgBasic
	SimTradeoff = sim.AlgTradeoff
	SimRandom   = sim.AlgRandom
)

// DefaultSimConfig returns the paper's simulation parameters.
func DefaultSimConfig(alg SimAlgorithm, rate float64, seed int64) SimConfig {
	return sim.DefaultConfig(alg, rate, seed)
}

// RunSimulation executes one deterministic simulation run.
func RunSimulation(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }
