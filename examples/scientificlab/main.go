// Scientificlab models the "virtual scientific laboratory" distributed
// service the paper's introduction motivates: an instrument streams
// measurement data to a preprocessor, which fans out to a simulation
// engine and a visualization renderer whose outputs a composer joins
// into the end-to-end result the scientist sees (a DAG dependency graph
// with fan-out and fan-in, section 4.3.2).
//
// The deployment exercises the distributed model-storage approach of
// section 3: each component's QoS levels and translation function live
// at the QoSProxy of the host running it, and the main QoSProxy holds
// only the service skeleton — session establishment first assembles the
// model from the owning proxies, then runs the usual three phases.
package main

import (
	"fmt"
	"log"

	"qosres"
)

func level(name string, q float64) qosres.Level {
	return qosres.Level{Name: name, Vector: qosres.MustVector(qosres.P("q", q))}
}

func concat(name string, simOut, vizOut qosres.Level) qosres.Level {
	var params []qosres.Param
	for _, p := range simOut.Vector.Params() {
		params = append(params, qosres.P("Simulator."+p.Name, p.Value))
	}
	for _, p := range vizOut.Vector.Params() {
		params = append(params, qosres.P("Visualizer."+p.Name, p.Value))
	}
	return qosres.Level{Name: name, Vector: qosres.MustVector(params...)}
}

func main() {
	// --- Component models -------------------------------------------
	raw := level("raw", 0)
	fine, coarse := level("fine", 2), level("coarse", 1)
	pFine, pCoarse := level("p-fine", 2), level("p-coarse", 1)
	simHi, simLo := level("sim-hi", 10), level("sim-lo", 11)
	sIn1, sIn2 := level("s-fine", 2), level("s-coarse", 1)
	vizHi, vizLo := level("viz-hi", 20), level("viz-lo", 21)
	vIn1, vIn2 := level("v-fine", 2), level("v-coarse", 1)

	instrument := &qosres.Component{
		ID: "Instrument", In: []qosres.Level{raw},
		Out: []qosres.Level{fine, coarse},
		Translate: qosres.TranslationTable{
			"raw": {"fine": qosres.ResourceVector{"io": 45}, "coarse": qosres.ResourceVector{"io": 18}},
		}.Func(),
		Resources: []string{"io"},
	}
	preprocessor := &qosres.Component{
		ID: "Preprocessor", In: []qosres.Level{pFine, pCoarse},
		Out: []qosres.Level{level("clean-fine", 5), level("clean-coarse", 4)},
		Translate: qosres.TranslationTable{
			"p-fine":   {"clean-fine": qosres.ResourceVector{"cpu": 30, "net": 40}, "clean-coarse": qosres.ResourceVector{"cpu": 12, "net": 40}},
			"p-coarse": {"clean-fine": qosres.ResourceVector{"cpu": 55, "net": 16}, "clean-coarse": qosres.ResourceVector{"cpu": 10, "net": 16}},
		}.Func(),
		Resources: []string{"cpu", "net"},
	}
	// Fix the vector identities: preprocessor inputs equal instrument
	// outputs; simulator/visualizer inputs equal preprocessor outputs.
	preprocessor.In = []qosres.Level{
		{Name: "p-fine", Vector: fine.Vector},
		{Name: "p-coarse", Vector: coarse.Vector},
	}
	cleanFine, cleanCoarse := preprocessor.Out[0], preprocessor.Out[1]
	simulator := &qosres.Component{
		ID: "Simulator",
		In: []qosres.Level{
			{Name: sIn1.Name, Vector: cleanFine.Vector},
			{Name: sIn2.Name, Vector: cleanCoarse.Vector},
		},
		Out: []qosres.Level{simHi, simLo},
		Translate: qosres.TranslationTable{
			"s-fine":   {"sim-hi": qosres.ResourceVector{"cpu": 70}, "sim-lo": qosres.ResourceVector{"cpu": 25}},
			"s-coarse": {"sim-hi": qosres.ResourceVector{"cpu": 95}, "sim-lo": qosres.ResourceVector{"cpu": 30}},
		}.Func(),
		Resources: []string{"cpu"},
	}
	visualizer := &qosres.Component{
		ID: "Visualizer",
		In: []qosres.Level{
			{Name: vIn1.Name, Vector: cleanFine.Vector},
			{Name: vIn2.Name, Vector: cleanCoarse.Vector},
		},
		Out: []qosres.Level{vizHi, vizLo},
		Translate: qosres.TranslationTable{
			"v-fine":   {"viz-hi": qosres.ResourceVector{"gpu": 50}, "viz-lo": qosres.ResourceVector{"gpu": 20}},
			"v-coarse": {"viz-hi": qosres.ResourceVector{"gpu": 75}, "viz-lo": qosres.ResourceVector{"gpu": 22}},
		}.Func(),
		Resources: []string{"gpu"},
	}
	full := concat("both-hi", simHi, vizHi)
	mixed1 := concat("sim-first", simHi, vizLo)
	mixed2 := concat("viz-first", simLo, vizHi)
	lite := concat("both-lo", simLo, vizLo)
	composer := &qosres.Component{
		ID: "Composer",
		In: []qosres.Level{full, mixed1, mixed2, lite},
		Out: []qosres.Level{
			level("insight", 99), level("overview", 98), level("preview", 97),
		},
		Translate: qosres.TranslationTable{
			"both-hi":   {"insight": qosres.ResourceVector{"net": 60}},
			"sim-first": {"overview": qosres.ResourceVector{"net": 40}},
			"viz-first": {"overview": qosres.ResourceVector{"net": 45}},
			"both-lo":   {"preview": qosres.ResourceVector{"net": 20}},
		}.Func(),
		Resources: []string{"net"},
	}

	edges := []qosres.ServiceEdge{
		{From: "Instrument", To: "Preprocessor"},
		{From: "Preprocessor", To: "Simulator"},
		{From: "Preprocessor", To: "Visualizer"},
		{From: "Simulator", To: "Composer"},
		{From: "Visualizer", To: "Composer"},
	}
	ranking := []string{"insight", "overview", "preview"}

	// --- Distributed deployment -------------------------------------
	clock := &qosres.ManualClock{}
	rt := qosres.NewRuntime(clock)
	hosts := map[string]qosres.HostID{
		"Instrument":   "lab",
		"Preprocessor": "edge",
		"Simulator":    "hpc",
		"Visualizer":   "viz",
		"Composer":     "desk",
	}
	seen := map[qosres.HostID]bool{}
	for _, h := range hosts {
		if !seen[h] {
			seen[h] = true
			if _, err := rt.AddHost(h); err != nil {
				log.Fatal(err)
			}
		}
	}
	deploy := func(resource string, host qosres.HostID, capacity float64) {
		b, err := qosres.NewLocalBroker(resource, capacity)
		if err != nil {
			log.Fatal(err)
		}
		if err := rt.Deploy(host, b); err != nil {
			log.Fatal(err)
		}
	}
	deploy("io@lab", "lab", 150)
	deploy("cpu@edge", "edge", 150)
	deploy("net:lab->edge", "edge", 150)
	deploy("cpu@hpc", "hpc", 250)
	deploy("gpu@viz", "viz", 140)
	deploy("net:->desk", "desk", 200)

	// Each component's model lives at the proxy of its host; the main
	// proxy (the lab) stores only the skeleton.
	for _, c := range []*qosres.Component{instrument, preprocessor, simulator, visualizer, composer} {
		if err := rt.StoreComponent(hosts[string(c.ID)], "scilab", c); err != nil {
			log.Fatal(err)
		}
	}
	placement := map[qosres.ComponentID]qosres.HostID{}
	for name, h := range hosts {
		placement[qosres.ComponentID(name)] = h
	}
	if err := rt.StoreSkeleton("lab", qosres.Skeleton{
		Name:      "scilab",
		Placement: placement,
		Edges:     edges,
		Ranking:   ranking,
	}); err != nil {
		log.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()

	binding := qosres.Binding{
		"Instrument":   {"io": "io@lab"},
		"Preprocessor": {"cpu": "cpu@edge", "net": "net:lab->edge"},
		"Simulator":    {"cpu": "cpu@hpc"},
		"Visualizer":   {"gpu": "gpu@viz"},
		"Composer":     {"net": "net:->desk"},
	}

	// --- Sessions ----------------------------------------------------
	fmt.Println("virtual scientific laboratory: Instrument -> Preprocessor -> {Simulator, Visualizer} -> Composer")
	for i := 1; ; i++ {
		clock.Advance(1)
		session, err := rt.EstablishDistributed("lab", "scilab", binding, qosres.NewBasicPlanner())
		if err != nil {
			fmt.Printf("session %d: refused (%v)\n", i, err)
			break
		}
		fmt.Printf("session %d: %-8s  Ψ_G=%.2f  choices:", i, session.Plan.EndToEnd.Name, session.Plan.Psi)
		for _, c := range session.Plan.Choices {
			fmt.Printf(" %s=%s", c.Comp, c.Out.Name)
		}
		fmt.Println()
		if i >= 6 {
			break
		}
	}
}
