// Dagservice reproduces the DAG extension of section 4.3.2 (figures 6,
// 7 and 8): a five-component service c1 -> c2 -> {c3, c4} -> c5 with a
// fan-out component (c2) and a fan-in component (c5) whose input QoS is
// the concatenation of its upstream components' outputs. The program
// runs the two-pass heuristic, shows the fan-out non-convergence being
// resolved locally exactly as in figure 8 (Qi wins over Qh, 0.30 vs
// 0.35), and cross-checks against the exact embedded-graph optimum.
package main

import (
	"fmt"
	"log"

	"qosres"
)

func level(name string, q float64) qosres.Level {
	return qosres.Level{Name: name, Vector: qosres.MustVector(qosres.P("q", q))}
}

func req(w float64) qosres.ResourceVector { return qosres.ResourceVector{"r": w} }

func main() {
	// Distinct "q" values pin down exactly the intended equivalences
	// between adjacent components' levels.
	qa := level("Qa", 5)
	qb, qc := level("Qb", 2), level("Qc", 1)
	qd, qe := level("Qd", 2), level("Qe", 1)
	qh, qi := level("Qh", 12), level("Qi", 11)
	qj, qk := level("Qj", 12), level("Qk", 11)
	qn, qo := level("Qn", 23), level("Qo", 21)
	ql, qm := level("Ql", 12), level("Qm", 11)
	qp, qq := level("Qp", 33), level("Qq", 31)
	qv, qw := level("Qv", 99), level("Qw", 98)

	// c5 is a fan-in component: its input levels are concatenations of
	// one c3 output and one c4 output (labelled by component ID, sorted).
	concatVectors := func(a, b qosres.Vector) qosres.Vector {
		var params []qosres.Param
		for _, p := range a.Params() {
			params = append(params, qosres.P("c3."+p.Name, p.Value))
		}
		for _, p := range b.Params() {
			params = append(params, qosres.P("c4."+p.Name, p.Value))
		}
		return qosres.MustVector(params...)
	}
	qr := qosres.Level{Name: "Qr", Vector: concatVectors(qn.Vector, qp.Vector)}
	qs := qosres.Level{Name: "Qs", Vector: concatVectors(qn.Vector, qq.Vector)}
	qt := qosres.Level{Name: "Qt", Vector: concatVectors(qo.Vector, qp.Vector)}
	qu := qosres.Level{Name: "Qu", Vector: concatVectors(qo.Vector, qq.Vector)}

	comps := []*qosres.Component{
		{ID: "c1", In: []qosres.Level{qa}, Out: []qosres.Level{qb, qc},
			Translate: qosres.TranslationTable{
				"Qa": {"Qb": req(0.10), "Qc": req(0.20)},
			}.Func(), Resources: []string{"r"}},
		{ID: "c2", In: []qosres.Level{qd, qe}, Out: []qosres.Level{qh, qi},
			Translate: qosres.TranslationTable{
				"Qd": {"Qh": req(0.15), "Qi": req(0.25)},
				"Qe": {"Qh": req(0.10), "Qi": req(0.12)},
			}.Func(), Resources: []string{"r"}},
		{ID: "c3", In: []qosres.Level{qj, qk}, Out: []qosres.Level{qn, qo},
			Translate: qosres.TranslationTable{
				"Qj": {"Qn": req(0.35), "Qo": req(0.10)},
				"Qk": {"Qn": req(0.30), "Qo": req(0.12)},
			}.Func(), Resources: []string{"r"}},
		{ID: "c4", In: []qosres.Level{ql, qm}, Out: []qosres.Level{qp, qq},
			Translate: qosres.TranslationTable{
				"Ql": {"Qp": req(0.20), "Qq": req(0.11)},
				"Qm": {"Qp": req(0.28), "Qq": req(0.13)},
			}.Func(), Resources: []string{"r"}},
		{ID: "c5", In: []qosres.Level{qr, qs, qt, qu}, Out: []qosres.Level{qv, qw},
			Translate: qosres.TranslationTable{
				"Qr": {"Qv": req(0.18)},
				"Qs": {"Qw": req(0.20)},
				"Qt": {"Qw": req(0.12)},
				"Qu": {"Qw": req(0.10)},
			}.Func(), Resources: []string{"r"}},
	}
	service, err := qosres.NewService("dag-example", comps, []qosres.ServiceEdge{
		{From: "c1", To: "c2"},
		{From: "c2", To: "c3"},
		{From: "c2", To: "c4"},
		{From: "c3", To: "c5"},
		{From: "c4", To: "c5"},
	}, []string{"Qv", "Qw"})
	if err != nil {
		log.Fatal(err)
	}

	// Each component binds its abstract resource "r" to a per-component
	// concrete resource with availability 1, so edge weights equal the
	// requirement values.
	binding := qosres.Binding{}
	snap := &qosres.Snapshot{Avail: qosres.ResourceVector{}, Alpha: map[string]float64{}}
	for _, c := range comps {
		concrete := "r@" + string(c.ID)
		binding[c.ID] = map[string]string{"r": concrete}
		snap.Avail[concrete] = 1
		snap.Alpha[concrete] = 1
	}

	g, err := qosres.BuildQRG(service, binding, snap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QRG over the DAG dependency graph: %d nodes, %d edges\n", g.NodeCount(), g.EdgeCount())

	plan, err := qosres.NewTwoPassPlanner().Plan(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntwo-pass heuristic: end-to-end %s, Ψ_G = %.2f\n", plan.EndToEnd.Name, plan.Psi)
	fmt.Println("embedded graph (one Qin/Qout pair per component):")
	for _, c := range plan.Choices {
		fmt.Printf("  %s: %s -> %s  (Ψe %.2f)\n", c.Comp, c.In.Name, c.Out.Name, c.Psi)
	}
	fmt.Println("\nfigure-8 resolution: the branches through c3 and c4 demand")
	fmt.Println("different c2 outputs; fixing Qn and Qp, reaching them from Qi")
	fmt.Println("needs max Ψe 0.30 while Qh needs 0.35 — so c2 converges on Qi.")

	exact, err := qosres.NewExhaustivePlanner().Plan(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexhaustive check: end-to-end %s, Ψ_G = %.2f (heuristic is %s)\n",
		exact.EndToEnd.Name, exact.Psi,
		map[bool]string{true: "optimal here", false: "suboptimal here"}[exact.Psi == plan.Psi])
}
