// Quickstart: define a two-component distributed service, stand up
// Resource Brokers, build the session's QoS-Resource Graph from a live
// availability snapshot, compute the contention-aware reservation plan,
// and make the actual multi-resource reservation.
package main

import (
	"fmt"
	"log"

	"qosres"
)

func main() {
	// --- 1. The QoS-Resource Model -----------------------------------
	//
	// A tiny media service: an Encoder on the server feeds a Player on
	// the client. Each component has discrete input/output QoS levels
	// and a translation function mapping (Qin, Qout) to the resources it
	// needs.
	hi := qosres.MustVector(qosres.P("rate", 30))
	lo := qosres.MustVector(qosres.P("rate", 15))
	e2eHi := qosres.MustVector(qosres.P("rate", 30), qosres.P("delay", 1))
	e2eLo := qosres.MustVector(qosres.P("rate", 15), qosres.P("delay", 2))

	encoder := &qosres.Component{
		ID: "Encoder",
		In: []qosres.Level{{Name: "src", Vector: hi}},
		Out: []qosres.Level{
			{Name: "hi", Vector: hi},
			{Name: "lo", Vector: lo},
		},
		Translate: qosres.TranslationTable{
			"src": {
				"hi": qosres.ResourceVector{"cpu": 40},
				"lo": qosres.ResourceVector{"cpu": 15},
			},
		}.Func(),
		Resources: []string{"cpu"},
	}
	player := &qosres.Component{
		ID: "Player",
		In: []qosres.Level{
			{Name: "in-hi", Vector: hi},
			{Name: "in-lo", Vector: lo},
		},
		Out: []qosres.Level{
			{Name: "best", Vector: e2eHi},
			{Name: "ok", Vector: e2eLo},
		},
		Translate: qosres.TranslationTable{
			"in-hi": {"best": qosres.ResourceVector{"net": 60}},
			"in-lo": {"best": qosres.ResourceVector{"net": 80}, // upscale: more correction data
				"ok": qosres.ResourceVector{"net": 25}},
		}.Func(),
		Resources: []string{"net"},
	}
	service, err := qosres.NewService("media",
		[]*qosres.Component{encoder, player},
		[]qosres.ServiceEdge{{From: "Encoder", To: "Player"}},
		[]string{"best", "ok"}, // end-to-end ranking, best first
	)
	if err != nil {
		log.Fatal(err)
	}

	// --- 2. The reservation-enabled environment ----------------------
	pool := qosres.NewPool(nil)
	if _, err := pool.AddLocal("cpu", "server", 200); err != nil {
		log.Fatal(err)
	}
	if _, err := pool.AddLocal("net", "server", 100); err != nil {
		log.Fatal(err)
	}

	// This session binds the components' abstract resource names to the
	// concrete brokers.
	binding := qosres.Binding{
		"Encoder": {"cpu": "cpu@server"},
		"Player":  {"net": "net@server"},
	}

	// --- 3. Snapshot -> QRG -> plan -----------------------------------
	snap, err := pool.Snapshot(0, []string{"cpu@server", "net@server"})
	if err != nil {
		log.Fatal(err)
	}
	g, err := qosres.BuildQRG(service, binding, snap)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := qosres.NewBasicPlanner().Plan(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("end-to-end QoS: %s (level %d of %d)\n",
		plan.EndToEnd.Name, plan.Rank, len(service.EndToEndRanking))
	fmt.Printf("selected path:  %s\n", plan.PathLevels)
	fmt.Printf("bottleneck:     %s at contention index %.2f\n", plan.Bottleneck, plan.Psi)
	for _, c := range plan.Choices {
		fmt.Printf("  %-8s %s -> %s, reserves %v\n", c.Comp, c.In.Name, c.Out.Name, c.Req)
	}

	// --- 4. Reserve, use, release -------------------------------------
	res, err := pool.ReserveAll(0, plan.Requirement())
	if err != nil {
		log.Fatal(err)
	}
	cpu, _ := pool.Get("cpu@server")
	net, _ := pool.Get("net@server")
	fmt.Printf("after reserve:  cpu avail %.0f/%.0f, net avail %.0f/%.0f\n",
		cpu.Available(), cpu.Capacity(), net.Available(), net.Capacity())

	if err := res.Release(10); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after release:  cpu avail %.0f/%.0f, net avail %.0f/%.0f\n",
		cpu.Available(), cpu.Capacity(), net.Available(), net.Capacity())
}
