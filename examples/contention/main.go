// Contention demonstrates the runtime system architecture of section 3
// under real concurrency: QoSProxies deployed on the figure-9 hosts (one
// goroutine each), Resource Brokers registered per host with end-to-end
// network brokers held receiver-side, and many client sessions
// established in parallel through the three-phase protocol (report ->
// plan -> dispatch). As the resource pool drains, later sessions are
// planned onto different paths or downgraded, and eventually refused —
// with all partial reservations rolled back.
package main

import (
	"fmt"
	"log"
	"sync"

	"qosres"
)

func main() {
	topology := qosres.Figure9Topology()
	clock := &qosres.ManualClock{}
	pool := qosres.NewPool(topology)
	runtime := qosres.NewRuntime(clock)

	// Deploy a QoSProxy on every host.
	for _, h := range topology.Hosts() {
		if _, err := runtime.AddHost(h); err != nil {
			log.Fatal(err)
		}
	}

	// Register brokers: a CPU broker on each server, a bandwidth broker
	// per link (deployed at the link's first endpoint), and the
	// end-to-end network brokers at the receiver side host.
	for i := 1; i <= 4; i++ {
		host := qosres.HostID(fmt.Sprintf("H%d", i))
		b, err := pool.AddLocal("cpu", host, 300)
		if err != nil {
			log.Fatal(err)
		}
		if err := runtime.Deploy(host, b); err != nil {
			log.Fatal(err)
		}
	}
	for _, l := range topology.Links() {
		b, err := pool.AddLink(l.ID, 500)
		if err != nil {
			log.Fatal(err)
		}
		if err := runtime.Deploy(l.A, b); err != nil {
			log.Fatal(err)
		}
	}
	// One service: components on H1 (sender) and H2 (processor), with
	// the end-to-end H1->H2 network resource owned by the receiver H2.
	net12, err := pool.Network("H1", "H2")
	if err != nil {
		log.Fatal(err)
	}
	if err := runtime.Deploy("H2", net12); err != nil {
		log.Fatal(err)
	}
	runtime.Start()
	defer runtime.Stop()

	service, err := qosres.NewService("feed",
		[]*qosres.Component{
			{
				ID: "Sender",
				In: []qosres.Level{{Name: "src", Vector: qosres.MustVector(qosres.P("rate", 30))}},
				Out: []qosres.Level{
					{Name: "hi", Vector: qosres.MustVector(qosres.P("rate", 30))},
					{Name: "lo", Vector: qosres.MustVector(qosres.P("rate", 15))},
				},
				Translate: qosres.TranslationTable{
					"src": {"hi": qosres.ResourceVector{"cpu": 30}, "lo": qosres.ResourceVector{"cpu": 12}},
				}.Func(),
				Resources: []string{"cpu"},
			},
			{
				ID: "Processor",
				In: []qosres.Level{
					{Name: "in-hi", Vector: qosres.MustVector(qosres.P("rate", 30))},
					{Name: "in-lo", Vector: qosres.MustVector(qosres.P("rate", 15))},
				},
				Out: []qosres.Level{
					{Name: "full", Vector: qosres.MustVector(qosres.P("rate", 30), qosres.P("detail", 2))},
					{Name: "lite", Vector: qosres.MustVector(qosres.P("rate", 15), qosres.P("detail", 1))},
				},
				Translate: qosres.TranslationTable{
					"in-hi": {"full": qosres.ResourceVector{"cpu": 25, "net": 60}},
					"in-lo": {
						"full": qosres.ResourceVector{"cpu": 45, "net": 30},
						"lite": qosres.ResourceVector{"cpu": 10, "net": 20},
					},
				}.Func(),
				Resources: []string{"cpu", "net"},
			},
		},
		[]qosres.ServiceEdge{{From: "Sender", To: "Processor"}},
		[]string{"full", "lite"})
	if err != nil {
		log.Fatal(err)
	}
	binding := qosres.Binding{
		"Sender":    {"cpu": "cpu@H1"},
		"Processor": {"cpu": "cpu@H2", "net": "net:H1->H2"},
	}

	// Fire 24 concurrent session requests at the runtime. The main
	// QoSProxy for this service lives on H1.
	const sessions = 24
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		resultsCh = make([]*qosres.Session, 0, sessions)
		levels    = map[string]int{}
		refused   int
	)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := runtime.Establish("H1", qosres.SessionSpec{
				Service: service,
				Binding: binding,
				Planner: qosres.NewBasicPlanner(),
			})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				refused++
				return
			}
			levels[s.Plan.EndToEnd.Name]++
			resultsCh = append(resultsCh, s)
		}()
	}
	wg.Wait()

	fmt.Printf("%d concurrent session requests against cpu@H1=300, cpu@H2=300, net:H1->H2=500\n", sessions)
	fmt.Printf("established: %d (full: %d, lite: %d), refused: %d\n",
		len(resultsCh), levels["full"], levels["lite"], refused)

	cpu1, _ := pool.Get("cpu@H1")
	cpu2, _ := pool.Get("cpu@H2")
	fmt.Printf("remaining: cpu@H1 %.0f, cpu@H2 %.0f, net:H1->H2 %.0f\n",
		cpu1.Available(), cpu2.Available(), net12.Available())

	// Release every session and verify the environment drains clean.
	clock.Advance(100)
	for _, s := range resultsCh {
		if err := s.Release(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after release: cpu@H1 %.0f, cpu@H2 %.0f, net:H1->H2 %.0f\n",
		cpu1.Available(), cpu2.Available(), net12.Available())
}
