// Videotracking reproduces the paper's running example (figures 1, 4
// and 5): the distributed Video Streaming + Tracking service whose
// VideoSender streams to an ObjectTracker proxy that forwards the
// annotated stream to a VideoPlayer. The program builds the session's
// QoS-Resource Graph against live Resource Brokers, prints the
// translation-edge weights (the contention indices of figure 4), runs
// the basic algorithm (the max-plus shortest path of figure 5), and then
// shows the tradeoff policy reacting to a falling availability trend.
package main

import (
	"fmt"
	"log"

	"qosres"
)

// Component and resource names of figure 1.
const (
	sender  = "VideoSender"
	tracker = "ObjectTracker"
	player  = "VideoPlayer"

	resServerCPU  = "cpu@videoserver"
	resServerDisk = "disk@videoserver"
	resProxyCPU   = "cpu@trackingproxy"
	resNetSP      = "net:videoserver->trackingproxy"
	resClientCPU  = "cpu@client"
	resNetPC      = "net:trackingproxy->client"
)

// buildService defines the three components with the figure-4/5 level
// structure: six end-to-end levels ranked Qn > Qo > Qp > Qq > Qs > Qr.
func buildService() (*qosres.Service, error) {
	stream := func(rate, size float64) qosres.Vector {
		return qosres.MustVector(qosres.P("Frame_Rate", rate), qosres.P("Image_Size", size))
	}
	tracked := func(rate, size, objects float64) qosres.Vector {
		return qosres.MustVector(qosres.P("Frame_Rate", rate), qosres.P("Image_Size", size),
			qosres.P("Objects", objects))
	}
	e2e := func(rate, size, objects, delay float64) qosres.Vector {
		return qosres.MustVector(qosres.P("Frame_Rate", rate), qosres.P("Image_Size", size),
			qosres.P("Objects", objects), qosres.P("Buffering_Delay", delay))
	}
	req := func(primary string, w float64, secondary string) qosres.ResourceVector {
		return qosres.ResourceVector{primary: w * 100, secondary: w * 50}
	}

	qa, qb := stream(30, 4), stream(30, 4)
	qc, qd := stream(25, 3), stream(20, 2)
	qh, qi, qj := tracked(30, 4, 3), tracked(25, 3, 2), tracked(20, 2, 1)

	vs := &qosres.Component{
		ID:  sender,
		In:  []qosres.Level{{Name: "Qa", Vector: qa}},
		Out: []qosres.Level{{Name: "Qb", Vector: qb}, {Name: "Qc", Vector: qc}, {Name: "Qd", Vector: qd}},
		Translate: qosres.TranslationTable{
			"Qa": {
				"Qb": req("cpu", 0.20, "disk"),
				"Qc": req("cpu", 0.10, "disk"),
				"Qd": req("disk", 0.10, "cpu"),
			},
		}.Func(),
		Resources: []string{"cpu", "disk"},
	}
	ot := &qosres.Component{
		ID:  tracker,
		In:  []qosres.Level{{Name: "Qe", Vector: qb}, {Name: "Qf", Vector: qc}, {Name: "Qg", Vector: qd}},
		Out: []qosres.Level{{Name: "Qh", Vector: qh}, {Name: "Qi", Vector: qi}, {Name: "Qj", Vector: qj}},
		Translate: qosres.TranslationTable{
			"Qe": {"Qh": req("net", 0.12, "cpu")},
			"Qf": {"Qh": req("cpu", 0.16, "net"), "Qi": req("cpu", 0.15, "net")},
			"Qg": {"Qi": req("cpu", 0.12, "net"), "Qj": req("net", 0.08, "cpu")},
		}.Func(),
		Resources: []string{"cpu", "net"},
	}
	vp := &qosres.Component{
		ID: player,
		In: []qosres.Level{{Name: "Qk", Vector: qh}, {Name: "Ql", Vector: qi}, {Name: "Qm", Vector: qj}},
		Out: []qosres.Level{
			{Name: "Qn", Vector: e2e(30, 4, 3, 1)},
			{Name: "Qo", Vector: e2e(30, 4, 3, 2)},
			{Name: "Qp", Vector: e2e(25, 3, 2, 2)},
			{Name: "Qq", Vector: e2e(25, 3, 2, 3)},
			{Name: "Qs", Vector: e2e(20, 2, 1, 3)},
			{Name: "Qr", Vector: e2e(20, 2, 1, 5)},
		},
		Translate: qosres.TranslationTable{
			"Qk": {
				// The top level needs more client CPU than exists: the
				// figure-5 "Inf" sink.
				"Qn": qosres.ResourceVector{"cpu": 120, "net": 10},
				"Qo": req("net", 0.14, "cpu"),
			},
			"Ql": {
				"Qn": qosres.ResourceVector{"cpu": 150, "net": 10},
				"Qo": req("cpu", 0.16, "net"),
				"Qp": req("net", 0.15, "cpu"),
				"Qr": req("net", 0.12, "cpu"),
			},
			"Qm": {
				"Qq": req("net", 0.13, "cpu"),
				"Qs": req("net", 0.08, "cpu"),
			},
		}.Func(),
		Resources: []string{"cpu", "net"},
	}
	return qosres.NewService("VideoStreamingTracking",
		[]*qosres.Component{vs, ot, vp},
		[]qosres.ServiceEdge{{From: sender, To: tracker}, {From: tracker, To: player}},
		[]string{"Qn", "Qo", "Qp", "Qq", "Qs", "Qr"})
}

func main() {
	service, err := buildService()
	if err != nil {
		log.Fatal(err)
	}

	// The reservation-enabled environment: a Resource Broker per
	// resource, each with 100 units.
	resources := []string{resServerCPU, resServerDisk, resProxyCPU, resNetSP, resClientCPU, resNetPC}
	brokers := map[string]*qosres.LocalBroker{}
	for _, r := range resources {
		b, err := qosres.NewLocalBroker(r, 100)
		if err != nil {
			log.Fatal(err)
		}
		brokers[r] = b
	}

	binding := qosres.Binding{
		sender:  {"cpu": resServerCPU, "disk": resServerDisk},
		tracker: {"cpu": resProxyCPU, "net": resNetSP},
		player:  {"cpu": resClientCPU, "net": resNetPC},
	}

	// Phase 1: collect the availability snapshot from the brokers.
	snap := &qosres.Snapshot{At: 0, Avail: qosres.ResourceVector{}, Alpha: map[string]float64{}}
	for r, b := range brokers {
		rep := b.Report(0)
		snap.Avail[r] = rep.Avail
		snap.Alpha[r] = rep.Alpha
	}

	// Phase 2: build the QRG and print it (figure 4).
	g, err := qosres.BuildQRG(service, binding, snap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QRG: %d nodes, %d edges\n", g.NodeCount(), g.EdgeCount())
	fmt.Println("translation edges (weight = bottleneck contention index):")
	for _, e := range g.Edges {
		if e.Req == nil {
			continue
		}
		fmt.Printf("  %-13s %s -> %s  Ψ=%.2f (bottleneck %s)\n",
			g.Nodes[e.From].Comp, g.Nodes[e.From].Level.Name, g.Nodes[e.To].Level.Name,
			e.Weight, e.Bottleneck)
	}

	// The basic algorithm: figure 5's shortest path.
	plan, err := qosres.NewBasicPlanner().Plan(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbasic: end-to-end %s (rank %d), path %s, Ψ=%.2f (bottleneck %s)\n",
		plan.EndToEnd.Name, plan.Rank, plan.PathLevels, plan.Psi, plan.Bottleneck)

	// The tradeoff policy under a falling availability trend on the
	// bottleneck resource.
	snap.Alpha[plan.Bottleneck] = 0.5
	g2, err := qosres.BuildQRG(service, binding, snap)
	if err != nil {
		log.Fatal(err)
	}
	p2, err := qosres.NewTradeoffPlanner().Plan(g2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tradeoff (α=0.5 on %s): end-to-end %s (rank %d), path %s, Ψ=%.2f\n",
		plan.Bottleneck, p2.EndToEnd.Name, p2.Rank, p2.PathLevels, p2.Psi)
}
