// Advance demonstrates the extension the paper names as its next step
// (section 6): advance reservations. Sessions are planned against a
// *future* time window — the availability snapshot is each resource's
// worst-case headroom over the window — and booked all-or-nothing. A
// conference scenario: three recurring video-tracking sessions book
// overlapping future slots, the planner downgrades the one that lands
// on the congested window, and a profile of the proxy CPU shows the
// committed timeline.
package main

import (
	"fmt"
	"log"

	"qosres"
)

// The service: a compact version of the paper's video example with two
// end-to-end levels.
func buildService() *qosres.Service {
	hi := qosres.MustVector(qosres.P("rate", 30))
	lo := qosres.MustVector(qosres.P("rate", 15))
	sender := &qosres.Component{
		ID:  "Sender",
		In:  []qosres.Level{{Name: "src", Vector: hi}},
		Out: []qosres.Level{{Name: "s-hi", Vector: hi}, {Name: "s-lo", Vector: lo}},
		Translate: qosres.TranslationTable{
			"src": {"s-hi": qosres.ResourceVector{"cpu": 30}, "s-lo": qosres.ResourceVector{"cpu": 12}},
		}.Func(),
		Resources: []string{"cpu"},
	}
	tracker := &qosres.Component{
		ID: "Tracker",
		In: []qosres.Level{{Name: "t-hi", Vector: hi}, {Name: "t-lo", Vector: lo}},
		Out: []qosres.Level{
			{Name: "full", Vector: qosres.MustVector(qosres.P("rate", 30), qosres.P("objects", 3))},
			{Name: "lite", Vector: qosres.MustVector(qosres.P("rate", 15), qosres.P("objects", 1))},
		},
		Translate: qosres.TranslationTable{
			"t-hi": {"full": qosres.ResourceVector{"cpu": 35, "net": 40}},
			"t-lo": {"full": qosres.ResourceVector{"cpu": 60, "net": 25},
				"lite": qosres.ResourceVector{"cpu": 15, "net": 15}},
		}.Func(),
		Resources: []string{"cpu", "net"},
	}
	s, err := qosres.NewService("tracking",
		[]*qosres.Component{sender, tracker},
		[]qosres.ServiceEdge{{From: "Sender", To: "Tracker"}},
		[]string{"full", "lite"})
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func main() {
	service := buildService()
	binding := qosres.Binding{
		"Sender":  {"cpu": "cpu@server"},
		"Tracker": {"cpu": "cpu@proxy", "net": "net:server->proxy"},
	}
	resources := []string{"cpu@server", "cpu@proxy", "net:server->proxy"}

	reg := qosres.NewAdvanceRegistry()
	for _, r := range resources {
		if _, err := reg.Add(r, 100); err != nil {
			log.Fatal(err)
		}
	}

	// Book three future sessions; the second and third overlap the first.
	windows := [][2]qosres.Time{{100, 160}, {130, 190}, {150, 210}}
	for i, w := range windows {
		snap, err := reg.WindowSnapshot(w[0], w[1], resources)
		if err != nil {
			log.Fatal(err)
		}
		g, err := qosres.BuildQRG(service, binding, snap)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := qosres.NewBasicPlanner().Plan(g)
		if err != nil {
			fmt.Printf("session %d [%g, %g): refused (%v)\n", i+1, float64(w[0]), float64(w[1]), err)
			continue
		}
		if _, err := reg.ReserveAll(w[0], w[1], plan.Requirement()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("session %d [%g, %g): booked %-4s  Ψ=%.2f  needs %v\n",
			i+1, float64(w[0]), float64(w[1]), plan.EndToEnd.Name, plan.Psi, plan.Requirement())
	}

	// The committed availability timeline of the proxy CPU.
	book, _ := reg.Get("cpu@proxy")
	steps, err := book.Profile(90, 220)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncpu@proxy availability profile:")
	for _, s := range steps {
		bar := ""
		for i := 0.0; i < s.Avail; i += 5 {
			bar += "#"
		}
		fmt.Printf("  [%3g, %3g)  %5.1f  %s\n", float64(s.Start), float64(s.End), s.Avail, bar)
	}

	// A latecomer asking for the congested middle gets the lite level; a
	// session after the rush gets full quality.
	for _, w := range [][2]qosres.Time{{150, 160}, {220, 280}} {
		snap, _ := reg.WindowSnapshot(w[0], w[1], resources)
		g, _ := qosres.BuildQRG(service, binding, snap)
		plan, err := qosres.NewBasicPlanner().Plan(g)
		if err != nil {
			fmt.Printf("window [%g, %g): infeasible\n", float64(w[0]), float64(w[1]))
			continue
		}
		fmt.Printf("window [%g, %g): best level %s (Ψ=%.2f)\n",
			float64(w[0]), float64(w[1]), plan.EndToEnd.Name, plan.Psi)
	}
}
