// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (section 5), plus micro-benchmarks of the runtime algorithm
// (the paper argues O(K·Q²) is cheap enough for runtime execution,
// section 4.2) and ablation benches for the design choices DESIGN.md
// calls out.
//
// The table/figure benches run the same drivers as cmd/experiments on a
// shortened horizon (3600 TUs instead of 10800) so the whole suite stays
// minutes-scale; they report the headline experiment metrics (success
// rates, QoS levels) through b.ReportMetric so regressions in the
// *result shape*, not just speed, are visible. Run cmd/experiments for
// full-length paper-parameter reproductions.
package qosres_test

import (
	"fmt"
	"testing"

	"qosres/internal/advance"
	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/experiments"
	"qosres/internal/proxy"
	"qosres/internal/qrg"
	"qosres/internal/sim"
	"qosres/internal/svc"
	"qosres/internal/topo"
	"qosres/internal/workload"
)

// benchOpts shortens the horizon for benchmark iterations.
func benchOpts() experiments.Opts {
	return experiments.Opts{Seed: 1, Duration: 3600}
}

// BenchmarkFig11 regenerates figure 11 (overall success rate and average
// QoS level vs. arrival rate, basic/tradeoff/random).
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportFig11(b, rows)
		}
	}
}

func reportFig11(b *testing.B, rows []experiments.Fig11Row) {
	for _, r := range rows {
		if r.Rate == 180 {
			b.ReportMetric(100*r.SuccessRate, fmt.Sprintf("succ@180_%s_%%", r.Algorithm))
			b.ReportMetric(r.AvgQoS, fmt.Sprintf("qos@180_%s", r.Algorithm))
		}
	}
}

// BenchmarkTable1Table2 regenerates tables 1-2 (selected reservation
// paths and their percentages at 80 sessions per 60 TUs).
func BenchmarkTable1Table2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs, err := experiments.Tables12(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(len(tabs.Table1)), "paths_table1")
			b.ReportMetric(float64(len(tabs.Table2)), "paths_table2")
			b.ReportMetric(float64(tabs.BottleneckCoverage["basic"]), "bottleneck_resources")
		}
	}
}

// BenchmarkTable3 regenerates table 3 (per-class success rate / QoS for
// basic at rates 60/100/180).
func BenchmarkTable3(b *testing.B) {
	benchTable34(b, sim.AlgBasic)
}

// BenchmarkTable4 regenerates table 4 (same for tradeoff).
func BenchmarkTable4(b *testing.B) {
	benchTable34(b, sim.AlgTradeoff)
}

func benchTable34(b *testing.B, alg sim.Algorithm) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Tables34(benchOpts(), alg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				if r.Rate == 100 {
					b.ReportMetric(100*r.SuccessRate, fmt.Sprintf("succ@100_%s_%%", r.Class))
				}
			}
		}
	}
}

// BenchmarkFig12Basic regenerates figure 12(a): success rate of basic
// under observation staleness E in {0,1,2,4,8} TUs.
func BenchmarkFig12Basic(b *testing.B) {
	benchFig12(b, sim.AlgBasic)
}

// BenchmarkFig12Tradeoff regenerates figure 12(b).
func BenchmarkFig12Tradeoff(b *testing.B) {
	benchFig12(b, sim.AlgTradeoff)
}

func benchFig12(b *testing.B, alg sim.Algorithm) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12(benchOpts(), alg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				if r.Rate == 180 && r.Algorithm == alg && (r.StaleE == 0 || r.StaleE == 8) {
					b.ReportMetric(100*r.SuccessRate, fmt.Sprintf("succ@180_E%g_%%", float64(r.StaleE)))
				}
			}
		}
	}
}

// BenchmarkFig13 regenerates figure 13 (figure 11 under requirement
// diversity compressed to 3:1).
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig13(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportFig11(b, rows)
		}
	}
}

// --- Micro-benchmarks of the runtime algorithm ------------------------

func videoGraph(b *testing.B) *qrg.Graph {
	b.Helper()
	g, err := qrg.Build(workload.VideoService(), workload.VideoBinding(), workload.VideoSnapshot())
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkQRGBuildVideo measures QRG construction for the figure-4
// three-component service.
func BenchmarkQRGBuildVideo(b *testing.B) {
	service := workload.VideoService()
	binding := workload.VideoBinding()
	snap := workload.VideoSnapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qrg.Build(service, binding, snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanPath compares the full per-session planning step —
// graph construction plus planner — between the from-scratch reference
// (qrg.Build) and the compiled-template fast lane
// (Template.Instantiate + Recycle), on the figure-9 S1 chain (max-plus
// Dijkstra) and the fan-in DAG (two-pass heuristic). The same fixtures
// back cmd/experiments -run planbench, which records the comparison in
// BENCH_plan.json.
func BenchmarkPlanPath(b *testing.B) {
	shapes := []struct {
		name    string
		planner core.Planner
		fixture func() (*svc.Service, svc.Binding, *broker.Snapshot)
	}{
		{"chain", core.Basic{}, experiments.PlanBenchChain},
		{"dag", core.TwoPass{}, experiments.PlanBenchDag},
	}
	for _, sh := range shapes {
		service, binding, snap := sh.fixture()
		b.Run(sh.name+"/scratch", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g, err := qrg.Build(service, binding, snap)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sh.planner.Plan(g); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(sh.name+"/template", func(b *testing.B) {
			tpl, err := qrg.Compile(service, binding)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := tpl.Instantiate(snap)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sh.planner.Plan(g); err != nil {
					b.Fatal(err)
				}
				tpl.Recycle(g)
			}
		})
	}
}

// BenchmarkPlanBasic measures the max-plus Dijkstra planner on the
// figure-4 QRG.
func BenchmarkPlanBasic(b *testing.B) {
	g := videoGraph(b)
	p := core.Basic{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Plan(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanTradeoff measures the tradeoff planner.
func BenchmarkPlanTradeoff(b *testing.B) {
	g := videoGraph(b)
	p := core.Tradeoff{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Plan(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanRandom measures the contention-unaware baseline.
func BenchmarkPlanRandom(b *testing.B) {
	g := videoGraph(b)
	p := core.NewRandom(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Plan(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanTwoPassDAG measures the two-pass heuristic on the
// figure-6 DAG service.
func BenchmarkPlanTwoPassDAG(b *testing.B) {
	g, err := qrg.Build(workload.DagService(), workload.DagBinding(), workload.DagSnapshot())
	if err != nil {
		b.Fatal(err)
	}
	p := core.TwoPass{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Plan(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanExhaustiveDAG measures the exact enumerator on the same
// DAG, the cost the heuristic avoids.
func BenchmarkPlanExhaustiveDAG(b *testing.B) {
	g, err := qrg.Build(workload.DagService(), workload.DagBinding(), workload.DagSnapshot())
	if err != nil {
		b.Fatal(err)
	}
	p := core.Exhaustive{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Plan(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimThroughput measures end-to-end simulated sessions per
// second (snapshot + QRG + plan + reserve + release).
func BenchmarkSimThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(sim.AlgBasic, 120, 1)
		cfg.Duration = 1800
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.Metrics.Overall.Attempts), "sessions/op")
		}
	}
}

// --- Ablation benches (design choices in DESIGN.md) -------------------

// BenchmarkAblationAlphaWindow sweeps the tradeoff policy's averaging
// window T (the paper fixes T = 3 TUs) and reports the success rate.
func BenchmarkAblationAlphaWindow(b *testing.B) {
	for _, window := range []broker.Time{1, 3, 10, 30} {
		b.Run(fmt.Sprintf("T=%g", float64(window)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig(sim.AlgTradeoff, 180, 1)
				cfg.Duration = 3600
				cfg.AlphaWindow = window
				res, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(100*res.Metrics.Overall.SuccessRate(), "succ_%")
					b.ReportMetric(res.Metrics.Overall.AvgQoS(), "avgQoS")
				}
			}
		})
	}
}

// BenchmarkAblationStaleness sweeps the observation age E for basic,
// isolating the atomic-observation assumption of section 5.2.4.
func BenchmarkAblationStaleness(b *testing.B) {
	for _, e := range []broker.Time{0, 2, 8, 32} {
		b.Run(fmt.Sprintf("E=%g", float64(e)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig(sim.AlgBasic, 180, 1)
				cfg.Duration = 3600
				cfg.StaleE = e
				res, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(100*res.Metrics.Overall.SuccessRate(), "succ_%")
					b.ReportMetric(float64(res.Metrics.ReserveFailures), "reserve_failures")
				}
			}
		})
	}
}

// BenchmarkAblationDiversity sweeps the requirement diversity
// compression (figure 13 generalized): base (0 = uncompressed), the
// paper's 3:1, and fully flat 1:1.
func BenchmarkAblationDiversity(b *testing.B) {
	for _, ratio := range []float64{0, 3, 1} {
		name := "base"
		if ratio > 0 {
			name = fmt.Sprintf("%g:1", ratio)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig(sim.AlgBasic, 180, 1)
				cfg.Duration = 3600
				cfg.Workload.DiversityRatio = ratio
				res, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(100*res.Metrics.Overall.SuccessRate(), "succ_%")
				}
			}
		})
	}
}

// BenchmarkAblationContention sweeps the per-resource contention index
// definition ψ (the paper's footnote 2: the ratio is one of several
// admissible definitions) and reports the resulting success rate.
func BenchmarkAblationContention(b *testing.B) {
	for _, name := range []string{"ratio", "headroom", "log"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig(sim.AlgBasic, 180, 1)
				cfg.Duration = 3600
				cfg.Contention = name
				res, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(100*res.Metrics.Overall.SuccessRate(), "succ_%")
					b.ReportMetric(res.Metrics.Overall.AvgQoS(), "avgQoS")
				}
			}
		})
	}
}

// BenchmarkHeuristicQuality runs the randomized two-pass-vs-exact
// quality study (the section 4.3.2 limitations, quantified) and reports
// the limitation rates.
func BenchmarkHeuristicQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.HeuristicQuality(1, 1000)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.HeuristicOnlyFailures), "limitation1_fails")
			b.ReportMetric(float64(res.PsiGaps), "limitation2_gaps")
			b.ReportMetric(res.MeanGap, "mean_psi_gap")
		}
	}
}

// BenchmarkAblationTieBreak compares the basic algorithm with and
// without the section 4.1.2 predecessor tie-break rule.
func BenchmarkAblationTieBreak(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "paper-rule"
		if disable {
			name = "no-tiebreak"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig(sim.AlgBasic, 180, 1)
				cfg.Duration = 3600
				cfg.NoTieBreak = disable
				res, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(100*res.Metrics.Overall.SuccessRate(), "succ_%")
				}
			}
		})
	}
}

// BenchmarkPlanScaling exercises the section 4.2 complexity claim
// O(K·Q²) on dense synthetic chains: build the QRG and run the basic
// planner while K (components) and Q (levels per component) grow.
func BenchmarkPlanScaling(b *testing.B) {
	for _, kq := range [][2]int{{3, 8}, {3, 16}, {3, 32}, {3, 64}, {6, 16}, {12, 16}} {
		k, q := kq[0], kq[1]
		b.Run(fmt.Sprintf("K=%d_Q=%d", k, q), func(b *testing.B) {
			service, binding, snap := workload.SyntheticChain(k, q)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := qrg.Build(service, binding, snap)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := (core.Basic{}).Plan(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAdvanceReserve measures advance booking against a ledger
// with many live bookings.
func BenchmarkAdvanceReserve(b *testing.B) {
	book, err := advance.NewBook("cpu", 1e6)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := book.Reserve(broker.Time(i), broker.Time(i+20), 100); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := book.Reserve(broker.Time(i%400), broker.Time(i%400+10), 50)
		if err != nil {
			b.Fatal(err)
		}
		if err := book.Release(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProxyEstablish measures the full three-phase protocol round
// trip (messages, planning, segment dispatch, release) on a two-host
// runtime.
func BenchmarkProxyEstablish(b *testing.B) {
	clock := &proxy.ManualClock{}
	rt := proxy.NewRuntime(clock)
	for _, h := range []string{"X", "Y"} {
		if _, err := rt.AddHost(topo.HostID(h)); err != nil {
			b.Fatal(err)
		}
	}
	mk := func(resource string, host string) {
		br, err := broker.NewLocal(resource, 1e9)
		if err != nil {
			b.Fatal(err)
		}
		if err := rt.Deploy(topo.HostID(host), br); err != nil {
			b.Fatal(err)
		}
	}
	mk("cpu@videoserver", "X")
	mk("disk@videoserver", "X")
	mk("cpu@trackingproxy", "Y")
	mk("net:videoserver->trackingproxy", "Y")
	mk("cpu@client", "Y")
	mk("net:trackingproxy->client", "Y")
	rt.Start()
	defer rt.Stop()

	spec := proxy.SessionSpec{
		Service: workload.VideoService(),
		Binding: workload.VideoBinding(),
		Planner: core.Basic{},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := rt.Establish("X", spec)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Release(); err != nil {
			b.Fatal(err)
		}
	}
}
