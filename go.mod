module qosres

go 1.22
