package qrg

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the QRG in Graphviz DOT format, mirroring the layout of
// the paper's figures 4-5 and 7-8: one cluster per service component
// (the dotted rectangles), solid translation edges labelled with their
// contention weights Ψ, and dashed weight-zero equivalence edges between
// components. The source node is drawn as a diamond, sink nodes as
// double circles annotated with their end-to-end rank.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph QRG {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=circle, fontsize=10];\n")

	sinkRank := map[int]int{}
	for _, s := range g.Sinks {
		sinkRank[s.Node] = s.Rank
	}

	// Group nodes by component, in topological component order when
	// available.
	byComp := map[string][]Node{}
	var compOrder []string
	if order, err := g.Service.TopoOrder(); err == nil {
		for _, cid := range order {
			compOrder = append(compOrder, string(cid))
		}
	}
	for _, n := range g.Nodes {
		byComp[string(n.Comp)] = append(byComp[string(n.Comp)], n)
	}
	if len(compOrder) == 0 {
		for c := range byComp {
			compOrder = append(compOrder, c)
		}
		sort.Strings(compOrder)
	}

	for i, comp := range compOrder {
		nodes := byComp[comp]
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n", i)
		fmt.Fprintf(&b, "    label=%q; style=dotted;\n", comp)
		for _, n := range nodes {
			attrs := []string{fmt.Sprintf("label=%q", n.Level.Name)}
			if n.ID == g.Source {
				attrs = append(attrs, "shape=diamond")
			}
			if rank, ok := sinkRank[n.ID]; ok {
				attrs = append(attrs, "shape=doublecircle",
					fmt.Sprintf("xlabel=\"rank %d\"", rank))
			}
			fmt.Fprintf(&b, "    n%d [%s];\n", n.ID, strings.Join(attrs, ", "))
		}
		b.WriteString("  }\n")
	}

	for _, e := range g.Edges {
		if e.Kind == Translation {
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"%.2f\"];\n", e.From, e.To, e.Weight)
		} else {
			fmt.Fprintf(&b, "  n%d -> n%d [style=dashed, arrowhead=none];\n", e.From, e.To)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
