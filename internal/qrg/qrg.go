// Package qrg implements the QoS-Resource Graph of section 4.1.1. For one
// service session, the QRG is a snapshot of the end-to-end resource
// requirement and availability: the achievable Qin/Qout levels of every
// participating component become nodes, translation edges connect the
// (Qin, Qout) pairs whose resource requirement is satisfiable under the
// current availability, and equivalence edges (weight zero) connect each
// component's Qout nodes to the matching Qin nodes of its downstream
// components. The weight of a translation edge is the contention index of
// its bottleneck resource, Ψ = max_i r_i^req / r_i^avail (equations 2-3).
package qrg

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"qosres/internal/broker"
	"qosres/internal/qos"
	"qosres/internal/svc"
)

// NodeKind distinguishes Qin nodes from Qout nodes.
type NodeKind int

const (
	// In marks a Qin node.
	In NodeKind = iota
	// Out marks a Qout node.
	Out
)

// String returns "in" or "out".
func (k NodeKind) String() string {
	if k == In {
		return "in"
	}
	return "out"
}

// EdgeKind distinguishes the two QRG edge categories of section 4.1.1.
type EdgeKind int

const (
	// Translation edges run from a Qin node to a Qout node of the same
	// component and carry a resource requirement and a contention weight.
	Translation EdgeKind = iota
	// Equivalence edges run from a Qout node to a Qin node of a
	// downstream component and carry weight zero.
	Equivalence
)

// String returns "translation" or "equivalence".
func (k EdgeKind) String() string {
	if k == Translation {
		return "translation"
	}
	return "equivalence"
}

// Node is a QRG node: one Qin or Qout level of one component. A Qin node
// of a fan-in component represents one specific combination of upstream
// Qout nodes; Parts records that combination.
type Node struct {
	ID    int
	Comp  svc.ComponentID
	Kind  NodeKind
	Level svc.Level
	// Parts maps each upstream component to the Qout node (by node ID)
	// whose level this fan-in Qin node concatenates. Nil for every other
	// node.
	Parts map[svc.ComponentID]int
}

// Edge is a QRG edge.
type Edge struct {
	ID       int
	From, To int
	Kind     EdgeKind
	// Weight is Ψ for translation edges, 0 for equivalence edges.
	Weight float64
	// Req is the concrete (bound) resource requirement of a translation
	// edge; nil for equivalence edges.
	Req qos.ResourceVector
	// Bottleneck is the resource attaining Ψ on a translation edge.
	Bottleneck string
	// Alpha is the availability change index of the bottleneck resource
	// at snapshot time.
	Alpha float64
}

// Sink pairs a sink node with its end-to-end QoS rank (higher is better).
type Sink struct {
	Node int
	Rank int
}

// Graph is a QoS-Resource Graph.
type Graph struct {
	Service *svc.Service
	Nodes   []Node
	Edges   []Edge
	// OutEdges[v] lists edge IDs leaving node v; InEdges[v] those entering.
	OutEdges [][]int
	InEdges  [][]int
	// Source is the node representing the original quality of the source
	// data.
	Source int
	// Sinks lists the existing sink nodes ordered best-first by the
	// service's end-to-end ranking.
	Sinks []Sink
	// Snapshot is the availability snapshot the graph was built from.
	Snapshot *broker.Snapshot

	// outFlat/inFlat back the OutEdges/InEdges slices of
	// template-instantiated graphs (CSR layout), letting Recycle reuse
	// the whole adjacency across instantiations. Nil for graphs built
	// from scratch, whose adjacency grows edge by edge.
	outFlat []int
	inFlat  []int
}

// NodeCount and EdgeCount are convenience accessors.
func (g *Graph) NodeCount() int { return len(g.Nodes) }

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int { return len(g.Edges) }

// BestSink returns the highest-ranked sink node, or ok=false when the
// graph has no sink nodes at all.
func (g *Graph) BestSink() (Sink, bool) {
	if len(g.Sinks) == 0 {
		return Sink{}, false
	}
	return g.Sinks[0], true
}

// TranslationEdges returns the IDs of all translation edges.
func (g *Graph) TranslationEdges() []int {
	var out []int
	for _, e := range g.Edges {
		if e.Kind == Translation {
			out = append(out, e.ID)
		}
	}
	return out
}

// addNode appends a node and returns its ID.
func (g *Graph) addNode(n Node) int {
	n.ID = len(g.Nodes)
	g.Nodes = append(g.Nodes, n)
	g.OutEdges = append(g.OutEdges, nil)
	g.InEdges = append(g.InEdges, nil)
	return n.ID
}

// addEdge appends an edge and wires adjacency.
func (g *Graph) addEdge(e Edge) int {
	e.ID = len(g.Edges)
	g.Edges = append(g.Edges, e)
	g.OutEdges[e.From] = append(g.OutEdges[e.From], e.ID)
	g.InEdges[e.To] = append(g.InEdges[e.To], e.ID)
	return e.ID
}

// Weight computes the contention index Ψ of a bound requirement vector
// against an availability vector: the maximum over resources of
// r^req / r^avail (equation 3), together with the bottleneck resource.
// feasible is false when some positive requirement exceeds availability
// (equation 2's precondition r^req <= r^avail fails) or names an unknown
// resource.
func Weight(req, avail qos.ResourceVector) (psi float64, bottleneck string, feasible bool) {
	return WeightWith(req, avail, RatioContention)
}

// WeightWith is Weight under an alternative per-resource contention
// definition (footnote 2 of the paper).
//
// A zero requirement contributes Ψ = 0 and never affects feasibility,
// even when the resource's availability is also zero (or the resource
// is unknown): demanding nothing of an exhausted resource is trivially
// satisfiable, and skipping the term keeps the 0/0 contention ratio
// from injecting NaN into the max-plus Dijkstra edge weights.
func WeightWith(req, avail qos.ResourceVector, f ContentionFunc) (psi float64, bottleneck string, feasible bool) {
	psi = 0
	feasible = true
	// Iterate deterministically so bottleneck ties resolve stably.
	for _, r := range req.Names() {
		need := req[r]
		if need == 0 {
			continue
		}
		have, ok := avail[r]
		if !ok || need > have {
			return 0, r, false
		}
		c := f(need, have)
		if c > psi {
			psi = c
			bottleneck = r
		}
	}
	return psi, bottleneck, feasible
}

// reqEntry is one positive requirement of a bound vector, kept in
// resource-name order so feasibility/Ψ evaluation iterates
// deterministically without re-sorting.
type reqEntry struct {
	res  string
	need float64
}

// boundReq is a binding-resolved translation requirement with its
// entries pre-sorted by resource name. WeightWith allocates and sorts
// req.Names() on every call; weight over the cached entries does
// neither, which matters because every QRG rebuild re-evaluates every
// candidate translation edge.
type boundReq struct {
	vec     qos.ResourceVector
	entries []reqEntry
}

// newBoundReq caches the sorted positive entries of a bound vector.
// Zero requirements are dropped up front: WeightWith skips them before
// its feasibility check, so they can never contribute Ψ, infeasibility,
// or a bottleneck name.
func newBoundReq(vec qos.ResourceVector) *boundReq {
	br := &boundReq{vec: vec}
	names := vec.Names()
	br.entries = make([]reqEntry, 0, len(names))
	for _, r := range names {
		if vec[r] != 0 {
			br.entries = append(br.entries, reqEntry{res: r, need: vec[r]})
		}
	}
	return br
}

// weight is WeightWith over the pre-sorted entries; the semantics are
// identical (same iteration order, same feasibility rule, same
// bottleneck ties).
func (b *boundReq) weight(avail qos.ResourceVector, f ContentionFunc) (psi float64, bottleneck string, feasible bool) {
	psi = 0
	feasible = true
	for i := range b.entries {
		en := &b.entries[i]
		have, ok := avail[en.res]
		if !ok || en.need > have {
			return 0, en.res, false
		}
		c := f(en.need, have)
		if c > psi {
			psi = c
			bottleneck = en.res
		}
	}
	return psi, bottleneck, feasible
}

// BuildOptions customizes QRG construction.
type BuildOptions struct {
	// Contention overrides the per-resource contention index ψ; nil
	// uses the paper's ratio definition.
	Contention ContentionFunc
}

// Build constructs the QRG for one service session: the service model,
// the session's resource binding (component-local resource names to
// concrete environment resource IDs), and the availability snapshot.
//
// The construction handles chains, fan-out, and fan-in (DAG) dependency
// graphs uniformly. Equivalence between an upstream Qout level and a
// downstream Qin level is established by QoS vector equality; for fan-in
// components the upstream Qout vectors are concatenated (labelled by
// upstream component ID, in sorted order) before matching, as defined in
// section 4.3.2.
func Build(service *svc.Service, binding svc.Binding, snap *broker.Snapshot) (*Graph, error) {
	return BuildWithOptions(service, binding, snap, BuildOptions{})
}

// BuildWithOptions is Build with non-default options.
func BuildWithOptions(service *svc.Service, binding svc.Binding, snap *broker.Snapshot, opts BuildOptions) (*Graph, error) {
	if service == nil {
		return nil, fmt.Errorf("qrg: nil service")
	}
	if snap == nil {
		return nil, fmt.Errorf("qrg: nil snapshot")
	}
	contention := opts.Contention
	if contention == nil {
		contention = RatioContention
	}
	order, err := service.TopoOrder()
	if err != nil {
		return nil, err
	}
	// Capacity estimates: every declared level can become at most one
	// node (fan-in combinations can exceed this; append then grows),
	// and each component contributes at most |In|·|Out| translation
	// edges plus one equivalence edge per Qout node.
	nodeCap, edgeCap := 0, 0
	for _, cid := range order {
		comp := service.Components[cid]
		nodeCap += len(comp.In) + len(comp.Out)
		edgeCap += len(comp.In)*len(comp.Out) + len(comp.Out)
	}
	g := &Graph{
		Service:  service,
		Source:   -1,
		Snapshot: snap,
		Nodes:    make([]Node, 0, nodeCap),
		Edges:    make([]Edge, 0, edgeCap),
		OutEdges: make([][]int, 0, nodeCap),
		InEdges:  make([][]int, 0, nodeCap),
	}

	// outNodes[comp] lists the Qout node IDs created for comp, in the
	// component's declared level order.
	outNodes := make(map[svc.ComponentID][]int, len(order))

	for _, cid := range order {
		comp := service.Components[cid]
		preds := service.Preds(cid)
		sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })

		// 1. Create the component's Qin nodes plus incoming equivalence
		// edges.
		var inIDs []int
		switch len(preds) {
		case 0:
			// Source component: single Qin node, the source data quality.
			id := g.addNode(Node{Comp: cid, Kind: In, Level: comp.In[0]})
			if g.Source != -1 {
				return nil, fmt.Errorf("qrg: service %s has multiple source components", service.Name)
			}
			g.Source = id
			inIDs = append(inIDs, id)
		case 1:
			// Chain / fan-out upstream: one Qin node per distinct matched
			// input level; equivalence edges from every upstream Qout node
			// whose vector equals it.
			byLevel := make(map[string]int)
			for _, up := range outNodes[preds[0]] {
				upNode := g.Nodes[up]
				lvl, ok := matchInLevel(comp, upNode.Level.Vector)
				if !ok {
					continue // dead-end upstream level; no equivalence
				}
				id, exists := byLevel[lvl.Name]
				if !exists {
					id = g.addNode(Node{Comp: cid, Kind: In, Level: lvl})
					byLevel[lvl.Name] = id
					inIDs = append(inIDs, id)
				}
				g.addEdge(Edge{From: up, To: id, Kind: Equivalence})
			}
		default:
			// Fan-in: one Qin node per combination of upstream Qout
			// nodes; the Qin vector is the labelled concatenation of the
			// upstream Qout vectors.
			combos := crossProduct(preds, outNodes)
			for _, combo := range combos {
				labels := make([]string, len(preds))
				vectors := make([]qos.Vector, len(preds))
				parts := make(map[svc.ComponentID]int, len(preds))
				for i, p := range preds {
					labels[i] = string(p)
					vectors[i] = g.Nodes[combo[i]].Level.Vector
					parts[p] = combo[i]
				}
				concat := qos.ConcatAll(labels, vectors)
				lvl, ok := matchInLevel(comp, concat)
				if !ok {
					continue
				}
				id := g.addNode(Node{Comp: cid, Kind: In, Level: lvl, Parts: parts})
				inIDs = append(inIDs, id)
				for _, up := range combo {
					g.addEdge(Edge{From: up, To: id, Kind: Equivalence})
				}
			}
		}

		// 2. Create Qout nodes and translation edges for every feasible
		// (Qin, Qout) pair. The bound requirement of a pair depends only
		// on the level pair, so fan-in graphs — where many Qin nodes
		// share one declared level — bind and sort each pair once. The
		// memo'd vector is shared by every edge of the pair; planners
		// clone Edge.Req before mutating (see core.planFromPath).
		outByLevel := make(map[string]int, len(comp.Out))
		reqMemo := make(map[[2]string]*boundReq, len(comp.In)*len(comp.Out))
		for _, lvl := range comp.Out {
			for _, inID := range inIDs {
				inLvl := g.Nodes[inID].Level
				key := [2]string{inLvl.Name, lvl.Name}
				br, seen := reqMemo[key]
				if !seen {
					if req, ok := comp.Translate(inLvl, lvl); ok {
						bound, err := binding.Bind(cid, req)
						if err != nil {
							return nil, fmt.Errorf("qrg: service %s: %v", service.Name, err)
						}
						br = newBoundReq(bound)
					}
					reqMemo[key] = br
				}
				if br == nil {
					continue // unsupported translation pair
				}
				psi, bottleneck, feasible := br.weight(snap.Avail, contention)
				if !feasible {
					continue
				}
				outID, exists := outByLevel[lvl.Name]
				if !exists {
					outID = g.addNode(Node{Comp: cid, Kind: Out, Level: lvl})
					outByLevel[lvl.Name] = outID
				}
				g.addEdge(Edge{
					From:       inID,
					To:         outID,
					Kind:       Translation,
					Weight:     psi,
					Req:        br.vec,
					Bottleneck: bottleneck,
					Alpha:      snap.Alpha[bottleneck],
				})
			}
		}
		// Record out nodes in declared level order for determinism.
		for _, lvl := range comp.Out {
			if id, ok := outByLevel[lvl.Name]; ok {
				outNodes[cid] = append(outNodes[cid], id)
			}
		}
	}

	if g.Source == -1 {
		return nil, fmt.Errorf("qrg: service %s produced no source node", service.Name)
	}

	// 3. Rank the sink component's Qout nodes best-first.
	sinkComp, err := service.Sink()
	if err != nil {
		return nil, err
	}
	byName := make(map[string]int)
	for _, id := range outNodes[sinkComp.ID] {
		byName[g.Nodes[id].Level.Name] = id
	}
	for _, name := range service.EndToEndRanking {
		if id, ok := byName[name]; ok {
			g.Sinks = append(g.Sinks, Sink{Node: id, Rank: service.RankOf(name)})
		}
	}
	return g, nil
}

// matchInLevel finds the component's declared input level whose vector
// equals v.
func matchInLevel(comp *svc.Component, v qos.Vector) (svc.Level, bool) {
	for _, lvl := range comp.In {
		if lvl.Vector.Equal(v) {
			return lvl, true
		}
	}
	return svc.Level{}, false
}

// crossProduct enumerates every combination choosing one Qout node per
// upstream component, preserving pred order.
func crossProduct(preds []svc.ComponentID, outNodes map[svc.ComponentID][]int) [][]int {
	combos := [][]int{nil}
	for _, p := range preds {
		outs := outNodes[p]
		if len(outs) == 0 {
			return nil // some upstream component has no feasible output
		}
		next := make([][]int, 0, len(combos)*len(outs))
		for _, c := range combos {
			for _, o := range outs {
				nc := make([]int, len(c)+1)
				copy(nc, c)
				nc[len(c)] = o
				next = append(next, nc)
			}
		}
		combos = next
	}
	return combos
}

// Infinity is the distance of unreachable nodes in plan computations.
var Infinity = math.Inf(1)

// PathLevels renders a node sequence as the dash-joined level names the
// paper's tables 1-2 use, e.g. "Qa-Qc-Qf-Qi-Qm-Qp".
func (g *Graph) PathLevels(nodes []int) string {
	var b strings.Builder
	size := 0
	for _, id := range nodes {
		size += len(g.Nodes[id].Level.Name) + 1
	}
	b.Grow(size)
	for i, id := range nodes {
		if i > 0 {
			b.WriteByte('-')
		}
		b.WriteString(g.Nodes[id].Level.Name)
	}
	return b.String()
}
