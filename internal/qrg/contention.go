package qrg

import "math"

// ContentionFunc maps one resource's (requirement, availability) pair to
// its contention index ψ. The paper adopts the simple ratio of equation
// (2) but notes (footnote 2) that other definitions with the same
// monotonicity — higher requirement or lower availability means higher
// contention — plug straight into the algorithm. A ContentionFunc is
// only consulted for feasible pairs (0 < req <= avail).
type ContentionFunc func(req, avail float64) float64

// RatioContention is the paper's definition: ψ = r_req / r_avail.
func RatioContention(req, avail float64) float64 { return req / avail }

// HeadroomContention weighs a reservation by the absolute headroom it
// leaves: ψ = req / (req + headroom) with headroom = avail - req, i.e.
// req/avail — except that availability left behind matters in absolute
// terms, so the index saturates faster on nearly-drained resources:
// ψ = req / (1 + avail - req). Unlike any monotone transform of the
// ratio, this changes which resource is the bottleneck and which path
// wins, making it a genuine ablation of the ψ definition.
func HeadroomContention(req, avail float64) float64 {
	return req / (1 + avail - req)
}

// LogContention is -log of the fraction of availability left standing:
// ψ = -ln(1 - req/avail), the "surprise" of the reservation. It orders
// single resources like the ratio but combines differently under the
// path maximum when requirements are near availability.
func LogContention(req, avail float64) float64 {
	frac := req / avail
	if frac >= 1 {
		return math.Inf(1)
	}
	return -math.Log1p(-frac)
}

// ContentionByName resolves a configuration string to a ContentionFunc.
func ContentionByName(name string) (ContentionFunc, bool) {
	switch name {
	case "", "ratio":
		return RatioContention, true
	case "headroom":
		return HeadroomContention, true
	case "log":
		return LogContention, true
	}
	return nil, false
}
