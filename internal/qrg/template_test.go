package qrg

import (
	"reflect"
	"testing"

	"qosres/internal/broker"
	"qosres/internal/obs"
	"qosres/internal/svc"
	"qosres/internal/workload"
)

// requireSameGraph compares every observable field of a from-scratch
// build against a template instantiation.
func requireSameGraph(t *testing.T, label string, want, got *Graph) {
	t.Helper()
	if !reflect.DeepEqual(want.Nodes, got.Nodes) {
		t.Fatalf("%s: nodes differ\nbuild:       %+v\ninstantiate: %+v", label, want.Nodes, got.Nodes)
	}
	if !reflect.DeepEqual(want.Edges, got.Edges) {
		t.Fatalf("%s: edges differ\nbuild:       %+v\ninstantiate: %+v", label, want.Edges, got.Edges)
	}
	if !reflect.DeepEqual(want.OutEdges, got.OutEdges) {
		t.Fatalf("%s: out-adjacency differs: %v vs %v", label, want.OutEdges, got.OutEdges)
	}
	if !reflect.DeepEqual(want.InEdges, got.InEdges) {
		t.Fatalf("%s: in-adjacency differs: %v vs %v", label, want.InEdges, got.InEdges)
	}
	if want.Source != got.Source {
		t.Fatalf("%s: source %d vs %d", label, want.Source, got.Source)
	}
	if !reflect.DeepEqual(want.Sinks, got.Sinks) {
		t.Fatalf("%s: sinks differ: %v vs %v", label, want.Sinks, got.Sinks)
	}
}

// templateFixtures are the repo's canonical workloads: the video chain,
// the fan-in DAG, and a synthetic deep chain.
func templateFixtures() []struct {
	name    string
	service *svc.Service
	binding svc.Binding
	snap    *broker.Snapshot
} {
	synthSvc, synthBind, synthSnap := workload.SyntheticChain(6, 4)
	return []struct {
		name    string
		service *svc.Service
		binding svc.Binding
		snap    *broker.Snapshot
	}{
		{"video", workload.VideoService(), workload.VideoBinding(), workload.VideoSnapshot()},
		{"dag", workload.DagService(), workload.DagBinding(), workload.DagSnapshot()},
		{"synthetic", synthSvc, synthBind, synthSnap},
	}
}

// TestTemplateMatchesBuildOnWorkloads pins the template replay to the
// reference builder on the canonical fixtures, across repeated
// recycled instantiations and all contention functions.
func TestTemplateMatchesBuildOnWorkloads(t *testing.T) {
	for _, f := range templateFixtures() {
		tpl, err := Compile(f.service, f.binding)
		if err != nil {
			t.Fatalf("%s: compile: %v", f.name, err)
		}
		if tpl.Service() != f.service {
			t.Fatalf("%s: Service() does not round-trip", f.name)
		}
		for _, cname := range []string{"ratio", "headroom", "log"} {
			cf, ok := ContentionByName(cname)
			if !ok {
				t.Fatalf("unknown contention %q", cname)
			}
			opts := BuildOptions{Contention: cf}
			want, err := BuildWithOptions(f.service, f.binding, f.snap, opts)
			if err != nil {
				t.Fatalf("%s/%s: build: %v", f.name, cname, err)
			}
			for round := 0; round < 3; round++ {
				got, err := tpl.InstantiateWithOptions(f.snap, opts)
				if err != nil {
					t.Fatalf("%s/%s: instantiate: %v", f.name, cname, err)
				}
				requireSameGraph(t, f.name+"/"+cname, want, got)
				tpl.Recycle(got)
			}
		}
	}
}

// TestTemplateCacheCounters checks hit/miss accounting and that
// structurally equal bindings rebuilt per session share one template.
func TestTemplateCacheCounters(t *testing.T) {
	reg := obs.New()
	cache := NewTemplateCache(reg)
	service := workload.VideoService()

	tpl1, err := cache.Get(service, workload.VideoBinding())
	if err != nil {
		t.Fatal(err)
	}
	// A freshly built but identical binding map must hit.
	tpl2, err := cache.Get(service, workload.VideoBinding())
	if err != nil {
		t.Fatal(err)
	}
	if tpl1 != tpl2 {
		t.Fatalf("identical (service, binding) pairs got distinct templates")
	}
	// A different placement must compile its own template.
	other := workload.VideoBinding()
	for cid := range other {
		m := map[string]string{}
		for k, v := range other[cid] {
			m[k] = v + "-alt"
		}
		other[cid] = m
	}
	tpl3, err := cache.Get(service, other)
	if err != nil {
		t.Fatal(err)
	}
	if tpl3 == tpl1 {
		t.Fatalf("distinct bindings shared a template")
	}
	if n := cache.Len(); n != 2 {
		t.Fatalf("cache holds %d templates, want 2", n)
	}

	hits := reg.Counter(obs.MetricTemplateHits, "").Value()
	misses := reg.Counter(obs.MetricTemplateMisses, "").Value()
	cached := reg.Gauge(obs.MetricTemplatesCached, "").Value()
	if hits != 1 || misses != 2 || cached != 2 {
		t.Fatalf("counters hits=%v misses=%v cached=%v, want 1/2/2", hits, misses, cached)
	}
}

// TestInstantiateAllocsRegression is the satellite allocation guard:
// instantiating from a compiled template must allocate at least 5x less
// than the from-scratch build, and the template's weight evaluation
// (pre-sorted entries, shared Req maps, pooled scratch) must stay in
// the single-digit range for the video chain.
func TestInstantiateAllocsRegression(t *testing.T) {
	service := workload.VideoService()
	binding := workload.VideoBinding()
	snap := workload.VideoSnapshot()
	tpl, err := Compile(service, binding)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pools before measuring steady state.
	for i := 0; i < 4; i++ {
		g, err := tpl.Instantiate(snap)
		if err != nil {
			t.Fatal(err)
		}
		tpl.Recycle(g)
	}
	instAllocs := testing.AllocsPerRun(200, func() {
		g, err := tpl.Instantiate(snap)
		if err != nil {
			t.Fatal(err)
		}
		tpl.Recycle(g)
	})
	buildAllocs := testing.AllocsPerRun(200, func() {
		if _, err := Build(service, binding, snap); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs/op: instantiate %.1f, build %.1f", instAllocs, buildAllocs)
	if instAllocs*5 > buildAllocs {
		t.Fatalf("instantiate allocates %.1f/op vs build %.1f/op; want >= 5x fewer", instAllocs, buildAllocs)
	}
	// The race detector randomizes sync.Pool reuse, so the absolute
	// steady-state bound only holds on uninstrumented builds.
	if !raceEnabled && instAllocs > 8 {
		t.Fatalf("instantiate allocates %.1f/op at steady state, want single digits", instAllocs)
	}
}

// TestPathLevels covers the strings.Builder rewrite on a non-trivial
// path.
func TestPathLevelsJoins(t *testing.T) {
	g, err := Build(workload.VideoService(), workload.VideoBinding(), workload.VideoSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]int, len(g.Nodes))
	want := ""
	for i := range g.Nodes {
		nodes[i] = i
		if i > 0 {
			want += "-"
		}
		want += g.Nodes[i].Level.Name
	}
	if got := g.PathLevels(nodes); got != want {
		t.Fatalf("PathLevels = %q, want %q", got, want)
	}
	if got := g.PathLevels(nil); got != "" {
		t.Fatalf("PathLevels(nil) = %q, want empty", got)
	}
}
