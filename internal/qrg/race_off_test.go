//go:build !race

package qrg

// raceEnabled reports whether the race detector instruments this build.
// The detector deliberately randomizes sync.Pool reuse to expose races,
// so pool-dependent allocation counts are only asserted without it.
const raceEnabled = false
