package qrg

import (
	"container/list"
	"sort"
	"strings"
	"sync"

	"qosres/internal/obs"
	"qosres/internal/svc"
)

// DefaultTemplateCacheSize is the LRU bound of NewTemplateCache:
// generous enough that a deployment's whole service catalogue times its
// placements stays resident (templates are a few KB each), while a
// workload generating unbounded distinct bindings — per-session hosts,
// leaked service pointers — can no longer grow the cache without limit.
const DefaultTemplateCacheSize = 4096

// TemplateCache memoizes compiled QRG templates per (service, binding)
// pair so the per-arrival hot path pays Compile once and Instantiate
// thereafter. Services are keyed by pointer identity — the expected
// usage is a fixed catalogue of service models shared across sessions —
// and bindings by a canonical fingerprint of their contents, since
// callers commonly rebuild an identical binding map per session.
//
// The cache is safe for concurrent use and bounded: at most maxEntries
// templates stay resident, evicted least-recently-used. The bound
// defends against key-space leaks (a churning catalogue of service
// pointers or ever-changing bindings) that would otherwise grow the
// cache for the life of the process; an eviction therefore signals
// either an undersized cache or a leaking key population, which is why
// evictions are counted under their own metric.
type TemplateCache struct {
	mu         sync.Mutex
	entries    map[templateKey]*list.Element
	order      *list.List // front = most recently used
	maxEntries int        // 0 = unbounded

	hits      *obs.Counter
	misses    *obs.Counter
	cached    *obs.Gauge
	evictions *obs.Counter
}

type templateKey struct {
	service *svc.Service
	binding string
}

// cacheEntry is the list-element payload: the key (for map removal on
// eviction) plus the compiled template.
type cacheEntry struct {
	key templateKey
	tpl *Template
}

// NewTemplateCache returns an empty cache bounded at
// DefaultTemplateCacheSize, registering its hit/miss/eviction counters
// and resident-template gauge with r (nil r disables metrics at zero
// cost, the obs convention).
func NewTemplateCache(r *obs.Registry) *TemplateCache {
	return NewTemplateCacheSize(r, DefaultTemplateCacheSize)
}

// NewTemplateCacheSize returns an empty cache holding at most
// maxEntries compiled templates (least-recently-used eviction); 0 means
// unlimited, negative values collapse to 1.
func NewTemplateCacheSize(r *obs.Registry, maxEntries int) *TemplateCache {
	if maxEntries < 0 {
		maxEntries = 1
	}
	return &TemplateCache{
		entries:    make(map[templateKey]*list.Element),
		order:      list.New(),
		maxEntries: maxEntries,
		hits:       r.Counter(obs.MetricTemplateHits, "QRG constructions served from a compiled template."),
		misses:     r.Counter(obs.MetricTemplateMisses, "QRG template cache misses (compilations)."),
		cached:     r.Gauge(obs.MetricTemplatesCached, "Compiled QRG templates resident in the cache."),
		evictions:  r.Counter(obs.MetricTemplateEvictions, "Compiled QRG templates evicted by the LRU bound."),
	}
}

// Get returns the compiled template of the pair, compiling and caching
// it on first use and marking it most-recently-used on every hit.
func (c *TemplateCache) Get(service *svc.Service, binding svc.Binding) (*Template, error) {
	key := templateKey{service: service, binding: bindingFingerprint(binding)}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		tpl := el.Value.(*cacheEntry).tpl
		c.mu.Unlock()
		c.hits.Inc()
		return tpl, nil
	}
	c.mu.Unlock()
	c.misses.Inc()
	tpl, err := Compile(service, binding)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		// A concurrent caller compiled the same pair first; keep the
		// resident template so every session shares one buffer pool.
		c.order.MoveToFront(el)
		tpl = el.Value.(*cacheEntry).tpl
	} else {
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, tpl: tpl})
		for c.maxEntries > 0 && len(c.entries) > c.maxEntries {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).key)
			c.evictions.Inc()
		}
		c.cached.Set(float64(len(c.entries)))
	}
	c.mu.Unlock()
	return tpl, nil
}

// Len returns the number of resident templates.
func (c *TemplateCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// bindingFingerprint renders a binding canonically: components and
// abstract resource names in sorted order, fields separated by control
// bytes that cannot occur in identifiers.
func bindingFingerprint(b svc.Binding) string {
	comps := make([]string, 0, len(b))
	for cid := range b {
		comps = append(comps, string(cid))
	}
	sort.Strings(comps)
	var sb strings.Builder
	names := make([]string, 0, 8)
	for _, cid := range comps {
		sb.WriteString(cid)
		sb.WriteByte(1)
		m := b[svc.ComponentID(cid)]
		names = names[:0]
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			sb.WriteString(name)
			sb.WriteByte(2)
			sb.WriteString(string(m[name]))
			sb.WriteByte(3)
		}
	}
	return sb.String()
}
