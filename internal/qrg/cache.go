package qrg

import (
	"sort"
	"strings"
	"sync"

	"qosres/internal/obs"
	"qosres/internal/svc"
)

// TemplateCache memoizes compiled QRG templates per (service, binding)
// pair so the per-arrival hot path pays Compile once and Instantiate
// thereafter. Services are keyed by pointer identity — the expected
// usage is a fixed catalogue of service models shared across sessions —
// and bindings by a canonical fingerprint of their contents, since
// callers commonly rebuild an identical binding map per session.
//
// The cache is safe for concurrent use and never evicts: the key space
// is bounded by the deployment's service catalogue times its concrete
// placements, and templates are cheap (a few KB each).
type TemplateCache struct {
	mu      sync.Mutex
	entries map[templateKey]*Template

	hits   *obs.Counter
	misses *obs.Counter
	cached *obs.Gauge
}

type templateKey struct {
	service *svc.Service
	binding string
}

// NewTemplateCache returns an empty cache registering its hit/miss
// counters and resident-template gauge with r (nil r disables metrics
// at zero cost, the obs convention).
func NewTemplateCache(r *obs.Registry) *TemplateCache {
	return &TemplateCache{
		entries: make(map[templateKey]*Template),
		hits:    r.Counter(obs.MetricTemplateHits, "QRG constructions served from a compiled template."),
		misses:  r.Counter(obs.MetricTemplateMisses, "QRG template cache misses (compilations)."),
		cached:  r.Gauge(obs.MetricTemplatesCached, "Compiled QRG templates resident in the cache."),
	}
}

// Get returns the compiled template of the pair, compiling and caching
// it on first use.
func (c *TemplateCache) Get(service *svc.Service, binding svc.Binding) (*Template, error) {
	key := templateKey{service: service, binding: bindingFingerprint(binding)}
	c.mu.Lock()
	tpl, ok := c.entries[key]
	c.mu.Unlock()
	if ok {
		c.hits.Inc()
		return tpl, nil
	}
	c.misses.Inc()
	tpl, err := Compile(service, binding)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if existing, ok := c.entries[key]; ok {
		// A concurrent caller compiled the same pair first; keep the
		// resident template so every session shares one buffer pool.
		tpl = existing
	} else {
		c.entries[key] = tpl
		c.cached.Set(float64(len(c.entries)))
	}
	c.mu.Unlock()
	return tpl, nil
}

// Len returns the number of resident templates.
func (c *TemplateCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// bindingFingerprint renders a binding canonically: components and
// abstract resource names in sorted order, fields separated by control
// bytes that cannot occur in identifiers.
func bindingFingerprint(b svc.Binding) string {
	comps := make([]string, 0, len(b))
	for cid := range b {
		comps = append(comps, string(cid))
	}
	sort.Strings(comps)
	var sb strings.Builder
	names := make([]string, 0, 8)
	for _, cid := range comps {
		sb.WriteString(cid)
		sb.WriteByte(1)
		m := b[svc.ComponentID(cid)]
		names = names[:0]
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			sb.WriteString(name)
			sb.WriteByte(2)
			sb.WriteString(string(m[name]))
			sb.WriteByte(3)
		}
	}
	return sb.String()
}
