package qrg

import (
	"fmt"
	"testing"

	"qosres/internal/obs"
	"qosres/internal/svc"
	"qosres/internal/workload"
)

// altBinding derives a structurally distinct placement of the video
// binding by suffixing every concrete resource.
func altBinding(n int) svc.Binding {
	b := workload.VideoBinding()
	for cid := range b {
		m := map[string]string{}
		for k, v := range b[cid] {
			m[k] = fmt.Sprintf("%s-alt%d", v, n)
		}
		b[cid] = m
	}
	return b
}

// TestTemplateCacheLRUEviction pins the cache bound: at most maxEntries
// templates stay resident, the least-recently-used one is evicted
// first, and every eviction is counted.
func TestTemplateCacheLRUEviction(t *testing.T) {
	reg := obs.New()
	cache := NewTemplateCacheSize(reg, 2)
	service := workload.VideoService()

	b1, b2, b3 := altBinding(1), altBinding(2), altBinding(3)
	tpl1, err := cache.Get(service, b1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Get(service, b2); err != nil {
		t.Fatal(err)
	}
	// Third insert overflows the bound: b1 is the LRU and must go.
	if _, err := cache.Get(service, b3); err != nil {
		t.Fatal(err)
	}
	if n := cache.Len(); n != 2 {
		t.Fatalf("cache holds %d templates, want 2", n)
	}
	if got := reg.Counter(obs.MetricTemplateEvictions, "").Value(); got != 1 {
		t.Fatalf("evictions = %g, want 1", got)
	}
	if got := reg.Gauge(obs.MetricTemplatesCached, "").Value(); got != 2 {
		t.Fatalf("cached gauge = %g, want 2", got)
	}

	// b2 is now the LRU; touching it promotes it, so the next overflow
	// evicts b3 instead.
	if _, err := cache.Get(service, b2); err != nil {
		t.Fatal(err)
	}
	tpl1b, err := cache.Get(service, b1) // recompiles (was evicted), evicts b3
	if err != nil {
		t.Fatal(err)
	}
	if tpl1b == tpl1 {
		t.Fatal("evicted template came back identical — it was never evicted")
	}
	if got := reg.Counter(obs.MetricTemplateEvictions, "").Value(); got != 2 {
		t.Fatalf("evictions = %g, want 2", got)
	}
	// b2 must have survived both evictions: getting it is a hit.
	hitsBefore := reg.Counter(obs.MetricTemplateHits, "").Value()
	if _, err := cache.Get(service, b2); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(obs.MetricTemplateHits, "").Value(); got != hitsBefore+1 {
		t.Fatal("recently-used entry was evicted")
	}
}

// TestTemplateCacheUnbounded pins the 0 = unlimited contract.
func TestTemplateCacheUnbounded(t *testing.T) {
	reg := obs.New()
	cache := NewTemplateCacheSize(reg, 0)
	service := workload.VideoService()
	for i := 0; i < 50; i++ {
		if _, err := cache.Get(service, altBinding(i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := cache.Len(); n != 50 {
		t.Fatalf("cache holds %d templates, want 50", n)
	}
	if got := reg.Counter(obs.MetricTemplateEvictions, "").Value(); got != 0 {
		t.Fatalf("evictions = %g, want 0", got)
	}
}
