//go:build race

package qrg

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
