package qrg

import (
	"fmt"
	"sort"
	"sync"

	"qosres/internal/broker"
	"qosres/internal/qos"
	"qosres/internal/svc"
)

// This file implements the compiled-template fast path for QRG
// construction. Everything about the graph that depends only on the
// (service, binding) pair — topological order, level matching between
// upstream Qout and downstream Qin vectors, fan-in cross-product
// combinations, and the binding-resolved requirement vector of every
// supported translation pair (with its resource names pre-sorted) — is
// computed once by Compile. Instantiate then replays Build's exact
// construction order against one availability snapshot, re-evaluating
// only edge feasibility, Ψ, and α.
//
// The replay matters: feasibility pruning makes the node/edge *set*
// snapshot-dependent (a Qout node exists only when some translation
// into it is feasible, which cascades into downstream Qin creation), so
// the template cannot pre-enumerate the final graph. What it can do is
// remove every allocation, sort, map lookup, and vector comparison from
// the per-snapshot loop. Because the replay preserves Build's node and
// edge creation order, an instantiated graph is structurally identical
// to Build's output — same IDs, same adjacency order — and every
// planner therefore produces byte-for-byte identical plans
// (TestTemplateEquivalenceRandomized in internal/core).

// tmplComp is the compiled form of one component, in topological order.
type tmplComp struct {
	id   svc.ComponentID
	comp *svc.Component
	// preds indexes the sorted upstream components within Template.comps
	// (upstream components always precede this one in topo order).
	preds   []int
	predIDs []svc.ComponentID
	// singleMatch[j] is the index into comp.In whose vector equals the
	// single upstream component's j-th declared output level, or -1.
	singleMatch []int
	// fanMatch flattens the cross product of the upstream components'
	// declared output-level indices: cell Σ idx[i]·fanStrides[i] holds
	// the comp.In index matching that combination's labelled
	// concatenation, or -1. The last upstream varies fastest, mirroring
	// Build's crossProduct enumeration order.
	fanMatch   []int
	fanStrides []int
	// reqs[i·len(comp.Out)+j] is the bound requirement of the
	// translation comp.In[i] -> comp.Out[j]; nil when unsupported.
	reqs []*boundReq
}

// tmplSink is one end-to-end ranking entry resolved to the sink
// component's declared output-level index.
type tmplSink struct {
	outLevel int
	rank     int
}

// instScratch holds the per-Instantiate working state, pooled so a
// steady-state instantiation allocates nothing but fan-in Parts maps.
type instScratch struct {
	// outs[k]/outLvl[k]: live Qout node IDs of component k and their
	// declared output-level indices, in declared order.
	outs   [][]int
	outLvl [][]int
	// inIDs/inLvl: the current component's live Qin nodes (creation
	// order) and their declared input-level indices.
	inIDs []int
	inLvl []int
	// byLevel / outID: declared level index -> node ID (-1 unset),
	// reset per component.
	byLevel []int
	outID   []int
	combo   []int
	// adjacency construction scratch (degrees double as fill cursors).
	outDeg []int
	inDeg  []int
}

// Template is a compiled, snapshot-independent representation of the
// QRG of one (service, binding) pair. Compile once, then Instantiate
// per availability snapshot; instantiation is allocation-free apart
// from fan-in combination bookkeeping.
//
// Graphs returned by Instantiate share their Edge.Req maps with the
// template: treat them as read-only (planners already clone before
// mutating). Hot callers may hand a finished graph back via Recycle to
// reuse its buffers.
type Template struct {
	service *svc.Service
	order   []svc.ComponentID
	comps   []tmplComp
	// sinkComp indexes the sink component in comps; sinks lists the
	// ranking entries resolvable to declared sink output levels.
	sinkComp int
	sinks    []tmplSink
	nodeCap  int
	edgeCap  int

	graphs  sync.Pool // *Graph
	scratch sync.Pool // *instScratch
}

// Service returns the compiled service.
func (t *Template) Service() *svc.Service { return t.service }

// Compile builds the snapshot-independent template of a (service,
// binding) pair. Unlike Build — which binds a translation pair only
// when an input node materializes — Compile eagerly resolves every
// supported pair, so a binding that is missing resources for a pair
// Build never happened to evaluate fails here instead.
func Compile(service *svc.Service, binding svc.Binding) (*Template, error) {
	if service == nil {
		return nil, fmt.Errorf("qrg: nil service")
	}
	order, err := service.TopoOrder()
	if err != nil {
		return nil, err
	}
	t := &Template{service: service, order: order, sinkComp: -1}
	compIdx := make(map[svc.ComponentID]int, len(order))
	sources := 0
	for k, cid := range order {
		compIdx[cid] = k
		comp := service.Components[cid]
		tc := tmplComp{id: cid, comp: comp}
		preds := service.Preds(cid)
		sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })
		tc.predIDs = preds
		tc.preds = make([]int, len(preds))
		for i, p := range preds {
			tc.preds[i] = compIdx[p]
		}
		switch len(preds) {
		case 0:
			sources++
			if sources > 1 {
				return nil, fmt.Errorf("qrg: service %s has multiple source components", service.Name)
			}
		case 1:
			up := service.Components[preds[0]]
			tc.singleMatch = make([]int, len(up.Out))
			for j, lvl := range up.Out {
				tc.singleMatch[j] = matchInLevelIdx(comp, lvl.Vector)
			}
		default:
			dims := make([]int, len(preds))
			for i, p := range preds {
				dims[i] = len(service.Components[p].Out)
			}
			strides := make([]int, len(preds))
			size := 1
			for i := len(preds) - 1; i >= 0; i-- {
				strides[i] = size
				size *= dims[i]
			}
			tc.fanStrides = strides
			tc.fanMatch = make([]int, size)
			labels := make([]string, len(preds))
			vectors := make([]qos.Vector, len(preds))
			for i, p := range preds {
				labels[i] = string(p)
			}
			for flat := 0; flat < size; flat++ {
				rem := flat
				for i, p := range preds {
					vectors[i] = service.Components[p].Out[rem/strides[i]].Vector
					rem %= strides[i]
				}
				tc.fanMatch[flat] = matchInLevelIdx(comp, qos.ConcatAll(labels, vectors))
			}
		}
		tc.reqs = make([]*boundReq, len(comp.In)*len(comp.Out))
		for i, in := range comp.In {
			for j, out := range comp.Out {
				req, ok := comp.Translate(in, out)
				if !ok {
					continue
				}
				bound, err := binding.Bind(cid, req)
				if err != nil {
					return nil, fmt.Errorf("qrg: service %s: %v", service.Name, err)
				}
				tc.reqs[i*len(comp.Out)+j] = newBoundReq(bound)
			}
		}
		t.comps = append(t.comps, tc)
		t.nodeCap += len(comp.In) + len(comp.Out)
		t.edgeCap += len(comp.In)*len(comp.Out) + len(comp.Out)
	}
	if sources == 0 {
		return nil, fmt.Errorf("qrg: service %s produced no source node", service.Name)
	}
	sinkComp, err := service.Sink()
	if err != nil {
		return nil, err
	}
	t.sinkComp = compIdx[sinkComp.ID]
	for _, name := range service.EndToEndRanking {
		for j, lvl := range sinkComp.Out {
			if lvl.Name == name {
				t.sinks = append(t.sinks, tmplSink{outLevel: j, rank: service.RankOf(name)})
				break
			}
		}
	}
	t.graphs.New = func() interface{} { return new(Graph) }
	t.scratch.New = func() interface{} { return new(instScratch) }
	return t, nil
}

// matchInLevelIdx is matchInLevel returning the declared input-level
// index instead of the level, -1 when nothing matches.
func matchInLevelIdx(comp *svc.Component, v qos.Vector) int {
	for i, lvl := range comp.In {
		if lvl.Vector.Equal(v) {
			return i
		}
	}
	return -1
}

// Instantiate evaluates the template against one availability snapshot
// and returns a graph identical to Build(service, binding, snap).
func (t *Template) Instantiate(snap *broker.Snapshot) (*Graph, error) {
	return t.InstantiateWithOptions(snap, BuildOptions{})
}

// InstantiateWithOptions is Instantiate with non-default options.
func (t *Template) InstantiateWithOptions(snap *broker.Snapshot, opts BuildOptions) (*Graph, error) {
	if snap == nil {
		return nil, fmt.Errorf("qrg: nil snapshot")
	}
	contention := opts.Contention
	if contention == nil {
		contention = RatioContention
	}
	g := t.graphs.Get().(*Graph)
	if cap(g.Nodes) == 0 {
		g.Nodes = make([]Node, 0, t.nodeCap)
		g.Edges = make([]Edge, 0, t.edgeCap)
	}
	g.Nodes = g.Nodes[:0]
	g.Edges = g.Edges[:0]
	g.Sinks = g.Sinks[:0]
	g.Service = t.service
	g.Snapshot = snap
	g.Source = -1

	sc := t.scratch.Get().(*instScratch)
	sc.grow(len(t.comps))

	for k := range t.comps {
		tc := &t.comps[k]
		comp := tc.comp
		sc.inIDs = sc.inIDs[:0]
		sc.inLvl = sc.inLvl[:0]

		// 1. Qin nodes plus incoming equivalence edges, replaying the
		// same creation order as Build.
		switch len(tc.preds) {
		case 0:
			id := instAddNode(g, Node{Comp: tc.id, Kind: In, Level: comp.In[0]})
			g.Source = id
			sc.inIDs = append(sc.inIDs, id)
			sc.inLvl = append(sc.inLvl, 0)
		case 1:
			byLevel := sc.resetLevels(&sc.byLevel, len(comp.In))
			up := tc.preds[0]
			upOuts, upLvls := sc.outs[up], sc.outLvl[up]
			for x, upID := range upOuts {
				lvlIdx := tc.singleMatch[upLvls[x]]
				if lvlIdx < 0 {
					continue // dead-end upstream level; no equivalence
				}
				id := byLevel[lvlIdx]
				if id < 0 {
					id = instAddNode(g, Node{Comp: tc.id, Kind: In, Level: comp.In[lvlIdx]})
					byLevel[lvlIdx] = id
					sc.inIDs = append(sc.inIDs, id)
					sc.inLvl = append(sc.inLvl, lvlIdx)
				}
				instAddEdge(g, Edge{From: upID, To: id, Kind: Equivalence})
			}
		default:
			// Fan-in: odometer over the live Qout nodes of each upstream
			// component, last component fastest (crossProduct's order).
			n := len(tc.preds)
			empty := false
			for _, p := range tc.preds {
				if len(sc.outs[p]) == 0 {
					empty = true
					break
				}
			}
			if empty {
				break
			}
			combo := sc.combo[:n]
			for i := range combo {
				combo[i] = 0
			}
			for {
				flat := 0
				for i, p := range tc.preds {
					flat += sc.outLvl[p][combo[i]] * tc.fanStrides[i]
				}
				if lvlIdx := tc.fanMatch[flat]; lvlIdx >= 0 {
					parts := make(map[svc.ComponentID]int, n)
					for i, p := range tc.preds {
						parts[tc.predIDs[i]] = sc.outs[p][combo[i]]
					}
					id := instAddNode(g, Node{Comp: tc.id, Kind: In, Level: comp.In[lvlIdx], Parts: parts})
					sc.inIDs = append(sc.inIDs, id)
					sc.inLvl = append(sc.inLvl, lvlIdx)
					for i, p := range tc.preds {
						instAddEdge(g, Edge{From: sc.outs[p][combo[i]], To: id, Kind: Equivalence})
					}
				}
				i := n - 1
				for ; i >= 0; i-- {
					combo[i]++
					if combo[i] < len(sc.outs[tc.preds[i]]) {
						break
					}
					combo[i] = 0
				}
				if i < 0 {
					break
				}
			}
		}

		// 2. Qout nodes and translation edges for every feasible pair —
		// the only snapshot-dependent decision in the whole build.
		outID := sc.resetLevels(&sc.outID, len(comp.Out))
		for j, lvl := range comp.Out {
			row := tc.reqs[j:]
			for x, inNode := range sc.inIDs {
				br := row[sc.inLvl[x]*len(comp.Out)]
				if br == nil {
					continue
				}
				psi, bottleneck, feasible := br.weight(snap.Avail, contention)
				if !feasible {
					continue
				}
				oid := outID[j]
				if oid < 0 {
					oid = instAddNode(g, Node{Comp: tc.id, Kind: Out, Level: lvl})
					outID[j] = oid
				}
				instAddEdge(g, Edge{
					From:       inNode,
					To:         oid,
					Kind:       Translation,
					Weight:     psi,
					Req:        br.vec,
					Bottleneck: bottleneck,
					Alpha:      snap.Alpha[bottleneck],
				})
			}
		}
		sc.outs[k] = sc.outs[k][:0]
		sc.outLvl[k] = sc.outLvl[k][:0]
		for j := range comp.Out {
			if outID[j] >= 0 {
				sc.outs[k] = append(sc.outs[k], outID[j])
				sc.outLvl[k] = append(sc.outLvl[k], j)
			}
		}
	}

	if g.Source == -1 {
		t.scratch.Put(sc)
		return nil, fmt.Errorf("qrg: service %s produced no source node", t.service.Name)
	}

	// 3. Sinks best-first, restricted to levels that survived pruning.
	for _, s := range t.sinks {
		for x, j := range sc.outLvl[t.sinkComp] {
			if j == s.outLevel {
				g.Sinks = append(g.Sinks, Sink{Node: sc.outs[t.sinkComp][x], Rank: s.rank})
				break
			}
		}
	}

	buildAdjacency(g, sc)
	t.scratch.Put(sc)
	return g, nil
}

// Recycle returns a graph obtained from Instantiate to the template's
// buffer pool. The caller must not touch the graph (or slices obtained
// from it) afterwards; plans are safe, they own their data.
func (t *Template) Recycle(g *Graph) {
	if g == nil {
		return
	}
	g.Service = nil
	g.Snapshot = nil
	t.graphs.Put(g)
}

// instAddNode appends a node without touching adjacency (built in one
// CSR pass at the end of Instantiate).
func instAddNode(g *Graph, n Node) int {
	n.ID = len(g.Nodes)
	g.Nodes = append(g.Nodes, n)
	return n.ID
}

// instAddEdge appends an edge without touching adjacency.
func instAddEdge(g *Graph, e Edge) int {
	e.ID = len(g.Edges)
	g.Edges = append(g.Edges, e)
	return e.ID
}

// buildAdjacency fills g.OutEdges/g.InEdges CSR-style: per-node slices
// share two flat arrays owned by the graph, so the whole adjacency
// costs two allocations at steady state (none once recycled). Filling
// in ascending edge-ID order reproduces addEdge's append order exactly.
func buildAdjacency(g *Graph, sc *instScratch) {
	n, m := len(g.Nodes), len(g.Edges)
	outDeg := resizeInts(&sc.outDeg, n)
	inDeg := resizeInts(&sc.inDeg, n)
	for i := range outDeg {
		outDeg[i] = 0
		inDeg[i] = 0
	}
	for i := range g.Edges {
		outDeg[g.Edges[i].From]++
		inDeg[g.Edges[i].To]++
	}
	outFlat := resizeInts(&g.outFlat, m)
	inFlat := resizeInts(&g.inFlat, m)
	if cap(g.OutEdges) < n {
		g.OutEdges = make([][]int, n)
		g.InEdges = make([][]int, n)
	}
	g.OutEdges = g.OutEdges[:n]
	g.InEdges = g.InEdges[:n]
	// First pass: turn degrees into fill cursors (start offsets).
	outOff, inOff := 0, 0
	for v := 0; v < n; v++ {
		d := outDeg[v]
		outDeg[v] = outOff
		outOff += d
		d = inDeg[v]
		inDeg[v] = inOff
		inOff += d
	}
	for eid := range g.Edges {
		e := &g.Edges[eid]
		outFlat[outDeg[e.From]] = eid
		outDeg[e.From]++
		inFlat[inDeg[e.To]] = eid
		inDeg[e.To]++
	}
	// Second pass: cursors now hold end offsets; slice the flat arrays.
	// Zero-degree nodes get nil to match addNode's initial value.
	prevOut, prevIn := 0, 0
	for v := 0; v < n; v++ {
		if end := outDeg[v]; end == prevOut {
			g.OutEdges[v] = nil
		} else {
			g.OutEdges[v] = outFlat[prevOut:end:end]
			prevOut = end
		}
		if end := inDeg[v]; end == prevIn {
			g.InEdges[v] = nil
		} else {
			g.InEdges[v] = inFlat[prevIn:end:end]
			prevIn = end
		}
	}
}

// grow sizes the per-component scratch for n components.
func (sc *instScratch) grow(n int) {
	if cap(sc.outs) < n {
		sc.outs = make([][]int, n)
		sc.outLvl = make([][]int, n)
		sc.combo = make([]int, n)
	}
	sc.outs = sc.outs[:n]
	sc.outLvl = sc.outLvl[:n]
	sc.combo = sc.combo[:n]
}

// resetLevels sizes *buf for n declared levels and fills it with -1.
func (sc *instScratch) resetLevels(buf *[]int, n int) []int {
	b := resizeInts(buf, n)
	for i := range b {
		b[i] = -1
	}
	return b
}

// resizeInts grows *buf to length n, reusing its backing array.
func resizeInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
