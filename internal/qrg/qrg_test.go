package qrg

import (
	"math"
	"strings"
	"testing"

	"qosres/internal/broker"
	"qosres/internal/qos"
	"qosres/internal/svc"
)

func lvl(name string, q float64) svc.Level {
	return svc.Level{Name: name, Vector: qos.MustVector(qos.P("q", q))}
}

func TestBuildChainStructure(t *testing.T) {
	a := &svc.Component{
		ID: "a", In: []svc.Level{lvl("A0", 0)},
		Out: []svc.Level{lvl("hi", 1), lvl("lo", 2)},
		Translate: svc.TranslationTable{
			"A0": {"hi": {"r": 40}, "lo": {"r": 10}},
		}.Func(),
		Resources: []string{"r"},
	}
	b := &svc.Component{
		ID: "b",
		In: []svc.Level{lvl("in-hi", 1), lvl("in-lo", 2)},
		Out: []svc.Level{
			lvl("best", 10), lvl("ok", 11),
		},
		Translate: svc.TranslationTable{
			"in-hi": {"best": {"r": 50}},
			"in-lo": {"best": {"r": 90}, "ok": {"r": 20}},
		}.Func(),
		Resources: []string{"r"},
	}
	service := svc.MustService("s", []*svc.Component{a, b},
		[]svc.Edge{{From: "a", To: "b"}}, []string{"best", "ok"})
	binding := svc.Binding{
		"a": {"r": "ra"},
		"b": {"r": "rb"},
	}
	snap := &broker.Snapshot{
		Avail: qos.ResourceVector{"ra": 100, "rb": 100},
		Alpha: map[string]float64{"ra": 1, "rb": 0.9},
	}
	g, err := Build(service, binding, snap)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes: A0, hi, lo, in-hi, in-lo, best, ok = 7.
	if g.NodeCount() != 7 {
		t.Fatalf("nodes = %d, want 7", g.NodeCount())
	}
	// Edges: 2 translation (a), 2 equivalence, 3 translation (b) = 7.
	if g.EdgeCount() != 7 {
		t.Fatalf("edges = %d, want 7", g.EdgeCount())
	}
	if g.Source < 0 || g.Nodes[g.Source].Level.Name != "A0" {
		t.Fatalf("source = %v", g.Source)
	}
	if len(g.Sinks) != 2 {
		t.Fatalf("sinks = %d", len(g.Sinks))
	}
	best, ok := g.BestSink()
	if !ok || g.Nodes[best.Node].Level.Name != "best" || best.Rank != 2 {
		t.Fatalf("best sink = %+v", best)
	}
	// Edge weights: a:hi = 0.4; b in-lo->best = 0.9 with alpha 0.9.
	var found bool
	for _, e := range g.Edges {
		if e.Kind != Translation {
			continue
		}
		from, to := g.Nodes[e.From], g.Nodes[e.To]
		if from.Level.Name == "in-lo" && to.Level.Name == "best" {
			found = true
			if e.Weight != 0.9 || e.Bottleneck != "rb" || e.Alpha != 0.9 {
				t.Fatalf("edge = %+v", e)
			}
		}
	}
	if !found {
		t.Fatal("in-lo->best edge missing")
	}
	// Node-ID order must be topological (the planners rely on it).
	for _, e := range g.Edges {
		if e.From >= e.To {
			t.Fatalf("edge %d -> %d violates topological node order", e.From, e.To)
		}
	}
	if got := len(g.TranslationEdges()); got != 5 {
		t.Fatalf("translation edges = %d, want 5", got)
	}
}

func TestBuildPrunesInfeasibleEdges(t *testing.T) {
	a := &svc.Component{
		ID: "a", In: []svc.Level{lvl("A0", 0)},
		Out: []svc.Level{lvl("hi", 1), lvl("lo", 2)},
		Translate: svc.TranslationTable{
			"A0": {"hi": {"r": 400}, "lo": {"r": 10}},
		}.Func(),
		Resources: []string{"r"},
	}
	service := svc.MustService("s", []*svc.Component{a}, nil, []string{"hi", "lo"})
	g, err := Build(service, svc.Binding{"a": {"r": "ra"}},
		&broker.Snapshot{Avail: qos.ResourceVector{"ra": 100}, Alpha: map[string]float64{"ra": 1}})
	if err != nil {
		t.Fatal(err)
	}
	// "hi" requires 400 > 100: its node must not exist.
	for _, n := range g.Nodes {
		if n.Level.Name == "hi" {
			t.Fatal("infeasible output level node created")
		}
	}
	if len(g.Sinks) != 1 || g.Sinks[0].Rank != 1 {
		t.Fatalf("sinks = %+v", g.Sinks)
	}
}

func TestBuildDeadEndUpstreamLevel(t *testing.T) {
	// Upstream "lo" level has no matching downstream input: it exists
	// as a node but is a dead end, and the graph still works via "hi".
	a := &svc.Component{
		ID: "a", In: []svc.Level{lvl("A0", 0)},
		Out: []svc.Level{lvl("hi", 1), lvl("lo", 2)},
		Translate: svc.TranslationTable{
			"A0": {"hi": {"r": 10}, "lo": {"r": 5}},
		}.Func(),
		Resources: []string{"r"},
	}
	b := &svc.Component{
		ID: "b", In: []svc.Level{lvl("in-hi", 1)}, // no in-lo
		Out:       []svc.Level{lvl("best", 10)},
		Translate: svc.TranslationTable{"in-hi": {"best": {"r": 10}}}.Func(),
		Resources: []string{"r"},
	}
	service := svc.MustService("s", []*svc.Component{a, b},
		[]svc.Edge{{From: "a", To: "b"}}, []string{"best"})
	g, err := Build(service, svc.Binding{"a": {"r": "ra"}, "b": {"r": "rb"}},
		&broker.Snapshot{Avail: qos.ResourceVector{"ra": 100, "rb": 100}, Alpha: map[string]float64{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Sinks) != 1 {
		t.Fatalf("sinks = %d", len(g.Sinks))
	}
}

func TestBuildBindingErrors(t *testing.T) {
	a := &svc.Component{
		ID: "a", In: []svc.Level{lvl("A0", 0)},
		Out:       []svc.Level{lvl("hi", 1)},
		Translate: svc.TranslationTable{"A0": {"hi": {"r": 10}}}.Func(),
		Resources: []string{"r"},
	}
	service := svc.MustService("s", []*svc.Component{a}, nil, []string{"hi"})
	snap := &broker.Snapshot{Avail: qos.ResourceVector{"ra": 100}, Alpha: map[string]float64{}}
	if _, err := Build(service, svc.Binding{}, snap); err == nil {
		t.Fatal("missing binding accepted")
	}
	if _, err := Build(nil, svc.Binding{}, snap); err == nil {
		t.Fatal("nil service accepted")
	}
	if _, err := Build(service, svc.Binding{"a": {"r": "ra"}}, nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
}

func TestWeightBottleneckDeterministicOnTies(t *testing.T) {
	req := qos.ResourceVector{"b": 50, "a": 50}
	avail := qos.ResourceVector{"a": 100, "b": 100}
	for i := 0; i < 20; i++ {
		_, bott, ok := Weight(req, avail)
		if !ok || bott != "a" {
			t.Fatalf("bottleneck = %q (tie must resolve to first name)", bott)
		}
	}
}

func TestWeightZeroRequirementOnZeroAvail(t *testing.T) {
	psi, _, ok := Weight(qos.ResourceVector{"a": 0}, qos.ResourceVector{})
	if !ok || psi != 0 {
		t.Fatal("zero requirement against absent resource must be feasible")
	}
}

func TestPathLevels(t *testing.T) {
	g := &Graph{Nodes: []Node{
		{ID: 0, Level: svc.Level{Name: "Qa"}},
		{ID: 1, Level: svc.Level{Name: "Qb"}},
		{ID: 2, Level: svc.Level{Name: "Qc"}},
	}}
	if got := g.PathLevels([]int{0, 1, 2}); got != "Qa-Qb-Qc" {
		t.Fatalf("PathLevels = %q", got)
	}
	if got := g.PathLevels(nil); got != "" {
		t.Fatalf("empty path = %q", got)
	}
}

func TestBuildFanInCombinations(t *testing.T) {
	// source -> {b, c} -> d (fan-in): d's Qin nodes are combinations.
	a := &svc.Component{
		ID: "a", In: []svc.Level{lvl("A0", 0)}, Out: []svc.Level{lvl("A1", 1)},
		Translate: svc.TranslationTable{"A0": {"A1": {"r": 1}}}.Func(),
		Resources: []string{"r"},
	}
	b := &svc.Component{
		ID: "b", In: []svc.Level{lvl("B", 1)}, Out: []svc.Level{lvl("B1", 5), lvl("B2", 6)},
		Translate: svc.TranslationTable{"B": {"B1": {"r": 1}, "B2": {"r": 2}}}.Func(),
		Resources: []string{"r"},
	}
	c := &svc.Component{
		ID: "c", In: []svc.Level{lvl("C", 1)}, Out: []svc.Level{lvl("C1", 7), lvl("C2", 8)},
		Translate: svc.TranslationTable{"C": {"C1": {"r": 1}, "C2": {"r": 2}}}.Func(),
		Resources: []string{"r"},
	}
	combo := func(name string, bq, cq float64) svc.Level {
		return svc.Level{Name: name, Vector: qos.ConcatAll([]string{"b", "c"},
			[]qos.Vector{qos.MustVector(qos.P("q", bq)), qos.MustVector(qos.P("q", cq))})}
	}
	d := &svc.Component{
		ID: "d",
		In: []svc.Level{
			combo("D11", 5, 7), combo("D12", 5, 8),
			combo("D21", 6, 7), combo("D22", 6, 8),
		},
		Out: []svc.Level{lvl("out", 99)},
		Translate: svc.TranslationTable{
			"D11": {"out": {"r": 1}},
			"D12": {"out": {"r": 2}},
			"D21": {"out": {"r": 3}},
			"D22": {"out": {"r": 4}},
		}.Func(),
		Resources: []string{"r"},
	}
	service := svc.MustService("fan", []*svc.Component{a, b, c, d}, []svc.Edge{
		{From: "a", To: "b"}, {From: "a", To: "c"},
		{From: "b", To: "d"}, {From: "c", To: "d"},
	}, []string{"out"})
	binding := svc.Binding{}
	avail := qos.ResourceVector{}
	for _, id := range []svc.ComponentID{"a", "b", "c", "d"} {
		binding[id] = map[string]string{"r": "r@" + string(id)}
		avail["r@"+string(id)] = 100
	}
	g, err := Build(service, binding, &broker.Snapshot{Avail: avail, Alpha: map[string]float64{}})
	if err != nil {
		t.Fatal(err)
	}
	var combos int
	for _, n := range g.Nodes {
		if n.Comp == "d" && n.Kind == In {
			combos++
			if len(n.Parts) != 2 {
				t.Fatalf("combo node parts = %v", n.Parts)
			}
			// The parts must point at out nodes of b and c.
			for up, nodeID := range n.Parts {
				pn := g.Nodes[nodeID]
				if pn.Comp != up || pn.Kind != Out {
					t.Fatalf("part %s -> node %+v", up, pn)
				}
			}
		}
	}
	if combos != 4 {
		t.Fatalf("fan-in combinations = %d, want 4 (2x2)", combos)
	}
}

func TestDOTRendersStructure(t *testing.T) {
	a := &svc.Component{
		ID: "a", In: []svc.Level{lvl("A0", 0)},
		Out: []svc.Level{lvl("hi", 1)},
		Translate: svc.TranslationTable{
			"A0": {"hi": {"r": 40}},
		}.Func(),
		Resources: []string{"r"},
	}
	b := &svc.Component{
		ID: "b", In: []svc.Level{lvl("in-hi", 1)},
		Out:       []svc.Level{lvl("best", 10)},
		Translate: svc.TranslationTable{"in-hi": {"best": {"r": 50}}}.Func(),
		Resources: []string{"r"},
	}
	service := svc.MustService("s", []*svc.Component{a, b},
		[]svc.Edge{{From: "a", To: "b"}}, []string{"best"})
	g, err := Build(service, svc.Binding{"a": {"r": "ra"}, "b": {"r": "rb"}},
		&broker.Snapshot{Avail: qos.ResourceVector{"ra": 100, "rb": 100}, Alpha: map[string]float64{}})
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOT()
	for _, want := range []string{
		"digraph QRG", "cluster_0", "cluster_1",
		`label="a"`, `label="b"`,
		`label="A0"`, `label="best"`,
		"shape=diamond",      // source
		"shape=doublecircle", // sink
		`label="0.40"`,       // translation weight
		"style=dashed",       // equivalence edge
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Balanced braces: parseable structure.
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Fatal("unbalanced braces in DOT output")
	}
}

func TestWeightZeroRequirementZeroAvailability(t *testing.T) {
	// 0/0 must not reach the contention function: the term is skipped, so
	// the pair is feasible with Ψ contribution 0 — no NaN can leak into
	// the Dijkstra edge weights.
	psi, bott, ok := Weight(
		qos.ResourceVector{"drained": 0, "cpu": 10},
		qos.ResourceVector{"drained": 0, "cpu": 100})
	if !ok {
		t.Fatal("zero requirement against zero availability must be feasible")
	}
	if math.IsNaN(psi) || psi != 0.1 {
		t.Fatalf("psi = %v, want 0.1 from cpu alone", psi)
	}
	if bott != "cpu" {
		t.Fatalf("bottleneck = %q, want cpu (drained must not contribute)", bott)
	}
}

func TestWeightZeroRequirementAllContentionFuncs(t *testing.T) {
	// Every alternative contention definition shares the skip: none may
	// see the 0/0 pair.
	for _, name := range []string{"", "ratio", "headroom", "log"} {
		f, ok := ContentionByName(name)
		if !ok {
			t.Fatalf("unknown contention %q", name)
		}
		psi, _, ok := WeightWith(qos.ResourceVector{"r": 0}, qos.ResourceVector{"r": 0}, f)
		if !ok || psi != 0 || math.IsNaN(psi) {
			t.Fatalf("contention %q: psi = %v ok = %v, want 0/true", name, psi, ok)
		}
	}
}

func TestWeightPositiveRequirementZeroAvailabilityInfeasible(t *testing.T) {
	// The boundary next to the 0/0 case: any positive demand on a drained
	// resource stays a feasibility failure.
	_, bott, ok := Weight(qos.ResourceVector{"r": 1e-12}, qos.ResourceVector{"r": 0})
	if ok || bott != "r" {
		t.Fatalf("positive requirement on drained resource: ok = %v bottleneck = %q", ok, bott)
	}
}
