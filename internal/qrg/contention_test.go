package qrg

import (
	"math"
	"testing"
	"testing/quick"

	"qosres/internal/broker"
	"qosres/internal/qos"
	"qosres/internal/svc"
)

func TestContentionByName(t *testing.T) {
	for _, name := range []string{"", "ratio", "headroom", "log"} {
		f, ok := ContentionByName(name)
		if !ok || f == nil {
			t.Errorf("ContentionByName(%q) failed", name)
		}
	}
	if _, ok := ContentionByName("nonsense"); ok {
		t.Fatal("unknown name accepted")
	}
}

func TestContentionFunctionsMonotone(t *testing.T) {
	// Every ψ definition must grow with the requirement and shrink with
	// availability (the admissibility property of footnote 2).
	funcs := map[string]ContentionFunc{
		"ratio": RatioContention, "headroom": HeadroomContention, "log": LogContention,
	}
	check := func(req1, req2, avail uint8) bool {
		r1 := 1 + float64(req1%50)
		r2 := r1 + 1 + float64(req2%20)
		a := r2 + 1 + float64(avail%100)
		for _, f := range funcs {
			if !(f(r1, a) < f(r2, a)) {
				return false
			}
			if !(f(r1, a) > f(r1, a+10)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLogContentionSaturates(t *testing.T) {
	if !math.IsInf(LogContention(10, 10), 1) {
		t.Fatal("full reservation must be infinitely contended under log")
	}
	if got := LogContention(0, 10); got != 0 {
		t.Fatalf("zero requirement log contention = %v", got)
	}
}

func TestLogContentionIsMonotoneTransformOfRatio(t *testing.T) {
	// -log1p(-r) is strictly increasing in r = req/avail, so the log
	// index must order any two feasible pairs exactly like the ratio —
	// the reason BenchmarkAblationContention finds identical plans.
	check := func(a1, b1, a2, b2 uint8) bool {
		req1, av1 := 1+float64(a1%80), 100.0
		req2, av2 := 1+float64(a2%80), 50+float64(b2%100)
		if req2 > av2 {
			return true
		}
		_ = b1
		ratioOrder := RatioContention(req1, av1) < RatioContention(req2, av2)
		logOrder := LogContention(req1, av1) < LogContention(req2, av2)
		eq := RatioContention(req1, av1) == RatioContention(req2, av2)
		return eq || ratioOrder == logOrder
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHeadroomReordersBottlenecks(t *testing.T) {
	// The property that makes headroom a genuine ablation: two resources
	// with equal ratios but different absolute headroom are ordered
	// differently.
	// ratio: 10/100 == 1/10; headroom: 10/(1+90) < 1/(1+9)? 0.109 vs 0.1.
	rA := RatioContention(10, 100)
	rB := RatioContention(1, 10)
	if rA != rB {
		t.Fatalf("setup: ratios %v vs %v must tie", rA, rB)
	}
	hA := HeadroomContention(10, 100)
	hB := HeadroomContention(1, 10)
	if hA == hB {
		t.Fatal("headroom should distinguish the pair the ratio ties")
	}
}

func TestBuildWithOptionsAppliesContention(t *testing.T) {
	g1, g2 := buildContentionPair(t)
	// Same structure, different weights.
	if g1.EdgeCount() != g2.EdgeCount() {
		t.Fatal("contention choice changed graph structure")
	}
	var differ bool
	for i := range g1.Edges {
		if g1.Edges[i].Kind != Translation {
			continue
		}
		if g1.Edges[i].Weight != g2.Edges[i].Weight {
			differ = true
		}
	}
	if !differ {
		t.Fatal("headroom weights identical to ratio weights")
	}
}

func buildContentionPair(t *testing.T) (*Graph, *Graph) {
	t.Helper()
	a := &svc.Component{
		ID: "a", In: []svc.Level{lvl("A0", 0)},
		Out: []svc.Level{lvl("hi", 1), lvl("lo", 2)},
		Translate: svc.TranslationTable{
			"A0": {"hi": {"r": 40}, "lo": {"r": 10}},
		}.Func(),
		Resources: []string{"r"},
	}
	service := svc.MustService("s", []*svc.Component{a}, nil, []string{"hi", "lo"})
	binding := svc.Binding{"a": {"r": "ra"}}
	snap := &broker.Snapshot{Avail: qos.ResourceVector{"ra": 100}, Alpha: map[string]float64{"ra": 1}}
	g1, err := Build(service, binding, snap)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := BuildWithOptions(service, binding, snap, BuildOptions{Contention: HeadroomContention})
	if err != nil {
		t.Fatal(err)
	}
	return g1, g2
}

func TestNodeEdgeKindStrings(t *testing.T) {
	if In.String() != "in" || Out.String() != "out" {
		t.Fatal("NodeKind strings wrong")
	}
	if Translation.String() != "translation" || Equivalence.String() != "equivalence" {
		t.Fatal("EdgeKind strings wrong")
	}
}

func TestBestSinkEmpty(t *testing.T) {
	g := &Graph{}
	if _, ok := g.BestSink(); ok {
		t.Fatal("empty graph reported a sink")
	}
}
