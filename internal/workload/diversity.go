package workload

import (
	"qosres/internal/qos"
	"qosres/internal/svc"
)

// CompressDiversity reproduces the "less diversified resource
// requirement" setting of section 5.2.5 / figure 13: for each resource of
// a component, the requirement values across the component's translation
// edges keep the same average as the base table, but the ratio between
// the highest and the lowest value is limited to ratio:1, with the
// remaining values distributed proportionally between them.
//
// The compression is the affine map v' = mean + s·(v-mean) with s chosen
// so that max'/min' == ratio; it preserves the mean exactly and the
// relative order of all values. Resources whose spread is already within
// the ratio are left untouched.
func CompressDiversity(t svc.TranslationTable, ratio float64) svc.TranslationTable {
	if ratio <= 0 {
		return cloneTable(t)
	}
	// Gather per-resource statistics across every edge of the table.
	type stat struct {
		min, max, sum float64
		n             int
	}
	stats := make(map[string]*stat)
	for _, row := range t {
		for _, req := range row {
			for r, val := range req {
				s := stats[r]
				if s == nil {
					s = &stat{min: val, max: val}
					stats[r] = s
				}
				if val < s.min {
					s.min = val
				}
				if val > s.max {
					s.max = val
				}
				s.sum += val
				s.n++
			}
		}
	}
	scale := make(map[string]float64, len(stats))
	mean := make(map[string]float64, len(stats))
	for r, s := range stats {
		mean[r] = s.sum / float64(s.n)
		if s.min <= 0 || s.max/s.min <= ratio {
			scale[r] = 1
			continue
		}
		// Solve (mean + s(max-mean)) == ratio * (mean + s(min-mean)).
		denom := (s.max - mean[r]) - ratio*(s.min-mean[r])
		if denom <= 0 {
			scale[r] = 1
			continue
		}
		scale[r] = (ratio - 1) * mean[r] / denom
	}
	out := make(svc.TranslationTable, len(t))
	for in, row := range t {
		nr := make(map[string]qos.ResourceVector, len(row))
		for o, req := range row {
			nreq := make(qos.ResourceVector, len(req))
			for r, val := range req {
				nreq[r] = mean[r] + scale[r]*(val-mean[r])
			}
			nr[o] = nreq
		}
		out[in] = nr
	}
	return out
}

func cloneTable(t svc.TranslationTable) svc.TranslationTable {
	out := make(svc.TranslationTable, len(t))
	for in, row := range t {
		nr := make(map[string]qos.ResourceVector, len(row))
		for o, req := range row {
			nr[o] = req.Clone()
		}
		out[in] = nr
	}
	return out
}
