package workload

import (
	"qosres/internal/broker"
	"qosres/internal/qos"
	"qosres/internal/svc"
)

// This file reconstructs the running example of sections 2 and 4.1: the
// distributed "Video Streaming + Tracking" service of figure 1 whose QRG
// (figures 4-5) illustrates the basic algorithm. The requirement values
// are chosen so that, against the canonical availability snapshot below,
// the QRG reproduces the paper's narrative: the top-ranked end-to-end
// level is infeasible, the algorithm settles on the second level at
// bottleneck contention 0.16, and the predecessor tie-break rule of
// section 4.1.2 fires on the way.

// Video service component IDs (figure 1).
const (
	CompVideoSender   svc.ComponentID = "VideoSender"
	CompObjectTracker svc.ComponentID = "ObjectTracker"
	CompVideoPlayer   svc.ComponentID = "VideoPlayer"
)

// Video service abstract resource names.
const (
	ResDisk = "disk"
)

// Concrete resource IDs of the canonical video-example environment.
const (
	VideoResServerCPU  = "cpu@videoserver"
	VideoResServerDisk = "disk@videoserver"
	VideoResProxyCPU   = "cpu@trackingproxy"
	VideoResNetSP      = "net:videoserver->trackingproxy"
	VideoResClientCPU  = "cpu@client"
	VideoResNetPC      = "net:trackingproxy->client"
)

// VideoAvail is the per-resource availability of the canonical snapshot.
const VideoAvail = 100.0

// videoReq builds a requirement whose dominant resource yields the given
// contention weight against VideoAvail, with the secondary resource at
// half that load.
func videoReq(primary, secondary string, weight float64) qos.ResourceVector {
	return qos.ResourceVector{
		primary:   weight * VideoAvail,
		secondary: weight * VideoAvail / 2,
	}
}

// VideoService builds the Video Streaming + Tracking service:
// VideoSender -> ObjectTracker -> VideoPlayer, with QoS parameters
// following section 2.2 (frame rate, image size, trackable objects,
// buffering delay) and six end-to-end levels ranked
// Qn > Qo > Qp > Qq > Qs > Qr as in the figure-5 example.
func VideoService() *svc.Service {
	// Stream qualities [Frame_Rate, Image_Size].
	qa := v(qos.P("Frame_Rate", 30), qos.P("Image_Size", 4))
	qb := v(qos.P("Frame_Rate", 30), qos.P("Image_Size", 4))
	qc := v(qos.P("Frame_Rate", 25), qos.P("Image_Size", 3))
	qd := v(qos.P("Frame_Rate", 20), qos.P("Image_Size", 2))
	// Tracked streams [Frame_Rate, Image_Size, Objects].
	qh := v(qos.P("Frame_Rate", 30), qos.P("Image_Size", 4), qos.P("Objects", 3))
	qi := v(qos.P("Frame_Rate", 25), qos.P("Image_Size", 3), qos.P("Objects", 2))
	qj := v(qos.P("Frame_Rate", 20), qos.P("Image_Size", 2), qos.P("Objects", 1))
	// End-to-end levels [Frame_Rate, Image_Size, Objects, Buffering_Delay].
	e2e := func(rate, size, objects, delay float64) qos.Vector {
		return v(qos.P("Frame_Rate", rate), qos.P("Image_Size", size),
			qos.P("Objects", objects), qos.P("Buffering_Delay", delay))
	}

	sender := &svc.Component{
		ID:  CompVideoSender,
		In:  []svc.Level{{Name: "Qa", Vector: qa}},
		Out: []svc.Level{{Name: "Qb", Vector: qb}, {Name: "Qc", Vector: qc}, {Name: "Qd", Vector: qd}},
		Translate: svc.TranslationTable{
			"Qa": {
				"Qb": videoReq(ResCPU, ResDisk, 0.20),
				"Qc": videoReq(ResCPU, ResDisk, 0.10),
				"Qd": videoReq(ResDisk, ResCPU, 0.10),
			},
		}.Func(),
		Resources: []string{ResCPU, ResDisk},
	}
	tracker := &svc.Component{
		ID:  CompObjectTracker,
		In:  []svc.Level{{Name: "Qe", Vector: qb}, {Name: "Qf", Vector: qc}, {Name: "Qg", Vector: qd}},
		Out: []svc.Level{{Name: "Qh", Vector: qh}, {Name: "Qi", Vector: qi}, {Name: "Qj", Vector: qj}},
		Translate: svc.TranslationTable{
			"Qe": {"Qh": videoReq(ResNet, ResCPU, 0.12)},
			"Qf": {
				// Scaling the image up from the mid-quality input costs
				// extra tracking-proxy CPU (the figure-4 note).
				"Qh": videoReq(ResCPU, ResNet, 0.16),
				"Qi": videoReq(ResCPU, ResNet, 0.15),
			},
			"Qg": {
				"Qi": videoReq(ResCPU, ResNet, 0.12),
				"Qj": videoReq(ResNet, ResCPU, 0.08),
			},
		}.Func(),
		Resources: []string{ResCPU, ResNet},
	}
	player := &svc.Component{
		ID: CompVideoPlayer,
		In: []svc.Level{{Name: "Qk", Vector: qh}, {Name: "Ql", Vector: qi}, {Name: "Qm", Vector: qj}},
		Out: []svc.Level{
			{Name: "Qn", Vector: e2e(30, 4, 3, 1)},
			{Name: "Qo", Vector: e2e(30, 4, 3, 2)},
			{Name: "Qp", Vector: e2e(25, 3, 2, 2)},
			{Name: "Qq", Vector: e2e(25, 3, 2, 3)},
			{Name: "Qs", Vector: e2e(20, 2, 1, 3)},
			{Name: "Qr", Vector: e2e(20, 2, 1, 5)},
		},
		Translate: svc.TranslationTable{
			"Qk": {
				// Qn needs more client CPU than the snapshot offers: the
				// top end-to-end level is infeasible, exactly as in
				// figure 5 (value Inf).
				"Qn": qos.ResourceVector{ResCPU: 1.2 * VideoAvail, ResNet: 0.1 * VideoAvail},
				"Qo": videoReq(ResNet, ResCPU, 0.14),
			},
			"Ql": {
				"Qn": qos.ResourceVector{ResCPU: 1.5 * VideoAvail, ResNet: 0.1 * VideoAvail},
				"Qo": videoReq(ResCPU, ResNet, 0.16),
				"Qp": videoReq(ResNet, ResCPU, 0.15),
				"Qr": videoReq(ResNet, ResCPU, 0.12),
			},
			"Qm": {
				"Qq": videoReq(ResNet, ResCPU, 0.13),
				"Qs": videoReq(ResNet, ResCPU, 0.08),
			},
		}.Func(),
		Resources: []string{ResCPU, ResNet},
	}
	return svc.MustService("VideoStreamingTracking",
		[]*svc.Component{sender, tracker, player},
		[]svc.Edge{
			{From: CompVideoSender, To: CompObjectTracker},
			{From: CompObjectTracker, To: CompVideoPlayer},
		},
		[]string{"Qn", "Qo", "Qp", "Qq", "Qs", "Qr"})
}

// VideoBinding is the canonical binding of the video service onto the
// example environment of figure 1: the sender on the video server, the
// tracker on the tracking proxy (pulling the stream over the
// server->proxy network resource), the player on the client.
func VideoBinding() svc.Binding {
	return svc.Binding{
		CompVideoSender:   {ResCPU: VideoResServerCPU, ResDisk: VideoResServerDisk},
		CompObjectTracker: {ResCPU: VideoResProxyCPU, ResNet: VideoResNetSP},
		CompVideoPlayer:   {ResCPU: VideoResClientCPU, ResNet: VideoResNetPC},
	}
}

// VideoSnapshot is the canonical availability snapshot (100 units of
// every resource, no availability trend) that makes the video QRG match
// the figure-5 weights.
func VideoSnapshot() *broker.Snapshot {
	avail := qos.ResourceVector{}
	alpha := map[string]float64{}
	for _, r := range []string{
		VideoResServerCPU, VideoResServerDisk, VideoResProxyCPU,
		VideoResNetSP, VideoResClientCPU, VideoResNetPC,
	} {
		avail[r] = VideoAvail
		alpha[r] = 1
	}
	return &broker.Snapshot{At: 0, Avail: avail, Alpha: alpha}
}
