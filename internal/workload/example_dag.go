package workload

import (
	"qosres/internal/broker"
	"qosres/internal/qos"
	"qosres/internal/svc"
)

// This file reconstructs the DAG example of section 4.3.2 (figures 6-8):
// a five-component service c1 -> c2 -> {c3, c4} -> c5 with a fan-out
// component (c2) and a fan-in component (c5). The requirement values are
// chosen so that, against the canonical unit snapshot, the two-pass
// heuristic reproduces the paper's figure-8 walk-through exactly:
//
//   - pass II backtracks from sink Qv through the fan-in combination
//     (Qn, Qp), and the branches through c3 and c4 fail to converge at
//     the fan-out component c2 (one demands Qi, the other Qh);
//   - the local resolution fixes Qn and Qp and compares the candidates:
//     reaching them from Qi needs highest Ψe 0.30, from Qh 0.35 — so Qi
//     is selected, exactly the paper's numbers.

// DAG example component IDs.
const (
	DagC1 svc.ComponentID = "c1"
	DagC2 svc.ComponentID = "c2"
	DagC3 svc.ComponentID = "c3"
	DagC4 svc.ComponentID = "c4"
	DagC5 svc.ComponentID = "c5"
)

// dagRes names the single abstract resource of every DAG-example
// component; each component binds it to its own concrete resource with
// availability 1, so translation-edge weights equal the requirement
// values verbatim.
const dagRes = "r"

func dagReq(w float64) qos.ResourceVector { return qos.ResourceVector{dagRes: w} }

func dagLevel(name string, q float64) svc.Level {
	return svc.Level{Name: name, Vector: v(qos.P("q", q))}
}

// DagService builds the figure 6-8 example service.
func DagService() *svc.Service {
	// Distinct "q" values enforce exactly the intended equivalences.
	qa := dagLevel("Qa", 5)
	qb, qc := dagLevel("Qb", 2), dagLevel("Qc", 1)
	qd, qe := dagLevel("Qd", 2), dagLevel("Qe", 1) // == Qb, Qc
	qh, qi := dagLevel("Qh", 12), dagLevel("Qi", 11)
	qj, qk := dagLevel("Qj", 12), dagLevel("Qk", 11) // == Qh, Qi (c3 side)
	qn, qo := dagLevel("Qn", 23), dagLevel("Qo", 21)
	ql, qm := dagLevel("Ql", 12), dagLevel("Qm", 11) // == Qh, Qi (c4 side)
	qp, qq := dagLevel("Qp", 33), dagLevel("Qq", 31)
	qv, qw := dagLevel("Qv", 99), dagLevel("Qw", 98)

	// Fan-in input levels of c5: labelled concatenations of one c3
	// output and one c4 output (labels sorted by component ID).
	concat := func(name string, a, b svc.Level) svc.Level {
		return svc.Level{
			Name:   name,
			Vector: qos.ConcatAll([]string{string(DagC3), string(DagC4)}, []qos.Vector{a.Vector, b.Vector}),
		}
	}
	qr := concat("Qr", qn, qp)
	qs := concat("Qs", qn, qq)
	qt := concat("Qt", qo, qp)
	qu := concat("Qu", qo, qq)

	c1 := &svc.Component{
		ID: DagC1, In: []svc.Level{qa}, Out: []svc.Level{qb, qc},
		Translate: svc.TranslationTable{
			"Qa": {"Qb": dagReq(0.10), "Qc": dagReq(0.20)},
		}.Func(),
		Resources: []string{dagRes},
	}
	c2 := &svc.Component{
		ID: DagC2, In: []svc.Level{qd, qe}, Out: []svc.Level{qh, qi},
		Translate: svc.TranslationTable{
			"Qd": {"Qh": dagReq(0.15), "Qi": dagReq(0.25)},
			"Qe": {"Qh": dagReq(0.10), "Qi": dagReq(0.12)},
		}.Func(),
		Resources: []string{dagRes},
	}
	c3 := &svc.Component{
		ID: DagC3, In: []svc.Level{qj, qk}, Out: []svc.Level{qn, qo},
		Translate: svc.TranslationTable{
			"Qj": {"Qn": dagReq(0.35), "Qo": dagReq(0.10)},
			"Qk": {"Qn": dagReq(0.30), "Qo": dagReq(0.12)},
		}.Func(),
		Resources: []string{dagRes},
	}
	c4 := &svc.Component{
		ID: DagC4, In: []svc.Level{ql, qm}, Out: []svc.Level{qp, qq},
		Translate: svc.TranslationTable{
			"Ql": {"Qp": dagReq(0.20), "Qq": dagReq(0.11)},
			"Qm": {"Qp": dagReq(0.28), "Qq": dagReq(0.13)},
		}.Func(),
		Resources: []string{dagRes},
	}
	c5 := &svc.Component{
		ID: DagC5, In: []svc.Level{qr, qs, qt, qu}, Out: []svc.Level{qv, qw},
		Translate: svc.TranslationTable{
			"Qr": {"Qv": dagReq(0.18)},
			"Qs": {"Qw": dagReq(0.20)},
			"Qt": {"Qw": dagReq(0.12)},
			"Qu": {"Qw": dagReq(0.10)},
		}.Func(),
		Resources: []string{dagRes},
	}
	return svc.MustService("DagExample",
		[]*svc.Component{c1, c2, c3, c4, c5},
		[]svc.Edge{
			{From: DagC1, To: DagC2},
			{From: DagC2, To: DagC3},
			{From: DagC2, To: DagC4},
			{From: DagC3, To: DagC5},
			{From: DagC4, To: DagC5},
		},
		[]string{"Qv", "Qw"})
}

// DagBinding binds each component's resource to its own concrete
// per-component resource.
func DagBinding() svc.Binding {
	b := svc.Binding{}
	for _, c := range []svc.ComponentID{DagC1, DagC2, DagC3, DagC4, DagC5} {
		b[c] = map[string]string{dagRes: "r@" + string(c)}
	}
	return b
}

// DagSnapshot is the canonical unit-availability snapshot under which
// translation weights equal requirement values.
func DagSnapshot() *broker.Snapshot {
	avail := qos.ResourceVector{}
	alpha := map[string]float64{}
	for _, c := range []svc.ComponentID{DagC1, DagC2, DagC3, DagC4, DagC5} {
		avail["r@"+string(c)] = 1
		alpha["r@"+string(c)] = 1
	}
	return &broker.Snapshot{At: 0, Avail: avail, Alpha: alpha}
}
