// Package workload defines the distributed services of the paper's
// performance study (section 5.1) plus the illustrative services of
// sections 2 and 4.3.2. Each of the four deployed services S1-S4 is a
// chain of three components cS -> cP -> cC; services S1 and S4 use the
// QoS-level/requirement tables of figure 10(a), S2 and S3 those of
// figure 10(b).
//
// The figure bodies did not survive text extraction of the paper, so the
// level lattices are reconstructed exactly from the path enumerations of
// Tables 1-2 (which name every node and edge on the selected paths), and
// the numeric requirement values are chosen to honor the properties the
// paper states: higher output levels cost more, reaching a given output
// level from a lower input level costs more local computation (the
// "intrapolation" note of figure 4), and requirement diversity across
// edges creates the resource trade-off options that drive the algorithm
// (section 5.2.5). See DESIGN.md for the substitution note.
package workload

import (
	"qosres/internal/qos"
	"qosres/internal/svc"
)

// Component IDs shared by every service chain of the performance study.
const (
	CompServer svc.ComponentID = "cS"
	CompProxy  svc.ComponentID = "cP"
	CompClient svc.ComponentID = "cC"
)

// Abstract resource names used by the components: cS requires the
// server's local resource hS; cP requires the proxy's local resource hP
// and the server->proxy network resource lPS; cC requires the
// proxy->client network resource lCP.
const (
	ResCPU = "cpu"
	ResNet = "net"
)

// Family selects which figure-10 table a service uses.
type Family int

const (
	// FamilyA is figure 10(a), used by services S1 and S4.
	FamilyA Family = iota
	// FamilyB is figure 10(b), used by services S2 and S3.
	FamilyB
)

// String names the family.
func (f Family) String() string {
	if f == FamilyA {
		return "fig10a"
	}
	return "fig10b"
}

// FamilyOf returns the table family of service Si per section 5.1.
func FamilyOf(serviceIndex int) Family {
	switch serviceIndex {
	case 1, 4:
		return FamilyA
	default:
		return FamilyB
	}
}

// v is a terse vector literal helper.
func v(ps ...qos.Param) qos.Vector { return qos.MustVector(ps...) }

func rr(cpu, net float64) qos.ResourceVector {
	out := qos.ResourceVector{}
	if cpu > 0 {
		out[ResCPU] = cpu
	}
	if net > 0 {
		out[ResNet] = net
	}
	return out
}

// --- Figure 10(a): services S1, S4 -----------------------------------
//
// Level lattice (from Table 1):
//
//	cS:  Qa -> {Qb, Qc, Qd}
//	cP:  {Qe,Qf,Qg} (== Qb,Qc,Qd) -> {Qh, Qi, Qj, Qk}
//	cC:  {Ql,Qm,Qn,Qo} (== Qh,Qi,Qj,Qk) -> {Qp > Qq > Qr}

// levelsA returns the level definitions of figure 10(a). QoS vectors only
// need to make equivalent levels equal; their parameter values are
// nominal (frame rate, image size, trackable objects, buffering delay).
func levelsA() (src svc.Level, sOut, pIn, pOut, cIn, cOut []svc.Level) {
	// Stream qualities produced by the server.
	qb := v(qos.P("rate", 30), qos.P("size", 4))
	qc := v(qos.P("rate", 25), qos.P("size", 3))
	qd := v(qos.P("rate", 20), qos.P("size", 2))
	// Proxy outputs add the number of trackable objects.
	qh := v(qos.P("rate", 30), qos.P("size", 4), qos.P("objects", 3))
	qi := v(qos.P("rate", 25), qos.P("size", 3), qos.P("objects", 3))
	qj := v(qos.P("rate", 20), qos.P("size", 2), qos.P("objects", 2))
	qk := v(qos.P("rate", 15), qos.P("size", 2), qos.P("objects", 1))
	// End-to-end levels add the buffering delay.
	qp := v(qos.P("rate", 25), qos.P("size", 3), qos.P("objects", 3), qos.P("delay", 2))
	qq := v(qos.P("rate", 20), qos.P("size", 2), qos.P("objects", 2), qos.P("delay", 3))
	qr := v(qos.P("rate", 15), qos.P("size", 1), qos.P("objects", 1), qos.P("delay", 5))

	src = svc.Level{Name: "Qa", Vector: v(qos.P("rate", 30), qos.P("size", 4))}
	sOut = []svc.Level{{Name: "Qb", Vector: qb}, {Name: "Qc", Vector: qc}, {Name: "Qd", Vector: qd}}
	pIn = []svc.Level{{Name: "Qe", Vector: qb}, {Name: "Qf", Vector: qc}, {Name: "Qg", Vector: qd}}
	pOut = []svc.Level{{Name: "Qh", Vector: qh}, {Name: "Qi", Vector: qi}, {Name: "Qj", Vector: qj}, {Name: "Qk", Vector: qk}}
	cIn = []svc.Level{{Name: "Ql", Vector: qh}, {Name: "Qm", Vector: qi}, {Name: "Qn", Vector: qj}, {Name: "Qo", Vector: qk}}
	cOut = []svc.Level{{Name: "Qp", Vector: qp}, {Name: "Qq", Vector: qq}, {Name: "Qr", Vector: qr}}
	return
}

// TablesA returns the base translation tables of figure 10(a), one per
// component. Callers receive fresh copies safe to scale or compress.
//
// The values encode the location trade-off that makes contention
// awareness matter: a path through a high-quality intermediate stream
// loads the server CPU and the server->proxy link but needs little proxy
// CPU (no upscaling) and little proxy->client bandwidth; a path through
// a low-quality intermediate is cheap upstream but pays upscaling CPU at
// the proxy and correction bandwidth on the proxy->client link. Every
// source-to-sink path is therefore Pareto-optimal under some
// availability profile, which is what lets the algorithm spread load
// (Table 1) as resources take turns being the bottleneck.
func TablesA() (server, proxy, client svc.TranslationTable) {
	server = svc.TranslationTable{
		"Qa": {
			"Qb": rr(12, 0),
			"Qc": rr(6, 0),
			"Qd": rr(2, 0),
		},
	}
	proxy = svc.TranslationTable{
		// High-quality input: the stream from the server is large (high
		// lPS bandwidth) but tracking needs no upscaling CPU.
		"Qe": {
			"Qh": rr(3, 12),
			"Qi": rr(2.5, 12),
		},
		// Mid-quality input: moderate bandwidth; reaching the top output
		// requires the hypothetical image intrapolation, at high CPU.
		"Qf": {
			"Qh": rr(14, 7),
			"Qi": rr(5, 7),
			"Qj": rr(3, 7),
			"Qk": rr(2.5, 7),
		},
		// Low-quality input: small stream; upscaling to mid outputs
		// costs CPU.
		"Qg": {
			"Qj": rr(9, 3),
			"Qk": rr(4, 3),
		},
	}
	client = svc.TranslationTable{
		// Delivering a given end-to-end level from a lower-quality
		// intermediate stream costs extra proxy->client bandwidth
		// (interpolation/correction data), so netPC pulls against the
		// upstream savings.
		"Ql": {"Qp": rr(0, 8)},
		"Qm": {"Qp": rr(0, 11), "Qq": rr(0, 6)},
		"Qn": {"Qp": rr(0, 15), "Qq": rr(0, 7.5), "Qr": rr(0, 5)},
		"Qo": {"Qq": rr(0, 9), "Qr": rr(0, 4)},
	}
	return
}

// RankingA orders the end-to-end levels of figure 10(a) best-first:
// Qp > Qq > Qr (levels 3, 2, 1).
func RankingA() []string { return []string{"Qp", "Qq", "Qr"} }

// --- Figure 10(b): services S2, S3 -----------------------------------
//
// Level lattice (from Table 2):
//
//	cS:  Qa -> {Qb, Qc}
//	cP:  {Qd,Qe} (== Qb,Qc) -> {Qf, Qg, Qh}
//	cC:  {Qi,Qj,Qk} (== Qf,Qg,Qh) -> {Ql > Qm > Qn}

func levelsB() (src svc.Level, sOut, pIn, pOut, cIn, cOut []svc.Level) {
	qb := v(qos.P("rate", 30), qos.P("size", 4))
	qc := v(qos.P("rate", 20), qos.P("size", 2))
	qf := v(qos.P("rate", 30), qos.P("size", 4), qos.P("objects", 3))
	qg := v(qos.P("rate", 25), qos.P("size", 3), qos.P("objects", 2))
	qh := v(qos.P("rate", 20), qos.P("size", 2), qos.P("objects", 1))
	ql := v(qos.P("rate", 30), qos.P("size", 4), qos.P("objects", 3), qos.P("delay", 2))
	qm := v(qos.P("rate", 25), qos.P("size", 3), qos.P("objects", 2), qos.P("delay", 3))
	qn := v(qos.P("rate", 20), qos.P("size", 2), qos.P("objects", 1), qos.P("delay", 5))

	src = svc.Level{Name: "Qa", Vector: v(qos.P("rate", 30), qos.P("size", 4))}
	sOut = []svc.Level{{Name: "Qb", Vector: qb}, {Name: "Qc", Vector: qc}}
	pIn = []svc.Level{{Name: "Qd", Vector: qb}, {Name: "Qe", Vector: qc}}
	pOut = []svc.Level{{Name: "Qf", Vector: qf}, {Name: "Qg", Vector: qg}, {Name: "Qh", Vector: qh}}
	cIn = []svc.Level{{Name: "Qi", Vector: qf}, {Name: "Qj", Vector: qg}, {Name: "Qk", Vector: qh}}
	cOut = []svc.Level{{Name: "Ql", Vector: ql}, {Name: "Qm", Vector: qm}, {Name: "Qn", Vector: qn}}
	return
}

// TablesB returns the base translation tables of figure 10(b), built on
// the same location trade-off as TablesA.
func TablesB() (server, proxy, client svc.TranslationTable) {
	server = svc.TranslationTable{
		"Qa": {
			"Qb": rr(10, 0),
			"Qc": rr(3, 0),
		},
	}
	proxy = svc.TranslationTable{
		"Qd": {
			"Qf": rr(3, 11),
			"Qg": rr(2.5, 11),
			"Qh": rr(2, 11),
		},
		"Qe": {
			"Qf": rr(13, 4),
			"Qg": rr(7, 4),
			"Qh": rr(3, 4),
		},
	}
	client = svc.TranslationTable{
		"Qi": {"Ql": rr(0, 7), "Qm": rr(0, 5)},
		"Qj": {"Ql": rr(0, 10), "Qm": rr(0, 6), "Qn": rr(0, 4)},
		"Qk": {"Ql": rr(0, 14), "Qm": rr(0, 8), "Qn": rr(0, 4.5)},
	}
	return
}

// RankingB orders the end-to-end levels of figure 10(b) best-first:
// Ql > Qm > Qn (levels 3, 2, 1).
func RankingB() []string { return []string{"Ql", "Qm", "Qn"} }

// Options configure service construction.
type Options struct {
	// BaseScale multiplies every requirement in the tables, calibrating
	// overall load against the environment's capacities. <=0 means 1.
	BaseScale float64
	// DiversityRatio, when > 0, compresses each component's per-resource
	// requirement spread to at most this max:min ratio while preserving
	// the average, reproducing the "less diversified" setting of
	// figure 13 (the paper uses 3).
	DiversityRatio float64
}

func (o Options) apply(t svc.TranslationTable) svc.TranslationTable {
	out := t
	if o.DiversityRatio > 0 {
		out = CompressDiversity(out, o.DiversityRatio)
	}
	if o.BaseScale > 0 && o.BaseScale != 1 {
		out = out.Scale(o.BaseScale)
	}
	return out
}

// Chain builds the three-component chain service of the performance
// study for the given family, applying the options to its tables.
func Chain(name string, f Family, opts Options) *svc.Service {
	var (
		src                        svc.Level
		sOut, pIn, pOut, cIn, cOut []svc.Level
		ts, tp, tc                 svc.TranslationTable
		ranking                    []string
	)
	if f == FamilyA {
		src, sOut, pIn, pOut, cIn, cOut = levelsA()
		ts, tp, tc = TablesA()
		ranking = RankingA()
	} else {
		src, sOut, pIn, pOut, cIn, cOut = levelsB()
		ts, tp, tc = TablesB()
		ranking = RankingB()
	}
	ts, tp, tc = opts.apply(ts), opts.apply(tp), opts.apply(tc)

	server := &svc.Component{
		ID:        CompServer,
		In:        []svc.Level{src},
		Out:       sOut,
		Translate: ts.Func(),
		Resources: []string{ResCPU},
	}
	proxy := &svc.Component{
		ID:        CompProxy,
		In:        pIn,
		Out:       pOut,
		Translate: tp.Func(),
		Resources: []string{ResCPU, ResNet},
	}
	client := &svc.Component{
		ID:        CompClient,
		In:        cIn,
		Out:       cOut,
		Translate: tc.Func(),
		Resources: []string{ResNet},
	}
	return svc.MustService(name, []*svc.Component{server, proxy, client}, []svc.Edge{
		{From: CompServer, To: CompProxy},
		{From: CompProxy, To: CompClient},
	}, ranking)
}

// Services builds the four deployed services S1-S4 of figure 9, indexed
// 1..4.
func Services(opts Options) map[int]*svc.Service {
	out := make(map[int]*svc.Service, 4)
	for i := 1; i <= 4; i++ {
		out[i] = Chain(serviceName(i), FamilyOf(i), opts)
	}
	return out
}

func serviceName(i int) string { return "S" + string(rune('0'+i)) }
