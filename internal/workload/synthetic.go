package workload

import (
	"fmt"

	"qosres/internal/broker"
	"qosres/internal/qos"
	"qosres/internal/svc"
)

// SyntheticChain builds a dense chain service with k components and q
// QoS levels per component side, every (Qin, Qout) pair supported: the
// worst case for the runtime algorithm's O(K·Q²) complexity claim
// (section 4.2). Requirements grow with the output level index so all
// edges are feasible against the companion snapshot and weights vary.
func SyntheticChain(k, q int) (*svc.Service, svc.Binding, *broker.Snapshot) {
	if k < 1 || q < 1 {
		panic(fmt.Sprintf("workload: SyntheticChain(%d, %d) out of range", k, q))
	}
	var comps []*svc.Component
	var edges []svc.Edge
	binding := svc.Binding{}
	avail := qos.ResourceVector{}
	alpha := map[string]float64{}

	mkLevels := func(comp int, side string, base int) []svc.Level {
		out := make([]svc.Level, q)
		for i := range out {
			out[i] = svc.Level{
				Name:   fmt.Sprintf("c%d%s%d", comp, side, i),
				Vector: qos.MustVector(qos.P("q", float64(base+i))),
			}
		}
		return out
	}

	for c := 0; c < k; c++ {
		id := svc.ComponentID(fmt.Sprintf("c%d", c))
		var in []svc.Level
		if c == 0 {
			in = []svc.Level{{Name: "src", Vector: qos.MustVector(qos.P("q", -1))}}
		} else {
			// Input levels share the upstream output vectors.
			in = make([]svc.Level, q)
			for i := range in {
				in[i] = svc.Level{
					Name:   fmt.Sprintf("c%din%d", c, i),
					Vector: qos.MustVector(qos.P("q", float64((c-1)*1000+i))),
				}
			}
		}
		out := mkLevels(c, "out", c*1000)
		table := svc.TranslationTable{}
		for ii, lin := range in {
			row := map[string]qos.ResourceVector{}
			for oi, lout := range out {
				// Vary requirements so edge weights differ; keep all
				// feasible against availability 1000.
				row[lout.Name] = qos.ResourceVector{"r": float64(1 + (ii*7+oi*13)%97)}
			}
			table[lin.Name] = row
		}
		comps = append(comps, &svc.Component{
			ID: id, In: in, Out: out,
			Translate: table.Func(),
			Resources: []string{"r"},
		})
		if c > 0 {
			edges = append(edges, svc.Edge{From: svc.ComponentID(fmt.Sprintf("c%d", c-1)), To: id})
		}
		res := fmt.Sprintf("r%d", c)
		binding[id] = map[string]string{"r": res}
		avail[res] = 1000
		alpha[res] = 1
	}

	ranking := make([]string, q)
	for i := 0; i < q; i++ {
		ranking[i] = fmt.Sprintf("c%dout%d", k-1, q-1-i)
	}
	service := svc.MustService(fmt.Sprintf("synthetic-k%d-q%d", k, q), comps, edges, ranking)
	return service, binding, &broker.Snapshot{Avail: avail, Alpha: alpha}
}
