package workload

import (
	"math"
	"testing"

	"qosres/internal/qos"
	"qosres/internal/svc"
)

func TestFamilyOf(t *testing.T) {
	if FamilyOf(1) != FamilyA || FamilyOf(4) != FamilyA {
		t.Fatal("S1/S4 must use figure 10(a)")
	}
	if FamilyOf(2) != FamilyB || FamilyOf(3) != FamilyB {
		t.Fatal("S2/S3 must use figure 10(b)")
	}
	if FamilyA.String() != "fig10a" || FamilyB.String() != "fig10b" {
		t.Fatal("family names wrong")
	}
}

func TestChainServicesValidate(t *testing.T) {
	for i := 1; i <= 4; i++ {
		s := Chain("S", FamilyOf(i), Options{})
		if err := s.Validate(); err != nil {
			t.Fatalf("S%d: %v", i, err)
		}
		if !s.IsChain() {
			t.Fatalf("S%d not a chain", i)
		}
		if len(s.EndToEndRanking) != 3 {
			t.Fatalf("S%d ranking = %v", i, s.EndToEndRanking)
		}
	}
}

func TestServicesBuildsAllFour(t *testing.T) {
	ss := Services(Options{BaseScale: 2})
	if len(ss) != 4 {
		t.Fatalf("services = %d", len(ss))
	}
	for i := 1; i <= 4; i++ {
		if ss[i] == nil || ss[i].Name != "S"+string(rune('0'+i)) {
			t.Fatalf("service %d = %+v", i, ss[i])
		}
	}
}

// tableEntries flattens a table into (in, out, resource, value) tuples.
func tableEntries(tb svc.TranslationTable) map[[3]string]float64 {
	out := map[[3]string]float64{}
	for in, row := range tb {
		for o, req := range row {
			for r, v := range req {
				out[[3]string{in, o, r}] = v
			}
		}
	}
	return out
}

func TestTablesAMatchTable1Paths(t *testing.T) {
	// Every (proxy, client) edge named in the paper's Table 1 paths must
	// exist in the reconstructed figure 10(a).
	_, proxy, client := TablesA()
	proxyPairs := [][2]string{
		{"Qe", "Qh"}, {"Qf", "Qh"}, {"Qe", "Qi"}, {"Qf", "Qi"},
		{"Qf", "Qj"}, {"Qg", "Qj"}, {"Qf", "Qk"}, {"Qg", "Qk"},
	}
	for _, p := range proxyPairs {
		if _, ok := proxy[p[0]][p[1]]; !ok {
			t.Errorf("figure 10(a) proxy edge %s->%s missing", p[0], p[1])
		}
	}
	clientPairs := [][2]string{
		{"Ql", "Qp"}, {"Qm", "Qp"}, {"Qn", "Qp"},
		{"Qm", "Qq"}, {"Qn", "Qq"}, {"Qo", "Qq"},
	}
	for _, p := range clientPairs {
		if _, ok := client[p[0]][p[1]]; !ok {
			t.Errorf("figure 10(a) client edge %s->%s missing", p[0], p[1])
		}
	}
}

func TestTablesBMatchTable2Paths(t *testing.T) {
	server, proxy, client := TablesB()
	if _, ok := server["Qa"]["Qb"]; !ok {
		t.Error("Qa->Qb missing")
	}
	if _, ok := server["Qa"]["Qc"]; !ok {
		t.Error("Qa->Qc missing")
	}
	for _, in := range []string{"Qd", "Qe"} {
		for _, out := range []string{"Qf", "Qg", "Qh"} {
			if _, ok := proxy[in][out]; !ok {
				t.Errorf("figure 10(b) proxy edge %s->%s missing", in, out)
			}
		}
	}
	for _, in := range []string{"Qi", "Qj", "Qk"} {
		if _, ok := client[in]["Ql"]; !ok {
			t.Errorf("client edge %s->Ql missing", in)
		}
		if _, ok := client[in]["Qm"]; !ok {
			t.Errorf("client edge %s->Qm missing", in)
		}
	}
}

func TestOptionsScale(t *testing.T) {
	base := Chain("S", FamilyA, Options{})
	scaled := Chain("S", FamilyA, Options{BaseScale: 3})
	in, _ := base.Components[CompServer].InLevel("Qa")
	outB, _ := base.Components[CompServer].OutLevel("Qb")
	rb, ok := base.Components[CompServer].Translate(in, outB)
	if !ok {
		t.Fatal("base translate failed")
	}
	rs, ok := scaled.Components[CompServer].Translate(in, outB)
	if !ok {
		t.Fatal("scaled translate failed")
	}
	if math.Abs(rs[ResCPU]-3*rb[ResCPU]) > 1e-12 {
		t.Fatalf("scale: %v vs %v", rs[ResCPU], rb[ResCPU])
	}
}

func TestCompressDiversityPreservesMeanAndLimitsRatio(t *testing.T) {
	_, proxy, _ := TablesA()
	compressed := CompressDiversity(proxy, 3)

	for _, resource := range []string{ResCPU, ResNet} {
		var baseVals, compVals []float64
		be := tableEntries(proxy)
		ce := tableEntries(compressed)
		for k, v := range be {
			if k[2] != resource {
				continue
			}
			baseVals = append(baseVals, v)
			compVals = append(compVals, ce[k])
		}
		if len(baseVals) == 0 {
			t.Fatalf("no %s entries", resource)
		}
		mean := func(xs []float64) float64 {
			s := 0.0
			for _, x := range xs {
				s += x
			}
			return s / float64(len(xs))
		}
		if math.Abs(mean(baseVals)-mean(compVals)) > 1e-9 {
			t.Errorf("%s mean changed: %v -> %v", resource, mean(baseVals), mean(compVals))
		}
		min, max := compVals[0], compVals[0]
		for _, v := range compVals {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if min <= 0 {
			t.Errorf("%s compressed to non-positive value %v", resource, min)
		}
		if max/min > 3+1e-9 {
			t.Errorf("%s ratio = %v, want <= 3", resource, max/min)
		}
	}
}

func TestCompressDiversityKeepsOrder(t *testing.T) {
	_, proxy, _ := TablesA()
	compressed := CompressDiversity(proxy, 3)
	be := tableEntries(proxy)
	ce := tableEntries(compressed)
	for k1, v1 := range be {
		for k2, v2 := range be {
			if k1[2] != k2[2] {
				continue
			}
			if v1 < v2 && ce[k1] > ce[k2]+1e-12 {
				t.Fatalf("order violated: %v vs %v", k1, k2)
			}
		}
	}
}

func TestCompressDiversityNoOpWhenWithinRatio(t *testing.T) {
	tb := svc.TranslationTable{
		"a": {"b": qos.ResourceVector{"r": 2}, "c": qos.ResourceVector{"r": 4}},
	}
	out := CompressDiversity(tb, 3)
	if out["a"]["b"]["r"] != 2 || out["a"]["c"]["r"] != 4 {
		t.Fatalf("within-ratio table changed: %v", out)
	}
	// ratio <= 0 clones.
	cl := CompressDiversity(tb, 0)
	cl["a"]["b"]["r"] = 99
	if tb["a"]["b"]["r"] != 2 {
		t.Fatal("CompressDiversity(0) aliased the input")
	}
}

func TestVideoServiceStructure(t *testing.T) {
	s := VideoService()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.IsChain() {
		t.Fatal("video service must be a chain")
	}
	if len(s.EndToEndRanking) != 6 {
		t.Fatalf("ranking = %v", s.EndToEndRanking)
	}
	if s.RankOf("Qn") != 6 || s.RankOf("Qr") != 1 {
		t.Fatal("video ranking wrong")
	}
	b := VideoBinding()
	for _, cid := range s.ComponentIDs() {
		comp := s.Components[cid]
		for _, r := range comp.Resources {
			if _, ok := b[cid][r]; !ok {
				t.Errorf("binding missing %s/%s", cid, r)
			}
		}
	}
	snap := VideoSnapshot()
	if len(snap.Avail) != 6 {
		t.Fatalf("snapshot resources = %d", len(snap.Avail))
	}
}

func TestDagServiceStructure(t *testing.T) {
	s := DagService()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.IsChain() {
		t.Fatal("dag service must not be a chain")
	}
	if !s.FanOut(DagC2) {
		t.Fatal("c2 must fan out")
	}
	if !s.FanIn(DagC5) {
		t.Fatal("c5 must fan in")
	}
	snap := DagSnapshot()
	if len(snap.Avail) != 5 {
		t.Fatalf("snapshot resources = %d", len(snap.Avail))
	}
	b := DagBinding()
	if b[DagC3]["r"] != "r@c3" {
		t.Fatalf("binding = %v", b)
	}
}

func TestIntrapolationCostsMore(t *testing.T) {
	// The figure-4 property: reaching the same Qout from a lower Qin
	// costs more proxy CPU (image intrapolation).
	_, proxy, _ := TablesA()
	if proxy["Qf"]["Qh"][ResCPU] <= proxy["Qe"]["Qh"][ResCPU] {
		t.Fatal("upscaling Qf->Qh must cost more CPU than Qe->Qh")
	}
	if proxy["Qg"]["Qj"][ResCPU] <= proxy["Qf"]["Qj"][ResCPU] {
		t.Fatal("upscaling Qg->Qj must cost more CPU than Qf->Qj")
	}
}

func TestHigherQualityInputCostsMoreBandwidth(t *testing.T) {
	_, proxy, _ := TablesA()
	if proxy["Qe"]["Qh"][ResNet] <= proxy["Qf"]["Qh"][ResNet] {
		t.Fatal("higher-quality input stream must need more server->proxy bandwidth")
	}
	if proxy["Qf"]["Qj"][ResNet] <= proxy["Qg"]["Qj"][ResNet] {
		t.Fatal("mid-quality input stream must need more bandwidth than low")
	}
}

func TestSyntheticChainShape(t *testing.T) {
	service, binding, snap := SyntheticChain(3, 8)
	if err := service.Validate(); err != nil {
		t.Fatal(err)
	}
	if !service.IsChain() || len(service.Components) != 3 {
		t.Fatal("synthetic service malformed")
	}
	if len(service.EndToEndRanking) != 8 {
		t.Fatalf("ranking = %d levels", len(service.EndToEndRanking))
	}
	if len(binding) != 3 || len(snap.Avail) != 3 {
		t.Fatalf("binding/snapshot sizes = %d/%d", len(binding), len(snap.Avail))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid sizes")
		}
	}()
	SyntheticChain(0, 5)
}
