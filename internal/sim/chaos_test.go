package sim

import (
	"strings"
	"testing"

	"qosres/internal/adapt"
	"qosres/internal/obs"
)

// TestChaosStress is the fault-injection tentpole test: the 32-client
// concurrent stress harness with a seeded fault walk failing resources,
// shrinking capacities, repairing affected sessions, and sweeping
// expired leases — all while sessions are established, heartbeated,
// released, and (deliberately) orphaned. RunChaos itself asserts the
// chaos invariants: reserved totals never exceed the original
// capacities, the drained environment returns to its exact original
// shape with zero live holds, and no zombie session stays registered.
// The test additionally checks the per-run accounting and that the
// fault/repair/lease counters surface in the Prometheus exposition. CI
// runs it under -race.
func TestChaosStress(t *testing.T) {
	reg := obs.New()
	sc := DefaultStressConfig(31)
	sc.Config.Obs = reg
	fc := DefaultFaultsConfig()
	// Tilt the walk toward capacity shrinks: a downed resource has no
	// alternative placement in the fixed bindings, so only shrink faults
	// can end in a repaired or degraded session rather than a failed one.
	fc.Random.FailProb = 0.15
	fc.Random.ShrinkProb = 0.4
	fc.Random.RecoverProb = 0.25
	sc.Config.Faults = fc
	// Mid-range capacities (the stress default is deliberately starved):
	// enough headroom that sessions establish and repairs can succeed,
	// low enough that faults still push sessions into degradation.
	sc.Config.CapacityMin = 600
	sc.Config.CapacityMax = 1200

	res, err := RunChaos(sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)

	if res.Injected == 0 {
		t.Error("chaos run injected no faults")
	}
	if got, want := res.Established+res.PlanInfeasible+res.AdmitRefused,
		sc.Sessions*sc.Iterations; got != want {
		t.Errorf("outcomes %d, want %d", got, want)
	}
	if res.Orphaned > res.Established {
		t.Errorf("orphaned %d > established %d", res.Orphaned, res.Established)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, name := range []string{
		obs.MetricFaultInjected,
		obs.MetricSessionsRepaired,
		obs.MetricSessionsDegraded,
		obs.MetricSessionsRepairFailed,
		obs.MetricLeasesExpired,
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metric %s missing from the Prometheus exposition", name)
		}
	}
	// The walk's events count by kind; the sum must match the harness's
	// own tally.
	var injected float64
	for _, c := range reg.Snapshot().Counters {
		if c.Name == obs.MetricFaultInjected {
			injected += c.Value
		}
	}
	if int(injected) != res.Injected {
		t.Errorf("qosres_fault_injected_total = %g, harness counted %d", injected, res.Injected)
	}
}

// TestChaosAdaptive is the adaptation acceptance run: the mid-session
// adaptation controller ticking on every driver step while the walk
// injects faults, contention surges, 12%-loss/6%-dup transport chaos
// with partitions, and crash/restart cycles. RunChaos itself asserts
// all standing invariants plus the two adaptation ones — every live
// session's booked holds match its recorded level exactly (audited on
// every step and at drain), and no downgrade lands below the policy's
// rank floor. CI runs it under -race and uploads the summary.
func TestChaosAdaptive(t *testing.T) {
	reg := obs.New()
	sc := DefaultStressConfig(47)
	sc.Config.Obs = reg
	fc := DefaultFaultsConfig()
	fc.Random.FailProb = 0.1
	fc.Random.ShrinkProb = 0.3
	fc.Random.RecoverProb = 0.25
	fc.Random.SurgeProb = 0.25
	fc.Random.CrashProb = 0.05
	fc.Random.PartitionProb = 0.05
	fc.Random.HealProb = 0.3
	fc.Transport = DefaultTransportConfig()
	fc.Transport.Loss = 0.12
	fc.Transport.Dup = 0.06
	ap := adapt.DefaultPolicy()
	// Tighter watermarks than the serving default: the mid-range
	// capacities keep utilization low, and the run should actually
	// exercise renegotiations racing the faults, not just hold.
	ap.HighWater = 0.6
	ap.LowWater = 0.4
	ap.Cooldown = 3 * fc.StepEvery
	fc.Adapt = &ap
	sc.Config.Faults = fc
	// Mid-range capacities: headroom enough to establish and upgrade,
	// scarce enough that surges push utilization over the watermark.
	sc.Config.CapacityMin = 600
	sc.Config.CapacityMax = 1200

	res, err := RunChaos(sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)

	if res.Injected == 0 {
		t.Error("adaptive chaos run injected no faults")
	}
	if res.Established > 0 && res.QoSSeconds <= 0 {
		t.Errorf("%d sessions established but %g QoS-seconds delivered",
			res.Established, res.QoSSeconds)
	}
	// The adaptation metrics surface in the Prometheus exposition.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, name := range []string{
		obs.MetricAdaptUpgrades,
		obs.MetricAdaptDowngrades,
		obs.MetricAdaptHeld,
		obs.MetricAdaptFlapsSuppressed,
		obs.MetricDeliveredQoSSeconds,
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metric %s missing from the Prometheus exposition", name)
		}
	}
}

// TestChaosWithoutLeasing pins that chaos also runs lease-free when no
// client ever orphans a session: releases and repairs alone must keep
// the environment leak-free.
func TestChaosWithoutLeasing(t *testing.T) {
	sc := DefaultStressConfig(5)
	sc.Sessions = 8
	sc.Iterations = 4
	fc := DefaultFaultsConfig()
	fc.LeaseTTL = 0
	fc.OrphanRate = 0
	sc.Config.Faults = fc

	res, err := RunChaos(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.LeasesExpired != 0 || res.Orphaned != 0 {
		t.Errorf("lease-free run reclaimed %d leases, orphaned %d", res.LeasesExpired, res.Orphaned)
	}
}

// TestChaosConfigValidation pins the chaos parameter contracts.
func TestChaosConfigValidation(t *testing.T) {
	base := func() Config {
		cfg := DefaultConfig(AlgBasic, 120, 1)
		cfg.UseRuntime = true
		cfg.Faults = DefaultFaultsConfig()
		return cfg
	}
	cfg := base()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default chaos config invalid: %v", err)
	}

	cfg = base()
	cfg.UseRuntime = false
	if err := cfg.Validate(); err == nil {
		t.Error("chaos without UseRuntime accepted")
	}
	cfg = base()
	cfg.Faults.OrphanRate = 0.5
	cfg.Faults.LeaseTTL = 0
	if err := cfg.Validate(); err == nil {
		t.Error("orphaning without leasing accepted")
	}
	cfg = base()
	cfg.Faults.Steps = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero chaos steps accepted")
	}
	cfg = base()
	cfg.Faults.StepEvery = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero step interval accepted")
	}

	// The deterministic single-threaded entry point refuses chaos.
	cfg = base()
	cfg.Duration = 10
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted a chaos config")
	}
}
