package sim

import (
	"strings"
	"testing"
	"time"

	"qosres/internal/obs"
)

// TestChaosPartitioned is the unreliable-messaging acceptance test: the
// concurrent chaos harness rebased on a fabric that loses 12% and
// duplicates 6% of protocol messages, with at least one forced
// partition/heal cycle (plus whatever the seeded walk cuts), every
// Establish and repair sweep bounded by a deadline, per-route circuit
// breakers armed, and broker faults injected on top. RunChaos itself
// asserts the PR-4 invariants under all of this — no broker ever
// commits past its original capacity, the drained environment returns
// to its exact original shape with zero live holds, no zombie session
// stays registered — plus the transport ones: no call overruns its
// deadline (a lost message degrades or aborts the protocol, never
// hangs it). CI runs this under -race.
func TestChaosPartitioned(t *testing.T) {
	reg := obs.New()
	sc := DefaultStressConfig(43)
	sc.Sessions = 6
	sc.Iterations = 4
	sc.Config.Obs = reg
	sc.Config.CapacityMin = 600
	sc.Config.CapacityMax = 1200
	fc := DefaultFaultsConfig()
	fc.Random.FailProb = 0.15
	fc.Random.ShrinkProb = 0.3
	fc.Random.RecoverProb = 0.25
	fc.Random.PartitionProb = 0.10
	fc.Random.HealProb = 0.15
	fc.Random.MaxPartitions = 1
	fc.Transport = &TransportConfig{
		Loss:             0.12,
		Dup:              0.06,
		Latency:          200 * time.Microsecond,
		Deadline:         200 * time.Millisecond,
		BreakerThreshold: 4,
		BreakerCooldown:  50 * time.Millisecond,
	}
	sc.Config.Faults = fc

	res, err := RunChaos(sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)

	if res.Injected == 0 {
		t.Error("chaos run injected no faults")
	}
	if got, want := res.Established+res.PlanInfeasible+res.AdmitRefused+
		res.Shed+res.TimedOut, sc.Sessions*sc.Iterations; got != want {
		t.Errorf("outcomes %d, want %d attempts", got, want)
	}

	// The forced cycle guarantees at least one partition and one heal
	// event per run regardless of the walk's dice.
	byKind := map[string]float64{}
	var dropped, messages float64
	for _, c := range reg.Snapshot().Counters {
		switch c.Name {
		case obs.MetricFaultInjected:
			byKind[c.Labels["kind"]] += c.Value
		case obs.MetricTransportDropped:
			dropped += c.Value
		case obs.MetricTransportMessages:
			messages += c.Value
		}
	}
	if byKind["partition"] < 1 || byKind["heal"] < 1 {
		t.Errorf("no full partition/heal cycle: partitions %g, heals %g",
			byKind["partition"], byKind["heal"])
	}
	if messages == 0 {
		t.Error("no protocol messages crossed the fabric")
	}
	if dropped == 0 {
		t.Error("12%% loss plus a partition dropped no messages")
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, name := range []string{
		obs.MetricTransportMessages,
		obs.MetricTransportDropped,
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metric %s missing from the Prometheus exposition", name)
		}
	}
}

// TestChaosPartitionedBatched reruns the partitioned-fabric chaos
// acceptance with the group-commit admission front end enabled: batched
// prepare/commit/abort messages cross the same lossy, duplicating,
// partitioned fabric, and every PR-4/PR-5 invariant RunChaos asserts —
// no over-commit, exact drain, zero zombies, no deadline overrun — must
// hold on the batched path too. CI runs this under -race.
func TestChaosPartitionedBatched(t *testing.T) {
	reg := obs.New()
	sc := DefaultStressConfig(47)
	sc.Sessions = 6
	sc.Iterations = 4
	sc.Config.Obs = reg
	sc.Config.CapacityMin = 600
	sc.Config.CapacityMax = 1200
	sc.Config.BatchAdmit = 8
	fc := DefaultFaultsConfig()
	fc.Random.FailProb = 0.15
	fc.Random.ShrinkProb = 0.3
	fc.Random.RecoverProb = 0.25
	fc.Random.PartitionProb = 0.10
	fc.Random.HealProb = 0.15
	fc.Random.MaxPartitions = 1
	fc.Transport = &TransportConfig{
		Loss:             0.12,
		Dup:              0.06,
		Latency:          200 * time.Microsecond,
		Deadline:         200 * time.Millisecond,
		BreakerThreshold: 4,
		BreakerCooldown:  50 * time.Millisecond,
	}
	sc.Config.Faults = fc

	res, err := RunChaos(sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)

	if got, want := res.Established+res.PlanInfeasible+res.AdmitRefused+
		res.Shed+res.TimedOut, sc.Sessions*sc.Iterations; got != want {
		t.Errorf("outcomes %d, want %d attempts", got, want)
	}
	var batches float64
	for _, c := range reg.Snapshot().Counters {
		if c.Name == obs.MetricAdmitBatches {
			batches += c.Value
		}
	}
	if batches == 0 {
		t.Error("chaos run committed nothing through the batched front end")
	}
}

// TestChaosTransportValidation pins the transport-chaos parameter
// contracts.
func TestChaosTransportValidation(t *testing.T) {
	base := func() Config {
		cfg := DefaultConfig(AlgBasic, 120, 1)
		cfg.UseRuntime = true
		fc := DefaultFaultsConfig()
		fc.Transport = DefaultTransportConfig()
		cfg.Faults = fc
		return cfg
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("default transport chaos config invalid: %v", err)
	}

	cfg := base()
	cfg.Faults.Transport.Loss = 1.5
	if err := cfg.Validate(); err == nil {
		t.Error("loss > 1 accepted")
	}
	cfg = base()
	cfg.Faults.Transport.Dup = -0.1
	if err := cfg.Validate(); err == nil {
		t.Error("negative duplication accepted")
	}
	cfg = base()
	cfg.Faults.Transport.Latency = -time.Millisecond
	if err := cfg.Validate(); err == nil {
		t.Error("negative latency accepted")
	}
	cfg = base()
	cfg.Faults.LeaseTTL = 0
	cfg.Faults.OrphanRate = 0
	if err := cfg.Validate(); err == nil {
		t.Error("lossy transport without leasing accepted")
	}
	cfg = base()
	cfg.Faults.Transport = nil
	cfg.Faults.Random.PartitionProb = 0.1
	if err := cfg.Validate(); err == nil {
		t.Error("partition walk without transport chaos accepted")
	}
}
