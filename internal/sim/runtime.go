package sim

import (
	"errors"
	"fmt"

	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/obs"
	"qosres/internal/proxy"
	"qosres/internal/stats"
	"qosres/internal/topo"
	"qosres/internal/trace"
	"qosres/internal/transport"
	"qosres/internal/wal"
	"qosres/internal/workload"
)

// This file routes the simulation through the runtime architecture of
// section 3 when Config.UseRuntime is set: QoSProxies deployed on every
// figure-9 host, resource brokers owned by their hosts (end-to-end
// network brokers receiver-side), and every session established via the
// three-phase protocol. The direct path and the runtime path produce
// identical results (see TestRuntimeModeMatchesDirect); the runtime path
// exists so the whole evaluation exercises the message-passing
// implementation rather than a shortcut.

// simClock adapts the scheduler's clock to the proxy runtime.
type simClock struct {
	sched *scheduler
}

// Now implements proxy.Clock.
func (c simClock) Now() broker.Time { return c.sched.now }

// buildRuntime deploys a QoSProxy per figure-9 host and registers every
// broker of the environment with its owning host's proxy.
func (env *environment) buildRuntime(cfg Config, clock proxy.Clock) (*proxy.Runtime, error) {
	rt := proxy.NewRuntime(clock)
	// Admission retries are bounded by the run config; no backoff sleep,
	// since a simulated run must never block on wall-clock time.
	rt.SetAdmitPolicy(proxy.AdmitPolicy{MaxRetries: cfg.MaxAdmitRetries})
	// Share the run's template cache (instrumented into the run
	// registry) so hit/miss counters cover both execution modes; a nil
	// cache disables the fast lane for reference runs.
	rt.SetTemplateCache(env.templates)
	if cfg.PlanMemo {
		// Epoch-validated plan memoization: admissions whose book is
		// unchanged skip instantiation and planning and go straight to
		// validate-at-commit. Counters land in the run registry.
		rt.SetPlanMemo(core.NewPlanMemo(env.ins.reg))
	}
	if cfg.BatchAdmit > 1 {
		// Group-commit admission: concurrent commits coalesce into
		// batched 2PC rounds. Single-threaded runs see one-member rounds
		// and identical results; the stress/chaos harnesses see real
		// coalescing.
		if err := rt.SetBatchPolicy(proxy.BatchPolicy{
			MaxBatch: cfg.BatchAdmit,
			Window:   cfg.BatchWindow,
		}); err != nil {
			return nil, err
		}
	}
	if cfg.Faults != nil {
		// Chaos mode: lease every session's holds so a silent (orphaned)
		// session can never strand capacity, and count repair outcomes
		// into the run's registry.
		rt.SetLeaseTTL(cfg.Faults.LeaseTTL)
		rt.InstrumentFaults(env.ins.faults)
		if cfg.Faults.WALDir != "" {
			// Durable chaos: journal every 2PC transition so crash/restart
			// injection can replay the books. Must precede Start — the log
			// handle is distributed to the proxies at startup.
			if err := rt.EnableWAL(wal.Options{Dir: cfg.Faults.WALDir}); err != nil {
				return nil, err
			}
			if env.ins.enabled() {
				rt.InstrumentWAL(obs.NewWALMetrics(env.ins.reg))
			}
		}
		if tc := cfg.Faults.Transport; tc != nil {
			// Unreliable-messaging mode: replace the default perfect fabric
			// with one that delays, loses, and duplicates per the config,
			// optionally guarded by per-route circuit breakers, and bound
			// the number of concurrently admitted sessions.
			seed := tc.Seed
			if seed == 0 {
				seed = cfg.Seed + 15485863
			}
			var bc *transport.BreakerConfig
			if tc.BreakerThreshold > 0 {
				bc = &transport.BreakerConfig{
					Threshold: tc.BreakerThreshold,
					Cooldown:  tc.BreakerCooldown,
				}
			}
			f := transport.New(transport.Options{
				Seed: seed,
				Defaults: transport.RouteConfig{
					Latency: tc.Latency,
					Loss:    tc.Loss,
					Dup:     tc.Dup,
				},
				Breaker: bc,
				Metrics: env.ins.transport,
			})
			if err := rt.SetTransport(f); err != nil {
				return nil, err
			}
			rt.SetMaxInFlight(tc.MaxInFlight)
		}
	}
	if env.ins.enabled() {
		// The three-phase protocol records into the same stage
		// histograms as the direct path, so both execution modes share
		// one latency vocabulary, and admission retries/rollbacks land in
		// the run's registry.
		rt.Instrument(env.ins.stages)
		rt.InstrumentAdmission(env.ins.admit)
		rt.InstrumentAdapt(env.ins.adapt)
	}
	if env.tracerec != nil {
		// Distributed tracing gates itself on TraceSample, not on the
		// metrics registry: the runtime roots one trace per Establish,
		// stage spans and fabric-call spans nest under it, and remote
		// participants parent their spans via the propagated context.
		rt.InstrumentTracing(env.tracerec)
	}
	for _, h := range env.topology.Hosts() {
		if _, err := rt.AddHost(h); err != nil {
			return nil, err
		}
	}
	// Server CPUs at their servers; link brokers at the link's first
	// endpoint (the router-side bandwidth broker).
	for i := 1; i <= topo.NumServers; i++ {
		h := topo.ServerHost(i)
		b, ok := env.pool.Get(broker.LocalResourceID(workload.ResCPU, h))
		if !ok {
			return nil, fmt.Errorf("sim: missing cpu broker for %s", h)
		}
		if err := rt.Deploy(h, b); err != nil {
			return nil, err
		}
	}
	// End-to-end network brokers at the receiver side (the paper's RSVP
	// compatibility rule).
	deployNet := func(from, to topo.HostID) error {
		n, err := env.pool.Network(from, to)
		if err != nil {
			return err
		}
		return rt.Deploy(to, n)
	}
	for i := 1; i <= topo.NumServers; i++ {
		for j := 1; j <= topo.NumServers; j++ {
			if i != j {
				if err := deployNet(topo.ServerHost(i), topo.ServerHost(j)); err != nil {
					return nil, err
				}
			}
		}
	}
	for d := 1; d <= topo.NumDomains; d++ {
		if err := deployNet(topo.ServerHost(topo.ProxyServerFor(d)), topo.DomainHost(d)); err != nil {
			return nil, err
		}
	}
	if cfg.Faults != nil && cfg.Faults.RecoverWAL {
		// Restart recovery: replay a surviving WAL into the freshly
		// deployed books before the runtime starts serving, so a restarted
		// deployment resumes with its pre-crash reservations intact.
		if err := rt.Recover(clock.Now()); err != nil {
			return nil, err
		}
	}
	rt.Start()
	return rt, nil
}

// handleArrivalRuntime is handleArrival routed through the three-phase
// QoSProxy protocol, with the service's main server as main QoSProxy.
func (env *environment) handleArrivalRuntime(cfg Config, rt *proxy.Runtime,
	planner core.Planner, metrics *stats.Metrics, sched *scheduler, now broker.Time,
	sh sessionShape) error {

	class := stats.ClassOf(sh.fat, sh.long)
	service := env.services[sh.service-1][sh.variant]
	family := workload.FamilyOf(sh.service).String()
	binding, resources := sessionResources(sh)

	env.nextSession++
	sid := env.nextSession
	env.ins.arrivals.Inc()
	env.ins.simTime.Set(float64(now))
	env.tracer.Trace(trace.Event{
		At: now, Kind: trace.Arrival, Session: sid,
		Service: service.Name, Class: class.String(),
	})

	// The per-phase stage histograms are recorded inside Establish (see
	// Runtime.Instrument in buildRuntime); the sim layer only times the
	// protocol end to end.
	stEst := env.startStage()
	session, err := rt.Establish(topo.ServerHost(sh.service), proxy.SessionSpec{
		Service: service, Binding: binding, Planner: planner,
	})
	env.endStage(stEst, env.ins.stages.Establish, obs.StageEstablish, "", now, sid, service.Name, class.String())
	if errors.Is(err, core.ErrInfeasible) {
		env.ins.planFailed.Inc()
		metrics.PlanFailures++
		metrics.ObserveSessionAt(float64(now), class, false, 0)
		metrics.ObserveService(service.Name, false, 0)
		env.tracer.Trace(trace.Event{
			At: now, Kind: trace.PlanFailed, Session: sid,
			Service: service.Name, Class: class.String(),
		})
		return nil
	}
	if errors.Is(err, broker.ErrInsufficient) {
		// The plan fit its snapshot but was refused at commit time and the
		// retry budget ran out — only possible under concurrent admission
		// (the stress harness); single-threaded runs always commit what
		// they plan. Book it as a reservation failure, like the direct
		// path under stale observations. (The rollback counter was already
		// advanced inside Establish, once per refused commit attempt.)
		env.ins.reserveFailed.Inc()
		metrics.ReserveFailures++
		metrics.ObserveSessionAt(float64(now), class, false, 0)
		metrics.ObserveService(service.Name, false, 0)
		env.tracer.Trace(trace.Event{
			At: now, Kind: trace.ReserveFailed, Session: sid,
			Service: service.Name, Class: class.String(),
		})
		return nil
	}
	if err != nil {
		return err
	}
	plan := session.Plan
	env.ins.planned.Inc()
	metrics.ObservePlan(family, plan.PathLevels, plan.Bottleneck)
	env.tracer.Trace(trace.Event{
		At: now, Kind: trace.Planned, Session: sid,
		Service: service.Name, Class: class.String(),
		Level: plan.EndToEnd.Name, Rank: plan.Rank,
		Psi: plan.Psi, Bottleneck: plan.Bottleneck, Path: plan.PathLevels,
	})
	env.ins.reserved.Inc()
	env.ins.observeAcceptedPlan(plan)
	env.ins.sampleUtilization(env.pool, resources)
	metrics.ObserveSessionAt(float64(now), class, true, plan.Rank)
	metrics.ObserveService(service.Name, true, plan.Rank)
	env.tracer.Trace(trace.Event{
		At: now, Kind: trace.Reserved, Session: sid,
		Service: service.Name, Class: class.String(),
		Level: plan.EndToEnd.Name, Rank: plan.Rank,
		Psi: plan.Psi, Bottleneck: plan.Bottleneck, Path: plan.PathLevels,
	})
	sched.at(now+sh.duration, evRelease, &liveSession{
		id: sid, service: service.Name, class: class.String(),
		resources: resources, proxySession: session,
	})
	return nil
}
