package sim

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"qosres/internal/broker"
	"qosres/internal/stats"
	"qosres/internal/topo"
	"qosres/internal/trace"
	"qosres/internal/workload"
)

// quickConfig is a short but statistically meaningful run.
func quickConfig(alg Algorithm, rate float64) Config {
	cfg := DefaultConfig(alg, rate, 42)
	cfg.Duration = 1200
	return cfg
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(quickConfig(AlgBasic, 120))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickConfig(AlgBasic, 120))
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics.Overall != b.Metrics.Overall {
		t.Fatalf("non-deterministic: %+v vs %+v", a.Metrics.Overall, b.Metrics.Overall)
	}
	if a.Metrics.Summary() != b.Metrics.Summary() {
		t.Fatal("summaries differ")
	}
	for r, c := range a.Capacities {
		if b.Capacities[r] != c {
			t.Fatalf("capacity draw differs for %s", r)
		}
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	a, _ := Run(quickConfig(AlgBasic, 120))
	cfg := quickConfig(AlgBasic, 120)
	cfg.Seed = 43
	b, _ := Run(cfg)
	if a.Metrics.Overall == b.Metrics.Overall && a.Capacities["cpu@H1"] == b.Capacities["cpu@H1"] {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestRunReleasesEverything(t *testing.T) {
	res, err := Run(quickConfig(AlgBasic, 120))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Pool.LocalBrokers() {
		if b.Reservations() != 0 {
			t.Errorf("%s leaked %d reservations", b.Resource(), b.Reservations())
		}
		if math.Abs(b.Available()-b.Capacity()) > 1e-6 {
			t.Errorf("%s not fully restored: %v/%v", b.Resource(), b.Available(), b.Capacity())
		}
	}
}

func TestRunNoReserveFailuresWhenAtomic(t *testing.T) {
	res, err := Run(quickConfig(AlgBasic, 180))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.ReserveFailures != 0 {
		t.Fatalf("atomic observation produced %d reserve failures", res.Metrics.ReserveFailures)
	}
}

func TestRunStaleObservationsCauseReserveFailures(t *testing.T) {
	cfg := quickConfig(AlgBasic, 200)
	cfg.StaleE = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.ReserveFailures == 0 {
		t.Fatal("heavy staleness at high load should produce reserve failures")
	}
}

func TestRunCapacitiesInRange(t *testing.T) {
	res, err := Run(quickConfig(AlgBasic, 60))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Capacities) != 18 {
		t.Fatalf("capacities = %d, want 18", len(res.Capacities))
	}
	for r, c := range res.Capacities {
		if c < 1000 || c > 4000 {
			t.Errorf("%s capacity %v out of [1000,4000]", r, c)
		}
	}
}

func TestRunSessionMixRatios(t *testing.T) {
	res, err := Run(quickConfig(AlgBasic, 240))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	total := m.Overall.Attempts
	if total < 2000 {
		t.Fatalf("too few sessions: %d", total)
	}
	fat := m.Class(stats.FatShort).Attempts + m.Class(stats.FatLong).Attempts
	long := m.Class(stats.NormLong).Attempts + m.Class(stats.FatLong).Attempts
	fatFrac := float64(fat) / float64(total)
	longFrac := float64(long) / float64(total)
	if math.Abs(fatFrac-2.0/3.0) > 0.05 {
		t.Errorf("fat fraction = %v, want ~2/3", fatFrac)
	}
	if math.Abs(longFrac-1.0/3.0) > 0.05 {
		t.Errorf("long fraction = %v, want ~1/3", longFrac)
	}
}

func TestAlgorithmOrdering(t *testing.T) {
	// The paper's headline: tradeoff >= basic > random in success rate;
	// basic and random nearly level-3 QoS; tradeoff lower.
	get := func(alg Algorithm) *stats.Metrics {
		cfg := DefaultConfig(alg, 150, 7)
		cfg.Duration = 2400
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics
	}
	basic := get(AlgBasic)
	tradeoff := get(AlgTradeoff)
	random := get(AlgRandom)

	if !(basic.Overall.SuccessRate() > random.Overall.SuccessRate()) {
		t.Errorf("basic (%.3f) must beat random (%.3f)",
			basic.Overall.SuccessRate(), random.Overall.SuccessRate())
	}
	if !(tradeoff.Overall.SuccessRate() > basic.Overall.SuccessRate()) {
		t.Errorf("tradeoff (%.3f) must beat basic (%.3f)",
			tradeoff.Overall.SuccessRate(), basic.Overall.SuccessRate())
	}
	if basic.Overall.AvgQoS() < 2.7 {
		t.Errorf("basic avg QoS = %v, want near 3 (greedy)", basic.Overall.AvgQoS())
	}
	if !(tradeoff.Overall.AvgQoS() < basic.Overall.AvgQoS()) {
		t.Errorf("tradeoff avg QoS (%v) must be below basic (%v)",
			tradeoff.Overall.AvgQoS(), basic.Overall.AvgQoS())
	}
}

func TestFatSessionsSufferMore(t *testing.T) {
	cfg := DefaultConfig(AlgBasic, 180, 11)
	cfg.Duration = 2400
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	norm := m.Class(stats.NormShort).SuccessRate()
	fat := m.Class(stats.FatShort).SuccessRate()
	if !(fat < norm) {
		t.Fatalf("fat (%.3f) should fail more than normal (%.3f)", fat, norm)
	}
}

func TestEveryResourceBecomesBottleneck(t *testing.T) {
	// Section 5.2.2: every resource in the environment becomes the
	// bottleneck resource on a path at least once.
	cfg := DefaultConfig(AlgBasic, 80, 3)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := res.Metrics.BottleneckCounts
	// The session resources: 4 server CPUs plus the end-to-end network
	// resources (12 server pairs + 8 proxy->domain).
	var cpus, nets int
	for r := range counts {
		if len(r) > 4 && r[:4] == "cpu@" {
			cpus++
		}
		if len(r) > 4 && r[:4] == "net:" {
			nets++
		}
	}
	if cpus != 4 {
		t.Errorf("bottleneck CPUs = %d, want all 4", cpus)
	}
	// The 20 end-to-end network resources alias 14 links; a single run
	// need not see every alias as a bottleneck, but a broad majority
	// must appear, demonstrating the dynamic bottleneck identification.
	if nets < 12 {
		t.Errorf("bottleneck network resources = %d, want >= 12 of 20", nets)
	}
}

func TestPathHistogramsCoverBothFamilies(t *testing.T) {
	res, err := Run(quickConfig(AlgBasic, 80))
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"fig10a", "fig10b"} {
		h := res.Metrics.ByFamily[fam]
		if h == nil || h.Total == 0 {
			t.Fatalf("no paths recorded for %s", fam)
		}
		if len(h.Counts) < 4 {
			t.Errorf("%s covers only %d paths", fam, len(h.Counts))
		}
	}
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig(AlgBasic, 100, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*Config){
		"bad algorithm":  func(c *Config) { c.Algorithm = "genius" },
		"zero rate":      func(c *Config) { c.Rate = 0 },
		"zero duration":  func(c *Config) { c.Duration = 0 },
		"negative stale": func(c *Config) { c.StaleE = -1 },
		"bad capacity":   func(c *Config) { c.CapacityMax = c.CapacityMin - 1 },
		"zero capacity":  func(c *Config) { c.CapacityMin = 0 },
		"bad fat ratio":  func(c *Config) { c.FatRatio = 1.5 },
		"bad long ratio": func(c *Config) { c.LongRatio = -0.1 },
		"no multipliers": func(c *Config) { c.FatMultipliers = nil },
		"bad multiplier": func(c *Config) { c.FatMultipliers = []float64{0} },
		"bad durations":  func(c *Config) { c.DurationSplit = c.DurationMax + 1 },
		"zero dur min":   func(c *Config) { c.DurationMin = 0 },
		"neg popularity": func(c *Config) { c.PopularityInterval = -1 },
		"zero window":    func(c *Config) { c.AlphaWindow = 0 },
	}
	for name, mutate := range mutations {
		cfg := DefaultConfig(AlgBasic, 100, 1)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: Run accepted invalid config", name)
		}
	}
}

func TestSessionResourcesPlacement(t *testing.T) {
	sh := sessionShape{domain: 2, service: 4}
	binding, resources := sessionResources(sh)
	// The paper's worked example: client in D2 requesting S4 -> server
	// component on H4, proxy on H1.
	if binding[workload.CompServer][workload.ResCPU] != "cpu@H4" {
		t.Fatalf("server binding = %v", binding[workload.CompServer])
	}
	if binding[workload.CompProxy][workload.ResCPU] != "cpu@H1" {
		t.Fatalf("proxy binding = %v", binding[workload.CompProxy])
	}
	if binding[workload.CompProxy][workload.ResNet] != "net:H4->H1" {
		t.Fatalf("proxy net binding = %v", binding[workload.CompProxy])
	}
	if binding[workload.CompClient][workload.ResNet] != "net:H1->D2" {
		t.Fatalf("client net binding = %v", binding[workload.CompClient])
	}
	if len(resources) != 4 {
		t.Fatalf("resources = %v", resources)
	}
}

func TestDrawSessionNeverPicksLocalService(t *testing.T) {
	cfg := DefaultConfig(AlgBasic, 100, 5)
	rng := newTestRNG(5)
	env, err := buildEnvironment(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		sh := env.drawSession(cfg, rng)
		if sh.service == topo.ProxyServerFor(sh.domain) {
			t.Fatalf("session from domain %d picked excluded service S%d", sh.domain, sh.service)
		}
		if sh.domain < 1 || sh.domain > 8 || sh.service < 1 || sh.service > 4 {
			t.Fatalf("out-of-range session %+v", sh)
		}
		if sh.long && (sh.duration <= 60 || sh.duration > 600) {
			t.Fatalf("long duration %v out of (60,600]", sh.duration)
		}
		if !sh.long && (sh.duration < 20 || sh.duration > 60) {
			t.Fatalf("short duration %v out of [20,60]", sh.duration)
		}
		if sh.fat && sh.variant == 0 {
			t.Fatal("fat session with normal variant")
		}
		if !sh.fat && sh.variant != 0 {
			t.Fatal("normal session with fat variant")
		}
	}
}

func TestSchedulerOrdering(t *testing.T) {
	s := newScheduler()
	s.at(5, evRelease, &liveSession{})
	s.at(1, evArrival, nil)
	s.at(5, evArrival, nil) // same time: FIFO by sequence
	var kinds []eventKind
	var times []broker.Time
	for {
		ev, ok := s.next()
		if !ok {
			break
		}
		kinds = append(kinds, ev.kind)
		times = append(times, ev.at)
	}
	if len(kinds) != 3 || times[0] != 1 || times[1] != 5 || times[2] != 5 {
		t.Fatalf("order = %v %v", kinds, times)
	}
	if kinds[1] != evRelease || kinds[2] != evArrival {
		t.Fatalf("same-time ties must be FIFO: %v", kinds)
	}
}

func TestMakePlannerUnknown(t *testing.T) {
	cfg := DefaultConfig(AlgBasic, 100, 1)
	cfg.Algorithm = "nope"
	if _, err := makePlanner(cfg, newTestRNG(1)); err == nil {
		t.Fatal("unknown planner accepted")
	}
}

// newTestRNG builds a seeded RNG for tests.
func newTestRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestTracerReceivesLifecycle(t *testing.T) {
	cfg := quickConfig(AlgBasic, 120)
	counter := trace.NewCounter()
	ring := trace.NewRing(32)
	cfg.Tracer = trace.Multi{counter, ring}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if got := counter.Count(trace.Arrival); got != m.Overall.Attempts {
		t.Fatalf("arrivals traced = %d, sessions = %d", got, m.Overall.Attempts)
	}
	if got := counter.Count(trace.Reserved); got != m.Overall.Successes {
		t.Fatalf("reserved traced = %d, successes = %d", got, m.Overall.Successes)
	}
	if got := counter.Count(trace.PlanFailed); got != m.PlanFailures {
		t.Fatalf("plan failures traced = %d, metrics = %d", got, m.PlanFailures)
	}
	// Everything reserved is eventually released (the run drains).
	if got := counter.Count(trace.Released); got != m.Overall.Successes {
		t.Fatalf("released traced = %d, successes = %d", got, m.Overall.Successes)
	}
	if ring.Len() == 0 {
		t.Fatal("ring received nothing")
	}
	for _, ev := range ring.Events() {
		if ev.Session == 0 || ev.Service == "" || ev.Class == "" {
			t.Fatalf("malformed event %+v", ev)
		}
	}
}

func TestTracerCSVEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	csvT, err := trace.NewCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig(AlgBasic, 60)
	cfg.Duration = 300
	cfg.Tracer = csvT
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if err := csvT.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 100 {
		t.Fatalf("only %d CSV lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "time,kind,session") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestRuntimeModeMatchesDirect(t *testing.T) {
	// Routing every session through the QoSProxy protocol must yield
	// exactly the same results as the direct broker path: the runtime is
	// a faithful implementation, not an approximation.
	for _, alg := range []Algorithm{AlgBasic, AlgTradeoff, AlgRandom} {
		direct := quickConfig(alg, 150)
		viaRuntime := direct
		viaRuntime.UseRuntime = true

		a, err := Run(direct)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(viaRuntime)
		if err != nil {
			t.Fatal(err)
		}
		if a.Metrics.Overall != b.Metrics.Overall {
			t.Fatalf("%s: direct %+v != runtime %+v", alg, a.Metrics.Overall, b.Metrics.Overall)
		}
		for _, c := range stats.Classes() {
			if *a.Metrics.Class(c) != *b.Metrics.Class(c) {
				t.Fatalf("%s class %s: direct %+v != runtime %+v",
					alg, c, a.Metrics.Class(c), b.Metrics.Class(c))
			}
		}
		for fam, h := range a.Metrics.ByFamily {
			h2 := b.Metrics.ByFamily[fam]
			if h2 == nil || h.Total != h2.Total {
				t.Fatalf("%s family %s histograms differ", alg, fam)
			}
			for p, n := range h.Counts {
				if h2.Counts[p] != n {
					t.Fatalf("%s path %s: %d vs %d", alg, p, n, h2.Counts[p])
				}
			}
		}
		// Runtime mode drains clean too.
		for _, br := range b.Pool.LocalBrokers() {
			if br.Reservations() != 0 {
				t.Fatalf("%s: %s leaked", alg, br.Resource())
			}
		}
	}
}

func TestRuntimeModeValidation(t *testing.T) {
	cfg := quickConfig(AlgBasic, 100)
	cfg.UseRuntime = true
	cfg.StaleE = 2
	if err := cfg.Validate(); err == nil {
		t.Fatal("UseRuntime with staleness accepted")
	}
	cfg.StaleE = 0
	cfg.Contention = "headroom"
	if err := cfg.Validate(); err == nil {
		t.Fatal("UseRuntime with non-ratio contention accepted")
	}
}

func TestPerServiceMetrics(t *testing.T) {
	res, err := Run(quickConfig(AlgBasic, 150))
	if err != nil {
		t.Fatal(err)
	}
	by := res.Metrics.ByService
	if len(by) != 4 {
		t.Fatalf("services observed = %d, want 4", len(by))
	}
	total := 0
	for i := 1; i <= 4; i++ {
		name := "S" + string(rune('0'+i))
		c := by[name]
		if c == nil || c.Attempts == 0 {
			t.Fatalf("service %s never requested", name)
		}
		total += c.Attempts
	}
	if total != res.Metrics.Overall.Attempts {
		t.Fatalf("per-service attempts %d != overall %d", total, res.Metrics.Overall.Attempts)
	}
}

func TestPopularityRedrawChangesMix(t *testing.T) {
	cfg := DefaultConfig(AlgBasic, 100, 21)
	rng := newTestRNG(21)
	env, err := buildEnvironment(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	before := env.popularity
	env.redrawPopularity(rng)
	after := env.popularity
	if before == after {
		t.Fatal("popularity redraw produced identical weights")
	}
	for _, w := range after {
		if w < 0.1 || w > 1.0 {
			t.Fatalf("weight %v out of [0.1, 1.0]", w)
		}
	}
}

func TestTimelineAttachedToRun(t *testing.T) {
	cfg := quickConfig(AlgBasic, 120)
	cfg.TimelineWindow = 300
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := res.Metrics.Timeline
	if ts == nil || ts.Len() < 3 {
		t.Fatalf("timeline = %v", ts)
	}
	total := 0
	for i := 0; i < ts.Len(); i++ {
		_, _, c := ts.Window(i)
		total += c.Attempts
	}
	if total != res.Metrics.Overall.Attempts {
		t.Fatalf("timeline attempts %d != overall %d", total, res.Metrics.Overall.Attempts)
	}
}

// TestRunSnapshotCacheParityBasic pins the epoch-validated snapshot
// cache against the reference path: the basic planner is α-independent
// and cache hits return exact availability (the books are proven
// unchanged), so a cached run must make identical admission decisions.
func TestRunSnapshotCacheParityBasic(t *testing.T) {
	off := quickConfig(AlgBasic, 120)
	on := quickConfig(AlgBasic, 120)
	on.SnapshotCache = true
	a, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(on)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics.Overall != b.Metrics.Overall {
		t.Fatalf("snapshot cache changed basic-planner outcomes:\noff: %+v\non:  %+v",
			a.Metrics.Overall, b.Metrics.Overall)
	}
	if a.Metrics.Summary() != b.Metrics.Summary() {
		t.Fatal("summaries differ with the snapshot cache on")
	}
}
