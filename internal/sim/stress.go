package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/proxy"
	"qosres/internal/topo"
)

// This file is the concurrent admission stress harness for the
// validate-at-commit reserve protocol. The discrete-event simulator is
// single-threaded by construction, so it can never exercise the
// snapshot→reserve race; RunStress instead drives one proxy.Runtime
// from many goroutine "clients", each establishing and releasing
// sessions drawn from the same figure-9 workload, and checks the two
// admission-safety invariants:
//
//  1. no broker is ever over-committed (reserved never exceeds
//     capacity), and
//  2. no failed Establish leaves residual holds — after every session
//     is released, every broker is back to full availability with zero
//     live reservations.
//
// The harness is what TestConcurrentAdmissionStress runs under the race
// detector; it is exported so experiments and the CI workflow can run
// larger configurations.

// StressConfig parameterizes one RunStress call. The zero value is not
// valid; start from DefaultStressConfig.
type StressConfig struct {
	// Seed drives capacity draws and every client's session stream.
	Seed int64
	// Sessions is the number of concurrent client goroutines.
	Sessions int
	// Iterations is the number of Establish attempts per client.
	Iterations int
	// Config is the underlying run configuration (algorithm, workload
	// shape, capacities, MaxAdmitRetries, Obs registry). UseRuntime is
	// implied.
	Config Config
}

// DefaultStressConfig returns a configuration that contends hard: the
// figure-9 environment is drawn with capacities well below the paper's
// 1000..4000 so concurrent sessions constantly race for the same
// brokers and commit-time refusals actually occur.
func DefaultStressConfig(seed int64) StressConfig {
	cfg := DefaultConfig(AlgBasic, 120, seed)
	cfg.UseRuntime = true
	cfg.CapacityMin = 150
	cfg.CapacityMax = 300
	return StressConfig{
		Seed:       seed,
		Sessions:   32,
		Iterations: 8,
		Config:     cfg,
	}
}

// StressResult summarizes one stress run. Established + PlanInfeasible +
// AdmitRefused equals Sessions × Iterations.
type StressResult struct {
	// Established counts sessions that committed their reservations.
	Established int
	// PlanInfeasible counts sessions whose planning found no feasible
	// path against their (fresh) snapshot.
	PlanInfeasible int
	// AdmitRefused counts sessions refused at commit time after
	// exhausting the retry budget.
	AdmitRefused int
	// Retries, Rollbacks and StaleRejects are the admission counters of
	// the run's registry (zero when Config.Obs is nil).
	Retries, Rollbacks, StaleRejects float64
}

// String renders the result as a one-line summary.
func (r *StressResult) String() string {
	return fmt.Sprintf("established %d, plan-infeasible %d, admit-refused %d (retries %.0f, rollbacks %.0f, stale-rejects %.0f)",
		r.Established, r.PlanInfeasible, r.AdmitRefused, r.Retries, r.Rollbacks, r.StaleRejects)
}

// overcommitTolerance absorbs the per-reservation availEpsilon slack of
// many concurrent holds; a genuine over-commit overshoots by a session's
// whole requirement, orders of magnitude larger.
const overcommitTolerance = 1e-6

// RunStress drives Sessions concurrent clients through the proxy
// runtime's three-phase protocol and verifies the admission-safety
// invariants. Any invariant violation, or any Establish failure other
// than plan infeasibility and commit refusal, is returned as an error.
func RunStress(sc StressConfig) (*StressResult, error) {
	cfg := sc.Config
	cfg.UseRuntime = true
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sc.Sessions < 1 || sc.Iterations < 1 {
		return nil, fmt.Errorf("sim: stress needs at least one session and one iteration, got %d×%d",
			sc.Sessions, sc.Iterations)
	}

	rng := rand.New(rand.NewSource(sc.Seed))
	env, err := buildEnvironment(cfg, rng)
	if err != nil {
		return nil, err
	}
	planner, err := makePlanner(cfg, rng)
	if err != nil {
		return nil, err
	}
	clock := &proxy.ManualClock{}
	rt, err := env.buildRuntime(cfg, clock)
	if err != nil {
		return nil, err
	}
	defer rt.Stop()

	var (
		mu       sync.Mutex
		result   StressResult
		failures []string
	)
	fail := func(format string, args ...interface{}) {
		mu.Lock()
		if len(failures) < 8 { // keep the report readable
			failures = append(failures, fmt.Sprintf(format, args...))
		}
		mu.Unlock()
	}
	locals := env.pool.LocalBrokers()

	var wg sync.WaitGroup
	for g := 0; g < sc.Sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each client draws its own deterministic session stream.
			crng := rand.New(rand.NewSource(sc.Seed + 7919*int64(g) + 1))
			var held []*proxy.Session
			release := func(s *proxy.Session) {
				if err := s.Release(); err != nil {
					fail("client %d: release: %v", g, err)
				}
			}
			for it := 0; it < sc.Iterations; it++ {
				sh := env.drawSession(cfg, crng)
				service := env.services[sh.service-1][sh.variant]
				binding, _ := sessionResources(sh)
				s, err := rt.Establish(topo.ServerHost(sh.service), proxy.SessionSpec{
					Service: service, Binding: binding, Planner: planner,
				})
				switch {
				case err == nil:
					mu.Lock()
					result.Established++
					mu.Unlock()
					held = append(held, s)
					// Churn: keep a couple of sessions live so later
					// iterations race against real holds, release the rest.
					if len(held) > 2 {
						release(held[0])
						held = held[1:]
					}
				case errors.Is(err, core.ErrInfeasible):
					mu.Lock()
					result.PlanInfeasible++
					mu.Unlock()
				case errors.Is(err, broker.ErrInsufficient):
					mu.Lock()
					result.AdmitRefused++
					mu.Unlock()
				default:
					fail("client %d: establish: %v", g, err)
				}
				// Invariant 1, checked while the race is hot: no broker may
				// ever have negative availability.
				for _, b := range locals {
					if a := b.Available(); a < -overcommitTolerance {
						fail("client %d: broker %s over-committed: available %g", g, b.Resource(), a)
					}
				}
			}
			for _, s := range held {
				release(s)
			}
		}(g)
	}
	wg.Wait()

	// Invariant 2: with every session released, every broker must be
	// whole again — anything else is a leaked (or lost) hold.
	for _, b := range locals {
		if n := b.Reservations(); n != 0 {
			failures = append(failures, fmt.Sprintf("broker %s leaked %d holds", b.Resource(), n))
		}
		if a, c := b.Available(), b.Capacity(); a < c-overcommitTolerance || a > c+overcommitTolerance {
			failures = append(failures, fmt.Sprintf("broker %s availability %g after drain, want capacity %g", b.Resource(), a, c))
		}
	}
	for _, r := range env.pool.Resources() {
		b, _ := env.pool.Get(r)
		if n, ok := b.(*broker.Network); ok {
			if live := n.Reservations(); live != 0 {
				failures = append(failures, fmt.Sprintf("network broker %s leaked %d holds", r, live))
			}
		}
	}
	if got, want := result.Established+result.PlanInfeasible+result.AdmitRefused,
		sc.Sessions*sc.Iterations; got != want {
		failures = append(failures, fmt.Sprintf("outcome count %d != %d attempts", got, want))
	}
	if len(failures) > 0 {
		return nil, fmt.Errorf("sim: stress invariants violated: %v", failures)
	}

	result.Retries = env.ins.admit.Retries.Value()
	result.Rollbacks = env.ins.admit.Rollbacks.Value()
	result.StaleRejects = env.ins.admit.StaleRejects.Value()
	return &result, nil
}
