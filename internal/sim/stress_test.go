package sim

import (
	"strings"
	"testing"

	"qosres/internal/obs"
)

// TestConcurrentAdmissionStress is the tentpole invariant test: 32
// goroutines hammer one proxy.Runtime with establish/release traffic
// against a deliberately under-provisioned figure-9 environment.
// RunStress itself asserts that no broker is ever over-committed and
// that no failed admission leaks holds; the test additionally checks
// that the admission counters surface in the Prometheus exposition.
// CI runs it under -race.
func TestConcurrentAdmissionStress(t *testing.T) {
	reg := obs.New()
	sc := DefaultStressConfig(7)
	sc.Config.Obs = reg

	res, err := RunStress(sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("stress: %s", res)
	if res.Established == 0 {
		t.Fatal("no session established; the stress run exercised nothing")
	}
	if res.Rollbacks != res.StaleRejects {
		t.Fatalf("rollbacks %.0f != stale rejects %.0f: the runtime path books exactly one rollback per commit refusal",
			res.Rollbacks, res.StaleRejects)
	}
	if res.Retries > res.StaleRejects {
		t.Fatalf("retries %.0f > stale rejects %.0f: every retry must follow a refusal",
			res.Retries, res.StaleRejects)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, name := range []string{
		obs.MetricAdmitRetries,
		obs.MetricAdmitStaleRejects,
		obs.MetricRollbacks,
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metric %s missing from Prometheus exposition", name)
		}
	}
}

// TestConcurrentAdmissionStressBatched reruns the stress harness with
// the group-commit admission front end enabled: the same over-commit
// and leak invariants must hold when concurrent commits share batched
// 2PC rounds, and the batch counters must surface in the exposition.
// CI runs it under -race.
func TestConcurrentAdmissionStressBatched(t *testing.T) {
	reg := obs.New()
	sc := DefaultStressConfig(7)
	sc.Config.Obs = reg
	sc.Config.BatchAdmit = 16

	res, err := RunStress(sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("batched stress: %s", res)
	if res.Established == 0 {
		t.Fatal("no session established; the batched stress run exercised nothing")
	}
	if res.Rollbacks != res.StaleRejects {
		t.Fatalf("rollbacks %.0f != stale rejects %.0f on the batched path",
			res.Rollbacks, res.StaleRejects)
	}

	var batches, members float64
	for _, c := range reg.Snapshot().Counters {
		switch c.Name {
		case obs.MetricAdmitBatches:
			batches += c.Value
		case obs.MetricAdmitBatchMembers:
			members += c.Value
		}
	}
	if batches == 0 || members == 0 {
		t.Fatalf("batched run recorded no rounds (batches %g, members %g): the front end was bypassed", batches, members)
	}
	if members < batches {
		t.Fatalf("batch members %g < rounds %g", members, batches)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, name := range []string{
		obs.MetricAdmitBatches,
		obs.MetricAdmitBatchMembers,
		obs.MetricAdmitBatchSize,
		obs.MetricStripeLocks,
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metric %s missing from Prometheus exposition", name)
		}
	}
}

// TestStressFailFastPolicy pins the MaxAdmitRetries=0 contract: refusals
// are still safe (no leaks, no over-commit — RunStress checks) and no
// retry is ever counted.
func TestStressFailFastPolicy(t *testing.T) {
	reg := obs.New()
	sc := DefaultStressConfig(11)
	sc.Config.Obs = reg
	sc.Config.MaxAdmitRetries = 0

	res, err := RunStress(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 0 {
		t.Fatalf("fail-fast policy retried %.0f times", res.Retries)
	}
}

func TestStressConfigValidation(t *testing.T) {
	sc := DefaultStressConfig(1)
	sc.Sessions = 0
	if _, err := RunStress(sc); err == nil {
		t.Fatal("zero sessions accepted")
	}
	sc = DefaultStressConfig(1)
	sc.Config.MaxAdmitRetries = -1
	if _, err := RunStress(sc); err == nil {
		t.Fatal("negative retry bound accepted")
	}
}
