package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/obs"
	"qosres/internal/proxy"
	"qosres/internal/qrg"
	"qosres/internal/stats"
	"qosres/internal/svc"
	"qosres/internal/topo"
	"qosres/internal/trace"
	"qosres/internal/tracetree"
	"qosres/internal/workload"
)

// Result is the outcome of one simulation run.
type Result struct {
	Config  Config
	Metrics *stats.Metrics
	// Pool exposes the environment's brokers for post-run inspection
	// (capacity, leaked reservations) by tests and experiments.
	Pool *broker.Pool
	// Capacities records the randomly drawn initial total amount of each
	// resource.
	Capacities map[string]float64
}

// Run executes one simulation run and returns its metrics. Runs are
// fully deterministic in Config (including Seed).
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Faults != nil {
		return nil, fmt.Errorf("sim: fault injection needs concurrent clients; use RunChaos")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	env, err := buildEnvironment(cfg, rng)
	if err != nil {
		return nil, err
	}
	planner, err := makePlanner(cfg, rng)
	if err != nil {
		return nil, err
	}

	metrics := stats.NewMetrics()
	if cfg.TimelineWindow > 0 {
		ts, err := stats.NewTimeSeries(cfg.TimelineWindow)
		if err != nil {
			return nil, err
		}
		metrics.Timeline = ts
	}
	sched := newScheduler()
	var rt *proxy.Runtime
	if cfg.UseRuntime {
		rt, err = env.buildRuntime(cfg, simClock{sched: sched})
		if err != nil {
			return nil, err
		}
		defer rt.Stop()
	}
	sched.at(env.nextArrivalGap(rng), evArrival, nil)
	if cfg.PopularityInterval > 0 && cfg.PopularityInterval < cfg.Duration {
		sched.at(cfg.PopularityInterval, evPopularity, nil)
	}

	for {
		ev, ok := sched.next()
		if !ok {
			break
		}
		now := sched.now
		switch ev.kind {
		case evArrival:
			if now > cfg.Duration {
				continue
			}
			if rt != nil {
				sh := env.drawSession(cfg, rng)
				if err := env.handleArrivalRuntime(cfg, rt, planner, metrics, sched, now, sh); err != nil {
					return nil, err
				}
			} else if err := env.handleArrival(cfg, rng, planner, metrics, sched, now); err != nil {
				return nil, err
			}
			sched.at(now+env.nextArrivalGap(rng), evArrival, nil)
		case evRelease:
			if err := ev.release.release(now); err != nil {
				return nil, fmt.Errorf("sim: release at %g: %v", float64(now), err)
			}
			env.ins.released.Inc()
			env.ins.simTime.Set(float64(now))
			env.ins.sampleUtilization(env.pool, ev.release.resources)
			env.tracer.Trace(trace.Event{
				At: now, Kind: trace.Released, Session: ev.release.id,
				Service: ev.release.service, Class: ev.release.class,
			})
		case evPopularity:
			if now > cfg.Duration {
				continue
			}
			env.redrawPopularity(rng)
			// Bound broker memory for long runs: keep just enough change
			// history for the staleness window.
			env.pool.TrimLogs(now - cfg.StaleE - 2*cfg.AlphaWindow)
			sched.at(now+cfg.PopularityInterval, evPopularity, nil)
		}
	}

	return &Result{
		Config:     cfg,
		Metrics:    metrics,
		Pool:       env.pool,
		Capacities: env.capacities,
	}, nil
}

// makePlanner instantiates the configured algorithm.
func makePlanner(cfg Config, rng *rand.Rand) (core.Planner, error) {
	switch cfg.Algorithm {
	case AlgBasic:
		return core.Basic{NoTieBreak: cfg.NoTieBreak}, nil
	case AlgTradeoff:
		return core.Tradeoff{}, nil
	case AlgRandom:
		return core.NewRandom(rng.Int63()), nil
	}
	return nil, fmt.Errorf("sim: unknown algorithm %q", cfg.Algorithm)
}

// environment is the instantiated figure-9 world of one run.
type environment struct {
	topology   *topo.Topology
	pool       *broker.Pool
	capacities map[string]float64
	// services[s][m] is service S(s+1) with fat multiplier variant m
	// (variant 0 is the normal requirement).
	services [][]*svc.Service
	// multipliers[m] is the requirement multiplier of variant m.
	multipliers []float64
	popularity  [4]float64
	meanGap     broker.Time
	nextSession uint64
	tracer      trace.Tracer
	// ins holds the run's metric handles; inert when Config.Obs is nil.
	ins instruments
	// traceSpans emits planning-stage Span events to the tracer.
	traceSpans bool
	// timed is true when either metrics or span tracing needs stage
	// wall-clock timings.
	timed bool
	// tracerec records causal distributed-trace span trees of session
	// establishments; nil (TraceSample 0) costs the hot path nothing.
	tracerec *obs.TraceRecorder
	// templates serves compiled QRG templates when Config.TemplateCache
	// is set; nil keeps the from-scratch reference path.
	templates *qrg.TemplateCache
	// snapcache serves epoch-validated shared snapshots when
	// Config.SnapshotCache is set; nil keeps the per-arrival
	// pool.Snapshot reference path (with buffer recycling).
	snapcache *broker.SnapshotCache
}

// buildEnvironment draws capacities, registers all brokers, pre-creates
// the end-to-end network resources the sessions can need, and builds the
// service variants.
func buildEnvironment(cfg Config, rng *rand.Rand) (*environment, error) {
	env := &environment{
		topology:   topo.Figure9(),
		capacities: make(map[string]float64),
		meanGap:    broker.Time(60 / cfg.Rate),
		tracer:     cfg.Tracer,
	}
	if env.tracer == nil {
		env.tracer = trace.Nop{}
	}
	env.ins = newInstruments(cfg.Obs)
	if cfg.TemplateCache {
		env.templates = qrg.NewTemplateCache(cfg.Obs)
	}
	env.traceSpans = cfg.TraceSpans && cfg.Tracer != nil
	env.timed = env.ins.enabled() || env.traceSpans
	if cfg.TraceSample > 0 {
		// Distributed tracing: head-sample admissions into span trees,
		// rescue errored ones, and export retained trees to the Tracer
		// (when set) as span_end/span_event lines for offline analysis.
		var sink obs.TraceSink
		if cfg.Tracer != nil {
			sink = tracetree.NewSink(cfg.Tracer)
		}
		env.tracerec = obs.NewTraceRecorder(cfg.Obs, obs.TraceOptions{
			Sample:       cfg.TraceSample,
			RescueErrors: true,
			Seed:         cfg.Seed + 2654435769,
			Sink:         sink,
		})
	}
	env.pool = broker.NewPoolWindow(env.topology, cfg.AlphaWindow)
	if cfg.SnapshotCache {
		env.snapcache = broker.NewSnapshotCache(env.pool, env.ins.read)
	}

	capDraw := func() float64 {
		return cfg.CapacityMin + rng.Float64()*(cfg.CapacityMax-cfg.CapacityMin)
	}
	// The initial total amount of each resource is randomly set between
	// CapacityMin and CapacityMax (paper: 1000..4000 units). Draw in a
	// fixed order for determinism: server CPUs, then links by ID.
	for i := 1; i <= topo.NumServers; i++ {
		c := capDraw()
		b, err := env.pool.AddLocal(workload.ResCPU, topo.ServerHost(i), c)
		if err != nil {
			return nil, err
		}
		env.capacities[b.Resource()] = c
	}
	for _, l := range env.topology.Links() {
		c := capDraw()
		b, err := env.pool.AddLink(l.ID, c)
		if err != nil {
			return nil, err
		}
		env.capacities[b.Resource()] = c
	}
	// Pre-create the network resources sessions use: every ordered
	// server pair (server -> proxy) and every proxy -> domain pair.
	for i := 1; i <= topo.NumServers; i++ {
		for j := 1; j <= topo.NumServers; j++ {
			if i == j {
				continue
			}
			if _, err := env.pool.Network(topo.ServerHost(i), topo.ServerHost(j)); err != nil {
				return nil, err
			}
		}
	}
	for d := 1; d <= topo.NumDomains; d++ {
		p := topo.ProxyServerFor(d)
		if _, err := env.pool.Network(topo.ServerHost(p), topo.DomainHost(d)); err != nil {
			return nil, err
		}
	}

	// Service variants: normal plus one per fat multiplier.
	env.multipliers = append([]float64{1}, cfg.FatMultipliers...)
	base := cfg.Workload.BaseScale
	if base <= 0 {
		base = 1
	}
	env.services = make([][]*svc.Service, 4)
	for s := 0; s < 4; s++ {
		env.services[s] = make([]*svc.Service, len(env.multipliers))
		for m, mult := range env.multipliers {
			opts := workload.Options{
				BaseScale:      base * mult,
				DiversityRatio: cfg.Workload.DiversityRatio,
			}
			env.services[s][m] = workload.Chain(fmt.Sprintf("S%d", s+1), workload.FamilyOf(s+1), opts)
		}
	}
	env.redrawPopularity(rng)
	return env, nil
}

// redrawPopularity re-draws the probability that each service is
// requested, the dynamic demand shift of section 5.1.
func (env *environment) redrawPopularity(rng *rand.Rand) {
	for i := range env.popularity {
		env.popularity[i] = 0.1 + 0.9*rng.Float64()
	}
}

// nextArrivalGap draws a Poisson-process interarrival gap.
func (env *environment) nextArrivalGap(rng *rand.Rand) broker.Time {
	return broker.Time(rng.ExpFloat64()) * env.meanGap
}

// sessionShape is the drawn heterogeneity of one session.
type sessionShape struct {
	domain   int
	service  int // 1-based
	variant  int // index into env.multipliers; 0 = normal
	fat      bool
	long     bool
	duration broker.Time
}

// drawSession draws a session per section 5.1: a random domain, a
// service other than S⌈d/2⌉ weighted by the current popularity, the
// normal/fat and short/long classes, and the duration.
func (env *environment) drawSession(cfg Config, rng *rand.Rand) sessionShape {
	sh := sessionShape{domain: 1 + rng.Intn(topo.NumDomains)}
	excluded := topo.ProxyServerFor(sh.domain)

	total := 0.0
	for s := 1; s <= 4; s++ {
		if s != excluded {
			total += env.popularity[s-1]
		}
	}
	pick := rng.Float64() * total
	sh.service = 0
	for s := 1; s <= 4; s++ {
		if s == excluded {
			continue
		}
		pick -= env.popularity[s-1]
		sh.service = s
		if pick <= 0 {
			break
		}
	}

	if rng.Float64() < cfg.FatRatio {
		sh.fat = true
		sh.variant = 1 + rng.Intn(len(cfg.FatMultipliers))
	}
	if rng.Float64() < cfg.LongRatio {
		sh.long = true
		sh.duration = cfg.DurationSplit + broker.Time(rng.Float64())*(cfg.DurationMax-cfg.DurationSplit)
	} else {
		sh.duration = cfg.DurationMin + broker.Time(rng.Float64())*(cfg.DurationSplit-cfg.DurationMin)
	}
	return sh
}

// sessionResources returns the binding and the concrete resource IDs of
// one session's placement: the server component on the service's main
// server, the proxy component on the domain's proxy server, the client
// in the domain.
func sessionResources(sh sessionShape) (svc.Binding, []string) {
	server := topo.ServerHost(sh.service)
	proxy := topo.ServerHost(topo.ProxyServerFor(sh.domain))
	client := topo.DomainHost(sh.domain)

	cpuS := broker.LocalResourceID(workload.ResCPU, server)
	cpuP := broker.LocalResourceID(workload.ResCPU, proxy)
	netSP := broker.NetResourceID(server, proxy)
	netPC := broker.NetResourceID(proxy, client)

	binding := svc.Binding{
		workload.CompServer: {workload.ResCPU: cpuS},
		workload.CompProxy:  {workload.ResCPU: cpuP, workload.ResNet: netSP},
		workload.CompClient: {workload.ResNet: netPC},
	}
	return binding, []string{cpuS, cpuP, netSP, netPC}
}

// handleArrival processes one session arrival end to end: observe
// availability, build the QRG, plan, reserve, and schedule the release.
func (env *environment) handleArrival(cfg Config, rng *rand.Rand, planner core.Planner,
	metrics *stats.Metrics, sched *scheduler, now broker.Time) error {

	sh := env.drawSession(cfg, rng)
	class := stats.ClassOf(sh.fat, sh.long)
	service := env.services[sh.service-1][sh.variant]
	family := workload.FamilyOf(sh.service).String()
	binding, resources := sessionResources(sh)

	env.nextSession++
	sid := env.nextSession
	env.ins.arrivals.Inc()
	env.ins.simTime.Set(float64(now))
	env.tracer.Trace(trace.Event{
		At: now, Kind: trace.Arrival, Session: sid,
		Service: service.Name, Class: class.String(),
	})

	// Distributed-trace root for this arrival's establishment. The stage
	// children mirror the runtime path's span names so both execution
	// modes produce comparable trees; every exit path below ends the
	// root. All of it is inert (no lock, no clock, no allocation) when
	// the arrival is not sampled.
	host := string(topo.ServerHost(sh.service))
	root := env.tracerec.Root(obs.StageEstablish, host)
	tid := root.TraceID()

	stSnap := env.startStage()
	spSnap := root.Child(obs.StageSnapshot, host)
	var snap *broker.Snapshot
	var err error
	recycleSnap := false
	if cfg.StaleE > 0 {
		lag := make(map[string]broker.Time, len(resources))
		for _, r := range resources {
			l := broker.Time(rng.Float64()) * cfg.StaleE
			if l > now {
				l = now
			}
			lag[r] = l
		}
		snap, err = env.pool.StaleSnapshot(now, resources, lag)
		recycleSnap = err == nil
	} else if env.snapcache != nil {
		// Epoch-validated shared snapshot: reused as-is while the four
		// resources' brokers are unchanged. Never recycled — other
		// admissions may still share it.
		snap, err = env.snapcache.Snapshot(now, resources)
	} else {
		snap, err = env.pool.Snapshot(now, resources)
		recycleSnap = err == nil
	}
	if err != nil {
		spSnap.EndStatus("error")
		root.EndStatus("error")
		return err
	}
	spSnap.End()
	env.endStage(stSnap, env.ins.stages.Snapshot, obs.StageSnapshot, tid, now, sid, service.Name, class.String())
	env.ins.sampleAlpha(snap)

	stBuild := env.startStage()
	spBuild := root.Child(obs.StageBuild, host)
	contention, _ := qrg.ContentionByName(cfg.Contention)
	var g *qrg.Graph
	var tpl *qrg.Template
	if env.templates != nil {
		// Fast lane: instantiate the compiled (service, binding)
		// template against this snapshot; plan-for-plan identical to
		// the from-scratch build below.
		tpl, err = env.templates.Get(service, binding)
		if err == nil {
			g, err = tpl.InstantiateWithOptions(snap, qrg.BuildOptions{Contention: contention})
		}
	} else {
		g, err = qrg.BuildWithOptions(service, binding, snap, qrg.BuildOptions{Contention: contention})
	}
	if err != nil {
		spBuild.EndStatus("error")
		root.EndStatus("error")
		return err
	}
	spBuild.End()
	env.endStage(stBuild, env.ins.stages.Build, obs.StageBuild, tid, now, sid, service.Name, class.String())

	stPlan := env.startStage()
	spPlan := root.Child(obs.StagePlan, host)
	plan, err := planner.Plan(g)
	spPlan.EndErr(err, "infeasible")
	env.endStage(stPlan, env.ins.stages.Plan, obs.StagePlan, tid, now, sid, service.Name, class.String())
	if tpl != nil {
		// The plan owns all its data; the graph's buffers can go back
		// to the template pool for the next arrival.
		tpl.Recycle(g)
	}
	if recycleSnap {
		// Planning is done and the graph is dead past this point: the
		// snapshot's maps go back to the pool for the next arrival.
		// Cache-served snapshots are shared and never recycled.
		env.pool.RecycleSnapshot(snap)
		snap = nil
	}
	if errors.Is(err, core.ErrInfeasible) {
		env.ins.planFailed.Inc()
		metrics.PlanFailures++
		metrics.ObserveSessionAt(float64(now), class, false, 0)
		metrics.ObserveService(service.Name, false, 0)
		env.tracer.Trace(trace.Event{
			At: now, Kind: trace.PlanFailed, Session: sid,
			Service: service.Name, Class: class.String(),
		})
		root.EndStatus("infeasible")
		return nil
	}
	if err != nil {
		root.EndStatus("error")
		return err
	}
	env.ins.planned.Inc()
	metrics.ObservePlan(family, plan.PathLevels, plan.Bottleneck)
	env.tracer.Trace(trace.Event{
		At: now, Kind: trace.Planned, Session: sid,
		Service: service.Name, Class: class.String(),
		Level: plan.EndToEnd.Name, Rank: plan.Rank,
		Psi: plan.Psi, Bottleneck: plan.Bottleneck, Path: plan.PathLevels,
	})

	stRes := env.startStage()
	spRes := root.Child(obs.StageReserve, host)
	res, err := env.pool.ReserveAll(now, plan.Requirement())
	if errors.Is(err, broker.ErrInsufficient) {
		spRes.EndStatus("refused")
	} else {
		spRes.EndErr(err, "error")
	}
	env.endStage(stRes, env.ins.stages.Reserve, obs.StageReserve, tid, now, sid, service.Name, class.String())
	if err != nil {
		if !errors.Is(err, broker.ErrInsufficient) {
			root.EndStatus("error")
			return err
		}
		// Only possible under stale observations: the plan looked
		// feasible against the (old) snapshot but the resources moved.
		env.ins.reserveFailed.Inc()
		env.ins.rollbacks.Inc()
		metrics.ReserveFailures++
		metrics.ObserveSessionAt(float64(now), class, false, 0)
		metrics.ObserveService(service.Name, false, 0)
		env.tracer.Trace(trace.Event{
			At: now, Kind: trace.ReserveFailed, Session: sid,
			Service: service.Name, Class: class.String(),
			Level: plan.EndToEnd.Name, Rank: plan.Rank,
			Psi: plan.Psi, Bottleneck: plan.Bottleneck, Path: plan.PathLevels,
		})
		root.EndStatus("refused")
		return nil
	}
	root.End()
	env.ins.reserved.Inc()
	env.ins.observeAcceptedPlan(plan)
	env.ins.sampleUtilization(env.pool, resources)
	metrics.ObserveSessionAt(float64(now), class, true, plan.Rank)
	metrics.ObserveService(service.Name, true, plan.Rank)
	env.tracer.Trace(trace.Event{
		At: now, Kind: trace.Reserved, Session: sid,
		Service: service.Name, Class: class.String(),
		Level: plan.EndToEnd.Name, Rank: plan.Rank,
		Psi: plan.Psi, Bottleneck: plan.Bottleneck, Path: plan.PathLevels,
	})
	sched.at(now+sh.duration, evRelease, &liveSession{
		id: sid, service: service.Name, class: class.String(),
		resources: resources, reservation: res,
	})
	return nil
}
