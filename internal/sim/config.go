// Package sim implements the discrete-event simulation of the paper's
// performance study (section 5.1): the figure-9 reservation-enabled
// environment with four servers, eight client domains and fourteen
// links; four deployed services; Poisson session arrivals with
// heterogeneous resource requirements (normal vs. "fat" sessions) and
// durations (short vs. long); dynamically changing per-service request
// probabilities; and optionally stale resource availability observations
// (section 5.2.4).
package sim

import (
	"fmt"
	"time"

	"qosres/internal/broker"
	"qosres/internal/obs"
	"qosres/internal/qrg"
	"qosres/internal/trace"
	"qosres/internal/workload"
)

// Algorithm selects the runtime planning algorithm of a run.
type Algorithm string

// The three algorithms compared in section 5.
const (
	AlgBasic    Algorithm = "basic"
	AlgTradeoff Algorithm = "tradeoff"
	AlgRandom   Algorithm = "random"
)

// Config parameterizes one simulation run. The zero value is not valid;
// start from DefaultConfig.
type Config struct {
	// Seed drives every random choice of the run.
	Seed int64
	// Algorithm is the planning algorithm under test.
	Algorithm Algorithm
	// Rate is the average session generation rate in sessions per 60 TUs
	// (the paper sweeps 60..240).
	Rate float64
	// Duration is the total simulated time; the paper uses 10800 TUs.
	Duration broker.Time
	// StaleE is the maximum observation age E of section 5.2.4: each
	// resource's availability is observed up to E TUs ago, uniformly at
	// random. 0 restores the atomic, accurate-observation model.
	StaleE broker.Time
	// Workload configures the figure-10 tables (base scale, diversity
	// compression).
	Workload workload.Options
	// AlphaWindow is the Resource Brokers' report-averaging window T for
	// the tradeoff policy; the paper uses 3 TUs.
	AlphaWindow broker.Time
	// CapacityMin/Max bound the uniformly drawn initial total amount of
	// each resource; the paper uses 1000..4000.
	CapacityMin, CapacityMax float64
	// PopularityInterval is how often the per-service request
	// probabilities are re-drawn, creating the shifting per-resource
	// demand of section 5.1.
	PopularityInterval broker.Time
	// FatRatio is the probability that a session is "fat"; the paper's
	// normal:fat ratio of 1:2 gives 2/3.
	FatRatio float64
	// FatMultipliers are the candidate requirement multipliers N of fat
	// sessions (the paper: 2 or 10, which we draw uniformly).
	FatMultipliers []float64
	// LongRatio is the probability that a session is "long"; the paper's
	// long:short ratio of 1:2 gives 1/3.
	LongRatio float64
	// DurationMin/Split/Max delimit the session duration ranges:
	// short in [DurationMin, DurationSplit], long in (DurationSplit,
	// DurationMax]; the paper uses 20/60/600.
	DurationMin, DurationSplit, DurationMax broker.Time
	// Contention selects the per-resource contention index definition:
	// "" or "ratio" (the paper's equation 2), "headroom", or "log"
	// (footnote-2 alternatives, for ablation).
	Contention string
	// Tracer, when non-nil, receives a structured event stream of every
	// session's lifecycle (see package trace).
	Tracer trace.Tracer
	// Obs, when non-nil, receives runtime metrics: session-event
	// counters, planning stage-latency histograms, per-resource
	// utilization and α gauges, and the Ψ distribution of accepted plans
	// (see package obs). A nil registry costs nothing on the hot path.
	Obs *obs.Registry
	// TraceSpans additionally emits planning-stage timings as
	// trace.Span events to the Tracer (wall-clock durations). Useful
	// only with a non-nil Tracer.
	TraceSpans bool
	// TraceSample enables causal distributed tracing of session
	// admissions: each arrival's establishment rolls head sampling with
	// this probability (errored admissions are always tail-rescued), and
	// retained span trees are exported to the Tracer as span_end /
	// span_event lines. 0 disables tracing entirely — the admission hot
	// path then never locks, reads the clock, or allocates for tracing.
	TraceSample float64
	// NoTieBreak disables the basic algorithm's section 4.1.2
	// predecessor tie-break rule (ablation).
	NoTieBreak bool
	// TimelineWindow, when > 0, attaches a time series to the metrics
	// bucketing session outcomes into windows of this width (TUs).
	TimelineWindow float64
	// UseRuntime routes every session through the QoSProxy runtime
	// architecture (per-host proxy goroutines, the three-phase protocol)
	// instead of direct broker calls. Incompatible with StaleE > 0: the
	// protocol always observes current availability.
	UseRuntime bool
	// MaxAdmitRetries bounds the runtime admission retry loop: when a
	// computed plan is refused at commit time because its availability
	// snapshot went stale under concurrent admission, the proxy runtime
	// replans against a fresh snapshot up to this many more times. Only
	// meaningful with UseRuntime; 0 means fail-fast (single attempt).
	// Single-threaded simulation runs never trigger a retry, so the
	// value does not perturb deterministic results.
	MaxAdmitRetries int
	// TemplateCache serves QRG construction from compiled per-(service,
	// binding) templates instead of rebuilding each graph from scratch
	// (the plan-path fast lane). Results are identical either way — the
	// template replay is proven plan-for-plan equivalent to qrg.Build —
	// so the knob exists for benchmarking the reference path.
	TemplateCache bool
	// Faults, when non-nil, enables chaos mode: a seeded fault-injection
	// walk runs against the environment while sessions are established,
	// failed reservations are repaired, and holds are leased. Requires
	// UseRuntime and the concurrent chaos harness — use RunChaos; the
	// deterministic Run refuses the combination.
	Faults *FaultsConfig
	// BatchAdmit, when > 1, enables the runtime's group-commit admission
	// front end: concurrent commits coalesce into batched two-phase
	// rounds of up to this many members (one prepare/commit message and
	// one broker stripe sweep per host per round). Requires UseRuntime.
	// 0 or 1 (the default) serializes commits member by member. The
	// deterministic single-threaded Run is unaffected either way: its
	// rounds always have exactly one member.
	BatchAdmit int
	// BatchWindow is how long a forming round waits (wall-clock) for
	// stragglers after its first member. 0 (the default) coalesces only
	// the commits already waiting, adding no latency. Only meaningful
	// with BatchAdmit > 1; avoid with the deterministic Run, where every
	// admission would idle out the full window alone.
	BatchWindow time.Duration
	// SnapshotCache serves the direct path's availability snapshots from
	// the pool's epoch-validated shared cache: an admission whose
	// resources' brokers are unchanged since the previous snapshot reuses
	// it without locking or allocating. The cached snapshot's α values
	// are as of the last rebuild (observation ticks still feed every α
	// window, so the trajectory matches the uncached run state-for-state,
	// but the values planned against can lag one epoch). Off by default:
	// deterministic parity with the reference path requires fresh α per
	// admission. Incompatible with StaleE > 0, which needs per-resource
	// aged observations.
	SnapshotCache bool
	// PlanMemo memoizes runtime plans by (template, planner, epoch
	// vector): an admission whose book is unchanged since an identical
	// earlier admission skips instantiation and planning entirely and
	// goes straight to validate-at-commit. Requires UseRuntime. Off by
	// default for the same α-staleness reason as SnapshotCache.
	PlanMemo bool
}

// DefaultBaseScale calibrates the figure-10 requirement units against
// the 1000..4000-unit resource capacities so that the environment
// saturates across the paper's 60..240 arrival-rate sweep and the
// per-class success rates land near Table 3's (see EXPERIMENTS.md for
// the calibration notes).
const DefaultBaseScale = 1.3

// DefaultConfig returns the paper's parameters for the given algorithm,
// rate and seed.
func DefaultConfig(alg Algorithm, rate float64, seed int64) Config {
	return Config{
		Seed:               seed,
		Algorithm:          alg,
		Rate:               rate,
		Duration:           10800,
		Workload:           workload.Options{BaseScale: DefaultBaseScale},
		AlphaWindow:        broker.DefaultAlphaWindow,
		CapacityMin:        1000,
		CapacityMax:        4000,
		PopularityInterval: 1080,
		FatRatio:           2.0 / 3.0,
		FatMultipliers:     []float64{2, 10},
		LongRatio:          1.0 / 3.0,
		DurationMin:        20,
		DurationSplit:      60,
		DurationMax:        600,
		MaxAdmitRetries:    3,
		TemplateCache:      true,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch c.Algorithm {
	case AlgBasic, AlgTradeoff, AlgRandom:
	default:
		return fmt.Errorf("sim: unknown algorithm %q", c.Algorithm)
	}
	if c.Rate <= 0 {
		return fmt.Errorf("sim: rate must be positive, got %g", c.Rate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("sim: duration must be positive, got %g", float64(c.Duration))
	}
	if c.StaleE < 0 {
		return fmt.Errorf("sim: negative staleness %g", float64(c.StaleE))
	}
	if c.CapacityMin <= 0 || c.CapacityMax < c.CapacityMin {
		return fmt.Errorf("sim: invalid capacity range [%g, %g]", c.CapacityMin, c.CapacityMax)
	}
	if c.FatRatio < 0 || c.FatRatio > 1 {
		return fmt.Errorf("sim: fat ratio %g out of [0,1]", c.FatRatio)
	}
	if c.LongRatio < 0 || c.LongRatio > 1 {
		return fmt.Errorf("sim: long ratio %g out of [0,1]", c.LongRatio)
	}
	if len(c.FatMultipliers) == 0 && c.FatRatio > 0 {
		return fmt.Errorf("sim: fat sessions enabled but no multipliers")
	}
	for _, m := range c.FatMultipliers {
		if m <= 0 {
			return fmt.Errorf("sim: non-positive fat multiplier %g", m)
		}
	}
	if !(c.DurationMin > 0 && c.DurationMin <= c.DurationSplit && c.DurationSplit <= c.DurationMax) {
		return fmt.Errorf("sim: invalid duration ranges %g/%g/%g",
			float64(c.DurationMin), float64(c.DurationSplit), float64(c.DurationMax))
	}
	if c.PopularityInterval < 0 {
		return fmt.Errorf("sim: negative popularity interval")
	}
	if c.AlphaWindow <= 0 {
		return fmt.Errorf("sim: non-positive alpha window")
	}
	if _, ok := qrg.ContentionByName(c.Contention); !ok {
		return fmt.Errorf("sim: unknown contention index %q", c.Contention)
	}
	if c.UseRuntime && c.StaleE > 0 {
		return fmt.Errorf("sim: UseRuntime is incompatible with stale observations (E=%g)", float64(c.StaleE))
	}
	if c.UseRuntime && c.Contention != "" && c.Contention != "ratio" {
		return fmt.Errorf("sim: UseRuntime supports only the ratio contention index")
	}
	if c.MaxAdmitRetries < 0 {
		return fmt.Errorf("sim: negative admission retry bound %d", c.MaxAdmitRetries)
	}
	if c.TraceSample < 0 || c.TraceSample > 1 {
		return fmt.Errorf("sim: trace sample %g out of [0,1]", c.TraceSample)
	}
	if c.Faults != nil {
		if !c.UseRuntime {
			return fmt.Errorf("sim: fault injection requires the QoSProxy runtime (UseRuntime)")
		}
		if err := c.Faults.validate(); err != nil {
			return err
		}
	}
	if c.BatchAdmit < 0 {
		return fmt.Errorf("sim: negative admission batch bound %d", c.BatchAdmit)
	}
	if c.BatchAdmit > 1 && !c.UseRuntime {
		return fmt.Errorf("sim: batched admission (BatchAdmit=%d) requires the QoSProxy runtime (UseRuntime)", c.BatchAdmit)
	}
	if c.BatchWindow < 0 {
		return fmt.Errorf("sim: negative admission batch window %v", c.BatchWindow)
	}
	if c.BatchWindow > 0 && c.BatchAdmit <= 1 {
		return fmt.Errorf("sim: batch window %v without batching (BatchAdmit=%d)", c.BatchWindow, c.BatchAdmit)
	}
	if c.SnapshotCache && c.StaleE > 0 {
		return fmt.Errorf("sim: SnapshotCache is incompatible with stale observations (E=%g)", float64(c.StaleE))
	}
	if c.PlanMemo && !c.UseRuntime {
		return fmt.Errorf("sim: PlanMemo requires the QoSProxy runtime (UseRuntime)")
	}
	return nil
}
