package sim

import (
	"testing"

	"qosres/internal/obs"
	"qosres/internal/trace"
	"qosres/internal/tracetree"
)

// TestRunRecordsMetrics checks that an instrumented run populates the
// registry: session-event counters that reconcile with the metrics,
// stage-latency histograms for every planning stage, Ψ observations,
// and per-resource utilization/α gauges.
func TestRunRecordsMetrics(t *testing.T) {
	reg := obs.New()
	cfg := quickConfig(AlgTradeoff, 150)
	cfg.Obs = reg
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics

	count := func(event string) float64 {
		return reg.Counter(obs.MetricSessionEvents, "", "event", event).Value()
	}
	if got := count("arrival"); got != float64(m.Overall.Attempts) {
		t.Errorf("arrivals counter = %g, metrics attempts = %d", got, m.Overall.Attempts)
	}
	if got := count("reserved"); got != float64(m.Overall.Successes) {
		t.Errorf("reserved counter = %g, metrics successes = %d", got, m.Overall.Successes)
	}
	if got := count("plan_failed"); got != float64(m.PlanFailures) {
		t.Errorf("plan_failed counter = %g, metrics = %d", got, m.PlanFailures)
	}
	if got := count("released"); got <= 0 || got > count("reserved") {
		t.Errorf("released counter = %g out of range", got)
	}

	st := obs.NewPlanStages(reg)
	for name, h := range map[string]*obs.Histogram{
		"snapshot": st.Snapshot, "qrg_build": st.Build,
		"plan": st.Plan, "reserve": st.Reserve,
	} {
		if h.Count() == 0 {
			t.Errorf("stage %s recorded no observations", name)
		}
		if p99 := h.Quantile(0.99); p99 <= 0 {
			t.Errorf("stage %s p99 = %g", name, p99)
		}
	}

	if psi := reg.Histogram(obs.MetricPlanPsi, "", nil); psi.Count() != uint64(m.Overall.Successes) {
		t.Errorf("psi observations = %d, successes = %d", psi.Count(), m.Overall.Successes)
	}

	snap := reg.Snapshot()
	var utils, alphas int
	for _, g := range snap.Gauges {
		switch g.Name {
		case obs.MetricUtilization:
			utils++
			if g.Value < 0 || g.Value > 1 {
				t.Errorf("utilization %s = %g out of [0,1]", g.Labels["resource"], g.Value)
			}
		case obs.MetricAlpha:
			alphas++
		}
	}
	if utils == 0 || alphas == 0 {
		t.Fatalf("gauges missing: %d utilization, %d alpha", utils, alphas)
	}
}

// TestRuntimeModeRecordsStages checks that runtime-mode runs record the
// same stage vocabulary through the three-phase protocol, plus the
// end-to-end establish stage.
func TestRuntimeModeRecordsStages(t *testing.T) {
	reg := obs.New()
	cfg := quickConfig(AlgBasic, 120)
	cfg.UseRuntime = true
	cfg.Obs = reg
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	st := obs.NewPlanStages(reg)
	for name, h := range map[string]*obs.Histogram{
		"snapshot": st.Snapshot, "qrg_build": st.Build, "plan": st.Plan,
		"reserve": st.Reserve, "establish": st.Establish,
	} {
		if h.Count() == 0 {
			t.Errorf("runtime mode: stage %s recorded no observations", name)
		}
	}
}

// TestObsDoesNotPerturbResults is the guard that instrumentation is
// observation-only: an instrumented run and a bare run of the same
// config produce identical metrics.
func TestObsDoesNotPerturbResults(t *testing.T) {
	bare, err := Run(quickConfig(AlgTradeoff, 150))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig(AlgTradeoff, 150)
	cfg.Obs = obs.New()
	cfg.TraceSpans = true
	cfg.Tracer = trace.NewCounter()
	instrumented, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Metrics.Overall != instrumented.Metrics.Overall {
		t.Fatalf("instrumentation changed results: %+v vs %+v",
			bare.Metrics.Overall, instrumented.Metrics.Overall)
	}
}

// TestRuntimeTraceParity asserts that a UseRuntime run emits the same
// event-kind tallies per session stream as the direct path, via
// trace.Counter.Counts.
func TestRuntimeTraceParity(t *testing.T) {
	for _, alg := range []Algorithm{AlgBasic, AlgTradeoff, AlgRandom} {
		direct := quickConfig(alg, 150)
		dc := trace.NewCounter()
		direct.Tracer = dc

		viaRuntime := quickConfig(alg, 150)
		viaRuntime.UseRuntime = true
		rc := trace.NewCounter()
		viaRuntime.Tracer = rc

		if _, err := Run(direct); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(viaRuntime); err != nil {
			t.Fatal(err)
		}
		dCounts, rCounts := dc.Counts(), rc.Counts()
		if len(dCounts) == 0 || dCounts[trace.Arrival] == 0 {
			t.Fatalf("%s: direct run traced nothing: %v", alg, dCounts)
		}
		for _, k := range trace.Kinds() {
			if dCounts[k] != rCounts[k] {
				t.Errorf("%s: kind %s: direct %d events, runtime %d",
					alg, k, dCounts[k], rCounts[k])
			}
		}
	}
}

// TestTraceSpansEmitted checks the opt-in Span event stream: spans
// carry a stage name and a positive duration, and stay absent by
// default.
func TestTraceSpansEmitted(t *testing.T) {
	cfg := quickConfig(AlgBasic, 120)
	cfg.Duration = 300
	ring := trace.NewRing(4096)
	cfg.Tracer = ring
	cfg.TraceSpans = true
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	stages := map[string]int{}
	for _, ev := range ring.Events() {
		if ev.Kind != trace.Span {
			continue
		}
		if ev.Stage == "" || ev.Duration < 0 {
			t.Fatalf("malformed span event %+v", ev)
		}
		stages[ev.Stage]++
	}
	for _, want := range []string{"snapshot", "qrg_build", "plan"} {
		if stages[want] == 0 {
			t.Errorf("no span events for stage %s (got %v)", want, stages)
		}
	}

	// Default: no span events.
	cfg2 := quickConfig(AlgBasic, 120)
	cfg2.Duration = 300
	c := trace.NewCounter()
	cfg2.Tracer = c
	if _, err := Run(cfg2); err != nil {
		t.Fatal(err)
	}
	if c.Count(trace.Span) != 0 {
		t.Fatalf("span events emitted without TraceSpans: %d", c.Count(trace.Span))
	}
}

// TestRuntimeSpanTreeParity extends trace parity to the distributed
// span trees: a direct run and a UseRuntime run, both with full trace
// sampling, must reconstruct complete forests whose admission roots
// carry the same statuses over the same stage-child sequences. The
// runtime's trees additionally contain fabric call spans and remote
// participant spans nested under the stages — the comparison therefore
// covers root status plus the ordered stage children, the shared
// vocabulary of both execution modes.
func TestRuntimeSpanTreeParity(t *testing.T) {
	signatures := func(useRuntime bool) map[string]int {
		t.Helper()
		cfg := quickConfig(AlgBasic, 150)
		cfg.Duration = 600
		cfg.UseRuntime = useRuntime
		cfg.TraceSample = 1
		col := &tracetree.Collector{}
		cfg.Tracer = col
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		forest := tracetree.FromEvents(col.Events())
		if !forest.Complete() {
			t.Fatalf("useRuntime=%v: incomplete forest: %d orphan spans, %d rootless, %d multi-root",
				useRuntime, forest.OrphanSpans, forest.Rootless, forest.MultiRoot)
		}
		stageNames := map[string]bool{
			obs.StageSnapshot: true, obs.StageBuild: true,
			obs.StagePlan: true, obs.StageReserve: true,
		}
		sigs := map[string]int{}
		for _, tree := range forest.Trees {
			if tree.Root == nil || tree.Root.Name != obs.StageEstablish {
				continue
			}
			sig := tree.Root.Status
			for _, c := range tree.Root.Children {
				if stageNames[c.Name] {
					sig += "|" + c.Name
				}
			}
			sigs[sig]++
		}
		return sigs
	}

	direct := signatures(false)
	runtime := signatures(true)
	if len(direct) == 0 {
		t.Fatal("direct run produced no admission traces")
	}
	for sig, n := range direct {
		if runtime[sig] != n {
			t.Errorf("signature %q: direct %d trace(s), runtime %d", sig, n, runtime[sig])
		}
	}
	for sig, n := range runtime {
		if _, ok := direct[sig]; !ok {
			t.Errorf("signature %q: runtime-only (%d trace(s))", sig, n)
		}
	}
}
