package sim

import (
	"container/heap"

	"qosres/internal/broker"
	"qosres/internal/proxy"
)

// eventKind discriminates scheduler events.
type eventKind int

const (
	evArrival eventKind = iota
	evRelease
	evPopularity
)

// event is one scheduled simulation event. Ties on time break by
// sequence number, keeping runs fully deterministic.
type event struct {
	at   broker.Time
	seq  uint64
	kind eventKind
	// session payload for evRelease.
	release *liveSession
}

// liveSession is a successfully reserved session awaiting completion.
// Exactly one of reservation (direct mode) and proxySession (runtime
// mode) is set.
type liveSession struct {
	id      uint64
	service string
	class   string
	// resources are the session's concrete resource IDs, kept for
	// post-release utilization gauge refreshes.
	resources    []string
	reservation  *broker.MultiReservation
	proxySession *proxy.Session
}

// release returns the session's resources whichever mode created it.
func (s *liveSession) release(now broker.Time) error {
	if s.proxySession != nil {
		return s.proxySession.Release()
	}
	return s.reservation.Release(now)
}

type eventQueue struct {
	items []event
}

func (q *eventQueue) Len() int { return len(q.items) }
func (q *eventQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
func (q *eventQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *eventQueue) Push(x interface{}) {
	q.items = append(q.items, x.(event))
}
func (q *eventQueue) Pop() interface{} {
	old := q.items
	n := len(old)
	it := old[n-1]
	q.items = old[:n-1]
	return it
}

// scheduler is a deterministic discrete-event loop.
type scheduler struct {
	q   eventQueue
	seq uint64
	now broker.Time
}

func newScheduler() *scheduler {
	s := &scheduler{}
	heap.Init(&s.q)
	return s
}

// at schedules an event at time t.
func (s *scheduler) at(t broker.Time, kind eventKind, release *liveSession) {
	s.seq++
	heap.Push(&s.q, event{at: t, seq: s.seq, kind: kind, release: release})
}

// next pops the earliest event and advances the clock.
func (s *scheduler) next() (event, bool) {
	if s.q.Len() == 0 {
		return event{}, false
	}
	ev := heap.Pop(&s.q).(event)
	s.now = ev.at
	return ev, true
}
