package sim

import (
	"fmt"
	"testing"
)

// BenchmarkAdmitThroughput measures establish+release throughput
// through the runtime's three-phase protocol: serialized commits
// versus the group-commit batching front end, across client
// concurrency. The sessions/s metric is the headline number; the same
// sweep backs the BENCH_admit.json CI artifact (cmd/experiments
// -run admitbench).
func BenchmarkAdmitThroughput(b *testing.B) {
	modes := []struct {
		name  string
		batch int
	}{
		{"serialized", 0},
		{"batched", 16},
	}
	for _, m := range modes {
		for _, g := range []int{1, 4, 16, 32} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", m.name, g), func(b *testing.B) {
				res, err := RunAdmitThroughput(AdmitBenchConfig{
					Seed:       1,
					Goroutines: g,
					Sessions:   b.N,
					BatchAdmit: m.batch,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.SessionsPerSec, "sessions/s")
			})
		}
	}
}

// TestAdmitThroughputHarness pins the harness contract both modes of
// the benchmark rely on: every session establishes (generous books),
// nothing leaks, and the throughput number is populated.
func TestAdmitThroughputHarness(t *testing.T) {
	for _, batch := range []int{0, 8} {
		res, err := RunAdmitThroughput(AdmitBenchConfig{
			Seed: 3, Goroutines: 4, Sessions: 64, BatchAdmit: batch,
		})
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if res.Established != 64 {
			t.Fatalf("batch=%d: established %d of 64", batch, res.Established)
		}
		if res.SessionsPerSec <= 0 {
			t.Fatalf("batch=%d: no throughput measured", batch)
		}
	}
	if _, err := RunAdmitThroughput(AdmitBenchConfig{Goroutines: 0, Sessions: 1}); err == nil {
		t.Fatal("zero goroutines accepted")
	}
}
