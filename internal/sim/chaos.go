package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"qosres/internal/adapt"
	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/fault"
	"qosres/internal/obs"
	"qosres/internal/proxy"
	"qosres/internal/topo"
	"qosres/internal/trace"
	"qosres/internal/tracetree"
	"qosres/internal/transport"
)

// This file is the chaos harness: the concurrent admission stress of
// stress.go with a seeded fault-injection walk running against the
// environment while the clients churn. Every injected fault triggers the
// runtime's session-repair protocol, every session's holds are leased,
// and a lease sweep reclaims whatever silent (orphaned) sessions strand.
// On top of the stress harness's two admission-safety invariants the
// chaos run checks the failure-mode ones:
//
//  1. no broker's reserved total ever exceeds its ORIGINAL capacity —
//     capacity shrinks may push availability negative (holds are never
//     evicted), but admission must never commit into the overhang;
//  2. after the clients drain, faults recover, and the final lease sweep
//     runs, every broker is back to its exact original shape with zero
//     live holds — orphaned sessions included;
//  3. every session ends accounted for: released by its client, repaired
//     or degraded in place, terminated by a failed repair, or reclaimed
//     by lease expiry. No zombie stays registered with the runtime.

// FaultsConfig parameterizes chaos mode (Config.Faults, simqos -chaos).
type FaultsConfig struct {
	// Seed drives the fault walk; 0 derives it from the run seed.
	Seed int64
	// Steps bounds the number of injection steps. The driver paces itself
	// against client progress, so a run whose clients finish early stops
	// injecting early too.
	Steps int
	// StepEvery is the simulated-clock advance per injection step (TUs).
	StepEvery broker.Time
	// LeaseTTL leases every session's holds: they expire this many TUs
	// after the last heartbeat and are reclaimed by the harness's sweep.
	// 0 disables leasing (then OrphanRate must be 0 — an orphan's holds
	// could never be reclaimed).
	LeaseTTL broker.Time
	// OrphanRate is the probability that a client abandons an established
	// session without releasing it, simulating a crashed session owner;
	// only the lease sweep can reclaim its capacity.
	OrphanRate float64
	// Random parameterizes the seeded fault walk (including the
	// partition/heal probabilities of transport chaos).
	Random fault.RandomConfig
	// Transport, when non-nil, rebases the run on an unreliable transport
	// fabric: protocol messages are delayed, lost, and duplicated per its
	// probabilities, routes can be partitioned (Random.PartitionProb), and
	// every Establish and repair sweep is bounded by Deadline. Requires
	// LeaseTTL > 0 when any unreliability is configured — a lost abort or
	// commit can strand prepared holds that only the sweep reclaims.
	Transport *TransportConfig
	// WALDir write-ahead-logs every 2PC transition into segment files
	// under this directory, arming crash/restart injection
	// (Random.CrashProb). Empty with CrashProb > 0 makes RunChaos journal
	// into a per-run temporary directory, removed when the run returns.
	WALDir string
	// RecoverWAL replays an existing WAL in WALDir into the freshly built
	// runtime before it starts: books, lease expiries and decided
	// outcomes are reconstructed, and leases that lapsed while down are
	// swept once. This is how a serving deployment (cmd/qosserved)
	// survives a restart; it requires WALDir.
	RecoverWAL bool
	// Adapt, when non-nil, runs the mid-session adaptation controller
	// (package adapt) concurrently with the faults: one controller tick
	// per injection step, brownout downgrades above the high watermark,
	// upgrades below the low one. The harness then also checks the two
	// adaptation invariants — every live session's booked holds match its
	// recorded level exactly, and no downgrade lands below the policy's
	// rank floor.
	Adapt *adapt.Policy
}

// TransportConfig parameterizes unreliable-messaging chaos
// (FaultsConfig.Transport, simqos -partition/-loss).
type TransportConfig struct {
	// Seed drives the loss/duplication rolls; 0 derives it from the run
	// seed.
	Seed int64
	// Loss and Dup are the per-delivery probabilities, on every route,
	// that a protocol message (or its reply) is dropped or delivered
	// twice.
	Loss, Dup float64
	// Latency is the one-way wall-clock delivery delay of every message.
	Latency time.Duration
	// Deadline bounds every Establish call and every fault-triggered
	// repair sweep; 0 uses DefaultChaosDeadline. The harness asserts that
	// no call overruns it (plus scheduling grace) — a lost message must
	// degrade or abort the protocol, never hang it.
	Deadline time.Duration
	// MaxInFlight bounds concurrent admissions at the runtime; calls
	// beyond it are shed with transport.ErrOverloaded. 0 means unbounded.
	MaxInFlight int
	// BreakerThreshold arms a per-route circuit breaker opening after
	// this many consecutive delivery failures; 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the breaker's open → half-open cooldown.
	BreakerCooldown time.Duration
}

// DefaultChaosDeadline bounds Establish and repair sweeps when
// TransportConfig.Deadline is zero.
const DefaultChaosDeadline = 250 * time.Millisecond

// DefaultTransportConfig is the acceptance-grade unreliable transport:
// 10% loss, 5% duplication, a small delivery delay, a breaker, and a
// bounded admission gate.
func DefaultTransportConfig() *TransportConfig {
	return &TransportConfig{
		Loss:             0.10,
		Dup:              0.05,
		Latency:          time.Millisecond,
		Deadline:         DefaultChaosDeadline,
		MaxInFlight:      0,
		BreakerThreshold: 5,
		BreakerCooldown:  100 * time.Millisecond,
	}
}

// DefaultFaultsConfig is a moderately hostile chaos mode: a fault most
// steps, a couple of concurrent outages at most, one session in ten
// orphaned, leases an order of magnitude longer than a step.
func DefaultFaultsConfig() *FaultsConfig {
	return &FaultsConfig{
		Steps:      60,
		StepEvery:  1,
		LeaseTTL:   10,
		OrphanRate: 0.1,
		Random:     fault.DefaultRandomConfig(),
	}
}

// validate checks the chaos parameters (called from Config.Validate).
func (fc *FaultsConfig) validate() error {
	if fc.Steps < 1 {
		return fmt.Errorf("sim: chaos needs at least one injection step, got %d", fc.Steps)
	}
	if fc.StepEvery <= 0 {
		return fmt.Errorf("sim: non-positive chaos step interval %g", float64(fc.StepEvery))
	}
	if fc.LeaseTTL < 0 {
		return fmt.Errorf("sim: negative lease TTL %g", float64(fc.LeaseTTL))
	}
	if fc.OrphanRate < 0 || fc.OrphanRate > 1 {
		return fmt.Errorf("sim: orphan rate %g out of [0,1]", fc.OrphanRate)
	}
	if fc.OrphanRate > 0 && fc.LeaseTTL <= 0 {
		return fmt.Errorf("sim: orphaned sessions need a lease TTL to be reclaimed")
	}
	if tc := fc.Transport; tc != nil {
		if tc.Loss < 0 || tc.Loss > 1 {
			return fmt.Errorf("sim: transport loss %g out of [0,1]", tc.Loss)
		}
		if tc.Dup < 0 || tc.Dup > 1 {
			return fmt.Errorf("sim: transport duplication %g out of [0,1]", tc.Dup)
		}
		if tc.Latency < 0 {
			return fmt.Errorf("sim: negative transport latency %v", tc.Latency)
		}
		if tc.Deadline < 0 {
			return fmt.Errorf("sim: negative transport deadline %v", tc.Deadline)
		}
		if tc.MaxInFlight < 0 {
			return fmt.Errorf("sim: negative in-flight bound %d", tc.MaxInFlight)
		}
		if tc.BreakerThreshold < 0 || tc.BreakerCooldown < 0 {
			return fmt.Errorf("sim: invalid breaker config %d/%v", tc.BreakerThreshold, tc.BreakerCooldown)
		}
		lossy := tc.Loss > 0 || tc.Dup > 0 || fc.Random.PartitionProb > 0
		if lossy && fc.LeaseTTL <= 0 {
			return fmt.Errorf("sim: lossy transport needs a lease TTL — a lost abort or commit strands prepared holds that only the sweep can reclaim")
		}
	} else if fc.Random.PartitionProb > 0 || fc.Random.HealProb > 0 {
		return fmt.Errorf("sim: partition probabilities need transport chaos (FaultsConfig.Transport)")
	}
	if fc.Random.CrashProb < 0 || fc.Random.CrashProb > 1 {
		return fmt.Errorf("sim: crash probability %g out of [0,1]", fc.Random.CrashProb)
	}
	if fc.Random.CrashProb > 0 && fc.LeaseTTL <= 0 {
		return fmt.Errorf("sim: crash/restart injection needs a lease TTL — a release or abort that races the amnesia window strands holds that only the sweep can reclaim")
	}
	if fc.RecoverWAL && fc.WALDir == "" {
		return fmt.Errorf("sim: RecoverWAL needs a WAL directory to replay")
	}
	if ap := fc.Adapt; ap != nil {
		if ap.HighWater < 0 || ap.HighWater > 1 || ap.LowWater < 0 || ap.LowWater > 1 {
			return fmt.Errorf("sim: adaptation watermarks %g/%g out of [0,1]", ap.LowWater, ap.HighWater)
		}
		if ap.Cooldown < 0 {
			return fmt.Errorf("sim: negative adaptation cooldown %g", float64(ap.Cooldown))
		}
	}
	if fc.Random.SurgeProb < 0 || fc.Random.SurgeProb > 1 {
		return fmt.Errorf("sim: surge probability %g out of [0,1]", fc.Random.SurgeProb)
	}
	return nil
}

// ChaosResult summarizes one RunChaos call. Established + PlanInfeasible
// + AdmitRefused equals Sessions × Iterations; Orphaned and Lost are
// subsets of Established.
type ChaosResult struct {
	// Established, PlanInfeasible, AdmitRefused partition the admission
	// attempts as in StressResult.
	Established    int
	PlanInfeasible int
	AdmitRefused   int
	// Orphaned counts established sessions abandoned without release;
	// their holds were reclaimed by the lease sweep.
	Orphaned int
	// Lost counts held sessions whose clients learned via heartbeat that
	// a failed repair or a lease sweep had terminated them.
	Lost int
	// Injected counts applied fault events (all kinds, recoveries
	// included).
	Injected int
	// Affected, Repaired, Degraded, RepairFailed tally the repair sweeps
	// the injected faults triggered (Repaired + Degraded + RepairFailed
	// == Affected).
	Affected, Repaired, Degraded, RepairFailed int
	// LeasesExpired counts the holds reclaimed by the lease sweeps,
	// including the final drain sweep.
	LeasesExpired int
	// Shed counts admission attempts refused immediately by the overload
	// gate (transport.ErrOverloaded); TimedOut counts attempts abandoned
	// at their deadline or failed fast by an open circuit breaker. Both
	// are transport-chaos outcomes and join the attempt partition.
	Shed     int
	TimedOut int
	// Abandoned counts sessions repair sweeps skipped because the sweep's
	// deadline expired first.
	Abandoned int
	// Crashed counts applied crash/restart cycles (Random.CrashProb):
	// each one killed a host's proxy, wiped its in-memory book, and
	// recovered it from the write-ahead log. CrashAborted counts
	// admission attempts those crashes cut mid-protocol — the 2PC
	// aborted cleanly (nothing half-committed) and the attempt joins the
	// partition alongside TimedOut.
	Crashed      int
	CrashAborted int
	// Upgrades and Downgrades tally the successful mid-session
	// renegotiations the adaptation controller drove (FaultsConfig.Adapt);
	// AdaptHeld counts controller ticks absorbed by the hysteresis band,
	// FlapsSuppressed the renegotiations the cooldown or the tick budget
	// refused.
	Upgrades, Downgrades       int
	AdaptHeld, FlapsSuppressed int
	// QoSSeconds is the run's delivered QoS-seconds: the integral of
	// end-to-end rank over each session's held time, the headline metric
	// adaptation trades in. Accrued whether or not a controller runs.
	QoSSeconds float64
}

// String renders the result as a summary: two lines, plus a transport
// line when unreliable messaging produced any outcome of its own.
func (r *ChaosResult) String() string {
	s := fmt.Sprintf("established %d, plan-infeasible %d, admit-refused %d (orphaned %d, lost %d)\n"+
		"faults injected %d; sessions affected %d: repaired %d, degraded %d, failed %d; leases expired %d",
		r.Established, r.PlanInfeasible, r.AdmitRefused, r.Orphaned, r.Lost,
		r.Injected, r.Affected, r.Repaired, r.Degraded, r.RepairFailed, r.LeasesExpired)
	if r.Shed+r.TimedOut+r.Abandoned > 0 {
		s += fmt.Sprintf("\ntransport: shed %d, timed out %d, repairs abandoned %d",
			r.Shed, r.TimedOut, r.Abandoned)
	}
	if r.Crashed+r.CrashAborted > 0 {
		s += fmt.Sprintf("\ncrash/restart cycles %d, admissions crash-aborted %d",
			r.Crashed, r.CrashAborted)
	}
	if r.Upgrades+r.Downgrades+r.AdaptHeld+r.FlapsSuppressed > 0 {
		s += fmt.Sprintf("\nadaptation: upgraded %d, downgraded %d, held %d tick(s), flaps suppressed %d",
			r.Upgrades, r.Downgrades, r.AdaptHeld, r.FlapsSuppressed)
	}
	s += fmt.Sprintf("\ndelivered QoS-seconds %.1f", r.QoSSeconds)
	return s
}

// RunChaos drives the concurrent stress harness with fault injection,
// session repair, and reservation leasing, and verifies the chaos
// invariants. sc.Config.Faults selects the chaos parameters (nil uses
// DefaultFaultsConfig); UseRuntime is implied.
func RunChaos(sc StressConfig) (*ChaosResult, error) {
	cfg := sc.Config
	cfg.UseRuntime = true
	if cfg.Faults == nil {
		cfg.Faults = DefaultFaultsConfig()
	}
	fc := cfg.Faults
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sc.Sessions < 1 || sc.Iterations < 1 {
		return nil, fmt.Errorf("sim: chaos needs at least one session and one iteration, got %d×%d",
			sc.Sessions, sc.Iterations)
	}
	crashOn := fc.Random.CrashProb > 0
	if crashOn && fc.WALDir == "" {
		// Crash cycles replay from the WAL; without a caller-provided
		// directory the journal lives (and dies) with the run.
		dir, err := os.MkdirTemp("", "qosres-chaos-wal-")
		if err != nil {
			return nil, fmt.Errorf("sim: chaos WAL dir: %w", err)
		}
		defer os.RemoveAll(dir)
		fc.WALDir = dir
		defer func() { fc.WALDir = "" }()
	}

	rng := rand.New(rand.NewSource(sc.Seed))
	env, err := buildEnvironment(cfg, rng)
	if err != nil {
		return nil, err
	}
	planner, err := makePlanner(cfg, rng)
	if err != nil {
		return nil, err
	}
	// Chaos always traces at sample 1.0: the trace-completeness invariant
	// below needs every admission's and every repair sweep's span tree.
	// The collector feeds the invariant; when the run also writes a JSONL
	// trace (cfg.Tracer), the same spans tee into it for offline
	// critical-path analysis (cmd/qostrace).
	collector := &tracetree.Collector{}
	var spanOut trace.Tracer = collector
	if cfg.Tracer != nil {
		spanOut = trace.Tee(collector, cfg.Tracer)
	}
	env.tracerec = obs.NewTraceRecorder(cfg.Obs, obs.TraceOptions{
		Sample:       1,
		RescueErrors: true,
		Seed:         sc.Seed + 6700417,
		Sink:         tracetree.NewSink(spanOut),
	})
	clock := &proxy.ManualClock{}
	rt, err := env.buildRuntime(cfg, clock)
	if err != nil {
		return nil, err
	}
	defer rt.Stop()

	var (
		mu       sync.Mutex
		result   ChaosResult
		orphans  []*proxy.Session
		failures []string
	)
	fail := func(format string, args ...interface{}) {
		mu.Lock()
		if len(failures) < 8 { // keep the report readable
			failures = append(failures, fmt.Sprintf(format, args...))
		}
		mu.Unlock()
	}
	locals := env.pool.LocalBrokers()

	// Transport chaos: with fc.Transport set, buildRuntime rebased the
	// protocol on an unreliable fabric; every Establish and every repair
	// sweep is then bounded by the configured deadline, and the harness
	// asserts nothing overruns it (plus generous scheduling grace — the
	// assertion catches hangs, not slow scheduling).
	transportOn := fc.Transport != nil
	deadline := DefaultChaosDeadline
	if transportOn && fc.Transport.Deadline > 0 {
		deadline = fc.Transport.Deadline
	}
	const deadlineGrace = 2 * time.Second
	bound := func() (context.Context, context.CancelFunc) {
		if !transportOn {
			return context.Background(), func() {}
		}
		return context.WithTimeout(context.Background(), deadline)
	}

	// The injector drives broker failures and capacity shrinks; every
	// down/shrink event is forwarded to the runtime's repair layer, which
	// walks the live sessions holding the affected resources. Network
	// events (partition/heal/delay) invalidate no committed holds — their
	// synthetic route: resources match no reservation — so they skip the
	// sweep.
	inj := fault.New(env.pool, env.topology)
	inj.Instrument(env.ins.faults)
	inj.SetTransport(rt.Transport())
	if crashOn {
		inj.SetRestarter(rt)
	}
	inj.OnFault(func(ev fault.Event) {
		mu.Lock()
		result.Injected++
		if ev.Kind == fault.KindCrashRestart {
			result.Crashed++
		}
		mu.Unlock()
		switch ev.Kind {
		case fault.KindRecover, fault.KindCapacityRestore,
			fault.KindPartition, fault.KindHeal, fault.KindDelayRoute,
			fault.KindCrashRestart, fault.KindSurge, fault.KindSurgeEnd:
			// Crash/restart needs no repair sweep: recovery replayed the
			// book, and every committed hold it restored is intact. Surges
			// invalidate nothing either — they are external contention for
			// the adaptation controller, not the repair layer.
			return
		}
		ctx, cancel := bound()
		t0 := time.Now()
		rep := rt.RepairAffectedContext(ctx, ev.Resources)
		elapsed := time.Since(t0)
		cancel()
		if transportOn && elapsed > deadline+deadlineGrace {
			fail("repair sweep overran its deadline: %v > %v", elapsed, deadline)
		}
		mu.Lock()
		result.Affected += rep.Affected
		result.Repaired += rep.Repaired
		result.Degraded += rep.Degraded
		result.RepairFailed += rep.Failed
		result.Abandoned += rep.Abandoned
		mu.Unlock()
	})
	sweep := func(now broker.Time) {
		if fc.LeaseTTL <= 0 {
			return
		}
		if n := env.pool.ExpireLeases(now); n > 0 {
			mu.Lock()
			result.LeasesExpired += n
			mu.Unlock()
			env.ins.faults.LeasesExpired.Add(float64(n))
		}
	}

	// Mid-session adaptation (fc.Adapt): one controller tick per driver
	// step, sharing the driver's pacing so renegotiations race live
	// admissions, faults, partitions, and crash cycles exactly as they
	// would in a deployment. The counters are read back into the result,
	// so they are backed by a private registry when the run records no
	// metrics of its own.
	var ctrl *adapt.Controller
	adaptMetrics := env.ins.adapt
	if fc.Adapt != nil {
		if !env.ins.enabled() {
			adaptMetrics = obs.NewAdaptMetrics(obs.New())
		}
		brokers := make([]broker.Broker, 0, len(locals))
		for _, b := range locals {
			brokers = append(brokers, b)
		}
		ctrl = adapt.New(rt, *fc.Adapt, brokers)
		ctrl.Instrument(adaptMetrics)
	}
	// audit checks adaptation invariant 5 — every live session's booked
	// holds match its recorded level's requirement exactly — while
	// admissions, faults, and renegotiations are all in flight.
	audit := func(when string) {
		for _, msg := range rt.AuditSessions(overcommitTolerance) {
			fail("session audit (%s): %s", when, msg)
		}
	}

	// The driver paces the run: each step it advances the simulated
	// clock, takes one fault-walk step, sweeps expired leases, and then
	// releases one tick per client. The tick channel's capacity is one
	// round, so the driver cannot race ahead of the clients — faults land
	// while sessions are actually live.
	fseed := fc.Seed
	if fseed == 0 {
		fseed = sc.Seed + 104729
	}
	frng := rand.New(rand.NewSource(fseed))
	ticks := make(chan struct{}, sc.Sessions)
	stop := make(chan struct{})
	var driverWG sync.WaitGroup
	driverWG.Add(1)
	go func() {
		defer driverWG.Done()
		defer close(ticks)
		hosts := env.topology.Hosts()
		crashedMid := false
		for i := 0; i < fc.Steps; i++ {
			clock.Advance(fc.StepEvery)
			now := clock.Now()
			inj.RandomStep(now, frng, fc.Random)
			mu.Lock()
			cold := result.Injected == 0
			mu.Unlock()
			if i == 1 && cold {
				// Guarantee the run exercises the failure path even when
				// the walk's dice stay cold: fail one deterministic
				// resource (the walk may recover it later).
				_ = inj.FailResource(now, locals[0].Resource())
			}
			if crashOn && i == 2 {
				// Guarantee an early crash/restart cycle per run whatever
				// the walk's dice do, aimed at a server host whose proxy
				// actually journals 2PC transitions, while admissions are
				// still in flight around it.
				_ = inj.CrashRestart(now, topo.ServerHost(1+i%topo.NumServers))
			}
			if crashOn && !crashedMid {
				// And one more once half the admission attempts have
				// landed, so every run replays a log with real history —
				// the clients may outpace the step counter, so this is
				// paced by their progress, not by i.
				mu.Lock()
				attempts := result.Established + result.PlanInfeasible +
					result.AdmitRefused + result.Shed + result.TimedOut + result.CrashAborted
				mu.Unlock()
				if attempts >= sc.Sessions*sc.Iterations/2 {
					crashedMid = true
					_ = inj.CrashRestart(now, topo.ServerHost(1))
				}
			}
			if transportOn && len(hosts) >= 2 {
				// Guarantee at least one full partition/heal cycle per run,
				// whatever the walk's dice do: cut one route early, heal
				// every remaining cut at the midpoint so the second half
				// also measures the healed protocol.
				if i == 1 {
					_ = inj.PartitionLink(hosts[0], hosts[1])
				}
				if i == fc.Steps/2 {
					for _, p := range inj.Partitioned() {
						_ = inj.HealLink(p[0], p[1])
					}
				}
			}
			sweep(now)
			if ctrl != nil {
				// One deadline bounds the whole tick, like a repair sweep: a
				// renegotiation stalled by lost messages must abort back to
				// the old level, never hang the driver.
				tctx, tcancel := bound()
				actions := ctrl.Tick(tctx, now)
				tcancel()
				for _, a := range actions {
					if a.Err != nil {
						// A refused renegotiation (contention, a mid-flight
						// fault) leaves the session at its old level; the
						// audit below verifies exactly that.
						continue
					}
					mu.Lock()
					if a.ToRank > a.FromRank {
						result.Upgrades++
					} else {
						result.Downgrades++
					}
					mu.Unlock()
					// Adaptation invariant 6: never below the policy floor.
					if a.ToRank < a.FromRank && a.ToRank < ctrl.Policy().FloorRank {
						fail("adaptation downgraded below the rank floor: %d -> %d", a.FromRank, a.ToRank)
					}
				}
			}
			audit(fmt.Sprintf("step %d", i))
			for c := 0; c < sc.Sessions; c++ {
				select {
				case ticks <- struct{}{}:
				case <-stop:
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < sc.Sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			crng := rand.New(rand.NewSource(sc.Seed + 7919*int64(g) + 1))
			var held []*proxy.Session
			release := func(s *proxy.Session) {
				if err := s.Release(); err != nil {
					if crashOn {
						// The release raced a crash's amnesia window: the book
						// was mid-wipe or the WAL already replayed the holds
						// back. Drop the session — its restored holds are
						// leased, and with no further heartbeats the sweep
						// reclaims them.
						mu.Lock()
						result.Lost++
						mu.Unlock()
						return
					}
					fail("client %d: release: %v", g, err)
				}
			}
			// heartbeat renews the held sessions' leases; a session a
			// failed repair or a lease sweep already terminated is dropped.
			heartbeat := func() {
				live := held[:0]
				for _, s := range held {
					switch err := s.Heartbeat(); {
					case err == nil:
						live = append(live, s)
					case errors.Is(err, proxy.ErrSessionLost):
						mu.Lock()
						result.Lost++
						mu.Unlock()
					case crashOn:
						// A heartbeat that raced a restart's amnesia window is
						// indistinguishable from a lost session; treat it as
						// one and let the sweep reclaim the replayed holds.
						mu.Lock()
						result.Lost++
						mu.Unlock()
					default:
						fail("client %d: heartbeat: %v", g, err)
					}
				}
				held = live
			}
			for it := 0; it < sc.Iterations; it++ {
				<-ticks // paced by the driver (free-running once it stops)
				heartbeat()
				sh := env.drawSession(cfg, crng)
				service := env.services[sh.service-1][sh.variant]
				binding, _ := sessionResources(sh)
				ctx, cancel := bound()
				t0 := time.Now()
				s, err := rt.EstablishContext(ctx, topo.ServerHost(sh.service), proxy.SessionSpec{
					Service: service, Binding: binding, Planner: planner,
				})
				elapsed := time.Since(t0)
				cancel()
				if transportOn && elapsed > deadline+deadlineGrace {
					fail("client %d: establish overran its deadline: %v > %v", g, elapsed, deadline)
				}
				switch {
				case err == nil:
					mu.Lock()
					result.Established++
					mu.Unlock()
					if crng.Float64() < fc.OrphanRate {
						// The session's owner "crashes": no release, no
						// further heartbeats. Only the lease sweep can
						// reclaim the holds.
						mu.Lock()
						result.Orphaned++
						orphans = append(orphans, s)
						mu.Unlock()
					} else {
						held = append(held, s)
						if len(held) > 2 {
							release(held[0])
							held = held[1:]
						}
					}
				case errors.Is(err, core.ErrInfeasible):
					mu.Lock()
					result.PlanInfeasible++
					mu.Unlock()
				case errors.Is(err, broker.ErrInsufficient):
					mu.Lock()
					result.AdmitRefused++
					mu.Unlock()
				case errors.Is(err, transport.ErrOverloaded):
					// The overload gate shed the attempt before any work.
					mu.Lock()
					result.Shed++
					mu.Unlock()
				case crashOn && (errors.Is(err, transport.ErrClosed) ||
					errors.Is(err, proxy.ErrAborted)):
					// A crash/restart cut the protocol mid-flight: either a
					// participant dropped off the fabric (its endpoint closed
					// under the call) or recovery's presumed-abort beat the
					// coordinator's commit. The 2PC aborted cleanly.
					mu.Lock()
					result.CrashAborted++
					mu.Unlock()
				case errors.Is(err, context.DeadlineExceeded),
					errors.Is(err, transport.ErrCircuitOpen):
					// Lost messages burned the deadline, or a breaker failed
					// the route fast — either way the protocol aborted
					// cleanly instead of hanging.
					mu.Lock()
					result.TimedOut++
					mu.Unlock()
				default:
					fail("client %d: establish: %v", g, err)
				}
				// Invariant 1, checked while faults are live: the reserved
				// total never exceeds the resource's ORIGINAL capacity.
				// (Available() may legitimately be negative after a shrink;
				// comparing against the pre-chaos capacity is what catches a
				// genuine over-commit.)
				for _, b := range locals {
					if r := b.Reserved(); r > env.capacities[b.Resource()]+overcommitTolerance {
						fail("client %d: broker %s over-committed: reserved %g of original %g",
							g, b.Resource(), r, env.capacities[b.Resource()])
					}
				}
			}
			heartbeat()
			for _, s := range held {
				release(s)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	driverWG.Wait()

	// End of chaos: let every delayed or duplicated delivery still inside
	// the fabric land before measuring anything — a delayed prepare can
	// legitimately create leased holds after its coordinator gave up, and
	// those holds must exist before the lease clock advances so the final
	// sweep reclaims them. Then heal the environment, let every
	// outstanding lease expire, and run the final sweep. Anything still
	// held after this is a leaked reservation.
	rt.Transport().Settle()
	inj.RecoverAll(clock.Now())
	if fc.LeaseTTL > 0 {
		clock.Advance(fc.LeaseTTL + fc.StepEvery + 1)
		sweep(clock.Now())
	}
	// Orphaned sessions' capacity was reclaimed at the brokers; their
	// owners' next heartbeat (here, simulating a crashed owner's restart)
	// must observe the loss, which also unregisters the zombie from the
	// runtime. A failed-repair termination beat some of them to it.
	for _, s := range orphans {
		if err := s.Heartbeat(); !errors.Is(err, proxy.ErrSessionLost) {
			failures = append(failures, fmt.Sprintf("orphaned session outlived its lease: heartbeat err %v", err))
		}
	}
	audit("drain")

	// The headline metric: delivered QoS-seconds, accrued per session at
	// every level change and closed out at teardown. Every terminated
	// session folded its integral into the runtime's total by now.
	result.QoSSeconds = rt.DeliveredQoSSeconds()
	if ctrl != nil {
		result.AdaptHeld = int(adaptMetrics.Held.Value())
		result.FlapsSuppressed = int(adaptMetrics.FlapsSuppressed.Value())
	}

	// Invariant 2: the environment is back to its exact original shape —
	// original capacities, full availability, zero live holds anywhere.
	for _, b := range locals {
		r := b.Resource()
		if n := b.Reservations(); n != 0 {
			failures = append(failures, fmt.Sprintf("broker %s leaked %d holds", r, n))
		}
		if c, orig := b.Capacity(), env.capacities[r]; c != orig {
			failures = append(failures, fmt.Sprintf("broker %s capacity %g after recovery, want original %g", r, c, orig))
		}
		if a, c := b.Available(), b.Capacity(); a < c-overcommitTolerance || a > c+overcommitTolerance {
			failures = append(failures, fmt.Sprintf("broker %s availability %g after drain, want capacity %g", r, a, c))
		}
	}
	for _, n := range env.pool.NetworkBrokers() {
		if live := n.Reservations(); live != 0 {
			failures = append(failures, fmt.Sprintf("network broker %s leaked %d holds", n.Resource(), live))
		}
	}
	// Invariant 3: every session is accounted for; the runtime's repair
	// registry holds no zombies.
	if live := rt.LiveSessions(); live != 0 {
		failures = append(failures, fmt.Sprintf("%d sessions still registered after drain", live))
	}
	if got, want := result.Established+result.PlanInfeasible+result.AdmitRefused+
		result.Shed+result.TimedOut+result.CrashAborted, sc.Sessions*sc.Iterations; got != want {
		failures = append(failures, fmt.Sprintf("outcome count %d != %d attempts", got, want))
	}
	if result.Repaired+result.Degraded+result.RepairFailed != result.Affected {
		failures = append(failures, fmt.Sprintf("repair tally %d+%d+%d != %d affected",
			result.Repaired, result.Degraded, result.RepairFailed, result.Affected))
	}
	// Invariant 4 (trace completeness): every admission attempt and every
	// repair sweep flushed a complete span tree — no orphan spans, no
	// unterminated roots, no multi-root traces — even under loss,
	// duplication, and partitions, and every established session shows up
	// as an ok establish root. Participant spans opened by deliveries
	// that Settle just drained end inside the proxies' serve loops; give
	// those stragglers a bounded moment before judging.
	for waited := 0; env.tracerec.OpenTraces() > 0 && waited < 2000; waited++ {
		time.Sleep(time.Millisecond)
	}
	if open := env.tracerec.OpenTraces(); open > 0 {
		failures = append(failures, fmt.Sprintf("%d trace(s) still open after drain", open))
	}
	// A completed tree leaves the open table before its spans reach the
	// sink; wait out in-flight exports so the caller can flush or close
	// its tracer without tearing the last tree (torn JSONL tails fail
	// the qostrace completeness gate).
	env.tracerec.DrainExports()
	forest := tracetree.FromEvents(collector.Events())
	if !forest.Complete() {
		failures = append(failures, fmt.Sprintf(
			"incomplete trace forest: %d orphan spans, %d rootless, %d multi-root trace(s)",
			forest.OrphanSpans, forest.Rootless, forest.MultiRoot))
	}
	okEstablish := 0
	for _, t := range forest.Trees {
		if t.Root != nil && t.Root.Name == obs.StageEstablish && t.Root.Status == obs.StatusOK {
			okEstablish++
		}
	}
	if okEstablish != result.Established {
		failures = append(failures, fmt.Sprintf("%d ok establish trace(s) != %d established sessions",
			okEstablish, result.Established))
	}
	if len(failures) > 0 {
		return nil, fmt.Errorf("sim: chaos invariants violated: %v", failures)
	}
	return &result, nil
}
