package sim

import (
	"strings"
	"testing"
	"time"

	"qosres/internal/obs"
)

// TestChaosCrashCycles is the crash-amnesia acceptance test on a perfect
// fabric: the concurrent chaos harness with crash/restart injection
// enabled — hosts repeatedly drop off the fabric, forget their books and
// idempotency tables, and recover them from the write-ahead log while
// clients establish, heartbeat, release, and orphan sessions around
// them. RunChaos itself asserts the standing invariants across the
// restarts: no broker ever commits past its original capacity, the
// drained environment returns to its exact original shape with zero
// live holds or zombie sessions, and every admission attempt flushed a
// complete trace tree. CI runs this under -race.
func TestChaosCrashCycles(t *testing.T) {
	reg := obs.New()
	sc := DefaultStressConfig(67)
	sc.Sessions = 6
	sc.Iterations = 4
	sc.Config.Obs = reg
	sc.Config.CapacityMin = 600
	sc.Config.CapacityMax = 1200
	fc := DefaultFaultsConfig()
	fc.Random.FailProb = 0.1
	fc.Random.ShrinkProb = 0.2
	fc.Random.RecoverProb = 0.2
	fc.Random.CrashProb = 0.25
	sc.Config.Faults = fc

	res, err := RunChaos(sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)

	if res.Crashed < 1 {
		t.Error("chaos run applied no crash/restart cycles")
	}
	if got, want := res.Established+res.PlanInfeasible+res.AdmitRefused+
		res.Shed+res.TimedOut+res.CrashAborted, sc.Sessions*sc.Iterations; got != want {
		t.Errorf("outcomes %d, want %d attempts", got, want)
	}

	// The WAL counters surface in the Prometheus exposition: the 2PC
	// journaled transitions, and every restart replayed some of them.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, name := range []string{
		obs.MetricWALAppends,
		obs.MetricWALReplayRecords,
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metric %s missing from the Prometheus exposition", name)
		}
	}
	var appends, replayed, crashes float64
	for _, c := range reg.Snapshot().Counters {
		switch c.Name {
		case obs.MetricWALAppends:
			appends += c.Value
		case obs.MetricWALReplayRecords:
			replayed += c.Value
		case obs.MetricFaultInjected:
			if c.Labels["kind"] == "crash_restart" {
				crashes += c.Value
			}
		}
	}
	if appends == 0 {
		t.Error("no WAL appends recorded during a durable chaos run")
	}
	if int(crashes) != res.Crashed {
		t.Errorf("qosres_fault_injected_total{kind=crash_restart} = %g, harness counted %d", crashes, res.Crashed)
	}
	if res.Crashed > 0 && replayed == 0 {
		t.Error("crash cycles applied but no WAL records replayed")
	}
}

// TestChaosCrashPartitioned is the full acceptance configuration: crash
// cycles on top of the unreliable fabric (12% loss, 6% duplication,
// breakers, deadline-bounded calls) with broker faults and partitions
// still walking. Recovery must reconcile in-doubt prepares over the
// same lossy fabric it crashed off of, and the run must still drain to
// the exact original shape. CI runs this under -race.
func TestChaosCrashPartitioned(t *testing.T) {
	reg := obs.New()
	sc := DefaultStressConfig(71)
	sc.Sessions = 6
	sc.Iterations = 4
	sc.Config.Obs = reg
	sc.Config.CapacityMin = 600
	sc.Config.CapacityMax = 1200
	fc := DefaultFaultsConfig()
	fc.Random.FailProb = 0.1
	fc.Random.ShrinkProb = 0.2
	fc.Random.RecoverProb = 0.2
	fc.Random.PartitionProb = 0.08
	fc.Random.HealProb = 0.12
	fc.Random.MaxPartitions = 1
	fc.Random.CrashProb = 0.2
	fc.Transport = &TransportConfig{
		Loss:             0.12,
		Dup:              0.06,
		Latency:          200 * time.Microsecond,
		Deadline:         200 * time.Millisecond,
		BreakerThreshold: 4,
		BreakerCooldown:  50 * time.Millisecond,
	}
	sc.Config.Faults = fc

	res, err := RunChaos(sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)

	if res.Crashed < 1 {
		t.Error("chaos run applied no crash/restart cycles")
	}
	if got, want := res.Established+res.PlanInfeasible+res.AdmitRefused+
		res.Shed+res.TimedOut+res.CrashAborted, sc.Sessions*sc.Iterations; got != want {
		t.Errorf("outcomes %d, want %d attempts", got, want)
	}
}

// TestChaosCrashValidation pins the config guards: crash injection
// without leasing is refused (a release racing the amnesia window
// strands holds only the sweep can reclaim), as is an out-of-range
// probability.
func TestChaosCrashValidation(t *testing.T) {
	sc := DefaultStressConfig(1)
	fc := DefaultFaultsConfig()
	fc.LeaseTTL = 0
	fc.OrphanRate = 0
	fc.Random.CrashProb = 0.2
	sc.Config.Faults = fc
	if _, err := RunChaos(sc); err == nil {
		t.Error("crash injection without a lease TTL accepted")
	}
	fc2 := DefaultFaultsConfig()
	fc2.Random.CrashProb = 1.5
	sc.Config.Faults = fc2
	if _, err := RunChaos(sc); err == nil {
		t.Error("crash probability 1.5 accepted")
	}
}
