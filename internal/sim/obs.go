package sim

import (
	"strconv"
	"time"

	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/obs"
	"qosres/internal/trace"
)

// instruments bundles the pre-registered metric handles of one run. The
// zero value (from a nil registry) is fully inert: every handle is nil
// and every method returns immediately, so the hot path pays nothing
// when observability is off.
type instruments struct {
	reg    *obs.Registry
	stages *obs.PlanStages

	arrivals, planned, planFailed *obs.Counter
	reserved, reserveFailed       *obs.Counter
	released                      *obs.Counter
	rollbacks                     *obs.Counter
	psi                           *obs.Histogram
	simTime                       *obs.Gauge
	// admit carries the runtime admission counters (retries, rollbacks,
	// stale-snapshot rejections); inert without a registry.
	admit *obs.AdmitMetrics
	// faults carries the fault-injection and session-repair counters of
	// chaos runs; inert without a registry.
	faults *obs.FaultMetrics
	// transport carries the message/drop/duplication/breaker counters of
	// unreliable-messaging chaos runs; inert without a registry.
	transport *obs.TransportMetrics
	// read carries the read-path cache counters (snapshot cache and plan
	// memo hits/misses/evictions); inert without a registry.
	read *obs.ReadMetrics
	// adapt carries the mid-session adaptation counters (upgrades,
	// downgrades, held ticks, suppressed flaps, delivered QoS-seconds);
	// inert without a registry.
	adapt *obs.AdaptMetrics
}

const (
	eventsHelp = "Session lifecycle events by kind."
	utilHelp   = "Reserved fraction of the resource's capacity (0..1)."
	alphaHelp  = "Last observed availability change index per resource."
)

// newInstruments registers the run's metrics. A nil registry yields an
// inert value.
func newInstruments(r *obs.Registry) instruments {
	in := instruments{reg: r, stages: obs.NewPlanStages(r)}
	ev := func(kind trace.Kind) *obs.Counter {
		return r.Counter(obs.MetricSessionEvents, eventsHelp, "event", kind.String())
	}
	in.arrivals = ev(trace.Arrival)
	in.planned = ev(trace.Planned)
	in.planFailed = ev(trace.PlanFailed)
	in.reserved = ev(trace.Reserved)
	in.reserveFailed = ev(trace.ReserveFailed)
	in.released = ev(trace.Released)
	in.rollbacks = r.Counter(obs.MetricRollbacks,
		"Multi-resource reservations rolled back after a partial failure.")
	in.psi = r.Histogram(obs.MetricPlanPsi,
		"Bottleneck contention index of accepted plans.",
		obs.LinearBuckets(0.05, 0.05, 20))
	in.simTime = r.Gauge(obs.MetricSimTime, "Current simulation clock in TUs.")
	in.admit = obs.NewAdmitMetrics(r)
	in.faults = obs.NewFaultMetrics(r)
	in.transport = obs.NewTransportMetrics(r)
	in.read = obs.NewReadMetrics(r)
	in.adapt = obs.NewAdaptMetrics(r)
	return in
}

// enabled reports whether the run records metrics.
func (in instruments) enabled() bool { return in.reg.Enabled() }

// observeAcceptedPlan records Ψ and the end-to-end QoS rank of an
// accepted plan.
func (in instruments) observeAcceptedPlan(p *core.Plan) {
	if in.reg == nil {
		return
	}
	in.psi.Observe(p.Psi)
	in.reg.Counter(obs.MetricPlanRank, "Accepted plans by end-to-end QoS level rank.",
		"rank", strconv.Itoa(p.Rank)).Inc()
}

// sampleAlpha refreshes the per-resource α gauges from a snapshot.
func (in instruments) sampleAlpha(snap *broker.Snapshot) {
	if in.reg == nil {
		return
	}
	for r, a := range snap.Alpha {
		in.reg.Gauge(obs.MetricAlpha, alphaHelp, "resource", r).Set(a)
	}
}

// sampleUtilization refreshes the utilization gauges of the named
// resources from the pool's live brokers.
func (in instruments) sampleUtilization(pool *broker.Pool, resources []string) {
	if in.reg == nil {
		return
	}
	for _, r := range resources {
		b, ok := pool.Get(r)
		if !ok {
			continue
		}
		cap := b.Capacity()
		if cap <= 0 {
			continue
		}
		in.reg.Gauge(obs.MetricUtilization, utilHelp, "resource", r).Set(1 - b.Available()/cap)
	}
}

// stageTimer times one planning stage; inert when neither metrics nor
// span tracing is enabled, in which case it never reads the clock.
type stageTimer struct {
	t0 time.Time
	on bool
}

// startStage begins timing if the run observes stages at all.
func (env *environment) startStage() stageTimer {
	if !env.timed {
		return stageTimer{}
	}
	return stageTimer{t0: time.Now(), on: true}
}

// endStage records the elapsed wall-clock time into the stage histogram
// (exemplared with the distributed-trace ID when the arrival is
// sampled) and, when span tracing is on, emits a trace.Span event.
func (env *environment) endStage(st stageTimer, h *obs.Histogram, stage, tid string,
	now broker.Time, sid uint64, service, class string) {
	if !st.on {
		return
	}
	d := time.Since(st.t0).Seconds()
	h.ObserveExemplar(d, tid)
	if env.traceSpans {
		env.tracer.Trace(trace.Event{
			At: now, Kind: trace.Span, Session: sid,
			Service: service, Class: class, Stage: stage, Duration: d,
		})
	}
}
