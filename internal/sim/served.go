package sim

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"qosres/internal/adapt"
	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/obs"
	"qosres/internal/proxy"
	"qosres/internal/spec"
	"qosres/internal/topo"
)

// This file adapts the figure-9 environment into a long-lived serving
// deployment (cmd/qosserved): the same QoSProxy runtime the chaos
// harness exercises, but driven by wall-clock time and external
// establish/heartbeat/teardown requests instead of a discrete-event
// scheduler. The WAL makes it restartable — a ServedEnv opened with
// Recover over a surviving log replays the books before serving.

// WallClock is a proxy.Clock running on real time, in seconds since the
// instant it was created. One TU of the simulated world maps to one
// second of the served world, so lease TTLs keep their meaning.
type WallClock struct {
	start time.Time
}

// NewWallClock returns a clock whose time zero is now.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// Now implements proxy.Clock.
func (c *WallClock) Now() broker.Time {
	return broker.Time(time.Since(c.start).Seconds())
}

// ServedOptions configures a serving environment.
type ServedOptions struct {
	// Seed drives the environment build (capacities, workload tables)
	// and the session sampler. Restarting with the same seed rebuilds
	// the identical environment, which is what makes WAL replay
	// meaningful across process restarts.
	Seed int64
	// Rate parameterizes the sampled session mix (sessions per 60 TUs in
	// the underlying config); it does not pace anything by itself. 0
	// defaults to 60.
	Rate float64
	// LeaseTTL leases every established session's holds: they expire
	// this many TUs (= seconds of wall time) after the last heartbeat.
	// 0 disables leasing — then an abandoned client strands its holds
	// until teardown.
	LeaseTTL broker.Time
	// WALDir, when non-empty, write-ahead-logs every 2PC transition so
	// the books survive a process restart.
	WALDir string
	// Recover replays an existing WAL in WALDir into the books before
	// serving starts, expiring leases that lapsed while down. Requires
	// WALDir.
	Recover bool
	// Registry, when non-nil, receives runtime metrics (also WAL and
	// recovery counters); serve it over /metrics with obs.NewMux.
	Registry *obs.Registry
	// Clock overrides the runtime clock; nil uses a fresh WallClock.
	// Tests substitute a manual clock to force lease expiry.
	Clock proxy.Clock
	// Adapt, when non-nil, arms the mid-session adaptation controller
	// over the deployment's brokers. The caller paces it (cmd/qosserved
	// ticks it on wall-clock time via Controller).
	Adapt *adapt.Policy
}

// ServedEnv is a live serving deployment: the figure-9 topology, its
// brokers and QoSProxies, and a sampler that draws paper-shaped session
// documents for clients that do not bring their own.
type ServedEnv struct {
	mu      sync.Mutex
	rng     *rand.Rand
	cfg     Config
	env     *environment
	rt      *proxy.Runtime
	planner core.Planner
	clock   proxy.Clock
	ctrl    *adapt.Controller
}

// NewServedEnv builds the environment and deploys the runtime. The
// returned env is serving (Establish works) until Close.
func NewServedEnv(opts ServedOptions) (*ServedEnv, error) {
	rate := opts.Rate
	if rate <= 0 {
		rate = 60
	}
	cfg := DefaultConfig(AlgBasic, rate, opts.Seed)
	cfg.UseRuntime = true
	cfg.Obs = opts.Registry
	cfg.Faults = &FaultsConfig{
		Steps:      1,
		StepEvery:  1,
		LeaseTTL:   opts.LeaseTTL,
		WALDir:     opts.WALDir,
		RecoverWAL: opts.Recover,
	}
	if err := cfg.Faults.validate(); err != nil {
		return nil, err
	}
	clock := opts.Clock
	if clock == nil {
		clock = NewWallClock()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	env, err := buildEnvironment(cfg, rng)
	if err != nil {
		return nil, err
	}
	planner, err := makePlanner(cfg, rng)
	if err != nil {
		return nil, err
	}
	rt, err := env.buildRuntime(cfg, clock)
	if err != nil {
		return nil, err
	}
	var ctrl *adapt.Controller
	if opts.Adapt != nil {
		locals := env.pool.LocalBrokers()
		brokers := make([]broker.Broker, 0, len(locals))
		for _, b := range locals {
			brokers = append(brokers, b)
		}
		ctrl = adapt.New(rt, *opts.Adapt, brokers)
		ctrl.Instrument(env.ins.adapt)
	}
	return &ServedEnv{
		rng:     rng,
		cfg:     cfg,
		env:     env,
		rt:      rt,
		planner: planner,
		clock:   clock,
		ctrl:    ctrl,
	}, nil
}

// Controller returns the adaptation controller, nil unless
// ServedOptions.Adapt armed one. The serving front end ticks it on
// wall-clock time.
func (se *ServedEnv) Controller() *adapt.Controller { return se.ctrl }

// Renegotiate moves an established session to the named end-to-end
// level through the delta-reservation path.
func (se *ServedEnv) Renegotiate(ctx context.Context, s *proxy.Session, level string) error {
	return se.rt.Renegotiate(ctx, s, level)
}

// Runtime exposes the deployed QoSProxy runtime (heartbeat sweeps,
// recovery, instrumentation).
func (se *ServedEnv) Runtime() *proxy.Runtime { return se.rt }

// Clock returns the runtime clock.
func (se *ServedEnv) Clock() proxy.Clock { return se.clock }

// SweepLeases reclaims every leased hold whose expiry has passed and
// returns how many were released. A serving deployment ticks this
// periodically (cmd/qosserved sweeps at half the lease TTL); without it
// only recovery's one-shot sweep would ever reclaim abandoned holds.
func (se *ServedEnv) SweepLeases() int {
	return se.env.pool.ExpireLeases(se.clock.Now())
}

// Close stops the runtime and closes the WAL. The WAL directory is left
// in place — that is the point: a later NewServedEnv with Recover picks
// it up.
func (se *ServedEnv) Close() error {
	se.rt.Stop()
	return se.rt.CloseWAL()
}

// SampledSession is one drawn session offer: the wire document, the
// main QoSProxy that should coordinate it, and the paper-distributed
// holding time a well-behaved client would keep it for.
type SampledSession struct {
	MainHost topo.HostID
	Duration broker.Time
	Doc      *spec.Session
}

// SampleSession draws one paper-shaped session (domain, service,
// fat/long class) and renders it as a spec document with the current
// availability snapshot. The snapshot is advisory — Establish collects
// live availability over the fabric regardless.
func (se *ServedEnv) SampleSession() (*SampledSession, error) {
	se.mu.Lock()
	sh := se.env.drawSession(se.cfg, se.rng)
	se.mu.Unlock()
	service := se.env.services[sh.service-1][sh.variant]
	binding, resources := sessionResources(sh)
	snap, err := se.env.pool.Snapshot(se.clock.Now(), resources)
	if err != nil {
		return nil, err
	}
	doc, err := spec.FromModel(service, binding, snap)
	se.env.pool.RecycleSnapshot(snap)
	if err != nil {
		return nil, err
	}
	return &SampledSession{
		MainHost: topo.ServerHost(sh.service),
		Duration: sh.duration,
		Doc:      doc,
	}, nil
}

// Establish validates the document and runs the three-phase protocol
// from mainHost. The document's availability snapshot is ignored (live
// collection); its service model and binding are what matter.
func (se *ServedEnv) Establish(ctx context.Context, mainHost topo.HostID, doc *spec.Session) (*proxy.Session, error) {
	service, binding, _, err := doc.Build()
	if err != nil {
		return nil, fmt.Errorf("sim: served establish: %w", err)
	}
	return se.rt.EstablishContext(ctx, mainHost, proxy.SessionSpec{
		Service: service,
		Binding: binding,
		Planner: se.planner,
	})
}
