package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"qosres/internal/obs"
	"qosres/internal/proxy"
	"qosres/internal/topo"
)

// This file is the admission-throughput benchmark harness behind
// BenchmarkAdmitThroughput and the BENCH_admit.json artifact: how many
// establish+release cycles per second the runtime's three-phase
// protocol sustains as client concurrency grows, serialized commits
// versus the group-commit batching front end.
//
// The workload deliberately concentrates: every client establishes the
// same hot service (S1 from domain 3), so all sessions contend for the
// same four brokers across three hosts — the serve goroutines and lock
// stripes the batching front end exists to relieve. Capacities are
// generous (1e6) so no session is refused: the measurement isolates
// protocol cost, not admission-control outcomes.

// AdmitBenchConfig parameterizes one RunAdmitThroughput call.
type AdmitBenchConfig struct {
	// Seed drives the environment draw.
	Seed int64
	// Goroutines is the number of concurrent clients.
	Goroutines int
	// Sessions is the total number of establish+release cycles, split
	// evenly across the clients.
	Sessions int
	// BatchAdmit, when > 1, enables the group-commit front end with
	// this round bound; 0 or 1 measures the serialized commit path.
	BatchAdmit int
	// PlanMemo enables epoch-validated plan memoization: admissions
	// whose book is unchanged since an identical earlier admission skip
	// instantiation and planning (the read-path fast lane).
	PlanMemo bool
	// Obs, when non-nil, receives the run's metrics (batch sizes,
	// stripe counters, stage latencies) for reporting alongside the
	// throughput number.
	Obs *obs.Registry
}

// AdmitBenchResult is one measured throughput point.
type AdmitBenchResult struct {
	// Established counts sessions that committed (with the generous
	// benchmark capacities this equals Sessions).
	Established int
	// Elapsed is the wall-clock time of the client phase (environment
	// setup excluded).
	Elapsed time.Duration
	// SessionsPerSec is Established divided by Elapsed.
	SessionsPerSec float64
}

// RunAdmitThroughput measures establish+release throughput through the
// proxy runtime under the given concurrency and batching mode.
func RunAdmitThroughput(ab AdmitBenchConfig) (*AdmitBenchResult, error) {
	if ab.Goroutines < 1 || ab.Sessions < 1 {
		return nil, fmt.Errorf("sim: admit bench needs at least one goroutine and one session, got %d×%d",
			ab.Goroutines, ab.Sessions)
	}
	cfg := DefaultConfig(AlgBasic, 120, ab.Seed)
	cfg.UseRuntime = true
	// Generous books: the benchmark measures protocol cost, so nothing
	// may be refused for capacity.
	cfg.CapacityMin = 1e6
	cfg.CapacityMax = 1e6
	cfg.BatchAdmit = ab.BatchAdmit
	cfg.PlanMemo = ab.PlanMemo
	cfg.Obs = ab.Obs
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(ab.Seed))
	env, err := buildEnvironment(cfg, rng)
	if err != nil {
		return nil, err
	}
	planner, err := makePlanner(cfg, rng)
	if err != nil {
		return nil, err
	}
	rt, err := env.buildRuntime(cfg, &proxy.ManualClock{})
	if err != nil {
		return nil, err
	}
	defer rt.Stop()

	// The hot session: service S1 established from domain 3 (whose
	// proxy server is S2, so S1 is an eligible service there). Every
	// client runs the identical spec — maximal contention.
	sh := sessionShape{domain: 3, service: 1}
	service := env.services[sh.service-1][sh.variant]
	binding, _ := sessionResources(sh)
	main := topo.ServerHost(sh.service)
	spec := proxy.SessionSpec{Service: service, Binding: binding, Planner: planner}

	var established atomic.Int64
	errs := make([]error, ab.Goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < ab.Goroutines; g++ {
		n := ab.Sessions / ab.Goroutines
		if g < ab.Sessions%ab.Goroutines {
			n++
		}
		wg.Add(1)
		go func(g, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				s, err := rt.Establish(main, spec)
				if err != nil {
					// With 1e6-unit books any failure is a harness bug, not
					// an admission outcome.
					errs[g] = fmt.Errorf("sim: admit bench client %d: %w", g, err)
					return
				}
				established.Add(1)
				if err := s.Release(); err != nil {
					errs[g] = fmt.Errorf("sim: admit bench client %d: release: %w", g, err)
					return
				}
			}
		}(g, n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	// Sanity: the books must be whole after the churn.
	for _, b := range env.pool.LocalBrokers() {
		if n := b.Reservations(); n != 0 {
			return nil, fmt.Errorf("sim: admit bench leaked %d holds on %s", n, b.Resource())
		}
	}

	res := &AdmitBenchResult{
		Established: int(established.Load()),
		Elapsed:     elapsed,
	}
	if elapsed > 0 {
		res.SessionsPerSec = float64(res.Established) / elapsed.Seconds()
	}
	return res, nil
}
