package advance

import (
	"errors"
	"fmt"

	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/qrg"
	"qosres/internal/svc"
)

// Admission plans and books advance sessions for one service against a
// Registry: the admission-control layer an advance-reservation service
// would expose to clients ("book me this service for [start, end)").
type Admission struct {
	Registry *Registry
	Service  *svc.Service
	Binding  svc.Binding
	Planner  core.Planner
	// Resources lists the concrete resource IDs the session can touch;
	// derived from Binding when empty.
	Resources []string
}

// ErrNoWindow is returned when EarliestFeasible exhausts its horizon.
var ErrNoWindow = errors.New("advance: no feasible window within horizon")

// resources resolves the resource set.
func (a *Admission) resources() []string {
	if len(a.Resources) > 0 {
		return a.Resources
	}
	seen := map[string]bool{}
	var out []string
	for _, cid := range a.Service.ComponentIDs() {
		for _, concrete := range a.Binding[cid] {
			if !seen[concrete] {
				seen[concrete] = true
				out = append(out, concrete)
			}
		}
	}
	return out
}

// Plan computes the best reservation plan for the window without
// booking it.
func (a *Admission) Plan(start, end broker.Time) (*core.Plan, error) {
	if a.Registry == nil || a.Service == nil || a.Planner == nil {
		return nil, fmt.Errorf("advance: admission missing registry, service, or planner")
	}
	snap, err := a.Registry.WindowSnapshot(start, end, a.resources())
	if err != nil {
		return nil, err
	}
	g, err := qrg.Build(a.Service, a.Binding, snap)
	if err != nil {
		return nil, err
	}
	return a.Planner.Plan(g)
}

// Admit plans and books the session over [start, end). The booking is
// all-or-nothing; on success the returned plan describes the committed
// QoS levels.
func (a *Admission) Admit(start, end broker.Time) (*core.Plan, *MultiBooking, error) {
	plan, err := a.Plan(start, end)
	if err != nil {
		return nil, nil, err
	}
	booking, err := a.Registry.ReserveAll(start, end, plan.Requirement())
	if err != nil {
		// A concurrent booking may have consumed the window between the
		// snapshot and the reserve; surface it as a planning failure.
		return nil, nil, err
	}
	return plan, booking, nil
}

// EarliestFeasible scans candidate start times from from (inclusive) in
// increments of step, up to from+horizon, and admits the session in the
// first window [s, s+duration) with a feasible plan. minRank > 0
// additionally requires the plan to reach at least that end-to-end QoS
// rank, letting callers wait for a slot with full quality instead of
// taking the next degraded one.
func (a *Admission) EarliestFeasible(from, horizon, duration, step broker.Time, minRank int) (broker.Time, *core.Plan, *MultiBooking, error) {
	if step <= 0 || duration <= 0 || horizon < 0 {
		return 0, nil, nil, fmt.Errorf("advance: invalid scan parameters (step %g, duration %g, horizon %g)",
			float64(step), float64(duration), float64(horizon))
	}
	for s := from; s <= from+horizon; s += step {
		plan, err := a.Plan(s, s+duration)
		if err != nil {
			if errors.Is(err, core.ErrInfeasible) {
				continue
			}
			return 0, nil, nil, err
		}
		if plan.Rank < minRank {
			continue
		}
		booking, err := a.Registry.ReserveAll(s, s+duration, plan.Requirement())
		if err != nil {
			if errors.Is(err, ErrInsufficient) {
				continue
			}
			return 0, nil, nil, err
		}
		return s, plan, booking, nil
	}
	return 0, nil, nil, ErrNoWindow
}
