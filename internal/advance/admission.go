package advance

import (
	"errors"
	"fmt"

	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/qrg"
	"qosres/internal/svc"
)

// Admission plans and books advance sessions for one service against a
// Registry: the admission-control layer an advance-reservation service
// would expose to clients ("book me this service for [start, end)").
type Admission struct {
	Registry *Registry
	Service  *svc.Service
	Binding  svc.Binding
	Planner  core.Planner
	// Resources lists the concrete resource IDs the session can touch;
	// derived from Binding when empty.
	Resources []string
	// Templates optionally shares compiled QRG templates with other
	// admissions; when nil a private template is compiled on first use.
	// EarliestFeasible in particular replans per candidate window, so
	// every scan step after the first rides the fast lane.
	Templates *qrg.TemplateCache

	tpl *qrg.Template
}

// ErrNoWindow is returned when EarliestFeasible exhausts its horizon.
var ErrNoWindow = errors.New("advance: no feasible window within horizon")

// resources resolves the resource set.
func (a *Admission) resources() []string {
	if len(a.Resources) > 0 {
		return a.Resources
	}
	seen := map[string]bool{}
	var out []string
	for _, cid := range a.Service.ComponentIDs() {
		for _, concrete := range a.Binding[cid] {
			if !seen[concrete] {
				seen[concrete] = true
				out = append(out, concrete)
			}
		}
	}
	return out
}

// Plan computes the best reservation plan for the window without
// booking it.
func (a *Admission) Plan(start, end broker.Time) (*core.Plan, error) {
	if a.Registry == nil || a.Service == nil || a.Planner == nil {
		return nil, fmt.Errorf("advance: admission missing registry, service, or planner")
	}
	snap, err := a.Registry.WindowSnapshot(start, end, a.resources())
	if err != nil {
		return nil, err
	}
	tpl := a.template()
	if tpl == nil {
		// Fallback: compilation failed (Compile binds eagerly where
		// Build binds lazily); keep the reference semantics.
		g, err := qrg.Build(a.Service, a.Binding, snap)
		if err != nil {
			return nil, err
		}
		return a.Planner.Plan(g)
	}
	g, err := tpl.Instantiate(snap)
	if err != nil {
		return nil, err
	}
	plan, err := a.Planner.Plan(g)
	tpl.Recycle(g)
	return plan, err
}

// template returns the admission's compiled template, consulting the
// shared cache when configured, else compiling once. Nil means the
// pair does not compile; Plan then falls back to qrg.Build. Like the
// rest of Admission, lazy compilation assumes single-goroutine use
// (share a TemplateCache for concurrent admissions).
func (a *Admission) template() *qrg.Template {
	if a.Templates != nil {
		tpl, err := a.Templates.Get(a.Service, a.Binding)
		if err != nil {
			return nil
		}
		return tpl
	}
	if a.tpl == nil {
		tpl, err := qrg.Compile(a.Service, a.Binding)
		if err != nil {
			return nil
		}
		a.tpl = tpl
	}
	return a.tpl
}

// Admit plans and books the session over [start, end). The booking is
// all-or-nothing; on success the returned plan describes the committed
// QoS levels.
func (a *Admission) Admit(start, end broker.Time) (*core.Plan, *MultiBooking, error) {
	plan, err := a.Plan(start, end)
	if err != nil {
		return nil, nil, err
	}
	booking, err := a.Registry.ReserveAll(start, end, plan.Requirement())
	if err != nil {
		// A concurrent booking may have consumed the window between the
		// snapshot and the reserve; surface it as a planning failure.
		return nil, nil, err
	}
	return plan, booking, nil
}

// EarliestFeasible scans candidate start times from from (inclusive) in
// increments of step, up to from+horizon, and admits the session in the
// first window [s, s+duration) with a feasible plan. minRank > 0
// additionally requires the plan to reach at least that end-to-end QoS
// rank, letting callers wait for a slot with full quality instead of
// taking the next degraded one.
func (a *Admission) EarliestFeasible(from, horizon, duration, step broker.Time, minRank int) (broker.Time, *core.Plan, *MultiBooking, error) {
	if step <= 0 || duration <= 0 || horizon < 0 {
		return 0, nil, nil, fmt.Errorf("advance: invalid scan parameters (step %g, duration %g, horizon %g)",
			float64(step), float64(duration), float64(horizon))
	}
	for s := from; s <= from+horizon; s += step {
		plan, err := a.Plan(s, s+duration)
		if err != nil {
			if errors.Is(err, core.ErrInfeasible) {
				continue
			}
			return 0, nil, nil, err
		}
		if plan.Rank < minRank {
			continue
		}
		booking, err := a.Registry.ReserveAll(s, s+duration, plan.Requirement())
		if err != nil {
			if errors.Is(err, ErrInsufficient) {
				continue
			}
			return 0, nil, nil, err
		}
		return s, plan, booking, nil
	}
	return 0, nil, nil, ErrNoWindow
}
