// Package advance implements advance (in-the-future) multi-resource
// reservations, the extension the paper names as its next step in
// section 6 ("to extend our multi-resource reservation framework to
// support advance reservations", following Foster et al., IWQoS '99).
//
// A Book manages one resource's committed capacity over future time: a
// reservation holds an amount over a half-open interval [start, end).
// Availability over a query window is the minimum headroom at any
// instant of the window, so a window snapshot composes directly with the
// QRG construction and planners of this library — an advance session is
// planned exactly like an immediate one, against the window's
// availability instead of the instantaneous one.
package advance

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"qosres/internal/broker"
	"qosres/internal/qos"
)

// ErrInsufficient is returned when a booking exceeds the resource's
// headroom somewhere in its interval.
var ErrInsufficient = errors.New("advance: insufficient availability over interval")

// ErrUnknownBooking is returned when cancelling a booking the book does
// not hold.
var ErrUnknownBooking = errors.New("advance: unknown booking")

// BookingID identifies a booking within a Book.
type BookingID uint64

// interval is one committed booking.
type interval struct {
	start, end broker.Time
	amount     float64
}

// Book is the advance-reservation ledger of a single resource. It is
// safe for concurrent use.
type Book struct {
	resource string
	capacity float64

	mu       sync.Mutex
	bookings map[BookingID]interval
	nextID   BookingID
}

// NewBook creates a ledger for one resource.
func NewBook(resource string, capacity float64) (*Book, error) {
	if resource == "" {
		return nil, fmt.Errorf("advance: empty resource name")
	}
	if capacity < 0 {
		return nil, fmt.Errorf("advance: resource %s has negative capacity %g", resource, capacity)
	}
	return &Book{
		resource: resource,
		capacity: capacity,
		bookings: make(map[BookingID]interval),
	}, nil
}

// Resource returns the ledger's resource ID.
func (b *Book) Resource() string { return b.resource }

// Capacity returns the resource's total amount.
func (b *Book) Capacity() float64 { return b.capacity }

// Bookings returns the number of live bookings.
func (b *Book) Bookings() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.bookings)
}

// AvailableOver returns the minimum unreserved amount at any instant of
// the half-open window [start, end).
func (b *Book) AvailableOver(start, end broker.Time) (float64, error) {
	if end <= start {
		return 0, fmt.Errorf("advance: empty window [%g, %g)", float64(start), float64(end))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.capacity - b.peakLocked(start, end, interval{}), nil
}

// peakLocked computes the maximum committed amount at any instant of
// [start, end), optionally as if extra were also booked.
func (b *Book) peakLocked(start, end broker.Time, extra interval) float64 {
	// Sweep line over booking endpoints clipped to the window.
	type edge struct {
		at    broker.Time
		delta float64
	}
	var edges []edge
	add := func(iv interval) {
		if iv.amount == 0 || iv.end <= start || iv.start >= end {
			return
		}
		s, e := iv.start, iv.end
		if s < start {
			s = start
		}
		if e > end {
			e = end
		}
		edges = append(edges, edge{at: s, delta: iv.amount}, edge{at: e, delta: -iv.amount})
	}
	for _, iv := range b.bookings {
		add(iv)
	}
	add(extra)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		// Process releases before acquisitions at the same instant:
		// intervals are half-open, so a booking ending at t does not
		// overlap one starting at t.
		return edges[i].delta < edges[j].delta
	})
	cur, peak := 0.0, 0.0
	for _, e := range edges {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// Reserve books amount units over [start, end), failing with
// ErrInsufficient when the headroom dips below amount anywhere in the
// interval.
func (b *Book) Reserve(start, end broker.Time, amount float64) (BookingID, error) {
	if end <= start {
		return 0, fmt.Errorf("advance: resource %s: empty interval [%g, %g)", b.resource, float64(start), float64(end))
	}
	if amount < 0 {
		return 0, fmt.Errorf("advance: resource %s: negative amount %g", b.resource, amount)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	peak := b.peakLocked(start, end, interval{})
	if amount > b.capacity-peak+epsilon {
		return 0, fmt.Errorf("advance: resource %s: need %g over [%g, %g), worst-case headroom %g: %w",
			b.resource, amount, float64(start), float64(end), b.capacity-peak, ErrInsufficient)
	}
	b.nextID++
	id := b.nextID
	b.bookings[id] = interval{start: start, end: end, amount: amount}
	return id, nil
}

// Release cancels a booking (or lets an expired one be collected).
func (b *Book) Release(id BookingID) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.bookings[id]; !ok {
		return fmt.Errorf("advance: resource %s: booking %d: %w", b.resource, id, ErrUnknownBooking)
	}
	delete(b.bookings, id)
	return nil
}

// Expire drops every booking that ends at or before now, returning the
// number removed. Long-running admission services call this
// periodically.
func (b *Book) Expire(now broker.Time) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for id, iv := range b.bookings {
		if iv.end <= now {
			delete(b.bookings, id)
			n++
		}
	}
	return n
}

// Step is one flat segment of an availability profile.
type Step struct {
	Start, End broker.Time
	Avail      float64
}

// Profile returns the availability step function over [start, end),
// merged over all bookings. Adjacent steps with equal availability are
// coalesced.
func (b *Book) Profile(start, end broker.Time) ([]Step, error) {
	if end <= start {
		return nil, fmt.Errorf("advance: empty window [%g, %g)", float64(start), float64(end))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// Collect clipped endpoints.
	cuts := map[broker.Time]bool{start: true, end: true}
	for _, iv := range b.bookings {
		if iv.end <= start || iv.start >= end {
			continue
		}
		if iv.start > start {
			cuts[iv.start] = true
		}
		if iv.end < end {
			cuts[iv.end] = true
		}
	}
	points := make([]broker.Time, 0, len(cuts))
	for t := range cuts {
		points = append(points, t)
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })

	var steps []Step
	for i := 0; i+1 < len(points); i++ {
		s, e := points[i], points[i+1]
		committed := 0.0
		for _, iv := range b.bookings {
			if iv.start < e && iv.end > s {
				committed += iv.amount
			}
		}
		avail := b.capacity - committed
		if n := len(steps); n > 0 && math.Abs(steps[n-1].Avail-avail) < 1e-12 {
			steps[n-1].End = e
			continue
		}
		steps = append(steps, Step{Start: s, End: e, Avail: avail})
	}
	return steps, nil
}

const epsilon = 1e-9

// Registry is the multi-resource advance-reservation ledger: one Book
// per resource, plus window snapshots compatible with qrg.Build and
// all-or-nothing multi-resource booking with rollback — the advance
// analogue of broker.Pool.
type Registry struct {
	mu    sync.Mutex
	books map[string]*Book
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{books: make(map[string]*Book)}
}

// Add creates a Book for a resource.
func (r *Registry) Add(resource string, capacity float64) (*Book, error) {
	b, err := NewBook(resource, capacity)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.books[resource]; dup {
		return nil, fmt.Errorf("advance: duplicate resource %s", resource)
	}
	r.books[resource] = b
	return b, nil
}

// Get returns the Book of a resource.
func (r *Registry) Get(resource string) (*Book, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.books[resource]
	return b, ok
}

// Resources lists registered resources, sorted.
func (r *Registry) Resources() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.books))
	for k := range r.books {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WindowSnapshot builds a broker.Snapshot whose availability is each
// resource's worst-case headroom over [start, end); a QRG built from it
// plans the session for that future window. The availability change
// index is fixed at 1: advance bookings are firm, so there is no trend
// to react to.
func (r *Registry) WindowSnapshot(start, end broker.Time, resources []string) (*broker.Snapshot, error) {
	snap := &broker.Snapshot{
		At:    start,
		Avail: make(qos.ResourceVector, len(resources)),
		Alpha: make(map[string]float64, len(resources)),
	}
	for _, res := range resources {
		b, ok := r.Get(res)
		if !ok {
			return nil, fmt.Errorf("advance: snapshot of unknown resource %s", res)
		}
		avail, err := b.AvailableOver(start, end)
		if err != nil {
			return nil, err
		}
		snap.Avail[res] = avail
		snap.Alpha[res] = 1
	}
	return snap, nil
}

// MultiBooking backs one advance end-to-end reservation plan.
type MultiBooking struct {
	parts []bookingPart
}

type bookingPart struct {
	book *Book
	id   BookingID
}

// Resources lists the booked resource IDs.
func (m *MultiBooking) Resources() []string {
	out := make([]string, len(m.parts))
	for i, p := range m.parts {
		out[i] = p.book.Resource()
	}
	return out
}

// ReserveAll books every (resource, amount) pair over the same interval,
// rolling back on any refusal.
func (r *Registry) ReserveAll(start, end broker.Time, req qos.ResourceVector) (*MultiBooking, error) {
	m := &MultiBooking{}
	for _, res := range req.Names() {
		amount := req[res]
		if amount == 0 {
			continue
		}
		b, ok := r.Get(res)
		if !ok {
			m.rollback()
			return nil, fmt.Errorf("advance: booking of unknown resource %s", res)
		}
		id, err := b.Reserve(start, end, amount)
		if err != nil {
			m.rollback()
			return nil, err
		}
		m.parts = append(m.parts, bookingPart{book: b, id: id})
	}
	return m, nil
}

func (m *MultiBooking) rollback() {
	for i := len(m.parts) - 1; i >= 0; i-- {
		_ = m.parts[i].book.Release(m.parts[i].id)
	}
	m.parts = nil
}

// Release cancels every booking in the set.
func (m *MultiBooking) Release() error {
	var firstErr error
	for i := len(m.parts) - 1; i >= 0; i-- {
		if err := m.parts[i].book.Release(m.parts[i].id); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	m.parts = nil
	return firstErr
}

// Expire drops finished bookings from every book.
func (r *Registry) Expire(now broker.Time) int {
	r.mu.Lock()
	books := make([]*Book, 0, len(r.books))
	for _, b := range r.books {
		books = append(books, b)
	}
	r.mu.Unlock()
	n := 0
	for _, b := range books {
		n += b.Expire(now)
	}
	return n
}
