package advance

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/qos"
	"qosres/internal/qrg"
	"qosres/internal/workload"
)

func TestBookReserveWithinWindow(t *testing.T) {
	b, err := NewBook("cpu", 100)
	if err != nil {
		t.Fatal(err)
	}
	id1, err := b.Reserve(10, 20, 60)
	if err != nil {
		t.Fatal(err)
	}
	// Disjoint interval: full capacity available.
	if avail, _ := b.AvailableOver(20, 30); avail != 100 {
		t.Fatalf("disjoint avail = %v", avail)
	}
	// Overlapping interval: 40 left.
	if avail, _ := b.AvailableOver(15, 25); avail != 40 {
		t.Fatalf("overlap avail = %v", avail)
	}
	// A second booking that fits only outside the overlap must fail
	// when it overlaps...
	if _, err := b.Reserve(5, 15, 50); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v", err)
	}
	// ...and succeed when it doesn't (half-open intervals: end == start
	// of the other booking is fine).
	id2, err := b.Reserve(0, 10, 90)
	if err != nil {
		t.Fatalf("adjacent booking failed: %v", err)
	}
	if err := b.Release(id1); err != nil {
		t.Fatal(err)
	}
	if err := b.Release(id2); err != nil {
		t.Fatal(err)
	}
	if err := b.Release(id2); !errors.Is(err, ErrUnknownBooking) {
		t.Fatalf("double release err = %v", err)
	}
}

func TestBookHalfOpenSemantics(t *testing.T) {
	b, _ := NewBook("cpu", 100)
	if _, err := b.Reserve(0, 10, 100); err != nil {
		t.Fatal(err)
	}
	// [10, 20) does not overlap [0, 10).
	if _, err := b.Reserve(10, 20, 100); err != nil {
		t.Fatalf("touching intervals must not conflict: %v", err)
	}
}

func TestBookPeakOfStaggeredBookings(t *testing.T) {
	b, _ := NewBook("cpu", 100)
	mustReserve(t, b, 0, 30, 40)
	mustReserve(t, b, 10, 40, 40)
	// Peak of 80 in [10, 30).
	if avail, _ := b.AvailableOver(0, 40); avail != 20 {
		t.Fatalf("avail = %v, want 20", avail)
	}
	if avail, _ := b.AvailableOver(30, 40); avail != 60 {
		t.Fatalf("tail avail = %v, want 60", avail)
	}
	if _, err := b.Reserve(5, 35, 30); !errors.Is(err, ErrInsufficient) {
		t.Fatal("booking through the peak must fail")
	}
	if _, err := b.Reserve(30, 35, 60); err != nil {
		t.Fatalf("booking after the peak failed: %v", err)
	}
}

func mustReserve(t *testing.T, b *Book, s, e broker.Time, amount float64) BookingID {
	t.Helper()
	id, err := b.Reserve(s, e, amount)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestBookValidation(t *testing.T) {
	if _, err := NewBook("", 1); err == nil {
		t.Fatal("empty resource accepted")
	}
	if _, err := NewBook("r", -1); err == nil {
		t.Fatal("negative capacity accepted")
	}
	b, _ := NewBook("r", 10)
	if _, err := b.Reserve(5, 5, 1); err == nil {
		t.Fatal("empty interval accepted")
	}
	if _, err := b.Reserve(5, 4, 1); err == nil {
		t.Fatal("inverted interval accepted")
	}
	if _, err := b.Reserve(0, 1, -1); err == nil {
		t.Fatal("negative amount accepted")
	}
	if _, err := b.AvailableOver(3, 3); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, err := b.Profile(3, 3); err == nil {
		t.Fatal("empty profile window accepted")
	}
}

func TestBookExpire(t *testing.T) {
	b, _ := NewBook("r", 100)
	mustReserve(t, b, 0, 10, 50)
	mustReserve(t, b, 5, 20, 30)
	if n := b.Expire(10); n != 1 {
		t.Fatalf("expired %d, want 1", n)
	}
	if b.Bookings() != 1 {
		t.Fatalf("bookings = %d", b.Bookings())
	}
	if avail, _ := b.AvailableOver(0, 10); avail != 70 {
		t.Fatalf("avail = %v after expiry", avail)
	}
}

func TestBookProfile(t *testing.T) {
	b, _ := NewBook("r", 100)
	mustReserve(t, b, 10, 30, 40)
	mustReserve(t, b, 20, 40, 20)
	steps, err := b.Profile(0, 50)
	if err != nil {
		t.Fatal(err)
	}
	want := []Step{
		{Start: 0, End: 10, Avail: 100},
		{Start: 10, End: 20, Avail: 60},
		{Start: 20, End: 30, Avail: 40},
		{Start: 30, End: 40, Avail: 80},
		{Start: 40, End: 50, Avail: 100},
	}
	if len(steps) != len(want) {
		t.Fatalf("steps = %+v", steps)
	}
	for i, s := range steps {
		if s != want[i] {
			t.Fatalf("step %d = %+v, want %+v", i, s, want[i])
		}
	}
}

func TestBookProfileCoalesces(t *testing.T) {
	b, _ := NewBook("r", 100)
	mustReserve(t, b, 10, 20, 40)
	mustReserve(t, b, 20, 30, 40)
	steps, _ := b.Profile(0, 40)
	// [10,20) and [20,30) have equal availability: one step.
	if len(steps) != 3 {
		t.Fatalf("steps = %+v", steps)
	}
	if steps[1].Start != 10 || steps[1].End != 30 || steps[1].Avail != 60 {
		t.Fatalf("merged step = %+v", steps[1])
	}
}

func TestBookConcurrentNoOverbooking(t *testing.T) {
	b, _ := NewBook("r", 100)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if id, err := b.Reserve(broker.Time(j), broker.Time(j+5), 30); err == nil {
					_ = b.Release(id)
				}
			}
		}()
	}
	wg.Wait()
	if b.Bookings() != 0 {
		t.Fatalf("leaked %d bookings", b.Bookings())
	}
}

func TestPropertyProfileNeverExceedsCapacity(t *testing.T) {
	f := func(ops []struct {
		S, D  uint8
		Amt   uint8
		Defer bool
	}) bool {
		b, _ := NewBook("r", 100)
		for _, op := range ops {
			s := broker.Time(op.S % 50)
			e := s + broker.Time(op.D%20) + 1
			_, _ = b.Reserve(s, e, float64(op.Amt%60))
		}
		steps, err := b.Profile(0, 100)
		if err != nil {
			return false
		}
		prevEnd := broker.Time(0)
		for _, st := range steps {
			if st.Avail < -1e-9 || st.Avail > 100+1e-9 {
				return false
			}
			if st.Start != prevEnd {
				return false // profile must tile the window
			}
			prevEnd = st.End
		}
		return prevEnd == 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAvailableOverEqualsProfileMin(t *testing.T) {
	f := func(ops []struct {
		S, D uint8
		Amt  uint8
	}, ws, wd uint8) bool {
		b, _ := NewBook("r", 100)
		for _, op := range ops {
			s := broker.Time(op.S % 50)
			e := s + broker.Time(op.D%20) + 1
			_, _ = b.Reserve(s, e, float64(op.Amt%60))
		}
		start := broker.Time(ws % 60)
		end := start + broker.Time(wd%20) + 1
		avail, err := b.AvailableOver(start, end)
		if err != nil {
			return false
		}
		steps, err := b.Profile(start, end)
		if err != nil {
			return false
		}
		min := math.Inf(1)
		for _, st := range steps {
			if st.Avail < min {
				min = st.Avail
			}
		}
		return math.Abs(avail-min) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryWindowSnapshotPlansSession(t *testing.T) {
	// An advance session planned against a future window, using the
	// video service: the contended window forces a different plan than
	// the idle one.
	reg := NewRegistry()
	for r := range workload.VideoSnapshot().Avail {
		if _, err := reg.Add(r, workload.VideoAvail); err != nil {
			t.Fatal(err)
		}
	}
	// Book most of the proxy CPU for [100, 200).
	proxyCPU, _ := reg.Get(workload.VideoResProxyCPU)
	if _, err := proxyCPU.Reserve(100, 200, 95); err != nil {
		t.Fatal(err)
	}

	plan := func(start, end broker.Time) *core.Plan {
		snap, err := reg.WindowSnapshot(start, end, reg.Resources())
		if err != nil {
			t.Fatal(err)
		}
		g, err := qrg.Build(workload.VideoService(), workload.VideoBinding(), snap)
		if err != nil {
			t.Fatal(err)
		}
		p, err := (core.Basic{}).Plan(g)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	idle := plan(0, 50)
	busy := plan(120, 180)
	if idle.EndToEnd.Name != "Qo" {
		t.Fatalf("idle window plan = %s", idle.EndToEnd.Name)
	}
	// With only 5 units of proxy CPU in the busy window, the paths that
	// need tracker CPU are gone; a lower QoS level or another path must
	// be chosen.
	if busy.EndToEnd.Name == "Qo" && busy.PathLevels == idle.PathLevels {
		t.Fatalf("busy window plan identical to idle: %s", busy.PathLevels)
	}

	// Book the plan and verify window isolation.
	booking, err := reg.ReserveAll(0, 50, idle.Requirement())
	if err != nil {
		t.Fatal(err)
	}
	after := plan(60, 90)
	if after.EndToEnd.Name != "Qo" {
		t.Fatalf("disjoint-window plan degraded: %s", after.EndToEnd.Name)
	}
	if err := booking.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryReserveAllRollsBack(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Add("a", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("b", 10); err != nil {
		t.Fatal(err)
	}
	_, err := reg.ReserveAll(0, 10, qos.ResourceVector{"a": 50, "b": 50})
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v", err)
	}
	a, _ := reg.Get("a")
	if a.Bookings() != 0 {
		t.Fatal("failed ReserveAll leaked a booking on a")
	}
	if _, err := reg.ReserveAll(0, 10, qos.ResourceVector{"a": 50, "ghost": 1}); err == nil {
		t.Fatal("unknown resource accepted")
	}
}

func TestRegistryBasics(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Add("a", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("a", 10); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, ok := reg.Get("a"); !ok {
		t.Fatal("Get(a) failed")
	}
	if rs := reg.Resources(); len(rs) != 1 || rs[0] != "a" {
		t.Fatalf("resources = %v", rs)
	}
	if _, err := reg.WindowSnapshot(0, 10, []string{"ghost"}); err == nil {
		t.Fatal("snapshot of unknown resource accepted")
	}
	b, _ := reg.Get("a")
	_, _ = b.Reserve(0, 5, 5)
	if n := reg.Expire(5); n != 1 {
		t.Fatalf("expired %d", n)
	}
	m, err := reg.ReserveAll(0, 10, qos.ResourceVector{"a": 5, "zero": 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Resources()) != 1 {
		t.Fatalf("booked = %v", m.Resources())
	}
	if err := m.Release(); err != nil {
		t.Fatal(err)
	}
}
