package advance

import (
	"errors"
	"testing"

	"qosres/internal/core"
	"qosres/internal/workload"
)

// videoAdmission builds an Admission over the video service with 100
// units of every resource.
func videoAdmission(t *testing.T) *Admission {
	t.Helper()
	reg := NewRegistry()
	for r := range workload.VideoSnapshot().Avail {
		if _, err := reg.Add(r, workload.VideoAvail); err != nil {
			t.Fatal(err)
		}
	}
	return &Admission{
		Registry: reg,
		Service:  workload.VideoService(),
		Binding:  workload.VideoBinding(),
		Planner:  core.Basic{},
	}
}

func TestAdmitBooksTheWindow(t *testing.T) {
	a := videoAdmission(t)
	plan, booking, err := a.Admit(100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if plan.EndToEnd.Name != "Qo" {
		t.Fatalf("plan = %s", plan.EndToEnd.Name)
	}
	// The same window replans at a different (or no) level; a disjoint
	// window is untouched.
	again, err := a.Plan(100, 200)
	if err == nil && again.PathLevels == plan.PathLevels && again.Psi == plan.Psi {
		t.Fatal("window not consumed by booking")
	}
	disjoint, err := a.Plan(300, 400)
	if err != nil {
		t.Fatal(err)
	}
	if disjoint.EndToEnd.Name != "Qo" {
		t.Fatalf("disjoint window degraded: %s", disjoint.EndToEnd.Name)
	}
	if err := booking.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestEarliestFeasibleSkipsCongestion(t *testing.T) {
	a := videoAdmission(t)
	// Saturate the server->proxy network for [0, 150).
	book, _ := a.Registry.Get(workload.VideoResNetSP)
	if _, err := book.Reserve(0, 150, 100); err != nil {
		t.Fatal(err)
	}
	start, plan, booking, err := a.EarliestFeasible(0, 300, 50, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if start < 150 {
		t.Fatalf("admitted at %g inside the congested span", float64(start))
	}
	if plan == nil || booking == nil {
		t.Fatal("missing plan or booking")
	}
	if err := booking.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestEarliestFeasibleMinRankWaitsForQuality(t *testing.T) {
	a := videoAdmission(t)
	// Drain most of the proxy CPU for [0, 100): low levels still fit but
	// the rank-5 plan (ψ 0.16 via proxy CPU or the Qe path) does not.
	book, _ := a.Registry.Get(workload.VideoResProxyCPU)
	if _, err := book.Reserve(0, 100, 95); err != nil {
		t.Fatal(err)
	}
	// Without a rank floor, admission lands inside the congestion at a
	// degraded level.
	s1, p1, b1, err := a.EarliestFeasible(0, 300, 40, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s1 >= 100 {
		t.Fatalf("rank-free admission waited until %g", float64(s1))
	}
	if p1.Rank >= 5 {
		t.Fatalf("congested window still delivered rank %d", p1.Rank)
	}
	if err := b1.Release(); err != nil {
		t.Fatal(err)
	}
	// With a rank floor of 5, admission waits for the clean window.
	s2, p2, b2, err := a.EarliestFeasible(0, 300, 40, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s2 < 100 {
		t.Fatalf("rank-5 admission landed at %g inside congestion", float64(s2))
	}
	if p2.Rank < 5 {
		t.Fatalf("rank floor violated: %d", p2.Rank)
	}
	if err := b2.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestEarliestFeasibleHorizonExhausted(t *testing.T) {
	a := videoAdmission(t)
	book, _ := a.Registry.Get(workload.VideoResNetPC)
	if _, err := book.Reserve(0, 10000, 100); err != nil {
		t.Fatal(err)
	}
	_, _, _, err := a.EarliestFeasible(0, 500, 50, 25, 0)
	if !errors.Is(err, ErrNoWindow) {
		t.Fatalf("err = %v, want ErrNoWindow", err)
	}
}

func TestEarliestFeasibleParamValidation(t *testing.T) {
	a := videoAdmission(t)
	if _, _, _, err := a.EarliestFeasible(0, 100, 50, 0, 0); err == nil {
		t.Fatal("zero step accepted")
	}
	if _, _, _, err := a.EarliestFeasible(0, 100, 0, 10, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, _, _, err := a.EarliestFeasible(0, -1, 50, 10, 0); err == nil {
		t.Fatal("negative horizon accepted")
	}
}

func TestAdmissionMissingPieces(t *testing.T) {
	a := &Admission{}
	if _, err := a.Plan(0, 10); err == nil {
		t.Fatal("empty admission accepted")
	}
}

func TestAdmitOverlappingSessionsDegrade(t *testing.T) {
	a := videoAdmission(t)
	var bookings []*MultiBooking
	ranks := []int{}
	for i := 0; i < 6; i++ {
		plan, booking, err := a.Admit(0, 100)
		if err != nil {
			break
		}
		ranks = append(ranks, plan.Rank)
		bookings = append(bookings, booking)
	}
	if len(ranks) < 2 {
		t.Fatalf("only %d sessions admitted", len(ranks))
	}
	// Ranks must be non-increasing as the window fills.
	for i := 1; i < len(ranks); i++ {
		if ranks[i] > ranks[i-1] {
			t.Fatalf("ranks not monotone: %v", ranks)
		}
	}
	for _, b := range bookings {
		if err := b.Release(); err != nil {
			t.Fatal(err)
		}
	}
	// Fully released: the window is pristine again.
	plan, err := a.Plan(0, 100)
	if err != nil || plan.EndToEnd.Name != "Qo" {
		t.Fatalf("window not restored: %v, %v", plan, err)
	}
}
