package transport

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: calls flow normally; consecutive failures are
	// counted.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe call is
	// let through to test the peer.
	BreakerHalfOpen
	// BreakerOpen: the failure threshold was reached; calls fail fast
	// until the cooldown elapses.
	BreakerOpen
)

// String renders the state for logs and test failures.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "unknown"
	}
}

// BreakerConfig parameterizes a circuit breaker.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that opens the
	// breaker; non-positive defaults to 3.
	Threshold int
	// Cooldown is how long an open breaker fails fast before allowing a
	// half-open probe; non-positive defaults to 500ms.
	Cooldown time.Duration
	// Now supplies the time; nil defaults to time.Now. Tests inject a
	// manual clock here.
	Now func() time.Time
}

// Breaker is a closed → open → half-open circuit breaker guarding calls
// to one peer. In the closed state, Threshold consecutive failures trip
// it open; open calls fail fast (Allow returns false) until Cooldown
// has elapsed, after which a single probe call is admitted (half-open).
// The probe's success closes the breaker; its failure re-opens it for
// another cooldown. Safe for concurrent use.
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
	onChange func(BreakerState)
}

// NewBreaker creates a closed breaker. onChange (may be nil) is invoked,
// outside the breaker lock, after every state transition.
func NewBreaker(cfg BreakerConfig, onChange func(BreakerState)) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 500 * time.Millisecond
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg, onChange: onChange}
}

// State returns the breaker's current position, accounting for an
// elapsed cooldown (an open breaker past its cooldown reports
// half-open).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// Allow reports whether a call may proceed. Open: false until the
// cooldown elapses, then exactly one caller wins the half-open probe
// slot; the rest keep failing fast until the probe resolves.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default: // BreakerOpen
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.transitionLocked(BreakerHalfOpen)
		b.probing = true
		return true
	}
}

// Success records a completed call: a half-open probe's success (or any
// closed-state success) resets the breaker to closed.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	if b.state != BreakerClosed {
		b.transitionLocked(BreakerClosed)
	}
}

// Failure records a failed call. In the closed state it counts toward
// the threshold; a half-open probe's failure re-opens immediately.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		b.openedAt = b.cfg.Now()
		b.transitionLocked(BreakerOpen)
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.openedAt = b.cfg.Now()
			b.transitionLocked(BreakerOpen)
		}
	default: // already open (e.g. a losing racer's failure); keep it open
	}
}

// transitionLocked flips the state and schedules the change callback.
// The callback runs on a fresh goroutine so a metrics sink can never
// deadlock against the breaker lock.
func (b *Breaker) transitionLocked(to BreakerState) {
	b.state = to
	if b.onChange != nil {
		fn := b.onChange
		go fn(to)
	}
}
