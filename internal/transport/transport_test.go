package transport

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// echoEndpoint registers addr and serves it with a goroutine replying
// fn(payload) to every delivery; cleanup stops it.
func echoEndpoint(t *testing.T, f *Fabric, addr Addr, fn func(interface{}) interface{}) *Endpoint {
	t.Helper()
	ep := f.Endpoint(addr, 16)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			case d := <-ep.Inbox():
				d.Reply(fn(d.Payload))
				d.Done()
			}
		}
	}()
	t.Cleanup(func() {
		close(done)
		wg.Wait()
	})
	return ep
}

func TestPerfectFabricRoundTrip(t *testing.T) {
	f := New(Options{})
	f.Endpoint("a", 1)
	echoEndpoint(t, f, "b", func(p interface{}) interface{} { return p.(int) * 2 })
	resp, err := f.Call(context.Background(), "a", "b", "test", 21)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if resp != 42 {
		t.Fatalf("resp = %v, want 42", resp)
	}
}

func TestCallUnknownEndpoint(t *testing.T) {
	f := New(Options{})
	f.Endpoint("a", 1)
	if _, err := f.Call(context.Background(), "a", "nowhere", "test", 1); !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("err = %v, want ErrNoEndpoint", err)
	}
}

func TestLoopbackBypassesChaos(t *testing.T) {
	// A fully lossy, partitioned fabric must still deliver loopback
	// calls: the proxy talking to itself never crosses the network.
	f := New(Options{Defaults: RouteConfig{Loss: 1}})
	echoEndpoint(t, f, "a", func(p interface{}) interface{} { return "ok" })
	f.Partition("a", "a")
	resp, err := f.Call(context.Background(), "a", "a", "test", nil)
	if err != nil {
		t.Fatalf("loopback Call: %v", err)
	}
	if resp != "ok" {
		t.Fatalf("resp = %v, want ok", resp)
	}
}

func TestPartitionDropsAndHealRestores(t *testing.T) {
	f := New(Options{})
	f.Endpoint("a", 1)
	echoEndpoint(t, f, "b", func(p interface{}) interface{} { return "pong" })

	f.Partition("a", "b")
	if !f.Partitioned("a", "b") || !f.Partitioned("b", "a") {
		t.Fatal("partition is not symmetric")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := f.Call(ctx, "a", "b", "test", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("partitioned call err = %v, want deadline", err)
	}

	f.Heal("a", "b")
	if f.Partitioned("a", "b") {
		t.Fatal("still partitioned after Heal")
	}
	if _, err := f.Call(context.Background(), "a", "b", "test", nil); err != nil {
		t.Fatalf("healed call: %v", err)
	}
}

func TestTotalLossTimesOut(t *testing.T) {
	f := New(Options{Seed: 1, Defaults: RouteConfig{Loss: 1}})
	f.Endpoint("a", 1)
	echoEndpoint(t, f, "b", func(p interface{}) interface{} { return "pong" })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := f.Call(ctx, "a", "b", "test", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("lossy call err = %v, want deadline", err)
	}
}

func TestDuplicationDeliversTwiceCallReturnsOnce(t *testing.T) {
	f := New(Options{Seed: 1, Defaults: RouteConfig{Dup: 1}})
	f.Endpoint("a", 1)
	var mu sync.Mutex
	deliveries := 0
	echoEndpoint(t, f, "b", func(p interface{}) interface{} {
		mu.Lock()
		deliveries++
		mu.Unlock()
		return "pong"
	})
	resp, err := f.Call(context.Background(), "a", "b", "test", nil)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if resp != "pong" {
		t.Fatalf("resp = %v", resp)
	}
	f.Settle()
	// Settle guarantees both copies reached the inbox; the serving
	// goroutine drains them asynchronously.
	deadline := time.Now().Add(time.Second)
	for {
		mu.Lock()
		n := deliveries
		mu.Unlock()
		if n == 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("deliveries = %d, want 2 (request duplicated)", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	const lat = 30 * time.Millisecond
	f := New(Options{Defaults: RouteConfig{Latency: lat}})
	f.Endpoint("a", 1)
	echoEndpoint(t, f, "b", func(p interface{}) interface{} { return "pong" })
	start := time.Now()
	if _, err := f.Call(context.Background(), "a", "b", "test", nil); err != nil {
		t.Fatalf("Call: %v", err)
	}
	// Request and reply each cross the route once.
	if el := time.Since(start); el < 2*lat {
		t.Fatalf("round trip %v, want >= %v", el, 2*lat)
	}
}

func TestSetRouteOverridesDefaults(t *testing.T) {
	f := New(Options{Defaults: RouteConfig{Loss: 1}})
	f.Endpoint("a", 1)
	echoEndpoint(t, f, "b", func(p interface{}) interface{} { return "pong" })
	f.SetRoute("a", "b", RouteConfig{}) // perfect override
	if _, err := f.Call(context.Background(), "a", "b", "test", nil); err != nil {
		t.Fatalf("overridden route call: %v", err)
	}
	f.ClearRoutes()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := f.Call(ctx, "a", "b", "test", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cleared route err = %v, want deadline (defaults lossy)", err)
	}
}

func TestClosedEndpointFailsCalls(t *testing.T) {
	f := New(Options{})
	f.Endpoint("a", 1)
	ep := f.Endpoint("b", 1) // registered, never served
	ep.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := f.Call(ctx, "a", "b", "test", nil)
	if err == nil {
		t.Fatal("call to closed endpoint succeeded")
	}
}

func TestReRegisterReplacesEndpoint(t *testing.T) {
	f := New(Options{})
	f.Endpoint("a", 1)
	old := f.Endpoint("b", 1)
	old.Close()
	// A restart re-registers the address; calls must reach the new
	// endpoint, not the closed one.
	echoEndpoint(t, f, "b", func(p interface{}) interface{} { return "new" })
	resp, err := f.Call(context.Background(), "a", "b", "test", nil)
	if err != nil {
		t.Fatalf("Call after re-register: %v", err)
	}
	if resp != "new" {
		t.Fatalf("resp = %v, want new", resp)
	}
}

func TestDeterministicChaos(t *testing.T) {
	// Same seed + same call sequence => identical loss pattern.
	run := func(seed int64) []bool {
		f := New(Options{Seed: seed, Defaults: RouteConfig{Loss: 0.5}})
		f.Endpoint("a", 1)
		echoEndpoint(t, f, "b", func(p interface{}) interface{} { return "pong" })
		var outcomes []bool
		for i := 0; i < 32; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
			_, err := f.Call(ctx, "a", "b", "test", i)
			cancel()
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged between identical seeds", i)
		}
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	now := time.Unix(0, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second, Now: clock}, nil)
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused call %d", i)
		}
		b.Failure()
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after threshold failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call inside cooldown")
	}
	advance(time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v after cooldown, want half-open", b.State())
	}
	// Exactly one probe wins the half-open slot.
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}
	// Probe failure re-opens for another cooldown.
	b.Failure()
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("failed probe did not re-open the breaker")
	}
	advance(time.Second)
	if !b.Allow() {
		t.Fatal("re-cooled breaker refused the probe")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after probe success, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a call")
	}
}

func TestFabricBreakerFastFails(t *testing.T) {
	now := time.Unix(0, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	f := New(Options{
		Defaults: RouteConfig{Loss: 1},
		Breaker:  &BreakerConfig{Threshold: 2, Cooldown: time.Hour, Now: clock},
	})
	f.Endpoint("a", 1)
	echoEndpoint(t, f, "b", func(p interface{}) interface{} { return "pong" })

	for i := 0; i < 2; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		_, err := f.Call(ctx, "a", "b", "test", nil)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("call %d err = %v, want deadline", i, err)
		}
	}
	// Threshold reached: the next call fails fast, without burning its
	// deadline.
	start := time.Now()
	_, err := f.Call(context.Background(), "a", "b", "test", nil)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("fast-fail was not fast")
	}
	if f.BreakerState("a", "b") != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", f.BreakerState("a", "b"))
	}
	// The reverse direction has its own breaker, still closed.
	if f.BreakerState("b", "a") != BreakerClosed {
		t.Fatalf("reverse breaker state = %v, want closed", f.BreakerState("b", "a"))
	}
}

func TestGateShedsBeyondLimit(t *testing.T) {
	g := NewGate(2)
	if err := g.TryAcquire(); err != nil {
		t.Fatalf("acquire 1: %v", err)
	}
	if err := g.TryAcquire(); err != nil {
		t.Fatalf("acquire 2: %v", err)
	}
	if err := g.TryAcquire(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("acquire 3 err = %v, want ErrOverloaded", err)
	}
	g.Release()
	if err := g.TryAcquire(); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	if got := g.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
}

func TestGateUnboundedByDefault(t *testing.T) {
	g := NewGate(0)
	for i := 0; i < 100; i++ {
		if err := g.TryAcquire(); err != nil {
			t.Fatalf("unbounded gate refused acquire %d: %v", i, err)
		}
	}
}

func TestSettleWaitsForDelayedDeliveries(t *testing.T) {
	f := New(Options{Defaults: RouteConfig{Latency: 20 * time.Millisecond}})
	f.Endpoint("a", 1)
	var mu sync.Mutex
	delivered := 0
	echoEndpoint(t, f, "b", func(p interface{}) interface{} {
		mu.Lock()
		delivered++
		mu.Unlock()
		return nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	_, _ = f.Call(ctx, "a", "b", "test", nil) // times out before delivery
	cancel()
	f.Settle()
	// Settle guarantees the fabric handed the straggler to the inbox;
	// give the serving goroutine a moment to drain it.
	deadline := time.Now().Add(time.Second)
	for {
		mu.Lock()
		n := delivered
		mu.Unlock()
		if n == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered = %d after Settle, want 1 (straggler landed)", n)
		}
		time.Sleep(time.Millisecond)
	}
}
