package transport

import (
	"errors"
	"sync"
)

// ErrOverloaded is returned when a bounded in-flight gate refuses new
// work: the runtime is saturated and sheds the request instead of
// queueing it unboundedly. Callers should treat it like an admission
// refusal — back off and retry, or fail the request upward.
var ErrOverloaded = errors.New("transport: overloaded, request shed")

// Gate is a bounded in-flight admission gate: at most max acquisitions
// may be outstanding at once; excess TryAcquire calls are refused
// immediately with ErrOverloaded rather than queued. The zero max means
// unbounded (the gate always admits). Safe for concurrent use.
type Gate struct {
	mu       sync.Mutex
	max      int
	inflight int
}

// NewGate creates a gate admitting at most max concurrent holders;
// max <= 0 means unbounded.
func NewGate(max int) *Gate {
	if max < 0 {
		max = 0
	}
	return &Gate{max: max}
}

// TryAcquire claims a slot or returns ErrOverloaded, never blocking.
func (g *Gate) TryAcquire() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.max > 0 && g.inflight >= g.max {
		return ErrOverloaded
	}
	g.inflight++
	return nil
}

// Release returns a slot claimed by TryAcquire.
func (g *Gate) Release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inflight > 0 {
		g.inflight--
	}
}

// InFlight reports the current number of outstanding acquisitions.
func (g *Gate) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight
}
