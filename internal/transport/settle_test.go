package transport

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"qosres/internal/obs"
)

// TestSettleWaitsForInboxConsumer pins the drain barrier against the
// reply-before-done window: a consumer that replies first and keeps
// mutating state afterwards is still "in flight" until it calls Done,
// and Settle must not return before that.
func TestSettleWaitsForInboxConsumer(t *testing.T) {
	f := New(Options{})
	ep := f.Endpoint("A", 4)
	var handled atomic.Bool
	go func() {
		for {
			select {
			case d := <-ep.Inbox():
				d.Reply("ok")
				// The reply races ahead of the rest of the handler's work —
				// exactly the window where a settler could observe a
				// half-mutated book.
				time.Sleep(30 * time.Millisecond)
				handled.Store(true)
				d.Done()
			case <-ep.Done():
				return
			}
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := f.Call(ctx, "B", "A", "work", 1); err != nil {
		t.Fatal(err)
	}
	f.Settle()
	if !handled.Load() {
		t.Fatal("Settle returned while an inbox delivery was still being handled")
	}
}

// TestSettleExcludesClosedEndpoints proves a crash cannot wedge the
// barrier: deliveries stranded in a closed endpoint's inbox died with
// its host, so Settle stops waiting on them.
func TestSettleExcludesClosedEndpoints(t *testing.T) {
	f := New(Options{})
	ep := f.Endpoint("C", 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	// No consumer drains C: the delivery queues, the call times out.
	if _, err := f.Call(ctx, "B", "C", "work", 1); err == nil {
		t.Fatal("call against a consumerless endpoint should time out")
	}
	settled := make(chan struct{})
	go func() {
		f.Settle()
		close(settled)
	}()
	select {
	case <-settled:
		t.Fatal("Settle ignored a queued delivery on an open endpoint")
	case <-time.After(30 * time.Millisecond):
	}
	ep.Close() // the host crashes; its queue dies with it
	select {
	case <-settled:
	case <-time.After(2 * time.Second):
		t.Fatal("Settle wedged on a closed endpoint's stranded queue")
	}
}

// TestFastLaneParity proves handler-answered calls hit the same
// observability surface as inbox-served ones: one
// qosres_transport_call_seconds observation per call either way, and
// both are settled when Settle returns.
func TestFastLaneParity(t *testing.T) {
	reg := obs.New()
	f := New(Options{Metrics: obs.NewTransportMetrics(reg)})
	fast := f.Endpoint("F", 4)
	fast.SetHandler("probe", func(d Delivery) bool {
		d.Reply("fast")
		return true
	})
	slow := f.Endpoint("S", 4)
	go func() {
		for {
			select {
			case d := <-slow.Inbox():
				d.Reply("slow")
				d.Done()
			case <-slow.Done():
				return
			}
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for _, to := range []Addr{"F", "S"} {
		if _, err := f.Call(ctx, "B", to, "probe", nil); err != nil {
			t.Fatalf("call to %s: %v", to, err)
		}
	}
	for _, route := range []string{"B->F", "B->S"} {
		h := reg.Histogram(obs.MetricTransportCallSeconds, "", obs.StageBuckets(),
			"route", route, "kind", "probe")
		if got := h.Count(); got != 1 {
			t.Errorf("route %s recorded %d call observations, want 1", route, got)
		}
	}
	settled := make(chan struct{})
	go func() {
		f.Settle()
		close(settled)
	}()
	select {
	case <-settled:
	case <-time.After(2 * time.Second):
		t.Fatal("Settle wedged after fast-lane and inbox calls completed")
	}
}
