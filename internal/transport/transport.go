// Package transport is the message-passing fabric between the QoSProxies
// of a runtime deployment. The paper's runtime is genuinely distributed —
// per-host QoSProxies and Resource Brokers exchange RSVP-style signaling
// messages — so the protocol implementation must survive what real
// networks do to messages: delay, loss, duplication, and partitions.
//
// The fabric routes request/reply calls between named endpoints. Every
// route (unordered host pair) carries an injectable RouteConfig: a
// per-delivery latency, a loss probability, and a duplication
// probability, all driven by one seeded RNG so chaos runs are
// reproducible for a fixed seed and call sequence. Routes can further be
// partitioned (every message silently dropped) and healed at runtime,
// which is how the fault injector models network splits.
//
// Two protection mechanisms guard the callers:
//
//   - a per-route circuit breaker (closed → open → half-open, see
//     breaker.go) stops a caller from hammering a peer whose calls keep
//     timing out — an open breaker fails calls fast until a cooldown
//     elapses and a single half-open probe succeeds;
//   - a bounded in-flight gate (see gate.go) lets a runtime shed
//     admission work with an explicit ErrOverloaded instead of queueing
//     unboundedly under overload.
//
// Loopback calls (from == to) model the proxy talking to itself and
// never cross the simulated network: they are delivered reliably with no
// loss, latency, duplication, or breaker accounting.
package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qosres/internal/obs"
)

// Addr names a fabric endpoint — in the runtime deployment, a host ID.
type Addr string

var (
	// ErrNoEndpoint is returned by Call when the destination address has
	// no registered endpoint.
	ErrNoEndpoint = errors.New("transport: no endpoint at address")
	// ErrCircuitOpen is returned by Call when the route's circuit
	// breaker is open: the peer's recent calls kept failing and the
	// cooldown has not elapsed, so the call is failed fast instead of
	// waiting out another deadline.
	ErrCircuitOpen = errors.New("transport: circuit open")
	// ErrClosed is returned by Call when the destination endpoint has
	// been closed (its host was shut down).
	ErrClosed = errors.New("transport: endpoint closed")
)

// RouteConfig is the injectable unreliability of one route (unordered
// pair of endpoints). The zero value is a perfect route: instant,
// lossless, exactly-once.
type RouteConfig struct {
	// Latency is the wall-clock one-way delivery delay applied to every
	// message (and every reply) on the route.
	Latency time.Duration
	// Loss is the per-delivery probability in [0, 1] that a message (or
	// a reply) is silently dropped.
	Loss float64
	// Dup is the per-delivery probability in [0, 1] that a message (or a
	// reply) is delivered twice.
	Dup float64
}

// Options configures a Fabric.
type Options struct {
	// Seed drives the loss/duplication rolls. The zero seed is valid
	// (and, with zero Defaults and no per-route overrides, never
	// consulted).
	Seed int64
	// Defaults is the RouteConfig of every route without an override.
	Defaults RouteConfig
	// Breaker, when non-nil, arms a circuit breaker on every non-loopback
	// route.
	Breaker *BreakerConfig
	// Metrics, when non-nil, receives message/drop/dup/timeout/breaker
	// counters. A nil value (or one built from a nil registry) records
	// nothing at no cost.
	Metrics *obs.TransportMetrics
}

// pair is an unordered endpoint pair, the key of route state.
type pair [2]Addr

func norm(a, b Addr) pair {
	if b < a {
		a, b = b, a
	}
	return pair{a, b}
}

// Delivery is one inbound message at an endpoint.
type Delivery struct {
	// From is the sender's address.
	From Addr
	// Kind is the message family the caller passed to Call.
	Kind string
	// Span is the caller's span context, carried inside the message so
	// the receiver can causally parent its own spans under the caller's
	// even across loss and duplication. Zero when the caller's trace is
	// not being recorded.
	Span obs.SpanContext
	// Dup marks the second copy of a duplicated delivery: receivers
	// should suppress it for tracing purposes (annotate a
	// duplicate-suppressed event instead of opening a second span).
	Dup bool
	// Payload is the message body.
	Payload interface{}
	reply   func(interface{})
	ack     *doneHook
}

// doneHook is the once-only completion callback of an inbox-queued
// delivery. It is a pointer because Delivery is passed by value: every
// copy (including the duplicated-delivery copy) must share one ack.
type doneHook struct {
	once sync.Once
	fn   func()
}

// Done marks the delivery fully processed. Inbox consumers must call it
// after handling each delivery (deferring is fine): Settle's drain
// barrier counts a queued delivery as in flight until its Done, so a
// handler still mutating state cannot race a settler's invariant check.
// Idempotent, and a no-op on fast-lane and hand-constructed deliveries.
func (d Delivery) Done() {
	if d.ack != nil {
		d.ack.once.Do(d.ack.fn)
	}
}

// Reply sends the response back to the caller over the fabric. The
// reply crosses the same route as the request, so it too can be lost,
// delayed, or duplicated. Replying to a one-way message is a no-op.
func (d Delivery) Reply(payload interface{}) {
	if d.reply != nil {
		d.reply(payload)
	}
}

// Endpoint is one registered fabric address: a bounded inbox of
// deliveries plus a close signal, and an optional set of per-kind fast
// lane handlers that bypass the inbox entirely (see SetHandler).
type Endpoint struct {
	addr  Addr
	inbox chan Delivery
	done  chan struct{}
	once  sync.Once
	// queued counts deliveries sitting in (or being handled off) the
	// inbox whose Done has not run yet; Settle waits for it to drain on
	// every open endpoint.
	queued atomic.Int64

	hmu      sync.Mutex
	handlers atomic.Pointer[map[string]func(Delivery) bool]
}

// Addr returns the endpoint's address.
func (e *Endpoint) Addr() Addr { return e.addr }

// Inbox returns the delivery channel the endpoint's owner must drain.
func (e *Endpoint) Inbox() <-chan Delivery { return e.inbox }

// Done is closed when the endpoint closes; inbox-drain loops select on
// it to stop.
func (e *Endpoint) Done() <-chan struct{} { return e.done }

// Close marks the endpoint down: pending and future deliveries to it are
// dropped. Idempotent.
func (e *Endpoint) Close() {
	e.once.Do(func() { close(e.done) })
}

// SetHandler registers a fast-lane handler for one message kind:
// matching deliveries are handed to h directly instead of queueing
// through the inbox and the owner's serve goroutine. The fabric's chaos
// (partition, loss, duplication, latency) is applied before dispatch,
// so a fast-lane message suffers exactly the adversities an inbox
// message would.
//
// The contract is strict: h runs on the DELIVERING goroutine — the
// caller's own goroutine for zero-latency routes and loopback — so it
// must never block and must be safe for concurrent invocation. h
// returns true when it consumed the delivery (replied or deliberately
// dropped it) and false to decline: a declined delivery falls back to
// the inbox path and queues for the owner's serve goroutine exactly as
// if no handler were registered, preserving FIFO ordering behind
// whatever the serve loop is doing. Handlers are meant for read-mostly
// request kinds whose work is wait-free (availability queries); state
// mutations stay on the serve loop.
func (e *Endpoint) SetHandler(kind string, h func(Delivery) bool) {
	e.hmu.Lock()
	defer e.hmu.Unlock()
	old := e.handlers.Load()
	next := make(map[string]func(Delivery) bool, 2)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	next[kind] = h
	e.handlers.Store(&next)
}

// dispatch hands d to its kind's fast-lane handler, reporting false
// when no handler is registered, the handler declines the delivery
// (either way it then takes the inbox path), or the endpoint is closed
// (the delivery is dropped like an inbox delivery to a closed endpoint
// would be — the caller observes a missing reply, not an error).
func (e *Endpoint) dispatch(d Delivery) bool {
	m := e.handlers.Load()
	if m == nil {
		return false
	}
	h, ok := (*m)[d.Kind]
	if !ok {
		return false
	}
	select {
	case <-e.done:
		return false
	default:
	}
	return h(d)
}

// Fabric routes messages between endpoints with injectable per-route
// unreliability. Safe for concurrent use.
type Fabric struct {
	mu          sync.Mutex
	rng         *rand.Rand
	defaults    RouteConfig
	endpoints   map[Addr]*Endpoint
	routes      map[pair]RouteConfig
	partitioned map[pair]bool
	breakerCfg  *BreakerConfig
	breakers    map[[2]Addr]*Breaker // keyed by ordered (from, to)
	metrics     *obs.TransportMetrics
	// pending counts asynchronous (delayed or duplicated) deliveries in
	// flight; settleCh, when non-nil, is closed as pending hits zero so
	// Settle can wait for the fabric to drain. A plain WaitGroup cannot
	// express this: a delivered message's reply may legitimately start a
	// new asynchronous send while a settler waits, which is Add-after-Wait.
	pending  int
	settleCh chan struct{}
}

// New creates a fabric. With zero Options the fabric is perfect: every
// call is delivered instantly, exactly once, with no breaker in the way.
func New(opts Options) *Fabric {
	m := opts.Metrics
	if m == nil {
		m = &obs.TransportMetrics{}
	}
	return &Fabric{
		rng:         rand.New(rand.NewSource(opts.Seed)),
		defaults:    opts.Defaults,
		endpoints:   make(map[Addr]*Endpoint),
		routes:      make(map[pair]RouteConfig),
		partitioned: make(map[pair]bool),
		breakerCfg:  opts.Breaker,
		breakers:    make(map[[2]Addr]*Breaker),
		metrics:     m,
	}
}

// Endpoint registers (or re-registers) the address and returns its
// endpoint. Re-registering replaces the previous endpoint — the fabric
// equivalent of a host process restarting — so a stopped runtime can be
// started again.
func (f *Fabric) Endpoint(addr Addr, depth int) *Endpoint {
	if depth < 1 {
		depth = 1
	}
	ep := &Endpoint{
		addr:  addr,
		inbox: make(chan Delivery, depth),
		done:  make(chan struct{}),
	}
	f.mu.Lock()
	f.endpoints[addr] = ep
	f.mu.Unlock()
	return ep
}

// endpoint resolves an address.
func (f *Fabric) endpoint(addr Addr) (*Endpoint, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ep, ok := f.endpoints[addr]
	return ep, ok
}

// SetRoute overrides the route config of the unordered pair (a, b).
func (f *Fabric) SetRoute(a, b Addr, cfg RouteConfig) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.routes[norm(a, b)] = cfg
}

// Route returns the effective config of the route (a, b).
func (f *Fabric) Route(a, b Addr) RouteConfig {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.routeLocked(a, b)
}

func (f *Fabric) routeLocked(a, b Addr) RouteConfig {
	if cfg, ok := f.routes[norm(a, b)]; ok {
		return cfg
	}
	return f.defaults
}

// ClearRoutes drops every per-route override, restoring the defaults —
// the heal-side of delay injection.
func (f *Fabric) ClearRoutes() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.routes = make(map[pair]RouteConfig)
}

// Partition cuts the route between a and b in both directions: every
// message and reply between them is silently dropped until Heal.
func (f *Fabric) Partition(a, b Addr) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partitioned[norm(a, b)] = true
}

// Heal removes the partition between a and b.
func (f *Fabric) Heal(a, b Addr) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.partitioned, norm(a, b))
}

// HealAll removes every partition.
func (f *Fabric) HealAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partitioned = make(map[pair]bool)
}

// Partitioned reports whether the route between a and b is cut.
func (f *Fabric) Partitioned(a, b Addr) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.partitioned[norm(a, b)]
}

// Partitions lists the currently-cut routes, sorted.
func (f *Fabric) Partitions() [][2]Addr {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([][2]Addr, 0, len(f.partitioned))
	for p := range f.partitioned {
		out = append(out, [2]Addr(p))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// breaker returns the breaker guarding calls from one endpoint to
// another, creating it on first use; nil when breakers are disabled.
func (f *Fabric) breaker(from, to Addr) *Breaker {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.breakerCfg == nil {
		return nil
	}
	key := [2]Addr{from, to}
	br, ok := f.breakers[key]
	if !ok {
		route := string(from) + "->" + string(to)
		m := f.metrics
		br = NewBreaker(*f.breakerCfg, func(s BreakerState) {
			m.BreakerState(route, float64(s))
		})
		f.breakers[key] = br
	}
	return br
}

// BreakerState reports the state of the breaker on (from, to);
// BreakerClosed when breakers are disabled or the route was never used.
func (f *Fabric) BreakerState(from, to Addr) BreakerState {
	f.mu.Lock()
	defer f.mu.Unlock()
	if br, ok := f.breakers[[2]Addr{from, to}]; ok {
		return br.State()
	}
	return BreakerClosed
}

// Settle blocks until every asynchronous (delayed or duplicated)
// delivery has been handed to its destination or dropped AND every
// inbox-queued delivery on an open endpoint has been handled to
// completion (its consumer called Done), looping until both counts are
// stably zero (a landing delivery's reply may start new asynchronous
// sends). Handler-answered fast-lane calls complete synchronously
// inside the delivering send, so they are covered by the same barrier.
// Deliveries stranded in a closed endpoint's inbox died with its host
// and are excluded. Chaos harnesses call Settle before checking drain
// invariants so no straggler handler can mutate the books after they
// are inspected.
func (f *Fabric) Settle() {
	for {
		f.mu.Lock()
		if f.drainedLocked() {
			f.mu.Unlock()
			return
		}
		if f.settleCh == nil {
			f.settleCh = make(chan struct{})
		}
		ch := f.settleCh
		f.mu.Unlock()
		// The poll guards the one unsignalled transition: an endpoint
		// closing (host crash) with deliveries still queued — those Dones
		// never come, and Close has no fabric reference to wake us.
		select {
		case <-ch:
		case <-time.After(time.Millisecond):
		}
	}
}

// drainedLocked reports whether no delivery is in flight: none pending
// asynchronously and none queued-but-unfinished on any open endpoint.
// Callers hold f.mu.
func (f *Fabric) drainedLocked() bool {
	if f.pending != 0 {
		return false
	}
	for _, ep := range f.endpoints {
		select {
		case <-ep.done:
			continue
		default:
		}
		if ep.queued.Load() != 0 {
			return false
		}
	}
	return true
}

// track registers one asynchronous delivery; untrack retires it and
// wakes settlers when the fabric drains.
func (f *Fabric) track() {
	f.mu.Lock()
	f.pending++
	f.mu.Unlock()
}

func (f *Fabric) untrack() {
	f.mu.Lock()
	f.pending--
	f.wakeLocked()
	f.mu.Unlock()
}

// wakeLocked releases settlers when the fabric has drained.
func (f *Fabric) wakeLocked() {
	if f.settleCh != nil && f.drainedLocked() {
		close(f.settleCh)
		f.settleCh = nil
	}
}

// queueHook charges one inbox-queued delivery to ep and returns the ack
// that retires it. The consumer's Done (or the enqueue failure path)
// must run it exactly once.
func (f *Fabric) queueHook(ep *Endpoint) *doneHook {
	ep.queued.Add(1)
	return &doneHook{fn: func() {
		ep.queued.Add(-1)
		f.mu.Lock()
		f.wakeLocked()
		f.mu.Unlock()
	}}
}

// Call sends payload from one endpoint to another and waits for the
// reply or the context. The request and the reply each independently
// suffer the route's latency, loss, and duplication; a partitioned or
// lossy route therefore surfaces as ctx expiry, never as an unbounded
// block — which is why every caller must bound ctx when the fabric is
// imperfect. kind labels the message family in the metrics.
func (f *Fabric) Call(ctx context.Context, from, to Addr, kind string, payload interface{}) (interface{}, error) {
	ep, ok := f.endpoint(to)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoEndpoint, to)
	}
	f.metrics.Sent(kind)

	// Per-call tracing and latency: both are inert (no clock read, no
	// route-string allocation) unless the caller's trace is recorded or
	// call-latency metrics are on.
	caller := obs.SpanFromContext(ctx)
	timed := caller.Recording() || f.metrics.Enabled()
	var route string
	var start time.Time
	if timed {
		route = string(from) + "->" + string(to)
		start = time.Now()
	}
	cs := caller.Child(kind, route)
	finish := func(status string) {
		if timed {
			f.metrics.Call(route, kind, time.Since(start).Seconds())
		}
		cs.EndStatus(status)
	}

	if from == to {
		// Loopback: the proxy talking to itself never crosses the
		// network. Reliable, instant, breaker-free. A registered fast
		// lane handler runs inline on this goroutine; otherwise the
		// delivery queues through the inbox.
		replyCh := make(chan interface{}, 1)
		d := Delivery{From: from, Kind: kind, Span: cs.Context(), Payload: payload,
			reply: func(resp interface{}) {
				select {
				case replyCh <- resp:
				default:
				}
			}}
		if !ep.dispatch(d) {
			d.ack = f.queueHook(ep)
			select {
			case ep.inbox <- d:
			case <-ep.done:
				d.Done()
				finish("closed")
				return nil, fmt.Errorf("transport: %s: %w", to, ErrClosed)
			case <-ctx.Done():
				d.Done()
				f.metrics.Timeout()
				finish("timeout")
				return nil, fmt.Errorf("transport: call %s->%s (%s): %w", from, to, kind, ctx.Err())
			}
		}
		select {
		case resp := <-replyCh:
			finish(obs.StatusOK)
			return resp, nil
		case <-ep.done:
			// The endpoint crashed under the call. A reply that raced the
			// close still counts; otherwise the queued delivery died with
			// the process and no answer will ever come.
			select {
			case resp := <-replyCh:
				finish(obs.StatusOK)
				return resp, nil
			default:
			}
			finish("closed")
			return nil, fmt.Errorf("transport: %s: %w", to, ErrClosed)
		case <-ctx.Done():
			f.metrics.Timeout()
			finish("timeout")
			return nil, fmt.Errorf("transport: call %s->%s (%s): %w", from, to, kind, ctx.Err())
		}
	}

	br := f.breaker(from, to)
	if br != nil && !br.Allow() {
		f.metrics.FastFail()
		// The refused call still records a terminated child span so the
		// trace tree stays complete (no orphan roots on shed sessions).
		cs.Event(obs.EventBreakerFastFail, route)
		finish("circuit_open")
		return nil, fmt.Errorf("transport: %s->%s: %w", from, to, ErrCircuitOpen)
	}

	// The reply channel holds two slots so a duplicated reply never
	// blocks the replier; Call consumes the first copy.
	replyCh := make(chan interface{}, 2)
	d := Delivery{From: from, Kind: kind, Span: cs.Context(), Payload: payload,
		reply: func(resp interface{}) {
			if reason := f.send(to, from, func(bool) bool {
				select {
				case replyCh <- resp:
				default:
				}
				return true
			}); reason != "" {
				cs.Event(dropEvent(reason), "reply")
			}
		}}
	reqDrop := f.send(from, to, func(dup bool) bool {
		dd := d
		dd.Dup = dup
		// Fast lane first: the route's chaos has already been applied
		// by send, so a handler sees exactly the deliveries (and
		// duplicate copies) the inbox would have.
		if ep.dispatch(dd) {
			return true
		}
		dd.ack = f.queueHook(ep)
		select {
		case ep.inbox <- dd:
			return true
		case <-ep.done:
			dd.Done()
			return false
		}
	})
	if reqDrop != "" {
		cs.Event(dropEvent(reqDrop), "request")
	}

	select {
	case resp := <-replyCh:
		if br != nil {
			br.Success()
		}
		finish(obs.StatusOK)
		return resp, nil
	case <-ep.done:
		// The destination crashed under the call: its queue died with
		// the process, so without a caller deadline the reply would
		// never come. A reply that raced the close still counts.
		select {
		case resp := <-replyCh:
			if br != nil {
				br.Success()
			}
			finish(obs.StatusOK)
			return resp, nil
		default:
		}
		if br != nil {
			br.Failure()
		}
		finish("closed")
		return nil, fmt.Errorf("transport: %s: %w", to, ErrClosed)
	case <-ctx.Done():
		if br != nil {
			br.Failure()
		}
		f.metrics.Timeout()
		// Terminate the span with the most specific known cause: a
		// request leg dropped by a partition or the loss knob explains
		// the missing reply better than a bare timeout.
		switch reqDrop {
		case "partition", "loss":
			finish(reqDrop)
		default:
			finish("timeout")
		}
		return nil, fmt.Errorf("transport: call %s->%s (%s): %w", from, to, kind, ctx.Err())
	}
}

// dropEvent maps a send drop reason to its span event type.
func dropEvent(reason string) string {
	switch reason {
	case "partition":
		return obs.EventPartitionDrop
	case "loss":
		return obs.EventLossDrop
	}
	return "drop_" + reason
}

// send applies the route's chaos to one delivery attempt and hands every
// surviving copy to enq. enq receives whether the copy is the duplicate
// (second) copy and reports whether the destination accepted it (false =
// endpoint closed). Zero-latency single copies are enqueued inline (the
// common perfect-fabric path costs no goroutine); delayed and duplicated
// copies are delivered asynchronously and tracked for Settle. The
// returned reason is non-empty ("partition", "loss") when the delivery
// was dropped synchronously before any copy could depart.
func (f *Fabric) send(from, to Addr, enq func(dup bool) bool) string {
	f.mu.Lock()
	if f.partitioned[norm(from, to)] {
		f.mu.Unlock()
		f.metrics.Dropped("partition")
		return "partition"
	}
	cfg := f.routeLocked(from, to)
	lost := cfg.Loss > 0 && f.rng.Float64() < cfg.Loss
	duplicated := !lost && cfg.Dup > 0 && f.rng.Float64() < cfg.Dup
	f.mu.Unlock()
	if lost {
		f.metrics.Dropped("loss")
		return "loss"
	}
	copies := 1
	if duplicated {
		copies = 2
		f.metrics.Duplicate()
	}
	deliver := func(dup bool) {
		if cfg.Latency > 0 {
			time.Sleep(cfg.Latency)
		}
		if !enq(dup) {
			f.metrics.Dropped("closed")
		}
	}
	if copies == 1 && cfg.Latency == 0 {
		deliver(false)
		return ""
	}
	for i := 0; i < copies; i++ {
		f.track()
		dup := i > 0
		go func() {
			defer f.untrack()
			deliver(dup)
		}()
	}
	return ""
}
