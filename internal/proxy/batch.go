package proxy

// Batched group-commit admission: the front end that coalesces
// concurrent Establish calls into one commit round.
//
// Under serialized admission every session pays the full phase-3 price
// by itself: one prepare and one commit message per participating host,
// each crossing that host's single serve goroutine, plus one sweep over
// the affected brokers' lock stripes. Under concurrency the hot hosts'
// serve goroutines and the hot stripes convoy — k concurrent sessions
// pay k lock rounds and 2k messages per host.
//
// The batching front end funnels commit attempts through a collector
// goroutine instead. Attempts that arrive while a round is being formed
// join it (up to BatchPolicy.MaxBatch, optionally waiting
// BatchPolicy.Window for stragglers); the round then runs ONE batched
// two-phase commit: per participating host a single batch-prepare
// message carrying every member's share (the participant validates and
// commits the whole batch with broker.ReserveBatch — one sweep over the
// union of the members' stripes), then a single batch-commit (or
// batch-abort) per host. k members on h hosts cost 2h messages and h
// stripe sweeps instead of 2kh and kh.
//
// Members stay independent end to end: each keeps its own request ID,
// its own per-host prepare entries in the participants' idempotency
// tables, its own trace (a batch_commit child span under its reserve
// stage), its own deadline, and its own outcome. A member is admitted
// only when every host holding a share of its plan prepared it; a
// refused or failed member is aborted everywhere it prepared, without
// disturbing the other members of the round. Rounds are dispatched
// asynchronously, so a slow round never blocks the collector from
// forming the next one.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"qosres/internal/broker"
	"qosres/internal/obs"
	"qosres/internal/qos"
	"qosres/internal/topo"
	"qosres/internal/transport"
	"qosres/internal/wal"
)

// Batched two-phase-commit message kinds. Named distinctly from the
// batch_commit stage span so a trace's participant spans (named by
// message kind) never collide with the member stage spans.
const (
	msgBatchPrepare = "prepare_batch"
	msgBatchCommit  = "commit_batch"
	msgBatchAbort   = "abort_batch"
)

// BatchPolicy configures the group-commit admission front end.
type BatchPolicy struct {
	// MaxBatch caps the members of one round. Values below 2 disable
	// batching (the default): commits run the serialized path.
	MaxBatch int
	// Window, when positive, is how long a forming round waits for
	// stragglers after its first member arrived. Zero (the default)
	// coalesces only the attempts already waiting — no added latency,
	// which is what deadline-bounded deployments want.
	Window time.Duration
}

// batchMemberShare is one member's share of one host's batch-prepare.
type batchMemberShare struct {
	id  string
	req qos.ResourceVector
}

// batchPrepareRequest asks a participant to validate-and-hold every
// member's share of a round in one sweep over its brokers' stripes.
type batchPrepareRequest struct {
	members []batchMemberShare
	expiry  broker.Time
}

// batchMemberResult is one member's prepare outcome at one host.
type batchMemberResult struct {
	id  string
	res *broker.MultiReservation
	err error
}

type batchPrepareReply struct {
	results []batchMemberResult
	stats   broker.BatchStats
}

// batchCommitRequest resolves a round's admitted prepares at one host.
type batchCommitRequest struct {
	ids    []string
	expiry broker.Time
}

type batchCommitReply struct {
	errs []error // parallel to ids
}

// batchAbortRequest rolls a round's failed members back at one host.
type batchAbortRequest struct {
	ids []string
}

type batchAbortReply struct{}

// handleBatchPrepare runs on the participant's serve goroutine: replay
// members already in the idempotency table, then validate-and-commit
// every fresh member in one broker.ReserveBatch round (one sweep over
// the union of their stripes). Lease arming and idempotency semantics
// match handlePrepare member for member.
func (p *QoSProxy) handleBatchPrepare(req batchPrepareRequest) batchPrepareReply {
	out := batchPrepareReply{results: make([]batchMemberResult, len(req.members))}
	var fresh []int
	var reqs []qos.ResourceVector
	for i, m := range req.members {
		out.results[i].id = m.id
		if st, ok := p.pending[m.id]; ok {
			if st.aborted {
				out.results[i].err = fmt.Errorf("proxy %s: prepare %s already aborted", p.host, m.id)
			} else {
				out.results[i].res, out.results[i].err = st.res, st.prepErr
			}
			continue
		}
		fresh = append(fresh, i)
		reqs = append(reqs, m.req)
	}
	if len(fresh) > 0 {
		resolve := func(r string) (broker.Broker, bool) {
			b, ok := p.brokers[r]
			return b, ok
		}
		now := p.clock.Now()
		ress, errs, stats := broker.ReserveBatch(now, resolve, reqs)
		out.stats = stats
		for j, i := range fresh {
			st := &prepState{res: ress[j], prepErr: errs[j]}
			if st.prepErr == nil && req.expiry > 0 {
				if lerr := st.res.SetLease(req.expiry); lerr != nil {
					// A broker of the share does not support leasing; refuse
					// the member rather than hold unreclaimable capacity.
					_ = st.res.Release(now)
					st = &prepState{prepErr: lerr}
				}
			}
			p.pending[req.members[i].id] = st
			p.order = append(p.order, req.members[i].id)
			if st.prepErr == nil {
				p.logRecord(wal.Record{Type: wal.TypePrepare, ID: req.members[i].id,
					Expiry: float64(req.expiry), Parts: partsFromReservation(st.res)})
			}
			out.results[i].res, out.results[i].err = st.res, st.prepErr
		}
		p.gcPending()
	}
	return out
}

// handleBatchCommit runs on the participant's serve goroutine: the
// per-member commit semantics (lease re-arm, duplicate replay, lost-
// lease abort) are exactly handleCommit's, applied to each ID.
func (p *QoSProxy) handleBatchCommit(req batchCommitRequest) batchCommitReply {
	errs := make([]error, len(req.ids))
	for i, id := range req.ids {
		errs[i] = p.handleCommit(commitRequest{id: id, expiry: req.expiry}).err
	}
	return batchCommitReply{errs: errs}
}

// handleBatchAbort runs on the participant's serve goroutine; aborting
// each ID is idempotent and tombstones unknown ones (see handleAbort).
func (p *QoSProxy) handleBatchAbort(req batchAbortRequest) batchAbortReply {
	for _, id := range req.ids {
		p.handleAbort(abortRequest{id: id})
	}
	return batchAbortReply{}
}

// errRuntimeStopped fails commit attempts caught in a stopping runtime.
var errRuntimeStopped = errors.New("proxy: runtime stopped")

// batchWork is one commit attempt waiting to join a round.
type batchWork struct {
	ctx  context.Context
	main topo.HostID
	req  qos.ResourceVector
	// span is the member's reserve-stage span; its batch_commit child
	// is opened by the round.
	span obs.ActiveSpan
	out  chan batchOutcome
}

type batchOutcome struct {
	res reservation
	err error
}

// maxInFlightRounds bounds the commit rounds running concurrently.
// This bound is what makes group commit actually group: while the
// slots are busy, newly arriving commits block at the collector, and
// the next gather scoops every one of them into a single round. Round
// size thus adapts to load — idle runtimes commit singletons with no
// added latency, loaded ones grow rounds in proportion to commit
// latency (the convoy works for us). Two slots keep a round forming
// while another is in flight, so the participants' serve goroutines
// never idle between rounds.
const maxInFlightRounds = 2

// admitBatcher is the collector: a goroutine forming rounds from
// concurrent commit attempts and dispatching them, at most
// maxInFlightRounds at a time.
type admitBatcher struct {
	rt     *Runtime
	max    int
	window time.Duration
	// in is deliberately unbuffered: a round coalesces exactly the
	// attempts blocked in commit() at collection time, and once done is
	// closed no send can succeed without a receiver, so every accepted
	// attempt gets exactly one outcome.
	in chan *batchWork
	// slots is the in-flight round semaphore.
	slots chan struct{}
	done  chan struct{}
	wg    sync.WaitGroup
}

func newAdmitBatcher(rt *Runtime, p BatchPolicy) *admitBatcher {
	return &admitBatcher{
		rt:     rt,
		max:    p.MaxBatch,
		window: p.Window,
		in:     make(chan *batchWork),
		slots:  make(chan struct{}, maxInFlightRounds),
		done:   make(chan struct{}),
	}
}

// commit submits one attempt to the batching front end and waits for
// its outcome, bounded by the attempt's context. An attempt abandoned
// at its deadline leaves a reaper for the round's eventual outcome, so
// a reservation committed after the caller left is released rather
// than leaked.
func (b *admitBatcher) commit(ctx context.Context, main topo.HostID, req qos.ResourceVector) (reservation, error) {
	w := &batchWork{ctx: ctx, main: main, req: req, span: obs.SpanFromContext(ctx), out: make(chan batchOutcome, 1)}
	select {
	case b.in <- w:
	case <-b.done:
		return nil, errRuntimeStopped
	case <-ctx.Done():
		return nil, fmt.Errorf("proxy: batched commit abandoned at deadline: %w", ctx.Err())
	}
	select {
	case o := <-w.out:
		return o.res, o.err
	case <-ctx.Done():
		go func() {
			if o := <-w.out; o.res != nil {
				_ = o.res.Release(b.rt.clock.Now())
			}
		}()
		return nil, fmt.Errorf("proxy: batched commit abandoned at deadline: %w", ctx.Err())
	}
}

// run is the collector loop: receive one attempt, wait for a round
// slot (attempts arriving meanwhile pile up as blocked senders), scoop
// everything waiting into one round, dispatch it.
func (b *admitBatcher) run() {
	defer b.wg.Done()
	for {
		select {
		case <-b.done:
			b.drainFail()
			return
		case w := <-b.in:
			select {
			case b.slots <- struct{}{}:
			case <-b.done:
				w.out <- batchOutcome{err: errRuntimeStopped}
				b.drainFail()
				return
			}
			batch := b.gather(w)
			b.wg.Add(1)
			go func() {
				defer b.wg.Done()
				defer func() { <-b.slots }()
				b.rt.commitBatch(batch)
			}()
		}
	}
}

// gather forms one round: the first member plus everything already
// waiting (and, with a positive window, stragglers arriving within it),
// capped at max.
func (b *admitBatcher) gather(first *batchWork) []*batchWork {
	batch := []*batchWork{first}
	if b.window <= 0 {
		for len(batch) < b.max {
			select {
			case w := <-b.in:
				batch = append(batch, w)
			default:
				return batch
			}
		}
		return batch
	}
	t := time.NewTimer(b.window)
	defer t.Stop()
	for len(batch) < b.max {
		select {
		case w := <-b.in:
			batch = append(batch, w)
		case <-t.C:
			return batch
		case <-b.done:
			return batch
		}
	}
	return batch
}

// drainFail answers attempts that were racing into the collector as it
// stopped. in is unbuffered, so only senders blocked right now can
// land here; anyone later is refused by commit's done case.
func (b *admitBatcher) drainFail() {
	for {
		select {
		case w := <-b.in:
			w.out <- batchOutcome{err: errRuntimeStopped}
		default:
			return
		}
	}
}

// stop terminates the collector and waits for it and every in-flight
// round to finish. Rounds still talking to participants finish against
// the still-running serve goroutines; Stop tears those down after.
func (b *admitBatcher) stop() {
	close(b.done)
	b.wg.Wait()
}

// batchMember is the coordinator's per-member state for one round.
type batchMember struct {
	w      *batchWork
	id     string
	shares map[topo.HostID]qos.ResourceVector
	res    map[topo.HostID]*broker.MultiReservation
	span   obs.ActiveSpan
	// refusal and failure split the member's prepare outcomes like
	// commitPlan: a refusal (ErrInsufficient, retryable staleness)
	// wins over a transport/participant failure when both occurred.
	refusal error
	failure error
	done    bool
}

// fail records the member's terminal error for this round.
func (m *batchMember) fail(err error) {
	if errors.Is(err, broker.ErrInsufficient) {
		if m.refusal == nil {
			m.refusal = err
		}
	} else if m.failure == nil {
		m.failure = err
	}
}

// err returns the member's terminal error, refusals first.
func (m *batchMember) err() error {
	if m.refusal != nil {
		return m.refusal
	}
	return m.failure
}

// finish delivers the member's outcome exactly once.
func (m *batchMember) finish(res reservation, err error) {
	if m.done {
		return
	}
	m.done = true
	if err != nil {
		m.span.EndErr(err, admitStatus(err))
	} else {
		m.span.End()
	}
	m.w.out <- batchOutcome{res: res, err: err}
}

// commitBatch runs one group-commit round: a batched idempotent
// two-phase commit of every member's plan, one batch-prepare and one
// batch-commit (or batch-abort) message per participating host. The
// round's fabric calls run under the first live member's context (the
// round leader) — each member's own deadline still bounds its wait in
// commit(). Per-member all-or-nothing and abort-all semantics match
// commitPlan exactly; members only share the messages and the
// participants' stripe sweeps.
func (rt *Runtime) commitBatch(batch []*batchWork) {
	_, admit, _ := rt.admitState()
	admit.Batches.Inc()
	admit.BatchMembers.Add(float64(len(batch)))
	admit.BatchSize.Observe(float64(len(batch)))
	if len(batch) > 1 {
		admit.Coalesced.Add(float64(len(batch)))
	}

	var expiry broker.Time
	if ttl := rt.leaseTTLNow(); ttl > 0 {
		expiry = rt.clock.Now() + ttl
	}

	// Split every member by owning host; members whose deadline already
	// passed (or whose plan cannot be split) fail fast and never join
	// the fan-out. The first live member leads: its context bounds the
	// round's fabric calls and its batch span parents them.
	members := make([]*batchMember, 0, len(batch))
	byID := make(map[string]*batchMember, len(batch))
	hosts := make(map[topo.HostID][]*batchMember)
	var leader *batchMember
	for _, w := range batch {
		m := &batchMember{w: w, id: rt.reqID(w.main), res: make(map[topo.HostID]*broker.MultiReservation)}
		m.span = w.span.Child(obs.StageBatchCommit, string(w.main))
		m.span.Event(obs.EventBatchRound, fmt.Sprintf("size %d", len(batch)))
		if err := w.ctx.Err(); err != nil {
			m.finish(nil, fmt.Errorf("proxy: batched commit abandoned at deadline: %w", err))
			continue
		}
		shares, err := rt.splitByHost(w.req)
		if err != nil {
			m.finish(nil, err)
			continue
		}
		if len(shares) == 0 {
			m.finish(&reservationSet{}, nil)
			continue
		}
		m.shares = shares
		members = append(members, m)
		byID[m.id] = m
		for h := range shares {
			hosts[h] = append(hosts[h], m)
		}
		if leader == nil {
			leader = m
		}
	}
	if leader == nil {
		return
	}
	ctx := obs.ContextWithSpan(leader.w.ctx, leader.span)
	from := transport.Addr(leader.w.main)
	fabric := rt.Transport()

	// Batched prepare fan-out: one message per participating host
	// carrying every member's share there.
	type hostPrep struct {
		host  topo.HostID
		reply batchPrepareReply
		err   error
	}
	prepares := make(chan hostPrep, len(hosts))
	for h, ms := range hosts {
		go func(h topo.HostID, ms []*batchMember) {
			shares := make([]batchMemberShare, len(ms))
			for i, m := range ms {
				shares[i] = batchMemberShare{id: m.id, req: m.shares[h]}
			}
			resp, err := fabric.Call(ctx, from, transport.Addr(h), msgBatchPrepare,
				batchPrepareRequest{members: shares, expiry: expiry})
			if err != nil {
				prepares <- hostPrep{host: h, err: err}
				return
			}
			rep, ok := resp.(batchPrepareReply)
			if !ok {
				prepares <- hostPrep{host: h, err: fmt.Errorf("proxy: unexpected batch prepare reply %T", resp)}
				return
			}
			prepares <- hostPrep{host: h, reply: rep}
		}(h, ms)
	}
	for range hosts {
		r := <-prepares
		if r.err != nil {
			// The whole host call failed; every member with a share
			// there loses this round.
			for _, m := range hosts[r.host] {
				m.fail(r.err)
			}
			continue
		}
		admit.StripeLocks.Add(float64(r.reply.stats.StripesLocked))
		if saved := r.reply.stats.StripesSolo - r.reply.stats.StripesLocked; saved > 0 {
			admit.StripeAmortized.Add(float64(saved))
		}
		for _, mr := range r.reply.results {
			m := byID[mr.id]
			if m == nil {
				continue
			}
			if mr.err != nil {
				m.fail(mr.err)
			} else {
				m.res[r.host] = mr.res
			}
		}
	}

	// abortIDs sends one batch-abort per host covering the given
	// members' shares there. Detached context like commitPlan's
	// abortAll: cleanup proceeds past the leader's deadline, bounded,
	// and lost aborts are reclaimed by the lease sweep.
	abortIDs := func(failed []*batchMember) {
		perHost := make(map[topo.HostID][]string)
		for _, m := range failed {
			for h := range m.shares {
				perHost[h] = append(perHost[h], m.id)
			}
		}
		if len(perHost) == 0 {
			return
		}
		actx, cancel := context.WithTimeout(context.Background(), abortTimeout)
		defer cancel()
		actx = obs.ContextWithSpan(actx, obs.SpanFromContext(ctx))
		var wg sync.WaitGroup
		for h, ids := range perHost {
			wg.Add(1)
			go func(h topo.HostID, ids []string) {
				defer wg.Done()
				_, _ = fabric.Call(actx, from, transport.Addr(h), msgBatchAbort, batchAbortRequest{ids: ids})
			}(h, ids)
		}
		wg.Wait()
	}

	// Members that failed or were refused anywhere abort everywhere;
	// the rest move to commit.
	var aborting, committing []*batchMember
	for _, m := range members {
		if m.err() != nil {
			aborting = append(aborting, m)
		} else {
			committing = append(committing, m)
		}
	}
	abortIDs(aborting)
	for _, m := range aborting {
		m.finish(nil, m.err())
	}
	if len(committing) == 0 {
		return
	}

	// Commit point, per member: journal each decision before any
	// participant learns of it (recovery presumes abort otherwise).
	for _, m := range committing {
		rt.recordDecide(m.w.main, m.id, expiry)
	}

	// Batched commit fan-out: one message per host with the admitted
	// members' IDs there.
	commitHosts := make(map[topo.HostID][]*batchMember)
	for _, m := range committing {
		for h := range m.shares {
			commitHosts[h] = append(commitHosts[h], m)
		}
	}
	type hostCommit struct {
		host topo.HostID
		ms   []*batchMember
		errs []error
		err  error
	}
	commits := make(chan hostCommit, len(commitHosts))
	for h, ms := range commitHosts {
		go func(h topo.HostID, ms []*batchMember) {
			ids := make([]string, len(ms))
			for i, m := range ms {
				ids[i] = m.id
			}
			resp, err := fabric.Call(ctx, from, transport.Addr(h), msgBatchCommit,
				batchCommitRequest{ids: ids, expiry: expiry})
			if err != nil {
				commits <- hostCommit{host: h, ms: ms, err: err}
				return
			}
			rep, ok := resp.(batchCommitReply)
			if !ok {
				commits <- hostCommit{host: h, ms: ms, err: fmt.Errorf("proxy: unexpected batch commit reply %T", resp)}
				return
			}
			commits <- hostCommit{host: h, ms: ms, errs: rep.errs}
		}(h, ms)
	}
	for range commitHosts {
		r := <-commits
		for i, m := range r.ms {
			if r.err != nil {
				m.fail(r.err)
			} else if i < len(r.errs) && r.errs[i] != nil {
				m.fail(r.errs[i])
			}
		}
	}

	// A member whose commit partially failed rolls back everywhere
	// (aborting a committed share releases it); fully committed members
	// hand their shares to the session.
	var failed []*batchMember
	for _, m := range committing {
		if m.err() != nil {
			failed = append(failed, m)
		}
	}
	abortIDs(failed)
	for _, m := range committing {
		if err := m.err(); err != nil {
			m.finish(nil, err)
			continue
		}
		parts := make([]*broker.MultiReservation, 0, len(m.res))
		for _, h := range hostOrder(m.res) {
			parts = append(parts, m.res[h])
		}
		m.finish(rt.journal(&reservationSet{parts: parts}, m.id, hostOrder(m.res)), nil)
	}
}

// hostOrder returns the map's hosts in a deterministic order so a
// member's reservation parts don't depend on map iteration.
func hostOrder(m map[topo.HostID]*broker.MultiReservation) []topo.HostID {
	out := make([]topo.HostID, 0, len(m))
	for h := range m {
		out = append(out, h)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
