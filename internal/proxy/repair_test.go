package proxy

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"qosres/internal/core"
)

func establishPipe(t *testing.T, rt *Runtime, planner core.Planner) *Session {
	t.Helper()
	service, binding := pipelineService(t)
	s, err := rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: planner})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRepairAtSameLevel(t *testing.T) {
	rt, clock, brokers := twoHostWorld(t)
	s := establishPipe(t, rt, core.Basic{})
	if s.Plan.EndToEnd.Name != "best" {
		t.Fatalf("initial level = %s", s.Plan.EndToEnd.Name)
	}

	// Shrink cpu@Y but leave room for "best": the repair re-admits at
	// the original level.
	if err := brokers["cpu@Y"].SetCapacity(clock.Now(), 60); err != nil {
		t.Fatal(err)
	}
	rep := rt.RepairAffected([]string{"cpu@Y"})
	if rep.Affected != 1 || rep.Repaired != 1 {
		t.Fatalf("report = %+v, want 1 affected, 1 repaired", rep)
	}
	if got := s.CurrentPlan().EndToEnd.Name; got != "best" {
		t.Fatalf("post-repair level = %s, want best", got)
	}
	if s.State() != StateActive {
		t.Fatalf("state = %s, want active", s.State())
	}
	if s.Repairs() != 1 {
		t.Fatalf("repairs = %d", s.Repairs())
	}
	// The initially admitted plan is preserved verbatim.
	if s.Plan.EndToEnd.Name != "best" {
		t.Fatalf("initial plan mutated: %s", s.Plan.EndToEnd.Name)
	}
	if err := s.Release(); err != nil {
		t.Fatal(err)
	}
	for r, b := range brokers {
		if b.Reservations() != 0 {
			t.Errorf("%s holds %d reservations after release", r, b.Reservations())
		}
	}
}

func TestRepairDegradesWhenTargetInfeasible(t *testing.T) {
	rt, clock, brokers := twoHostWorld(t)
	s := establishPipe(t, rt, core.Basic{})

	// cpu@Y down to 15: "best" needs 20 (via in-hi) or 35 (via in-lo),
	// "ok" needs 8. Only the downgrade fits.
	if err := brokers["cpu@Y"].SetCapacity(clock.Now(), 15); err != nil {
		t.Fatal(err)
	}
	rep := rt.RepairAffected([]string{"cpu@Y"})
	if rep.Affected != 1 || rep.Degraded != 1 {
		t.Fatalf("report = %+v, want 1 affected, 1 degraded", rep)
	}
	if got := s.CurrentPlan().EndToEnd.Name; got != "ok" {
		t.Fatalf("post-repair level = %s, want ok", got)
	}
	if s.State() != StateActive {
		t.Fatalf("state = %s", s.State())
	}
	if err := s.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestRepairTerminatesWhenNothingFeasible(t *testing.T) {
	rt, clock, brokers := twoHostWorld(t)
	s := establishPipe(t, rt, core.Basic{})

	// Every level of the service needs the network; with it down even
	// the tradeoff downgrade has no feasible plan.
	brokers["net:X->Y"].Fail(clock.Now())
	rep := rt.RepairAffected([]string{"net:X->Y"})
	if rep.Affected != 1 || rep.Failed != 1 {
		t.Fatalf("report = %+v, want 1 affected, 1 failed", rep)
	}
	if s.State() != StateFailed {
		t.Fatalf("state = %s, want failed", s.State())
	}
	if rt.LiveSessions() != 0 {
		t.Fatalf("live sessions = %d", rt.LiveSessions())
	}
	// The holds were fully drained despite the terminated session:
	// nothing leaks on healthy or failed brokers.
	for r, b := range brokers {
		if b.Reservations() != 0 {
			t.Errorf("%s holds %d reservations after failed repair", r, b.Reservations())
		}
	}
	// Releasing a failed session is a benign no-op.
	if err := s.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestRepairIgnoresUntouchedSessions(t *testing.T) {
	rt, _, _ := twoHostWorld(t)
	s := establishPipe(t, rt, core.Basic{})
	rep := rt.RepairAffected([]string{"link:L99"})
	if rep.Affected != 0 {
		t.Fatalf("report = %+v, want no affected sessions", rep)
	}
	if s.Repairs() != 0 || s.State() != StateActive {
		t.Fatalf("untouched session changed: %d repairs, state %s", s.Repairs(), s.State())
	}
	if err := s.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestReleaseRacingRepair is the double-release regression test: an
// owner Release racing a failure-driven repair of the same session must
// release the session's holds exactly once — whichever the interleaving,
// the final state is fully drained brokers and no error from either
// path. Before teardown was funneled through one lock-held path, the
// repair could release the reservation the owner was concurrently
// releasing (double release) or re-admit a session the owner had just
// released (leaked holds).
func TestReleaseRacingRepair(t *testing.T) {
	rounds := 50
	if raceEnabled {
		rounds = 200
	}
	rt, clock, brokers := twoHostWorld(t)
	for round := 0; round < rounds; round++ {
		s := establishPipe(t, rt, core.Basic{})
		if err := brokers["cpu@Y"].SetCapacity(clock.Now(), 60); err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		wg.Add(2)
		var relErr error
		go func() {
			defer wg.Done()
			relErr = s.Release()
		}()
		go func() {
			defer wg.Done()
			rt.RepairAffected([]string{"cpu@Y"})
		}()
		wg.Wait()

		if relErr != nil {
			t.Fatalf("round %d: release errored: %v", round, relErr)
		}
		// The repair may have won and re-admitted before the release;
		// the release then tore down the repaired reservation. Either
		// way the session must end released with nothing held.
		if err := s.Release(); err != nil {
			t.Fatalf("round %d: second release: %v", round, err)
		}
		if s.State() != StateReleased {
			t.Fatalf("round %d: state = %s", round, s.State())
		}
		if rt.LiveSessions() != 0 {
			t.Fatalf("round %d: live sessions = %d", round, rt.LiveSessions())
		}
		for r, b := range brokers {
			if b.Reservations() != 0 {
				t.Fatalf("round %d: %s holds %d reservations", round, r, b.Reservations())
			}
		}
		if err := brokers["cpu@Y"].SetCapacity(clock.Now(), 100); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	rt, clock, brokers := twoHostWorld(t)
	rt.SetLeaseTTL(5)
	s := establishPipe(t, rt, core.Basic{})

	sweep := func() int {
		n := 0
		for _, b := range brokers {
			n += b.ExpireLeases(clock.Now())
		}
		return n
	}

	clock.Advance(4)
	if err := s.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	// The heartbeat pushed expiry to t=9; a sweep at t=6 (past the
	// original t=5 expiry) reclaims nothing.
	clock.Advance(2)
	if n := sweep(); n != 0 {
		t.Fatalf("sweep reclaimed %d renewed holds", n)
	}
	if s.State() != StateActive {
		t.Fatalf("state = %s", s.State())
	}
	if err := s.Release(); err != nil {
		t.Fatal(err)
	}
	for r, b := range brokers {
		if b.Reservations() != 0 {
			t.Errorf("%s holds %d reservations", r, b.Reservations())
		}
	}
}

// TestHeartbeatRacingDowngradeRenewsCurrentHolds is the adaptation-era
// lease regression: a Heartbeat racing a concurrent renegotiation (or
// repair) must renew whatever holds the session has at that instant —
// never a stale pre-downgrade set. Before renegotiation ran under the
// session lock, a heartbeat could lease holds the downgrade was
// concurrently releasing, leaving the post-downgrade reservation
// unleased and reclaimable mid-session. CI runs this under -race.
func TestHeartbeatRacingDowngradeRenewsCurrentHolds(t *testing.T) {
	rounds := 25
	if raceEnabled {
		rounds = 100
	}
	rt, clock, brokers := twoHostWorld(t)
	rt.SetLeaseTTL(5)
	ctx := context.Background()
	for round := 0; round < rounds; round++ {
		s := establishPipe(t, rt, core.Basic{})

		var wg sync.WaitGroup
		wg.Add(2)
		errs := make(chan error, 16)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if err := s.Heartbeat(); err != nil {
					errs <- err
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			if err := rt.Renegotiate(ctx, s, "ok"); err != nil {
				errs <- err
				return
			}
			if err := rt.Renegotiate(ctx, s, "best"); err != nil {
				errs <- err
			}
		}()
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("round %d: %v", round, err)
		}

		// One more heartbeat against the settled session, then advance to
		// just inside the renewed TTL: a sweep must reclaim nothing — the
		// heartbeats leased the session's CURRENT holds, whichever
		// renegotiation they interleaved with.
		if err := s.Heartbeat(); err != nil {
			t.Fatalf("round %d: post-race heartbeat: %v", round, err)
		}
		clock.Advance(4)
		for _, b := range brokers {
			if n := b.ExpireLeases(clock.Now()); n != 0 {
				t.Fatalf("round %d: sweep reclaimed %d holds inside the renewed TTL", round, n)
			}
		}
		if s.State() != StateActive {
			t.Fatalf("round %d: state = %s", round, s.State())
		}
		for _, msg := range rt.AuditSessions(1e-9) {
			t.Fatalf("round %d: audit: %s", round, msg)
		}
		if err := s.Release(); err != nil {
			t.Fatalf("round %d: release: %v", round, err)
		}
		for r, b := range brokers {
			if b.Reservations() != 0 {
				t.Fatalf("round %d: %s holds %d reservations", round, r, b.Reservations())
			}
		}
	}
}

func TestLeaseExpiryTerminatesSilentSession(t *testing.T) {
	rt, clock, brokers := twoHostWorld(t)
	rt.SetLeaseTTL(5)
	s := establishPipe(t, rt, core.Basic{})

	// The session goes silent: no heartbeat past the TTL. The sweep
	// reclaims every leased hold.
	clock.Advance(6)
	reclaimed := 0
	for _, b := range brokers {
		reclaimed += b.ExpireLeases(clock.Now())
	}
	if reclaimed == 0 {
		t.Fatal("sweep reclaimed nothing")
	}
	for r, b := range brokers {
		if b.Reservations() != 0 {
			t.Errorf("%s still holds %d reservations", r, b.Reservations())
		}
	}
	// A late heartbeat discovers the loss.
	if err := s.Heartbeat(); !errors.Is(err, ErrSessionLost) {
		t.Fatalf("late heartbeat: %v, want ErrSessionLost", err)
	}
	if s.State() != StateFailed {
		t.Fatalf("state = %s, want failed", s.State())
	}
	if rt.LiveSessions() != 0 {
		t.Fatalf("live sessions = %d", rt.LiveSessions())
	}
}

func TestHeartbeatWithoutLeasingIsNoop(t *testing.T) {
	rt, _, _ := twoHostWorld(t)
	s := establishPipe(t, rt, core.Basic{})
	if err := s.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(); err != nil {
		t.Fatal(err)
	}
	if err := s.Heartbeat(); !errors.Is(err, ErrSessionLost) {
		t.Fatalf("heartbeat after release: %v, want ErrSessionLost", err)
	}
}

func TestAdmitBackoffOverflowCapsAtMax(t *testing.T) {
	p := AdmitPolicy{Backoff: time.Nanosecond}
	if got := p.backoff(1, nil); got != time.Nanosecond {
		t.Fatalf("backoff(1) = %v", got)
	}
	if got := p.backoff(8, nil); got != 128*time.Nanosecond {
		t.Fatalf("backoff(8) = %v", got)
	}
	// 1ns<<27 = ~134ms exceeds the cap.
	if got := p.backoff(28, nil); got != maxAdmitBackoff {
		t.Fatalf("backoff(28) = %v, want cap", got)
	}
	// attempt 63: 1ns<<62 is a huge positive duration — capped.
	// attempt 64: 1ns<<63 wraps negative — must cap, not underflow.
	// attempt 65+: the shift itself would be out of range — capped
	// before computing it.
	for _, attempt := range []int{63, 64, 65, 1000} {
		if got := p.backoff(attempt, nil); got != maxAdmitBackoff {
			t.Fatalf("backoff(%d) = %v, want cap %v", attempt, got, maxAdmitBackoff)
		}
	}
	// A zero base disables sleeping entirely, at any attempt.
	z := AdmitPolicy{}
	for _, attempt := range []int{1, 64, 1000} {
		if got := z.backoff(attempt, nil); got != 0 {
			t.Fatalf("zero-base backoff(%d) = %v", attempt, got)
		}
	}
	// A large base still caps rather than multiplying past the cap.
	big := AdmitPolicy{Backoff: time.Second}
	if got := big.backoff(1, nil); got != maxAdmitBackoff {
		t.Fatalf("big backoff(1) = %v, want cap", got)
	}
}
