package proxy

// Mid-session renegotiation: a live session moves to a different
// end-to-end QoS level without ever passing through a released state.
//
//   - The target level is planned through the same phase-1/phase-2
//     machinery as admission (template fast path) with the AtLevel
//     planner, which either returns the cheapest feasible plan at
//     exactly that level or ErrInfeasible. The snapshot is credited
//     with the session's own live holds — what it holds it keeps — so
//     a brownout downgrade stays plannable under full contention.
//   - An upgrade reserves only the DELTA between the target requirement
//     and the current holds, as a fresh hold through the idempotent
//     two-phase validate-at-commit path (and the WAL, when durability
//     is on). A refusal returns before the session is touched, so a
//     failed upgrade leaves it byte-identical at its old level.
//   - A downgrade releases the surplus whole by shrinking the live
//     holds in place (broker.Shrinker); shrinking only returns
//     capacity, so it cannot be refused.
//
// The whole protocol runs under s.mu — the same lock that fences
// Heartbeat, repair, and the single teardown path — so a heartbeat
// racing a downgrade renews the post-renegotiation holds, never a
// stale set.

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/obs"
	"qosres/internal/qos"
	"qosres/internal/qrg"
	"qosres/internal/svc"
	"qosres/internal/topo"
)

// shrinkable is a reservation whose live holds can be reduced in place
// to a per-resource budget. The budget drains in place: passing the
// same vector through several reservations makes them share it.
type shrinkable interface {
	shrinkTo(now broker.Time, budget qos.ResourceVector) error
}

// shrinkReservation dispatches shrinkTo across the reservation
// implementations (raw broker reservations included).
func shrinkReservation(res reservation, now broker.Time, budget qos.ResourceVector) error {
	switch r := res.(type) {
	case shrinkable:
		return r.shrinkTo(now, budget)
	case *broker.MultiReservation:
		return r.ShrinkTo(now, budget)
	}
	return fmt.Errorf("proxy: %T does not support shrink", res)
}

// shrinkTo implements shrinkable for the per-host reservation set; the
// per-host shares drain one shared budget in host order. Shares are
// never removed from the set (an emptied one keeps its slot), so the
// journal shim's host alignment survives any number of downgrades.
func (r *reservationSet) shrinkTo(now broker.Time, budget qos.ResourceVector) error {
	var firstErr error
	for _, part := range r.parts {
		if err := part.ShrinkTo(now, budget); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// combined glues a session's kept reservation and its upgrade delta
// into one reservation: the session layer leases, releases, and shrinks
// them as a unit, and repeated renegotiations nest freely.
type combined struct {
	parts []reservation
}

func (c *combined) Release(now broker.Time) error {
	var firstErr error
	for _, p := range c.parts {
		if err := p.Release(now); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (c *combined) SetLease(expiry broker.Time) error {
	for _, p := range c.parts {
		if err := p.SetLease(expiry); err != nil {
			return err
		}
	}
	return nil
}

func (c *combined) Touches() []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range c.parts {
		for _, r := range p.Touches() {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	return out
}

func (c *combined) shrinkTo(now broker.Time, budget qos.ResourceVector) error {
	var firstErr error
	for _, p := range c.parts {
		if err := shrinkReservation(p, now, budget); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// LevelAt returns the end-to-end level name at a paper-style rank
// (RankOf's inverse: best level = highest rank), or "" when the rank is
// out of range.
func LevelAt(s *svc.Service, rank int) string {
	n := len(s.EndToEndRanking)
	if rank < 1 || rank > n {
		return ""
	}
	return s.EndToEndRanking[n-rank]
}

// Renegotiate moves a live session to the named end-to-end level, in
// place. The target is planned via the template fast path; an upgrade
// reserves only the delta over the current holds through the 2PC + WAL
// path (a refusal leaves the session untouched at its old level); a
// downgrade shrinks the surplus away without the holds ever passing
// through a released state. Fenced against concurrent Heartbeat,
// repair, and teardown by the session lock.
func (rt *Runtime) Renegotiate(ctx context.Context, s *Session, level string) error {
	if s == nil || s.runtime != rt {
		return errors.New("proxy: renegotiate: session not owned by this runtime")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.renegotiateLocked(ctx, level)
}

func (s *Session) renegotiateLocked(ctx context.Context, level string) error {
	if s.state != StateActive || s.reservation == nil {
		return ErrSessionLost
	}
	rt := s.runtime
	rank := s.spec.Service.RankOf(level)
	if rank == 0 {
		return fmt.Errorf("proxy: renegotiate: service has no end-to-end level %q", level)
	}
	if s.plan.EndToEnd.Name == level {
		return nil
	}
	upgrade := rank > s.plan.Rank

	root := rt.traceRecorder().Root("renegotiate", string(s.mainHost))
	ctx = obs.ContextWithSpan(ctx, root)

	// Phases 1-2: plan the target level against a fresh snapshot,
	// credited with the session's own live holds — a renegotiation keeps
	// what it already has, so a downgrade is always plannable under
	// contention (it only returns capacity) and an upgrade needs
	// headroom only for its delta. The delta's 2PC still validates real
	// availability at commit, so the credit can waste a refusal but
	// never over-commit.
	oldReq := s.plan.Requirement()
	spec := s.spec
	spec.Planner = core.AtLevel{Level: level}
	plan, err := rt.planOnly(ctx, s.mainHost, spec, oldReq)
	if err != nil {
		root.EndStatus(admitStatus(err))
		return err
	}

	newReq := plan.Requirement()
	delta := make(qos.ResourceVector)
	for r, amt := range newReq {
		if extra := amt - oldReq[r]; extra > 0 {
			delta[r] = extra
		}
	}

	res := s.reservation
	if len(delta) > 0 {
		// Phase 3, delta only: validate-at-commit across the owning
		// proxies. Failure returns with the session byte-identical.
		var deltaRes reservation
		var derr error
		if fe := rt.batchFrontEnd(); fe != nil {
			deltaRes, derr = fe.commit(ctx, s.mainHost, delta)
		} else {
			deltaRes, derr = rt.commitPlan(ctx, s.mainHost, delta)
		}
		if derr != nil {
			root.EndStatus(admitStatus(derr))
			return derr
		}
		res = &combined{parts: []reservation{res, deltaRes}}
	}

	// Release the surplus whole: shrink every hold down to the target
	// requirement, the kept reservation and the delta draining one
	// shared budget in that order. Shrinking cannot be refused, so from
	// here the renegotiation cannot fail back to the old level.
	now := rt.clock.Now()
	if err := shrinkReservation(res, now, newReq.Clone()); err != nil {
		// A hold that cannot shrink leaves the books matching no level at
		// all; terminating through the single teardown path is the only
		// exit that keeps holds and recorded level consistent.
		s.reservation = res
		_ = s.terminateLocked(StateFailed)
		root.EndStatus("error")
		return fmt.Errorf("proxy: renegotiate shrink: %w", err)
	}

	if err := s.installLocked(now, plan, res); err != nil {
		root.EndStatus("error")
		return err
	}
	m := rt.adaptMetrics()
	if upgrade {
		m.Upgrades.Inc()
	} else {
		m.Downgrades.Inc()
	}
	root.End()
	return nil
}

// planOnly runs admission phases 1 and 2 — availability snapshot,
// template instantiation, planning, memoization — without committing
// anything: the planning half of Renegotiate. A non-empty credit is
// added to the snapshot's availability before planning (the caller's
// own live holds); credited plans are session-specific, so they bypass
// the shared plan memo in both directions.
func (rt *Runtime) planOnly(ctx context.Context, mainHost topo.HostID, spec SessionSpec, credit qos.ResourceVector) (*core.Plan, error) {
	resources, err := sessionResourceSet(spec)
	if err != nil {
		return nil, err
	}
	snap, err := rt.collectAvailability(ctx, mainHost, resources)
	if err != nil {
		return nil, err
	}
	for r, amt := range credit {
		snap.Avail[r] += amt
	}
	tpl := rt.templateFor(spec)
	memo := rt.planMemo()
	if len(credit) == 0 {
		if plan, ok := memo.Get(tpl, spec.Planner, snap); ok {
			return plan, nil
		}
	}
	var g *qrg.Graph
	if tpl != nil {
		g, err = tpl.Instantiate(snap)
	} else {
		g, err = qrg.Build(spec.Service, spec.Binding, snap)
	}
	if err != nil {
		return nil, err
	}
	plan, err := spec.Planner.Plan(g)
	if tpl != nil {
		tpl.Recycle(g)
	}
	if err != nil {
		return nil, err
	}
	if len(credit) == 0 && len(snap.Epoch) == len(resources) {
		memo.Put(tpl, spec.Planner, snap, plan)
	}
	return plan, nil
}

// installLocked swaps a freshly admitted, repaired, or renegotiated
// plan and reservation into the session: the QoS-seconds segment that
// just ended accrues at its old rank, the touch set re-adopts, and the
// new holds are leased. Lease failure (a sweep won the race) exits
// through the single teardown path. Callers hold s.mu.
func (s *Session) installLocked(now broker.Time, plan *core.Plan, res reservation) error {
	s.qosAccrueLocked(now)
	s.plan = plan
	s.reservation = res
	s.adoptReservationLocked(res)
	if err := s.runtime.armLease(res); err != nil {
		_ = s.terminateLocked(StateFailed)
		return fmt.Errorf("%w: %v", ErrSessionLost, err)
	}
	return nil
}

// Service returns the session's service model (immutable after
// establishment).
func (s *Session) Service() *svc.Service { return s.spec.Service }

// MainHost returns the session's main QoSProxy host.
func (s *Session) MainHost() topo.HostID { return s.mainHost }

// Touches returns a sorted copy of the concrete resources the live
// reservation holds capacity on; empty when the session is not active.
func (s *Session) Touches() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.touches))
	for r := range s.touches {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// SessionList snapshots the live-session registry for the adaptation
// layer. Order is unspecified; callers needing determinism sort.
func (rt *Runtime) SessionList() []*Session {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]*Session, 0, len(rt.sessions))
	for s := range rt.sessions {
		out = append(out, s)
	}
	return out
}

// AuditSessions checks the adaptation invariant on every live session:
// the booked holds sum to exactly the recorded plan's requirement,
// per resource. A session whose lease a sweep already reclaimed is
// terminated (exactly as its next Heartbeat would be) and skipped, so
// sweep losses never misread as mismatches. Returns one description
// per violation.
func (rt *Runtime) AuditSessions(tol float64) []string {
	var bad []string
	ttl := rt.leaseTTLNow()
	now := rt.clock.Now()
	for _, s := range rt.SessionList() {
		s.mu.Lock()
		if s.state != StateActive || s.reservation == nil {
			s.mu.Unlock()
			continue
		}
		if ttl > 0 {
			if err := s.reservation.SetLease(now + ttl); err != nil {
				if errors.Is(err, broker.ErrUnknownReservation) {
					_ = s.terminateLocked(StateFailed)
				}
				s.mu.Unlock()
				continue
			}
		}
		req := s.plan.Requirement()
		got := make(qos.ResourceVector)
		for _, ex := range reservationExports(s.reservation) {
			got[ex.Resource] += ex.Amount
		}
		level := s.plan.EndToEnd.Name
		for r, want := range req {
			if diff := got[r] - want; diff > tol || diff < -tol {
				bad = append(bad, fmt.Sprintf("session at level %s: resource %s holds %.6f, plan requires %.6f", level, r, got[r], want))
			}
		}
		for r, amt := range got {
			if _, ok := req[r]; !ok && amt > tol {
				bad = append(bad, fmt.Sprintf("session at level %s: stray hold on %s: %.6f", level, r, amt))
			}
		}
		s.mu.Unlock()
	}
	return bad
}
