package proxy

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/obs"
	"qosres/internal/qos"
	"qosres/internal/topo"
)

// batchedWorld is twoHostWorld with the group-commit front end enabled
// and live admission metrics, with configurable per-broker capacity.
func batchedWorld(t *testing.T, policy BatchPolicy, capacity float64) (*Runtime, map[string]*broker.Local, *obs.AdmitMetrics) {
	t.Helper()
	clock := &ManualClock{}
	rt := NewRuntime(clock)
	if err := rt.SetBatchPolicy(policy); err != nil {
		t.Fatal(err)
	}
	admit := obs.NewAdmitMetrics(obs.New())
	rt.InstrumentAdmission(admit)
	brokers := map[string]*broker.Local{}
	for _, h := range []topo.HostID{"X", "Y"} {
		if _, err := rt.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(resource string, host topo.HostID) {
		b, err := broker.NewLocal(resource, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Deploy(host, b); err != nil {
			t.Fatal(err)
		}
		brokers[resource] = b
	}
	mk("cpu@X", "X")
	mk("cpu@Y", "Y")
	mk("net:X->Y", "Y")
	rt.Start()
	t.Cleanup(rt.Stop)
	return rt, brokers, admit
}

// TestBatchedEstablishAndRelease pins that the batching front end is a
// drop-in for the serialized commit path: a single session establishes
// through a one-member round, holds on both hosts, and releases fully.
func TestBatchedEstablishAndRelease(t *testing.T) {
	rt, brokers, admit := batchedWorld(t, BatchPolicy{MaxBatch: 8}, 100)
	service, binding := pipelineService(t)
	s, err := rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Plan.EndToEnd.Name != "best" {
		t.Fatalf("end-to-end = %s", s.Plan.EndToEnd.Name)
	}
	if got := brokers["cpu@X"].Available(); got >= 100 {
		t.Fatalf("cpu@X untouched: %v", got)
	}
	if got := brokers["cpu@Y"].Available(); got >= 100 {
		t.Fatalf("cpu@Y untouched: %v", got)
	}
	if got := admit.Batches.Value(); got != 1 {
		t.Fatalf("Batches = %v, want 1", got)
	}
	if got := admit.BatchMembers.Value(); got != 1 {
		t.Fatalf("BatchMembers = %v, want 1", got)
	}
	if got := admit.Coalesced.Value(); got != 0 {
		t.Fatalf("Coalesced = %v for a lone member, want 0", got)
	}
	if got := admit.StripeLocks.Value(); got == 0 {
		t.Fatal("StripeLocks untouched by a batched round")
	}
	if err := s.Release(); err != nil {
		t.Fatal(err)
	}
	for r, b := range brokers {
		if b.Available() != 100 {
			t.Errorf("%s not restored: %v", r, b.Available())
		}
	}
}

// TestBatchedCoalescesConcurrentAdmissions pins the whole point of the
// front end: commits arriving inside one collection window share a
// round instead of each paying its own 2PC fan-out.
func TestBatchedCoalescesConcurrentAdmissions(t *testing.T) {
	const n = 8
	// Generous capacity: every session fits, so refusals cannot hide a
	// failure to coalesce.
	rt, brokers, admit := batchedWorld(t, BatchPolicy{MaxBatch: n, Window: 100 * time.Millisecond}, 1e6)
	service, binding := pipelineService(t)
	var wg sync.WaitGroup
	errs := make([]error, n)
	sessions := make([]*Session, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sessions[i], errs[i] = rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	if got := admit.BatchMembers.Value(); got != n {
		t.Fatalf("BatchMembers = %v, want %d", got, n)
	}
	if got := admit.Batches.Value(); got >= n {
		t.Fatalf("Batches = %v for %d members inside one window: nothing coalesced", got, n)
	}
	if got := admit.Coalesced.Value(); got == 0 {
		t.Fatal("Coalesced = 0: no member shared a round")
	}
	for _, s := range sessions {
		if err := s.Release(); err != nil {
			t.Fatal(err)
		}
	}
	for r, b := range brokers {
		if b.Available() != 1e6 {
			t.Errorf("%s not restored: %v", r, b.Available())
		}
		if b.Reservations() != 0 {
			t.Errorf("%s leaked %d reservations", r, b.Reservations())
		}
	}
}

// TestBatchedRefusedMemberLeavesNoResidue drives more demand than the
// books hold through the batched path: refused members must leave zero
// residual holds anywhere, and admitted members must hold exactly their
// plans — per-member all-or-nothing inside shared rounds.
func TestBatchedRefusedMemberLeavesNoResidue(t *testing.T) {
	const n = 16
	rt, brokers, _ := batchedWorld(t, BatchPolicy{MaxBatch: n, Window: 20 * time.Millisecond}, 100)
	service, binding := pipelineService(t)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var sessions []*Session
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}})
			if err != nil {
				return
			}
			mu.Lock()
			sessions = append(sessions, s)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(sessions) == 0 {
		t.Fatal("no session admitted at all")
	}
	// Admitted sessions hold exactly the sum of their plans; nothing
	// else is on the books.
	want := map[string]float64{}
	for _, s := range sessions {
		for r, amt := range s.Plan.Requirement() {
			want[r] += amt
		}
	}
	for r, b := range brokers {
		if got := b.Reserved(); got != want[r] {
			t.Errorf("%s reserved %v, want %v (refused members left residue?)", r, got, want[r])
		}
		if b.Available() < 0 {
			t.Errorf("%s overbooked: %v", r, b.Available())
		}
	}
	for _, s := range sessions {
		if err := s.Release(); err != nil {
			t.Fatal(err)
		}
	}
	for r, b := range brokers {
		if b.Available() != 100 {
			t.Errorf("%s not restored: %v", r, b.Available())
		}
		if b.Reservations() != 0 {
			t.Errorf("%s leaked %d reservations", r, b.Reservations())
		}
	}
}

// TestBatchedRuntimeRestart pins that the collector belongs to the
// Start..Stop cycle: a restarted runtime batches again.
func TestBatchedRuntimeRestart(t *testing.T) {
	rt, _, admit := batchedWorld(t, BatchPolicy{MaxBatch: 4}, 1e6)
	service, binding := pipelineService(t)
	spec := SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}}
	s, err := rt.Establish("X", spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Release(); err != nil {
		t.Fatal(err)
	}
	rt.Stop()
	if rt.batchFrontEnd() != nil {
		t.Fatal("stopped runtime still exposes a batch front end")
	}
	rt.Start()
	s, err = rt.Establish("X", spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Release(); err != nil {
		t.Fatal(err)
	}
	if got := admit.Batches.Value(); got != 2 {
		t.Fatalf("Batches = %v across restart, want 2", got)
	}
}

// TestBatchedTraceHasBatchCommitSpan pins the trace contract of the
// batched path: every member keeps its own trace, with a batch_commit
// child under its reserve stage carrying the round-size event, and the
// batched 2PC messages parent under the leader's batch span.
func TestBatchedTraceHasBatchCommitSpan(t *testing.T) {
	clock := &ManualClock{}
	rt := NewRuntime(clock)
	if err := rt.SetBatchPolicy(BatchPolicy{MaxBatch: 4}); err != nil {
		t.Fatal(err)
	}
	rec := obs.NewTraceRecorder(nil, obs.TraceOptions{Sample: 1})
	rt.InstrumentTracing(rec)
	for _, h := range []topo.HostID{"X", "Y"} {
		if _, err := rt.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	for res, host := range map[string]topo.HostID{"cpu@X": "X", "cpu@Y": "Y", "net:X->Y": "Y"} {
		b, err := broker.NewLocal(res, 100)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Deploy(host, b); err != nil {
			t.Fatal(err)
		}
	}
	rt.Start()
	t.Cleanup(rt.Stop)

	service, binding := pipelineService(t)
	s, err := rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Release(); err != nil {
		t.Fatal(err)
	}

	done := waitTraces(t, rec, 1)
	var admission obs.CompletedTrace
	for _, tr := range done {
		for _, sp := range tr.Spans {
			if sp.Name == obs.StageBatchCommit {
				admission = tr
			}
		}
	}
	batch := spansNamed(admission.Spans, obs.StageBatchCommit, "X")
	if len(batch) != 1 {
		t.Fatalf("want 1 batch_commit span, got %d", len(batch))
	}
	reserve := spansNamed(admission.Spans, obs.StageReserve, "X")
	if len(reserve) != 1 || batch[0].Parent != reserve[0].Span {
		t.Fatal("batch_commit span is not a child of the reserve stage span")
	}
	found := false
	for _, ev := range batch[0].Events {
		if ev.Type == obs.EventBatchRound {
			found = true
		}
	}
	if !found {
		t.Fatal("batch_commit span carries no batch_round event")
	}
	// The batched prepare/commit messages parent under the batch span.
	preps := spansNamed(admission.Spans, msgBatchPrepare, "X->Y")
	if len(preps) == 0 {
		t.Fatal("no batch_prepare call span under the admission trace")
	}
}

// TestGroupCommitContentionStress is the group-commit correctness
// harness (run under -race): many goroutines push overlapping plans
// through the batching front end at once. Every member must be
// all-or-nothing, refused members must leave no residue, and the final
// books must be exactly what serially admitting the same winning plans
// onto fresh books produces — hold for hold.
func TestGroupCommitContentionStress(t *testing.T) {
	if testing.Short() {
		t.Skip("contention stress skipped in -short")
	}
	const (
		goroutines = 24
		perG       = 20
		capacity   = 400
	)
	rt, brokers, admit := batchedWorld(t, BatchPolicy{MaxBatch: 16}, capacity)
	service, binding := pipelineService(t)
	spec := SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}}

	var mu sync.Mutex
	var kept []*Session
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s, err := rt.Establish("X", spec)
				if err != nil {
					continue
				}
				// Keep a slice of the winners to stress refusals against
				// standing load; release the rest immediately for churn.
				if (g+i)%3 == 0 {
					mu.Lock()
					kept = append(kept, s)
					mu.Unlock()
					continue
				}
				if err := s.Release(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if got := admit.BatchMembers.Value(); got == 0 {
		t.Fatal("stress never exercised the batched path")
	}

	// Replay the surviving sessions' plans serially onto fresh books:
	// the concurrent batched books must match hold for hold.
	replay := map[string]*broker.Local{}
	for r := range brokers {
		b, err := broker.NewLocal(r, capacity)
		if err != nil {
			t.Fatal(err)
		}
		replay[r] = b
	}
	resolve := func(r string) (broker.Broker, bool) {
		b, ok := replay[r]
		return b, ok
	}
	for _, s := range kept {
		if _, err := broker.ReserveAtomic(0, resolve, s.Plan.Requirement()); err != nil {
			t.Fatalf("serial replay refused a concurrently admitted plan: %v", err)
		}
	}
	for r, b := range brokers {
		got, want := b.HoldAmounts(), replay[r].HoldAmounts()
		if len(got) != len(want) {
			t.Fatalf("%s: %d holds, serial replay has %d", r, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: hold multiset diverged from serial replay: %v vs %v", r, got, want)
			}
		}
		if b.Available() < 0 {
			t.Fatalf("%s overbooked: %v", r, b.Available())
		}
	}

	for _, s := range kept {
		if err := s.Release(); err != nil {
			t.Fatal(err)
		}
	}
	for r, b := range brokers {
		if b.Available() != capacity {
			t.Errorf("%s not restored: %v", r, b.Available())
		}
		if b.Reservations() != 0 {
			t.Errorf("%s leaked %d reservations", r, b.Reservations())
		}
	}
}

// TestBatchedCommitRespectsMemberDeadline pins that one member's
// already-expired context fails that member fast without failing the
// round's other members.
func TestBatchedCommitRespectsMemberDeadline(t *testing.T) {
	rt, brokers, _ := batchedWorld(t, BatchPolicy{MaxBatch: 4}, 1e6)
	fe := rt.batchFrontEnd()
	if fe == nil {
		t.Fatal("no batch front end")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fe.commit(ctx, "X", qos.ResourceVector{"cpu@X": 1}); err == nil {
		t.Fatal("expired member admitted")
	}
	if got := brokers["cpu@X"].Reserved(); got != 0 {
		t.Fatalf("expired member left %v reserved", got)
	}
	// A live member is unaffected.
	live, cancelLive := context.WithCancel(context.Background())
	defer cancelLive()
	res, err := fe.commit(live, "X", qos.ResourceVector{"cpu@X": 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Release(0); err != nil {
		t.Fatal(err)
	}
}

// TestBatchPrepareIdempotent pins the participant contract: a
// duplicated batch-prepare replays recorded outcomes instead of
// reserving twice, and a batch-abort of unknown IDs tombstones them.
func TestBatchPrepareIdempotent(t *testing.T) {
	rt, brokers, _ := batchedWorld(t, BatchPolicy{MaxBatch: 4}, 100)
	p, err := rt.proxyFor("cpu@X")
	if err != nil {
		t.Fatal(err)
	}
	fabric := rt.Transport()
	req := batchPrepareRequest{members: []batchMemberShare{
		{id: "m-1", req: qos.ResourceVector{"cpu@X": 10}},
		{id: "m-2", req: qos.ResourceVector{"cpu@X": 95}},
	}}
	call := func(payload interface{}) interface{} {
		t.Helper()
		resp, err := fabric.Call(context.Background(), "Y", "X", msgBatchPrepare, payload)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	rep := call(req).(batchPrepareReply)
	if rep.results[0].err != nil {
		t.Fatalf("member 1 refused: %v", rep.results[0].err)
	}
	if !errors.Is(rep.results[1].err, broker.ErrInsufficient) {
		t.Fatalf("member 2 err = %v, want ErrInsufficient", rep.results[1].err)
	}
	if got := brokers["cpu@X"].Reserved(); got != 10 {
		t.Fatalf("reserved %v after round, want 10", got)
	}
	// The duplicate replays — no double booking, same per-member split.
	rep = call(req).(batchPrepareReply)
	if rep.results[0].err != nil || !errors.Is(rep.results[1].err, broker.ErrInsufficient) {
		t.Fatalf("replayed outcomes diverged: %+v", rep.results)
	}
	if got := brokers["cpu@X"].Reserved(); got != 10 {
		t.Fatalf("duplicate batch-prepare moved the books: reserved %v", got)
	}
	// Abort everything (m-3 never prepared: tombstoned).
	if _, err := fabric.Call(context.Background(), "Y", "X", msgBatchAbort, batchAbortRequest{ids: []string{"m-1", "m-2", "m-3"}}); err != nil {
		t.Fatal(err)
	}
	if got := brokers["cpu@X"].Reserved(); got != 0 {
		t.Fatalf("abort left %v reserved", got)
	}
	// The tombstone refuses a delayed prepare for m-3.
	rep = call(batchPrepareRequest{members: []batchMemberShare{{id: "m-3", req: qos.ResourceVector{"cpu@X": 5}}}}).(batchPrepareReply)
	if rep.results[0].err == nil {
		t.Fatal("post-abort straggler prepare accepted")
	}
	if p.pending["m-3"] == nil || !p.pending["m-3"].aborted {
		t.Fatal("m-3 not tombstoned")
	}
}
