// Package proxy implements the runtime system architecture of section 3:
// a QoSProxy per end host coordinating the Resource Brokers deployed on
// that host. For each distributed service session the main QoSProxy (the
// one on the service's main server, holding the QoS-Resource Model
// definition) runs the three-phase protocol of section 4.2:
//
//  1. the participating QoSProxies report the current availability (and
//     availability change index) of the session's resources;
//  2. the main QoSProxy executes the planning algorithm locally;
//  3. the main QoSProxy commits the computed end-to-end reservation
//     plan against the participating Resource Brokers.
//
// Phase 3 runs an idempotent two-phase commit over the transport fabric
// (see twophase.go): each participating proxy validates and holds its
// host's share of the plan with broker.ReserveAtomic (validate-at-commit
// — the protocol is inherently time-of-check/time-of-use, so every
// broker's current availability is re-checked under the package-wide
// lock order before any hold is created), and the main proxy then
// commits or aborts all prepares. A refusal leaves zero residual holds;
// Establish then retries planning against a fresh snapshot under the
// runtime's bounded AdmitPolicy.
//
// Every inter-proxy message — phase-1 availability collection, model
// fetch, prepare/commit/abort — crosses an injectable transport.Fabric,
// so the protocol is exercised against message delay, loss, duplication,
// and partitions, not just in-process calls. All protocol entry points
// accept a context: a partitioned or silent participant surfaces as a
// deadline expiry and a degraded-snapshot retry, never as an unbounded
// block. The default fabric (NewRuntime) is perfect — instant, lossless,
// exactly-once — which preserves the in-process semantics for
// deployments that do not inject chaos.
package proxy

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/obs"
	"qosres/internal/qrg"
	"qosres/internal/svc"
	"qosres/internal/topo"
	"qosres/internal/transport"
	"qosres/internal/wal"
)

// Clock supplies the current time to the runtime. Simulated deployments
// use a manual clock; live ones a wall clock.
type Clock interface {
	Now() broker.Time
}

// ManualClock is a settable clock for tests and simulations.
type ManualClock struct {
	mu  sync.Mutex
	now broker.Time
}

// Now implements Clock.
func (c *ManualClock) Now() broker.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d broker.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
}

// Set positions the clock.
func (c *ManualClock) Set(t broker.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = t
}

// message kinds exchanged between QoSProxies over the fabric (the
// transport metrics label messages by these).
const (
	msgAvailability = "availability"
	msgModel        = "model"
	msgPrepare      = "prepare"
	msgCommit       = "commit"
	msgAbort        = "abort"
)

// availabilityRequest asks a participant proxy for phase-1 reports.
type availabilityRequest struct {
	resources []string
}

type availabilityReply struct {
	reports []broker.Report
	err     error
}

// stallRequest is a test hook: it wedges the receiving proxy's serve
// goroutine until release is closed, simulating a QoSProxy that accepts
// messages but never answers them.
type stallRequest struct {
	release chan struct{}
}

// QoSProxy is the per-host reservation coordinator.
type QoSProxy struct {
	host    topo.HostID
	clock   Clock
	brokers map[string]broker.Broker
	// models holds, per service, the components stored at this host
	// under the distributed model-storage approach of section 3.
	models map[string]map[svc.ComponentID]*svc.Component
	// skeletons holds, per service, the skeleton this host (as main
	// QoSProxy) plans from.
	skeletons map[string]Skeleton

	// pending is the idempotency table of the two-phase commit
	// participant (see twophase.go). It is owned by the serve goroutine:
	// only message handlers touch it, so it needs no lock.
	pending map[string]*prepState
	// order remembers pending insertion order for bounded GC.
	order []string

	// tracer records participant spans causally parented under the
	// coordinator's message spans; nil-safe, copied from the runtime at
	// Start.
	tracer *obs.TraceRecorder

	// ep and done belong to the current Start..Stop cycle; a restarted
	// runtime re-registers the endpoint and spawns a fresh serve loop.
	ep   *transport.Endpoint
	done chan struct{}
	wg   sync.WaitGroup

	// wedged mirrors an injected stall (stallRequest) for the read fast
	// lane: while set, availability handlers drop requests unanswered so
	// callers observe the same wedged-proxy symptoms (deadline expiry)
	// the serve loop exhibits.
	wedged atomic.Bool

	// wlog, when non-nil, is the runtime's write-ahead log: message
	// handlers journal prepare/commit/abort records through it in the
	// order the book mutates. wmetrics counts the appends; outcomes
	// answers recovery outcome queries from the runtime's coordinator
	// decide table. All three are set at Start (and kept across
	// CrashRestart), before the serve goroutine exists.
	wlog     *wal.Log
	wmetrics *obs.WALMetrics
	outcomes func(id string) outcomeReply
}

// newQoSProxy constructs (but does not start) a proxy.
func newQoSProxy(host topo.HostID, clock Clock) *QoSProxy {
	return &QoSProxy{
		host:    host,
		clock:   clock,
		brokers: make(map[string]broker.Broker),
		pending: make(map[string]*prepState),
	}
}

// Host returns the proxy's host.
func (p *QoSProxy) Host() topo.HostID { return p.host }

// addr is the proxy's fabric address.
func (p *QoSProxy) addr() transport.Addr { return transport.Addr(p.host) }

// Resources lists the resource IDs of the brokers deployed at this host,
// sorted.
func (p *QoSProxy) Resources() []string {
	out := make([]string, 0, len(p.brokers))
	for r := range p.brokers {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// serve is the proxy goroutine: it owns all broker interactions of its
// host, driven by fabric deliveries.
func (p *QoSProxy) serve(ep *transport.Endpoint, done chan struct{}) {
	defer p.wg.Done()
	for {
		select {
		case <-done:
			return
		case d := <-ep.Inbox():
			p.handle(d)
			d.Done()
		}
	}
}

// handle dispatches one delivery. Replies cross the fabric back to the
// caller (and suffer the route's chaos on the way).
//
// Tracing: the first copy of a traced delivery opens a participant span
// causally parented under the caller's message span; the second copy of
// a duplicated delivery is still processed (the idempotency layer
// resolves it, and its reply covers a lost first reply) but annotates a
// duplicate-suppressed event instead of opening a second span.
func (p *QoSProxy) handle(d transport.Delivery) {
	if d.Span.Sampled {
		if d.Dup {
			p.tracer.EventOn(d.Span, obs.EventDuplicateSuppressed, d.Kind)
		} else if d.Kind != "" {
			sp := p.tracer.ChildOf(d.Span, d.Kind, string(p.host))
			defer sp.End()
		}
	}
	switch req := d.Payload.(type) {
	case availabilityRequest:
		d.Reply(p.handleAvailability(req))
	case modelRequest:
		d.Reply(p.handleModel(req))
	case prepareRequest:
		d.Reply(p.handlePrepare(req))
	case commitRequest:
		d.Reply(p.handleCommit(req))
	case abortRequest:
		d.Reply(p.handleAbort(req))
	case batchPrepareRequest:
		d.Reply(p.handleBatchPrepare(req))
	case batchCommitRequest:
		d.Reply(p.handleBatchCommit(req))
	case batchAbortRequest:
		d.Reply(p.handleBatchAbort(req))
	case outcomeRequest:
		d.Reply(p.handleOutcome(req))
	case stallRequest:
		// Wedge the whole proxy, fast lane included: availability
		// handlers drop requests while wedged so callers time out
		// exactly as they would against a blocked serve loop.
		p.wedged.Store(true)
		<-req.release
		p.wedged.Store(false)
	}
}

// handleAvailabilityFast is the read fast lane: it answers availability
// queries on the delivering goroutine with wait-free broker reads,
// never touching the serve loop or any stripe lock. Tracing mirrors
// handle: the first copy of a traced delivery opens a participant span,
// a duplicate copy annotates a duplicate-suppressed event but is still
// answered (its reply covers a lost first reply). While the proxy is
// wedged (stall injection) the handler declines the delivery instead:
// it falls back to the inbox and queues FIFO behind the stall, exactly
// as every request did before the fast lane existed — answered once
// the stall releases, or timing out on the caller's deadline first.
func (p *QoSProxy) handleAvailabilityFast(d transport.Delivery) bool {
	if p.wedged.Load() {
		return false
	}
	if d.Span.Sampled {
		if d.Dup {
			p.tracer.EventOn(d.Span, obs.EventDuplicateSuppressed, d.Kind)
		} else {
			sp := p.tracer.ChildOf(d.Span, d.Kind, string(p.host))
			defer sp.End()
		}
	}
	req, ok := d.Payload.(availabilityRequest)
	if !ok {
		return false
	}
	d.Reply(p.handleAvailability(req))
	return true
}

func (p *QoSProxy) handleAvailability(req availabilityRequest) availabilityReply {
	now := p.clock.Now()
	reports := make([]broker.Report, 0, len(req.resources))
	for _, r := range req.resources {
		b, ok := p.brokers[r]
		if !ok {
			return availabilityReply{err: fmt.Errorf("proxy %s: no broker for resource %s", p.host, r)}
		}
		reports = append(reports, b.Report(now))
	}
	return availabilityReply{reports: reports}
}

// Runtime is a deployment of QoSProxies over a set of hosts, plus the
// registry mapping each resource to its owning host.
type Runtime struct {
	clock   Clock
	fabric  *transport.Fabric
	proxies map[topo.HostID]*QoSProxy
	owner   map[string]topo.HostID
	mu      sync.Mutex
	started bool
	// stages, when non-nil, receives per-phase latency observations of
	// every Establish call (see Instrument).
	stages *obs.PlanStages
	// admit receives admission-path counter increments (see
	// InstrumentAdmission); always non-nil, inert by default.
	admit *obs.AdmitMetrics
	// policy bounds the validate-at-commit retry loop of Establish.
	policy AdmitPolicy
	// jitter is the seeded source behind the policy's full-jitter
	// backoff; nil when jitter is off.
	jitter *lockedRand
	// gate bounds concurrent admissions; excess Establish calls are shed
	// with transport.ErrOverloaded (see SetMaxInFlight).
	gate *transport.Gate
	// templates serves compiled QRG templates to Establish; nil falls
	// back to building every graph from scratch (see SetTemplateCache).
	templates *qrg.TemplateCache
	// memo serves epoch-validated memoized plans to Establish; nil
	// plans every admission afresh (see SetPlanMemo).
	memo *core.PlanMemo
	// sessions is the registry of live sessions, the set the repair
	// layer walks when a fault invalidates reservations.
	sessions map[*Session]struct{}
	// leaseTTL, when positive, leases every new session's holds: they
	// expire leaseTTL after the last heartbeat (see SetLeaseTTL).
	leaseTTL broker.Time
	// faults receives repair-outcome counter increments (see
	// InstrumentFaults); always non-nil, inert by default.
	faults *obs.FaultMetrics
	// adapt receives renegotiation counter increments (see
	// InstrumentAdapt); always non-nil, inert by default.
	adapt *obs.AdaptMetrics
	// qosDelivered accumulates delivered QoS-seconds (end-to-end rank ×
	// held time) of torn-down sessions; live sessions' running segments
	// are added on read (DeliveredQoSSeconds).
	qosDelivered float64
	// tracer records distributed traces of Establish and repair sweeps
	// (see InstrumentTracing); nil (the default) is inert.
	tracer *obs.TraceRecorder
	// reports caches the last availability report received from each
	// resource's owning proxy. When a participant is unreachable,
	// admission degrades to planning from this cache, aged by α (see
	// collectAvailability), instead of blocking on the partition.
	reports map[string]broker.Report
	// nextReq numbers two-phase-commit request IDs.
	nextReq uint64
	// batchPolicy configures the group-commit admission front end (see
	// SetBatchPolicy); batcher is the live collector of the current
	// Start..Stop cycle, nil when batching is disabled.
	batchPolicy BatchPolicy
	batcher     *admitBatcher
	// walLog, when non-nil, is the durability log (see EnableWAL):
	// participant handlers and the coordinator journal protocol records
	// through it, and Recover/CrashRestart replay it. walMetrics counts
	// appends, replays, and reconciliation outcomes; always non-nil,
	// inert by default.
	walLog     *wal.Log
	walMetrics *obs.WALMetrics
	// decided is the coordinator's commit-decision table — request IDs
	// whose commit point was journaled, with the decided lease expiry —
	// under its own lock so recovery outcome queries never touch rt.mu.
	// Rebuilt from decide records on recovery.
	decideMu sync.Mutex
	decided  map[string]broker.Time
	// crashMu serializes CrashRestart cycles against each other and
	// against Stop (which must not double-close a crashed proxy's done
	// channel mid-restart).
	crashMu sync.Mutex
}

// NewRuntime creates an empty runtime over a clock with the default
// admission policy and a perfect transport fabric (instant, lossless,
// exactly-once — the in-process semantics). SetTransport swaps in a
// fabric with injected chaos. QRG construction is served from an
// (unobserved) template cache; SetTemplateCache swaps in an instrumented
// one or disables the fast lane.
func NewRuntime(clock Clock) *Runtime {
	return &Runtime{
		clock:     clock,
		fabric:    transport.New(transport.Options{}),
		proxies:   make(map[topo.HostID]*QoSProxy),
		owner:     make(map[string]topo.HostID),
		stages:    &obs.PlanStages{},
		admit:     &obs.AdmitMetrics{},
		policy:    DefaultAdmitPolicy,
		gate:      transport.NewGate(0),
		templates: qrg.NewTemplateCache(nil),
		sessions:  make(map[*Session]struct{}),
		faults:    &obs.FaultMetrics{},
		adapt:     &obs.AdaptMetrics{},
		reports:   make(map[string]broker.Report),

		walMetrics: &obs.WALMetrics{},
		decided:    make(map[string]broker.Time),
	}
}

// SetTransport replaces the runtime's message fabric — typically with
// one carrying injected loss, latency, duplication, or partitions. Must
// be called before Start.
func (rt *Runtime) SetTransport(f *transport.Fabric) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.started {
		return errors.New("proxy: runtime already started")
	}
	if f == nil {
		f = transport.New(transport.Options{})
	}
	rt.fabric = f
	return nil
}

// Transport returns the runtime's message fabric (for partition/heal
// injection and end-of-run settling).
func (rt *Runtime) Transport() *transport.Fabric {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.fabric
}

// SetBatchPolicy configures the group-commit admission front end: with
// MaxBatch of at least 2, concurrent Establish commits coalesce into
// batched two-phase-commit rounds (one prepare and one commit message
// per participating host per round, one stripe sweep per host). The
// default policy disables batching — every commit runs the serialized
// commitPlan path. Must be called before Start.
func (rt *Runtime) SetBatchPolicy(p BatchPolicy) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.started {
		return errors.New("proxy: runtime already started")
	}
	if p.Window < 0 {
		p.Window = 0
	}
	rt.batchPolicy = p
	return nil
}

// batchFrontEnd returns the live batching collector, or nil when
// batching is disabled or the runtime is stopped.
func (rt *Runtime) batchFrontEnd() *admitBatcher {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.batcher
}

// SetMaxInFlight bounds the number of concurrently admitted Establish
// calls: beyond max, calls are shed immediately with
// transport.ErrOverloaded instead of queueing. 0 (the default) means
// unbounded.
func (rt *Runtime) SetMaxInFlight(max int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.gate = transport.NewGate(max)
}

// admitGate returns the overload gate.
func (rt *Runtime) admitGate() *transport.Gate {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.gate
}

// SetLeaseTTL configures reservation leasing: when ttl is positive,
// every subsequently established session's holds expire ttl after the
// last heartbeat, so a crashed or partitioned main proxy can never
// strand capacity — a lease sweep (broker.Pool.ExpireLeases) reclaims
// it. The same TTL leases two-phase-commit prepares, so a prepare
// orphaned by a lost commit or abort message is reclaimed by the sweep
// too. Zero disables leasing (the default; holds live until released).
func (rt *Runtime) SetLeaseTTL(ttl broker.Time) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if ttl < 0 {
		ttl = 0
	}
	rt.leaseTTL = ttl
}

// leaseTTLNow returns the configured lease TTL (0 = leasing disabled).
func (rt *Runtime) leaseTTLNow() broker.Time {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.leaseTTL
}

// InstrumentTracing attaches a distributed-trace recorder: every
// Establish and repair sweep then opens a trace whose spans follow the
// protocol across the fabric (stage children, per-message call spans,
// remote participant spans). Call before Start so the proxies see the
// recorder; a nil recorder leaves the runtime untraced at no cost.
func (rt *Runtime) InstrumentTracing(rec *obs.TraceRecorder) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.tracer = rec
}

// traceRecorder returns the attached recorder (possibly nil; a nil
// recorder is inert).
func (rt *Runtime) traceRecorder() *obs.TraceRecorder {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.tracer
}

// InstrumentFaults attaches repair-outcome counters: every fault-driven
// session repair then counts as repaired, degraded, or failed. A nil
// argument (or one built from a nil registry) leaves the runtime
// unobserved at no cost.
func (rt *Runtime) InstrumentFaults(m *obs.FaultMetrics) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if m == nil {
		m = &obs.FaultMetrics{}
	}
	rt.faults = m
}

// faultMetrics returns the attached repair counters (never nil).
func (rt *Runtime) faultMetrics() *obs.FaultMetrics {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.faults
}

// InstrumentAdapt attaches adaptation counters: every successful
// renegotiation then counts as an upgrade or a downgrade. A nil
// argument (or one built from a nil registry) leaves the runtime
// unobserved at no cost.
func (rt *Runtime) InstrumentAdapt(m *obs.AdaptMetrics) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if m == nil {
		m = &obs.AdaptMetrics{}
	}
	rt.adapt = m
}

// adaptMetrics returns the attached adaptation counters (never nil).
func (rt *Runtime) adaptMetrics() *obs.AdaptMetrics {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.adapt
}

// addDeliveredQoS folds a torn-down session's QoS-seconds into the
// runtime total. Called from terminateLocked with s.mu held (the lock
// order is always s.mu before rt.mu).
func (rt *Runtime) addDeliveredQoS(v float64) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.qosDelivered += v
}

// DeliveredQoSSeconds returns the delivered QoS-seconds so far: the
// sum over all sessions, torn down and live, of end-to-end rank × time
// held at that rank — the headline adaptation metric. Monotone in time;
// an adaptation policy that upgrades into headroom raises it, one that
// flaps or over-downgrades lowers it.
func (rt *Runtime) DeliveredQoSSeconds() float64 {
	now := rt.clock.Now()
	rt.mu.Lock()
	total := rt.qosDelivered
	sessions := make([]*Session, 0, len(rt.sessions))
	for s := range rt.sessions {
		sessions = append(sessions, s)
	}
	rt.mu.Unlock()
	for _, s := range sessions {
		s.mu.Lock()
		if s.state == StateActive {
			total += s.qosSeconds
			if s.plan != nil && now > s.qosMarkAt {
				total += float64(now-s.qosMarkAt) * float64(s.plan.Rank)
			}
		}
		s.mu.Unlock()
	}
	return total
}

// register adds a live session to the repair registry.
func (rt *Runtime) register(s *Session) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.sessions[s] = struct{}{}
}

// unregister drops a session from the repair registry. Called from the
// session's teardown path with s.mu held; the lock order is always
// s.mu before rt.mu, never the reverse.
func (rt *Runtime) unregister(s *Session) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	delete(rt.sessions, s)
}

// LiveSessions returns the number of registered (active) sessions.
func (rt *Runtime) LiveSessions() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.sessions)
}

// SetTemplateCache replaces the compiled-template cache Establish
// draws QRG graphs from — pass one built over a live registry to count
// hits and misses, or nil to disable the fast lane and rebuild every
// graph from scratch (the reference path).
func (rt *Runtime) SetTemplateCache(c *qrg.TemplateCache) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.templates = c
}

// templateFor returns the session's compiled template, or nil when the
// fast lane is disabled or compilation fails (Establish then falls back
// to qrg.Build, which reports errors with its own lazier semantics).
func (rt *Runtime) templateFor(spec SessionSpec) *qrg.Template {
	rt.mu.Lock()
	c := rt.templates
	rt.mu.Unlock()
	if c == nil {
		return nil
	}
	tpl, err := c.Get(spec.Service, spec.Binding)
	if err != nil {
		return nil
	}
	return tpl
}

// SetPlanMemo attaches an epoch-validated plan memo: admissions whose
// (template, planner) pair already planned against an identical epoch
// vector reuse the memoized plan and skip the build and plan stages,
// going straight to validate-at-commit. Requires the template cache
// (sessions without a compiled template never memoize). nil — the
// default — disables memoization.
func (rt *Runtime) SetPlanMemo(m *core.PlanMemo) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.memo = m
}

// planMemo returns the attached plan memo, possibly nil (a nil
// *core.PlanMemo is inert: Get always misses, Put is a no-op).
func (rt *Runtime) planMemo() *core.PlanMemo {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.memo
}

// Instrument attaches stage-latency histograms: every Establish then
// records its phase-1 availability collection, QRG build, planning and
// phase-3 dispatch durations into the corresponding histograms. Call
// before Start; a nil argument (or one built from a nil registry)
// leaves the runtime unobserved at no cost.
func (rt *Runtime) Instrument(stages *obs.PlanStages) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if stages == nil {
		stages = &obs.PlanStages{}
	}
	rt.stages = stages
}

// planStages returns the attached stage histograms (never nil; the
// default set is inert).
func (rt *Runtime) planStages() *obs.PlanStages {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.stages
}

// InstrumentAdmission attaches admission counters: every Establish then
// counts its commit-time refusals, rollbacks, and replanning retries.
// A nil argument (or one built from a nil registry) leaves the runtime
// unobserved at no cost.
func (rt *Runtime) InstrumentAdmission(m *obs.AdmitMetrics) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if m == nil {
		m = &obs.AdmitMetrics{}
	}
	rt.admit = m
}

// SetAdmitPolicy replaces the validate-at-commit retry policy applied
// by Establish. Negative MaxRetries is treated as zero (a single
// attempt, no replanning). When the policy enables Jitter, the backoff
// sleeps are drawn full-jitter from a source seeded with JitterSeed, so
// retry storms de-synchronize deterministically under a fixed seed.
func (rt *Runtime) SetAdmitPolicy(p AdmitPolicy) {
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.policy = p
	if p.Jitter {
		rt.jitter = newLockedRand(p.JitterSeed)
	} else {
		rt.jitter = nil
	}
}

// admitState returns the current policy, counters, and jitter source
// under one lock.
func (rt *Runtime) admitState() (AdmitPolicy, *obs.AdmitMetrics, *lockedRand) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.policy, rt.admit, rt.jitter
}

// lockedRand is a mutex-guarded rand.Rand shared by concurrent
// admission retries.
type lockedRand struct {
	mu sync.Mutex
	r  *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{r: rand.New(rand.NewSource(seed))}
}

// Int63n draws uniformly from [0, n).
func (l *lockedRand) Int63n(n int64) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Int63n(n)
}

// cachedReport returns the last availability report seen from a
// resource's owning proxy, if any.
func (rt *Runtime) cachedReport(resource string) (broker.Report, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rep, ok := rt.reports[resource]
	return rep, ok
}

// storeReports refreshes the availability cache with fresh phase-1
// reports.
func (rt *Runtime) storeReports(reports []broker.Report) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, rep := range reports {
		rt.reports[rep.Resource] = rep
	}
}

// brokerFor resolves a resource to its deployed broker. The owner and
// per-proxy broker maps are frozen once Start has been called (Deploy
// refuses afterwards), so reading them here cannot race with the proxy
// goroutines.
func (rt *Runtime) brokerFor(resource string) (broker.Broker, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	host, ok := rt.owner[resource]
	if !ok {
		return nil, false
	}
	b, ok := rt.proxies[host].brokers[resource]
	return b, ok
}

// AddHost deploys a QoSProxy on a host. It must be called before Start.
func (rt *Runtime) AddHost(host topo.HostID) (*QoSProxy, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.started {
		return nil, errors.New("proxy: runtime already started")
	}
	if _, dup := rt.proxies[host]; dup {
		return nil, fmt.Errorf("proxy: host %s already has a QoSProxy", host)
	}
	p := newQoSProxy(host, rt.clock)
	rt.proxies[host] = p
	return p, nil
}

// Deploy registers a Resource Broker at a host's proxy. Following the
// paper's RSVP compatibility note, end-to-end network brokers should be
// deployed at the receiver-side host.
func (rt *Runtime) Deploy(host topo.HostID, b broker.Broker) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.started {
		return errors.New("proxy: runtime already started")
	}
	p, ok := rt.proxies[host]
	if !ok {
		return fmt.Errorf("proxy: no QoSProxy on host %s", host)
	}
	r := b.Resource()
	if prev, dup := rt.owner[r]; dup {
		return fmt.Errorf("proxy: resource %s already deployed on host %s", r, prev)
	}
	p.brokers[r] = b
	rt.owner[r] = host
	return nil
}

// Owner returns the host whose proxy owns a resource.
func (rt *Runtime) Owner(resource string) (topo.HostID, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	h, ok := rt.owner[resource]
	return h, ok
}

// Start registers every proxy's fabric endpoint and launches its serve
// goroutine. Idempotent; a stopped runtime can be started again (the
// endpoints are re-registered).
func (rt *Runtime) Start() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.started {
		return
	}
	rt.started = true
	for _, p := range rt.proxies {
		p.tracer = rt.tracer
		p.wlog = rt.walLog
		p.wmetrics = rt.walMetrics
		p.outcomes = rt.lookupOutcome
		p.ep = rt.fabric.Endpoint(p.addr(), 16)
		p.done = make(chan struct{})
		// Availability queries take the read fast lane: wait-free broker
		// reads answered on the delivering goroutine, bypassing the serve
		// loop entirely. The serve loop keeps its availabilityRequest case
		// as a fallback for deliveries raced ahead of this registration.
		p.ep.SetHandler(msgAvailability, p.handleAvailabilityFast)
		p.wg.Add(1)
		go p.serve(p.ep, p.done)
	}
	if rt.batchPolicy.MaxBatch > 1 {
		rt.batcher = newAdmitBatcher(rt, rt.batchPolicy)
		rt.batcher.wg.Add(1)
		go rt.batcher.run()
	}
}

// Stop terminates every proxy goroutine, closes their endpoints (the
// fabric then drops deliveries to them), and waits for the goroutines.
func (rt *Runtime) Stop() {
	// Serialize with CrashRestart: a crashed proxy's done channel is
	// already closed, and the restart must finish re-arming it before
	// Stop tears it down.
	rt.crashMu.Lock()
	defer rt.crashMu.Unlock()
	rt.mu.Lock()
	if !rt.started {
		rt.mu.Unlock()
		return
	}
	rt.started = false
	batcher := rt.batcher
	rt.batcher = nil
	proxies := make([]*QoSProxy, 0, len(rt.proxies))
	for _, p := range rt.proxies {
		proxies = append(proxies, p)
	}
	rt.mu.Unlock()
	if batcher != nil {
		// The collector and its in-flight rounds finish against the
		// still-running serve goroutines before those are torn down.
		batcher.stop()
	}
	for _, p := range proxies {
		close(p.done)
		p.ep.Close()
	}
	for _, p := range proxies {
		p.wg.Wait()
	}
}

// proxyFor returns the proxy owning a resource.
func (rt *Runtime) proxyFor(resource string) (*QoSProxy, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	host, ok := rt.owner[resource]
	if !ok {
		return nil, fmt.Errorf("proxy: resource %s deployed nowhere", resource)
	}
	return rt.proxies[host], nil
}

// hostFor returns the host owning a resource.
func (rt *Runtime) hostFor(resource string) (topo.HostID, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	host, ok := rt.owner[resource]
	if !ok {
		return "", fmt.Errorf("proxy: resource %s deployed nowhere", resource)
	}
	return host, nil
}
