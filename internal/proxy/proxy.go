// Package proxy implements the runtime system architecture of section 3:
// a QoSProxy per end host coordinating the Resource Brokers deployed on
// that host. For each distributed service session the main QoSProxy (the
// one on the service's main server, holding the QoS-Resource Model
// definition) runs the three-phase protocol of section 4.2:
//
//  1. the participating QoSProxies report the current availability (and
//     availability change index) of the session's resources;
//  2. the main QoSProxy executes the planning algorithm locally;
//  3. the main QoSProxy commits the computed end-to-end reservation
//     plan against the participating Resource Brokers.
//
// Phase 3 uses a validate-at-commit protocol rather than the naive
// per-proxy segment dispatch: because the protocol is inherently
// time-of-check/time-of-use (availability can change between the phase-1
// snapshot and the reserve), the commit re-validates every broker's
// current availability against the planned requirement atomically —
// all-or-nothing across the plan's brokers, deadlock-free via the sorted
// resource-ID lock ordering of broker.ReserveAtomic. A refusal leaves
// zero residual holds; Establish then retries planning against a fresh
// snapshot under the runtime's bounded AdmitPolicy.
//
// Each QoSProxy runs as its own goroutine and is driven by message
// passing for phase 1 and model storage, mirroring the distributed
// deployment; the phase-3 commit goes to the (concurrency-safe) brokers
// directly, since cross-proxy atomicity cannot be expressed as
// independent per-proxy messages without a two-phase commit.
package proxy

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"qosres/internal/broker"
	"qosres/internal/obs"
	"qosres/internal/qrg"
	"qosres/internal/svc"
	"qosres/internal/topo"
)

// Clock supplies the current time to the runtime. Simulated deployments
// use a manual clock; live ones a wall clock.
type Clock interface {
	Now() broker.Time
}

// ManualClock is a settable clock for tests and simulations.
type ManualClock struct {
	mu  sync.Mutex
	now broker.Time
}

// Now implements Clock.
func (c *ManualClock) Now() broker.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d broker.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
}

// Set positions the clock.
func (c *ManualClock) Set(t broker.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = t
}

// message types exchanged with a QoSProxy goroutine.

type availabilityRequest struct {
	resources []string
	reply     chan availabilityReply
}

type availabilityReply struct {
	reports []broker.Report
	err     error
}

// QoSProxy is the per-host reservation coordinator.
type QoSProxy struct {
	host    topo.HostID
	clock   Clock
	brokers map[string]broker.Broker
	// models holds, per service, the components stored at this host
	// under the distributed model-storage approach of section 3.
	models map[string]map[svc.ComponentID]*svc.Component
	// skeletons holds, per service, the skeleton this host (as main
	// QoSProxy) plans from.
	skeletons map[string]Skeleton

	requests chan interface{}
	done     chan struct{}
	wg       sync.WaitGroup
}

// newQoSProxy constructs (but does not start) a proxy.
func newQoSProxy(host topo.HostID, clock Clock) *QoSProxy {
	return &QoSProxy{
		host:     host,
		clock:    clock,
		brokers:  make(map[string]broker.Broker),
		requests: make(chan interface{}, 16),
		done:     make(chan struct{}),
	}
}

// Host returns the proxy's host.
func (p *QoSProxy) Host() topo.HostID { return p.host }

// Resources lists the resource IDs of the brokers deployed at this host,
// sorted.
func (p *QoSProxy) Resources() []string {
	out := make([]string, 0, len(p.brokers))
	for r := range p.brokers {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// serve is the proxy goroutine: it owns all broker interactions of its
// host.
func (p *QoSProxy) serve() {
	defer p.wg.Done()
	for {
		select {
		case <-p.done:
			return
		case m := <-p.requests:
			switch req := m.(type) {
			case availabilityRequest:
				req.reply <- p.handleAvailability(req)
			case modelRequest:
				req.reply <- p.handleModel(req)
			}
		}
	}
}

func (p *QoSProxy) handleAvailability(req availabilityRequest) availabilityReply {
	now := p.clock.Now()
	reports := make([]broker.Report, 0, len(req.resources))
	for _, r := range req.resources {
		b, ok := p.brokers[r]
		if !ok {
			return availabilityReply{err: fmt.Errorf("proxy %s: no broker for resource %s", p.host, r)}
		}
		reports = append(reports, b.Report(now))
	}
	return availabilityReply{reports: reports}
}

// Runtime is a deployment of QoSProxies over a set of hosts, plus the
// registry mapping each resource to its owning host.
type Runtime struct {
	clock   Clock
	proxies map[topo.HostID]*QoSProxy
	owner   map[string]topo.HostID
	mu      sync.Mutex
	started bool
	// stages, when non-nil, receives per-phase latency observations of
	// every Establish call (see Instrument).
	stages *obs.PlanStages
	// admit receives admission-path counter increments (see
	// InstrumentAdmission); always non-nil, inert by default.
	admit *obs.AdmitMetrics
	// policy bounds the validate-at-commit retry loop of Establish.
	policy AdmitPolicy
	// templates serves compiled QRG templates to Establish; nil falls
	// back to building every graph from scratch (see SetTemplateCache).
	templates *qrg.TemplateCache
	// sessions is the registry of live sessions, the set the repair
	// layer walks when a fault invalidates reservations.
	sessions map[*Session]struct{}
	// leaseTTL, when positive, leases every new session's holds: they
	// expire leaseTTL after the last heartbeat (see SetLeaseTTL).
	leaseTTL broker.Time
	// faults receives repair-outcome counter increments (see
	// InstrumentFaults); always non-nil, inert by default.
	faults *obs.FaultMetrics
}

// NewRuntime creates an empty runtime over a clock with the default
// admission policy. QRG construction is served from an (unobserved)
// template cache; SetTemplateCache swaps in an instrumented one or
// disables the fast lane.
func NewRuntime(clock Clock) *Runtime {
	return &Runtime{
		clock:     clock,
		proxies:   make(map[topo.HostID]*QoSProxy),
		owner:     make(map[string]topo.HostID),
		stages:    &obs.PlanStages{},
		admit:     &obs.AdmitMetrics{},
		policy:    DefaultAdmitPolicy,
		templates: qrg.NewTemplateCache(nil),
		sessions:  make(map[*Session]struct{}),
		faults:    &obs.FaultMetrics{},
	}
}

// SetLeaseTTL configures reservation leasing: when ttl is positive,
// every subsequently established session's holds expire ttl after the
// last heartbeat, so a crashed or partitioned main proxy can never
// strand capacity — a lease sweep (broker.Pool.ExpireLeases) reclaims
// it. Zero disables leasing (the default; holds live until released).
func (rt *Runtime) SetLeaseTTL(ttl broker.Time) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if ttl < 0 {
		ttl = 0
	}
	rt.leaseTTL = ttl
}

// leaseTTLNow returns the configured lease TTL (0 = leasing disabled).
func (rt *Runtime) leaseTTLNow() broker.Time {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.leaseTTL
}

// InstrumentFaults attaches repair-outcome counters: every fault-driven
// session repair then counts as repaired, degraded, or failed. A nil
// argument (or one built from a nil registry) leaves the runtime
// unobserved at no cost.
func (rt *Runtime) InstrumentFaults(m *obs.FaultMetrics) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if m == nil {
		m = &obs.FaultMetrics{}
	}
	rt.faults = m
}

// faultMetrics returns the attached repair counters (never nil).
func (rt *Runtime) faultMetrics() *obs.FaultMetrics {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.faults
}

// register adds a live session to the repair registry.
func (rt *Runtime) register(s *Session) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.sessions[s] = struct{}{}
}

// unregister drops a session from the repair registry. Called from the
// session's teardown path with s.mu held; the lock order is always
// s.mu before rt.mu, never the reverse.
func (rt *Runtime) unregister(s *Session) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	delete(rt.sessions, s)
}

// LiveSessions returns the number of registered (active) sessions.
func (rt *Runtime) LiveSessions() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.sessions)
}

// SetTemplateCache replaces the compiled-template cache Establish
// draws QRG graphs from — pass one built over a live registry to count
// hits and misses, or nil to disable the fast lane and rebuild every
// graph from scratch (the reference path).
func (rt *Runtime) SetTemplateCache(c *qrg.TemplateCache) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.templates = c
}

// templateFor returns the session's compiled template, or nil when the
// fast lane is disabled or compilation fails (Establish then falls back
// to qrg.Build, which reports errors with its own lazier semantics).
func (rt *Runtime) templateFor(spec SessionSpec) *qrg.Template {
	rt.mu.Lock()
	c := rt.templates
	rt.mu.Unlock()
	if c == nil {
		return nil
	}
	tpl, err := c.Get(spec.Service, spec.Binding)
	if err != nil {
		return nil
	}
	return tpl
}

// Instrument attaches stage-latency histograms: every Establish then
// records its phase-1 availability collection, QRG build, planning and
// phase-3 dispatch durations into the corresponding histograms. Call
// before Start; a nil argument (or one built from a nil registry)
// leaves the runtime unobserved at no cost.
func (rt *Runtime) Instrument(stages *obs.PlanStages) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if stages == nil {
		stages = &obs.PlanStages{}
	}
	rt.stages = stages
}

// planStages returns the attached stage histograms (never nil; the
// default set is inert).
func (rt *Runtime) planStages() *obs.PlanStages {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.stages
}

// InstrumentAdmission attaches admission counters: every Establish then
// counts its commit-time refusals, rollbacks, and replanning retries.
// A nil argument (or one built from a nil registry) leaves the runtime
// unobserved at no cost.
func (rt *Runtime) InstrumentAdmission(m *obs.AdmitMetrics) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if m == nil {
		m = &obs.AdmitMetrics{}
	}
	rt.admit = m
}

// SetAdmitPolicy replaces the validate-at-commit retry policy applied
// by Establish. Negative MaxRetries is treated as zero (a single
// attempt, no replanning).
func (rt *Runtime) SetAdmitPolicy(p AdmitPolicy) {
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.policy = p
}

// admitState returns the current policy and counters under one lock.
func (rt *Runtime) admitState() (AdmitPolicy, *obs.AdmitMetrics) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.policy, rt.admit
}

// brokerFor resolves a resource to its deployed broker. The owner and
// per-proxy broker maps are frozen once Start has been called (Deploy
// refuses afterwards), so reading them here cannot race with the proxy
// goroutines.
func (rt *Runtime) brokerFor(resource string) (broker.Broker, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	host, ok := rt.owner[resource]
	if !ok {
		return nil, false
	}
	b, ok := rt.proxies[host].brokers[resource]
	return b, ok
}

// AddHost deploys a QoSProxy on a host. It must be called before Start.
func (rt *Runtime) AddHost(host topo.HostID) (*QoSProxy, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.started {
		return nil, errors.New("proxy: runtime already started")
	}
	if _, dup := rt.proxies[host]; dup {
		return nil, fmt.Errorf("proxy: host %s already has a QoSProxy", host)
	}
	p := newQoSProxy(host, rt.clock)
	rt.proxies[host] = p
	return p, nil
}

// Deploy registers a Resource Broker at a host's proxy. Following the
// paper's RSVP compatibility note, end-to-end network brokers should be
// deployed at the receiver-side host.
func (rt *Runtime) Deploy(host topo.HostID, b broker.Broker) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.started {
		return errors.New("proxy: runtime already started")
	}
	p, ok := rt.proxies[host]
	if !ok {
		return fmt.Errorf("proxy: no QoSProxy on host %s", host)
	}
	r := b.Resource()
	if prev, dup := rt.owner[r]; dup {
		return fmt.Errorf("proxy: resource %s already deployed on host %s", r, prev)
	}
	p.brokers[r] = b
	rt.owner[r] = host
	return nil
}

// Owner returns the host whose proxy owns a resource.
func (rt *Runtime) Owner(resource string) (topo.HostID, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	h, ok := rt.owner[resource]
	return h, ok
}

// Start launches every proxy goroutine.
func (rt *Runtime) Start() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.started {
		return
	}
	rt.started = true
	for _, p := range rt.proxies {
		p.wg.Add(1)
		go p.serve()
	}
}

// Stop terminates every proxy goroutine and waits for them.
func (rt *Runtime) Stop() {
	rt.mu.Lock()
	if !rt.started {
		rt.mu.Unlock()
		return
	}
	rt.started = false
	rt.mu.Unlock()
	for _, p := range rt.proxies {
		close(p.done)
	}
	for _, p := range rt.proxies {
		p.wg.Wait()
	}
}

// proxyFor returns the proxy owning a resource.
func (rt *Runtime) proxyFor(resource string) (*QoSProxy, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	host, ok := rt.owner[resource]
	if !ok {
		return nil, fmt.Errorf("proxy: resource %s deployed nowhere", resource)
	}
	return rt.proxies[host], nil
}
