// Package proxy implements the runtime system architecture of section 3:
// a QoSProxy per end host coordinating the Resource Brokers deployed on
// that host. For each distributed service session the main QoSProxy (the
// one on the service's main server, holding the QoS-Resource Model
// definition) runs the three-phase protocol of section 4.2:
//
//  1. the participating QoSProxies report the current availability (and
//     availability change index) of the session's resources;
//  2. the main QoSProxy executes the planning algorithm locally;
//  3. the main QoSProxy dispatches the computed end-to-end reservation
//     plan's segments to the participating QoSProxies, which make the
//     actual reservations with their local Resource Brokers. A failed
//     segment aborts the session and rolls back the segments already
//     reserved.
//
// Each QoSProxy runs as its own goroutine and is driven purely by
// message passing, mirroring the distributed deployment: the only shared
// state between proxies is the brokers they own.
package proxy

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"qosres/internal/broker"
	"qosres/internal/obs"
	"qosres/internal/qos"
	"qosres/internal/svc"
	"qosres/internal/topo"
)

// Clock supplies the current time to the runtime. Simulated deployments
// use a manual clock; live ones a wall clock.
type Clock interface {
	Now() broker.Time
}

// ManualClock is a settable clock for tests and simulations.
type ManualClock struct {
	mu  sync.Mutex
	now broker.Time
}

// Now implements Clock.
func (c *ManualClock) Now() broker.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d broker.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
}

// Set positions the clock.
func (c *ManualClock) Set(t broker.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = t
}

// message types exchanged with a QoSProxy goroutine.

type availabilityRequest struct {
	resources []string
	reply     chan availabilityReply
}

type availabilityReply struct {
	reports []broker.Report
	err     error
}

type reserveRequest struct {
	// req holds only the resources owned by this proxy.
	req   qos.ResourceVector
	reply chan reserveReply
}

type reserveReply struct {
	reservation *segmentReservation
	err         error
}

type releaseRequest struct {
	reservation *segmentReservation
	reply       chan error
}

// segmentReservation is one proxy's share of an end-to-end reservation.
type segmentReservation struct {
	owner topo.HostID
	parts []segmentPart
}

type segmentPart struct {
	b  broker.Broker
	id broker.ReservationID
}

// QoSProxy is the per-host reservation coordinator.
type QoSProxy struct {
	host    topo.HostID
	clock   Clock
	brokers map[string]broker.Broker
	// models holds, per service, the components stored at this host
	// under the distributed model-storage approach of section 3.
	models map[string]map[svc.ComponentID]*svc.Component
	// skeletons holds, per service, the skeleton this host (as main
	// QoSProxy) plans from.
	skeletons map[string]Skeleton

	requests chan interface{}
	done     chan struct{}
	wg       sync.WaitGroup
}

// newQoSProxy constructs (but does not start) a proxy.
func newQoSProxy(host topo.HostID, clock Clock) *QoSProxy {
	return &QoSProxy{
		host:     host,
		clock:    clock,
		brokers:  make(map[string]broker.Broker),
		requests: make(chan interface{}, 16),
		done:     make(chan struct{}),
	}
}

// Host returns the proxy's host.
func (p *QoSProxy) Host() topo.HostID { return p.host }

// Resources lists the resource IDs of the brokers deployed at this host,
// sorted.
func (p *QoSProxy) Resources() []string {
	out := make([]string, 0, len(p.brokers))
	for r := range p.brokers {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// serve is the proxy goroutine: it owns all broker interactions of its
// host.
func (p *QoSProxy) serve() {
	defer p.wg.Done()
	for {
		select {
		case <-p.done:
			return
		case m := <-p.requests:
			switch req := m.(type) {
			case availabilityRequest:
				req.reply <- p.handleAvailability(req)
			case reserveRequest:
				req.reply <- p.handleReserve(req)
			case releaseRequest:
				req.reply <- p.handleRelease(req)
			case modelRequest:
				req.reply <- p.handleModel(req)
			}
		}
	}
}

func (p *QoSProxy) handleAvailability(req availabilityRequest) availabilityReply {
	now := p.clock.Now()
	reports := make([]broker.Report, 0, len(req.resources))
	for _, r := range req.resources {
		b, ok := p.brokers[r]
		if !ok {
			return availabilityReply{err: fmt.Errorf("proxy %s: no broker for resource %s", p.host, r)}
		}
		reports = append(reports, b.Report(now))
	}
	return availabilityReply{reports: reports}
}

func (p *QoSProxy) handleReserve(req reserveRequest) reserveReply {
	now := p.clock.Now()
	seg := &segmentReservation{owner: p.host}
	for _, r := range resourceNames(req.req) {
		amount := req.req[r]
		if amount == 0 {
			continue
		}
		b, ok := p.brokers[r]
		if !ok {
			p.rollback(seg, now)
			return reserveReply{err: fmt.Errorf("proxy %s: no broker for resource %s", p.host, r)}
		}
		id, err := b.Reserve(now, amount)
		if err != nil {
			p.rollback(seg, now)
			return reserveReply{err: err}
		}
		seg.parts = append(seg.parts, segmentPart{b: b, id: id})
	}
	return reserveReply{reservation: seg}
}

func (p *QoSProxy) rollback(seg *segmentReservation, now broker.Time) {
	for i := len(seg.parts) - 1; i >= 0; i-- {
		_ = seg.parts[i].b.Release(now, seg.parts[i].id)
	}
	seg.parts = nil
}

func (p *QoSProxy) handleRelease(req releaseRequest) error {
	now := p.clock.Now()
	var firstErr error
	for i := len(req.reservation.parts) - 1; i >= 0; i-- {
		part := req.reservation.parts[i]
		if err := part.b.Release(now, part.id); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	req.reservation.parts = nil
	return firstErr
}

func resourceNames(rv qos.ResourceVector) []string {
	out := make([]string, 0, len(rv))
	for r := range rv {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Runtime is a deployment of QoSProxies over a set of hosts, plus the
// registry mapping each resource to its owning host.
type Runtime struct {
	clock   Clock
	proxies map[topo.HostID]*QoSProxy
	owner   map[string]topo.HostID
	mu      sync.Mutex
	started bool
	// stages, when non-nil, receives per-phase latency observations of
	// every Establish call (see Instrument).
	stages *obs.PlanStages
}

// NewRuntime creates an empty runtime over a clock.
func NewRuntime(clock Clock) *Runtime {
	return &Runtime{
		clock:   clock,
		proxies: make(map[topo.HostID]*QoSProxy),
		owner:   make(map[string]topo.HostID),
		stages:  &obs.PlanStages{},
	}
}

// Instrument attaches stage-latency histograms: every Establish then
// records its phase-1 availability collection, QRG build, planning and
// phase-3 dispatch durations into the corresponding histograms. Call
// before Start; a nil argument (or one built from a nil registry)
// leaves the runtime unobserved at no cost.
func (rt *Runtime) Instrument(stages *obs.PlanStages) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if stages == nil {
		stages = &obs.PlanStages{}
	}
	rt.stages = stages
}

// planStages returns the attached stage histograms (never nil; the
// default set is inert).
func (rt *Runtime) planStages() *obs.PlanStages {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.stages
}

// AddHost deploys a QoSProxy on a host. It must be called before Start.
func (rt *Runtime) AddHost(host topo.HostID) (*QoSProxy, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.started {
		return nil, errors.New("proxy: runtime already started")
	}
	if _, dup := rt.proxies[host]; dup {
		return nil, fmt.Errorf("proxy: host %s already has a QoSProxy", host)
	}
	p := newQoSProxy(host, rt.clock)
	rt.proxies[host] = p
	return p, nil
}

// Deploy registers a Resource Broker at a host's proxy. Following the
// paper's RSVP compatibility note, end-to-end network brokers should be
// deployed at the receiver-side host.
func (rt *Runtime) Deploy(host topo.HostID, b broker.Broker) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.started {
		return errors.New("proxy: runtime already started")
	}
	p, ok := rt.proxies[host]
	if !ok {
		return fmt.Errorf("proxy: no QoSProxy on host %s", host)
	}
	r := b.Resource()
	if prev, dup := rt.owner[r]; dup {
		return fmt.Errorf("proxy: resource %s already deployed on host %s", r, prev)
	}
	p.brokers[r] = b
	rt.owner[r] = host
	return nil
}

// Owner returns the host whose proxy owns a resource.
func (rt *Runtime) Owner(resource string) (topo.HostID, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	h, ok := rt.owner[resource]
	return h, ok
}

// Start launches every proxy goroutine.
func (rt *Runtime) Start() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.started {
		return
	}
	rt.started = true
	for _, p := range rt.proxies {
		p.wg.Add(1)
		go p.serve()
	}
}

// Stop terminates every proxy goroutine and waits for them.
func (rt *Runtime) Stop() {
	rt.mu.Lock()
	if !rt.started {
		rt.mu.Unlock()
		return
	}
	rt.started = false
	rt.mu.Unlock()
	for _, p := range rt.proxies {
		close(p.done)
	}
	for _, p := range rt.proxies {
		p.wg.Wait()
	}
}

// proxyFor returns the proxy owning a resource.
func (rt *Runtime) proxyFor(resource string) (*QoSProxy, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	host, ok := rt.owner[resource]
	if !ok {
		return nil, fmt.Errorf("proxy: resource %s deployed nowhere", resource)
	}
	return rt.proxies[host], nil
}
