package proxy

import (
	"time"

	"qosres/internal/broker"
)

// WallClock is a Clock driven by the host's wall time: live deployments
// of the runtime architecture use it so broker histories and α windows
// advance in real time. One Time Unit corresponds to TUPerSecond⁻¹
// seconds.
type WallClock struct {
	start       time.Time
	tuPerSecond float64
}

// NewWallClock creates a wall clock starting at Time 0 now, advancing
// tuPerSecond Time Units per wall-clock second (1.0 if <= 0).
func NewWallClock(tuPerSecond float64) *WallClock {
	if tuPerSecond <= 0 {
		tuPerSecond = 1
	}
	return &WallClock{start: time.Now(), tuPerSecond: tuPerSecond}
}

// Now implements Clock.
func (c *WallClock) Now() broker.Time {
	return broker.Time(time.Since(c.start).Seconds() * c.tuPerSecond)
}
