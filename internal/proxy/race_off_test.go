//go:build !race

package proxy

// raceEnabled reports whether the race detector instruments this build.
// The double-release regression runs more rounds under the detector,
// where the interleavings it exists to catch are actually observable.
const raceEnabled = false
