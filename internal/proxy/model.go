package proxy

import (
	"context"
	"fmt"
	"sort"

	"qosres/internal/core"
	"qosres/internal/svc"
	"qosres/internal/topo"
	"qosres/internal/transport"
)

// Section 3 gives two ways to store a service's QoS-Resource Model
// definition. The centralized approach — the whole definition at the
// main server's QoSProxy — is what Establish implements: the caller
// hands it the assembled *svc.Service. This file implements the
// distributed approach: "the Qin and Qout levels and the Translation
// Function of each service component will be stored and accessed by the
// QoSProxy of the host where the service component runs". The main
// QoSProxy holds only the service skeleton (component placement, the
// dependency graph, and the end-to-end ranking) and fetches each
// component's definition from its host's proxy in an extra protocol
// phase before planning.

// Skeleton is the service-independent part of a distributed model: the
// shape of the service without the per-component level sets and
// translation functions.
type Skeleton struct {
	// Name of the service.
	Name string
	// Placement maps each component to the host whose QoSProxy stores
	// (and runs) it.
	Placement map[svc.ComponentID]topo.HostID
	// Edges is the dependency graph.
	Edges []svc.Edge
	// Ranking orders the end-to-end QoS levels best-first.
	Ranking []string
}

// modelRequest asks a proxy for the definitions of components it hosts.
type modelRequest struct {
	service string
	comps   []svc.ComponentID
}

type modelReply struct {
	comps []*svc.Component
	err   error
}

// StoreComponent registers one component's definition with the proxy of
// the host where the component runs. Must be called before Start.
func (rt *Runtime) StoreComponent(host topo.HostID, service string, comp *svc.Component) error {
	if comp == nil {
		return fmt.Errorf("proxy: nil component")
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.started {
		return fmt.Errorf("proxy: runtime already started")
	}
	p, ok := rt.proxies[host]
	if !ok {
		return fmt.Errorf("proxy: no QoSProxy on host %s", host)
	}
	if p.models == nil {
		p.models = make(map[string]map[svc.ComponentID]*svc.Component)
	}
	if p.models[service] == nil {
		p.models[service] = make(map[svc.ComponentID]*svc.Component)
	}
	if _, dup := p.models[service][comp.ID]; dup {
		return fmt.Errorf("proxy: component %s of service %s already stored on %s", comp.ID, service, host)
	}
	p.models[service][comp.ID] = comp
	return nil
}

// StoreSkeleton registers a service skeleton with the main host's proxy.
// Must be called before Start.
func (rt *Runtime) StoreSkeleton(mainHost topo.HostID, sk Skeleton) error {
	if sk.Name == "" {
		return fmt.Errorf("proxy: skeleton with empty service name")
	}
	if len(sk.Placement) == 0 {
		return fmt.Errorf("proxy: skeleton %s has no component placement", sk.Name)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.started {
		return fmt.Errorf("proxy: runtime already started")
	}
	p, ok := rt.proxies[mainHost]
	if !ok {
		return fmt.Errorf("proxy: no QoSProxy on host %s", mainHost)
	}
	for comp, host := range sk.Placement {
		if _, ok := rt.proxies[host]; !ok {
			return fmt.Errorf("proxy: skeleton %s places %s on unknown host %s", sk.Name, comp, host)
		}
	}
	if p.skeletons == nil {
		p.skeletons = make(map[string]Skeleton)
	}
	if _, dup := p.skeletons[sk.Name]; dup {
		return fmt.Errorf("proxy: skeleton %s already stored on %s", sk.Name, mainHost)
	}
	p.skeletons[sk.Name] = sk
	return nil
}

// handleModel serves a model request from the proxy goroutine.
func (p *QoSProxy) handleModel(req modelRequest) modelReply {
	store := p.models[req.service]
	if store == nil {
		return modelReply{err: fmt.Errorf("proxy %s: no components of service %s stored here", p.host, req.service)}
	}
	out := make([]*svc.Component, 0, len(req.comps))
	for _, id := range req.comps {
		comp, ok := store[id]
		if !ok {
			return modelReply{err: fmt.Errorf("proxy %s: component %s of service %s not stored here", p.host, id, req.service)}
		}
		out = append(out, comp)
	}
	return modelReply{comps: out}
}

// assembleService is phase 0 of the distributed protocol: the main proxy
// fetches every component definition from the owning proxies (in
// parallel over the fabric) and assembles the validated service model.
func (rt *Runtime) assembleService(ctx context.Context, mainHost topo.HostID, sk Skeleton) (*svc.Service, error) {
	// Group components by owning host.
	byHost := make(map[topo.HostID][]svc.ComponentID)
	for comp, host := range sk.Placement {
		byHost[host] = append(byHost[host], comp)
	}
	for _, comps := range byHost {
		sort.Slice(comps, func(i, j int) bool { return comps[i] < comps[j] })
	}
	fabric := rt.Transport()
	from := transport.Addr(mainHost)
	type result struct {
		comps []*svc.Component
		err   error
	}
	results := make(chan result, len(byHost))
	for host, comps := range byHost {
		go func(host topo.HostID, comps []svc.ComponentID) {
			resp, err := fabric.Call(ctx, from, transport.Addr(host), msgModel, modelRequest{service: sk.Name, comps: comps})
			if err != nil {
				results <- result{err: err}
				return
			}
			rep, ok := resp.(modelReply)
			if !ok {
				results <- result{err: fmt.Errorf("proxy: unexpected model reply %T", resp)}
				return
			}
			results <- result{comps: rep.comps, err: rep.err}
		}(host, comps)
	}
	var all []*svc.Component
	var firstErr error
	for range byHost {
		res := <-results
		if res.err != nil {
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		all = append(all, res.comps...)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return svc.NewService(sk.Name, all, sk.Edges, sk.Ranking)
}

// EstablishDistributed establishes a session for a service whose model
// is stored in the distributed fashion: phase 0 assembles the model from
// the component-hosting proxies, then the standard three phases run.
func (rt *Runtime) EstablishDistributed(mainHost topo.HostID, serviceName string, binding svc.Binding, planner core.Planner) (*Session, error) {
	return rt.EstablishDistributedContext(context.Background(), mainHost, serviceName, binding, planner)
}

// EstablishDistributedContext is EstablishDistributed bounded by a
// context: both the phase-0 model fetch and the three-phase protocol
// observe the deadline.
func (rt *Runtime) EstablishDistributedContext(ctx context.Context, mainHost topo.HostID, serviceName string, binding svc.Binding, planner core.Planner) (*Session, error) {
	rt.mu.Lock()
	main, ok := rt.proxies[mainHost]
	started := rt.started
	rt.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("proxy: no QoSProxy on main host %s", mainHost)
	}
	if !started {
		return nil, fmt.Errorf("proxy: runtime not started")
	}
	sk, ok := main.skeletons[serviceName]
	if !ok {
		return nil, fmt.Errorf("proxy: main host %s stores no skeleton for service %s", mainHost, serviceName)
	}
	service, err := rt.assembleService(ctx, mainHost, sk)
	if err != nil {
		return nil, err
	}
	return rt.EstablishContext(ctx, mainHost, SessionSpec{Service: service, Binding: binding, Planner: planner})
}
