package proxy

import (
	"errors"
	"testing"
	"time"

	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/qrg"
	"qosres/internal/svc"
	"qosres/internal/topo"
	"qosres/internal/workload"
)

// This integration test proves the runtime architecture is a faithful
// distributed implementation of the library path: a fixed sequence of
// figure-9 sessions establishes once through the QoSProxy protocol
// (goroutines + messages) and once through direct Pool calls, against
// two identical environments. Every step must produce the same plan and
// leave the two environments in the same state.

// buildMirrorEnvs creates two identical figure-9 environments: one
// exposed through a Runtime, one as a bare Pool.
func buildMirrorEnvs(t *testing.T, clock Clock) (*Runtime, *broker.Pool, *broker.Pool) {
	t.Helper()
	topology := topo.Figure9()
	capacities := map[string]float64{}
	for i := 1; i <= topo.NumServers; i++ {
		capacities[broker.LocalResourceID(workload.ResCPU, topo.ServerHost(i))] = 1500 + float64(i)*400
	}
	for j, l := range topology.Links() {
		capacities[broker.LinkResourceID(l.ID)] = 1200 + float64(j)*150
	}

	mkPool := func() *broker.Pool {
		pool := broker.NewPool(topology)
		for i := 1; i <= topo.NumServers; i++ {
			h := topo.ServerHost(i)
			if _, err := pool.AddLocal(workload.ResCPU, h, capacities[broker.LocalResourceID(workload.ResCPU, h)]); err != nil {
				t.Fatal(err)
			}
		}
		for _, l := range topology.Links() {
			if _, err := pool.AddLink(l.ID, capacities[broker.LinkResourceID(l.ID)]); err != nil {
				t.Fatal(err)
			}
		}
		return pool
	}

	runtimePool := mkPool()
	directPool := mkPool()

	rt := NewRuntime(clock)
	for _, h := range topology.Hosts() {
		if _, err := rt.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= topo.NumServers; i++ {
		h := topo.ServerHost(i)
		b, _ := runtimePool.Get(broker.LocalResourceID(workload.ResCPU, h))
		if err := rt.Deploy(h, b); err != nil {
			t.Fatal(err)
		}
	}
	// Network brokers for every (server, proxy) pair and every
	// (proxy, domain) pair, deployed receiver-side. Both pools create
	// them so their Get() works.
	deployNet := func(from, to topo.HostID) {
		n, err := runtimePool.Network(from, to)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := directPool.Network(from, to); err != nil {
			t.Fatal(err)
		}
		if err := rt.Deploy(to, n); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= topo.NumServers; i++ {
		for j := 1; j <= topo.NumServers; j++ {
			if i != j {
				deployNet(topo.ServerHost(i), topo.ServerHost(j))
			}
		}
	}
	for d := 1; d <= topo.NumDomains; d++ {
		deployNet(topo.ServerHost(topo.ProxyServerFor(d)), topo.DomainHost(d))
	}
	return rt, runtimePool, directPool
}

func TestRuntimeMatchesDirectLibraryPath(t *testing.T) {
	clock := &ManualClock{}
	rt, _, directPool := buildMirrorEnvs(t, clock)
	rt.Start()
	defer rt.Stop()

	services := workload.Services(workload.Options{BaseScale: 20})

	type sessionKey struct{ domain, service int }
	var seq []sessionKey
	for d := 1; d <= topo.NumDomains; d++ {
		for s := 1; s <= 4; s++ {
			if s != topo.ProxyServerFor(d) {
				seq = append(seq, sessionKey{d, s})
			}
		}
	}
	// Three rounds drive the environments into contention.
	seq = append(append(seq, seq...), seq...)

	var live []*Session
	var directHolds []*broker.MultiReservation
	planner := core.Basic{}
	matched := 0
	for step, k := range seq {
		clock.Advance(1)
		now := clock.Now()
		service := services[k.service]
		binding, resources := fig9Binding(k.service, k.domain)

		// Direct path.
		snap, err := directPool.Snapshot(now, resources)
		if err != nil {
			t.Fatal(err)
		}
		g, err := qrg.Build(service, binding, snap)
		if err != nil {
			t.Fatal(err)
		}
		directPlan, directErr := planner.Plan(g)

		// Runtime path.
		session, rtErr := rt.Establish(topo.ServerHost(k.service), SessionSpec{
			Service: service, Binding: binding, Planner: planner,
		})

		if (directErr == nil) != (rtErr == nil) {
			t.Fatalf("step %d: direct err %v, runtime err %v", step, directErr, rtErr)
		}
		if directErr != nil {
			if !errors.Is(directErr, core.ErrInfeasible) {
				t.Fatal(directErr)
			}
			continue
		}
		if session.Plan.EndToEnd.Name != directPlan.EndToEnd.Name ||
			session.Plan.PathLevels != directPlan.PathLevels ||
			absDiff(session.Plan.Psi, directPlan.Psi) > 1e-9 {
			t.Fatalf("step %d: runtime plan (%s, %v) != direct plan (%s, %v)",
				step, session.Plan.PathLevels, session.Plan.Psi, directPlan.PathLevels, directPlan.Psi)
		}
		matched++
		live = append(live, session)
		hold, err := directPool.ReserveAll(now, directPlan.Requirement())
		if err != nil {
			t.Fatalf("step %d: direct reserve failed after plan success: %v", step, err)
		}
		directHolds = append(directHolds, hold)
	}
	if matched < 30 {
		t.Fatalf("only %d sessions established; contention never built up", matched)
	}

	// Both worlds drain clean.
	clock.Advance(100)
	for _, s := range live {
		if err := s.Release(); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range directHolds {
		if err := h.Release(clock.Now()); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range directPool.LocalBrokers() {
		if b.Reservations() != 0 {
			t.Errorf("direct %s leaked", b.Resource())
		}
	}
}

func fig9Binding(service, domain int) (svc.Binding, []string) {
	server := topo.ServerHost(service)
	proxyHost := topo.ServerHost(topo.ProxyServerFor(domain))
	client := topo.DomainHost(domain)
	cpuS := broker.LocalResourceID(workload.ResCPU, server)
	cpuP := broker.LocalResourceID(workload.ResCPU, proxyHost)
	netSP := broker.NetResourceID(server, proxyHost)
	netPC := broker.NetResourceID(proxyHost, client)
	return svc.Binding{
		workload.CompServer: {workload.ResCPU: cpuS},
		workload.CompProxy:  {workload.ResCPU: cpuP, workload.ResNet: netSP},
		workload.CompClient: {workload.ResNet: netPC},
	}, []string{cpuS, cpuP, netSP, netPC}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestWallClockAdvances(t *testing.T) {
	c := NewWallClock(1000) // 1000 TU per second: measurable quickly
	t0 := c.Now()
	time.Sleep(5 * time.Millisecond)
	t1 := c.Now()
	if t1 <= t0 {
		t.Fatalf("wall clock did not advance: %v -> %v", t0, t1)
	}
	// Default scale guard.
	if NewWallClock(0) == nil {
		t.Fatal("nil clock")
	}
}
