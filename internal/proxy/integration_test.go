package proxy

import (
	"errors"
	"testing"
	"time"

	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/obs"
	"qosres/internal/qrg"
	"qosres/internal/svc"
	"qosres/internal/topo"
	"qosres/internal/workload"
)

// This integration test proves the runtime architecture is a faithful
// distributed implementation of the library path: a fixed sequence of
// figure-9 sessions establishes once through the QoSProxy protocol
// (goroutines + messages) and once through direct Pool calls, against
// two identical environments. Every step must produce the same plan and
// leave the two environments in the same state.

// buildMirrorEnvs creates two identical figure-9 environments: one
// exposed through a Runtime, one as a bare Pool.
func buildMirrorEnvs(t *testing.T, clock Clock) (*Runtime, *broker.Pool, *broker.Pool) {
	t.Helper()
	topology := topo.Figure9()
	capacities := map[string]float64{}
	for i := 1; i <= topo.NumServers; i++ {
		capacities[broker.LocalResourceID(workload.ResCPU, topo.ServerHost(i))] = 1500 + float64(i)*400
	}
	for j, l := range topology.Links() {
		capacities[broker.LinkResourceID(l.ID)] = 1200 + float64(j)*150
	}

	mkPool := func() *broker.Pool {
		pool := broker.NewPool(topology)
		for i := 1; i <= topo.NumServers; i++ {
			h := topo.ServerHost(i)
			if _, err := pool.AddLocal(workload.ResCPU, h, capacities[broker.LocalResourceID(workload.ResCPU, h)]); err != nil {
				t.Fatal(err)
			}
		}
		for _, l := range topology.Links() {
			if _, err := pool.AddLink(l.ID, capacities[broker.LinkResourceID(l.ID)]); err != nil {
				t.Fatal(err)
			}
		}
		return pool
	}

	runtimePool := mkPool()
	directPool := mkPool()

	rt := NewRuntime(clock)
	for _, h := range topology.Hosts() {
		if _, err := rt.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= topo.NumServers; i++ {
		h := topo.ServerHost(i)
		b, _ := runtimePool.Get(broker.LocalResourceID(workload.ResCPU, h))
		if err := rt.Deploy(h, b); err != nil {
			t.Fatal(err)
		}
	}
	// Network brokers for every (server, proxy) pair and every
	// (proxy, domain) pair, deployed receiver-side. Both pools create
	// them so their Get() works.
	deployNet := func(from, to topo.HostID) {
		n, err := runtimePool.Network(from, to)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := directPool.Network(from, to); err != nil {
			t.Fatal(err)
		}
		if err := rt.Deploy(to, n); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= topo.NumServers; i++ {
		for j := 1; j <= topo.NumServers; j++ {
			if i != j {
				deployNet(topo.ServerHost(i), topo.ServerHost(j))
			}
		}
	}
	for d := 1; d <= topo.NumDomains; d++ {
		deployNet(topo.ServerHost(topo.ProxyServerFor(d)), topo.DomainHost(d))
	}
	return rt, runtimePool, directPool
}

func TestRuntimeMatchesDirectLibraryPath(t *testing.T) {
	clock := &ManualClock{}
	rt, _, directPool := buildMirrorEnvs(t, clock)
	rt.Start()
	defer rt.Stop()

	services := workload.Services(workload.Options{BaseScale: 20})

	type sessionKey struct{ domain, service int }
	var seq []sessionKey
	for d := 1; d <= topo.NumDomains; d++ {
		for s := 1; s <= 4; s++ {
			if s != topo.ProxyServerFor(d) {
				seq = append(seq, sessionKey{d, s})
			}
		}
	}
	// Three rounds drive the environments into contention.
	seq = append(append(seq, seq...), seq...)

	var live []*Session
	var directHolds []*broker.MultiReservation
	planner := core.Basic{}
	matched := 0
	for step, k := range seq {
		clock.Advance(1)
		now := clock.Now()
		service := services[k.service]
		binding, resources := fig9Binding(k.service, k.domain)

		// Direct path.
		snap, err := directPool.Snapshot(now, resources)
		if err != nil {
			t.Fatal(err)
		}
		g, err := qrg.Build(service, binding, snap)
		if err != nil {
			t.Fatal(err)
		}
		directPlan, directErr := planner.Plan(g)

		// Runtime path.
		session, rtErr := rt.Establish(topo.ServerHost(k.service), SessionSpec{
			Service: service, Binding: binding, Planner: planner,
		})

		if (directErr == nil) != (rtErr == nil) {
			t.Fatalf("step %d: direct err %v, runtime err %v", step, directErr, rtErr)
		}
		if directErr != nil {
			if !errors.Is(directErr, core.ErrInfeasible) {
				t.Fatal(directErr)
			}
			continue
		}
		if session.Plan.EndToEnd.Name != directPlan.EndToEnd.Name ||
			session.Plan.PathLevels != directPlan.PathLevels ||
			absDiff(session.Plan.Psi, directPlan.Psi) > 1e-9 {
			t.Fatalf("step %d: runtime plan (%s, %v) != direct plan (%s, %v)",
				step, session.Plan.PathLevels, session.Plan.Psi, directPlan.PathLevels, directPlan.Psi)
		}
		matched++
		live = append(live, session)
		hold, err := directPool.ReserveAll(now, directPlan.Requirement())
		if err != nil {
			t.Fatalf("step %d: direct reserve failed after plan success: %v", step, err)
		}
		directHolds = append(directHolds, hold)
	}
	if matched < 30 {
		t.Fatalf("only %d sessions established; contention never built up", matched)
	}

	// Both worlds drain clean.
	clock.Advance(100)
	for _, s := range live {
		if err := s.Release(); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range directHolds {
		if err := h.Release(clock.Now()); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range directPool.LocalBrokers() {
		if b.Reservations() != 0 {
			t.Errorf("direct %s leaked", b.Resource())
		}
	}
}

func fig9Binding(service, domain int) (svc.Binding, []string) {
	server := topo.ServerHost(service)
	proxyHost := topo.ServerHost(topo.ProxyServerFor(domain))
	client := topo.DomainHost(domain)
	cpuS := broker.LocalResourceID(workload.ResCPU, server)
	cpuP := broker.LocalResourceID(workload.ResCPU, proxyHost)
	netSP := broker.NetResourceID(server, proxyHost)
	netPC := broker.NetResourceID(proxyHost, client)
	return svc.Binding{
		workload.CompServer: {workload.ResCPU: cpuS},
		workload.CompProxy:  {workload.ResCPU: cpuP, workload.ResNet: netSP},
		workload.CompClient: {workload.ResNet: netPC},
	}, []string{cpuS, cpuP, netSP, netPC}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestWallClockAdvances(t *testing.T) {
	c := NewWallClock(1000) // 1000 TU per second: measurable quickly
	t0 := c.Now()
	time.Sleep(5 * time.Millisecond)
	t1 := c.Now()
	if t1 <= t0 {
		t.Fatalf("wall clock did not advance: %v -> %v", t0, t1)
	}
	// Default scale guard.
	if NewWallClock(0) == nil {
		t.Fatal("nil clock")
	}
}

// stealPlanner wraps a planner and, on its first Plan call, reserves
// capacity directly on a target broker. Planning runs between the
// phase-1 snapshot and the phase-3 commit, so the steal deterministically
// reproduces the TOCTOU race: a concurrent session winning the resource
// after this session's snapshot was taken.
type stealPlanner struct {
	inner  core.Planner
	target *broker.Local
	amount float64
	calls  int
}

func (p *stealPlanner) Name() string { return "steal" }

func (p *stealPlanner) Plan(g *qrg.Graph) (*core.Plan, error) {
	p.calls++
	if p.calls == 1 {
		if _, err := p.target.Reserve(0, p.amount); err != nil {
			return nil, err
		}
	}
	return p.inner.Plan(g)
}

// TestEstablishCommitRefusalRollsBackEverything pins the fail-fast
// contract: when the planned requirement no longer fits at commit time
// and the policy allows no retry, Establish fails with
// broker.ErrInsufficient and leaves zero residual holds on every broker
// of the plan — including the ones that individually had room.
func TestEstablishCommitRefusalRollsBackEverything(t *testing.T) {
	rt, _, brokers := twoHostWorld(t)
	rt.SetAdmitPolicy(AdmitPolicy{MaxRetries: 0})
	reg := obs.New()
	admit := obs.NewAdmitMetrics(reg)
	rt.InstrumentAdmission(admit)
	service, binding := pipelineService(t)

	// The basic planner picks lo→best (cpu@X 10, cpu@Y 35, net 25, Ψ
	// 0.35). Stealing 80 net units mid-plan leaves 20 < 25 at commit.
	planner := &stealPlanner{inner: core.Basic{}, target: brokers["net:X->Y"], amount: 80}
	_, err := rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: planner})
	if !errors.Is(err, broker.ErrInsufficient) {
		t.Fatalf("err = %v, want broker.ErrInsufficient through the retry-exhausted wrapper", err)
	}
	if planner.calls != 1 {
		t.Fatalf("planner ran %d times under MaxRetries=0, want 1", planner.calls)
	}
	// The cpu brokers had room; the atomic commit must not have touched
	// them. The only reservation anywhere is the steal itself.
	if got := brokers["cpu@X"].Available(); got != 100 {
		t.Errorf("cpu@X = %v after refusal, want 100", got)
	}
	if got := brokers["cpu@Y"].Available(); got != 100 {
		t.Errorf("cpu@Y = %v after refusal, want 100", got)
	}
	if got := brokers["net:X->Y"].Available(); got != 20 {
		t.Errorf("net = %v after refusal, want 20 (steal only)", got)
	}
	for r, b := range brokers {
		want := 0
		if r == "net:X->Y" {
			want = 1 // the steal
		}
		if b.Reservations() != want {
			t.Errorf("%s holds %d reservations, want %d", r, b.Reservations(), want)
		}
	}
	if v := admit.StaleRejects.Value(); v != 1 {
		t.Errorf("stale rejects = %v, want 1", v)
	}
	if v := admit.Rollbacks.Value(); v != 1 {
		t.Errorf("rollbacks = %v, want 1", v)
	}
	if v := admit.Retries.Value(); v != 0 {
		t.Errorf("retries = %v, want 0 under fail-fast", v)
	}
}

// TestEstablishRetriesWithFreshSnapshot pins the replanning contract:
// after a commit-time refusal the runtime takes a fresh snapshot, plans
// against the post-race availability, and commits the degraded level.
func TestEstablishRetriesWithFreshSnapshot(t *testing.T) {
	rt, _, brokers := twoHostWorld(t)
	rt.SetAdmitPolicy(AdmitPolicy{MaxRetries: 2})
	reg := obs.New()
	admit := obs.NewAdmitMetrics(reg)
	rt.InstrumentAdmission(admit)
	service, binding := pipelineService(t)

	// Attempt 1 plans lo→best (net 25) and is refused: the steal leaves
	// net at 20. Attempt 2's fresh snapshot rules out both "best" paths
	// (net 40 and 25 > 20) and plans lo→ok (cpu@X 10, cpu@Y 8, net 10),
	// which commits.
	planner := &stealPlanner{inner: core.Basic{}, target: brokers["net:X->Y"], amount: 80}
	s, err := rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: planner})
	if err != nil {
		t.Fatalf("Establish with retries: %v", err)
	}
	if s.Plan.EndToEnd.Name != "ok" {
		t.Fatalf("retried plan level = %s, want ok (degraded after the race)", s.Plan.EndToEnd.Name)
	}
	if planner.calls != 2 {
		t.Fatalf("planner ran %d times, want 2 (original + one retry)", planner.calls)
	}
	if got := brokers["cpu@X"].Available(); got != 90 {
		t.Errorf("cpu@X = %v, want 90", got)
	}
	if got := brokers["cpu@Y"].Available(); got != 92 {
		t.Errorf("cpu@Y = %v, want 92", got)
	}
	if got := brokers["net:X->Y"].Available(); got != 10 {
		t.Errorf("net = %v, want 10 (80 stolen + 10 committed)", got)
	}
	if v := admit.Retries.Value(); v != 1 {
		t.Errorf("retries = %v, want 1", v)
	}
	if v := admit.StaleRejects.Value(); v != 1 {
		t.Errorf("stale rejects = %v, want 1", v)
	}
	if err := s.Release(); err != nil {
		t.Fatal(err)
	}
	if got := brokers["net:X->Y"].Available(); got != 20 {
		t.Errorf("net = %v after release, want 20", got)
	}
}

// TestEstablishRetryExhaustionKeepsErrInsufficient pins the error
// contract: when every attempt is refused at commit time and the retry
// budget runs out, the terminal error still matches
// broker.ErrInsufficient via errors.Is, so callers classify it without
// string matching.
func TestEstablishRetryExhaustionKeepsErrInsufficient(t *testing.T) {
	rt, _, brokers := twoHostWorld(t)
	rt.SetAdmitPolicy(AdmitPolicy{MaxRetries: 1})
	reg := obs.New()
	admit := obs.NewAdmitMetrics(reg)
	rt.InstrumentAdmission(admit)
	service, binding := pipelineService(t)

	// Attempt 1 snapshots net=100 and plans lo→best (net 25); the drain
	// leaves 24 < 25 → refused. Attempt 2 snapshots 24 and plans lo→ok
	// (net 10); the drain leaves 5 < 10 → refused again. The budget (1
	// retry) is exhausted with a commit refusal both times.
	planner := &drainPlanner{inner: core.Basic{}, target: brokers["net:X->Y"], leave: []float64{24, 5}}
	_, err := rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: planner})
	if !errors.Is(err, broker.ErrInsufficient) {
		t.Fatalf("terminal err = %v, want broker.ErrInsufficient", err)
	}
	if planner.calls != 2 {
		t.Fatalf("planner ran %d times, want 2 (MaxRetries=1)", planner.calls)
	}
	if v := admit.StaleRejects.Value(); v != 2 {
		t.Errorf("stale rejects = %v, want 2", v)
	}
	if v := admit.Retries.Value(); v != 1 {
		t.Errorf("retries = %v, want 1", v)
	}
	// Only the drains remain; the session itself left nothing behind.
	if got, want := brokers["cpu@X"].Available(), 100.0; got != want {
		t.Errorf("cpu@X = %v after exhaustion, want %v", got, want)
	}
	if got, want := brokers["cpu@Y"].Available(), 100.0; got != want {
		t.Errorf("cpu@Y = %v after exhaustion, want %v", got, want)
	}
	if got, want := brokers["net:X->Y"].Available(), 5.0; got != want {
		t.Errorf("net = %v after exhaustion, want %v (drains only)", got, want)
	}
}

// drainPlanner reserves the target broker down to leave[i] units on its
// i-th Plan call, so each fresh snapshot is stale again by commit time.
type drainPlanner struct {
	inner  core.Planner
	target *broker.Local
	leave  []float64
	calls  int
}

func (p *drainPlanner) Name() string { return "drain" }

func (p *drainPlanner) Plan(g *qrg.Graph) (*core.Plan, error) {
	if p.calls < len(p.leave) {
		if take := p.target.Available() - p.leave[p.calls]; take > 0 {
			if _, err := p.target.Reserve(0, take); err != nil {
				return nil, err
			}
		}
	}
	p.calls++
	return p.inner.Plan(g)
}
