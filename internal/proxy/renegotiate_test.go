package proxy

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"testing"

	"qosres/internal/broker"
	"qosres/internal/core"
)

// holdsByResource sums a session's exported holds per resource.
func holdsByResource(s *Session) map[string]float64 {
	out := make(map[string]float64)
	for _, ex := range s.HoldExports() {
		out[ex.Resource] += ex.Amount
	}
	return out
}

// assertBooksMatchPlan checks that every broker's reserved total equals
// the session plan's requirement on that resource (invariant 5 at the
// broker ledger, not just the session's own exports).
func assertBooksMatchPlan(t *testing.T, s *Session, brokers map[string]*broker.Local) {
	t.Helper()
	req := s.CurrentPlan().Requirement()
	for r, b := range brokers {
		if got, want := b.Reserved(), req[r]; got != want {
			t.Errorf("%s reserved %g, plan at level %s requires %g",
				r, got, s.CurrentPlan().EndToEnd.Name, want)
		}
	}
}

func auditClean(t *testing.T, rt *Runtime, when string) {
	t.Helper()
	for _, msg := range rt.AuditSessions(1e-9) {
		t.Errorf("audit (%s): %s", when, msg)
	}
}

// TestRenegotiateDowngradeAndUpgrade walks a session down a level and
// back up: the downgrade shrinks the surplus in place, the upgrade
// reserves only the delta, and at every stop the broker books match the
// recorded level exactly. QoS-seconds accrue at the rank each segment
// actually ran at.
func TestRenegotiateDowngradeAndUpgrade(t *testing.T) {
	rt, clock, brokers := twoHostWorld(t)
	s := establishPipe(t, rt, core.Basic{})
	if s.CurrentPlan().EndToEnd.Name != "best" {
		t.Fatalf("established at %s, want best", s.CurrentPlan().EndToEnd.Name)
	}
	assertBooksMatchPlan(t, s, brokers)
	ctx := context.Background()

	// Downgrade after 10 TUs at "best" (rank 2): the surplus is released
	// whole, nothing passes through a released state.
	clock.Advance(10)
	if err := rt.Renegotiate(ctx, s, "ok"); err != nil {
		t.Fatalf("downgrade: %v", err)
	}
	if got := s.CurrentPlan(); got.EndToEnd.Name != "ok" || got.Rank != 1 {
		t.Fatalf("post-downgrade plan %s rank %d, want ok rank 1", got.EndToEnd.Name, got.Rank)
	}
	assertBooksMatchPlan(t, s, brokers)
	auditClean(t, rt, "after downgrade")
	// "ok" has exactly one path: 10 cpu@X, 8 cpu@Y, 10 net.
	for r, want := range map[string]float64{"cpu@X": 90, "cpu@Y": 92, "net:X->Y": 90} {
		if got := brokers[r].Available(); got != want {
			t.Errorf("%s available %g after downgrade, want %g", r, got, want)
		}
	}

	// Upgrade after 10 TUs at "ok" (rank 1): only the delta is newly
	// reserved, through the same 2PC path as admission.
	clock.Advance(10)
	if err := rt.Renegotiate(ctx, s, "best"); err != nil {
		t.Fatalf("upgrade: %v", err)
	}
	if got := s.CurrentPlan(); got.EndToEnd.Name != "best" || got.Rank != 2 {
		t.Fatalf("post-upgrade plan %s rank %d, want best rank 2", got.EndToEnd.Name, got.Rank)
	}
	assertBooksMatchPlan(t, s, brokers)
	auditClean(t, rt, "after upgrade")

	// Same-level renegotiation is a no-op.
	before := holdsByResource(s)
	if err := rt.Renegotiate(ctx, s, "best"); err != nil {
		t.Fatalf("same-level renegotiate: %v", err)
	}
	if got := holdsByResource(s); !reflect.DeepEqual(got, before) {
		t.Errorf("same-level renegotiate moved holds: %v -> %v", before, got)
	}

	// A level the service does not define is refused outright.
	if err := rt.Renegotiate(ctx, s, "bogus"); err == nil {
		t.Error("renegotiate to an unknown level succeeded")
	}

	// Teardown after 5 more TUs at "best": the delivered QoS-seconds are
	// the rank-weighted integral 10×2 + 10×1 + 5×2 = 40.
	clock.Advance(5)
	if err := s.Release(); err != nil {
		t.Fatal(err)
	}
	if got, want := rt.DeliveredQoSSeconds(), 40.0; got != want {
		t.Errorf("delivered QoS-seconds %g, want %g", got, want)
	}
	for r, b := range brokers {
		if b.Reservations() != 0 {
			t.Errorf("%s holds %d reservations after release", r, b.Reservations())
		}
	}
}

// TestRenegotiateFailedUpgradeLeavesSessionUntouched pins the refusal
// contract: when the target level has no feasible plan, Renegotiate
// returns before touching the session — same plan object, same holds,
// same state, heartbeats keep working — and the upgrade succeeds later
// once capacity returns.
func TestRenegotiateFailedUpgradeLeavesSessionUntouched(t *testing.T) {
	rt, clock, brokers := twoHostWorld(t)
	s := establishPipe(t, rt, core.AtLevel{Level: "ok"})
	if s.CurrentPlan().EndToEnd.Name != "ok" {
		t.Fatalf("established at %s, want ok", s.CurrentPlan().EndToEnd.Name)
	}
	ctx := context.Background()

	// cpu@Y down to 15: the session holds 8, leaving 7 available — every
	// "best" path needs at least 20 there.
	if err := brokers["cpu@Y"].SetCapacity(clock.Now(), 15); err != nil {
		t.Fatal(err)
	}
	planBefore := s.CurrentPlan()
	holdsBefore := s.HoldExports()
	sort.Slice(holdsBefore, func(i, j int) bool { return holdsBefore[i].ID < holdsBefore[j].ID })

	err := rt.Renegotiate(ctx, s, "best")
	if !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("upgrade into exhausted capacity: %v, want ErrInfeasible", err)
	}

	// Byte-identical at the old level: the very same plan object, the
	// very same holds, still active and heartbeating.
	if got := s.CurrentPlan(); got != planBefore {
		t.Errorf("failed upgrade swapped the plan: %p -> %p", planBefore, got)
	}
	holdsAfter := s.HoldExports()
	sort.Slice(holdsAfter, func(i, j int) bool { return holdsAfter[i].ID < holdsAfter[j].ID })
	if !reflect.DeepEqual(holdsAfter, holdsBefore) {
		t.Errorf("failed upgrade moved holds:\n got %v\nwant %v", holdsAfter, holdsBefore)
	}
	if s.State() != StateActive {
		t.Fatalf("state = %s, want active", s.State())
	}
	if err := s.Heartbeat(); err != nil {
		t.Fatalf("heartbeat after refused upgrade: %v", err)
	}
	assertBooksMatchPlan(t, s, brokers)
	auditClean(t, rt, "after refused upgrade")

	// Capacity returns; the same upgrade now goes through.
	if err := brokers["cpu@Y"].SetCapacity(clock.Now(), 100); err != nil {
		t.Fatal(err)
	}
	if err := rt.Renegotiate(ctx, s, "best"); err != nil {
		t.Fatalf("upgrade after capacity returned: %v", err)
	}
	if got := s.CurrentPlan().EndToEnd.Name; got != "best" {
		t.Fatalf("post-upgrade level %s, want best", got)
	}
	assertBooksMatchPlan(t, s, brokers)
	if err := s.Release(); err != nil {
		t.Fatal(err)
	}
	for r, b := range brokers {
		if b.Reservations() != 0 {
			t.Errorf("%s holds %d reservations after release", r, b.Reservations())
		}
	}
}

// TestRenegotiateRefusesForeignSessions pins the ownership and liveness
// guards.
func TestRenegotiateRefusesForeignSessions(t *testing.T) {
	rt, _, _ := twoHostWorld(t)
	other, _, _ := twoHostWorld(t)
	s := establishPipe(t, rt, core.Basic{})
	if err := other.Renegotiate(context.Background(), s, "ok"); err == nil {
		t.Error("foreign runtime renegotiated another runtime's session")
	}
	if err := rt.Renegotiate(context.Background(), nil, "ok"); err == nil {
		t.Error("renegotiate of a nil session succeeded")
	}
	if err := s.Release(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Renegotiate(context.Background(), s, "ok"); !errors.Is(err, ErrSessionLost) {
		t.Errorf("renegotiate of a released session: %v, want ErrSessionLost", err)
	}
}

// TestLevelAt pins the rank -> level mapping (RankOf's inverse).
func TestLevelAt(t *testing.T) {
	service, _ := pipelineService(t)
	for rank, want := range map[int]string{2: "best", 1: "ok", 0: "", 3: "", -1: ""} {
		if got := LevelAt(service, rank); got != want {
			t.Errorf("LevelAt(%d) = %q, want %q", rank, got, want)
		}
	}
	// LevelAt inverts RankOf for every defined level.
	for _, level := range []string{"best", "ok"} {
		if got := LevelAt(service, service.RankOf(level)); got != level {
			t.Errorf("LevelAt(RankOf(%s)) = %q", level, got)
		}
	}
}
