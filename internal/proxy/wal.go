package proxy

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"qosres/internal/broker"
	"qosres/internal/obs"
	"qosres/internal/qos"
	"qosres/internal/topo"
	"qosres/internal/transport"
	"qosres/internal/wal"
)

// This file wires the write-ahead log through the 2PC paths and owns
// crash recovery:
//
//   - Participants journal prepare/commit/abort from their handlers, in
//     the order the book mutates, so log order matches commit order.
//   - The coordinator journals its commit point (a decide record) before
//     any participant learns of it: recovery presumes abort for a
//     prepare with no decide record.
//   - Committed reservations are wrapped (journaled) so the session
//     layer's lease renewals and teardowns also hit the log, one record
//     per participating host — each host's replay is self-contained.
//   - Recover rebuilds every book from a dead process's log;
//     CrashRestart does the same for a single host while the rest of
//     the runtime keeps serving, reconciling in-doubt prepares against
//     coordinator outcome tables over the fabric.

// msgOutcome asks a coordinator whether a request ID reached its commit
// point; recovering participants send it to resolve in-doubt prepares.
const msgOutcome = "outcome"

// reconcileTimeout bounds each recovery outcome query over the fabric.
const reconcileTimeout = 250 * time.Millisecond

type outcomeRequest struct {
	id string
}

type outcomeReply struct {
	commit bool
	expiry broker.Time
}

// EnableWAL makes the reservation books durable: participant
// prepare/commit/abort records, coordinator commit decisions, lease
// renewals, and releases are appended — fsynced, in commit order — to a
// CRC-framed segmented log under opts.Dir. Must be called before Start.
// Pair with Recover to rebuild state from a previous process's log.
func (rt *Runtime) EnableWAL(opts wal.Options) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.started {
		return errors.New("proxy: EnableWAL after Start")
	}
	if rt.walLog != nil {
		return errors.New("proxy: WAL already enabled")
	}
	l, err := wal.Open(opts)
	if err != nil {
		return err
	}
	rt.walLog = l
	return nil
}

// CloseWAL flushes and closes the write-ahead log; call after Stop when
// the process is done with the runtime. Safe when durability is off.
func (rt *Runtime) CloseWAL() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.walLog == nil {
		return nil
	}
	err := rt.walLog.Close()
	rt.walLog = nil
	return err
}

// CheckpointWAL compacts the log: the live book state — every pending
// entry on every host plus the coordinator decide table — is rewritten
// as a fresh snapshot segment and older segments are pruned, so replay
// cost tracks live state, not history. The pending tables are owned by
// the serve goroutines, so checkpointing requires a stopped (or
// not-yet-started) runtime — e.g. right after Recover, before Start.
func (rt *Runtime) CheckpointWAL() error {
	rt.mu.Lock()
	l := rt.walLog
	started := rt.started
	proxies := make([]*QoSProxy, 0, len(rt.proxies))
	for _, p := range rt.proxies {
		proxies = append(proxies, p)
	}
	rt.mu.Unlock()
	if l == nil {
		return errors.New("proxy: WAL not enabled")
	}
	if started {
		return errors.New("proxy: CheckpointWAL requires a stopped runtime")
	}
	var snap []wal.Record
	for _, p := range proxies {
		host := string(p.host)
		for _, id := range p.order {
			st, ok := p.pending[id]
			if !ok {
				continue
			}
			switch {
			case st.aborted:
				snap = append(snap, wal.Record{Type: wal.TypeAbort, Host: host, ID: id})
			case st.res == nil:
				// A refused prepare: never journaled, nothing to keep.
			default:
				exports := st.res.Export()
				if len(exports) == 0 {
					// Committed and released: keep the outcome (an empty
					// committed entry) so duplicate commits stay idempotent.
					snap = append(snap,
						wal.Record{Type: wal.TypePrepare, Host: host, ID: id},
						wal.Record{Type: wal.TypeCommit, Host: host, ID: id},
						wal.Record{Type: wal.TypeRelease, Host: host, ID: id})
					continue
				}
				expiry := exports[0].Expiry
				snap = append(snap, wal.Record{Type: wal.TypePrepare, Host: host, ID: id,
					Expiry: float64(expiry), Parts: partsFromExports(exports)})
				if st.committed {
					snap = append(snap, wal.Record{Type: wal.TypeCommit, Host: host, ID: id,
						Expiry: float64(expiry)})
				}
			}
		}
	}
	rt.decideMu.Lock()
	for id, exp := range rt.decided {
		host, ok := coordinatorOf(id)
		if !ok {
			continue
		}
		snap = append(snap, wal.Record{Type: wal.TypeDecide, Host: string(host), ID: id,
			Outcome: "commit", Expiry: float64(exp)})
	}
	rt.decideMu.Unlock()
	return l.Checkpoint(snap)
}

// WALDir returns the directory of the enabled write-ahead log, or "".
func (rt *Runtime) WALDir() string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.walLog == nil {
		return ""
	}
	return rt.walLog.Dir()
}

// InstrumentWAL attaches durability counters; nil detaches them.
func (rt *Runtime) InstrumentWAL(m *obs.WALMetrics) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if m == nil {
		m = &obs.WALMetrics{}
	}
	rt.walMetrics = m
}

// walState reads the log handle and counters consistently.
func (rt *Runtime) walState() (*wal.Log, *obs.WALMetrics) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.walLog, rt.walMetrics
}

// recordDecide journals the coordinator's commit point for a request —
// appended and fsynced BEFORE the commit fan-out — and remembers it in
// the in-memory decide table that answers recovery outcome queries.
func (rt *Runtime) recordDecide(main topo.HostID, id string, expiry broker.Time) {
	l, m := rt.walState()
	if l == nil {
		return
	}
	rt.decideMu.Lock()
	rt.decided[id] = expiry
	rt.decideMu.Unlock()
	if err := l.Append(wal.Record{Type: wal.TypeDecide, Host: string(main), ID: id,
		Outcome: "commit", Expiry: float64(expiry)}); err == nil {
		m.Appends.Inc()
	}
}

// lookupOutcome answers an outcome query from the decide table: absent
// means the commit point was never journaled — presumed abort.
func (rt *Runtime) lookupOutcome(id string) outcomeReply {
	rt.decideMu.Lock()
	defer rt.decideMu.Unlock()
	if exp, ok := rt.decided[id]; ok {
		return outcomeReply{commit: true, expiry: exp}
	}
	return outcomeReply{}
}

// handleOutcome serves msgOutcome for recovering participants.
func (p *QoSProxy) handleOutcome(req outcomeRequest) outcomeReply {
	if p.outcomes == nil {
		return outcomeReply{}
	}
	return p.outcomes(req.id)
}

// logRecord journals one participant record, stamped with this proxy's
// host. A no-op when durability is off.
func (p *QoSProxy) logRecord(rec wal.Record) {
	if p.wlog == nil {
		return
	}
	rec.Host = string(p.host)
	if err := p.wlog.Append(rec); err == nil {
		p.wmetrics.Appends.Inc()
	}
}

// partsFromReservation flattens a prepared multi-reservation's holds
// into journalable parts.
func partsFromReservation(res *broker.MultiReservation) []wal.Part {
	if res == nil {
		return nil
	}
	return partsFromExports(res.Export())
}

func partsFromExports(exs []broker.HoldExport) []wal.Part {
	out := make([]wal.Part, len(exs))
	for i, ex := range exs {
		p := wal.Part{Resource: ex.Resource, ID: uint64(ex.ID), Amount: ex.Amount}
		for _, l := range ex.Links {
			p.Links = append(p.Links, wal.Link{Resource: l.Resource, ID: uint64(l.ID)})
		}
		out[i] = p
	}
	return out
}

func exportsFromParts(parts []wal.Part, expiry broker.Time) []broker.HoldExport {
	out := make([]broker.HoldExport, len(parts))
	for i, p := range parts {
		ex := broker.HoldExport{Resource: p.Resource, ID: broker.ReservationID(p.ID),
			Amount: p.Amount, Expiry: expiry}
		for _, l := range p.Links {
			ex.Links = append(ex.Links, broker.LinkExport{Resource: l.Resource, ID: broker.ReservationID(l.ID)})
		}
		out[i] = ex
	}
	return out
}

// reservationExports flattens any reservation implementation down to
// broker hold exports (unwrapping the journal shim).
func reservationExports(res reservation) []broker.HoldExport {
	switch r := res.(type) {
	case *journaled:
		return reservationExports(r.inner)
	case *combined:
		var out []broker.HoldExport
		for _, part := range r.parts {
			out = append(out, reservationExports(part)...)
		}
		return out
	case *reservationSet:
		var out []broker.HoldExport
		for _, part := range r.parts {
			out = append(out, part.Export()...)
		}
		return out
	case *broker.MultiReservation:
		return r.Export()
	}
	return nil
}

// HoldExports snapshots the session's live holds in journalable form —
// the serving front end checkpoints these into its own session log.
func (s *Session) HoldExports() []broker.HoldExport {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateActive || s.reservation == nil {
		return nil
	}
	return reservationExports(s.reservation)
}

// journaled wraps a committed reservation so the session layer's direct
// lease renewals and teardowns hit the write-ahead log: one lease or
// release record per participating host, keyed by the 2PC request ID,
// so every host's replay is self-contained.
type journaled struct {
	inner reservation
	rt    *Runtime
	id    string
	hosts []topo.HostID
}

func (j *journaled) SetLease(expiry broker.Time) error {
	if err := j.inner.SetLease(expiry); err != nil {
		return err
	}
	j.append(wal.Record{Type: wal.TypeLease, ID: j.id, Expiry: float64(expiry)})
	return nil
}

func (j *journaled) Release(now broker.Time) error {
	err := j.inner.Release(now)
	// Journal the release even on partial error: a part that failed to
	// release was already reclaimed by a lease sweep, so replaying the
	// release can only under-account, never resurrect a hold.
	j.append(wal.Record{Type: wal.TypeRelease, ID: j.id})
	return err
}

func (j *journaled) Touches() []string { return j.inner.Touches() }

// shrinkTo shrinks the inner reservation to the per-resource budget and
// journals the survivors: one TypeShrink record per participating host
// carrying that host's post-shrink holds, so each host's replay ends up
// with the downgraded amounts. Like Release, the journal runs even on
// partial error — a part a concurrent sweep already reclaimed can only
// under-account on replay, never resurrect capacity.
func (j *journaled) shrinkTo(now broker.Time, budget qos.ResourceVector) error {
	err := shrinkReservation(j.inner, now, budget)
	l, m := j.rt.walState()
	if l == nil {
		return err
	}
	parts := j.hostParts()
	if len(parts) != len(j.hosts) {
		// Alignment lost (should not happen: commitPlan and commitBatch
		// both emit parts in host order). Skip journaling rather than
		// attribute holds to the wrong host — the lease sweep still
		// bounds any replay overshoot.
		return err
	}
	for i, part := range parts {
		rec := wal.Record{Type: wal.TypeShrink, ID: j.id, Host: string(j.hosts[i]),
			Parts: partsFromReservation(part)}
		if aerr := l.Append(rec); aerr == nil {
			m.Appends.Inc()
		}
	}
	return err
}

// hostParts exposes the inner reservation's per-host shares, in the
// order commitPlan/commitBatch aligned them with j.hosts.
func (j *journaled) hostParts() []*broker.MultiReservation {
	switch r := j.inner.(type) {
	case *reservationSet:
		return r.parts
	case *broker.MultiReservation:
		return []*broker.MultiReservation{r}
	}
	return nil
}

func (j *journaled) append(rec wal.Record) {
	l, m := j.rt.walState()
	if l == nil {
		return
	}
	for _, h := range j.hosts {
		rec.Host = string(h)
		if err := l.Append(rec); err == nil {
			m.Appends.Inc()
		}
	}
}

// journal wraps a freshly committed reservation when durability is on.
func (rt *Runtime) journal(res reservation, id string, hosts []topo.HostID) reservation {
	if l, _ := rt.walState(); l == nil {
		return res
	}
	return &journaled{inner: res, rt: rt, id: id, hosts: hosts}
}

// coordinatorOf parses the coordinating host out of a request ID
// ("<mainHost>#<n>", minted by Runtime.reqID).
func coordinatorOf(id string) (topo.HostID, bool) {
	i := strings.IndexByte(id, '#')
	if i <= 0 {
		return "", false
	}
	return topo.HostID(id[:i]), true
}

// replayEntry is the per-request state reduced from one host's records.
type replayEntry struct {
	id        string
	parts     []wal.Part
	expiry    broker.Time
	committed bool
	aborted   bool
	released  bool
}

// reduceHost folds the log into per-request entries for one host, in
// first-appearance order, plus the host's journaled commit decisions
// and the number of records consumed.
func reduceHost(records []wal.Record, host string) (entries []*replayEntry, decided map[string]broker.Time, matched int) {
	byID := make(map[string]*replayEntry)
	decided = make(map[string]broker.Time)
	get := func(id string) *replayEntry {
		e, ok := byID[id]
		if !ok {
			e = &replayEntry{id: id}
			byID[id] = e
			entries = append(entries, e)
		}
		return e
	}
	for _, rec := range records {
		if rec.Host != host {
			continue
		}
		matched++
		switch rec.Type {
		case wal.TypeDecide:
			if rec.Outcome == "commit" {
				decided[rec.ID] = broker.Time(rec.Expiry)
			}
		case wal.TypePrepare:
			e := get(rec.ID)
			e.parts = rec.Parts
			e.expiry = broker.Time(rec.Expiry)
		case wal.TypeCommit:
			e := get(rec.ID)
			e.committed = true
			e.expiry = broker.Time(rec.Expiry)
		case wal.TypeAbort:
			e := get(rec.ID)
			e.aborted = true
			e.committed = false
			e.parts = nil
		case wal.TypeLease:
			if e, ok := byID[rec.ID]; ok && !e.aborted && !e.released {
				e.expiry = broker.Time(rec.Expiry)
			}
		case wal.TypeShrink:
			// A mid-session downgrade: the record carries the holds that
			// survived the shrink, replacing the prepare's parts whole. A
			// shrink that left nothing on this host reads as a release so
			// replay keeps an idempotent committed entry instead of
			// restoring phantom holds.
			if e, ok := byID[rec.ID]; ok && !e.aborted && !e.released {
				e.parts = rec.Parts
				if len(rec.Parts) == 0 {
					e.released = true
				}
			}
		case wal.TypeRelease:
			if e, ok := byID[rec.ID]; ok {
				e.released = true
			}
		}
	}
	return entries, decided, matched
}

// restorePending rebuilds this proxy's idempotency table and broker
// books from reduced entries, with the exact pre-crash hold IDs. Must
// run while the serve goroutine is down. Returns the in-doubt request
// IDs: prepared, never committed, never aborted.
func (p *QoSProxy) restorePending(now broker.Time, entries []*replayEntry) (indoubt []string, err error) {
	resolve := func(r string) (broker.Broker, bool) {
		b, ok := p.brokers[r]
		return b, ok
	}
	for _, e := range entries {
		switch {
		case e.aborted:
			p.pending[e.id] = &prepState{aborted: true}
		case e.released:
			// Committed and cleanly torn down: the holds are gone. Keep a
			// committed entry owning an empty reservation so a duplicate
			// commit still answers idempotently.
			p.pending[e.id] = &prepState{res: &broker.MultiReservation{}, committed: true}
		case len(e.parts) == 0:
			// Commit or lease records without a prepare (lost to a torn
			// tail before this checkpoint): nothing restorable.
			continue
		default:
			res, rerr := broker.RestoreMulti(now, resolve, exportsFromParts(e.parts, e.expiry), e.expiry > 0)
			if rerr != nil {
				return nil, rerr
			}
			p.pending[e.id] = &prepState{res: res, committed: e.committed}
			if !e.committed {
				indoubt = append(indoubt, e.id)
			}
		}
		p.order = append(p.order, e.id)
	}
	return indoubt, nil
}

// resolveInDoubt applies one reconciliation answer: a journaled commit
// decision re-arms the lease and commits the entry; no decision is
// presumed abort and releases the restored holds. The resolution is
// itself journaled so a second crash does not re-raise the doubt.
// Returns the outcome label for metrics.
func (rt *Runtime) resolveInDoubt(p *QoSProxy, st *prepState, id string, now broker.Time, rep outcomeReply) string {
	l, m := rt.walState()
	record := func(rec wal.Record) {
		if l == nil {
			return
		}
		rec.Host = string(p.host)
		if err := l.Append(rec); err == nil {
			m.Appends.Inc()
		}
	}
	if rep.commit {
		if st.res != nil {
			if err := st.res.SetLease(rep.expiry); err != nil {
				// The lease lapsed and was swept between prepare and this
				// resolution: the holds are gone, the admission is lost.
				st.aborted = true
				st.committed = false
				st.res = nil
				record(wal.Record{Type: wal.TypeAbort, ID: id})
				return "abort"
			}
		}
		st.committed = true
		record(wal.Record{Type: wal.TypeCommit, ID: id, Expiry: float64(rep.expiry)})
		return "commit"
	}
	st.aborted = true
	st.committed = false
	if st.res != nil {
		_ = st.res.Release(now)
		st.res = nil
	}
	record(wal.Record{Type: wal.TypeAbort, ID: id})
	return "abort"
}

// recoverySweep expires leases that lapsed while the host was down —
// exactly once, before the recovered proxy serves any new admission.
// Network books sweep first (releasing their surviving link holds),
// then locals, mirroring Pool.ExpireLeases.
func recoverySweep(now broker.Time, brokers map[string]broker.Broker) int {
	n := 0
	for _, b := range brokers {
		if nb, ok := b.(*broker.Network); ok {
			n += nb.ExpireLeases(now)
		}
	}
	for _, b := range brokers {
		if lb, ok := b.(*broker.Local); ok {
			n += lb.ExpireLeases(now)
		}
	}
	return n
}

// reconcile resolves a recovered host's in-doubt prepares against their
// coordinators' outcome tables: locally when this host coordinated the
// request, over the fabric otherwise. An unreachable coordinator leaves
// the prepare in doubt — its restored lease keeps the holds reclaimable
// by the ordinary sweep, so nothing leaks even if no answer ever comes.
func (rt *Runtime) reconcile(p *QoSProxy, fabric *transport.Fabric, indoubt []string, now broker.Time) {
	_, m := rt.walState()
	for _, id := range indoubt {
		st := p.pending[id]
		coord, ok := coordinatorOf(id)
		var rep outcomeReply
		var fail error
		switch {
		case !ok:
			fail = fmt.Errorf("proxy: malformed request ID %q", id)
		case coord == p.host || fabric == nil:
			rep = rt.lookupOutcome(id)
		default:
			ctx, cancel := context.WithTimeout(context.Background(), reconcileTimeout)
			resp, err := fabric.Call(ctx, p.addr(), transport.Addr(coord), msgOutcome, outcomeRequest{id: id})
			cancel()
			if err != nil {
				fail = err
			} else if r, okr := resp.(outcomeReply); okr {
				rep = r
			} else {
				fail = fmt.Errorf("proxy: unexpected outcome reply %T", resp)
			}
		}
		if fail != nil {
			m.InDoubt("unresolved")
			continue
		}
		m.InDoubt(rt.resolveInDoubt(p, st, id, now, rep))
	}
}

// Recover rebuilds every host's book from the write-ahead log of a dead
// process: replay checkpoint plus tail into broker holds (exact
// original IDs), idempotency tables, and lease expiries; resolve
// in-doubt prepares against the replayed coordinator decide tables
// (all local — the whole process restarted together); then sweep every
// lease that lapsed while down, exactly once, before Start can admit
// anything new. Must be called after deployment and before Start.
func (rt *Runtime) Recover(now broker.Time) error {
	rt.mu.Lock()
	if rt.started {
		rt.mu.Unlock()
		return errors.New("proxy: Recover after Start")
	}
	l, m := rt.walLog, rt.walMetrics
	proxies := make([]*QoSProxy, 0, len(rt.proxies))
	for _, p := range rt.proxies {
		proxies = append(proxies, p)
	}
	rt.mu.Unlock()
	if l == nil {
		return errors.New("proxy: WAL not enabled")
	}
	records, _, err := wal.Replay(l.Dir())
	if err != nil {
		return err
	}
	// Advance the request-ID sequence past everything in the log: a
	// fresh process restarts nextReq at zero, and without this bump its
	// first admission would mint an ID the replayed idempotency tables
	// already decided — handing the new session a reservation that was
	// restored (and possibly already swept) on behalf of its pre-crash
	// namesake.
	var maxSeq uint64
	for _, r := range records {
		if i := strings.LastIndexByte(r.ID, '#'); i >= 0 {
			if n, err := strconv.ParseUint(r.ID[i+1:], 10, 64); err == nil && n > maxSeq {
				maxSeq = n
			}
		}
	}
	rt.mu.Lock()
	if maxSeq > rt.nextReq {
		rt.nextReq = maxSeq
	}
	rt.mu.Unlock()
	now = rt.clock.Now()
	var swept int
	for _, p := range proxies {
		entries, decided, matched := reduceHost(records, string(p.host))
		rt.decideMu.Lock()
		for id, exp := range decided {
			rt.decided[id] = exp
		}
		rt.decideMu.Unlock()
		m.ReplayRecords.Add(float64(matched))
		if _, err := p.restorePending(now, entries); err != nil {
			return err
		}
	}
	// Reconcile after every host's decide records are merged: an
	// in-doubt prepare may be coordinated by any host in the log.
	for _, p := range proxies {
		var indoubt []string
		for id, st := range p.pending {
			if !st.resolved() {
				indoubt = append(indoubt, id)
			}
		}
		rt.reconcile(p, nil, indoubt, now)
		swept += recoverySweep(now, p.brokers)
	}
	if swept > 0 {
		m.LeasesSwept.Add(float64(swept))
	}
	return nil
}

// CrashRestart kills one host's QoSProxy and recovers it from the
// write-ahead log while the rest of the runtime keeps serving: the
// endpoint drops off the fabric (in-flight calls to it fail), the
// in-memory book and idempotency table are wiped (crash amnesia), state
// is replayed from the log, in-doubt prepares are reconciled against
// their coordinators' outcome tables over the fabric, leases that
// lapsed while down are swept once, and the proxy rejoins the fabric on
// a fresh endpoint. The crash lands at a message boundary — the serve
// goroutine finishes its current handler before dying — so books never
// tear mid-handler; the WAL's torn-tail handling covers the mid-append
// window.
func (rt *Runtime) CrashRestart(host topo.HostID) error {
	rt.crashMu.Lock()
	defer rt.crashMu.Unlock()
	rt.mu.Lock()
	if !rt.started {
		rt.mu.Unlock()
		return errors.New("proxy: runtime not started")
	}
	p, ok := rt.proxies[host]
	if !ok {
		rt.mu.Unlock()
		return fmt.Errorf("proxy: no QoSProxy on host %s", host)
	}
	l, m := rt.walLog, rt.walMetrics
	fabric := rt.fabric
	rt.mu.Unlock()
	if l == nil {
		return errors.New("proxy: WAL not enabled")
	}

	// Crash: stop serving and drop off the fabric.
	close(p.done)
	p.ep.Close()
	p.wg.Wait()

	// Amnesia: the process forgets its book and its idempotency table.
	// Link brokers are owned by no host and keep their holds.
	now := rt.clock.Now()
	p.pending = make(map[string]*prepState)
	p.order = nil
	for _, b := range p.brokers {
		switch br := b.(type) {
		case *broker.Local:
			br.Wipe(now)
		case *broker.Network:
			br.Wipe()
		}
	}

	// Recovery: replay the log into the book, reconcile, sweep — all
	// before the proxy can serve a single new message.
	records, _, err := wal.Replay(l.Dir())
	if err != nil {
		return err
	}
	entries, decided, matched := reduceHost(records, string(p.host))
	rt.decideMu.Lock()
	for id, exp := range decided {
		if _, ok := rt.decided[id]; !ok {
			rt.decided[id] = exp
		}
	}
	rt.decideMu.Unlock()
	m.ReplayRecords.Add(float64(matched))
	indoubt, err := p.restorePending(now, entries)
	if err != nil {
		return err
	}
	rt.reconcile(p, fabric, indoubt, now)
	if swept := recoverySweep(now, p.brokers); swept > 0 {
		m.LeasesSwept.Add(float64(swept))
	}

	// Rejoin the fabric: a fresh endpoint (the crashed one's queued
	// deliveries died with the process) and a fresh serve loop.
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if !rt.started {
		return nil // the runtime stopped underneath the restart
	}
	p.ep = rt.fabric.Endpoint(p.addr(), 16)
	p.ep.SetHandler(msgAvailability, p.handleAvailabilityFast)
	p.done = make(chan struct{})
	p.wg.Add(1)
	go p.serve(p.ep, p.done)
	return nil
}
