package proxy

import (
	"context"
	"errors"
	"testing"
	"time"

	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/obs"
	"qosres/internal/qos"
	"qosres/internal/topo"
	"qosres/internal/transport"
)

// tracedWorld is unreliableWorld with a trace recorder attached before
// Start, so the participant proxies record spans.
func tracedWorld(t *testing.T, opts transport.Options) (*Runtime, *obs.TraceRecorder) {
	t.Helper()
	clock := &ManualClock{}
	rt := NewRuntime(clock)
	if err := rt.SetTransport(transport.New(opts)); err != nil {
		t.Fatal(err)
	}
	rec := obs.NewTraceRecorder(nil, obs.TraceOptions{Sample: 1})
	rt.InstrumentTracing(rec)
	for _, h := range []topo.HostID{"X", "Y"} {
		if _, err := rt.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(resource string, cap float64, host topo.HostID) {
		b, err := broker.NewLocal(resource, cap)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Deploy(host, b); err != nil {
			t.Fatal(err)
		}
	}
	mk("cpu@X", 100, "X")
	mk("cpu@Y", 100, "Y")
	mk("net:X->Y", 100, "Y")
	rt.Start()
	t.Cleanup(rt.Stop)
	return rt, rec
}

// waitTraces polls until the recorder has retained n completed traces —
// participant spans end asynchronously in the serve goroutines, so the
// flush can trail the coordinator's root-end by a scheduling beat.
func waitTraces(t *testing.T, rec *obs.TraceRecorder, n int) []obs.CompletedTrace {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := rec.Completed()
		if len(done) >= n && rec.OpenTraces() == 0 {
			return done
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d trace(s) completed (%d still open)", len(done), n, rec.OpenTraces())
		}
		time.Sleep(time.Millisecond)
	}
}

// spansNamed filters a trace's spans by name and scope.
func spansNamed(spans []obs.SpanRecord, name, scope string) []obs.SpanRecord {
	var out []obs.SpanRecord
	for _, sp := range spans {
		if sp.Name == name && sp.Scope == scope {
			out = append(out, sp)
		}
	}
	return out
}

// hasEvent reports whether any span of the trace carries an event of
// the given type.
func hasEvent(spans []obs.SpanRecord, typ string) bool {
	for _, sp := range spans {
		for _, ev := range sp.Events {
			if ev.Type == typ {
				return true
			}
		}
	}
	return false
}

// TestDuplicatedPrepareTracesOneParticipantSpan pins the causal
// propagation contract under duplication: a prepare/commit pair sent
// over a fabric that duplicates every message yields exactly one
// participant span per message (the first copy), while the duplicate
// copy annotates a duplicate-suppressed event instead of opening a
// second span — the tree stays complete and un-doubled.
func TestDuplicatedPrepareTracesOneParticipantSpan(t *testing.T) {
	rt, rec := tracedWorld(t, transport.Options{
		Defaults: transport.RouteConfig{Dup: 1},
	})
	fabric := rt.Transport()

	root := rec.Root(obs.StageEstablish, "test")
	ctx := obs.ContextWithSpan(context.Background(), root)
	if _, err := fabric.Call(ctx, "X", "Y", msgPrepare, prepareRequest{
		id: "t-1", req: qos.ResourceVector{"cpu@Y": 5},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := fabric.Call(ctx, "X", "Y", msgCommit, commitRequest{id: "t-1"}); err != nil {
		t.Fatal(err)
	}
	// Settle enqueues the duplicate copies; the follow-up synchronous
	// call is the processing barrier (the serve loop is FIFO), so by the
	// time it answers, both duplicates have been handled.
	fabric.Settle()
	if _, err := fabric.Call(ctx, "X", "Y", msgAvailability, availabilityRequest{}); err != nil {
		t.Fatal(err)
	}
	root.End()

	done := waitTraces(t, rec, 1)
	spans := done[0].Spans
	if got := spansNamed(spans, msgPrepare, "Y"); len(got) != 1 {
		t.Fatalf("prepare participant spans = %d, want exactly 1 (duplicate must not open a second span)", len(got))
	}
	if got := spansNamed(spans, msgCommit, "Y"); len(got) != 1 {
		t.Fatalf("commit participant spans = %d, want exactly 1", len(got))
	}
	var dupKinds []string
	for _, sp := range spans {
		for _, ev := range sp.Events {
			if ev.Type == obs.EventDuplicateSuppressed {
				dupKinds = append(dupKinds, ev.Detail)
			}
		}
	}
	want := map[string]bool{msgPrepare: false, msgCommit: false}
	for _, k := range dupKinds {
		if _, ok := want[k]; ok {
			want[k] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("no duplicate-suppressed event for duplicated %s", k)
		}
	}
}

// TestPartitionedCallSpanTerminatesWithPartition pins the loss
// attribution: a call into a partition ends its span with status
// "partition" and a partition-drop event — never an orphan, never a
// bare timeout when the cause is known.
func TestPartitionedCallSpanTerminatesWithPartition(t *testing.T) {
	rt, rec := tracedWorld(t, transport.Options{})
	fabric := rt.Transport()
	fabric.Partition("X", "Y")

	root := rec.Root(obs.StageEstablish, "test")
	ctx, cancel := context.WithTimeout(obs.ContextWithSpan(context.Background(), root), 50*time.Millisecond)
	defer cancel()
	if _, err := fabric.Call(ctx, "X", "Y", msgAvailability, availabilityRequest{}); err == nil {
		t.Fatal("call across a partition succeeded")
	}
	root.EndStatus("error")

	done := waitTraces(t, rec, 1)
	spans := done[0].Spans
	calls := spansNamed(spans, msgAvailability, "X->Y")
	if len(calls) != 1 {
		t.Fatalf("availability call spans = %d, want 1", len(calls))
	}
	if calls[0].Status != "partition" {
		t.Errorf("partitioned call span status = %q, want partition", calls[0].Status)
	}
	if !hasEvent(calls, obs.EventPartitionDrop) {
		t.Error("partitioned call span has no partition-drop event")
	}
	// The request never crossed the partition: no participant span.
	if got := spansNamed(spans, msgAvailability, "Y"); len(got) != 0 {
		t.Errorf("participant spans across a partition = %d, want 0", len(got))
	}
}

// TestBreakerFastFailTracesTerminatedSpan pins the refusal span: a call
// refused by an open circuit breaker still records a terminated child
// span (status circuit_open, breaker-fastfail event) so the trace tree
// stays complete for refused work.
func TestBreakerFastFailTracesTerminatedSpan(t *testing.T) {
	rt, rec := tracedWorld(t, transport.Options{
		Breaker: &transport.BreakerConfig{Threshold: 1, Cooldown: time.Minute},
	})
	fabric := rt.Transport()
	fabric.Partition("X", "Y")

	root := rec.Root(obs.StageEstablish, "test")
	sctx := obs.ContextWithSpan(context.Background(), root)
	ctx, cancel := context.WithTimeout(sctx, 50*time.Millisecond)
	if _, err := fabric.Call(ctx, "X", "Y", msgAvailability, availabilityRequest{}); err == nil {
		t.Fatal("call across a partition succeeded")
	}
	cancel()
	// The breaker is open now: the next call must fast-fail.
	if _, err := fabric.Call(sctx, "X", "Y", msgAvailability, availabilityRequest{}); !errors.Is(err, transport.ErrCircuitOpen) {
		t.Fatalf("second call error = %v, want ErrCircuitOpen", err)
	}
	root.EndStatus("error")

	done := waitTraces(t, rec, 1)
	calls := spansNamed(done[0].Spans, msgAvailability, "X->Y")
	if len(calls) != 2 {
		t.Fatalf("availability call spans = %d, want 2", len(calls))
	}
	var fastFailed *obs.SpanRecord
	for i := range calls {
		if calls[i].Status == "circuit_open" {
			fastFailed = &calls[i]
		}
	}
	if fastFailed == nil {
		t.Fatal("no call span terminated with status circuit_open")
	}
	if !hasEvent([]obs.SpanRecord{*fastFailed}, obs.EventBreakerFastFail) {
		t.Error("fast-failed span has no breaker-fastfail event")
	}
}

// TestShedEstablishTracesTerminatedRoot pins the overload span: an
// Establish shed at the admission gate records a terminated root span
// with status "shed" and a shed event — refused admissions are visible
// in the trace store, not silent.
func TestShedEstablishTracesTerminatedRoot(t *testing.T) {
	rt, rec := tracedWorld(t, transport.Options{})
	service, binding := pipelineService(t)

	rt.SetMaxInFlight(1)
	if err := rt.admitGate().TryAcquire(); err != nil {
		t.Fatal(err)
	}
	_, err := rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}})
	if !errors.Is(err, transport.ErrOverloaded) {
		t.Fatalf("establish error = %v, want ErrOverloaded", err)
	}

	done := waitTraces(t, rec, 1)
	root := done[0].Spans[0]
	for _, sp := range done[0].Spans {
		if sp.Root() {
			root = sp
		}
	}
	if root.Name != obs.StageEstablish || root.Status != "shed" {
		t.Fatalf("shed root span = %s/%s, want %s/shed", root.Name, root.Status, obs.StageEstablish)
	}
	if !hasEvent(done[0].Spans, obs.EventShed) {
		t.Error("shed trace has no shed event")
	}
}

// TestEstablishTracesFullTree pins the happy-path tree shape: one
// admission over a perfect fabric yields a complete trace — an ok
// establish root, the four stage children in protocol order, fabric
// call spans under the stages, and remote participant spans parented
// under their call spans.
func TestEstablishTracesFullTree(t *testing.T) {
	rt, rec := tracedWorld(t, transport.Options{})
	service, binding := pipelineService(t)

	s, err := rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Release(); err != nil {
		t.Fatal(err)
	}

	done := waitTraces(t, rec, 1)
	spans := done[0].Spans
	if done[0].Errored {
		t.Error("successful admission trace marked errored")
	}

	var root obs.SpanRecord
	byID := map[uint64]obs.SpanRecord{}
	for _, sp := range spans {
		byID[sp.Span] = sp
		if sp.Root() {
			root = sp
		}
	}
	if root.Name != obs.StageEstablish || root.Status != obs.StatusOK {
		t.Fatalf("root span = %s/%s, want %s/%s", root.Name, root.Status, obs.StageEstablish, obs.StatusOK)
	}

	// The four stages hang directly under the root, in protocol order.
	var stageOrder []string
	for _, sp := range spans {
		if sp.Parent == root.Span {
			stageOrder = append(stageOrder, sp.Name)
		}
	}
	wantStages := []string{obs.StageSnapshot, obs.StageBuild, obs.StagePlan, obs.StageReserve}
	if len(stageOrder) != len(wantStages) {
		t.Fatalf("root has %d stage children %v, want %v", len(stageOrder), stageOrder, wantStages)
	}
	for i, name := range wantStages {
		if stageOrder[i] != name {
			t.Fatalf("stage order = %v, want %v", stageOrder, wantStages)
		}
	}

	// Remote participant spans exist and parent under fabric call spans
	// whose own parents are stage spans — the causal chain
	// root > stage > call > participant survives the wire.
	participants := spansNamed(spans, msgPrepare, "Y")
	if len(participants) != 1 {
		t.Fatalf("prepare participant spans on Y = %d, want 1", len(participants))
	}
	call, ok := byID[participants[0].Parent]
	if !ok {
		t.Fatal("participant span's parent call span missing from the trace")
	}
	if call.Name != msgPrepare || call.Scope != "X->Y" {
		t.Fatalf("participant parent = %s@%s, want %s@X->Y", call.Name, call.Scope, msgPrepare)
	}
	stage, ok := byID[call.Parent]
	if !ok || stage.Name != obs.StageReserve {
		t.Fatalf("call span parent = %+v, want the %s stage", stage, obs.StageReserve)
	}
}
