package proxy

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/obs"
	"qosres/internal/qos"
	"qosres/internal/qrg"
	"qosres/internal/svc"
	"qosres/internal/topo"
	"qosres/internal/transport"
)

// SessionSpec describes one service session to establish: the service's
// QoS-Resource Model, the session's resource binding, and the planning
// algorithm to run at the main QoSProxy.
type SessionSpec struct {
	Service *svc.Service
	Binding svc.Binding
	Planner core.Planner
}

// AdmitPolicy bounds the validate-at-commit retry loop of Establish.
// When a computed plan is refused at commit time (its phase-1 snapshot
// went stale), Establish replans against a fresh snapshot up to
// MaxRetries more times, sleeping Backoff<<attempt between attempts.
type AdmitPolicy struct {
	// MaxRetries is the number of replanning attempts after the first
	// refusal; 0 means a single attempt, fail-fast.
	MaxRetries int
	// Backoff is the base sleep before retry attempt 1; attempt k waits
	// Backoff<<(k-1), capped at maxAdmitBackoff. Zero disables sleeping,
	// which is what simulated (manual-clock) deployments want.
	Backoff time.Duration
	// Jitter, when set, draws each sleep uniformly from [0, d] (full
	// jitter) where d is the capped exponential above, so a mass refusal
	// does not re-synchronize every refused client into a retry storm.
	// The draw comes from a source seeded with JitterSeed (see
	// Runtime.SetAdmitPolicy), so tests replay deterministically.
	Jitter bool
	// JitterSeed seeds the jitter source; two runtimes with different
	// seeds de-correlate their retry schedules.
	JitterSeed int64
}

// DefaultAdmitPolicy retries replanning up to three times with no
// backoff sleep.
var DefaultAdmitPolicy = AdmitPolicy{MaxRetries: 3}

// maxAdmitBackoff caps the exponential backoff between admission
// attempts.
const maxAdmitBackoff = 100 * time.Millisecond

// backoff returns the sleep before retry attempt k (1-based):
// Backoff<<(k-1), capped at maxAdmitBackoff. The shift overflows for
// large attempt counts — a 1ns base shifted 63 times is negative, 64
// times is zero — so any non-positive or over-cap result collapses to
// the cap rather than to "no sleep" or a panic-length wait. With Jitter
// enabled and a non-nil source, the result is drawn uniformly from
// [0, capped] instead (full jitter; the cap still bounds every draw).
func (p AdmitPolicy) backoff(attempt int, jitter *lockedRand) time.Duration {
	if p.Backoff <= 0 {
		return 0
	}
	var d time.Duration
	if attempt > 63 {
		// The shift itself is undefined territory past the word size;
		// don't even compute it.
		d = maxAdmitBackoff
	} else {
		d = p.Backoff << uint(attempt-1)
		if d > maxAdmitBackoff || d <= 0 {
			d = maxAdmitBackoff
		}
	}
	if p.Jitter && jitter != nil {
		d = time.Duration(jitter.Int63n(int64(d) + 1))
	}
	return d
}

// wait sleeps before retry attempt k (1-based), bounded by the context.
// A zero Backoff is a no-op so simulated time is never mixed with
// wall-clock sleeps.
func (p AdmitPolicy) wait(ctx context.Context, attempt int, jitter *lockedRand) {
	d := p.backoff(attempt, jitter)
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// SessionState is the lifecycle state of an established session.
type SessionState int

const (
	// StateActive: the session holds a live reservation.
	StateActive SessionState = iota
	// StateReleased: the session was released by its owner.
	StateReleased
	// StateFailed: the session was terminated by the runtime — a fault
	// invalidated its reservation and no feasible repair existed, or its
	// lease expired underneath it.
	StateFailed
)

// String renders the state for logs and test failures.
func (s SessionState) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateReleased:
		return "released"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("SessionState(%d)", int(s))
	}
}

// ErrSessionLost is returned by Heartbeat when the session's reservation
// was reclaimed by a lease-expiry sweep: the session no longer holds its
// resources and must be re-established from scratch.
var ErrSessionLost = errors.New("proxy: session reservation lost to lease expiry")

// Session is an established end-to-end reservation: the plan plus the
// multi-resource reservation backing it.
//
// Plan is the initially admitted plan and never changes; CurrentPlan
// returns the live plan, which a fault-driven repair may have replaced
// (possibly at a lower QoS level). All teardown — owner Release,
// repair-failure termination, lease loss — funnels through one
// lock-held path, so a session's reservation is released exactly once
// no matter how many paths race to end it.
type Session struct {
	// Plan is the initially admitted plan (immutable).
	Plan *core.Plan

	runtime  *Runtime
	mainHost topo.HostID
	spec     SessionSpec

	mu          sync.Mutex
	state       SessionState
	plan        *core.Plan // live plan; starts equal to Plan
	reservation reservation
	// touches is the set of concrete resources the live reservation
	// holds capacity on (including route links of network resources);
	// the repair layer matches failed resources against it.
	touches map[string]bool
	repairs int
	// qosSeconds accumulates delivered QoS-seconds (rank × held time)
	// over completed level segments; qosMarkAt is where the current
	// segment started. The sum folds into the runtime's delivered total
	// at teardown.
	qosSeconds float64
	qosMarkAt  broker.Time
}

// Establish runs the three-phase protocol with no deadline — the
// unbounded in-process semantics, appropriate over a perfect fabric.
// Deployments with a fallible transport should call EstablishContext
// with a deadline instead.
func (rt *Runtime) Establish(mainHost topo.HostID, spec SessionSpec) (*Session, error) {
	return rt.EstablishContext(context.Background(), mainHost, spec)
}

// EstablishContext runs the full three-phase protocol of section 4.2
// from the main QoSProxy on mainHost, bounded by ctx:
//
// Phase 1 queries, in parallel over the transport fabric, the QoSProxies
// owning the session's resources for availability reports. A participant
// that cannot be reached before the deadline degrades instead of
// blocking: its resources are planned from the last cached report, aged
// by the α availability-change index, or treated as unavailable when no
// report was ever seen. Phase 2 builds the QRG and runs the planner
// locally. Phase 3 commits the plan with an idempotent two-phase commit
// across the owning proxies (see twophase.go): every broker's current
// availability is re-validated before holds are created, all-or-nothing
// per host and abort-all across hosts. A refusal leaves zero residual
// holds; because it means the phase-1 snapshot went stale under
// concurrent admission, Establish then replans against a fresh snapshot,
// bounded by the runtime's AdmitPolicy and the context.
//
// When the runtime bounds in-flight admissions (SetMaxInFlight), calls
// beyond the bound fail immediately with transport.ErrOverloaded.
//
// When the runtime has a lease TTL configured (SetLeaseTTL), the new
// session's holds are leased: they expire and are reclaimed unless the
// session heartbeats (Heartbeat) before the TTL elapses.
func (rt *Runtime) EstablishContext(ctx context.Context, mainHost topo.HostID, spec SessionSpec) (*Session, error) {
	rt.mu.Lock()
	_, ok := rt.proxies[mainHost]
	started := rt.started
	rt.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("proxy: no QoSProxy on main host %s", mainHost)
	}
	if !started {
		return nil, fmt.Errorf("proxy: runtime not started")
	}

	// Trace root: one trace per admission attempt sequence. Every exit
	// path below terminates it, so shed or refused sessions never leave
	// an orphan root behind.
	root := rt.traceRecorder().Root(obs.StageEstablish, string(mainHost))
	ctx = obs.ContextWithSpan(ctx, root)

	// Overload protection: shed rather than queue when the runtime is
	// saturated with in-flight admissions.
	gate := rt.admitGate()
	if err := gate.TryAcquire(); err != nil {
		_, admit, _ := rt.admitState()
		admit.Shed.Inc()
		root.Event(obs.EventShed, string(mainHost))
		root.EndStatus("shed")
		return nil, fmt.Errorf("proxy: establish on %s: %w", mainHost, err)
	}
	defer gate.Release()

	plan, res, err := rt.admitOnce(ctx, mainHost, spec)
	if err != nil {
		root.EndStatus(admitStatus(err))
		return nil, err
	}
	s := &Session{
		Plan:        plan,
		runtime:     rt,
		mainHost:    mainHost,
		spec:        spec,
		plan:        plan,
		reservation: res,
		qosMarkAt:   rt.clock.Now(),
	}
	s.adoptReservationLocked(res)
	if err := rt.armLease(res); err != nil {
		// A freshly committed hold cannot already be expired; failure
		// here means a broker of the plan does not support leases.
		_ = res.Release(rt.clock.Now())
		root.EndStatus("error")
		return nil, err
	}
	rt.register(s)
	root.End()
	return s, nil
}

// admitStatus maps an admission error to a span status.
func admitStatus(err error) string {
	switch {
	case err == nil:
		return obs.StatusOK
	case errors.Is(err, core.ErrInfeasible):
		return "infeasible"
	case errors.Is(err, broker.ErrInsufficient):
		return "refused"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "deadline_exceeded"
	case errors.Is(err, transport.ErrCircuitOpen):
		return "circuit_open"
	default:
		return "error"
	}
}

// stageSpan couples one admission stage's histogram observation (with a
// trace-ID exemplar when the trace is sampled) with a child span of the
// admission trace. Inert — no clock read, no allocation — when neither
// metrics nor tracing is on.
type stageSpan struct {
	h     *obs.Histogram
	span  obs.ActiveSpan
	tid   string
	start time.Time
	on    bool
}

// startStageSpan begins one stage under the admission's root span.
func startStageSpan(h *obs.Histogram, parent obs.ActiveSpan, name, scope string) stageSpan {
	st := stageSpan{h: h, span: parent.Child(name, scope), tid: parent.TraceID()}
	if st.h != nil || st.span.Recording() {
		st.start = time.Now()
		st.on = true
	}
	return st
}

// end records the stage latency (exemplared with the trace ID when
// sampled) and terminates the child span: StatusOK when err is nil,
// status otherwise.
func (st stageSpan) end(err error, status string) {
	if !st.on {
		return
	}
	st.h.ObserveExemplar(time.Since(st.start).Seconds(), st.tid)
	st.span.EndErr(err, status)
}

// admitOnce runs phases 1-3 (with the bounded replanning retry loop)
// for one spec and returns the admitted plan and its reservation. It is
// the shared admission engine of Establish and the repair layer. The
// context carries the admission's root span (when tracing): each stage
// hangs a child span under it, and the fabric calls of phases 1 and 3
// parent under their stage's span in turn.
func (rt *Runtime) admitOnce(ctx context.Context, mainHost topo.HostID, spec SessionSpec) (*core.Plan, reservation, error) {
	resources, err := sessionResourceSet(spec)
	if err != nil {
		return nil, nil, err
	}
	stages := rt.planStages()
	policy, admit, jitter := rt.admitState()
	tpl := rt.templateFor(spec)
	memo := rt.planMemo()
	root := obs.SpanFromContext(ctx)
	host := string(mainHost)

	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			root.Event(obs.EventDeadlineExceeded, "admission")
			if lastErr != nil {
				return nil, nil, fmt.Errorf("proxy: admission abandoned at deadline after %d attempt(s): %w", attempt, lastErr)
			}
			return nil, nil, fmt.Errorf("proxy: admission abandoned at deadline: %w", err)
		}
		// Phase 1: collect availability from the owning proxies, in
		// parallel. Each attempt takes a fresh snapshot: retrying against
		// the stale one would just recompute the refused plan.
		st := startStageSpan(stages.Snapshot, root, obs.StageSnapshot, host)
		snap, err := rt.collectAvailability(obs.ContextWithSpan(ctx, st.span), mainHost, resources)
		st.end(err, "error")
		if err != nil {
			return nil, nil, err
		}

		// Phase 2: local computation at the main proxy. The plan memo
		// short-circuits it entirely when this (template, planner) pair
		// already planned against an identical epoch vector — the books
		// are provably unchanged, so the memoized plan is the plan the
		// stages below would recompute. Otherwise the compiled template
		// (shared by every attempt and every session of this (service,
		// binding) pair) yields the same graph as qrg.Build.
		plan, memoized := memo.Get(tpl, spec.Planner, snap)
		if memoized {
			root.Event(obs.EventPlanMemoHit, host)
		} else {
			st = startStageSpan(stages.Build, root, obs.StageBuild, host)
			var g *qrg.Graph
			if tpl != nil {
				g, err = tpl.Instantiate(snap)
			} else {
				g, err = qrg.Build(spec.Service, spec.Binding, snap)
			}
			st.end(err, "error")
			if err != nil {
				return nil, nil, err
			}
			st = startStageSpan(stages.Plan, root, obs.StagePlan, host)
			plan, err = spec.Planner.Plan(g)
			st.end(err, "infeasible")
			if tpl != nil {
				// Plans own their data; recycle the graph buffers for the
				// next instantiation.
				tpl.Recycle(g)
			}
			if err != nil {
				// Planning failure against a fresh snapshot is not staleness;
				// retrying cannot help.
				return nil, nil, err
			}
			if len(snap.Epoch) == len(resources) {
				// Only a fully epoch-stamped snapshot (no degraded
				// resources) proves enough to memoize against.
				memo.Put(tpl, spec.Planner, snap, plan)
			}
		}

		// Phase 3: two-phase validate-at-commit across the plan's owning
		// proxies — through the group-commit front end when batching is
		// enabled, serialized otherwise. Either way a refusal leaves zero
		// residual holds and is retried here against a fresh snapshot.
		st = startStageSpan(stages.Reserve, root, obs.StageReserve, host)
		rctx := obs.ContextWithSpan(ctx, st.span)
		var res reservation
		if fe := rt.batchFrontEnd(); fe != nil {
			res, err = fe.commit(rctx, mainHost, plan.Requirement())
		} else {
			res, err = rt.commitPlan(rctx, mainHost, plan.Requirement())
		}
		if err != nil && errors.Is(err, broker.ErrInsufficient) {
			st.end(err, "refused")
		} else {
			st.end(err, "error")
		}
		if err == nil {
			return plan, res, nil
		}
		if !errors.Is(err, broker.ErrInsufficient) {
			return nil, nil, fmt.Errorf("proxy: commit failed: %w", err)
		}
		// The plan fit its snapshot but not the brokers' current state:
		// a concurrent admission won the race. Count the refusal (the
		// atomic commit left nothing to roll back, but the attempt itself
		// is a rolled-back admission) and replan if the policy allows.
		admit.StaleRejects.Inc()
		admit.Rollbacks.Inc()
		lastErr = err
		if attempt >= policy.MaxRetries {
			return nil, nil, fmt.Errorf("proxy: admission refused after %d attempt(s): %w", attempt+1, lastErr)
		}
		admit.Retries.Inc()
		root.Event(obs.EventRetry, fmt.Sprintf("attempt %d", attempt+2))
		if policy.Backoff > 0 {
			root.Event(obs.EventBackoff, "")
		}
		policy.wait(ctx, attempt+1, jitter)
	}
}

// sessionResourceSet lists the concrete resources the session's QRG can
// touch: every binding target of every component.
func sessionResourceSet(spec SessionSpec) ([]string, error) {
	if spec.Service == nil || spec.Planner == nil {
		return nil, fmt.Errorf("proxy: session spec missing service or planner")
	}
	seen := make(map[string]bool)
	var out []string
	for _, cid := range spec.Service.ComponentIDs() {
		for _, concrete := range spec.Binding[cid] {
			if !seen[concrete] {
				seen[concrete] = true
				out = append(out, concrete)
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("proxy: session binding names no resources")
	}
	return out, nil
}

// collectAvailability is phase 1: group the resources by owning host and
// query all owning proxies concurrently over the fabric from the main
// proxy's address.
//
// Degradation ladder: a group whose proxy replies in time contributes
// fresh reports (which also refresh the runtime's availability cache). A
// group whose call fails — partition, loss burning the whole deadline,
// open breaker — degrades per resource: the last cached report, aged
// conservatively by its α availability-change index (avail × min(α, 1):
// a shrinking-availability trend discounts the stale value, a growing
// one is never extrapolated), or zero availability when no report was
// ever cached (excluding the unreachable host from planning). The
// two-phase commit re-validates real availability anyway, so optimism
// here can waste a retry but never over-commit.
func (rt *Runtime) collectAvailability(ctx context.Context, mainHost topo.HostID, resources []string) (*broker.Snapshot, error) {
	groups := make(map[topo.HostID][]string)
	for _, r := range resources {
		host, err := rt.hostFor(r)
		if err != nil {
			return nil, err
		}
		groups[host] = append(groups[host], r)
	}
	fabric := rt.Transport()
	from := transport.Addr(mainHost)
	type result struct {
		host    topo.HostID
		rs      []string
		reports []broker.Report
		err     error // handler error (terminal)
		degrade bool  // transport failure: fall back to the cache
	}
	results := make(chan result, len(groups))
	for host, rs := range groups {
		go func(host topo.HostID, rs []string) {
			resp, err := fabric.Call(ctx, from, transport.Addr(host), msgAvailability, availabilityRequest{resources: rs})
			if err != nil {
				results <- result{host: host, rs: rs, degrade: true}
				return
			}
			rep, ok := resp.(availabilityReply)
			if !ok {
				results <- result{host: host, rs: rs, err: fmt.Errorf("proxy: unexpected availability reply %T", resp)}
				return
			}
			results <- result{host: host, rs: rs, reports: rep.reports, err: rep.err}
		}(host, rs)
	}
	snap := &broker.Snapshot{
		At:    rt.clock.Now(),
		Avail: make(qos.ResourceVector, len(resources)),
		Alpha: make(map[string]float64, len(resources)),
		Epoch: make(map[string]uint64, len(resources)),
	}
	span := obs.SpanFromContext(ctx)
	var firstErr error
	for range groups {
		res := <-results
		if res.degrade {
			span.Event(obs.EventDegradedToCached, string(res.host))
			for _, r := range res.rs {
				if cached, ok := rt.cachedReport(r); ok {
					age := cached.Alpha
					if age > 1 {
						age = 1
					}
					if age < 0 {
						age = 0
					}
					snap.Avail[r] = cached.Avail * age
					snap.Alpha[r] = cached.Alpha
				} else {
					// Never heard from this host: exclude it from the
					// plan rather than guess.
					snap.Avail[r] = 0
					snap.Alpha[r] = 1
				}
			}
			continue
		}
		if res.err != nil {
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		rt.storeReports(res.reports)
		for _, rep := range res.reports {
			snap.Avail[rep.Resource] = rep.Avail
			snap.Alpha[rep.Resource] = rep.Alpha
			// Degraded (cache-aged) resources deliberately get no epoch:
			// only fresh reports make the staleness claim the plan memo
			// validates against.
			snap.Epoch[rep.Resource] = rep.Epoch
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return snap, nil
}

// adoptReservationLocked records a reservation's touch set on the
// session. Callers either hold s.mu or own the session exclusively
// (construction).
func (s *Session) adoptReservationLocked(res reservation) {
	s.touches = make(map[string]bool)
	for _, r := range res.Touches() {
		s.touches[r] = true
	}
}

// CurrentPlan returns the session's live plan: the initially admitted
// one, or the latest repair's plan after a fault-driven re-admission.
func (s *Session) CurrentPlan() *core.Plan {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plan
}

// State returns the session's lifecycle state.
func (s *Session) State() SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Repairs returns how many fault-driven re-admissions the session has
// survived.
func (s *Session) Repairs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repairs
}

// terminateLocked is the single teardown path: every way a session ends
// — owner Release, repair failure, lease loss — lands here with s.mu
// held. The first caller moves the session out of StateActive, releases
// the reservation, and unregisters it; later callers (and concurrent
// racers, serialized by s.mu) find nothing left to do. This is what
// makes Release racing a failure-driven teardown safe: the reservation
// is read and cleared under the same lock that decides the state
// transition, so it can be released at most once.
func (s *Session) terminateLocked(to SessionState) error {
	if s.state != StateActive {
		return nil
	}
	s.state = to
	res := s.reservation
	s.reservation = nil
	s.touches = nil
	now := s.runtime.clock.Now()
	s.qosAccrueLocked(now)
	s.runtime.addDeliveredQoS(s.qosSeconds)
	s.qosSeconds = 0
	s.runtime.unregister(s)
	if res == nil {
		return nil
	}
	return res.Release(now)
}

// qosAccrueLocked closes the current QoS-seconds segment at its rank
// and starts a new one at now. Called under s.mu whenever the session's
// level changes (renegotiation, repair) and at teardown.
func (s *Session) qosAccrueLocked(now broker.Time) {
	if s.plan != nil && now > s.qosMarkAt {
		s.qosSeconds += float64(now-s.qosMarkAt) * float64(s.plan.Rank)
	}
	s.qosMarkAt = now
}

// Release terminates the session's reservations. It is idempotent, and
// safe against concurrent fault-driven teardown: whichever path wins
// releases the holds, the other is a no-op.
func (s *Session) Release() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.terminateLocked(StateReleased)
}

// Heartbeat renews the session's reservation lease for another TTL from
// the runtime clock's now. On a runtime without a lease TTL it is a
// no-op. If a lease sweep already reclaimed one of the session's holds
// — the session went silent past its TTL, e.g. across a main-proxy
// crash — the session is terminated (surviving holds released) and
// ErrSessionLost is returned.
func (s *Session) Heartbeat() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateActive {
		return ErrSessionLost
	}
	ttl := s.runtime.leaseTTLNow()
	if ttl <= 0 || s.reservation == nil {
		return nil
	}
	err := s.reservation.SetLease(s.runtime.clock.Now() + ttl)
	if err == nil {
		return nil
	}
	if errors.Is(err, broker.ErrUnknownReservation) {
		// The sweep won: part of the reservation is gone. Release the
		// survivors (terminateLocked tolerates the reclaimed parts) and
		// report the loss.
		_ = s.terminateLocked(StateFailed)
		return fmt.Errorf("%w: %v", ErrSessionLost, err)
	}
	return err
}

// armLease leases a freshly admitted reservation when the runtime has a
// TTL configured; without one the holds stay permanent.
func (rt *Runtime) armLease(res reservation) error {
	ttl := rt.leaseTTLNow()
	if ttl <= 0 {
		return nil
	}
	return res.SetLease(rt.clock.Now() + ttl)
}
