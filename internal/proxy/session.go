package proxy

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/obs"
	"qosres/internal/qos"
	"qosres/internal/qrg"
	"qosres/internal/svc"
	"qosres/internal/topo"
)

// SessionSpec describes one service session to establish: the service's
// QoS-Resource Model, the session's resource binding, and the planning
// algorithm to run at the main QoSProxy.
type SessionSpec struct {
	Service *svc.Service
	Binding svc.Binding
	Planner core.Planner
}

// AdmitPolicy bounds the validate-at-commit retry loop of Establish.
// When a computed plan is refused at commit time (its phase-1 snapshot
// went stale), Establish replans against a fresh snapshot up to
// MaxRetries more times, sleeping Backoff<<attempt between attempts.
type AdmitPolicy struct {
	// MaxRetries is the number of replanning attempts after the first
	// refusal; 0 means a single attempt, fail-fast.
	MaxRetries int
	// Backoff is the base sleep before retry attempt 1; attempt k waits
	// Backoff<<(k-1), capped at maxAdmitBackoff. Zero disables sleeping,
	// which is what simulated (manual-clock) deployments want.
	Backoff time.Duration
}

// DefaultAdmitPolicy retries replanning up to three times with no
// backoff sleep.
var DefaultAdmitPolicy = AdmitPolicy{MaxRetries: 3}

// maxAdmitBackoff caps the exponential backoff between admission
// attempts.
const maxAdmitBackoff = 100 * time.Millisecond

// wait sleeps before retry attempt k (1-based). A zero Backoff is a
// no-op so simulated time is never mixed with wall-clock sleeps.
func (p AdmitPolicy) wait(attempt int) {
	if p.Backoff <= 0 {
		return
	}
	d := p.Backoff << uint(attempt-1)
	if d > maxAdmitBackoff || d <= 0 {
		d = maxAdmitBackoff
	}
	time.Sleep(d)
}

// Session is an established end-to-end reservation: the plan plus the
// multi-resource reservation backing it.
type Session struct {
	Plan        *core.Plan
	runtime     *Runtime
	reservation *broker.MultiReservation
	mu          sync.Mutex
	released    bool
}

// Establish runs the full three-phase protocol of section 4.2 from the
// main QoSProxy on mainHost:
//
// Phase 1 queries, in parallel, the QoSProxies owning the session's
// resources for availability reports. Phase 2 builds the QRG and runs
// the planner locally. Phase 3 commits the plan's requirement with
// validate-at-commit semantics (broker.ReserveAtomic): every involved
// broker's availability is re-checked against the requirement under the
// package-wide lock order, and the holds are created all-or-nothing. A
// refusal leaves zero residual holds; because it means the phase-1
// snapshot went stale under concurrent admission, Establish then
// replans against a fresh snapshot, bounded by the runtime's
// AdmitPolicy.
func (rt *Runtime) Establish(mainHost topo.HostID, spec SessionSpec) (*Session, error) {
	rt.mu.Lock()
	_, ok := rt.proxies[mainHost]
	started := rt.started
	rt.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("proxy: no QoSProxy on main host %s", mainHost)
	}
	if !started {
		return nil, fmt.Errorf("proxy: runtime not started")
	}

	resources, err := sessionResourceSet(spec)
	if err != nil {
		return nil, err
	}
	stages := rt.planStages()
	policy, admit := rt.admitState()
	tpl := rt.templateFor(spec)

	var lastErr error
	for attempt := 0; ; attempt++ {
		// Phase 1: collect availability from the owning proxies, in
		// parallel. Each attempt takes a fresh snapshot: retrying against
		// the stale one would just recompute the refused plan.
		sp := obs.StartSpan(stages.Snapshot)
		snap, err := rt.collectAvailability(resources)
		sp.End()
		if err != nil {
			return nil, err
		}

		// Phase 2: local computation at the main proxy. The compiled
		// template (shared by every attempt and every session of this
		// (service, binding) pair) yields the same graph as qrg.Build.
		sp = obs.StartSpan(stages.Build)
		var g *qrg.Graph
		if tpl != nil {
			g, err = tpl.Instantiate(snap)
		} else {
			g, err = qrg.Build(spec.Service, spec.Binding, snap)
		}
		sp.End()
		if err != nil {
			return nil, err
		}
		sp = obs.StartSpan(stages.Plan)
		plan, err := spec.Planner.Plan(g)
		sp.End()
		if tpl != nil {
			// Plans own their data; recycle the graph buffers for the
			// next instantiation.
			tpl.Recycle(g)
		}
		if err != nil {
			// Planning failure against a fresh snapshot is not staleness;
			// retrying cannot help.
			return nil, err
		}

		// Phase 3: validate-at-commit reserve across the plan's brokers.
		sp = obs.StartSpan(stages.Reserve)
		res, err := broker.ReserveAtomic(rt.clock.Now(), rt.brokerFor, plan.Requirement())
		sp.End()
		if err == nil {
			return &Session{Plan: plan, runtime: rt, reservation: res}, nil
		}
		if !errors.Is(err, broker.ErrInsufficient) {
			return nil, fmt.Errorf("proxy: commit failed: %w", err)
		}
		// The plan fit its snapshot but not the brokers' current state:
		// a concurrent admission won the race. Count the refusal (the
		// atomic commit left nothing to roll back, but the attempt itself
		// is a rolled-back admission) and replan if the policy allows.
		admit.StaleRejects.Inc()
		admit.Rollbacks.Inc()
		lastErr = err
		if attempt >= policy.MaxRetries {
			return nil, fmt.Errorf("proxy: admission refused after %d attempt(s): %w", attempt+1, lastErr)
		}
		admit.Retries.Inc()
		policy.wait(attempt + 1)
	}
}

// sessionResourceSet lists the concrete resources the session's QRG can
// touch: every binding target of every component.
func sessionResourceSet(spec SessionSpec) ([]string, error) {
	if spec.Service == nil || spec.Planner == nil {
		return nil, fmt.Errorf("proxy: session spec missing service or planner")
	}
	seen := make(map[string]bool)
	var out []string
	for _, cid := range spec.Service.ComponentIDs() {
		for _, concrete := range spec.Binding[cid] {
			if !seen[concrete] {
				seen[concrete] = true
				out = append(out, concrete)
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("proxy: session binding names no resources")
	}
	return out, nil
}

// collectAvailability is phase 1: group the resources by owning proxy
// and query all proxies concurrently.
func (rt *Runtime) collectAvailability(resources []string) (*broker.Snapshot, error) {
	groups := make(map[*QoSProxy][]string)
	for _, r := range resources {
		p, err := rt.proxyFor(r)
		if err != nil {
			return nil, err
		}
		groups[p] = append(groups[p], r)
	}
	type result struct {
		reports []broker.Report
		err     error
	}
	results := make(chan result, len(groups))
	for p, rs := range groups {
		go func(p *QoSProxy, rs []string) {
			reply := make(chan availabilityReply, 1)
			p.requests <- availabilityRequest{resources: rs, reply: reply}
			rep := <-reply
			results <- result{reports: rep.reports, err: rep.err}
		}(p, rs)
	}
	snap := &broker.Snapshot{
		At:    rt.clock.Now(),
		Avail: make(qos.ResourceVector, len(resources)),
		Alpha: make(map[string]float64, len(resources)),
	}
	var firstErr error
	for range groups {
		res := <-results
		if res.err != nil {
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		for _, rep := range res.reports {
			snap.Avail[rep.Resource] = rep.Avail
			snap.Alpha[rep.Resource] = rep.Alpha
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return snap, nil
}

// Release terminates the session's reservations. It is idempotent.
func (s *Session) Release() error {
	s.mu.Lock()
	if s.released {
		s.mu.Unlock()
		return nil
	}
	s.released = true
	res := s.reservation
	s.reservation = nil
	s.mu.Unlock()
	if res == nil {
		return nil
	}
	return res.Release(s.runtime.clock.Now())
}
