package proxy

import (
	"fmt"
	"sync"

	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/obs"
	"qosres/internal/qos"
	"qosres/internal/qrg"
	"qosres/internal/svc"
	"qosres/internal/topo"
)

// SessionSpec describes one service session to establish: the service's
// QoS-Resource Model, the session's resource binding, and the planning
// algorithm to run at the main QoSProxy.
type SessionSpec struct {
	Service *svc.Service
	Binding svc.Binding
	Planner core.Planner
}

// Session is an established end-to-end reservation: the plan plus the
// per-proxy reservation segments backing it.
type Session struct {
	Plan     *core.Plan
	runtime  *Runtime
	segments []*segmentReservation
	mu       sync.Mutex
	released bool
}

// Establish runs the full three-phase protocol of section 4.2 from the
// main QoSProxy on mainHost:
//
// Phase 1 queries, in parallel, the QoSProxies owning the session's
// resources for availability reports. Phase 2 builds the QRG and runs
// the planner locally. Phase 3 partitions the plan's requirement by
// owning proxy and dispatches the segments; any refusal rolls back the
// segments already reserved and fails the session.
func (rt *Runtime) Establish(mainHost topo.HostID, spec SessionSpec) (*Session, error) {
	rt.mu.Lock()
	main, ok := rt.proxies[mainHost]
	started := rt.started
	rt.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("proxy: no QoSProxy on main host %s", mainHost)
	}
	if !started {
		return nil, fmt.Errorf("proxy: runtime not started")
	}
	_ = main // the main proxy runs phases 2 and 3 locally

	resources, err := sessionResourceSet(spec)
	if err != nil {
		return nil, err
	}
	stages := rt.planStages()

	// Phase 1: collect availability from the owning proxies, in parallel.
	sp := obs.StartSpan(stages.Snapshot)
	snap, err := rt.collectAvailability(resources)
	sp.End()
	if err != nil {
		return nil, err
	}

	// Phase 2: local computation at the main proxy.
	sp = obs.StartSpan(stages.Build)
	g, err := qrg.Build(spec.Service, spec.Binding, snap)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = obs.StartSpan(stages.Plan)
	plan, err := spec.Planner.Plan(g)
	sp.End()
	if err != nil {
		return nil, err
	}

	// Phase 3: dispatch plan segments to the participating proxies.
	sp = obs.StartSpan(stages.Reserve)
	segments, err := rt.dispatch(plan.Requirement())
	sp.End()
	if err != nil {
		return nil, err
	}
	return &Session{Plan: plan, runtime: rt, segments: segments}, nil
}

// sessionResourceSet lists the concrete resources the session's QRG can
// touch: every binding target of every component.
func sessionResourceSet(spec SessionSpec) ([]string, error) {
	if spec.Service == nil || spec.Planner == nil {
		return nil, fmt.Errorf("proxy: session spec missing service or planner")
	}
	seen := make(map[string]bool)
	var out []string
	for _, cid := range spec.Service.ComponentIDs() {
		for _, concrete := range spec.Binding[cid] {
			if !seen[concrete] {
				seen[concrete] = true
				out = append(out, concrete)
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("proxy: session binding names no resources")
	}
	return out, nil
}

// collectAvailability is phase 1: group the resources by owning proxy
// and query all proxies concurrently.
func (rt *Runtime) collectAvailability(resources []string) (*broker.Snapshot, error) {
	groups := make(map[*QoSProxy][]string)
	for _, r := range resources {
		p, err := rt.proxyFor(r)
		if err != nil {
			return nil, err
		}
		groups[p] = append(groups[p], r)
	}
	type result struct {
		reports []broker.Report
		err     error
	}
	results := make(chan result, len(groups))
	for p, rs := range groups {
		go func(p *QoSProxy, rs []string) {
			reply := make(chan availabilityReply, 1)
			p.requests <- availabilityRequest{resources: rs, reply: reply}
			rep := <-reply
			results <- result{reports: rep.reports, err: rep.err}
		}(p, rs)
	}
	snap := &broker.Snapshot{
		At:    rt.clock.Now(),
		Avail: make(qos.ResourceVector, len(resources)),
		Alpha: make(map[string]float64, len(resources)),
	}
	var firstErr error
	for range groups {
		res := <-results
		if res.err != nil {
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		for _, rep := range res.reports {
			snap.Avail[rep.Resource] = rep.Avail
			snap.Alpha[rep.Resource] = rep.Alpha
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return snap, nil
}

// dispatch is phase 3: split the requirement by owning proxy, reserve
// each segment, and roll everything back if any proxy refuses.
func (rt *Runtime) dispatch(req qos.ResourceVector) ([]*segmentReservation, error) {
	segReq := make(map[*QoSProxy]qos.ResourceVector)
	for _, r := range resourceNames(req) {
		p, err := rt.proxyFor(r)
		if err != nil {
			return nil, err
		}
		if segReq[p] == nil {
			segReq[p] = make(qos.ResourceVector)
		}
		segReq[p][r] = req[r]
	}
	// Deterministic dispatch order by host ID simplifies reasoning and
	// tests; reservations themselves are serialized per proxy anyway.
	proxies := make([]*QoSProxy, 0, len(segReq))
	for p := range segReq {
		proxies = append(proxies, p)
	}
	sortProxies(proxies)

	var segments []*segmentReservation
	for _, p := range proxies {
		reply := make(chan reserveReply, 1)
		p.requests <- reserveRequest{req: segReq[p], reply: reply}
		rep := <-reply
		if rep.err != nil {
			rt.releaseSegments(segments)
			return nil, fmt.Errorf("proxy: segment on %s refused: %w", p.host, rep.err)
		}
		segments = append(segments, rep.reservation)
	}
	return segments, nil
}

func sortProxies(ps []*QoSProxy) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].host < ps[j-1].host; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func (rt *Runtime) releaseSegments(segments []*segmentReservation) {
	for i := len(segments) - 1; i >= 0; i-- {
		seg := segments[i]
		rt.mu.Lock()
		p := rt.proxies[seg.owner]
		rt.mu.Unlock()
		reply := make(chan error, 1)
		p.requests <- releaseRequest{reservation: seg, reply: reply}
		<-reply
	}
}

// Release terminates the session's reservations on every involved proxy.
// It is idempotent.
func (s *Session) Release() error {
	s.mu.Lock()
	if s.released {
		s.mu.Unlock()
		return nil
	}
	s.released = true
	segments := s.segments
	s.segments = nil
	s.mu.Unlock()
	s.runtime.releaseSegments(segments)
	return nil
}
