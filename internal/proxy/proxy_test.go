package proxy

import (
	"errors"
	"sync"
	"testing"

	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/qos"
	"qosres/internal/svc"
	"qosres/internal/topo"
)

func lvl(name string, q float64) svc.Level {
	return svc.Level{Name: name, Vector: qos.MustVector(qos.P("q", q))}
}

// twoHostWorld deploys proxies on hosts X and Y, a cpu broker on each,
// and a shared "net" broker on Y (the receiver side).
func twoHostWorld(t *testing.T) (*Runtime, *ManualClock, map[string]*broker.Local) {
	t.Helper()
	clock := &ManualClock{}
	rt := NewRuntime(clock)
	brokers := map[string]*broker.Local{}
	for _, h := range []topo.HostID{"X", "Y"} {
		if _, err := rt.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(resource string, cap float64, host topo.HostID) {
		b, err := broker.NewLocal(resource, cap)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Deploy(host, b); err != nil {
			t.Fatal(err)
		}
		brokers[resource] = b
	}
	mk("cpu@X", 100, "X")
	mk("cpu@Y", 100, "Y")
	mk("net:X->Y", 100, "Y")
	rt.Start()
	t.Cleanup(rt.Stop)
	return rt, clock, brokers
}

// pipelineService is a two-component service spanning X and Y.
func pipelineService(t *testing.T) (*svc.Service, svc.Binding) {
	t.Helper()
	a := &svc.Component{
		ID: "a", In: []svc.Level{lvl("A0", 0)},
		Out: []svc.Level{lvl("hi", 1), lvl("lo", 2)},
		Translate: svc.TranslationTable{
			"A0": {"hi": {"cpu": 30}, "lo": {"cpu": 10}},
		}.Func(),
		Resources: []string{"cpu"},
	}
	b := &svc.Component{
		ID: "b",
		In: []svc.Level{lvl("in-hi", 1), lvl("in-lo", 2)},
		Out: []svc.Level{
			lvl("best", 10), lvl("ok", 11),
		},
		Translate: svc.TranslationTable{
			"in-hi": {"best": {"cpu": 20, "net": 40}},
			"in-lo": {"best": {"cpu": 35, "net": 25}, "ok": {"cpu": 8, "net": 10}},
		}.Func(),
		Resources: []string{"cpu", "net"},
	}
	service := svc.MustService("pipe", []*svc.Component{a, b},
		[]svc.Edge{{From: "a", To: "b"}}, []string{"best", "ok"})
	binding := svc.Binding{
		"a": {"cpu": "cpu@X"},
		"b": {"cpu": "cpu@Y", "net": "net:X->Y"},
	}
	return service, binding
}

func TestEstablishAndRelease(t *testing.T) {
	rt, _, brokers := twoHostWorld(t)
	service, binding := pipelineService(t)
	s, err := rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Plan.EndToEnd.Name != "best" {
		t.Fatalf("end-to-end = %s", s.Plan.EndToEnd.Name)
	}
	// The plan reserves on both hosts.
	if got := brokers["cpu@X"].Available(); got >= 100 {
		t.Fatalf("cpu@X untouched: %v", got)
	}
	if got := brokers["cpu@Y"].Available(); got >= 100 {
		t.Fatalf("cpu@Y untouched: %v", got)
	}
	if err := s.Release(); err != nil {
		t.Fatal(err)
	}
	for r, b := range brokers {
		if b.Available() != 100 {
			t.Errorf("%s not restored: %v", r, b.Available())
		}
	}
	// Release is idempotent.
	if err := s.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestEstablishDegradesUnderLoad(t *testing.T) {
	rt, _, _ := twoHostWorld(t)
	service, binding := pipelineService(t)
	var sessions []*Session
	levels := map[string]int{}
	for {
		s, err := rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}})
		if err != nil {
			break
		}
		levels[s.Plan.EndToEnd.Name]++
		sessions = append(sessions, s)
	}
	if levels["best"] == 0 || levels["ok"] == 0 {
		t.Fatalf("expected both levels as the pool drains, got %v", levels)
	}
	for _, s := range sessions {
		if err := s.Release(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEstablishInfeasible(t *testing.T) {
	rt, _, brokers := twoHostWorld(t)
	service, binding := pipelineService(t)
	// Drain the net resource entirely.
	if _, err := brokers["net:X->Y"].Reserve(0, 100); err != nil {
		t.Fatal(err)
	}
	_, err := rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}})
	if !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	// Nothing must be leaked on the other brokers.
	if brokers["cpu@X"].Available() != 100 || brokers["cpu@Y"].Available() != 100 {
		t.Fatal("failed establish leaked reservations")
	}
}

func TestEstablishConcurrentNoOverbooking(t *testing.T) {
	rt, _, brokers := twoHostWorld(t)
	service, binding := pipelineService(t)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var sessions []*Session
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}})
			if err != nil {
				return
			}
			mu.Lock()
			sessions = append(sessions, s)
			mu.Unlock()
		}()
	}
	wg.Wait()
	// No broker may be overbooked.
	for r, b := range brokers {
		if b.Available() < 0 {
			t.Errorf("%s overbooked: %v", r, b.Available())
		}
	}
	for _, s := range sessions {
		if err := s.Release(); err != nil {
			t.Fatal(err)
		}
	}
	for r, b := range brokers {
		if b.Available() != 100 {
			t.Errorf("%s not restored after concurrent churn: %v", r, b.Available())
		}
		if b.Reservations() != 0 {
			t.Errorf("%s leaked %d reservations", r, b.Reservations())
		}
	}
}

func TestEstablishValidation(t *testing.T) {
	rt, _, _ := twoHostWorld(t)
	service, binding := pipelineService(t)
	if _, err := rt.Establish("nowhere", SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}}); err == nil {
		t.Fatal("unknown main host accepted")
	}
	if _, err := rt.Establish("X", SessionSpec{Binding: binding, Planner: core.Basic{}}); err == nil {
		t.Fatal("nil service accepted")
	}
	if _, err := rt.Establish("X", SessionSpec{Service: service, Planner: core.Basic{}}); err == nil {
		t.Fatal("empty binding accepted")
	}
	// Binding targeting an undeployed resource.
	bad := svc.Binding{
		"a": {"cpu": "cpu@X"},
		"b": {"cpu": "cpu@Y", "net": "net:ghost"},
	}
	if _, err := rt.Establish("X", SessionSpec{Service: service, Binding: bad, Planner: core.Basic{}}); err == nil {
		t.Fatal("undeployed resource accepted")
	}
}

func TestRuntimeDeployValidation(t *testing.T) {
	rt := NewRuntime(&ManualClock{})
	if _, err := rt.AddHost("X"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddHost("X"); err == nil {
		t.Fatal("duplicate host accepted")
	}
	b, _ := broker.NewLocal("cpu@X", 1)
	if err := rt.Deploy("ghost", b); err == nil {
		t.Fatal("deploy to unknown host accepted")
	}
	if err := rt.Deploy("X", b); err != nil {
		t.Fatal(err)
	}
	if err := rt.Deploy("X", b); err == nil {
		t.Fatal("duplicate resource deploy accepted")
	}
	if h, ok := rt.Owner("cpu@X"); !ok || h != "X" {
		t.Fatalf("owner = %v %v", h, ok)
	}
	rt.Start()
	defer rt.Stop()
	if _, err := rt.AddHost("Y"); err == nil {
		t.Fatal("AddHost after Start accepted")
	}
	b2, _ := broker.NewLocal("mem@X", 1)
	if err := rt.Deploy("X", b2); err == nil {
		t.Fatal("Deploy after Start accepted")
	}
}

func TestEstablishBeforeStartFails(t *testing.T) {
	rt := NewRuntime(&ManualClock{})
	if _, err := rt.AddHost("X"); err != nil {
		t.Fatal(err)
	}
	service, binding := pipelineService(t)
	if _, err := rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}}); err == nil {
		t.Fatal("establish before Start accepted")
	}
}

func TestManualClock(t *testing.T) {
	c := &ManualClock{}
	if c.Now() != 0 {
		t.Fatal("fresh clock not at 0")
	}
	c.Advance(5)
	c.Advance(2.5)
	if c.Now() != 7.5 {
		t.Fatalf("now = %v", c.Now())
	}
	c.Set(100)
	if c.Now() != 100 {
		t.Fatalf("now = %v", c.Now())
	}
}

func TestProxyResourcesListing(t *testing.T) {
	rt, _, _ := twoHostWorld(t)
	rt.mu.Lock()
	p := rt.proxies["Y"]
	rt.mu.Unlock()
	rs := p.Resources()
	if len(rs) != 2 || rs[0] != "cpu@Y" || rs[1] != "net:X->Y" {
		t.Fatalf("Y resources = %v", rs)
	}
	if p.Host() != "Y" {
		t.Fatalf("host = %v", p.Host())
	}
}

func TestStopIsIdempotentAndRestartable(t *testing.T) {
	clock := &ManualClock{}
	rt := NewRuntime(clock)
	if _, err := rt.AddHost("X"); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	rt.Start() // no-op
	rt.Stop()
	rt.Stop() // no-op
}
