package proxy

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/obs"
	"qosres/internal/qos"
	"qosres/internal/topo"
	"qosres/internal/transport"
	"qosres/internal/wal"
)

// durableWorld is twoHostWorld plus a write-ahead log in dir and a lease
// TTL; the runtime is NOT started so tests can Recover first.
func durableWorld(t *testing.T, dir string, ttl broker.Time) (*Runtime, *ManualClock, map[string]*broker.Local) {
	t.Helper()
	clock := &ManualClock{}
	rt := NewRuntime(clock)
	brokers := map[string]*broker.Local{}
	for _, h := range []topo.HostID{"X", "Y"} {
		if _, err := rt.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []struct {
		resource string
		host     topo.HostID
	}{{"cpu@X", "X"}, {"cpu@Y", "Y"}, {"net:X->Y", "Y"}} {
		b, err := broker.NewLocal(r.resource, 100)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Deploy(r.host, b); err != nil {
			t.Fatal(err)
		}
		brokers[r.resource] = b
	}
	if err := rt.EnableWAL(wal.Options{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	if ttl > 0 {
		rt.SetLeaseTTL(ttl)
	}
	t.Cleanup(func() {
		rt.Stop()
		rt.CloseWAL()
	})
	return rt, clock, brokers
}

func establishDurable(t *testing.T, rt *Runtime) *Session {
	t.Helper()
	service, binding := pipelineService(t)
	s, err := rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// bookState snapshots every broker's externally observable book: hold
// amounts (sorted) and total reserved.
func bookState(brokers map[string]*broker.Local) map[string][]float64 {
	out := make(map[string][]float64)
	for r, b := range brokers {
		amounts := b.HoldAmounts()
		sort.Float64s(amounts)
		out[r] = append(amounts, b.Reserved())
	}
	return out
}

// TestCrashRestartConvergesToPreCrashBooks is the tentpole acceptance:
// a host killed after commit and recovered from the WAL converges to
// book state identical to the pre-crash books; surviving sessions keep
// heartbeating and release cleanly, leaking and resurrecting nothing.
func TestCrashRestartConvergesToPreCrashBooks(t *testing.T) {
	rt, clock, brokers := durableWorld(t, t.TempDir(), 50)
	rt.Start()
	s1 := establishDurable(t, rt)
	s2 := establishDurable(t, rt)
	if err := s2.Release(); err != nil {
		t.Fatal(err)
	}
	before := bookState(brokers)

	for _, h := range []topo.HostID{"X", "Y"} {
		if err := rt.CrashRestart(h); err != nil {
			t.Fatalf("CrashRestart(%s): %v", h, err)
		}
	}
	if got := bookState(brokers); !reflect.DeepEqual(got, before) {
		t.Fatalf("books diverged after crash/restart:\n got %v\nwant %v", got, before)
	}

	// The surviving session's handle still works against the recovered
	// book: heartbeats renew the exact restored holds.
	clock.Advance(10)
	if err := s1.Heartbeat(); err != nil {
		t.Fatalf("heartbeat after restart: %v", err)
	}
	// New admissions land on the recovered books without ID collisions.
	s3 := establishDurable(t, rt)
	if err := s3.Release(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Release(); err != nil {
		t.Fatal(err)
	}
	for r, b := range brokers {
		if b.Reservations() != 0 || b.Reserved() != 0 {
			t.Errorf("%s leaked: %d holds, %g reserved", r, b.Reservations(), b.Reserved())
		}
	}
}

// TestRecoverColdStart is the lease-across-downtime regression: a fresh
// process recovering the WAL rebuilds exactly the committed pre-crash
// shape, sweeps leases that lapsed while down exactly once before any
// admission, and the recovered book drains to empty — no resurrected
// and no double-released holds.
func TestRecoverColdStart(t *testing.T) {
	dir := t.TempDir()

	// First process: two sessions; s1 heartbeats (lease to t=15), s2
	// does not (lease dies at t=10); crash at t=6.
	rt1, c1, _ := durableWorld(t, dir, 10)
	rt1.Start()
	s1 := establishDurable(t, rt1)
	s2 := establishDurable(t, rt1)
	c1.Set(5)
	if err := s1.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	want := make(map[string]float64)
	holds := make(map[string]int)
	for _, ex := range s1.HoldExports() {
		want[ex.Resource] += ex.Amount
		holds[ex.Resource]++
	}
	if len(want) == 0 {
		t.Fatal("s1 exported no holds")
	}
	_ = s2
	rt1.Stop()
	if err := rt1.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Second process, t=12: s2's lease lapsed during downtime.
	rt2, c2, brokers2 := durableWorld(t, dir, 10)
	c2.Set(12)
	reg := obs.New()
	rt2.InstrumentWAL(obs.NewWALMetrics(reg))
	if err := rt2.Recover(c2.Now()); err != nil {
		t.Fatal(err)
	}
	rt2.Start()

	for r, b := range brokers2 {
		if got := b.Reserved(); got != want[r] {
			t.Errorf("%s reserved %g after recovery, want %g (s1 only)", r, got, want[r])
		}
		if got := b.Reservations(); got != holds[r] {
			t.Errorf("%s has %d holds, want %d", r, got, holds[r])
		}
	}
	swept := reg.Counter(obs.MetricRecoveryLeasesSwept, "").Value()
	if swept == 0 {
		t.Error("lapsed leases not counted as swept")
	}

	// The sweep ran exactly once: nothing further lapses before s1's
	// lease expiry, and s2's holds do not come back.
	for _, b := range brokers2 {
		if n := b.ExpireLeases(14); n != 0 {
			t.Errorf("%s swept %d extra holds", b.Resource(), n)
		}
	}
	// Drain: s1's restored lease expires on schedule, emptying every
	// book — the recovered state drains to the pre-crash committed
	// shape with no resurrected or double-released holds.
	for _, b := range brokers2 {
		b.ExpireLeases(30)
	}
	for r, b := range brokers2 {
		if b.Reservations() != 0 || b.Reserved() != 0 {
			t.Errorf("%s did not drain: %d holds, %g reserved", r, b.Reservations(), b.Reserved())
		}
	}
}

// TestRecoverAfterCheckpoint proves checkpoint compaction preserves the
// recovered shape: snapshot segments replay like the history they
// replaced.
func TestRecoverAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	rt1, _, brokers1 := durableWorld(t, dir, 50)
	rt1.Start()
	s1 := establishDurable(t, rt1)
	s2 := establishDurable(t, rt1)
	if err := s2.Release(); err != nil {
		t.Fatal(err)
	}
	_ = s1
	before := bookState(brokers1)
	rt1.Stop()
	if err := rt1.CheckpointWAL(); err != nil {
		t.Fatal(err)
	}
	if err := rt1.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	rt2, _, brokers2 := durableWorld(t, dir, 50)
	if err := rt2.Recover(0); err != nil {
		t.Fatal(err)
	}
	if got := bookState(brokers2); !reflect.DeepEqual(got, before) {
		t.Fatalf("post-checkpoint recovery differs:\n got %v\nwant %v", got, before)
	}
}

// prepareOn plants a raw prepare on host Y over the fabric, simulating
// a coordinator that died before deciding.
func prepareOn(t *testing.T, rt *Runtime, id string, amount float64, expiry broker.Time) {
	t.Helper()
	req := prepareRequest{id: id, expiry: expiry, req: qos.ResourceVector{"cpu@Y": amount}}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := rt.Transport().Call(ctx, "test", transport.Addr("Y"), msgPrepare, req)
	if err != nil {
		t.Fatal(err)
	}
	if rep := resp.(prepareReply); rep.err != nil {
		t.Fatal(rep.err)
	}
}

func commitOn(t *testing.T, rt *Runtime, id string, expiry broker.Time) error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := rt.Transport().Call(ctx, "test", transport.Addr("Y"), msgCommit, commitRequest{id: id, expiry: expiry})
	if err != nil {
		t.Fatal(err)
	}
	return resp.(commitReply).err
}

// TestCrashBetweenPrepareAndCommit pins the in-doubt reconciliation
// protocol: a participant crashing between prepare and commit recovers
// the prepare from the WAL and resolves it against the coordinator's
// outcome table — abort (released, presumed abort) when no decision was
// journaled, commit (lease re-armed) when one was. Duplicate commits
// after recovery still answer idempotently, and gcPending never evicts
// an entry WAL replay re-created while it is unresolved.
func TestCrashBetweenPrepareAndCommit(t *testing.T) {
	rt, clock, brokers := durableWorld(t, t.TempDir(), 50)
	rt.Start()
	expiry := clock.Now() + 50

	// Undecided: coordinator X journaled no decide record.
	prepareOn(t, rt, "X#100", 7, expiry)
	// Decided: the decide record hit the log before the crash.
	prepareOn(t, rt, "X#101", 11, expiry)
	rt.recordDecide("X", "X#101", expiry)
	// Unresolvable: coordinator host Z does not exist; the prepare must
	// stay pending (and leased) rather than leak or be evicted.
	prepareOn(t, rt, "Z#102", 3, expiry)

	if err := rt.CrashRestart("Y"); err != nil {
		t.Fatal(err)
	}

	// Presumed abort released the undecided holds; the decided ones
	// survived with their lease; the unresolved ones survive too, kept
	// reclaimable by their restored lease.
	if got := brokers["cpu@Y"].Reserved(); got != 11+3 {
		t.Fatalf("cpu@Y reserved %g after recovery, want 14", got)
	}

	// Duplicate commit replay: the decided prepare answers idempotently,
	// the aborted one refuses.
	if err := commitOn(t, rt, "X#101", expiry); err != nil {
		t.Fatalf("duplicate commit of decided prepare: %v", err)
	}
	if err := commitOn(t, rt, "X#100", expiry); err == nil {
		t.Fatal("commit of presumed-aborted prepare succeeded")
	}

	// gcPending pressure: churn far past the GC bound with resolved
	// tombstones; the unresolved replayed entry must survive.
	fabric := rt.Transport()
	for i := 0; i < 3*maxPendingResolved; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if _, err := fabric.Call(ctx, "test", transport.Addr("Y"), msgAbort, abortRequest{id: fmt.Sprintf("X#gc%d", i)}); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
	}
	rt.Stop()
	p, err := rt.proxyFor("cpu@Y")
	if err != nil {
		t.Fatal(err)
	}
	st, ok := p.pending["Z#102"]
	if !ok {
		t.Fatal("gcPending evicted the unresolved replayed prepare")
	}
	if st.resolved() {
		t.Fatal("unreachable coordinator's prepare was resolved")
	}
	// And it still cannot leak: the restored lease reclaims it.
	if n := brokers["cpu@Y"].ExpireLeases(expiry + 1); n == 0 {
		t.Fatal("unresolved prepare not reclaimable by lease sweep")
	}
}

// TestRenegotiateCrashRecovery pins renegotiation against the WAL: a
// crash between delta-prepare and commit reconciles the session to
// exactly one of its two levels with the books matching that level.
// The undecided half (coordinator died before journaling a decision)
// lands on the OLD level by presumed abort; a decided upgrade and a
// journaled downgrade shrink both replay to exactly the NEW level.
func TestRenegotiateCrashRecovery(t *testing.T) {
	rt, clock, brokers := durableWorld(t, t.TempDir(), 50)
	rt.Start()
	service, binding := pipelineService(t)
	s, err := rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: core.AtLevel{Level: "ok"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.CurrentPlan().EndToEnd.Name; got != "ok" {
		t.Fatalf("established at %s, want ok", got)
	}
	ctx := context.Background()
	auditAndHeartbeat := func(when, level string) {
		t.Helper()
		if got := s.CurrentPlan().EndToEnd.Name; got != level {
			t.Fatalf("%s: session at level %s, want %s", when, got, level)
		}
		for _, msg := range rt.AuditSessions(1e-9) {
			t.Errorf("%s: audit: %s", when, msg)
		}
		if err := s.Heartbeat(); err != nil {
			t.Fatalf("%s: heartbeat: %v", when, err)
		}
	}

	// Crash between delta-prepare and commit: the upgrade's delta was
	// prepared on Y but the coordinator journaled no decision. Recovery
	// resolves it by presumed abort — the session reconciles to exactly
	// the old level, the prepared delta vanishes from the books.
	before := bookState(brokers)
	prepareOn(t, rt, "X#900", 12, clock.Now()+50)
	if err := rt.CrashRestart("Y"); err != nil {
		t.Fatal(err)
	}
	if got := bookState(brokers); !reflect.DeepEqual(got, before) {
		t.Fatalf("in-doubt delta survived recovery:\n got %v\nwant %v", got, before)
	}
	auditAndHeartbeat("after in-doubt crash", "ok")

	// Decided upgrade: the delta committed (and was journaled) before
	// the crash, so recovery replays the session at exactly the new
	// level on every host.
	if err := rt.Renegotiate(ctx, s, "best"); err != nil {
		t.Fatalf("upgrade: %v", err)
	}
	upgraded := bookState(brokers)
	for _, h := range []topo.HostID{"X", "Y"} {
		if err := rt.CrashRestart(h); err != nil {
			t.Fatalf("CrashRestart(%s): %v", h, err)
		}
	}
	if got := bookState(brokers); !reflect.DeepEqual(got, upgraded) {
		t.Fatalf("committed upgrade diverged after recovery:\n got %v\nwant %v", got, upgraded)
	}
	auditAndHeartbeat("after committed-upgrade crash", "best")

	// Downgrade: the shrink is journaled too — the shrunk shape, not the
	// pre-downgrade holds, is what replays.
	if err := rt.Renegotiate(ctx, s, "ok"); err != nil {
		t.Fatalf("downgrade: %v", err)
	}
	shrunk := bookState(brokers)
	for _, h := range []topo.HostID{"X", "Y"} {
		if err := rt.CrashRestart(h); err != nil {
			t.Fatalf("CrashRestart(%s): %v", h, err)
		}
	}
	if got := bookState(brokers); !reflect.DeepEqual(got, shrunk) {
		t.Fatalf("journaled downgrade diverged after recovery:\n got %v\nwant %v", got, shrunk)
	}
	auditAndHeartbeat("after downgrade crash", "ok")

	if err := s.Release(); err != nil {
		t.Fatal(err)
	}
	for r, b := range brokers {
		if b.Reservations() != 0 || b.Reserved() != 0 {
			t.Errorf("%s leaked: %d holds, %g reserved", r, b.Reservations(), b.Reserved())
		}
	}
}

// TestWALDisabledPaths pins the guard rails of the durability surface.
func TestWALDisabledPaths(t *testing.T) {
	rt, _, _ := twoHostWorld(t)
	if err := rt.Recover(0); err == nil {
		t.Error("Recover without WAL succeeded")
	}
	if err := rt.CrashRestart("X"); err == nil {
		t.Error("CrashRestart without WAL succeeded")
	}
	if err := rt.EnableWAL(wal.Options{Dir: t.TempDir()}); err == nil {
		t.Error("EnableWAL after Start succeeded")
	}
	if err := rt.CloseWAL(); err != nil {
		t.Error(err)
	}
}
