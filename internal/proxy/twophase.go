package proxy

// Phase 3 as an idempotent two-phase commit over the transport fabric.
//
// The validate-at-commit protocol of PR 2 re-validates a plan against
// every broker's current availability before creating any hold. Under an
// in-process runtime that is a single atomic call; under a fallible
// transport it must be a distributed protocol. The commit therefore runs
// as a two-phase commit coordinated by the main QoSProxy:
//
//   prepare  — each participating proxy runs broker.ReserveAtomic over
//              its host's share of the plan's requirement: validate
//              against current availability under the package lock
//              order, create the holds all-or-nothing, and (when the
//              runtime leases) arm a prepare lease so an orphaned
//              prepare is reclaimed by the ordinary lease sweep.
//   commit   — once every participant prepared, ownership of the holds
//              transfers to the session; a leased prepare is re-armed as
//              the session lease (heartbeats keep it alive thereafter).
//   abort    — on any prepare refusal, transport failure, or commit
//              failure, the coordinator aborts every participant;
//              aborting a committed prepare rolls its holds back.
//
// Idempotency: every attempt carries a unique request ID, and each
// participant keeps a bounded per-ID state table. A duplicated or
// retried prepare/commit/abort replays the recorded outcome instead of
// re-executing, so the duplication knob of the fabric (or a retrying
// coordinator) can never double-reserve, double-release, or shorten a
// session lease. An abort for an ID never seen leaves a tombstone, so a
// delayed prepare landing after its abort is refused rather than
// stranding holds.
//
// Per-host atomicity is ReserveAtomic's; cross-host atomicity is the
// coordinator's abort-all. The failure window — a coordinator dying
// between prepare and commit/abort, or an abort message lost to the
// network — is covered by the prepare lease: the sweep reclaims the
// holds after the TTL. Without leasing (a perfect fabric, the default)
// no message is ever lost, so every prepare is resolved synchronously.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"qosres/internal/broker"
	"qosres/internal/obs"
	"qosres/internal/qos"
	"qosres/internal/topo"
	"qosres/internal/transport"
	"qosres/internal/wal"
)

// abortTimeout bounds the detached abort fan-out after a failed commit
// attempt: best-effort cleanup must not outlive the caller's patience
// (lost aborts are reclaimed by the lease sweep anyway).
const abortTimeout = 250 * time.Millisecond

// prepareRequest asks a participant to validate-and-hold its share of a
// plan. Expiry, when positive, leases the prepared holds until the
// coordinator resolves them.
type prepareRequest struct {
	id     string
	req    qos.ResourceVector
	expiry broker.Time
}

type prepareReply struct {
	res *broker.MultiReservation
	err error
}

// commitRequest resolves a prepare: the holds become the session's.
// Expiry, when positive, re-arms them as the session lease; zero makes
// them permanent.
type commitRequest struct {
	id     string
	expiry broker.Time
}

type commitReply struct {
	err error
}

// abortRequest rolls a prepare back (committed or not).
type abortRequest struct {
	id string
}

type abortReply struct{}

// prepState is one entry of a participant's idempotency table.
type prepState struct {
	res       *broker.MultiReservation
	prepErr   error
	committed bool
	aborted   bool
}

// resolved reports whether the entry needs no further coordinator
// action (GC eligibility).
func (st *prepState) resolved() bool {
	return st.prepErr != nil || st.committed || st.aborted
}

// maxPendingResolved bounds the resolved tail of the idempotency table;
// older resolved entries are forgotten. A duplicate arriving after its
// entry was forgotten re-executes — harmless for commit/abort (the
// reply reports an unknown ID) and covered by the prepare lease for a
// re-executed prepare.
const maxPendingResolved = 1024

// gcPending prunes the oldest resolved entries beyond the bound. Runs
// on the serve goroutine. The sweep is amortized: it triggers only once
// the table doubles past the bound, so each protocol message pays O(1)
// on average instead of rescanning ~maxPendingResolved entries per
// message — resolved entries are kept at least as long as a per-message
// sweep would keep them, just up to twice as many at peak.
func (p *QoSProxy) gcPending() {
	if len(p.order) <= 2*maxPendingResolved {
		return
	}
	keep := p.order[:0]
	excess := len(p.order) - maxPendingResolved
	for _, id := range p.order {
		st, ok := p.pending[id]
		if !ok {
			continue
		}
		if excess > 0 && st.resolved() {
			delete(p.pending, id)
			excess--
			continue
		}
		keep = append(keep, id)
	}
	p.order = keep
}

// errUnknownPrepare reports a commit or abort for an ID the participant
// has no (live) prepare for — lost to the network, expired and swept,
// or already forgotten.
var errUnknownPrepare = errors.New("proxy: unknown prepare ID")

// ErrAborted reports a commit that lost its race against an abort of
// the same prepare. Under crash/restart injection this is the expected
// outcome of the recovery reconciliation window: a participant that
// replayed an undecided prepare asks its coordinator, presumes abort if
// the coordinator had not yet decided, and then refuses the (late)
// commit — the coordinator rolls back the other participants and the
// admission fails cleanly instead of half-committing.
var ErrAborted = errors.New("proxy: prepare aborted")

// handlePrepare runs on the participant's serve goroutine.
func (p *QoSProxy) handlePrepare(req prepareRequest) prepareReply {
	if st, ok := p.pending[req.id]; ok {
		// Duplicate (or post-abort straggler): replay the recorded
		// outcome; never reserve twice.
		if st.aborted {
			return prepareReply{err: fmt.Errorf("proxy %s: prepare %s already aborted", p.host, req.id)}
		}
		return prepareReply{res: st.res, err: st.prepErr}
	}
	resolve := func(r string) (broker.Broker, bool) {
		b, ok := p.brokers[r]
		return b, ok
	}
	res, err := broker.ReserveAtomic(p.clock.Now(), resolve, req.req)
	st := &prepState{res: res, prepErr: err}
	if err == nil && req.expiry > 0 {
		if lerr := res.SetLease(req.expiry); lerr != nil {
			// A broker of the share does not support leasing; refuse the
			// prepare rather than hold unreclaimable capacity.
			_ = res.Release(p.clock.Now())
			st = &prepState{prepErr: lerr}
		}
	}
	p.pending[req.id] = st
	p.order = append(p.order, req.id)
	p.gcPending()
	if st.prepErr == nil {
		// Journal the holds before the reply leaves the host: a crash
		// after this point recovers the prepare; a crash before it loses
		// the reply too, so the coordinator aborts either way.
		p.logRecord(wal.Record{Type: wal.TypePrepare, ID: req.id,
			Expiry: float64(req.expiry), Parts: partsFromReservation(st.res)})
	}
	return prepareReply{res: st.res, err: st.prepErr}
}

// handleCommit runs on the participant's serve goroutine.
func (p *QoSProxy) handleCommit(req commitRequest) commitReply {
	st, ok := p.pending[req.id]
	if ok && st.aborted {
		// Aborted beats unknown: an abort (or recovery's presumed abort)
		// clears res, and the late commit must learn the prepare was
		// aborted, not that it never existed.
		return commitReply{err: fmt.Errorf("proxy %s: commit %s: %w", p.host, req.id, ErrAborted)}
	}
	if !ok || st.res == nil || st.prepErr != nil {
		return commitReply{err: fmt.Errorf("proxy %s: commit %s: %w", p.host, req.id, errUnknownPrepare)}
	}
	if st.committed {
		// Duplicate commit: the holds are the session's now — its
		// heartbeats may have extended the lease past req.expiry, so a
		// replay must not touch it.
		return commitReply{}
	}
	// The prepare lease may have expired and been swept between prepare
	// and commit; re-arming it then fails, and the coordinator must
	// treat the share as lost.
	if err := st.res.SetLease(req.expiry); err != nil {
		st.aborted = true
		st.res = nil
		return commitReply{err: fmt.Errorf("proxy %s: commit %s: %w", p.host, req.id, err)}
	}
	st.committed = true
	p.logRecord(wal.Record{Type: wal.TypeCommit, ID: req.id, Expiry: float64(req.expiry)})
	return commitReply{}
}

// handleAbort runs on the participant's serve goroutine. Aborting is
// idempotent and total: unknown IDs leave a tombstone (so a delayed
// prepare cannot land after its abort), committed prepares roll back.
func (p *QoSProxy) handleAbort(req abortRequest) abortReply {
	st, ok := p.pending[req.id]
	if !ok {
		p.pending[req.id] = &prepState{aborted: true}
		p.order = append(p.order, req.id)
		p.gcPending()
		p.logRecord(wal.Record{Type: wal.TypeAbort, ID: req.id})
		return abortReply{}
	}
	if st.aborted {
		return abortReply{}
	}
	st.aborted = true
	st.committed = false
	if st.res != nil {
		// Release tolerates parts already reclaimed by a lease sweep.
		_ = st.res.Release(p.clock.Now())
		st.res = nil
	}
	p.logRecord(wal.Record{Type: wal.TypeAbort, ID: req.id})
	return abortReply{}
}

// reservation abstracts what a session holds: a single MultiReservation
// (in-process commit) or the per-host shares of a two-phase commit.
type reservation interface {
	Release(now broker.Time) error
	SetLease(expiry broker.Time) error
	Touches() []string
}

// reservationSet is the coordinator's handle on a committed plan: one
// MultiReservation per participating host.
type reservationSet struct {
	parts []*broker.MultiReservation
}

// Release releases every share; the first error wins, but every share
// is attempted.
func (s *reservationSet) Release(now broker.Time) error {
	var firstErr error
	for _, p := range s.parts {
		if err := p.Release(now); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SetLease arms every share's lease; the first error aborts (Heartbeat
// interprets ErrUnknownReservation as lease loss).
func (s *reservationSet) SetLease(expiry broker.Time) error {
	for _, p := range s.parts {
		if err := p.SetLease(expiry); err != nil {
			return err
		}
	}
	return nil
}

// Touches returns the union of the shares' touch sets.
func (s *reservationSet) Touches() []string {
	var out []string
	for _, p := range s.parts {
		out = append(out, p.Touches()...)
	}
	return out
}

// splitByHost partitions a requirement vector into per-owning-host
// shares.
func (rt *Runtime) splitByHost(req qos.ResourceVector) (map[topo.HostID]qos.ResourceVector, error) {
	shares := make(map[topo.HostID]qos.ResourceVector)
	for _, r := range req.Names() {
		if req[r] == 0 {
			continue
		}
		host, err := rt.hostFor(r)
		if err != nil {
			return nil, err
		}
		if shares[host] == nil {
			shares[host] = make(qos.ResourceVector)
		}
		shares[host][r] = req[r]
	}
	return shares, nil
}

// reqID mints a unique two-phase-commit request ID.
func (rt *Runtime) reqID(mainHost topo.HostID) string {
	rt.mu.Lock()
	rt.nextReq++
	n := rt.nextReq
	rt.mu.Unlock()
	return fmt.Sprintf("%s#%d", mainHost, n)
}

// commitPlan is the coordinator: it runs the idempotent two-phase
// commit of a plan's requirement from the main proxy. On success the
// returned reservation owns every created hold. On any failure every
// participant is aborted (best effort — a lost abort is reclaimed by
// the lease sweep) and no capacity is retained. A refusal because some
// share no longer fits current availability is broker.ErrInsufficient
// (retryable staleness); everything else is terminal for this attempt.
func (rt *Runtime) commitPlan(ctx context.Context, mainHost topo.HostID, req qos.ResourceVector) (reservation, error) {
	shares, err := rt.splitByHost(req)
	if err != nil {
		return nil, err
	}
	if len(shares) == 0 {
		return &reservationSet{}, nil
	}
	fabric := rt.Transport()
	from := transport.Addr(mainHost)
	id := rt.reqID(mainHost)
	var expiry broker.Time
	if ttl := rt.leaseTTLNow(); ttl > 0 {
		expiry = rt.clock.Now() + ttl
	}

	type hostResult struct {
		host topo.HostID
		res  *broker.MultiReservation
		err  error
	}
	call := func(host topo.HostID, kind string, payload interface{}) (interface{}, error) {
		return fabric.Call(ctx, from, transport.Addr(host), kind, payload)
	}
	abortAll := func() {
		// Detached context: cleanup must proceed even when the caller's
		// deadline already expired, but stay bounded. The caller's trace
		// span carries over so abort calls stay inside the trace tree.
		actx, cancel := context.WithTimeout(context.Background(), abortTimeout)
		defer cancel()
		actx = obs.ContextWithSpan(actx, obs.SpanFromContext(ctx))
		var wg sync.WaitGroup
		for host := range shares {
			wg.Add(1)
			go func(host topo.HostID) {
				defer wg.Done()
				_, _ = fabric.Call(actx, from, transport.Addr(host), msgAbort, abortRequest{id: id})
			}(host)
		}
		wg.Wait()
	}

	// Prepare fan-out: every participating proxy validates and holds its
	// share concurrently.
	results := make(chan hostResult, len(shares))
	for host, share := range shares {
		go func(host topo.HostID, share qos.ResourceVector) {
			resp, err := call(host, msgPrepare, prepareRequest{id: id, req: share, expiry: expiry})
			if err != nil {
				results <- hostResult{host: host, err: err}
				return
			}
			rep, ok := resp.(prepareReply)
			if !ok {
				results <- hostResult{host: host, err: fmt.Errorf("proxy: unexpected prepare reply %T", resp)}
				return
			}
			results <- hostResult{host: host, res: rep.res, err: rep.err}
		}(host, share)
	}
	prepared := make(map[topo.HostID]*broker.MultiReservation, len(shares))
	var refusal, failure error
	for range shares {
		r := <-results
		switch {
		case r.err == nil:
			prepared[r.host] = r.res
		case errors.Is(r.err, broker.ErrInsufficient):
			if refusal == nil {
				refusal = r.err
			}
		default:
			if failure == nil {
				failure = r.err
			}
		}
	}
	if refusal != nil || failure != nil {
		abortAll()
		if refusal != nil {
			return nil, refusal
		}
		return nil, failure
	}

	// Commit point: journal the decision before any participant learns
	// of it — recovery presumes abort for a prepare with no decide
	// record, so the fan-out below must never outrun the log.
	rt.recordDecide(mainHost, id, expiry)

	// Commit fan-out: transfer ownership of every prepared share.
	commits := make(chan error, len(shares))
	for host := range shares {
		go func(host topo.HostID) {
			resp, err := call(host, msgCommit, commitRequest{id: id, expiry: expiry})
			if err != nil {
				commits <- err
				return
			}
			rep, ok := resp.(commitReply)
			if !ok {
				commits <- fmt.Errorf("proxy: unexpected commit reply %T", resp)
				return
			}
			commits <- rep.err
		}(host)
	}
	var commitErr error
	for range shares {
		if err := <-commits; err != nil && commitErr == nil {
			commitErr = err
		}
	}
	if commitErr != nil {
		// Partial commit: roll everything back. Aborting a committed
		// share releases it; a share whose commit-ack merely got lost is
		// released the same way (the session never existed).
		abortAll()
		return nil, commitErr
	}
	// Parts and hosts are emitted in the same (sorted) order so the
	// journaled wrapper can attribute each share to its host — the
	// per-host shrink records of a mid-session downgrade depend on it.
	hosts := hostOrder(prepared)
	parts := make([]*broker.MultiReservation, len(hosts))
	for i, host := range hosts {
		parts[i] = prepared[host]
	}
	return rt.journal(&reservationSet{parts: parts}, id, hosts), nil
}
