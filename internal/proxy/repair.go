package proxy

// Session repair: when a fault (injected or observed) invalidates live
// reservations, the runtime walks its session registry and, for every
// session holding capacity on an affected resource, runs the repair
// protocol:
//
//  1. release the session's surviving holds all-or-nothing — a repair
//     must never leave a half-torn-down reservation behind;
//  2. re-run the three-phase admission against a fresh snapshot with
//     the session's own planner, aiming at the same target QoS;
//  3. if that fails (or lands below the original level), retry once
//     with the tradeoff planner, letting the α-driven policy of
//     section 4.3.1 trade QoS level for admission success;
//  4. only when even the downgrade finds no feasible plan is the
//     session terminated.
//
// A repair is a forced renegotiation: because the fault invalidated the
// old holds, the whole target requirement is re-reserved (the "delta"
// is everything) and the result is installed into the session through
// the same installLocked path Runtime.Renegotiate uses, under the same
// session lock.
//
// The outcome taxonomy matches the repair counters: Repaired (same or
// better end-to-end QoS than before the fault), Degraded (re-admitted
// at a lower level), Failed (terminated).

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"qosres/internal/core"
	"qosres/internal/obs"
)

// RepairOutcome classifies what the repair protocol did to one session.
type RepairOutcome int

const (
	// RepairUnaffected: the session held nothing on the failed
	// resources; it was left alone.
	RepairUnaffected RepairOutcome = iota
	// RepairRepaired: re-admitted at the same or a better QoS level.
	RepairRepaired
	// RepairDegraded: re-admitted at a lower QoS level.
	RepairDegraded
	// RepairFailed: no feasible plan even after the tradeoff downgrade;
	// the session was terminated and its surviving holds released.
	RepairFailed
)

// String renders the outcome for logs and the simulation summary.
func (o RepairOutcome) String() string {
	switch o {
	case RepairUnaffected:
		return "unaffected"
	case RepairRepaired:
		return "repaired"
	case RepairDegraded:
		return "degraded"
	case RepairFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// RepairReport summarizes one RepairAffected sweep.
type RepairReport struct {
	// Affected is the number of live sessions holding capacity on at
	// least one of the failed resources.
	Affected int
	// Repaired, Degraded, Failed partition Affected by outcome.
	Repaired int
	Degraded int
	Failed   int
	// Abandoned counts sessions the sweep never examined because its
	// deadline expired first (RepairAffectedContext). Abandoned sessions
	// keep whatever reservation they held; a later sweep — or the lease
	// machinery, if the fault actually cost them capacity — settles them.
	Abandoned int
}

// RepairAffected runs the repair protocol with no deadline — every
// affected session is examined, however long the sweep takes. Prefer
// RepairAffectedContext where a mass failure could make an unbounded
// sweep dangerous.
func (rt *Runtime) RepairAffected(failed []string) RepairReport {
	return rt.RepairAffectedContext(context.Background(), failed)
}

// RepairAffectedContext runs the repair protocol for every live session
// whose reservation holds capacity on any of the given resources
// (matched against the reservation's full touch set, including the
// route links under end-to-end network holds), bounded by ctx. It
// returns the per-outcome tally.
//
// Sessions are repaired sequentially in registration-set order; each
// repair's re-admission sees the capacity its own release just freed,
// mirroring the paper's one-at-a-time session establishment at the
// main QoSProxy. The deadline is checked between sessions (and observed
// inside each repair's re-admission): when it expires, the remaining
// sessions are counted as Abandoned (and under
// qosres_repair_deadline_abandoned_total) and left untouched, so a
// mass-failure sweep degrades to partial repair instead of running
// unbounded.
func (rt *Runtime) RepairAffectedContext(ctx context.Context, failed []string) RepairReport {
	set := make(map[string]bool, len(failed))
	for _, r := range failed {
		set[r] = true
	}
	rt.mu.Lock()
	sessions := make([]*Session, 0, len(rt.sessions))
	for s := range rt.sessions {
		sessions = append(sessions, s)
	}
	rt.mu.Unlock()
	// The registry is a set; iterate deterministically so chaos runs
	// with a fixed seed repair in a stable order.
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].Plan.PathLevels < sessions[j].Plan.PathLevels })

	// Trace root: one trace per sweep; each affected session's repair
	// hangs a child span under it (whose re-admission stages nest in
	// turn). Every exit path terminates the root.
	root := rt.traceRecorder().Root("repair", strings.Join(failed, ","))
	ctx = obs.ContextWithSpan(ctx, root)

	var rep RepairReport
	m := rt.faultMetrics()
	for i, s := range sessions {
		if ctx.Err() != nil {
			n := len(sessions) - i
			rep.Abandoned += n
			m.RepairAbandoned.Add(float64(n))
			root.Event(obs.EventDeadlineExceeded, fmt.Sprintf("%d session(s) abandoned", n))
			break
		}
		switch s.repair(ctx, set) {
		case RepairUnaffected:
		case RepairRepaired:
			rep.Affected++
			rep.Repaired++
			m.Repaired.Inc()
		case RepairDegraded:
			rep.Affected++
			rep.Degraded++
			m.Degraded.Inc()
		case RepairFailed:
			rep.Affected++
			rep.Failed++
			m.RepairFailed.Inc()
		}
	}
	if rep.Abandoned > 0 {
		root.EndStatus("deadline_exceeded")
	} else {
		root.End()
	}
	return rep
}

// repair runs the repair protocol on one session if the failed-resource
// set intersects its touch set. s.mu is held for the whole protocol —
// release, re-admission, state swap — so an owner Release racing the
// repair either runs before it (the session is gone, RepairUnaffected)
// or after it (releasing whichever reservation the repair installed),
// never interleaved with it.
func (s *Session) repair(ctx context.Context, failed map[string]bool) (outcome RepairOutcome) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateActive || s.reservation == nil {
		return RepairUnaffected
	}
	hit := false
	for r := range s.touches {
		if failed[r] {
			hit = true
			break
		}
	}
	if !hit {
		return RepairUnaffected
	}

	rt := s.runtime
	now := rt.clock.Now()
	oldRank := s.plan.Rank

	// One child span per affected session under the sweep's root; the
	// re-admission's stage spans nest under it via the context.
	sp := obs.SpanFromContext(ctx).Child("repair_session", string(s.mainHost))
	ctx = obs.ContextWithSpan(ctx, sp)
	defer func() {
		switch outcome {
		case RepairRepaired:
			sp.End()
		default:
			sp.EndStatus(outcome.String())
		}
	}()

	// Step 1: release the invalidated reservation whole. The brokers
	// keep their book of holds across failures, so the release drains
	// cleanly even on failed resources; a leased part reclaimed by a
	// concurrent sweep is tolerated.
	res := s.reservation
	s.reservation = nil
	s.touches = nil
	_ = res.Release(now)

	// Step 2: re-admit at the same target QoS with the session's own
	// planner against a fresh snapshot.
	plan, newRes, err := rt.admitOnce(ctx, s.mainHost, s.spec)

	// Step 3: on failure, or when the planner's best is now below the
	// original level, let the tradeoff policy look for a downgrade it
	// would accept. (When the session already plans with the tradeoff
	// policy, its own attempt was the downgrade; don't repeat it.)
	if err != nil && ctx.Err() == nil && s.spec.Planner.Name() != (core.Tradeoff{}).Name() {
		spec := s.spec
		spec.Planner = core.Tradeoff{}
		plan, newRes, err = rt.admitOnce(ctx, s.mainHost, spec)
	}
	if err != nil {
		// Step 4: no feasible plan at any level. Terminate: the state
		// flip unregisters the session; the reservation is already gone.
		_ = s.terminateLocked(StateFailed)
		return RepairFailed
	}

	// Install through the same path a renegotiation takes: a repair is a
	// forced renegotiation — the fault already invalidated the holds, so
	// the "delta" is the entire new requirement and there is nothing to
	// shrink. QoS-seconds accrual, touch-set adoption, and leasing (with
	// its terminate-on-failure exit) are one shared code path.
	if err := s.installLocked(rt.clock.Now(), plan, newRes); err != nil {
		return RepairFailed
	}
	s.repairs++
	if plan.Rank >= oldRank {
		return RepairRepaired
	}
	return RepairDegraded
}
