package proxy

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/obs"
	"qosres/internal/topo"
	"qosres/internal/transport"
)

// unreliableWorld is twoHostWorld rebased on a caller-configured fabric.
func unreliableWorld(t *testing.T, opts transport.Options) (*Runtime, *ManualClock, map[string]*broker.Local) {
	t.Helper()
	clock := &ManualClock{}
	rt := NewRuntime(clock)
	if err := rt.SetTransport(transport.New(opts)); err != nil {
		t.Fatal(err)
	}
	brokers := map[string]*broker.Local{}
	for _, h := range []topo.HostID{"X", "Y"} {
		if _, err := rt.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(resource string, cap float64, host topo.HostID) {
		b, err := broker.NewLocal(resource, cap)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Deploy(host, b); err != nil {
			t.Fatal(err)
		}
		brokers[resource] = b
	}
	mk("cpu@X", 100, "X")
	mk("cpu@Y", 100, "Y")
	mk("net:X->Y", 100, "Y")
	rt.Start()
	t.Cleanup(rt.Stop)
	return rt, clock, brokers
}

// stallProxy wedges the named proxy's serve goroutine: it pulls a stall
// off its inbox and blocks until the returned release is closed,
// answering nothing in between. stallProxy returns only once the proxy
// has demonstrably stopped answering.
func stallProxy(t *testing.T, rt *Runtime, host topo.HostID) chan struct{} {
	t.Helper()
	release := make(chan struct{})
	go func() {
		_, _ = rt.Transport().Call(context.Background(), "test-driver", transport.Addr(host), "stall", stallRequest{release: release})
	}()
	// Once a probe times out, the proxy is wedged: the serve loop is
	// blocked on the stall and the availability fast lane drops
	// requests while the wedged flag is up (it would otherwise answer
	// instantly over the perfect fabric). Probes pace themselves so the
	// serve goroutine gets scheduled to dequeue the stall — fast-lane
	// answers no longer queue behind it.
	for i := 0; i < 400; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
		_, err := rt.Transport().Call(ctx, "test-driver", transport.Addr(host), msgAvailability, availabilityRequest{})
		cancel()
		if errors.Is(err, context.DeadlineExceeded) {
			return release
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("proxy %s never stalled", host)
	return release
}

// TestEstablishReturnsByDeadlineWhenProxyStalls is the hang-regression
// test: a participant QoSProxy that accepts protocol messages but never
// answers them (its serve goroutine is wedged) must not hang Establish
// past its deadline — the call degrades or aborts and returns.
func TestEstablishReturnsByDeadlineWhenProxyStalls(t *testing.T) {
	rt, _, _ := unreliableWorld(t, transport.Options{})
	service, binding := pipelineService(t)

	release := stallProxy(t, rt, "Y")
	deadlineCtx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()

	start := time.Now()
	_, err := rt.EstablishContext(deadlineCtx, "X", SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("establish succeeded against a stalled participant")
	}
	// The call must return promptly once the deadline expires, never
	// block on the silent proxy. Generous bound: the assertion catches
	// hangs, not scheduling slop.
	if elapsed > 5*time.Second {
		t.Fatalf("establish blocked %v on a stalled participant", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("unexpected error class: %v", err)
	}

	// Releasing the stall restores service.
	close(release)
	s, err := rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}})
	if err != nil {
		t.Fatalf("establish after unstall: %v", err)
	}
	if err := s.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestEstablishDegradesToCachedReportsUnderPartition pins the phase-1
// degradation ladder: once a host's reports are cached, a partition
// does not exclude it — planning proceeds from the aged cache, and the
// commit's re-validation keeps correctness.
func TestEstablishDegradesToCachedReportsUnderPartition(t *testing.T) {
	rt, _, _ := unreliableWorld(t, transport.Options{})
	service, binding := pipelineService(t)

	// Prime the report cache with one successful admission.
	s, err := rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Release(); err != nil {
		t.Fatal(err)
	}

	// Partition X from Y: phase 1 degrades to the cached reports, but
	// phase 3's prepare cannot reach Y either, so admission times out —
	// without ever hanging.
	rt.Transport().Partition("X", "Y")
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	_, err = rt.EstablishContext(ctx, "X", SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}})
	if err == nil {
		t.Fatal("establish succeeded across a partition")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("partitioned establish error = %v, want deadline expiry", err)
	}

	// Healing restores full service; no residual holds from the aborted
	// attempt may survive.
	rt.Transport().Heal("X", "Y")
	rt.Transport().Settle()
	s, err = rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}})
	if err != nil {
		t.Fatalf("establish after heal: %v", err)
	}
	if err := s.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestRepairAbandonsAtDeadline pins the bounded repair sweep: with the
// deadline already expired, every candidate session is abandoned (left
// untouched, counted under qosres_repair_deadline_abandoned_total)
// instead of repaired.
func TestRepairAbandonsAtDeadline(t *testing.T) {
	rt, _, brokers := twoHostWorld(t)
	reg := obs.New()
	rt.InstrumentFaults(obs.NewFaultMetrics(reg))
	service, binding := pipelineService(t)
	s, err := rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}})
	if err != nil {
		t.Fatal(err)
	}
	reservedBefore := brokers["cpu@Y"].Reserved()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the sweep's deadline has already passed
	rep := rt.RepairAffectedContext(ctx, []string{"cpu@Y"})
	if rep.Abandoned != 1 || rep.Affected != 0 {
		t.Fatalf("report = %+v, want 1 abandoned, 0 affected", rep)
	}
	// The abandoned session keeps its reservation untouched.
	if got := brokers["cpu@Y"].Reserved(); got != reservedBefore {
		t.Fatalf("abandoned session's holds changed: %g -> %g", reservedBefore, got)
	}
	if s.State() != StateActive {
		t.Fatalf("abandoned session state = %v", s.State())
	}
	var counted float64
	for _, c := range reg.Snapshot().Counters {
		if c.Name == obs.MetricRepairAbandoned {
			counted += c.Value
		}
	}
	if counted != 1 {
		t.Fatalf("%s = %g, want 1", obs.MetricRepairAbandoned, counted)
	}

	// An unbounded sweep still examines it.
	if rep := rt.RepairAffected([]string{"cpu@Y"}); rep.Abandoned != 0 || rep.Affected != 1 {
		t.Fatalf("unbounded sweep report = %+v", rep)
	}
	_ = s.Release()
}

// bookOf renders a broker set's reservation books in a canonical form:
// per resource, the reserved total, live hold count, and availability.
func bookOf(brokers map[string]*broker.Local) string {
	var sb strings.Builder
	for _, r := range []string{"cpu@X", "cpu@Y", "net:X->Y"} {
		b := brokers[r]
		fmt.Fprintf(&sb, "%s: reserved=%.6f holds=%d avail=%.6f\n",
			r, b.Reserved(), b.Reservations(), b.Available())
	}
	return sb.String()
}

// TestDuplicatedMessagesCommitExactlyOnce is the idempotence test: a
// fabric that delivers EVERY protocol message (and every reply) twice
// must leave the brokers' books byte-identical to an exactly-once run —
// duplicate prepares must not double-hold, duplicate commits must not
// double-charge, duplicate aborts must not double-release.
func TestDuplicatedMessagesCommitExactlyOnce(t *testing.T) {
	// The basic planner keeps the two runs' plans identical: duplicated
	// availability requests record extra α samples at the brokers, which
	// only the tradeoff policy would observe.
	scenario := func(t *testing.T, opts transport.Options) (string, string) {
		rt, _, brokers := unreliableWorld(t, opts)
		service, binding := pipelineService(t)
		var sessions []*Session
		for i := 0; i < 3; i++ {
			s, err := rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}})
			if err != nil {
				t.Fatalf("establish %d: %v", i, err)
			}
			sessions = append(sessions, s)
		}
		rt.Transport().Settle()
		held := bookOf(brokers)
		for _, s := range sessions {
			if err := s.Release(); err != nil {
				t.Fatal(err)
			}
		}
		rt.Transport().Settle()
		return held, bookOf(brokers)
	}

	exactHeld, exactDrained := scenario(t, transport.Options{})
	dupHeld, dupDrained := scenario(t, transport.Options{
		Defaults: transport.RouteConfig{Dup: 1},
	})
	if exactHeld != dupHeld {
		t.Errorf("held books diverge:\nexactly-once:\n%s\nduplicated:\n%s", exactHeld, dupHeld)
	}
	if exactDrained != dupDrained {
		t.Errorf("drained books diverge:\nexactly-once:\n%s\nduplicated:\n%s", exactDrained, dupDrained)
	}
	if !strings.Contains(dupDrained, "holds=0") {
		t.Errorf("drained duplicated-run book still holds capacity:\n%s", dupDrained)
	}
}

// TestJitteredBackoffDivergesBySeedAndHoldsCap is the full-jitter test:
// two seeds draw different backoff sequences, the same seed replays
// identically, and every draw stays within both the cap and the
// non-jittered exponential envelope.
func TestJitteredBackoffDivergesBySeedAndHoldsCap(t *testing.T) {
	p := AdmitPolicy{MaxRetries: 8, Backoff: time.Millisecond, Jitter: true}
	draw := func(seed int64) []time.Duration {
		src := newLockedRand(seed)
		out := make([]time.Duration, 0, 24)
		for attempt := 1; attempt <= 24; attempt++ {
			out = append(out, p.backoff(attempt, src))
		}
		return out
	}

	a1, a2 := draw(1), draw(1)
	b := draw(2)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a1[i], a2[i])
		}
	}
	diverged := false
	plain := AdmitPolicy{MaxRetries: 8, Backoff: time.Millisecond}
	for i := range a1 {
		if a1[i] != b[i] {
			diverged = true
		}
		envelope := plain.backoff(i+1, nil)
		for _, d := range [2]time.Duration{a1[i], b[i]} {
			if d < 0 || d > envelope || d > maxAdmitBackoff {
				t.Fatalf("draw %d = %v outside [0, min(%v, cap %v)]", i, d, envelope, maxAdmitBackoff)
			}
		}
	}
	if !diverged {
		t.Fatal("seeds 1 and 2 drew identical backoff sequences")
	}
}

// TestMaxInFlightShedsConcurrentAdmissions pins the overload gate: with
// the in-flight bound at 1, a second concurrent Establish is shed with
// transport.ErrOverloaded (and counted), not queued.
func TestMaxInFlightShedsConcurrentAdmissions(t *testing.T) {
	rt, _, _ := unreliableWorld(t, transport.Options{})
	reg := obs.New()
	rt.InstrumentAdmission(obs.NewAdmitMetrics(reg))
	rt.SetMaxInFlight(1)
	service, binding := pipelineService(t)

	// Wedge Y so the first admission parks inside the protocol holding
	// its gate slot.
	release := stallProxy(t, rt, "Y")
	firstDone := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	go func() {
		_, err := rt.EstablishContext(ctx, "X", SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}})
		firstDone <- err
	}()
	// Wait for the first admission to occupy the gate.
	for i := 0; rt.admitGate().InFlight() == 0; i++ {
		if i > 1000 {
			t.Fatal("first admission never took the gate slot")
		}
		time.Sleep(time.Millisecond)
	}

	// The second call must shed immediately while the first is in flight.
	_, err := rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}})
	if !errors.Is(err, transport.ErrOverloaded) {
		t.Fatalf("concurrent admission error = %v, want %v", err, transport.ErrOverloaded)
	}
	close(release)
	<-firstDone

	var shed float64
	for _, c := range reg.Snapshot().Counters {
		if c.Name == obs.MetricAdmissionShed {
			shed += c.Value
		}
	}
	if shed < 1 {
		t.Fatalf("%s = %g, want >= 1", obs.MetricAdmissionShed, shed)
	}

	// With the gate free again, admissions pass.
	s, err := rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}})
	if err != nil {
		t.Fatalf("establish after gate drained: %v", err)
	}
	_ = s.Release()
}
