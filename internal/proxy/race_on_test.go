//go:build race

package proxy

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
