package proxy

import (
	"strings"
	"testing"

	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/svc"
	"qosres/internal/topo"
)

func svcHost(h string) topo.HostID { return topo.HostID(h) }

func newLocalForTest(resource string, capacity float64) (*broker.Local, error) {
	return broker.NewLocal(resource, capacity)
}

// string2Host converts a string placement map into the Skeleton form.
func string2Host(m map[string]string) map[svc.ComponentID]topo.HostID {
	out := make(map[svc.ComponentID]topo.HostID, len(m))
	for c, h := range m {
		out[svc.ComponentID(c)] = topo.HostID(h)
	}
	return out
}

func distWorldUnstarted(t *testing.T) (*Runtime, svc.Binding, map[string]*svc.Component) {
	t.Helper()
	clock := &ManualClock{}
	rt := NewRuntime(clock)
	for _, h := range []string{"X", "Y"} {
		if _, err := rt.AddHost(svcHost(h)); err != nil {
			t.Fatal(err)
		}
	}
	service, binding := pipelineService(t)
	comps := map[string]*svc.Component{
		"a": service.Components["a"],
		"b": service.Components["b"],
	}
	// Deploy brokers as in twoHostWorld.
	mk := func(resource string, host string) {
		b, err := newLocalForTest(resource, 100)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Deploy(svcHost(host), b); err != nil {
			t.Fatal(err)
		}
	}
	mk("cpu@X", "X")
	mk("cpu@Y", "Y")
	mk("net:X->Y", "Y")
	return rt, binding, comps
}

func TestEstablishDistributed(t *testing.T) {
	rt, binding, comps := distWorldUnstarted(t)
	if err := rt.StoreComponent("X", "pipe", comps["a"]); err != nil {
		t.Fatal(err)
	}
	if err := rt.StoreComponent("Y", "pipe", comps["b"]); err != nil {
		t.Fatal(err)
	}
	if err := rt.StoreSkeleton("X", Skeleton{
		Name:      "pipe",
		Placement: string2Host(map[string]string{"a": "X", "b": "Y"}),
		Edges:     []svc.Edge{{From: "a", To: "b"}},
		Ranking:   []string{"best", "ok"},
	}); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()

	s, err := rt.EstablishDistributed("X", "pipe", binding, core.Basic{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Plan.EndToEnd.Name != "best" {
		t.Fatalf("end-to-end = %s", s.Plan.EndToEnd.Name)
	}
	if err := s.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestEstablishDistributedMatchesCentralized(t *testing.T) {
	rt, binding, comps := distWorldUnstarted(t)
	if err := rt.StoreComponent("X", "pipe", comps["a"]); err != nil {
		t.Fatal(err)
	}
	if err := rt.StoreComponent("Y", "pipe", comps["b"]); err != nil {
		t.Fatal(err)
	}
	if err := rt.StoreSkeleton("X", Skeleton{
		Name:      "pipe",
		Placement: string2Host(map[string]string{"a": "X", "b": "Y"}),
		Edges:     []svc.Edge{{From: "a", To: "b"}},
		Ranking:   []string{"best", "ok"},
	}); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()

	sd, err := rt.EstablishDistributed("X", "pipe", binding, core.Basic{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sd.Release(); err != nil {
		t.Fatal(err)
	}
	service, _ := pipelineService(t)
	sc, err := rt.Establish("X", SessionSpec{Service: service, Binding: binding, Planner: core.Basic{}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := sc.Release(); err != nil {
			t.Fatal(err)
		}
	}()
	if sd.Plan.EndToEnd.Name != sc.Plan.EndToEnd.Name || sd.Plan.Psi != sc.Plan.Psi {
		t.Fatalf("distributed plan (%s, %v) != centralized (%s, %v)",
			sd.Plan.EndToEnd.Name, sd.Plan.Psi, sc.Plan.EndToEnd.Name, sc.Plan.Psi)
	}
}

func TestDistributedStorageValidation(t *testing.T) {
	rt, _, comps := distWorldUnstarted(t)
	if err := rt.StoreComponent("X", "pipe", nil); err == nil {
		t.Fatal("nil component accepted")
	}
	if err := rt.StoreComponent("ghost", "pipe", comps["a"]); err == nil {
		t.Fatal("unknown host accepted")
	}
	if err := rt.StoreComponent("X", "pipe", comps["a"]); err != nil {
		t.Fatal(err)
	}
	if err := rt.StoreComponent("X", "pipe", comps["a"]); err == nil {
		t.Fatal("duplicate component accepted")
	}
	if err := rt.StoreSkeleton("X", Skeleton{}); err == nil {
		t.Fatal("empty skeleton accepted")
	}
	if err := rt.StoreSkeleton("X", Skeleton{
		Name:      "pipe",
		Placement: string2Host(map[string]string{"a": "ghost"}),
	}); err == nil {
		t.Fatal("placement on unknown host accepted")
	}
	sk := Skeleton{
		Name:      "pipe",
		Placement: string2Host(map[string]string{"a": "X"}),
		Ranking:   []string{"best", "ok"},
	}
	if err := rt.StoreSkeleton("X", sk); err != nil {
		t.Fatal(err)
	}
	if err := rt.StoreSkeleton("X", sk); err == nil {
		t.Fatal("duplicate skeleton accepted")
	}
	rt.Start()
	defer rt.Stop()
	if err := rt.StoreComponent("Y", "pipe", comps["b"]); err == nil {
		t.Fatal("StoreComponent after Start accepted")
	}
	if _, err := rt.EstablishDistributed("X", "unknown", nil, core.Basic{}); err == nil {
		t.Fatal("unknown skeleton accepted")
	}
}

func TestEstablishDistributedMissingComponent(t *testing.T) {
	rt, binding, comps := distWorldUnstarted(t)
	// Store only one of the two components.
	if err := rt.StoreComponent("X", "pipe", comps["a"]); err != nil {
		t.Fatal(err)
	}
	if err := rt.StoreSkeleton("X", Skeleton{
		Name:      "pipe",
		Placement: string2Host(map[string]string{"a": "X", "b": "Y"}),
		Edges:     []svc.Edge{{From: "a", To: "b"}},
		Ranking:   []string{"best", "ok"},
	}); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	_, err := rt.EstablishDistributed("X", "pipe", binding, core.Basic{})
	if err == nil || !strings.Contains(err.Error(), "not stored") && !strings.Contains(err.Error(), "no components") {
		t.Fatalf("err = %v", err)
	}
}
