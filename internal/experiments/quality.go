package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/qos"
	"qosres/internal/qrg"
	"qosres/internal/stats"
	"qosres/internal/svc"
)

// HeuristicQualityResult quantifies the two documented limitations of
// the section-4.3.2 two-pass heuristic over randomized fan-out/fan-in
// DAG instances, against the exact embedded-graph enumerator:
//
//   - limitation (1): instances where the enumerator finds a plan but
//     pass II fails (the pass-I-reachable sink admits no embedded
//     graph along the locally resolved choices);
//   - limitation (2): instances solved by both where the heuristic's
//     Ψ_G exceeds the optimum.
type HeuristicQualityResult struct {
	Trials     int
	Infeasible int // neither algorithm finds a plan
	BothSolved int
	// HeuristicOnlyFailures counts limitation (1).
	HeuristicOnlyFailures int
	// PsiGaps counts limitation (2); MeanGap/MaxGap quantify it over
	// the gap instances (absolute Ψ difference).
	PsiGaps int
	MeanGap float64
	MaxGap  float64
	// RankAgreement counts both-solved instances with equal end-to-end
	// rank (always all of them; a counterexample indicates a bug).
	RankAgreement int
}

// HeuristicQuality runs the randomized study with the given number of
// trials (<= 0 means 2000).
func HeuristicQuality(seed int64, trials int) (*HeuristicQualityResult, error) {
	if trials <= 0 {
		trials = 2000
	}
	rng := rand.New(rand.NewSource(seed))
	res := &HeuristicQualityResult{Trials: trials}
	var gapSum float64
	for i := 0; i < trials; i++ {
		service, binding, snap := randomDiamond(rng)
		// The study rides the compiled-template fast lane: identical
		// graphs to qrg.Build (the randomized equivalence tests in
		// internal/core prove it), exercising the production code path.
		tpl, err := qrg.Compile(service, binding)
		if err != nil {
			return nil, err
		}
		g, err := tpl.Instantiate(snap)
		if err != nil {
			return nil, err
		}
		ph, errH := (core.TwoPass{}).Plan(g)
		pe, errE := (core.Exhaustive{}).Plan(g)
		switch {
		case errE != nil && errH != nil:
			res.Infeasible++
		case errE != nil && errH == nil:
			return nil, fmt.Errorf("experiments: heuristic solved an instance the enumerator calls infeasible (trial %d)", i)
		case errE == nil && errH != nil:
			res.HeuristicOnlyFailures++
		default:
			res.BothSolved++
			if ph.Rank == pe.Rank {
				res.RankAgreement++
			}
			if gap := ph.Psi - pe.Psi; gap > 1e-9 {
				res.PsiGaps++
				gapSum += gap
				if gap > res.MaxGap {
					res.MaxGap = gap
				}
			}
		}
	}
	if res.PsiGaps > 0 {
		res.MeanGap = gapSum / float64(res.PsiGaps)
	}
	return res, nil
}

// PrintHeuristicQuality renders the study.
func PrintHeuristicQuality(w io.Writer, r *HeuristicQualityResult) {
	t := &stats.Table{Header: []string{"metric", "value"}}
	t.AddRow("randomized DAG instances", fmt.Sprintf("%d", r.Trials))
	t.AddRow("infeasible (both)", fmt.Sprintf("%d", r.Infeasible))
	t.AddRow("solved by both", fmt.Sprintf("%d", r.BothSolved))
	t.AddRow("limitation 1: heuristic-only failures", fmt.Sprintf("%d (%.1f%% of solvable)",
		r.HeuristicOnlyFailures,
		100*float64(r.HeuristicOnlyFailures)/float64(maxInt(1, r.BothSolved+r.HeuristicOnlyFailures))))
	t.AddRow("limitation 2: Ψ_G above optimum", fmt.Sprintf("%d (%.1f%% of both-solved)",
		r.PsiGaps, 100*float64(r.PsiGaps)/float64(maxInt(1, r.BothSolved))))
	t.AddRow("mean / max Ψ gap", fmt.Sprintf("%.4f / %.4f", r.MeanGap, r.MaxGap))
	t.AddRow("rank agreement", fmt.Sprintf("%d/%d", r.RankAgreement, r.BothSolved))
	fmt.Fprintf(w, "Two-pass heuristic quality vs. exact enumeration (section 4.3.2 limitations)\n%s", t)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// randomDiamond builds a randomized c1 -> c2 -> {c3, c4} -> c5 instance
// (the figure-6 shape) with random requirement values, random missing
// (Qin, Qout) pairs, and random availability.
func randomDiamond(rng *rand.Rand) (*svc.Service, svc.Binding, *broker.Snapshot) {
	lv := func(name string, q float64) svc.Level {
		return svc.Level{Name: name, Vector: qos.MustVector(qos.P("q", q))}
	}
	req := func() qos.ResourceVector { return qos.ResourceVector{"r": 1 + rng.Float64()*99} }
	table := func(ins, outs []svc.Level, p float64) svc.TranslationTable {
		tb := svc.TranslationTable{}
		for _, in := range ins {
			row := map[string]qos.ResourceVector{}
			for _, out := range outs {
				if rng.Float64() < p {
					row[out.Name] = req()
				}
			}
			if len(row) > 0 {
				tb[in.Name] = row
			}
		}
		if len(tb) == 0 {
			tb[ins[0].Name] = map[string]qos.ResourceVector{outs[0].Name: req()}
		}
		return tb
	}

	qa := lv("Qa", 0)
	qb, qc := lv("Qb", 1), lv("Qc", 2)
	qd, qe := lv("Qd", 1), lv("Qe", 2)
	qh, qi := lv("Qh", 10), lv("Qi", 11)
	qj, qk := lv("Qj", 10), lv("Qk", 11)
	qn, qo := lv("Qn", 20), lv("Qo", 21)
	ql, qm := lv("Ql", 10), lv("Qm", 11)
	qp, qq := lv("Qp", 30), lv("Qq", 31)
	qv, qw := lv("Qv", 90), lv("Qw", 91)
	concat := func(name string, a, b svc.Level) svc.Level {
		return svc.Level{Name: name, Vector: qos.ConcatAll(
			[]string{"c3", "c4"}, []qos.Vector{a.Vector, b.Vector})}
	}
	fanIn := []svc.Level{
		concat("F1", qn, qp), concat("F2", qn, qq),
		concat("F3", qo, qp), concat("F4", qo, qq),
	}
	comps := []*svc.Component{
		{ID: "c1", In: []svc.Level{qa}, Out: []svc.Level{qb, qc},
			Translate: table([]svc.Level{qa}, []svc.Level{qb, qc}, 0.9).Func(), Resources: []string{"r"}},
		{ID: "c2", In: []svc.Level{qd, qe}, Out: []svc.Level{qh, qi},
			Translate: table([]svc.Level{qd, qe}, []svc.Level{qh, qi}, 0.8).Func(), Resources: []string{"r"}},
		{ID: "c3", In: []svc.Level{qj, qk}, Out: []svc.Level{qn, qo},
			Translate: table([]svc.Level{qj, qk}, []svc.Level{qn, qo}, 0.8).Func(), Resources: []string{"r"}},
		{ID: "c4", In: []svc.Level{ql, qm}, Out: []svc.Level{qp, qq},
			Translate: table([]svc.Level{ql, qm}, []svc.Level{qp, qq}, 0.8).Func(), Resources: []string{"r"}},
		{ID: "c5", In: fanIn, Out: []svc.Level{qv, qw},
			Translate: table(fanIn, []svc.Level{qv, qw}, 0.7).Func(), Resources: []string{"r"}},
	}
	service := svc.MustService("rand-diamond", comps, []svc.Edge{
		{From: "c1", To: "c2"},
		{From: "c2", To: "c3"},
		{From: "c2", To: "c4"},
		{From: "c3", To: "c5"},
		{From: "c4", To: "c5"},
	}, []string{"Qv", "Qw"})
	binding := svc.Binding{}
	avail := qos.ResourceVector{}
	alpha := map[string]float64{}
	for _, c := range comps {
		res := "r@" + string(c.ID)
		binding[c.ID] = map[string]string{"r": res}
		avail[res] = 30 + rng.Float64()*70
		alpha[res] = 1
	}
	return service, binding, &broker.Snapshot{Avail: avail, Alpha: alpha}
}
