package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"qosres/internal/broker"
	"qosres/internal/obs"
	"qosres/internal/proxy"
	"qosres/internal/sim"
	"qosres/internal/spec"
	"qosres/internal/stats"
	"qosres/internal/topo"
)

// Serving benchmark: the HTTP front-end path behind the BENCH_served.json
// CI artifact. It deploys the same ServedEnv that cmd/qosserved serves,
// exposes the establish/renegotiate/teardown surface on a loopback
// listener, and drives it with open-loop Poisson arrivals — arrivals
// never wait for completions, the load shape that exposes a slow
// admission path. Each established session is renegotiated one level
// down (the delta-reservation path) before teardown, so the bench
// covers the adaptation surface too. Reported: p50/p99 establish
// latency over the wire and sustained established sessions/sec.

// ServeBenchConfig parameterizes the serving benchmark.
type ServeBenchConfig struct {
	// Seed drives the environment build and the arrival process.
	Seed int64
	// Duration is the wall-clock length of the load run.
	Duration time.Duration
	// Rate is the open-loop arrival rate in sessions per second.
	Rate float64
}

// DefaultServeBenchConfig is CI-sized: a few seconds of load at a rate
// that keeps several admissions in flight.
func DefaultServeBenchConfig(seed int64) ServeBenchConfig {
	return ServeBenchConfig{Seed: seed, Duration: 4 * time.Second, Rate: 150}
}

// ServeBenchResult aggregates the serving benchmark.
type ServeBenchResult struct {
	DurationSec float64 `json:"duration_sec"`
	RatePerSec  float64 `json:"offered_rate_per_sec"`
	// Arrivals = Established + Refused + Errors.
	Arrivals    int `json:"arrivals"`
	Established int `json:"established"`
	// Refused counts admissions the server turned down (plan infeasible
	// or commit refused) — an expected outcome of open-loop load.
	Refused int `json:"refused"`
	Errors  int `json:"errors"`
	// Renegotiated counts sessions the bench moved one level down over
	// /renegotiate before tearing them down.
	Renegotiated int `json:"renegotiated"`
	// SessionsPerSec is established sessions over the run duration.
	SessionsPerSec float64 `json:"sessions_per_sec"`
	// Establish latency over the wire (HTTP round trip included).
	EstablishP50Ms float64 `json:"establish_p50_ms"`
	EstablishP99Ms float64 `json:"establish_p99_ms"`
	// Renegotiate latency over the wire.
	RenegotiateP50Ms float64 `json:"renegotiate_p50_ms"`
	RenegotiateP99Ms float64 `json:"renegotiate_p99_ms"`
}

// serveFront is the benchmark's minimal qosserved-shaped front end: the
// same ServedEnv surface behind the same endpoints, without the flags,
// WAL, and signal plumbing of the real daemon.
type serveFront struct {
	env *sim.ServedEnv

	mu       sync.Mutex
	nextID   int
	sessions map[string]*proxy.Session
}

type serveEstablishReq struct {
	MainHost string        `json:"mainHost"`
	Session  *spec.Session `json:"session"`
}

type serveEstablishReply struct {
	ID    string `json:"id"`
	Level string `json:"level"`
	Rank  int    `json:"rank"`
}

func (f *serveFront) establish(w http.ResponseWriter, r *http.Request) {
	var req serveEstablishReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), 10*time.Second)
	defer cancel()
	sess, err := f.env.Establish(ctx, topo.HostID(req.MainHost), req.Session)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	f.mu.Lock()
	f.nextID++
	id := fmt.Sprintf("s-%d", f.nextID)
	f.sessions[id] = sess
	f.mu.Unlock()
	p := sess.CurrentPlan()
	_ = json.NewEncoder(w).Encode(serveEstablishReply{ID: id, Level: p.EndToEnd.Name, Rank: p.Rank})
}

func (f *serveFront) renegotiate(w http.ResponseWriter, r *http.Request) {
	var req spec.RenegotiateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	f.mu.Lock()
	sess := f.sessions[req.Session]
	f.mu.Unlock()
	if sess == nil {
		http.Error(w, "unknown session", http.StatusNotFound)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), 10*time.Second)
	defer cancel()
	if err := f.env.Renegotiate(ctx, sess, req.Level); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	p := sess.CurrentPlan()
	_ = json.NewEncoder(w).Encode(spec.RenegotiateReply{
		Session: req.Session, Level: p.EndToEnd.Name, Rank: p.Rank,
	})
}

func (f *serveFront) teardown(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	f.mu.Lock()
	sess := f.sessions[id]
	delete(f.sessions, id)
	f.mu.Unlock()
	if sess == nil {
		http.Error(w, "unknown session", http.StatusNotFound)
		return
	}
	if err := sess.Release(); err != nil {
		http.Error(w, err.Error(), http.StatusGone)
		return
	}
	_, _ = io.WriteString(w, "released")
}

// percentileMs returns the q-quantile (0..1) of sorted millisecond
// latencies, 0 when empty.
func percentileMs(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// ServeBench runs the serving benchmark.
func ServeBench(cfg ServeBenchConfig) (*ServeBenchResult, error) {
	if cfg.Duration <= 0 || cfg.Rate <= 0 {
		return nil, fmt.Errorf("experiments: servebench needs a positive duration and rate")
	}
	env, err := sim.NewServedEnv(sim.ServedOptions{
		Seed:     cfg.Seed,
		LeaseTTL: broker.Time(60),
		Registry: obs.New(),
	})
	if err != nil {
		return nil, err
	}
	defer env.Close()

	front := &serveFront{env: env, sessions: make(map[string]*proxy.Session)}
	mux := http.NewServeMux()
	mux.HandleFunc("/establish", front.establish)
	mux.HandleFunc("/renegotiate", front.renegotiate)
	mux.HandleFunc("/teardown", front.teardown)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 15 * time.Second}

	var (
		mu          sync.Mutex
		res         ServeBenchResult
		estLat      []float64
		renegLat    []float64
		wg          sync.WaitGroup
		rng         = rand.New(rand.NewSource(cfg.Seed))
		benchStart  = time.Now()
		benchFinish = benchStart.Add(cfg.Duration)
	)
	post := func(path string, body []byte) (*http.Response, []byte, error) {
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		reply, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, reply, err
	}
	drive := func(offer *sim.SampledSession) {
		defer wg.Done()
		body, err := json.Marshal(serveEstablishReq{
			MainHost: string(offer.MainHost),
			Session:  offer.Doc,
		})
		if err != nil {
			mu.Lock()
			res.Errors++
			mu.Unlock()
			return
		}
		t0 := time.Now()
		resp, reply, err := post("/establish", body)
		lat := float64(time.Since(t0).Microseconds()) / 1000
		if err != nil {
			mu.Lock()
			res.Errors++
			mu.Unlock()
			return
		}
		if resp.StatusCode != http.StatusOK {
			mu.Lock()
			res.Refused++
			mu.Unlock()
			return
		}
		var est serveEstablishReply
		if err := json.Unmarshal(reply, &est); err != nil {
			mu.Lock()
			res.Errors++
			mu.Unlock()
			return
		}
		mu.Lock()
		res.Established++
		estLat = append(estLat, lat)
		mu.Unlock()

		// Exercise the delta path: move the session one level down (the
		// ranking is best-first) when a worse level exists.
		for i, level := range offer.Doc.Ranking {
			if level != est.Level || i+1 >= len(offer.Doc.Ranking) {
				continue
			}
			body, err := json.Marshal(spec.RenegotiateRequest{
				Session: est.ID, Level: offer.Doc.Ranking[i+1],
			})
			if err != nil {
				break
			}
			t0 := time.Now()
			resp, _, err := post("/renegotiate", body)
			lat := float64(time.Since(t0).Microseconds()) / 1000
			if err == nil && resp.StatusCode == http.StatusOK {
				mu.Lock()
				res.Renegotiated++
				renegLat = append(renegLat, lat)
				mu.Unlock()
			}
			break
		}
		resp, _, err = post("/teardown?id="+est.ID, nil)
		if err != nil || resp.StatusCode != http.StatusOK {
			mu.Lock()
			res.Errors++
			res.Established-- // count only fully cycled sessions
			mu.Unlock()
		}
	}

	for time.Now().Before(benchFinish) {
		gap := time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second))
		if remain := time.Until(benchFinish); gap > remain {
			break
		}
		time.Sleep(gap)
		offer, err := env.SampleSession()
		if err != nil {
			mu.Lock()
			res.Errors++
			mu.Unlock()
			continue
		}
		mu.Lock()
		res.Arrivals++
		mu.Unlock()
		wg.Add(1)
		go drive(offer)
	}
	wg.Wait()
	elapsed := time.Since(benchStart).Seconds()

	sort.Float64s(estLat)
	sort.Float64s(renegLat)
	res.DurationSec = elapsed
	res.RatePerSec = cfg.Rate
	res.SessionsPerSec = float64(res.Established) / elapsed
	res.EstablishP50Ms = percentileMs(estLat, 0.50)
	res.EstablishP99Ms = percentileMs(estLat, 0.99)
	res.RenegotiateP50Ms = percentileMs(renegLat, 0.50)
	res.RenegotiateP99Ms = percentileMs(renegLat, 0.99)
	return &res, nil
}

// WriteServeBenchJSON writes the result to path (the CI artifact
// BENCH_served.json).
func WriteServeBenchJSON(path string, r *ServeBenchResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PrintServeBench renders the benchmark.
func PrintServeBench(w io.Writer, r *ServeBenchResult) {
	fmt.Fprintf(w, "Serving front end: open-loop Poisson load, %gs at %g arrivals/s\n",
		r.DurationSec, r.RatePerSec)
	t := &stats.Table{Header: []string{"outcome", "count"}}
	t.AddRow("arrivals", fmt.Sprintf("%d", r.Arrivals))
	t.AddRow("established", fmt.Sprintf("%d", r.Established))
	t.AddRow("refused", fmt.Sprintf("%d", r.Refused))
	t.AddRow("renegotiated", fmt.Sprintf("%d", r.Renegotiated))
	t.AddRow("errors", fmt.Sprintf("%d", r.Errors))
	fmt.Fprint(w, t)
	fmt.Fprintf(w, "throughput %.0f sessions/s; establish p50 %.2fms p99 %.2fms; renegotiate p50 %.2fms p99 %.2fms\n",
		r.SessionsPerSec, r.EstablishP50Ms, r.EstablishP99Ms, r.RenegotiateP50Ms, r.RenegotiateP99Ms)
}
