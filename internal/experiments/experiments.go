// Package experiments regenerates every table and figure of the paper's
// performance study (section 5). Each driver returns structured results
// and can render them in the paper's row format; cmd/experiments and the
// repository's benchmark harness are thin wrappers around these drivers.
//
// Per DESIGN.md, the reproduction target is the shape of each result —
// orderings, gaps, crossovers — not the absolute numbers, since the
// figure-10 requirement tables had to be reconstructed (see
// EXPERIMENTS.md for paper-vs-measured values).
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"qosres/internal/broker"
	"qosres/internal/obs"
	"qosres/internal/sim"
	"qosres/internal/stats"
)

// Opts parameterizes an experiment run. The zero value uses the paper's
// parameters; Duration and Seeds may be reduced for quick runs.
type Opts struct {
	// Seed is the base random seed (runs derive per-configuration seeds
	// from it deterministically).
	Seed int64
	// Duration overrides the simulated time (default 10800 TUs).
	Duration broker.Time
	// Scale overrides the workload base scale (default
	// sim.DefaultBaseScale).
	Scale float64
}

func (o Opts) config(alg sim.Algorithm, rate float64, salt int64) sim.Config {
	cfg := sim.DefaultConfig(alg, rate, o.Seed*1000003+salt)
	if o.Duration > 0 {
		cfg.Duration = o.Duration
	}
	if o.Scale > 0 {
		cfg.Workload.BaseScale = o.Scale
	}
	return cfg
}

// Fig11Rates is the arrival-rate sweep of figure 11 (sessions per 60
// TUs, "from 60 sessions per 60 TUs to 240 sessions per 60 TUs").
var Fig11Rates = []float64{60, 90, 120, 150, 180, 210, 240}

// Algorithms is the comparison set of section 5.
var Algorithms = []sim.Algorithm{sim.AlgBasic, sim.AlgTradeoff, sim.AlgRandom}

// Fig11Row is one point of figure 11: a (rate, algorithm) pair with the
// overall reservation success rate (a) and the average end-to-end QoS
// level of successful sessions (b).
type Fig11Row struct {
	Rate        float64
	Algorithm   sim.Algorithm
	SuccessRate float64
	AvgQoS      float64
	// PlanP50 and PlanP99 are the planning-stage (min-max Dijkstra /
	// tradeoff pass) latency percentiles of the run, in seconds.
	PlanP50 float64
	PlanP99 float64
}

// Fig11 regenerates figure 11 (both panels) over the rate sweep.
func Fig11(opts Opts) ([]Fig11Row, error) {
	return fig11With(opts, Fig11Rates, 0)
}

// fig11With is shared by figures 11 and 13 (which is figure 11 under
// compressed requirement diversity).
func fig11With(opts Opts, rates []float64, diversity float64) ([]Fig11Row, error) {
	var rows []Fig11Row
	for _, rate := range rates {
		for _, alg := range Algorithms {
			cfg := opts.config(alg, rate, int64(rate))
			cfg.Workload.DiversityRatio = diversity
			// A per-run registry isolates each (rate, algorithm) point's
			// stage latencies from its neighbours.
			reg := obs.New()
			cfg.Obs = reg
			res, err := sim.Run(cfg)
			if err != nil {
				return nil, err
			}
			stages := obs.NewPlanStages(reg)
			rows = append(rows, Fig11Row{
				Rate:        rate,
				Algorithm:   alg,
				SuccessRate: res.Metrics.Overall.SuccessRate(),
				AvgQoS:      res.Metrics.Overall.AvgQoS(),
				PlanP50:     stages.Plan.Quantile(0.5),
				PlanP99:     stages.Plan.Quantile(0.99),
			})
		}
	}
	return rows, nil
}

// PlotFig11 renders one panel of figure 11 as an ASCII chart: panel "a"
// (success rate) or "b" (average QoS level).
func PlotFig11(w io.Writer, title, panel string, rows []Fig11Row) {
	plot := &stats.Plot{Title: title, YMin: mathNaN(), YMax: mathNaN()}
	for _, alg := range Algorithms {
		s := stats.Series{Name: string(alg), Points: map[float64]float64{}}
		for _, r := range rows {
			if r.Algorithm != alg {
				continue
			}
			if panel == "b" {
				s.Points[r.Rate] = r.AvgQoS
			} else {
				s.Points[r.Rate] = 100 * r.SuccessRate
			}
		}
		plot.Series = append(plot.Series, s)
	}
	fmt.Fprint(w, plot.String())
}

// PlotFig12 renders one panel of figure 12 as an ASCII chart: success
// rate vs. rate, one series per staleness value plus the random
// baseline.
func PlotFig12(w io.Writer, title string, rows []Fig12Row) {
	plot := &stats.Plot{Title: title, YMin: mathNaN(), YMax: mathNaN()}
	for _, e := range Fig12Staleness {
		s := stats.Series{Name: fmt.Sprintf("E=%g", float64(e)), Points: map[float64]float64{}}
		for _, r := range rows {
			if r.Algorithm != sim.AlgRandom && r.StaleE == e {
				s.Points[r.Rate] = 100 * r.SuccessRate
			}
		}
		plot.Series = append(plot.Series, s)
	}
	s := stats.Series{Name: "random", Points: map[float64]float64{}}
	for _, r := range rows {
		if r.Algorithm == sim.AlgRandom {
			s.Points[r.Rate] = 100 * r.SuccessRate
		}
	}
	plot.Series = append(plot.Series, s)
	fmt.Fprint(w, plot.String())
}

func mathNaN() float64 { return math.NaN() }

// PrintFig11 renders the two panels as aligned tables.
func PrintFig11(w io.Writer, title string, rows []Fig11Row) {
	byRate := map[float64]map[sim.Algorithm]Fig11Row{}
	var rates []float64
	for _, r := range rows {
		if byRate[r.Rate] == nil {
			byRate[r.Rate] = map[sim.Algorithm]Fig11Row{}
			rates = append(rates, r.Rate)
		}
		byRate[r.Rate][r.Algorithm] = r
	}
	sort.Float64s(rates)

	succ := &stats.Table{Header: []string{"rate", "basic", "tradeoff", "random"}}
	qos := &stats.Table{Header: []string{"rate", "basic", "tradeoff", "random"}}
	for _, rate := range rates {
		m := byRate[rate]
		succ.AddRow(fmt.Sprintf("%g", rate),
			fmt.Sprintf("%.1f%%", 100*m[sim.AlgBasic].SuccessRate),
			fmt.Sprintf("%.1f%%", 100*m[sim.AlgTradeoff].SuccessRate),
			fmt.Sprintf("%.1f%%", 100*m[sim.AlgRandom].SuccessRate))
		qos.AddRow(fmt.Sprintf("%g", rate),
			fmt.Sprintf("%.2f", m[sim.AlgBasic].AvgQoS),
			fmt.Sprintf("%.2f", m[sim.AlgTradeoff].AvgQoS),
			fmt.Sprintf("%.2f", m[sim.AlgRandom].AvgQoS))
	}
	lat := &stats.Table{Header: []string{"rate", "basic", "tradeoff", "random"}}
	latCell := func(r Fig11Row) string {
		return fmt.Sprintf("%.0f/%.0f", 1e6*r.PlanP50, 1e6*r.PlanP99)
	}
	for _, rate := range rates {
		m := byRate[rate]
		lat.AddRow(fmt.Sprintf("%g", rate),
			latCell(m[sim.AlgBasic]), latCell(m[sim.AlgTradeoff]), latCell(m[sim.AlgRandom]))
	}
	fmt.Fprintf(w, "%s (a): overall reservation success rate\n%s\n", title, succ)
	fmt.Fprintf(w, "%s (b): average end-to-end QoS level\n%s\n", title, qos)
	fmt.Fprintf(w, "%s: planning latency p50/p99 (µs)\n%s", title, lat)
}

// Tables12Rate is the arrival rate of the path-selection study
// (tables 1-2): 80 sessions per 60 TUs.
const Tables12Rate = 80.0

// PathRow is one row of table 1 or 2: a selected path and its selection
// percentage under basic and tradeoff.
type PathRow struct {
	Path     string
	Basic    float64
	Tradeoff float64
}

// PathTables holds the regenerated tables 1 and 2, plus the
// bottleneck-coverage observation of section 5.2.2.
type PathTables struct {
	Table1, Table2 []PathRow
	// BottleneckCoverage maps algorithm name to the number of distinct
	// resources observed as a plan bottleneck during its run.
	BottleneckCoverage map[string]int
}

// Tables12 regenerates tables 1 and 2: the selected end-to-end
// reservation paths and their percentages in the QRGs of figures 10(a)
// and (b), under basic and tradeoff at 80 sessions per 60 TUs.
func Tables12(opts Opts) (*PathTables, error) {
	out := &PathTables{BottleneckCoverage: map[string]int{}}
	hist := map[sim.Algorithm]map[string]*stats.PathHistogram{}
	for _, alg := range []sim.Algorithm{sim.AlgBasic, sim.AlgTradeoff} {
		res, err := sim.Run(opts.config(alg, Tables12Rate, 80))
		if err != nil {
			return nil, err
		}
		hist[alg] = res.Metrics.ByFamily
		out.BottleneckCoverage[string(alg)] = len(res.Metrics.BottleneckCounts)
	}
	merge := func(family string) []PathRow {
		seen := map[string]bool{}
		var paths []string
		for _, alg := range []sim.Algorithm{sim.AlgBasic, sim.AlgTradeoff} {
			if h := hist[alg][family]; h != nil {
				for _, p := range h.Paths() {
					if !seen[p] {
						seen[p] = true
						paths = append(paths, p)
					}
				}
			}
		}
		sort.Strings(paths)
		var rows []PathRow
		for _, p := range paths {
			row := PathRow{Path: p}
			if h := hist[sim.AlgBasic][family]; h != nil {
				row.Basic = h.Percent(p)
			}
			if h := hist[sim.AlgTradeoff][family]; h != nil {
				row.Tradeoff = h.Percent(p)
			}
			rows = append(rows, row)
		}
		return rows
	}
	out.Table1 = merge("fig10a")
	out.Table2 = merge("fig10b")
	return out, nil
}

// PrintPathTable renders one of tables 1-2.
func PrintPathTable(w io.Writer, title string, rows []PathRow) {
	t := &stats.Table{Header: []string{"selected path", "basic", "tradeoff"}}
	for _, r := range rows {
		t.AddRow(r.Path, fmt.Sprintf("%.1f%%", r.Basic), fmt.Sprintf("%.1f%%", r.Tradeoff))
	}
	fmt.Fprintf(w, "%s\n%s", title, t)
}

// Tables34Rates is the rate set of tables 3-4.
var Tables34Rates = []float64{60, 100, 180}

// ClassRow is one cell group of table 3 or 4: a session class at one
// arrival rate.
type ClassRow struct {
	Class       stats.Class
	Rate        float64
	SuccessRate float64
	AvgQoS      float64
}

// Tables34 regenerates table 3 (alg = basic) or table 4 (alg =
// tradeoff): per-class success rates and average QoS levels.
func Tables34(opts Opts, alg sim.Algorithm) ([]ClassRow, error) {
	var rows []ClassRow
	for _, rate := range Tables34Rates {
		res, err := sim.Run(opts.config(alg, rate, 34000+int64(rate)))
		if err != nil {
			return nil, err
		}
		for _, c := range stats.Classes() {
			cnt := res.Metrics.Class(c)
			rows = append(rows, ClassRow{
				Class:       c,
				Rate:        rate,
				SuccessRate: cnt.SuccessRate(),
				AvgQoS:      cnt.AvgQoS(),
			})
		}
	}
	return rows, nil
}

// PrintTable34 renders table 3 or 4 in the paper's layout (classes as
// rows, rates as columns, cells "success%/avgQoS").
func PrintTable34(w io.Writer, title string, rows []ClassRow) {
	header := []string{"class/gen. rate"}
	for _, r := range Tables34Rates {
		header = append(header, fmt.Sprintf("%g ssn.s/60 TUs", r))
	}
	t := &stats.Table{Header: header}
	for _, c := range stats.Classes() {
		cells := []string{c.String()}
		for _, rate := range Tables34Rates {
			for _, r := range rows {
				if r.Class == c && r.Rate == rate {
					cells = append(cells, fmt.Sprintf("%.1f%%/%.2f", 100*r.SuccessRate, r.AvgQoS))
				}
			}
		}
		t.AddRow(cells...)
	}
	fmt.Fprintf(w, "%s\n%s", title, t)
}

// Fig12Staleness is the observation-age sweep of figure 12 (in TUs).
var Fig12Staleness = []broker.Time{0, 1, 2, 4, 8}

// Fig12Rates is the arrival-rate sweep used for figure 12.
var Fig12Rates = []float64{60, 120, 180, 240}

// Fig12Row is one point of figure 12: the overall success rate of an
// algorithm at one arrival rate under observation staleness E.
type Fig12Row struct {
	Algorithm   sim.Algorithm
	Rate        float64
	StaleE      broker.Time
	SuccessRate float64
	// ReserveFailures counts plans that failed at reservation time, the
	// direct casualty of stale observations.
	ReserveFailures int
}

// Fig12 regenerates figure 12 for one algorithm (basic for panel (a),
// tradeoff for panel (b)), plus the accurate-observation random baseline
// the paper overlays for comparison.
func Fig12(opts Opts, alg sim.Algorithm) ([]Fig12Row, error) {
	var rows []Fig12Row
	for _, rate := range Fig12Rates {
		for _, e := range Fig12Staleness {
			// Same salt across E values: the environment (capacities,
			// arrival stream) is held fixed so the sweep isolates the
			// staleness effect.
			cfg := opts.config(alg, rate, 12000+int64(rate)*10)
			cfg.StaleE = e
			res, err := sim.Run(cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig12Row{
				Algorithm:       alg,
				Rate:            rate,
				StaleE:          e,
				SuccessRate:     res.Metrics.Overall.SuccessRate(),
				ReserveFailures: res.Metrics.ReserveFailures,
			})
		}
		// The paper overlays random with accurate observations.
		res, err := sim.Run(opts.config(sim.AlgRandom, rate, 12900+int64(rate)))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig12Row{
			Algorithm:   sim.AlgRandom,
			Rate:        rate,
			StaleE:      0,
			SuccessRate: res.Metrics.Overall.SuccessRate(),
		})
	}
	return rows, nil
}

// PrintFig12 renders one panel of figure 12.
func PrintFig12(w io.Writer, title string, rows []Fig12Row) {
	header := []string{"rate"}
	for _, e := range Fig12Staleness {
		header = append(header, fmt.Sprintf("E=%g", float64(e)))
	}
	header = append(header, "random(E=0)")
	t := &stats.Table{Header: header}
	for _, rate := range Fig12Rates {
		cells := []string{fmt.Sprintf("%g", rate)}
		for _, e := range Fig12Staleness {
			for _, r := range rows {
				if r.Rate == rate && r.StaleE == e && r.Algorithm != sim.AlgRandom {
					cells = append(cells, fmt.Sprintf("%.1f%%", 100*r.SuccessRate))
				}
			}
		}
		for _, r := range rows {
			if r.Rate == rate && r.Algorithm == sim.AlgRandom {
				cells = append(cells, fmt.Sprintf("%.1f%%", 100*r.SuccessRate))
			}
		}
		t.AddRow(cells...)
	}
	fmt.Fprintf(w, "%s\n%s", title, t)
}

// Fig13DiversityRatio is the compression the paper applies in
// section 5.2.5: highest:lowest requirement limited to 3:1.
const Fig13DiversityRatio = 3.0

// Fig13 regenerates figure 13: figure 11 under compressed requirement
// diversity.
func Fig13(opts Opts) ([]Fig11Row, error) {
	return fig11With(opts, Fig11Rates, Fig13DiversityRatio)
}
