package experiments

import (
	"strings"
	"testing"

	"qosres/internal/sim"
	"qosres/internal/stats"
)

// tinyOpts keeps experiment tests fast while preserving the shapes.
func tinyOpts() Opts { return Opts{Seed: 1, Duration: 900} }

func TestFig11ShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	rows, err := fig11With(tinyOpts(), []float64{90, 180}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(Algorithms) {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(rate float64, alg sim.Algorithm) Fig11Row {
		for _, r := range rows {
			if r.Rate == rate && r.Algorithm == alg {
				return r
			}
		}
		t.Fatalf("missing row %v/%v", rate, alg)
		return Fig11Row{}
	}
	for _, rate := range []float64{90, 180} {
		basic := get(rate, sim.AlgBasic)
		random := get(rate, sim.AlgRandom)
		if basic.SuccessRate <= random.SuccessRate {
			t.Errorf("rate %g: basic (%.3f) must beat random (%.3f)",
				rate, basic.SuccessRate, random.SuccessRate)
		}
	}
	// Load monotonicity: higher arrival rate, lower success.
	if get(180, sim.AlgBasic).SuccessRate >= get(90, sim.AlgBasic).SuccessRate {
		t.Error("success rate should drop with load")
	}
}

func TestPrintFig11Renders(t *testing.T) {
	rows := []Fig11Row{
		{Rate: 60, Algorithm: sim.AlgBasic, SuccessRate: 0.99, AvgQoS: 2.99},
		{Rate: 60, Algorithm: sim.AlgTradeoff, SuccessRate: 0.995, AvgQoS: 2.5},
		{Rate: 60, Algorithm: sim.AlgRandom, SuccessRate: 0.9, AvgQoS: 2.98},
	}
	var b strings.Builder
	PrintFig11(&b, "Figure 11", rows)
	out := b.String()
	for _, want := range []string{"Figure 11 (a)", "Figure 11 (b)", "99.0%", "2.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTables12Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	tabs, err := Tables12(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs.Table1) < 5 || len(tabs.Table2) < 5 {
		t.Fatalf("path coverage too narrow: %d / %d", len(tabs.Table1), len(tabs.Table2))
	}
	sum := func(rows []PathRow, f func(PathRow) float64) float64 {
		s := 0.0
		for _, r := range rows {
			s += f(r)
		}
		return s
	}
	for _, rows := range [][]PathRow{tabs.Table1, tabs.Table2} {
		if b := sum(rows, func(r PathRow) float64 { return r.Basic }); b < 99 || b > 101 {
			t.Errorf("basic percentages sum to %v", b)
		}
		if tr := sum(rows, func(r PathRow) float64 { return r.Tradeoff }); tr < 99 || tr > 101 {
			t.Errorf("tradeoff percentages sum to %v", tr)
		}
	}
	// Every selected path must be a real figure-10 path: Qa-..-sink.
	for _, r := range append(append([]PathRow{}, tabs.Table1...), tabs.Table2...) {
		if !strings.HasPrefix(r.Path, "Qa-") {
			t.Errorf("path %q does not start at the source", r.Path)
		}
		if strings.Count(r.Path, "-") != 5 {
			t.Errorf("path %q is not a 6-level chain path", r.Path)
		}
	}
	if tabs.BottleneckCoverage["basic"] < 10 {
		t.Errorf("bottleneck coverage = %d", tabs.BottleneckCoverage["basic"])
	}
	var b strings.Builder
	PrintPathTable(&b, "Table 1", tabs.Table1)
	if !strings.Contains(b.String(), "Table 1") || !strings.Contains(b.String(), "%") {
		t.Error("PrintPathTable output malformed")
	}
}

func TestTables34Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	rows, err := Tables34(tinyOpts(), sim.AlgBasic)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*len(Tables34Rates) {
		t.Fatalf("rows = %d", len(rows))
	}
	var b strings.Builder
	PrintTable34(&b, "Table 3", rows)
	out := b.String()
	for _, want := range []string{"Norm.-short", "Fat-long", "60 ssn.s/60 TUs"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q", want)
		}
	}
}

func TestFig12Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	rows, err := Fig12(tinyOpts(), sim.AlgBasic)
	if err != nil {
		t.Fatal(err)
	}
	// Per rate: len(staleness) basic rows + 1 random row.
	want := len(Fig12Rates) * (len(Fig12Staleness) + 1)
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	// At E=0 there must be no reserve failures; at the largest E under
	// load there should be some.
	for _, r := range rows {
		if r.StaleE == 0 && r.Algorithm == sim.AlgBasic && r.ReserveFailures != 0 {
			t.Errorf("E=0 run has %d reserve failures", r.ReserveFailures)
		}
	}
	var b strings.Builder
	PrintFig12(&b, "Figure 12 (a)", rows)
	if !strings.Contains(b.String(), "E=8") || !strings.Contains(b.String(), "random(E=0)") {
		t.Error("PrintFig12 output malformed")
	}
}

func TestOptsConfigDerivation(t *testing.T) {
	o := Opts{Seed: 7, Duration: 1234, Scale: 2.5}
	cfg := o.config(sim.AlgBasic, 100, 5)
	if cfg.Duration != 1234 || cfg.Workload.BaseScale != 2.5 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Seed == 0 {
		t.Fatal("seed not derived")
	}
	other := o.config(sim.AlgBasic, 100, 6)
	if other.Seed == cfg.Seed {
		t.Fatal("salts must change the derived seed")
	}
	def := (Opts{Seed: 1}).config(sim.AlgBasic, 100, 0)
	if def.Duration != 10800 {
		t.Fatalf("default duration = %v", def.Duration)
	}
}

func TestHeuristicQualityStudy(t *testing.T) {
	res, err := HeuristicQuality(1, 400)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 400 {
		t.Fatalf("trials = %d", res.Trials)
	}
	if res.BothSolved < 50 {
		t.Fatalf("only %d both-solved instances", res.BothSolved)
	}
	// Rank agreement is a correctness invariant, not a statistic.
	if res.RankAgreement != res.BothSolved {
		t.Fatalf("rank agreement %d != both-solved %d", res.RankAgreement, res.BothSolved)
	}
	// The documented limitations exist but stay bounded.
	solvable := res.BothSolved + res.HeuristicOnlyFailures
	if res.HeuristicOnlyFailures > solvable/4 {
		t.Fatalf("limitation 1 rate too high: %d of %d", res.HeuristicOnlyFailures, solvable)
	}
	if res.PsiGaps > res.BothSolved/5 {
		t.Fatalf("limitation 2 rate too high: %d of %d", res.PsiGaps, res.BothSolved)
	}
	var b strings.Builder
	PrintHeuristicQuality(&b, res)
	if !strings.Contains(b.String(), "limitation 1") {
		t.Fatal("print output malformed")
	}
}

func TestHeuristicQualityDeterministic(t *testing.T) {
	a, err := HeuristicQuality(7, 200)
	if err != nil {
		t.Fatal(err)
	}
	b, err := HeuristicQuality(7, 200)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestCSVWriters(t *testing.T) {
	var b strings.Builder
	rows := []Fig11Row{{Rate: 60, Algorithm: sim.AlgBasic, SuccessRate: 0.5, AvgQoS: 2.5}}
	if err := WriteFig11CSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "rate,algorithm,success_rate,avg_qos") ||
		!strings.Contains(b.String(), "60,basic,0.500000,2.500000") {
		t.Fatalf("fig11 csv = %q", b.String())
	}
	b.Reset()
	if err := WritePathTableCSV(&b, []PathRow{{Path: "Qa-Qb", Basic: 10, Tradeoff: 20}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Qa-Qb,10.0000,20.0000") {
		t.Fatalf("path csv = %q", b.String())
	}
	b.Reset()
	if err := WriteTable34CSV(&b, []ClassRow{{Class: stats.FatShort, Rate: 100, SuccessRate: 0.7, AvgQoS: 2.9}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Fat-short,100,0.700000,2.900000") {
		t.Fatalf("table34 csv = %q", b.String())
	}
	b.Reset()
	if err := WriteFig12CSV(&b, []Fig12Row{{Algorithm: sim.AlgBasic, Rate: 60, StaleE: 2, SuccessRate: 0.8, ReserveFailures: 5}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "basic,60,2,0.800000,5") {
		t.Fatalf("fig12 csv = %q", b.String())
	}
}

func TestFig11AveragedTightensEstimates(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated sweep")
	}
	rows, err := Fig11Averaged(Opts{Seed: 1, Duration: 600}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig11Rates)*len(Algorithms) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Reps != 3 {
			t.Fatalf("reps = %d", r.Reps)
		}
		if r.SuccessRate < 0 || r.SuccessRate > 1 {
			t.Fatalf("mean out of range: %+v", r)
		}
		if r.SuccessStdErr < 0 || r.SuccessStdErr > 0.5 {
			t.Fatalf("stderr out of range: %+v", r)
		}
	}
}

func TestMeanStderr(t *testing.T) {
	m, se := meanStderr([]float64{2, 4, 6})
	if m != 4 {
		t.Fatalf("mean = %v", m)
	}
	// sample variance = 4, stderr = sqrt(4/3).
	if se < 1.15 || se > 1.16 {
		t.Fatalf("stderr = %v", se)
	}
	if m, se := meanStderr(nil); m != 0 || se != 0 {
		t.Fatal("empty input must be zeros")
	}
	if _, se := meanStderr([]float64{5}); se != 0 {
		t.Fatal("single sample must have zero stderr")
	}
}

func TestPlotHelpersRender(t *testing.T) {
	rows := []Fig11Row{
		{Rate: 60, Algorithm: sim.AlgBasic, SuccessRate: 0.99, AvgQoS: 2.99},
		{Rate: 120, Algorithm: sim.AlgBasic, SuccessRate: 0.8, AvgQoS: 2.9},
		{Rate: 60, Algorithm: sim.AlgTradeoff, SuccessRate: 0.995, AvgQoS: 2.5},
		{Rate: 120, Algorithm: sim.AlgTradeoff, SuccessRate: 0.85, AvgQoS: 2.6},
		{Rate: 60, Algorithm: sim.AlgRandom, SuccessRate: 0.9, AvgQoS: 2.98},
		{Rate: 120, Algorithm: sim.AlgRandom, SuccessRate: 0.7, AvgQoS: 2.95},
	}
	var b strings.Builder
	PlotFig11(&b, "panel a", "a", rows)
	if !strings.Contains(b.String(), "panel a") || !strings.Contains(b.String(), "b=basic") {
		t.Fatalf("PlotFig11 a = %q", b.String())
	}
	b.Reset()
	PlotFig11(&b, "panel b", "b", rows)
	if !strings.Contains(b.String(), "t=tradeoff") {
		t.Fatalf("PlotFig11 b = %q", b.String())
	}
	b.Reset()
	fig12 := []Fig12Row{
		{Algorithm: sim.AlgBasic, Rate: 60, StaleE: 0, SuccessRate: 0.99},
		{Algorithm: sim.AlgBasic, Rate: 60, StaleE: 8, SuccessRate: 0.95},
		{Algorithm: sim.AlgRandom, Rate: 60, SuccessRate: 0.85},
	}
	PlotFig12(&b, "fig12", fig12)
	out := b.String()
	if !strings.Contains(out, "E=8") || !strings.Contains(out, "random") {
		t.Fatalf("PlotFig12 = %q", out)
	}
}
