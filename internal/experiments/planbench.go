package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/qos"
	"qosres/internal/qrg"
	"qosres/internal/sim"
	"qosres/internal/stats"
	"qosres/internal/svc"
	"qosres/internal/topo"
	"qosres/internal/workload"
)

// PlanBenchChain is the figure-9 deployment's S1 chain (family A tables
// at the simulator's calibrated base scale) bound to its real placement:
// server CPU, proxy CPU, server->proxy and proxy->client links. The
// companion snapshot is generous so no edge prunes and the benchmark
// exercises the full graph.
func PlanBenchChain() (*svc.Service, svc.Binding, *broker.Snapshot) {
	service := workload.Chain("S1", workload.FamilyOf(1), workload.Options{BaseScale: sim.DefaultBaseScale})

	server := topo.ServerHost(1)
	proxy := topo.ServerHost(topo.ProxyServerFor(1))
	client := topo.DomainHost(1)
	cpuS := broker.LocalResourceID(workload.ResCPU, server)
	cpuP := broker.LocalResourceID(workload.ResCPU, proxy)
	netSP := broker.NetResourceID(server, proxy)
	netPC := broker.NetResourceID(proxy, client)

	binding := svc.Binding{
		workload.CompServer: {workload.ResCPU: cpuS},
		workload.CompProxy:  {workload.ResCPU: cpuP, workload.ResNet: netSP},
		workload.CompClient: {workload.ResNet: netPC},
	}
	avail := qos.ResourceVector{}
	alpha := map[string]float64{}
	for _, r := range []string{cpuS, cpuP, netSP, netPC} {
		avail[r] = 1e6
		alpha[r] = 1
	}
	return service, binding, &broker.Snapshot{Avail: avail, Alpha: alpha}
}

// PlanBenchDag is the fan-in DAG example (figure 6 shape) with its
// canonical binding and snapshot.
func PlanBenchDag() (*svc.Service, svc.Binding, *broker.Snapshot) {
	return workload.DagService(), workload.DagBinding(), workload.DagSnapshot()
}

// PlanBenchRow is one measured (shape, mode) cell.
type PlanBenchRow struct {
	Shape       string  `json:"shape"`
	Mode        string  `json:"mode"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// PlanBenchResult aggregates the template-vs-scratch comparison. The
// speedup and alloc-ratio fields divide the from-scratch cost by the
// template cost, so larger is better for the fast lane.
type PlanBenchResult struct {
	Rows            []PlanBenchRow `json:"rows"`
	ChainSpeedup    float64        `json:"chain_speedup"`
	ChainAllocRatio float64        `json:"chain_alloc_ratio"`
	DagSpeedup      float64        `json:"dag_speedup"`
	DagAllocRatio   float64        `json:"dag_alloc_ratio"`
}

// benchPlanPath measures one full admission planning step (graph
// construction + planner) in both modes via testing.Benchmark.
func benchPlanPath(service *svc.Service, binding svc.Binding, snap *broker.Snapshot, planner core.Planner) (scratch, template testing.BenchmarkResult, err error) {
	// Dry-run both paths once so a broken fixture surfaces as an error
	// instead of a b.Fatal inside testing.Benchmark.
	g, buildErr := qrg.Build(service, binding, snap)
	if buildErr != nil {
		return scratch, template, buildErr
	}
	if _, planErr := planner.Plan(g); planErr != nil {
		return scratch, template, planErr
	}
	tpl, compErr := qrg.Compile(service, binding)
	if compErr != nil {
		return scratch, template, compErr
	}

	scratch = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, err := qrg.Build(service, binding, snap)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := planner.Plan(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	template = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, err := tpl.Instantiate(snap)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := planner.Plan(g); err != nil {
				b.Fatal(err)
			}
			tpl.Recycle(g)
		}
	})
	return scratch, template, nil
}

// PlanBench runs the plan-path microbenchmarks: from-scratch qrg.Build
// versus compiled-template Instantiate, each followed by the planner a
// session would run (max-plus Dijkstra on the chain, the two-pass
// heuristic on the DAG).
func PlanBench() (*PlanBenchResult, error) {
	res := &PlanBenchResult{}
	shapes := []struct {
		name    string
		planner core.Planner
		fixture func() (*svc.Service, svc.Binding, *broker.Snapshot)
	}{
		{"chain", core.Basic{}, PlanBenchChain},
		{"dag", core.TwoPass{}, PlanBenchDag},
	}
	for _, sh := range shapes {
		service, binding, snap := sh.fixture()
		scratch, template, err := benchPlanPath(service, binding, snap, sh.planner)
		if err != nil {
			return nil, fmt.Errorf("experiments: planbench %s: %w", sh.name, err)
		}
		res.Rows = append(res.Rows,
			PlanBenchRow{sh.name, "scratch", float64(scratch.NsPerOp()), scratch.AllocsPerOp(), scratch.AllocedBytesPerOp()},
			PlanBenchRow{sh.name, "template", float64(template.NsPerOp()), template.AllocsPerOp(), template.AllocedBytesPerOp()},
		)
		speedup := float64(scratch.NsPerOp()) / float64(template.NsPerOp())
		allocRatio := float64(scratch.AllocsPerOp()) / float64(maxInt64(1, template.AllocsPerOp()))
		if sh.name == "chain" {
			res.ChainSpeedup, res.ChainAllocRatio = speedup, allocRatio
		} else {
			res.DagSpeedup, res.DagAllocRatio = speedup, allocRatio
		}
	}
	return res, nil
}

// WritePlanBenchJSON writes the result to path (the CI artifact
// BENCH_plan.json).
func WritePlanBenchJSON(path string, r *PlanBenchResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PrintPlanBench renders the comparison.
func PrintPlanBench(w io.Writer, r *PlanBenchResult) {
	t := &stats.Table{Header: []string{"shape", "mode", "ns/op", "allocs/op", "B/op"}}
	for _, row := range r.Rows {
		t.AddRow(row.Shape, row.Mode, fmt.Sprintf("%.0f", row.NsPerOp),
			fmt.Sprintf("%d", row.AllocsPerOp), fmt.Sprintf("%d", row.BytesPerOp))
	}
	fmt.Fprintf(w, "Plan-path microbenchmarks: compiled template vs from-scratch build\n%s", t)
	fmt.Fprintf(w, "chain: %.2fx faster, %.1fx fewer allocs; dag: %.2fx faster, %.1fx fewer allocs\n",
		r.ChainSpeedup, r.ChainAllocRatio, r.DagSpeedup, r.DagAllocRatio)
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
