package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"qosres/internal/obs"
	"qosres/internal/sim"
	"qosres/internal/stats"
)

// Admission-throughput benchmark: establish+release cycles per second
// through the QoSProxy runtime's three-phase protocol, serialized
// commits versus the group-commit batching front end, swept over
// client concurrency. Backs the BENCH_admit.json CI artifact.

// AdmitBenchGoroutines is the swept client-concurrency axis.
var AdmitBenchGoroutines = []int{1, 4, 16, 32}

// AdmitBenchSessions is the number of establish+release cycles per
// measured cell — large enough that per-cell setup noise washes out.
const AdmitBenchSessions = 4000

// admitBenchMaxBatch is the round bound of the batched mode.
const admitBenchMaxBatch = 16

// AdmitBenchRow is one measured (mode, goroutines) cell.
type AdmitBenchRow struct {
	Mode           string  `json:"mode"`
	Goroutines     int     `json:"goroutines"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	Established    int     `json:"established"`
	// AvgBatchMembers is the mean group-commit round size (1 in
	// serialized mode by definition; reported as 0 there).
	AvgBatchMembers float64 `json:"avg_batch_members"`
	// MemoHitRate is plan-memo hits over lookups; only read-path rows
	// carry it.
	MemoHitRate float64 `json:"memo_hit_rate,omitempty"`
}

// AdmitBenchResult aggregates the sweep. Speedup maps each goroutine
// count to batched-over-serialized throughput, so >1 means batching
// wins at that concurrency.
type AdmitBenchResult struct {
	Rows    []AdmitBenchRow    `json:"rows"`
	Speedup map[string]float64 `json:"batched_speedup_by_goroutines"`
	// ReadPath is the epoch-validated read-path section: the same
	// serialized sweep with plan memoization on, and its hit rate.
	// BENCH_read.json carries the full read-path benchmark.
	ReadPath []AdmitBenchRow `json:"read_path,omitempty"`
}

// AdmitBench runs the admission-throughput sweep.
func AdmitBench(seed int64) (*AdmitBenchResult, error) {
	res := &AdmitBenchResult{Speedup: make(map[string]float64)}
	serial := make(map[int]float64)
	for _, mode := range []struct {
		name  string
		batch int
	}{
		{"serialized", 0},
		{"batched", admitBenchMaxBatch},
	} {
		for _, g := range AdmitBenchGoroutines {
			reg := obs.New()
			r, err := sim.RunAdmitThroughput(sim.AdmitBenchConfig{
				Seed:       seed,
				Goroutines: g,
				Sessions:   AdmitBenchSessions,
				BatchAdmit: mode.batch,
				Obs:        reg,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: admitbench %s/%d: %w", mode.name, g, err)
			}
			row := AdmitBenchRow{
				Mode:           mode.name,
				Goroutines:     g,
				SessionsPerSec: r.SessionsPerSec,
				Established:    r.Established,
			}
			if mode.batch > 1 {
				var batches, members float64
				for _, c := range reg.Snapshot().Counters {
					switch c.Name {
					case obs.MetricAdmitBatches:
						batches += c.Value
					case obs.MetricAdmitBatchMembers:
						members += c.Value
					}
				}
				if batches > 0 {
					row.AvgBatchMembers = members / batches
				}
				if s := serial[g]; s > 0 {
					res.Speedup[fmt.Sprintf("%d", g)] = r.SessionsPerSec / s
				}
			} else {
				serial[g] = r.SessionsPerSec
			}
			res.Rows = append(res.Rows, row)
		}
	}
	// The read-path section: the serialized sweep with plan
	// memoization on (BENCH_read.json carries the full read benchmark).
	for _, g := range AdmitBenchGoroutines {
		reg := obs.New()
		r, err := sim.RunAdmitThroughput(sim.AdmitBenchConfig{
			Seed:       seed,
			Goroutines: g,
			Sessions:   AdmitBenchSessions,
			PlanMemo:   true,
			Obs:        reg,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: admitbench readpath/%d: %w", g, err)
		}
		res.ReadPath = append(res.ReadPath, AdmitBenchRow{
			Mode:           "serialized+readpath",
			Goroutines:     g,
			SessionsPerSec: r.SessionsPerSec,
			Established:    r.Established,
			MemoHitRate:    memoHitRate(reg),
		})
	}
	return res, nil
}

// WriteAdmitBenchJSON writes the result to path (the CI artifact
// BENCH_admit.json).
func WriteAdmitBenchJSON(path string, r *AdmitBenchResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PrintAdmitBench renders the sweep.
func PrintAdmitBench(w io.Writer, r *AdmitBenchResult) {
	t := &stats.Table{Header: []string{"mode", "goroutines", "sessions/s", "avg round"}}
	for _, row := range r.Rows {
		avg := "-"
		if row.AvgBatchMembers > 0 {
			avg = fmt.Sprintf("%.1f", row.AvgBatchMembers)
		}
		t.AddRow(row.Mode, fmt.Sprintf("%d", row.Goroutines),
			fmt.Sprintf("%.0f", row.SessionsPerSec), avg)
	}
	fmt.Fprintf(w, "Admission throughput: group-commit batching vs serialized 2PC\n%s", t)
	for _, g := range AdmitBenchGoroutines {
		if s, ok := r.Speedup[fmt.Sprintf("%d", g)]; ok {
			fmt.Fprintf(w, "goroutines=%d: batched %.2fx serialized\n", g, s)
		}
	}
}
