package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"qosres/internal/broker"
	"qosres/internal/obs"
	"qosres/internal/sim"
	"qosres/internal/stats"
	"qosres/internal/topo"
)

// Read-path benchmark: the lock-free epoch-validated read side behind
// the BENCH_read.json CI artifact. Two measurements:
//
//   - snapshot microbench: ns/op and allocs/op of an availability
//     snapshot over the hot session's four resources, uncached
//     (Pool.Snapshot + recycling) versus served by the epoch-validated
//     SnapshotCache at steady state (hits: wait-free revalidation, the
//     shared object returned as-is, zero allocations);
//   - admission sweep: establish+release sessions/sec through the
//     runtime at 1/4/16/32 clients, serialized versus the plan-memo
//     read path (serialized and batched), with the memo hit rate.
//
// ReadBenchPR7SerializedBaseline keys each goroutine count to the
// serialized sessions/sec of the committed PR-7 BENCH_admit.json — the
// pre-read-path reference this PR's acceptance (>= 2x at 16-32
// goroutines) and the CI bench-delta guard are measured against.
var ReadBenchPR7SerializedBaseline = map[string]float64{
	"1": 11579, "4": 11647, "16": 11254, "32": 11575,
}

// readBenchSnapshotIters sizes the snapshot microbench.
const readBenchSnapshotIters = 200000

// ReadBenchRow is one measured (mode, goroutines) admission cell.
type ReadBenchRow struct {
	Mode           string  `json:"mode"`
	Goroutines     int     `json:"goroutines"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	Established    int     `json:"established"`
	// MemoHitRate is plan-memo hits over lookups (0 in modes without
	// the memo, and with one client, whose own commits always move the
	// epochs it would revalidate against).
	MemoHitRate float64 `json:"memo_hit_rate"`
}

// ReadBenchResult aggregates the read-path benchmark.
type ReadBenchResult struct {
	// Snapshot microbench over the hot session's four resources.
	SnapshotUncachedNsOp    float64 `json:"snapshot_uncached_ns_op"`
	SnapshotCachedNsOp      float64 `json:"snapshot_cached_ns_op"`
	SnapshotCachedAllocsOp  float64 `json:"snapshot_cached_allocs_op"`
	SnapshotUncachedAllocOp float64 `json:"snapshot_uncached_allocs_op"`

	Rows []ReadBenchRow `json:"rows"`
	// SpeedupVsSerialized maps "mode/goroutines" to throughput over the
	// serialized mode measured in the same run.
	SpeedupVsSerialized map[string]float64 `json:"speedup_vs_serialized"`
	// SpeedupVsPR7Serialized maps "mode/goroutines" to throughput over
	// the committed PR-7 serialized baseline (the pre-read-path tree).
	SpeedupVsPR7Serialized map[string]float64 `json:"speedup_vs_pr7_serialized"`
	PR7SerializedBaseline  map[string]float64 `json:"pr7_serialized_baseline_sessions_per_sec"`
}

// readBenchPool builds the generous-capacity figure-9 pool and the hot
// session's resource set (service S1 established from domain 3).
func readBenchPool() (*broker.Pool, []string, error) {
	p := broker.NewPool(topo.Figure9())
	for i := 1; i <= topo.NumServers; i++ {
		if _, err := p.AddLocal("cpu", topo.ServerHost(i), 1e6); err != nil {
			return nil, nil, err
		}
	}
	for _, l := range topo.Figure9().Links() {
		if _, err := p.AddLink(l.ID, 1e6); err != nil {
			return nil, nil, err
		}
	}
	server := topo.ServerHost(1)
	proxy := topo.ServerHost(topo.ProxyServerFor(3))
	client := topo.DomainHost(3)
	n1, err := p.Network(server, proxy)
	if err != nil {
		return nil, nil, err
	}
	n2, err := p.Network(proxy, client)
	if err != nil {
		return nil, nil, err
	}
	return p, []string{
		broker.LocalResourceID("cpu", server),
		broker.LocalResourceID("cpu", proxy),
		n1.Resource(), n2.Resource(),
	}, nil
}

// ReadBench runs the read-path benchmark.
func ReadBench(seed int64) (*ReadBenchResult, error) {
	res := &ReadBenchResult{
		SpeedupVsSerialized:    make(map[string]float64),
		SpeedupVsPR7Serialized: make(map[string]float64),
		PR7SerializedBaseline:  ReadBenchPR7SerializedBaseline,
	}

	// Snapshot microbench. The clock advances every query so the α
	// windows prune and the sample slices hold a steady capacity.
	pool, resources, err := readBenchPool()
	if err != nil {
		return nil, err
	}
	now := broker.Time(0)
	uncached := func() error {
		now++
		s, err := pool.Snapshot(now, resources)
		if err != nil {
			return err
		}
		pool.RecycleSnapshot(s)
		return nil
	}
	cache := broker.NewSnapshotCache(pool, nil)
	cached := func() error {
		now++
		_, err := cache.Snapshot(now, resources)
		return err
	}
	measure := func(query func() error) (float64, error) {
		for i := 0; i < 1000; i++ { // warm pools and caches
			if err := query(); err != nil {
				return 0, err
			}
		}
		start := time.Now()
		for i := 0; i < readBenchSnapshotIters; i++ {
			if err := query(); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / readBenchSnapshotIters, nil
	}
	if res.SnapshotUncachedNsOp, err = measure(uncached); err != nil {
		return nil, err
	}
	if res.SnapshotCachedNsOp, err = measure(cached); err != nil {
		return nil, err
	}
	res.SnapshotUncachedAllocOp = testing.AllocsPerRun(2000, func() { _ = uncached() })
	res.SnapshotCachedAllocsOp = testing.AllocsPerRun(2000, func() { _ = cached() })

	// Admission sweep: serialized baseline, then the plan-memo read
	// path serialized and batched.
	serial := make(map[int]float64)
	for _, mode := range []struct {
		name  string
		batch int
		memo  bool
	}{
		{"serialized", 0, false},
		{"serialized+readpath", 0, true},
		{"batched+readpath", admitBenchMaxBatch, true},
	} {
		for _, g := range AdmitBenchGoroutines {
			reg := obs.New()
			r, err := sim.RunAdmitThroughput(sim.AdmitBenchConfig{
				Seed:       seed,
				Goroutines: g,
				Sessions:   AdmitBenchSessions,
				BatchAdmit: mode.batch,
				PlanMemo:   mode.memo,
				Obs:        reg,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: readbench %s/%d: %w", mode.name, g, err)
			}
			row := ReadBenchRow{
				Mode:           mode.name,
				Goroutines:     g,
				SessionsPerSec: r.SessionsPerSec,
				Established:    r.Established,
				MemoHitRate:    memoHitRate(reg),
			}
			res.Rows = append(res.Rows, row)
			key := fmt.Sprintf("%s/%d", mode.name, g)
			if mode.name == "serialized" {
				serial[g] = r.SessionsPerSec
			} else if s := serial[g]; s > 0 {
				res.SpeedupVsSerialized[key] = r.SessionsPerSec / s
			}
			if base := ReadBenchPR7SerializedBaseline[fmt.Sprintf("%d", g)]; base > 0 {
				res.SpeedupVsPR7Serialized[key] = r.SessionsPerSec / base
			}
		}
	}
	return res, nil
}

// memoHitRate extracts plan-memo hits / (hits + misses) from a run
// registry; 0 when the memo never saw a lookup.
func memoHitRate(reg *obs.Registry) float64 {
	var hits, misses float64
	for _, c := range reg.Snapshot().Counters {
		switch c.Name {
		case obs.MetricPlanMemoHits:
			hits += c.Value
		case obs.MetricPlanMemoMisses:
			misses += c.Value
		}
	}
	if hits+misses == 0 {
		return 0
	}
	return hits / (hits + misses)
}

// WriteReadBenchJSON writes the result to path (the CI artifact
// BENCH_read.json).
func WriteReadBenchJSON(path string, r *ReadBenchResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PrintReadBench renders the benchmark.
func PrintReadBench(w io.Writer, r *ReadBenchResult) {
	fmt.Fprintf(w, "Snapshot read (hot session, 4 resources):\n")
	fmt.Fprintf(w, "  uncached  %8.0f ns/op  %4.1f allocs/op\n", r.SnapshotUncachedNsOp, r.SnapshotUncachedAllocOp)
	fmt.Fprintf(w, "  cached    %8.0f ns/op  %4.1f allocs/op\n", r.SnapshotCachedNsOp, r.SnapshotCachedAllocsOp)
	t := &stats.Table{Header: []string{"mode", "goroutines", "sessions/s", "memo hits", "vs pr7"}}
	for _, row := range r.Rows {
		hit := "-"
		if row.MemoHitRate > 0 {
			hit = fmt.Sprintf("%.1f%%", 100*row.MemoHitRate)
		}
		vs := "-"
		if s, ok := r.SpeedupVsPR7Serialized[fmt.Sprintf("%s/%d", row.Mode, row.Goroutines)]; ok {
			vs = fmt.Sprintf("%.2fx", s)
		}
		t.AddRow(row.Mode, fmt.Sprintf("%d", row.Goroutines),
			fmt.Sprintf("%.0f", row.SessionsPerSec), hit, vs)
	}
	fmt.Fprintf(w, "Admission throughput: read path vs serialized baseline\n%s", t)
}
