package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"

	"qosres/internal/sim"
)

// CSV writers for every experiment, for external plotting pipelines.
// Each writer emits a header row and one record per data point.

// WriteFig11CSV emits rate, algorithm, success_rate, avg_qos rows plus
// the run's planning-stage latency percentiles in microseconds.
func WriteFig11CSV(w io.Writer, rows []Fig11Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rate", "algorithm", "success_rate", "avg_qos", "plan_p50_us", "plan_p99_us"}); err != nil {
		return err
	}
	for _, r := range rows {
		cw.Write([]string{
			fmt.Sprintf("%g", r.Rate),
			string(r.Algorithm),
			fmt.Sprintf("%.6f", r.SuccessRate),
			fmt.Sprintf("%.6f", r.AvgQoS),
			fmt.Sprintf("%.1f", 1e6*r.PlanP50),
			fmt.Sprintf("%.1f", 1e6*r.PlanP99),
		})
	}
	cw.Flush()
	return cw.Error()
}

// WritePathTableCSV emits path, basic_percent, tradeoff_percent rows for
// table 1 or 2.
func WritePathTableCSV(w io.Writer, rows []PathRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"path", "basic_percent", "tradeoff_percent"}); err != nil {
		return err
	}
	for _, r := range rows {
		cw.Write([]string{r.Path, fmt.Sprintf("%.4f", r.Basic), fmt.Sprintf("%.4f", r.Tradeoff)})
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable34CSV emits class, rate, success_rate, avg_qos rows.
func WriteTable34CSV(w io.Writer, rows []ClassRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"class", "rate", "success_rate", "avg_qos"}); err != nil {
		return err
	}
	for _, r := range rows {
		cw.Write([]string{
			r.Class.String(),
			fmt.Sprintf("%g", r.Rate),
			fmt.Sprintf("%.6f", r.SuccessRate),
			fmt.Sprintf("%.6f", r.AvgQoS),
		})
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig12CSV emits algorithm, rate, stale_e, success_rate,
// reserve_failures rows.
func WriteFig12CSV(w io.Writer, rows []Fig12Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"algorithm", "rate", "stale_e", "success_rate", "reserve_failures"}); err != nil {
		return err
	}
	for _, r := range rows {
		cw.Write([]string{
			string(r.Algorithm),
			fmt.Sprintf("%g", r.Rate),
			fmt.Sprintf("%g", float64(r.StaleE)),
			fmt.Sprintf("%.6f", r.SuccessRate),
			fmt.Sprintf("%d", r.ReserveFailures),
		})
	}
	cw.Flush()
	return cw.Error()
}

// Fig11Averaged runs figure 11 over reps independent replications
// (different derived seeds) and returns per-point means plus the
// standard error of the success rate, tightening the noisy points of
// single runs.
type Fig11AveragedRow struct {
	Fig11Row
	// SuccessStdErr is the standard error of the mean success rate.
	SuccessStdErr float64
	Reps          int
}

// Fig11Averaged replicates the figure-11 sweep.
func Fig11Averaged(opts Opts, reps int) ([]Fig11AveragedRow, error) {
	if reps <= 0 {
		reps = 3
	}
	type acc struct {
		succ []float64
		qos  []float64
	}
	accs := map[string]*acc{}
	key := func(rate float64, alg sim.Algorithm) string {
		return fmt.Sprintf("%g/%s", rate, alg)
	}
	for rep := 0; rep < reps; rep++ {
		repOpts := opts
		repOpts.Seed = opts.Seed + int64(rep)*7919
		rows, err := Fig11(repOpts)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			k := key(r.Rate, r.Algorithm)
			if accs[k] == nil {
				accs[k] = &acc{}
			}
			accs[k].succ = append(accs[k].succ, r.SuccessRate)
			accs[k].qos = append(accs[k].qos, r.AvgQoS)
		}
	}
	var out []Fig11AveragedRow
	for _, rate := range Fig11Rates {
		for _, alg := range Algorithms {
			a := accs[key(rate, alg)]
			if a == nil {
				continue
			}
			m, se := meanStderr(a.succ)
			qm, _ := meanStderr(a.qos)
			out = append(out, Fig11AveragedRow{
				Fig11Row: Fig11Row{
					Rate: rate, Algorithm: alg,
					SuccessRate: m, AvgQoS: qm,
				},
				SuccessStdErr: se,
				Reps:          reps,
			})
		}
	}
	return out, nil
}

func meanStderr(xs []float64) (mean, stderr float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	variance := ss / float64(len(xs)-1)
	return mean, math.Sqrt(variance / float64(len(xs)))
}
