// Package fault injects failures into a reservation-enabled environment:
// it can fail and recover link brokers, local brokers, and whole hosts,
// and shrink and restore broker capacities, either on an explicit
// schedule or as a seeded random walk. The injector mutates broker state
// only through the failure surface of package broker (Fail, Recover,
// SetCapacity), so the invariants of that surface hold under injection:
// a failed resource reports zero availability and refuses new
// reservations but keeps its book of holds, and a capacity shrink never
// evicts holds (availability goes negative until the repair layer
// releases the overhang).
//
// Every injection produces an Event naming the concrete resources it
// touched; the chaos harness forwards these to the session-repair layer
// (proxy.Runtime.RepairAffected), closing the fail → repair loop.
package fault

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"qosres/internal/broker"
	"qosres/internal/obs"
	"qosres/internal/topo"
	"qosres/internal/transport"
)

// Kind classifies one injected fault event.
type Kind string

const (
	// KindResourceDown fails a single host-local resource broker.
	KindResourceDown Kind = "resource_down"
	// KindLinkDown fails a single link bandwidth broker.
	KindLinkDown Kind = "link_down"
	// KindHostDown fails every resource of a host plus its incident
	// links.
	KindHostDown Kind = "host_down"
	// KindCapacityShrink reduces a broker's capacity without evicting
	// its holds.
	KindCapacityShrink Kind = "capacity_shrink"
	// KindRecover brings failed resources back to service.
	KindRecover Kind = "recover"
	// KindCapacityRestore restores a shrunk broker's original capacity.
	KindCapacityRestore Kind = "capacity_restore"
)

// Event is one applied injection: its kind and the concrete resource IDs
// it touched (for a host failure, every resource of the host and every
// incident link).
type Event struct {
	Kind      Kind
	Resources []string
}

// Injector drives fault injection against a broker pool, optionally
// informed by a topology (required for link/host faults). It is safe
// for concurrent use.
type Injector struct {
	pool     *broker.Pool
	topology *topo.Topology

	mu      sync.Mutex
	metrics *obs.FaultMetrics
	notify  func(Event)
	// downed records currently-failed resources; shrunk maps a resource
	// whose capacity was reduced to its original capacity; surges maps a
	// surged resource to its background hold.
	downed map[string]bool
	shrunk map[string]float64
	surges map[string]broker.ReservationID
	// fabric, when attached (SetTransport), receives network-level
	// injections; partitioned tracks cut host pairs and delayed maps a
	// delayed route to its original config.
	fabric      *transport.Fabric
	partitioned map[hostPair]bool
	delayed     map[hostPair]transport.RouteConfig
	// restarter, when attached (SetRestarter), receives crash/restart
	// injections (KindCrashRestart).
	restarter Restarter
}

// New creates an injector over a pool. The topology may be nil when only
// resource-level faults are injected.
func New(pool *broker.Pool, topology *topo.Topology) *Injector {
	return &Injector{
		pool:        pool,
		topology:    topology,
		metrics:     &obs.FaultMetrics{},
		downed:      make(map[string]bool),
		shrunk:      make(map[string]float64),
		surges:      make(map[string]broker.ReservationID),
		partitioned: make(map[hostPair]bool),
		delayed:     make(map[hostPair]transport.RouteConfig),
	}
}

// Instrument attaches fault counters; every injection then counts under
// qosres_fault_injected_total by kind. A nil argument leaves the
// injector unobserved at no cost.
func (in *Injector) Instrument(m *obs.FaultMetrics) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if m == nil {
		m = &obs.FaultMetrics{}
	}
	in.metrics = m
}

// OnFault registers the callback invoked (outside the injector lock)
// after every applied event — typically the repair layer's
// RepairAffected.
func (in *Injector) OnFault(fn func(Event)) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.notify = fn
}

// emit counts and publishes an applied event.
func (in *Injector) emit(ev Event) {
	in.mu.Lock()
	m := in.metrics
	fn := in.notify
	in.mu.Unlock()
	m.Injected(string(ev.Kind))
	if fn != nil {
		fn(ev)
	}
}

// local resolves a resource ID to its Local broker.
func (in *Injector) local(resource string) (*broker.Local, error) {
	b, ok := in.pool.Get(resource)
	if !ok {
		return nil, fmt.Errorf("fault: unknown resource %s", resource)
	}
	l, ok := b.(*broker.Local)
	if !ok {
		return nil, fmt.Errorf("fault: resource %s is not a local broker", resource)
	}
	return l, nil
}

// FailResource fails one local or link broker: availability drops to
// zero and new reservations are refused until Recover.
func (in *Injector) FailResource(now broker.Time, resource string) error {
	l, err := in.local(resource)
	if err != nil {
		return err
	}
	l.Fail(now)
	in.mu.Lock()
	in.downed[resource] = true
	in.mu.Unlock()
	kind := KindResourceDown
	if strings.HasPrefix(resource, "link:") {
		kind = KindLinkDown
	}
	in.emit(Event{Kind: kind, Resources: []string{resource}})
	return nil
}

// FailLink fails the bandwidth broker of a topology link.
func (in *Injector) FailLink(now broker.Time, link topo.LinkID) error {
	return in.FailResource(now, broker.LinkResourceID(link))
}

// hostResources lists the registered resources of a host: every local
// broker bound to it ("kind@host") plus the links incident to it in the
// topology.
func (in *Injector) hostResources(host topo.HostID) []string {
	var out []string
	suffix := "@" + string(host)
	for _, b := range in.pool.LocalBrokers() {
		r := b.Resource()
		if strings.HasSuffix(r, suffix) {
			out = append(out, r)
		}
	}
	if in.topology != nil {
		for _, l := range in.topology.Links() {
			if l.A == host || l.B == host {
				r := broker.LinkResourceID(l.ID)
				if _, ok := in.pool.Get(r); ok {
					out = append(out, r)
				}
			}
		}
	}
	return out
}

// FailHost fails every resource of a host and every link incident to it
// — the paper's runtime environment losing a whole end host.
func (in *Injector) FailHost(now broker.Time, host topo.HostID) error {
	resources := in.hostResources(host)
	if len(resources) == 0 {
		return fmt.Errorf("fault: host %s has no registered resources", host)
	}
	for _, r := range resources {
		l, err := in.local(r)
		if err != nil {
			return err
		}
		l.Fail(now)
	}
	in.mu.Lock()
	for _, r := range resources {
		in.downed[r] = true
	}
	in.mu.Unlock()
	in.emit(Event{Kind: KindHostDown, Resources: resources})
	return nil
}

// RecoverResource brings one failed resource back to service.
func (in *Injector) RecoverResource(now broker.Time, resource string) error {
	l, err := in.local(resource)
	if err != nil {
		return err
	}
	l.Recover(now)
	in.mu.Lock()
	delete(in.downed, resource)
	in.mu.Unlock()
	in.emit(Event{Kind: KindRecover, Resources: []string{resource}})
	return nil
}

// RecoverHost recovers every resource of a host and its incident links.
func (in *Injector) RecoverHost(now broker.Time, host topo.HostID) error {
	resources := in.hostResources(host)
	for _, r := range resources {
		l, err := in.local(r)
		if err != nil {
			return err
		}
		l.Recover(now)
	}
	in.mu.Lock()
	for _, r := range resources {
		delete(in.downed, r)
	}
	in.mu.Unlock()
	in.emit(Event{Kind: KindRecover, Resources: resources})
	return nil
}

// ShrinkCapacity multiplies a broker's capacity by factor in (0, 1),
// recording the original capacity for RestoreCapacity. Holds are never
// evicted; availability may go negative until the overhang drains. A
// resource already shrunk keeps its first-recorded original.
func (in *Injector) ShrinkCapacity(now broker.Time, resource string, factor float64) error {
	if factor <= 0 || factor >= 1 {
		return fmt.Errorf("fault: shrink factor %g outside (0, 1)", factor)
	}
	l, err := in.local(resource)
	if err != nil {
		return err
	}
	in.mu.Lock()
	if _, already := in.shrunk[resource]; !already {
		in.shrunk[resource] = l.Capacity()
	}
	in.mu.Unlock()
	if err := l.SetCapacity(now, l.Capacity()*factor); err != nil {
		return err
	}
	in.emit(Event{Kind: KindCapacityShrink, Resources: []string{resource}})
	return nil
}

// RestoreCapacity returns a shrunk broker to its original capacity.
func (in *Injector) RestoreCapacity(now broker.Time, resource string) error {
	in.mu.Lock()
	orig, ok := in.shrunk[resource]
	delete(in.shrunk, resource)
	in.mu.Unlock()
	if !ok {
		return fmt.Errorf("fault: resource %s was not shrunk", resource)
	}
	l, err := in.local(resource)
	if err != nil {
		return err
	}
	if err := l.SetCapacity(now, orig); err != nil {
		return err
	}
	in.emit(Event{Kind: KindCapacityRestore, Resources: []string{resource}})
	return nil
}

// RecoverAll recovers every downed resource, restores every shrunk
// capacity, heals every partition, and restores every delayed route —
// the end-of-chaos cleanup that must return the environment to its
// exact original shape.
func (in *Injector) RecoverAll(now broker.Time) {
	in.healTransport()
	in.mu.Lock()
	downed := make([]string, 0, len(in.downed))
	for r := range in.downed {
		downed = append(downed, r)
	}
	shrunk := make([]string, 0, len(in.shrunk))
	for r := range in.shrunk {
		shrunk = append(shrunk, r)
	}
	in.mu.Unlock()
	sort.Strings(downed)
	sort.Strings(shrunk)
	for _, r := range downed {
		_ = in.RecoverResource(now, r)
	}
	for _, r := range shrunk {
		_ = in.RestoreCapacity(now, r)
	}
	for _, r := range in.Surged() {
		_ = in.EndSurge(now, r)
	}
}

// Active returns the currently-downed resources, sorted. Shrunk-but-live
// resources are not included.
func (in *Injector) Active() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.downed))
	for r := range in.downed {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Shrunk returns the currently-shrunk resources, sorted.
func (in *Injector) Shrunk() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.shrunk))
	for r := range in.shrunk {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}
