package fault

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"qosres/internal/topo"
)

type fakeRestarter struct {
	mu     sync.Mutex
	hosts  []topo.HostID
	refuse error
}

func (f *fakeRestarter) CrashRestart(h topo.HostID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.refuse != nil {
		return f.refuse
	}
	f.hosts = append(f.hosts, h)
	return nil
}

func TestCrashRestartInjection(t *testing.T) {
	pool, tp := world(t)
	in := New(pool, tp)
	if err := in.CrashRestart(1, "A"); err == nil {
		t.Fatal("crash without a restarter accepted")
	}
	r := &fakeRestarter{}
	in.SetRestarter(r)
	var events []Event
	in.OnFault(func(ev Event) { events = append(events, ev) })
	if err := in.CrashRestart(1, "A"); err != nil {
		t.Fatal(err)
	}
	if len(r.hosts) != 1 || r.hosts[0] != "A" {
		t.Fatalf("restarter saw %v", r.hosts)
	}
	if len(events) != 1 || events[0].Kind != KindCrashRestart {
		t.Fatalf("events = %v", events)
	}
	if len(events[0].Resources) == 0 {
		t.Fatal("crash event names no resources")
	}
	// A refused restart injects nothing.
	r.refuse = errors.New("boom")
	if err := in.CrashRestart(2, "B"); err == nil {
		t.Fatal("restarter error swallowed")
	}
	if len(events) != 1 {
		t.Fatalf("refused crash still emitted: %v", events)
	}
}

func TestRandomWalkCrashBranch(t *testing.T) {
	pool, tp := world(t)
	in := New(pool, tp)
	rng := rand.New(rand.NewSource(11))
	cfg := RandomConfig{CrashProb: 1}
	// Without a restarter the branch is a silent no-op.
	if ev := in.RandomStep(1, rng, cfg); ev != nil {
		t.Fatalf("crash walk without restarter produced %v", ev)
	}
	r := &fakeRestarter{}
	in.SetRestarter(r)
	for step := 0; step < 20; step++ {
		ev := in.RandomStep(brokerTime(step), rng, cfg)
		if ev == nil || ev.Kind != KindCrashRestart {
			t.Fatalf("step %d: got %v, want crash_restart", step, ev)
		}
	}
	if len(r.hosts) != 20 {
		t.Fatalf("restarter saw %d crashes, want 20", len(r.hosts))
	}
}
