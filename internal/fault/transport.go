package fault

// Network-level injection: on top of broker failures and capacity
// shrinks, the injector can cut and heal transport routes between hosts
// (partitions) and add per-route delivery latency, driving the fabric
// the QoSProxies exchange protocol messages over. Partition events are
// emitted like broker faults (with synthetic "route:a|b" resource IDs,
// which match no reservation and therefore trigger no repair — a
// partition invalidates no committed holds, it only degrades the
// protocol), so chaos harnesses see them in the same event stream.

import (
	"fmt"
	"sort"
	"time"

	"qosres/internal/topo"
	"qosres/internal/transport"
)

const (
	// KindPartition cuts the transport route between two hosts: every
	// protocol message between them is dropped until healed.
	KindPartition Kind = "partition"
	// KindHeal restores a partitioned route.
	KindHeal Kind = "heal"
	// KindDelayRoute adds delivery latency to a route.
	KindDelayRoute Kind = "delay_route"
)

// hostPair is an unordered host pair.
type hostPair [2]topo.HostID

func pairOf(a, b topo.HostID) hostPair {
	if b < a {
		a, b = b, a
	}
	return hostPair{a, b}
}

// routeResource names a route in fault events.
func routeResource(p hostPair) string {
	return fmt.Sprintf("route:%s|%s", p[0], p[1])
}

// SetTransport attaches the fabric network-level injections act on.
// Without one, PartitionLink/HealLink/DelayRoute error.
func (in *Injector) SetTransport(f *transport.Fabric) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.fabric = f
}

// transportFabric returns the attached fabric or an error.
func (in *Injector) transportFabric() (*transport.Fabric, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.fabric == nil {
		return nil, fmt.Errorf("fault: no transport fabric attached (SetTransport)")
	}
	return in.fabric, nil
}

// PartitionLink cuts the transport route between two hosts in both
// directions until HealLink.
func (in *Injector) PartitionLink(a, b topo.HostID) error {
	f, err := in.transportFabric()
	if err != nil {
		return err
	}
	p := pairOf(a, b)
	f.Partition(transport.Addr(p[0]), transport.Addr(p[1]))
	in.mu.Lock()
	in.partitioned[p] = true
	in.mu.Unlock()
	in.emit(Event{Kind: KindPartition, Resources: []string{routeResource(p)}})
	return nil
}

// HealLink restores a partitioned route.
func (in *Injector) HealLink(a, b topo.HostID) error {
	f, err := in.transportFabric()
	if err != nil {
		return err
	}
	p := pairOf(a, b)
	f.Heal(transport.Addr(p[0]), transport.Addr(p[1]))
	in.mu.Lock()
	delete(in.partitioned, p)
	in.mu.Unlock()
	in.emit(Event{Kind: KindHeal, Resources: []string{routeResource(p)}})
	return nil
}

// DelayRoute adds one-way delivery latency to the route between two
// hosts, keeping the route's loss and duplication as configured. The
// first delay of a route records its original config for RestoreRoute.
func (in *Injector) DelayRoute(a, b topo.HostID, d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("fault: negative route delay %v", d)
	}
	f, err := in.transportFabric()
	if err != nil {
		return err
	}
	p := pairOf(a, b)
	cfg := f.Route(transport.Addr(p[0]), transport.Addr(p[1]))
	in.mu.Lock()
	if _, already := in.delayed[p]; !already {
		in.delayed[p] = cfg
	}
	in.mu.Unlock()
	cfg.Latency = d
	f.SetRoute(transport.Addr(p[0]), transport.Addr(p[1]), cfg)
	in.emit(Event{Kind: KindDelayRoute, Resources: []string{routeResource(p)}})
	return nil
}

// RestoreRoute returns a delayed route to its original config.
func (in *Injector) RestoreRoute(a, b topo.HostID) error {
	f, err := in.transportFabric()
	if err != nil {
		return err
	}
	p := pairOf(a, b)
	in.mu.Lock()
	cfg, ok := in.delayed[p]
	delete(in.delayed, p)
	in.mu.Unlock()
	if !ok {
		return fmt.Errorf("fault: route %s was not delayed", routeResource(p))
	}
	f.SetRoute(transport.Addr(p[0]), transport.Addr(p[1]), cfg)
	return nil
}

// Partitioned returns the currently-cut host pairs, sorted.
func (in *Injector) Partitioned() [][2]topo.HostID {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([][2]topo.HostID, 0, len(in.partitioned))
	for p := range in.partitioned {
		out = append(out, [2]topo.HostID(p))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// healTransport heals every partition and restores every delayed route;
// part of RecoverAll's end-of-chaos cleanup.
func (in *Injector) healTransport() {
	in.mu.Lock()
	f := in.fabric
	parts := make([]hostPair, 0, len(in.partitioned))
	for p := range in.partitioned {
		parts = append(parts, p)
	}
	delayed := make([]hostPair, 0, len(in.delayed))
	for p := range in.delayed {
		delayed = append(delayed, p)
	}
	in.mu.Unlock()
	if f == nil {
		return
	}
	sort.Slice(parts, func(i, j int) bool { return routeResource(parts[i]) < routeResource(parts[j]) })
	sort.Slice(delayed, func(i, j int) bool { return routeResource(delayed[i]) < routeResource(delayed[j]) })
	for _, p := range parts {
		_ = in.HealLink(p[0], p[1])
	}
	for _, p := range delayed {
		_ = in.RestoreRoute(p[0], p[1])
	}
}
