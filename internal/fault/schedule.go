package fault

import (
	"fmt"
	"sort"
	"time"

	"qosres/internal/broker"
	"qosres/internal/topo"
)

// Step is one scheduled fault: at simulation time At, apply Kind to
// Target. Target is a resource ID for resource/link/shrink steps and a
// host ID for host steps; Factor is the capacity multiplier of shrink
// steps. Network steps (partition/heal/delay) name the route's two hosts
// in Target and Peer; Delay is the one-way latency of delay steps.
type Step struct {
	At     broker.Time
	Kind   Kind
	Target string
	Factor float64
	Peer   string
	Delay  time.Duration
}

// Schedule is a time-ordered fault script. Use Due to pop the steps
// that have come due and Injector.Apply to fire them.
type Schedule struct {
	steps []Step
	next  int
}

// NewSchedule sorts the steps by time and returns the schedule.
func NewSchedule(steps []Step) *Schedule {
	ss := make([]Step, len(steps))
	copy(ss, steps)
	sort.SliceStable(ss, func(i, j int) bool { return ss[i].At < ss[j].At })
	return &Schedule{steps: ss}
}

// Due returns the not-yet-fired steps with At <= now, advancing past
// them.
func (s *Schedule) Due(now broker.Time) []Step {
	start := s.next
	for s.next < len(s.steps) && s.steps[s.next].At <= now {
		s.next++
	}
	return s.steps[start:s.next]
}

// Remaining reports how many steps have not fired yet.
func (s *Schedule) Remaining() int { return len(s.steps) - s.next }

// Apply fires one scheduled step against the injector.
func (in *Injector) Apply(now broker.Time, st Step) error {
	switch st.Kind {
	case KindResourceDown, KindLinkDown:
		return in.FailResource(now, st.Target)
	case KindHostDown:
		return in.FailHost(now, topo.HostID(st.Target))
	case KindCapacityShrink:
		return in.ShrinkCapacity(now, st.Target, st.Factor)
	case KindRecover:
		return in.RecoverResource(now, st.Target)
	case KindCapacityRestore:
		return in.RestoreCapacity(now, st.Target)
	case KindPartition:
		return in.PartitionLink(topo.HostID(st.Target), topo.HostID(st.Peer))
	case KindHeal:
		return in.HealLink(topo.HostID(st.Target), topo.HostID(st.Peer))
	case KindDelayRoute:
		return in.DelayRoute(topo.HostID(st.Target), topo.HostID(st.Peer), st.Delay)
	default:
		return fmt.Errorf("fault: unknown step kind %q", st.Kind)
	}
}
