package fault

import (
	"fmt"
	"sort"

	"qosres/internal/broker"
	"qosres/internal/topo"
)

// Step is one scheduled fault: at simulation time At, apply Kind to
// Target. Target is a resource ID for resource/link/shrink steps and a
// host ID for host steps; Factor is the capacity multiplier of shrink
// steps.
type Step struct {
	At     broker.Time
	Kind   Kind
	Target string
	Factor float64
}

// Schedule is a time-ordered fault script. Use Due to pop the steps
// that have come due and Injector.Apply to fire them.
type Schedule struct {
	steps []Step
	next  int
}

// NewSchedule sorts the steps by time and returns the schedule.
func NewSchedule(steps []Step) *Schedule {
	ss := make([]Step, len(steps))
	copy(ss, steps)
	sort.SliceStable(ss, func(i, j int) bool { return ss[i].At < ss[j].At })
	return &Schedule{steps: ss}
}

// Due returns the not-yet-fired steps with At <= now, advancing past
// them.
func (s *Schedule) Due(now broker.Time) []Step {
	start := s.next
	for s.next < len(s.steps) && s.steps[s.next].At <= now {
		s.next++
	}
	return s.steps[start:s.next]
}

// Remaining reports how many steps have not fired yet.
func (s *Schedule) Remaining() int { return len(s.steps) - s.next }

// Apply fires one scheduled step against the injector.
func (in *Injector) Apply(now broker.Time, st Step) error {
	switch st.Kind {
	case KindResourceDown, KindLinkDown:
		return in.FailResource(now, st.Target)
	case KindHostDown:
		return in.FailHost(now, topo.HostID(st.Target))
	case KindCapacityShrink:
		return in.ShrinkCapacity(now, st.Target, st.Factor)
	case KindRecover:
		return in.RecoverResource(now, st.Target)
	case KindCapacityRestore:
		return in.RestoreCapacity(now, st.Target)
	default:
		return fmt.Errorf("fault: unknown step kind %q", st.Kind)
	}
}
