package fault

import (
	"math/rand"
	"testing"

	"qosres/internal/broker"
	"qosres/internal/obs"
	"qosres/internal/topo"
)

// world builds a pool over a 3-host line topology A -L1- B -L2- C with a
// cpu broker per host and a broker per link, all capacity 100.
func world(t *testing.T) (*broker.Pool, *topo.Topology) {
	t.Helper()
	tp := topo.MustNew(
		[]topo.HostID{"A", "B", "C"},
		[]topo.Link{{ID: "L1", A: "A", B: "B"}, {ID: "L2", A: "B", B: "C"}},
	)
	pool := broker.NewPool(tp)
	for _, h := range tp.Hosts() {
		if _, err := pool.AddLocal("cpu", h, 100); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range tp.Links() {
		if _, err := pool.AddLink(l.ID, 100); err != nil {
			t.Fatal(err)
		}
	}
	return pool, tp
}

func avail(t *testing.T, pool *broker.Pool, r string) float64 {
	t.Helper()
	b, ok := pool.Get(r)
	if !ok {
		t.Fatalf("resource %s missing", r)
	}
	return b.Available()
}

func TestFailAndRecoverResource(t *testing.T) {
	pool, tp := world(t)
	in := New(pool, tp)
	var events []Event
	in.OnFault(func(ev Event) { events = append(events, ev) })

	if err := in.FailResource(1, "cpu@A"); err != nil {
		t.Fatal(err)
	}
	if got := avail(t, pool, "cpu@A"); got != 0 {
		t.Fatalf("failed cpu@A available %g", got)
	}
	if got := in.Active(); len(got) != 1 || got[0] != "cpu@A" {
		t.Fatalf("active = %v", got)
	}
	if err := in.RecoverResource(2, "cpu@A"); err != nil {
		t.Fatal(err)
	}
	if got := avail(t, pool, "cpu@A"); got != 100 {
		t.Fatalf("recovered cpu@A available %g", got)
	}
	if len(in.Active()) != 0 {
		t.Fatalf("active = %v", in.Active())
	}
	if len(events) != 2 || events[0].Kind != KindResourceDown || events[1].Kind != KindRecover {
		t.Fatalf("events = %v", events)
	}
	if err := in.FailResource(3, "nope"); err == nil {
		t.Fatal("unknown resource accepted")
	}
}

func TestFailLinkUsesLinkKind(t *testing.T) {
	pool, tp := world(t)
	in := New(pool, tp)
	var last Event
	in.OnFault(func(ev Event) { last = ev })
	if err := in.FailLink(1, "L1"); err != nil {
		t.Fatal(err)
	}
	if last.Kind != KindLinkDown || last.Resources[0] != "link:L1" {
		t.Fatalf("event = %v", last)
	}
	if got := avail(t, pool, "link:L1"); got != 0 {
		t.Fatalf("failed link available %g", got)
	}
}

func TestFailHostTakesResourcesAndIncidentLinks(t *testing.T) {
	pool, tp := world(t)
	in := New(pool, tp)
	var last Event
	in.OnFault(func(ev Event) { last = ev })

	if err := in.FailHost(1, "B"); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"cpu@B": true, "link:L1": true, "link:L2": true}
	if last.Kind != KindHostDown || len(last.Resources) != len(want) {
		t.Fatalf("event = %v, want kinds of %v", last, want)
	}
	for _, r := range last.Resources {
		if !want[r] {
			t.Fatalf("unexpected resource %s in %v", r, last.Resources)
		}
		if got := avail(t, pool, r); got != 0 {
			t.Fatalf("%s available %g after host failure", r, got)
		}
	}
	// The other hosts' resources are untouched.
	if got := avail(t, pool, "cpu@A"); got != 100 {
		t.Fatalf("cpu@A available %g", got)
	}
	if err := in.RecoverHost(2, "B"); err != nil {
		t.Fatal(err)
	}
	for r := range want {
		if got := avail(t, pool, r); got != 100 {
			t.Fatalf("%s available %g after host recovery", r, got)
		}
	}
}

func TestShrinkAndRestoreCapacity(t *testing.T) {
	pool, tp := world(t)
	in := New(pool, tp)
	if err := in.ShrinkCapacity(1, "cpu@A", 0.5); err != nil {
		t.Fatal(err)
	}
	if got := avail(t, pool, "cpu@A"); got != 50 {
		t.Fatalf("shrunk available %g", got)
	}
	if got := in.Shrunk(); len(got) != 1 || got[0] != "cpu@A" {
		t.Fatalf("shrunk = %v", got)
	}
	// A second shrink compounds but keeps the first-recorded original.
	if err := in.ShrinkCapacity(2, "cpu@A", 0.5); err != nil {
		t.Fatal(err)
	}
	if got := avail(t, pool, "cpu@A"); got != 25 {
		t.Fatalf("double-shrunk available %g", got)
	}
	if err := in.RestoreCapacity(3, "cpu@A"); err != nil {
		t.Fatal(err)
	}
	if got := avail(t, pool, "cpu@A"); got != 100 {
		t.Fatalf("restored available %g", got)
	}
	if err := in.RestoreCapacity(4, "cpu@A"); err == nil {
		t.Fatal("restore of unshrunk resource accepted")
	}
	if err := in.ShrinkCapacity(5, "cpu@A", 1.5); err == nil {
		t.Fatal("shrink factor over 1 accepted")
	}
}

func TestRecoverAllRestoresOriginalShape(t *testing.T) {
	pool, tp := world(t)
	in := New(pool, tp)
	if err := in.FailHost(1, "B"); err != nil {
		t.Fatal(err)
	}
	if err := in.ShrinkCapacity(1, "cpu@A", 0.4); err != nil {
		t.Fatal(err)
	}
	in.RecoverAll(2)
	if len(in.Active()) != 0 || len(in.Shrunk()) != 0 {
		t.Fatalf("residual faults: down=%v shrunk=%v", in.Active(), in.Shrunk())
	}
	for _, b := range pool.LocalBrokers() {
		if b.Available() != 100 || b.Capacity() != 100 {
			t.Fatalf("%s not whole: cap %g avail %g", b.Resource(), b.Capacity(), b.Available())
		}
	}
}

func TestScheduleFiresInOrder(t *testing.T) {
	pool, tp := world(t)
	in := New(pool, tp)
	sched := NewSchedule([]Step{
		{At: 5, Kind: KindRecover, Target: "cpu@A"},
		{At: 2, Kind: KindResourceDown, Target: "cpu@A"},
		{At: 3, Kind: KindCapacityShrink, Target: "link:L1", Factor: 0.5},
	})
	if got := sched.Due(1); len(got) != 0 {
		t.Fatalf("premature steps: %v", got)
	}
	due := sched.Due(3)
	if len(due) != 2 || due[0].Kind != KindResourceDown || due[1].Kind != KindCapacityShrink {
		t.Fatalf("due(3) = %v", due)
	}
	for _, st := range due {
		if err := in.Apply(3, st); err != nil {
			t.Fatal(err)
		}
	}
	if got := avail(t, pool, "cpu@A"); got != 0 {
		t.Fatalf("cpu@A available %g", got)
	}
	if got := avail(t, pool, "link:L1"); got != 50 {
		t.Fatalf("link:L1 available %g", got)
	}
	due = sched.Due(10)
	if len(due) != 1 || due[0].Kind != KindRecover {
		t.Fatalf("due(10) = %v", due)
	}
	if err := in.Apply(10, due[0]); err != nil {
		t.Fatal(err)
	}
	if got := avail(t, pool, "cpu@A"); got != 100 {
		t.Fatalf("cpu@A available %g after recover", got)
	}
	if sched.Remaining() != 0 {
		t.Fatalf("remaining = %d", sched.Remaining())
	}
}

func TestRandomWalkIsSeededAndBounded(t *testing.T) {
	cfg := DefaultRandomConfig()
	run := func(seed int64) ([]Event, int) {
		pool, tp := world(t)
		in := New(pool, tp)
		var events []Event
		in.OnFault(func(ev Event) { events = append(events, ev) })
		rng := rand.New(rand.NewSource(seed))
		maxDown := 0
		for i := 0; i < 500; i++ {
			in.RandomStep(broker.Time(i), rng, cfg)
			if n := len(in.Active()); n > maxDown {
				maxDown = n
			}
		}
		in.RecoverAll(500)
		for _, b := range pool.LocalBrokers() {
			if b.Available() != 100 || b.Capacity() != 100 {
				t.Fatalf("%s not whole after walk: cap %g avail %g",
					b.Resource(), b.Capacity(), b.Available())
			}
		}
		return events, maxDown
	}

	e1, max1 := run(42)
	e2, _ := run(42)
	if len(e1) == 0 {
		t.Fatal("walk injected nothing in 500 steps")
	}
	if max1 > cfg.MaxActive {
		t.Fatalf("walk exceeded MaxActive: %d > %d", max1, cfg.MaxActive)
	}
	if len(e1) != len(e2) {
		t.Fatalf("same seed, different walks: %d vs %d events", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i].Kind != e2[i].Kind || e1[i].Resources[0] != e2[i].Resources[0] {
			t.Fatalf("same seed diverged at event %d: %v vs %v", i, e1[i], e2[i])
		}
	}
	e3, _ := run(7)
	same := len(e1) == len(e3)
	if same {
		for i := range e1 {
			if e1[i].Kind != e3[i].Kind || e1[i].Resources[0] != e3[i].Resources[0] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical walks")
	}
}

func TestInjectorCountsByKind(t *testing.T) {
	pool, tp := world(t)
	reg := obs.New()
	in := New(pool, tp)
	in.Instrument(obs.NewFaultMetrics(reg))
	if err := in.FailResource(1, "cpu@A"); err != nil {
		t.Fatal(err)
	}
	if err := in.FailLink(1, "L1"); err != nil {
		t.Fatal(err)
	}
	if err := in.RecoverResource(2, "cpu@A"); err != nil {
		t.Fatal(err)
	}
	check := func(kind string, want float64) {
		t.Helper()
		c := reg.Counter(obs.MetricFaultInjected, "", "kind", kind)
		if got := c.Value(); got != want {
			t.Fatalf("%s count = %g, want %g", kind, got, want)
		}
	}
	check(string(KindResourceDown), 1)
	check(string(KindLinkDown), 1)
	check(string(KindRecover), 1)
}
