package fault

// Surge load: external contention that consumes capacity through the
// ordinary reservation surface without failing anything — background
// demand arriving from outside the session population. A surge raises
// utilization (the brownout pressure the adaptation layer watches) but
// never invalidates existing holds, so the repair layer has nothing to
// do with it: only the adaptation controller reacts, by downgrading
// victims until the hot resource cools.

import (
	"fmt"
	"sort"

	"qosres/internal/broker"
)

const (
	// KindSurge reserves a slice of a resource's free capacity as
	// external background load.
	KindSurge Kind = "surge"
	// KindSurgeEnd releases a surge's hold.
	KindSurgeEnd Kind = "surge_end"
)

// SurgeLoad reserves fraction (in (0, 1]) of a resource's CURRENT free
// capacity as an external background hold. At most one surge per
// resource; a second call on a surged resource is an error. The hold is
// unleased — it persists until EndSurge or RecoverAll.
func (in *Injector) SurgeLoad(now broker.Time, resource string, fraction float64) error {
	if fraction <= 0 || fraction > 1 {
		return fmt.Errorf("fault: surge fraction %g outside (0, 1]", fraction)
	}
	l, err := in.local(resource)
	if err != nil {
		return err
	}
	in.mu.Lock()
	_, already := in.surges[resource]
	in.mu.Unlock()
	if already {
		return fmt.Errorf("fault: resource %s already surged", resource)
	}
	avail := l.Available()
	if avail <= 0 {
		return fmt.Errorf("fault: resource %s has no free capacity to surge", resource)
	}
	id, err := l.Reserve(now, avail*fraction)
	if err != nil {
		return err
	}
	in.mu.Lock()
	in.surges[resource] = id
	in.mu.Unlock()
	in.emit(Event{Kind: KindSurge, Resources: []string{resource}})
	return nil
}

// EndSurge releases a resource's surge hold.
func (in *Injector) EndSurge(now broker.Time, resource string) error {
	in.mu.Lock()
	id, ok := in.surges[resource]
	delete(in.surges, resource)
	in.mu.Unlock()
	if !ok {
		return fmt.Errorf("fault: resource %s is not surged", resource)
	}
	l, err := in.local(resource)
	if err != nil {
		return err
	}
	if err := l.Release(now, id); err != nil {
		return err
	}
	in.emit(Event{Kind: KindSurgeEnd, Resources: []string{resource}})
	return nil
}

// Surged returns the currently-surged resources, sorted.
func (in *Injector) Surged() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.surges))
	for r := range in.surges {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}
