package fault

import (
	"fmt"

	"qosres/internal/broker"
	"qosres/internal/topo"
)

// KindCrashRestart crash-restarts one host's proxy process: the host
// drops off the fabric, forgets its in-memory book and idempotency
// table, and recovers both from its write-ahead log before rejoining.
const KindCrashRestart Kind = "crash_restart"

// Restarter is the recovery surface the injector drives for
// crash/restart events — in practice proxy.Runtime, whose CrashRestart
// replays the write-ahead log and reconciles in-doubt prepares before
// the host serves again.
type Restarter interface {
	CrashRestart(host topo.HostID) error
}

// SetRestarter attaches the crash/restart surface. Without one,
// CrashRestart errors and the random walk's crash branch is a no-op.
func (in *Injector) SetRestarter(r Restarter) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.restarter = r
}

// CrashRestart kills and recovers one host's proxy through the attached
// restarter. The emitted event names the host's resources, mirroring
// KindHostDown, so downstream consumers can correlate the outage — but
// chaos harnesses should NOT route it into the repair sweep: recovery
// already restored the book, and the committed holds it restored are
// intact by construction.
func (in *Injector) CrashRestart(now broker.Time, host topo.HostID) error {
	_ = now // restart is instantaneous in simulated time; the runtime's clock governs recovery
	in.mu.Lock()
	r := in.restarter
	in.mu.Unlock()
	if r == nil {
		return fmt.Errorf("fault: no restarter attached (SetRestarter)")
	}
	if err := r.CrashRestart(host); err != nil {
		return fmt.Errorf("fault: crash-restart %s: %w", host, err)
	}
	in.emit(Event{Kind: KindCrashRestart, Resources: in.hostResources(host)})
	return nil
}
