package fault

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"qosres/internal/broker"
	"qosres/internal/transport"
)

func brokerTime(step int) broker.Time { return broker.Time(step) }

// fabricWorld attaches a fabric with live endpoints on hosts A, B, C to
// an injector over the standard 3-host world. Each endpoint echoes its
// payload back.
func fabricWorld(t *testing.T) (*Injector, *transport.Fabric) {
	t.Helper()
	pool, tp := world(t)
	in := New(pool, tp)
	f := transport.New(transport.Options{})
	for _, h := range tp.Hosts() {
		ep := f.Endpoint(transport.Addr(h), 8)
		go func() {
			for {
				select {
				case d := <-ep.Inbox():
					d.Reply(d.Payload)
					d.Done()
				case <-ep.Done():
					return
				}
			}
		}()
	}
	in.SetTransport(f)
	return in, f
}

func call(f *transport.Fabric, from, to transport.Addr) error {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := f.Call(ctx, from, to, "ping", "hi")
	return err
}

func TestPartitionAndHealLink(t *testing.T) {
	in, f := fabricWorld(t)
	var events []Event
	in.OnFault(func(ev Event) { events = append(events, ev) })

	if err := call(f, "A", "B"); err != nil {
		t.Fatalf("pre-partition call failed: %v", err)
	}
	if err := in.PartitionLink("B", "A"); err != nil {
		t.Fatal(err)
	}
	if got := in.Partitioned(); len(got) != 1 || got[0][0] != "A" || got[0][1] != "B" {
		t.Fatalf("partitioned = %v", got)
	}
	if err := call(f, "A", "B"); err == nil {
		t.Fatal("call crossed a partitioned route")
	}
	if err := in.HealLink("A", "B"); err != nil {
		t.Fatal(err)
	}
	if len(in.Partitioned()) != 0 {
		t.Fatalf("partitioned after heal = %v", in.Partitioned())
	}
	if err := call(f, "A", "B"); err != nil {
		t.Fatalf("post-heal call failed: %v", err)
	}
	if len(events) != 2 || events[0].Kind != KindPartition || events[1].Kind != KindHeal {
		t.Fatalf("events = %v", events)
	}
	if events[0].Resources[0] != "route:A|B" {
		t.Fatalf("partition resource = %v", events[0].Resources)
	}
}

func TestDelayAndRestoreRoute(t *testing.T) {
	in, f := fabricWorld(t)
	if err := in.DelayRoute("A", "B", 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := call(f, "A", "B"); err != nil {
		t.Fatalf("delayed call failed: %v", err)
	}
	// Request and reply each cross the route once: >= 2x one-way latency.
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("delayed round trip took only %v", elapsed)
	}
	if err := in.RestoreRoute("A", "B"); err != nil {
		t.Fatal(err)
	}
	if cfg := f.Route("A", "B"); cfg.Latency != 0 {
		t.Fatalf("restored route latency = %v", cfg.Latency)
	}
	if err := in.RestoreRoute("A", "B"); err == nil {
		t.Fatal("double restore accepted")
	}
	if err := in.DelayRoute("A", "B", -time.Millisecond); err == nil {
		t.Fatal("negative delay accepted")
	}
}

func TestRecoverAllHealsTransport(t *testing.T) {
	in, f := fabricWorld(t)
	if err := in.PartitionLink("A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := in.DelayRoute("B", "C", 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := in.FailResource(1, "cpu@A"); err != nil {
		t.Fatal(err)
	}
	in.RecoverAll(2)
	if len(in.Partitioned()) != 0 {
		t.Fatalf("partitions survived RecoverAll: %v", in.Partitioned())
	}
	if cfg := f.Route("B", "C"); cfg.Latency != 0 {
		t.Fatalf("delay survived RecoverAll: %v", cfg.Latency)
	}
	if len(in.Active()) != 0 {
		t.Fatalf("downed survived RecoverAll: %v", in.Active())
	}
	if err := call(f, "A", "B"); err != nil {
		t.Fatalf("post-RecoverAll call failed: %v", err)
	}
}

func TestNetworkFaultsNeedFabric(t *testing.T) {
	pool, tp := world(t)
	in := New(pool, tp)
	if err := in.PartitionLink("A", "B"); err == nil {
		t.Fatal("partition without fabric accepted")
	}
	if err := in.HealLink("A", "B"); err == nil {
		t.Fatal("heal without fabric accepted")
	}
	if err := in.DelayRoute("A", "B", time.Millisecond); err == nil {
		t.Fatal("delay without fabric accepted")
	}
}

func TestRandomWalkPartitionsAndHeals(t *testing.T) {
	in, _ := fabricWorld(t)
	rng := rand.New(rand.NewSource(7))
	cfg := RandomConfig{PartitionProb: 0.5, HealProb: 0.3, MaxPartitions: 2}
	var cuts, heals int
	for step := 0; step < 400; step++ {
		ev := in.RandomStep(brokerTime(step), rng, cfg)
		if ev == nil {
			continue
		}
		switch ev.Kind {
		case KindPartition:
			cuts++
		case KindHeal:
			heals++
		default:
			t.Fatalf("unexpected kind %s", ev.Kind)
		}
		if got := len(in.Partitioned()); got > 2 {
			t.Fatalf("MaxPartitions exceeded: %d cut", got)
		}
	}
	if cuts == 0 || heals == 0 {
		t.Fatalf("walk produced cuts=%d heals=%d", cuts, heals)
	}
}

// TestRandomWalkReplaysWithZeroNetworkProbs pins backward compatibility:
// with the network probabilities at zero, a walk over the new config
// replays the exact event sequence of the pre-network config.
func TestRandomWalkReplaysWithZeroNetworkProbs(t *testing.T) {
	run := func(cfg RandomConfig) []Event {
		pool, tp := world(t)
		in := New(pool, tp)
		rng := rand.New(rand.NewSource(42))
		var out []Event
		for step := 0; step < 200; step++ {
			if ev := in.RandomStep(brokerTime(step), rng, cfg); ev != nil {
				out = append(out, *ev)
			}
		}
		return out
	}
	base := DefaultRandomConfig()
	got := run(base)
	want := run(base) // identical config: must replay bit-for-bit
	if len(got) != len(want) {
		t.Fatalf("replay lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Kind != want[i].Kind || got[i].Resources[0] != want[i].Resources[0] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, got[i], want[i])
		}
	}
}
