package fault

import (
	"math/rand"
	"strings"

	"qosres/internal/broker"
)

// RandomConfig parameterizes the seeded random fault walk. Each
// RandomStep rolls one action: recover/restore something active with
// RecoverProb, otherwise fail a resource with FailProb (bounded by
// MaxActive concurrent outages), otherwise shrink a capacity with
// ShrinkProb. Probabilities are evaluated in that order against one
// uniform draw, so their sum should stay at or below 1.
type RandomConfig struct {
	// FailProb is the per-step probability of failing one more resource.
	FailProb float64
	// ShrinkProb is the per-step probability of shrinking one capacity.
	ShrinkProb float64
	// RecoverProb is the per-step probability of recovering one downed
	// resource (or restoring one shrunk capacity when nothing is down).
	RecoverProb float64
	// MaxActive bounds the number of concurrently-downed resources;
	// 0 means at most one.
	MaxActive int
	// ShrinkLo and ShrinkHi bound the uniform capacity multiplier of
	// shrink events; zero values default to [0.3, 0.8).
	ShrinkLo, ShrinkHi float64
}

// DefaultRandomConfig is a moderately hostile walk: something is usually
// broken, but rarely everything at once.
func DefaultRandomConfig() RandomConfig {
	return RandomConfig{
		FailProb:    0.25,
		ShrinkProb:  0.15,
		RecoverProb: 0.35,
		MaxActive:   2,
		ShrinkLo:    0.3,
		ShrinkHi:    0.8,
	}
}

// RandomStep advances the random walk by one step using the caller's
// seeded source, returning the applied event (nil when the dice said
// "do nothing" or no eligible target existed). Determinism: with the
// same pool contents, topology, rng state, and call sequence, the walk
// replays identically.
func (in *Injector) RandomStep(now broker.Time, rng *rand.Rand, cfg RandomConfig) *Event {
	roll := rng.Float64()
	switch {
	case roll < cfg.RecoverProb:
		if downed := in.Active(); len(downed) > 0 {
			r := downed[rng.Intn(len(downed))]
			if in.RecoverResource(now, r) == nil {
				return &Event{Kind: KindRecover, Resources: []string{r}}
			}
			return nil
		}
		if shrunk := in.Shrunk(); len(shrunk) > 0 {
			r := shrunk[rng.Intn(len(shrunk))]
			if in.RestoreCapacity(now, r) == nil {
				return &Event{Kind: KindCapacityRestore, Resources: []string{r}}
			}
		}
		return nil
	case roll < cfg.RecoverProb+cfg.FailProb:
		maxActive := cfg.MaxActive
		if maxActive <= 0 {
			maxActive = 1
		}
		if len(in.Active()) >= maxActive {
			return nil
		}
		candidates := in.healthyResources()
		if len(candidates) == 0 {
			return nil
		}
		r := candidates[rng.Intn(len(candidates))]
		if in.FailResource(now, r) != nil {
			return nil
		}
		kind := KindResourceDown
		if strings.HasPrefix(r, "link:") {
			kind = KindLinkDown
		}
		return &Event{Kind: kind, Resources: []string{r}}
	case roll < cfg.RecoverProb+cfg.FailProb+cfg.ShrinkProb:
		candidates := in.healthyResources()
		if len(candidates) == 0 {
			return nil
		}
		lo, hi := cfg.ShrinkLo, cfg.ShrinkHi
		if lo <= 0 || hi <= lo || hi >= 1 {
			lo, hi = 0.3, 0.8
		}
		r := candidates[rng.Intn(len(candidates))]
		factor := lo + rng.Float64()*(hi-lo)
		if in.ShrinkCapacity(now, r, factor) != nil {
			return nil
		}
		return &Event{Kind: KindCapacityShrink, Resources: []string{r}}
	default:
		return nil
	}
}

// healthyResources lists the pool's local/link resources that are not
// currently downed, in sorted (deterministic) order.
func (in *Injector) healthyResources() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	var out []string
	for _, b := range in.pool.LocalBrokers() {
		if !in.downed[b.Resource()] {
			out = append(out, b.Resource())
		}
	}
	return out
}
