package fault

import (
	"math/rand"
	"strings"

	"qosres/internal/broker"
)

// RandomConfig parameterizes the seeded random fault walk. Each
// RandomStep rolls one action: recover/restore something active with
// RecoverProb, otherwise fail a resource with FailProb (bounded by
// MaxActive concurrent outages), otherwise shrink a capacity with
// ShrinkProb. Probabilities are evaluated in that order against one
// uniform draw, so their sum should stay at or below 1.
type RandomConfig struct {
	// FailProb is the per-step probability of failing one more resource.
	FailProb float64
	// ShrinkProb is the per-step probability of shrinking one capacity.
	ShrinkProb float64
	// RecoverProb is the per-step probability of recovering one downed
	// resource (or restoring one shrunk capacity when nothing is down).
	RecoverProb float64
	// MaxActive bounds the number of concurrently-downed resources;
	// 0 means at most one.
	MaxActive int
	// ShrinkLo and ShrinkHi bound the uniform capacity multiplier of
	// shrink events; zero values default to [0.3, 0.8).
	ShrinkLo, ShrinkHi float64
	// PartitionProb is the per-step probability of cutting the transport
	// route between one more random host pair (needs a topology and an
	// attached fabric; silently skipped otherwise).
	PartitionProb float64
	// HealProb is the per-step probability of healing one cut route.
	HealProb float64
	// MaxPartitions bounds the number of concurrently-cut routes;
	// 0 means at most one.
	MaxPartitions int
	// CrashProb is the per-step probability of crash-restarting one
	// random host's proxy (needs a topology and an attached restarter;
	// silently skipped otherwise). The crash is evaluated after the
	// probabilities above, so those replay identically whether or not
	// crashes are enabled.
	CrashProb float64
	// SurgeProb is the per-step probability of a surge-load action:
	// when surges are active, end one; otherwise reserve 50-90% of a
	// random healthy resource's free capacity as external background
	// load (brownout pressure for the adaptation layer). Evaluated last
	// in the ladder.
	SurgeProb float64
}

// DefaultRandomConfig is a moderately hostile walk: something is usually
// broken, but rarely everything at once.
func DefaultRandomConfig() RandomConfig {
	return RandomConfig{
		FailProb:    0.25,
		ShrinkProb:  0.15,
		RecoverProb: 0.35,
		MaxActive:   2,
		ShrinkLo:    0.3,
		ShrinkHi:    0.8,
	}
}

// RandomStep advances the random walk by one step using the caller's
// seeded source, returning the applied event (nil when the dice said
// "do nothing" or no eligible target existed). Determinism: with the
// same pool contents, topology, rng state, and call sequence, the walk
// replays identically.
func (in *Injector) RandomStep(now broker.Time, rng *rand.Rand, cfg RandomConfig) *Event {
	roll := rng.Float64()
	switch {
	case roll < cfg.RecoverProb:
		if downed := in.Active(); len(downed) > 0 {
			r := downed[rng.Intn(len(downed))]
			if in.RecoverResource(now, r) == nil {
				return &Event{Kind: KindRecover, Resources: []string{r}}
			}
			return nil
		}
		if shrunk := in.Shrunk(); len(shrunk) > 0 {
			r := shrunk[rng.Intn(len(shrunk))]
			if in.RestoreCapacity(now, r) == nil {
				return &Event{Kind: KindCapacityRestore, Resources: []string{r}}
			}
		}
		return nil
	case roll < cfg.RecoverProb+cfg.FailProb:
		maxActive := cfg.MaxActive
		if maxActive <= 0 {
			maxActive = 1
		}
		if len(in.Active()) >= maxActive {
			return nil
		}
		candidates := in.healthyResources()
		if len(candidates) == 0 {
			return nil
		}
		r := candidates[rng.Intn(len(candidates))]
		if in.FailResource(now, r) != nil {
			return nil
		}
		kind := KindResourceDown
		if strings.HasPrefix(r, "link:") {
			kind = KindLinkDown
		}
		return &Event{Kind: kind, Resources: []string{r}}
	case roll < cfg.RecoverProb+cfg.FailProb+cfg.ShrinkProb:
		candidates := in.healthyResources()
		if len(candidates) == 0 {
			return nil
		}
		lo, hi := cfg.ShrinkLo, cfg.ShrinkHi
		if lo <= 0 || hi <= lo || hi >= 1 {
			lo, hi = 0.3, 0.8
		}
		r := candidates[rng.Intn(len(candidates))]
		factor := lo + rng.Float64()*(hi-lo)
		if in.ShrinkCapacity(now, r, factor) != nil {
			return nil
		}
		return &Event{Kind: KindCapacityShrink, Resources: []string{r}}
	case roll < cfg.RecoverProb+cfg.FailProb+cfg.ShrinkProb+cfg.HealProb:
		cut := in.Partitioned()
		if len(cut) == 0 {
			return nil
		}
		p := cut[rng.Intn(len(cut))]
		if in.HealLink(p[0], p[1]) != nil {
			return nil
		}
		return &Event{Kind: KindHeal, Resources: []string{routeResource(pairOf(p[0], p[1]))}}
	case roll < cfg.RecoverProb+cfg.FailProb+cfg.ShrinkProb+cfg.HealProb+cfg.PartitionProb:
		maxParts := cfg.MaxPartitions
		if maxParts <= 0 {
			maxParts = 1
		}
		if len(in.Partitioned()) >= maxParts {
			return nil
		}
		pairs := in.uncutHostPairs()
		if len(pairs) == 0 {
			return nil
		}
		p := pairs[rng.Intn(len(pairs))]
		if in.PartitionLink(p[0], p[1]) != nil {
			return nil
		}
		return &Event{Kind: KindPartition, Resources: []string{routeResource(p)}}
	case roll < cfg.RecoverProb+cfg.FailProb+cfg.ShrinkProb+cfg.HealProb+cfg.PartitionProb+cfg.CrashProb:
		in.mu.Lock()
		restarter := in.restarter
		topology := in.topology
		in.mu.Unlock()
		if restarter == nil || topology == nil {
			return nil
		}
		hosts := topology.Hosts()
		if len(hosts) == 0 {
			return nil
		}
		h := hosts[rng.Intn(len(hosts))]
		if in.CrashRestart(now, h) != nil {
			return nil
		}
		return &Event{Kind: KindCrashRestart, Resources: in.hostResources(h)}
	case roll < cfg.RecoverProb+cfg.FailProb+cfg.ShrinkProb+cfg.HealProb+cfg.PartitionProb+cfg.CrashProb+cfg.SurgeProb:
		if surged := in.Surged(); len(surged) > 0 {
			r := surged[rng.Intn(len(surged))]
			if in.EndSurge(now, r) != nil {
				return nil
			}
			return &Event{Kind: KindSurgeEnd, Resources: []string{r}}
		}
		candidates := in.healthyResources()
		if len(candidates) == 0 {
			return nil
		}
		r := candidates[rng.Intn(len(candidates))]
		fraction := 0.5 + rng.Float64()*0.4
		if in.SurgeLoad(now, r, fraction) != nil {
			return nil
		}
		return &Event{Kind: KindSurge, Resources: []string{r}}
	default:
		return nil
	}
}

// uncutHostPairs lists the topology's host pairs whose route is not
// currently partitioned, in sorted (deterministic) order. Empty without
// a topology or an attached fabric.
func (in *Injector) uncutHostPairs() []hostPair {
	in.mu.Lock()
	fabric := in.fabric
	topology := in.topology
	in.mu.Unlock()
	if fabric == nil || topology == nil {
		return nil
	}
	hosts := topology.Hosts()
	var out []hostPair
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := 0; i < len(hosts); i++ {
		for j := i + 1; j < len(hosts); j++ {
			p := pairOf(hosts[i], hosts[j])
			if !in.partitioned[p] {
				out = append(out, p)
			}
		}
	}
	return out
}

// healthyResources lists the pool's local/link resources that are not
// currently downed, in sorted (deterministic) order.
func (in *Injector) healthyResources() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	var out []string
	for _, b := range in.pool.LocalBrokers() {
		if !in.downed[b.Resource()] {
			out = append(out, b.Resource())
		}
	}
	return out
}
