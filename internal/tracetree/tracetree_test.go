package tracetree

import (
	"strings"
	"testing"

	"qosres/internal/obs"
	"qosres/internal/trace"
)

// span fabricates one SpanEnd event.
func span(tid, sid, parent, name, scope, status string, dur float64) trace.Event {
	return trace.Event{
		Kind: trace.SpanEnd, TraceID: tid, SpanID: sid, ParentID: parent,
		Stage: name, Scope: scope, Status: status, Duration: dur,
	}
}

// TestRoundTripRecorderToForest pins the full pipeline: spans recorded
// by the obs recorder, exported through the Sink into a Collector, and
// reconstructed by FromEvents come back as one complete tree with the
// recorded hierarchy, statuses, and events.
func TestRoundTripRecorderToForest(t *testing.T) {
	col := &Collector{}
	rec := obs.NewTraceRecorder(nil, obs.TraceOptions{Sample: 1, Sink: NewSink(col)})

	root := rec.Root(obs.StageEstablish, "H1")
	reserve := root.Child(obs.StageReserve, "H1")
	call := reserve.Child("prepare", "H1->H2")
	call.Event(obs.EventRetry, "attempt 2")
	remote := rec.ChildOf(call.Context(), "prepare", "H2")
	remote.End()
	call.EndStatus("timeout")
	reserve.End()
	root.End()

	forest := FromEvents(col.Events())
	if !forest.Complete() {
		t.Fatalf("round-tripped forest incomplete: %+v", forest)
	}
	if len(forest.Trees) != 1 {
		t.Fatalf("forest has %d trees, want 1", len(forest.Trees))
	}
	tree := forest.Trees[0]
	if tree.Spans != 4 || tree.Orphans != 0 {
		t.Fatalf("tree spans/orphans = %d/%d, want 4/0", tree.Spans, tree.Orphans)
	}
	if tree.Root == nil || tree.Root.Name != obs.StageEstablish {
		t.Fatalf("root = %+v, want %s", tree.Root, obs.StageEstablish)
	}
	if !tree.Errored() {
		t.Error("tree containing a timeout span not Errored")
	}
	// Hierarchy: establish > reserve > prepare(call) > prepare(remote).
	if len(tree.Root.Children) != 1 || tree.Root.Children[0].Name != obs.StageReserve {
		t.Fatalf("root children = %+v, want one %s", tree.Root.Children, obs.StageReserve)
	}
	callNode := tree.Root.Children[0].Children[0]
	if callNode.Scope != "H1->H2" || callNode.Status != "timeout" {
		t.Fatalf("call node = %+v", callNode)
	}
	if len(callNode.Events) != 1 || callNode.Events[0].Stage != obs.EventRetry {
		t.Fatalf("call node events = %+v, want one retry", callNode.Events)
	}
	if len(callNode.Children) != 1 || callNode.Children[0].Scope != "H2" {
		t.Fatalf("participant node = %+v, want prepare@H2", callNode.Children)
	}
}

// TestFromEventsDetectsBrokenTrees pins the completeness counters:
// orphan spans, rootless traces, multi-root traces, and dangling
// events are each detected and fail Complete().
func TestFromEventsDetectsBrokenTrees(t *testing.T) {
	cases := []struct {
		name   string
		events []trace.Event
		check  func(f *Forest) bool
	}{
		{"orphan span", []trace.Event{
			span("t1", "s1", "", "establish", "H1", "ok", 1),
			span("t1", "s2", "missing", "prepare", "H2", "ok", 1),
		}, func(f *Forest) bool { return f.OrphanSpans == 1 }},
		{"rootless trace", []trace.Event{
			span("t1", "s2", "s1", "prepare", "H2", "ok", 1),
		}, func(f *Forest) bool { return f.Rootless == 1 && f.OrphanSpans == 1 }},
		{"multi-root trace", []trace.Event{
			span("t1", "s1", "", "establish", "H1", "ok", 1),
			span("t1", "s2", "", "establish", "H1", "ok", 1),
		}, func(f *Forest) bool { return f.MultiRoot == 1 }},
		{"dangling event", []trace.Event{
			span("t1", "s1", "", "establish", "H1", "ok", 1),
			{Kind: trace.SpanEvent, TraceID: "t1", SpanID: "nope", Stage: "retry"},
		}, func(f *Forest) bool { return f.DanglingEvents == 1 && f.Complete() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := FromEvents(tc.events)
			if !tc.check(f) {
				t.Fatalf("counters = %+v", *f)
			}
			if tc.name != "dangling event" && f.Complete() {
				t.Error("broken forest reported Complete")
			}
		})
	}
}

// TestFromEventsIgnoresLifecycleEvents pins the interleaving contract:
// a JSONL stream mixing session lifecycle events with span events
// reconstructs from the span events alone.
func TestFromEventsIgnoresLifecycleEvents(t *testing.T) {
	f := FromEvents([]trace.Event{
		{Kind: trace.Arrival, Session: 1},
		span("t1", "s1", "", "establish", "H1", "ok", 1),
		{Kind: trace.Reserved, Session: 1},
	})
	if len(f.Trees) != 1 || !f.Complete() {
		t.Fatalf("forest = %+v, want one complete tree", *f)
	}
}

// TestCriticalPathFollowsDominantChild pins the decomposition: the
// path descends, at every span, into the child with the largest
// duration, and self-time is the parent's duration minus its critical
// child's.
func TestCriticalPathFollowsDominantChild(t *testing.T) {
	f := FromEvents([]trace.Event{
		span("t1", "root", "", "establish", "H1", "ok", 10),
		span("t1", "a", "root", "snapshot", "H1", "ok", 2),
		span("t1", "b", "root", "reserve", "H1", "ok", 7),
		span("t1", "c", "b", "prepare", "H1->H2", "ok", 6),
	})
	if len(f.Trees) != 1 {
		t.Fatalf("trees = %d", len(f.Trees))
	}
	path := f.Trees[0].CriticalPath()
	var names []string
	for _, st := range path {
		names = append(names, st.Name)
	}
	want := []string{"establish", "reserve", "prepare"}
	if len(names) != len(want) {
		t.Fatalf("critical path = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("critical path = %v, want %v", names, want)
		}
	}
	if self := path[0].Self; self != 3 {
		t.Errorf("root self-time = %g, want 3", self)
	}
	if s := PathString(path); !strings.Contains(s, "establish") || !strings.Contains(s, "prepare") {
		t.Errorf("PathString = %q", s)
	}
}
