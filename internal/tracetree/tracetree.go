// Package tracetree bridges the distributed-trace recorder of package
// obs to the JSONL/CSV event sinks of package trace, and reconstructs
// span trees back from recorded events for analysis: completeness
// checking (orphan spans, rootless traces) and per-session
// critical-path decomposition (which phase, which route, which retry
// dominated the end-to-end latency).
package tracetree

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"qosres/internal/broker"
	"qosres/internal/obs"
	"qosres/internal/trace"
)

// Sink adapts a trace.Tracer into an obs.TraceSink: every exported
// span becomes one SpanEnd event plus one SpanEvent event per
// annotation. Timestamps are wall-clock seconds relative to the sink's
// creation, so JSONL artifacts order and offset spans without leaking
// absolute wall time.
type Sink struct {
	t  trace.Tracer
	t0 time.Time
}

// NewSink creates a sink exporting into t.
func NewSink(t trace.Tracer) *Sink {
	return &Sink{t: t, t0: time.Now()}
}

// ExportSpan implements obs.TraceSink.
func (s *Sink) ExportSpan(sp obs.SpanRecord) {
	at := broker.Time(sp.Start.Sub(s.t0).Seconds())
	tid := obs.TraceIDString(sp.Trace)
	sid := obs.TraceIDString(sp.Span)
	parent := ""
	if sp.Parent != 0 {
		parent = obs.TraceIDString(sp.Parent)
	}
	s.t.Trace(trace.Event{
		At: at, Kind: trace.SpanEnd,
		Stage: sp.Name, Scope: sp.Scope, Status: sp.Status,
		Duration: sp.Dur.Seconds(),
		TraceID:  tid, SpanID: sid, ParentID: parent,
	})
	for _, ev := range sp.Events {
		s.t.Trace(trace.Event{
			At: at, Kind: trace.SpanEvent,
			Stage: ev.Type, Detail: ev.Detail,
			Duration: ev.At.Sub(sp.Start).Seconds(),
			TraceID:  tid, SpanID: sid,
		})
	}
}

// Collector is an unbounded in-memory Tracer, the analysis-side
// counterpart of a JSONL file. Safe for concurrent use.
type Collector struct {
	mu     sync.Mutex
	events []trace.Event
}

// Trace implements trace.Tracer.
func (c *Collector) Trace(ev trace.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ev)
}

// Events returns the collected events in arrival order.
func (c *Collector) Events() []trace.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]trace.Event, len(c.events))
	copy(out, c.events)
	return out
}

// Node is one span of a reconstructed tree with its events and
// children (children sorted by start time).
type Node struct {
	Name     string
	Scope    string
	Status   string
	At       broker.Time
	Duration float64
	SpanID   string
	ParentID string
	Events   []trace.Event
	Children []*Node
}

// Tree is one reconstructed trace.
type Tree struct {
	TraceID string
	Root    *Node
	Spans   int
	// Orphans counts spans of this trace whose parent span never
	// appeared (a broken causal link).
	Orphans int
}

// Errored reports whether any span of the tree ended non-ok.
func (t *Tree) Errored() bool {
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		if n.Status != "" && n.Status != obs.StatusOK {
			return true
		}
		for _, c := range n.Children {
			if walk(c) {
				return true
			}
		}
		return false
	}
	return t.Root != nil && walk(t.Root)
}

// Forest is every trace reconstructed from an event stream.
type Forest struct {
	Trees []*Tree
	// OrphanSpans counts spans across all traces whose parent never
	// appeared.
	OrphanSpans int
	// Rootless counts traces that have spans but no root span — an
	// unterminated (or never-exported) root.
	Rootless int
	// MultiRoot counts traces with more than one root span.
	MultiRoot int
	// DanglingEvents counts SpanEvent events whose span never appeared.
	DanglingEvents int
}

// Complete reports whether every trace reconstructed into a single
// fully-parented tree — the chaos-harness invariant.
func (f *Forest) Complete() bool {
	return f.OrphanSpans == 0 && f.Rootless == 0 && f.MultiRoot == 0
}

// FromEvents reconstructs the span trees recorded in an event stream,
// ignoring non-span events (a JSONL file usually interleaves session
// lifecycle events with spans).
func FromEvents(events []trace.Event) *Forest {
	type traceAcc struct {
		nodes map[string]*Node
		order []string
	}
	traces := make(map[string]*traceAcc)
	var traceOrder []string
	acc := func(tid string) *traceAcc {
		a := traces[tid]
		if a == nil {
			a = &traceAcc{nodes: make(map[string]*Node)}
			traces[tid] = a
			traceOrder = append(traceOrder, tid)
		}
		return a
	}
	f := &Forest{}
	// First pass: materialize spans.
	for _, ev := range events {
		if ev.Kind != trace.SpanEnd || ev.TraceID == "" {
			continue
		}
		a := acc(ev.TraceID)
		if _, dup := a.nodes[ev.SpanID]; dup {
			continue
		}
		a.nodes[ev.SpanID] = &Node{
			Name: ev.Stage, Scope: ev.Scope, Status: ev.Status,
			At: ev.At, Duration: ev.Duration,
			SpanID: ev.SpanID, ParentID: ev.ParentID,
		}
		a.order = append(a.order, ev.SpanID)
	}
	// Second pass: attach events to their spans.
	for _, ev := range events {
		if ev.Kind != trace.SpanEvent || ev.TraceID == "" {
			continue
		}
		a := traces[ev.TraceID]
		if a == nil {
			f.DanglingEvents++
			continue
		}
		n := a.nodes[ev.SpanID]
		if n == nil {
			f.DanglingEvents++
			continue
		}
		n.Events = append(n.Events, ev)
	}
	// Link trees.
	for _, tid := range traceOrder {
		a := traces[tid]
		t := &Tree{TraceID: tid, Spans: len(a.order)}
		roots := 0
		for _, sid := range a.order {
			n := a.nodes[sid]
			if n.ParentID == "" {
				roots++
				if t.Root == nil {
					t.Root = n
				}
				continue
			}
			p := a.nodes[n.ParentID]
			if p == nil {
				t.Orphans++
				continue
			}
			p.Children = append(p.Children, n)
		}
		for _, sid := range a.order {
			n := a.nodes[sid]
			sort.Slice(n.Children, func(i, j int) bool {
				if n.Children[i].At != n.Children[j].At {
					return n.Children[i].At < n.Children[j].At
				}
				return n.Children[i].SpanID < n.Children[j].SpanID
			})
		}
		f.OrphanSpans += t.Orphans
		switch {
		case roots == 0:
			f.Rootless++
		case roots > 1:
			f.MultiRoot++
		}
		f.Trees = append(f.Trees, t)
	}
	return f
}

// PathStep is one span on a critical path.
type PathStep struct {
	Name     string
	Scope    string
	Status   string
	Duration float64
	// Self is the span's duration not covered by its own critical
	// child — the time attributable to this step itself.
	Self float64
}

// CriticalPath walks the dominant-duration chain from the root: at
// each span, descend into the child with the largest duration.
func (t *Tree) CriticalPath() []PathStep {
	var out []PathStep
	n := t.Root
	for n != nil {
		var next *Node
		for _, c := range n.Children {
			if next == nil || c.Duration > next.Duration {
				next = c
			}
		}
		self := n.Duration
		if next != nil {
			self -= next.Duration
			if self < 0 {
				self = 0
			}
		}
		out = append(out, PathStep{Name: n.Name, Scope: n.Scope,
			Status: n.Status, Duration: n.Duration, Self: self})
		n = next
	}
	return out
}

// PathString renders a critical path compactly:
// "establish 1.2ms > reserve 0.9ms > prepare[h0->h2] 0.8ms".
func PathString(path []PathStep) string {
	parts := make([]string, 0, len(path))
	for _, s := range path {
		label := s.Name
		if s.Scope != "" && strings.Contains(s.Scope, "->") {
			label += "[" + s.Scope + "]"
		}
		parts = append(parts, fmt.Sprintf("%s %.3gms", label, s.Duration*1e3))
	}
	return strings.Join(parts, " > ")
}

// rootGroup aggregates the trees sharing a root span name.
type rootGroup struct {
	name  string
	trees []*Tree
}

// Report writes the human-readable analysis: per-root-kind counts and
// latency quantiles, critical-path phase/route attribution, p99
// outlier exemplars, and completeness counters.
func Report(w io.Writer, f *Forest) {
	fmt.Fprintf(w, "traces: %d  orphan spans: %d  rootless: %d  multi-root: %d  dangling events: %d\n",
		len(f.Trees), f.OrphanSpans, f.Rootless, f.MultiRoot, f.DanglingEvents)

	groups := make(map[string]*rootGroup)
	var order []string
	for _, t := range f.Trees {
		if t.Root == nil {
			continue
		}
		g := groups[t.Root.Name]
		if g == nil {
			g = &rootGroup{name: t.Root.Name}
			groups[t.Root.Name] = g
			order = append(order, t.Root.Name)
		}
		g.trees = append(g.trees, t)
	}
	sort.Strings(order)

	for _, name := range order {
		g := groups[name]
		durs := make([]float64, 0, len(g.trees))
		phase := make(map[string]float64)
		route := make(map[string]float64)
		events := make(map[string]int)
		errored := 0
		for _, t := range g.trees {
			durs = append(durs, t.Root.Duration)
			if t.Errored() {
				errored++
			}
			var walk func(n *Node)
			walk = func(n *Node) {
				if n != t.Root && n.ParentID == t.Root.SpanID {
					phase[n.Name] += n.Duration
				}
				if strings.Contains(n.Scope, "->") {
					route[n.Scope] += n.Duration
				}
				for _, ev := range n.Events {
					events[ev.Stage]++
				}
				for _, c := range n.Children {
					walk(c)
				}
			}
			walk(t.Root)
		}
		sort.Float64s(durs)
		fmt.Fprintf(w, "\n%s: %d trace(s), %d errored; root latency p50 %.3gms p99 %.3gms\n",
			g.name, len(g.trees), errored,
			quantile(durs, 0.50)*1e3, quantile(durs, 0.99)*1e3)
		writeTop(w, "  phase time", phase, 8)
		writeTop(w, "  route time", route, 8)
		if len(events) > 0 {
			keys := make([]string, 0, len(events))
			for k := range events {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Fprintf(w, "  events:")
			for _, k := range keys {
				fmt.Fprintf(w, " %s=%d", k, events[k])
			}
			fmt.Fprintln(w)
		}
		// p99 outliers: the slowest roots above the p99 cut, with their
		// critical paths — the "why was THIS one slow" exemplars.
		cut := quantile(durs, 0.99)
		outliers := make([]*Tree, 0, 4)
		for _, t := range g.trees {
			if t.Root.Duration >= cut {
				outliers = append(outliers, t)
			}
		}
		sort.Slice(outliers, func(i, j int) bool {
			return outliers[i].Root.Duration > outliers[j].Root.Duration
		})
		if len(outliers) > 3 {
			outliers = outliers[:3]
		}
		for _, t := range outliers {
			fmt.Fprintf(w, "  p99 outlier %s: %s\n", t.TraceID, PathString(t.CriticalPath()))
		}
	}
}

// writeTop prints the largest k entries of a duration-by-key map.
func writeTop(w io.Writer, label string, m map[string]float64, k int) {
	if len(m) == 0 {
		return
	}
	type kv struct {
		key string
		v   float64
	}
	items := make([]kv, 0, len(m))
	for key, v := range m {
		items = append(items, kv{key, v})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].v != items[j].v {
			return items[i].v > items[j].v
		}
		return items[i].key < items[j].key
	})
	if len(items) > k {
		items = items[:k]
	}
	fmt.Fprintf(w, "%s:", label)
	for _, it := range items {
		fmt.Fprintf(w, " %s=%.3gms", it.key, it.v*1e3)
	}
	fmt.Fprintln(w)
}

// quantile reads the q-quantile of a sorted slice (nearest rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
