package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.SuccessRate() != 0 || c.AvgQoS() != 0 {
		t.Fatal("empty counter must report zeros")
	}
	c.Observe(true, 3)
	c.Observe(true, 2)
	c.Observe(false, 0)
	if c.Attempts != 3 || c.Successes != 2 {
		t.Fatalf("counter = %+v", c)
	}
	if math.Abs(c.SuccessRate()-2.0/3.0) > 1e-12 {
		t.Fatalf("rate = %v", c.SuccessRate())
	}
	if c.AvgQoS() != 2.5 {
		t.Fatalf("avg = %v", c.AvgQoS())
	}
}

func TestCounterMerge(t *testing.T) {
	a := Counter{Attempts: 2, Successes: 1, QoSSum: 3}
	b := Counter{Attempts: 4, Successes: 3, QoSSum: 7}
	a.Merge(b)
	if a.Attempts != 6 || a.Successes != 4 || a.QoSSum != 10 {
		t.Fatalf("merged = %+v", a)
	}
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		fat, long bool
		want      Class
	}{
		{false, false, NormShort},
		{false, true, NormLong},
		{true, false, FatShort},
		{true, true, FatLong},
	}
	for _, tc := range cases {
		if got := ClassOf(tc.fat, tc.long); got != tc.want {
			t.Errorf("ClassOf(%v,%v) = %v", tc.fat, tc.long, got)
		}
	}
	if len(Classes()) != 4 {
		t.Fatal("Classes() must list 4 classes")
	}
}

func TestClassString(t *testing.T) {
	want := map[Class]string{
		NormShort: "Norm.-short", NormLong: "Norm.-long",
		FatShort: "Fat-short", FatLong: "Fat-long",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
	if Class(99).String() == "" {
		t.Error("unknown class must still render")
	}
}

func TestPathHistogram(t *testing.T) {
	h := NewPathHistogram()
	h.Observe("a-b")
	h.Observe("a-b")
	h.Observe("a-c")
	if h.Total != 3 {
		t.Fatalf("total = %d", h.Total)
	}
	if math.Abs(h.Percent("a-b")-200.0/3.0) > 1e-9 {
		t.Fatalf("percent = %v", h.Percent("a-b"))
	}
	paths := h.Paths()
	if len(paths) != 2 || paths[0] != "a-b" {
		t.Fatalf("paths = %v", paths)
	}
	empty := NewPathHistogram()
	if empty.Percent("x") != 0 {
		t.Fatal("empty histogram percent must be 0")
	}
}

func TestPathHistogramTieOrder(t *testing.T) {
	h := NewPathHistogram()
	h.Observe("z")
	h.Observe("a")
	paths := h.Paths()
	if paths[0] != "a" || paths[1] != "z" {
		t.Fatalf("tie order = %v", paths)
	}
}

func TestMetricsObserve(t *testing.T) {
	m := NewMetrics()
	m.ObserveSession(FatShort, true, 3)
	m.ObserveSession(FatShort, false, 0)
	m.ObserveSession(NormLong, true, 2)
	if m.Overall.Attempts != 3 || m.Overall.Successes != 2 {
		t.Fatalf("overall = %+v", m.Overall)
	}
	if m.Class(FatShort).Attempts != 2 || m.Class(NormLong).Successes != 1 {
		t.Fatal("per-class accounting wrong")
	}
	m.ObservePlan("fig10a", "Qa-Qb", "cpu@H1")
	m.ObservePlan("fig10a", "Qa-Qc", "link:L1")
	m.ObservePlan("fig10b", "", "cpu@H1")
	if m.ByFamily["fig10a"].Total != 2 {
		t.Fatalf("fig10a total = %d", m.ByFamily["fig10a"].Total)
	}
	if m.ByFamily["fig10b"].Total != 0 {
		t.Fatal("empty path must not be counted in histogram")
	}
	if m.BottleneckCounts["cpu@H1"] != 2 {
		t.Fatalf("bottlenecks = %v", m.BottleneckCounts)
	}
	rs := m.BottleneckResources()
	if len(rs) != 2 || rs[0] != "cpu@H1" || rs[1] != "link:L1" {
		t.Fatalf("resources = %v", rs)
	}
	if !strings.Contains(m.Summary(), "sessions=3") {
		t.Fatalf("summary = %q", m.Summary())
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Header: []string{"name", "value"}}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("a-very-long-name", "2")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// All rows must be aligned: the value column starts at the same
	// offset everywhere.
	idx := strings.Index(lines[0], "value")
	for _, l := range lines[2:] {
		if len(l) <= idx {
			t.Fatalf("row too short: %q", l)
		}
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("separator missing: %q", lines[1])
	}
}

func TestPropertyCounterRatesBounded(t *testing.T) {
	f := func(outcomes []bool) bool {
		var c Counter
		for _, ok := range outcomes {
			c.Observe(ok, 3)
		}
		r := c.SuccessRate()
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHistogramPercentsSumTo100(t *testing.T) {
	f := func(picks []uint8) bool {
		if len(picks) == 0 {
			return true
		}
		h := NewPathHistogram()
		for _, p := range picks {
			h.Observe(string(rune('a' + p%5)))
		}
		sum := 0.0
		for _, p := range h.Paths() {
			sum += h.Percent(p)
		}
		return math.Abs(sum-100) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestObserveService(t *testing.T) {
	m := NewMetrics()
	m.ObserveService("S1", true, 3)
	m.ObserveService("S1", false, 0)
	m.ObserveService("S2", true, 2)
	if m.ByService["S1"].Attempts != 2 || m.ByService["S1"].Successes != 1 {
		t.Fatalf("S1 = %+v", m.ByService["S1"])
	}
	if m.ByService["S2"].AvgQoS() != 2 {
		t.Fatalf("S2 avg = %v", m.ByService["S2"].AvgQoS())
	}
}

func TestTimeSeries(t *testing.T) {
	ts, err := NewTimeSeries(10)
	if err != nil {
		t.Fatal(err)
	}
	ts.Observe(0, true, 3)
	ts.Observe(9.99, false, 0)
	ts.Observe(10, true, 2)
	ts.Observe(35, true, 1)
	ts.Observe(-5, true, 3) // clamps to first window
	if ts.Len() != 4 {
		t.Fatalf("windows = %d", ts.Len())
	}
	s, e, c := ts.Window(0)
	if s != 0 || e != 10 || c.Attempts != 3 || c.Successes != 2 {
		t.Fatalf("window 0 = [%g,%g) %+v", s, e, c)
	}
	rates := ts.Rates()
	if len(rates) != 4 || rates[2] != 0 || rates[3] != 1 {
		t.Fatalf("rates = %v", rates)
	}
	if out := ts.Table(); !strings.Contains(out, "[0, 10)") {
		t.Fatalf("table = %q", out)
	}
	if _, err := NewTimeSeries(0); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestObserveSessionAt(t *testing.T) {
	m := NewMetrics()
	ts, _ := NewTimeSeries(100)
	m.Timeline = ts
	m.ObserveSessionAt(50, NormShort, true, 3)
	m.ObserveSessionAt(150, FatLong, false, 0)
	if m.Overall.Attempts != 2 {
		t.Fatalf("overall = %+v", m.Overall)
	}
	if ts.Len() != 2 {
		t.Fatalf("timeline windows = %d", ts.Len())
	}
	// Nil timeline must be safe.
	m2 := NewMetrics()
	m2.ObserveSessionAt(50, NormShort, true, 3)
	if m2.Overall.Attempts != 1 {
		t.Fatal("nil-timeline observe failed")
	}
}
