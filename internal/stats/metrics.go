// Package stats collects the performance metrics of the paper's study
// (section 5): the overall reservation success rate of all service
// sessions, the average end-to-end QoS level of the successful sessions,
// the same two metrics broken down by session class (normal/fat ×
// short/long, section 5.2.3), the selected-path histograms of tables 1-2,
// and the bottleneck-resource occurrence counts of section 5.2.2.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Class is a session class of section 5.2.3.
type Class int

// The four session classes.
const (
	NormShort Class = iota
	NormLong
	FatShort
	FatLong
	numClasses
)

// String renders the paper's row labels.
func (c Class) String() string {
	switch c {
	case NormShort:
		return "Norm.-short"
	case NormLong:
		return "Norm.-long"
	case FatShort:
		return "Fat-short"
	case FatLong:
		return "Fat-long"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Classes lists all classes in paper order.
func Classes() []Class { return []Class{NormShort, NormLong, FatShort, FatLong} }

// ClassOf derives the class from the session's shape.
func ClassOf(fat, long bool) Class {
	switch {
	case !fat && !long:
		return NormShort
	case !fat && long:
		return NormLong
	case fat && !long:
		return FatShort
	default:
		return FatLong
	}
}

// Counter accumulates attempts, successes and QoS levels for one
// population of sessions.
type Counter struct {
	Attempts  int
	Successes int
	QoSSum    float64
}

// Observe records one session outcome; rank is the end-to-end QoS level
// number of a successful session (ignored on failure).
func (c *Counter) Observe(success bool, rank int) {
	c.Attempts++
	if success {
		c.Successes++
		c.QoSSum += float64(rank)
	}
}

// SuccessRate returns successes/attempts (0 when empty).
func (c *Counter) SuccessRate() float64 {
	if c.Attempts == 0 {
		return 0
	}
	return float64(c.Successes) / float64(c.Attempts)
}

// AvgQoS returns the average end-to-end QoS level of the successful
// sessions (0 when none).
func (c *Counter) AvgQoS() float64 {
	if c.Successes == 0 {
		return 0
	}
	return c.QoSSum / float64(c.Successes)
}

// Merge adds another counter into c.
func (c *Counter) Merge(o Counter) {
	c.Attempts += o.Attempts
	c.Successes += o.Successes
	c.QoSSum += o.QoSSum
}

// PathHistogram counts selected end-to-end reservation paths, keyed by
// the dash-joined level names of tables 1-2.
type PathHistogram struct {
	Counts map[string]int
	Total  int
}

// NewPathHistogram creates an empty histogram.
func NewPathHistogram() *PathHistogram {
	return &PathHistogram{Counts: make(map[string]int)}
}

// Observe counts one selected path.
func (h *PathHistogram) Observe(path string) {
	h.Counts[path]++
	h.Total++
}

// Percent returns the selection percentage of a path.
func (h *PathHistogram) Percent(path string) float64 {
	if h.Total == 0 {
		return 0
	}
	return 100 * float64(h.Counts[path]) / float64(h.Total)
}

// Paths returns all observed paths, most frequent first (ties by name).
func (h *PathHistogram) Paths() []string {
	out := make([]string, 0, len(h.Counts))
	for p := range h.Counts {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if h.Counts[out[i]] != h.Counts[out[j]] {
			return h.Counts[out[i]] > h.Counts[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// Metrics aggregates every statistic one simulation run produces.
type Metrics struct {
	Overall Counter
	ByClass [numClasses]Counter
	// ByFamily holds the selected-path histograms keyed by workload
	// family name ("fig10a", "fig10b").
	ByFamily map[string]*PathHistogram
	// BottleneckCounts counts, per concrete resource, how often it was
	// the bottleneck of a selected plan (section 5.2.2 confirms every
	// resource becomes a bottleneck at least once).
	BottleneckCounts map[string]int
	// ByService breaks the overall counter down by requested service
	// name, reflecting the shifting popularity of section 5.1.
	ByService map[string]*Counter
	// Timeline, when non-nil, buckets outcomes into time windows.
	Timeline *TimeSeries
	// PlanFailures counts sessions with no feasible plan; ReserveFailures
	// counts sessions whose plan failed at reservation time (possible
	// only under stale observations).
	PlanFailures    int
	ReserveFailures int
}

// NewMetrics creates an empty metrics sink.
func NewMetrics() *Metrics {
	return &Metrics{
		ByFamily:         make(map[string]*PathHistogram),
		ByService:        make(map[string]*Counter),
		BottleneckCounts: make(map[string]int),
	}
}

// ObserveSession records one session outcome.
func (m *Metrics) ObserveSession(class Class, success bool, rank int) {
	m.Overall.Observe(success, rank)
	m.ByClass[class].Observe(success, rank)
}

// ObserveSessionAt additionally buckets the outcome into the timeline
// when one is attached.
func (m *Metrics) ObserveSessionAt(t float64, class Class, success bool, rank int) {
	m.ObserveSession(class, success, rank)
	if m.Timeline != nil {
		m.Timeline.Observe(t, success, rank)
	}
}

// ObserveService attributes one session outcome to its service.
func (m *Metrics) ObserveService(service string, success bool, rank int) {
	c := m.ByService[service]
	if c == nil {
		c = &Counter{}
		m.ByService[service] = c
	}
	c.Observe(success, rank)
}

// ObservePlan records the selected path and bottleneck of a computed
// plan.
func (m *Metrics) ObservePlan(family, path, bottleneck string) {
	h := m.ByFamily[family]
	if h == nil {
		h = NewPathHistogram()
		m.ByFamily[family] = h
	}
	if path != "" {
		h.Observe(path)
	}
	if bottleneck != "" {
		m.BottleneckCounts[bottleneck]++
	}
}

// Class returns the counter of one class.
func (m *Metrics) Class(c Class) *Counter { return &m.ByClass[c] }

// Summary renders a one-line digest.
func (m *Metrics) Summary() string {
	return fmt.Sprintf("sessions=%d success=%.1f%% avgQoS=%.2f (plan failures=%d, reserve failures=%d)",
		m.Overall.Attempts, 100*m.Overall.SuccessRate(), m.Overall.AvgQoS(),
		m.PlanFailures, m.ReserveFailures)
}

// BottleneckResources lists every resource observed as a bottleneck,
// sorted by name.
func (m *Metrics) BottleneckResources() []string {
	out := make([]string, 0, len(m.BottleneckCounts))
	for r := range m.BottleneckCounts {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Table is a minimal fixed-width text table builder for experiment
// output.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for pad := len(c); pad < widths[i]; pad++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
