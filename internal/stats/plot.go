package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named line of an ASCII chart: y-values sampled at shared
// x-positions.
type Series struct {
	Name   string
	Points map[float64]float64
}

// Plot renders a multi-series ASCII line chart, used by cmd/experiments
// to draw the paper's figures. Each series gets a marker character; the
// x-axis lists the sample positions, the y-axis spans [ymin, ymax]
// (pass NaN to autoscale).
type Plot struct {
	Title      string
	YLabel     string
	Height     int // rows of the plot area; default 12
	YMin, YMax float64
	Series     []Series
}

// markers cycles through the plot markers in series order.
var markers = []byte{'b', 't', 'r', '*', '+', 'x', 'o'}

// String renders the chart.
func (p *Plot) String() string {
	height := p.Height
	if height <= 0 {
		height = 12
	}
	// Collect the shared x positions.
	xsSet := map[float64]bool{}
	for _, s := range p.Series {
		for x := range s.Points {
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	if len(xs) == 0 {
		return p.Title + " (no data)\n"
	}

	ymin, ymax := p.YMin, p.YMax
	if math.IsNaN(ymin) || math.IsNaN(ymax) || ymin >= ymax {
		ymin, ymax = math.Inf(1), math.Inf(-1)
		for _, s := range p.Series {
			for _, y := range s.Points {
				ymin = math.Min(ymin, y)
				ymax = math.Max(ymax, y)
			}
		}
		if ymin == ymax {
			ymin, ymax = ymin-1, ymax+1
		}
		pad := (ymax - ymin) * 0.05
		ymin -= pad
		ymax += pad
	}

	const colWidth = 7
	width := len(xs) * colWidth
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	rowOf := func(y float64) int {
		frac := (y - ymin) / (ymax - ymin)
		r := int(math.Round(float64(height-1) * (1 - frac)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	colOf := func(i int) int { return i*colWidth + colWidth/2 }

	for si, s := range p.Series {
		m := markers[si%len(markers)]
		for i, x := range xs {
			y, ok := s.Points[x]
			if !ok {
				continue
			}
			grid[rowOf(y)][colOf(i)] = m
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	for r := 0; r < height; r++ {
		frac := 1 - float64(r)/float64(height-1)
		label := ymin + frac*(ymax-ymin)
		fmt.Fprintf(&b, "%8.1f |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  ", "")
	for _, x := range xs {
		fmt.Fprintf(&b, "%*g", colWidth, x)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%8s  legend:", "")
	for si, s := range p.Series {
		fmt.Fprintf(&b, " %c=%s", markers[si%len(markers)], s.Name)
	}
	b.WriteByte('\n')
	return b.String()
}
