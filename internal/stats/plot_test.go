package stats

import (
	"math"
	"strings"
	"testing"
)

func TestPlotRendersSeries(t *testing.T) {
	p := &Plot{
		Title: "demo",
		YMin:  math.NaN(), YMax: math.NaN(),
		Series: []Series{
			{Name: "basic", Points: map[float64]float64{60: 98, 120: 76, 180: 65}},
			{Name: "random", Points: map[float64]float64{60: 88, 120: 67, 180: 57}},
		},
	}
	out := p.String()
	if !strings.Contains(out, "demo") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "b=basic") || !strings.Contains(out, "t=random") {
		t.Fatalf("legend missing:\n%s", out)
	}
	// Markers must appear as many times as there are points.
	if got := strings.Count(out, "b") - strings.Count("legend: b=basic t=random", "b"); got < 3 {
		t.Fatalf("markers for basic = %d:\n%s", got, out)
	}
	for _, x := range []string{"60", "120", "180"} {
		if !strings.Contains(out, x) {
			t.Errorf("x label %s missing", x)
		}
	}
}

func TestPlotOrdersByValue(t *testing.T) {
	p := &Plot{
		YMin: 0, YMax: 100,
		Series: []Series{
			{Name: "high", Points: map[float64]float64{1: 90}},
			{Name: "low", Points: map[float64]float64{1: 10}},
		},
	}
	out := p.String()
	lines := strings.Split(out, "\n")
	rowOf := func(marker string) int {
		for i, l := range lines {
			if strings.Contains(l, "|") && strings.Contains(strings.SplitN(l, "|", 2)[1], marker) {
				return i
			}
		}
		return -1
	}
	hi, lo := rowOf("b"), rowOf("t")
	if hi < 0 || lo < 0 || hi >= lo {
		t.Fatalf("high series (row %d) must render above low (row %d):\n%s", hi, lo, out)
	}
}

func TestPlotEmpty(t *testing.T) {
	p := &Plot{Title: "empty"}
	if !strings.Contains(p.String(), "no data") {
		t.Fatal("empty plot must say so")
	}
}

func TestPlotFlatSeriesAutoscale(t *testing.T) {
	p := &Plot{
		YMin: math.NaN(), YMax: math.NaN(),
		Series: []Series{{Name: "flat", Points: map[float64]float64{1: 5, 2: 5}}},
	}
	out := p.String()
	if !strings.Contains(out, "b=flat") {
		t.Fatalf("flat series failed to render:\n%s", out)
	}
}
