package stats

import "fmt"

// TimeSeries buckets session outcomes into fixed-width time windows,
// exposing the success-rate and QoS trajectories of a run — useful for
// watching the effect of the section 5.1 dynamic popularity shifts and
// of transient congestion.
type TimeSeries struct {
	width   float64
	buckets []Counter
}

// NewTimeSeries creates a series with the given window width (> 0).
func NewTimeSeries(width float64) (*TimeSeries, error) {
	if width <= 0 {
		return nil, fmt.Errorf("stats: non-positive window width %g", width)
	}
	return &TimeSeries{width: width}, nil
}

// Observe records one session outcome at time t (>= 0; earlier times
// clamp to the first window).
func (ts *TimeSeries) Observe(t float64, success bool, rank int) {
	idx := 0
	if t > 0 {
		idx = int(t / ts.width)
	}
	for len(ts.buckets) <= idx {
		ts.buckets = append(ts.buckets, Counter{})
	}
	ts.buckets[idx].Observe(success, rank)
}

// Window returns the time bounds and counter of bucket i.
func (ts *TimeSeries) Window(i int) (start, end float64, c Counter) {
	return float64(i) * ts.width, float64(i+1) * ts.width, ts.buckets[i]
}

// Len returns the number of windows observed so far.
func (ts *TimeSeries) Len() int { return len(ts.buckets) }

// Rates returns the per-window success rates.
func (ts *TimeSeries) Rates() []float64 {
	out := make([]float64, len(ts.buckets))
	for i := range ts.buckets {
		out[i] = ts.buckets[i].SuccessRate()
	}
	return out
}

// Table renders the series as a text table with a sparkline-style bar.
func (ts *TimeSeries) Table() string {
	t := &Table{Header: []string{"window", "sessions", "success", "avg QoS", ""}}
	for i := range ts.buckets {
		s, e, c := ts.Window(i)
		bar := ""
		for j := 0.0; j < 40*c.SuccessRate(); j += 1 {
			bar += "#"
		}
		t.AddRow(
			fmt.Sprintf("[%g, %g)", s, e),
			fmt.Sprintf("%d", c.Attempts),
			fmt.Sprintf("%.1f%%", 100*c.SuccessRate()),
			fmt.Sprintf("%.2f", c.AvgQoS()),
			bar,
		)
	}
	return t.String()
}
