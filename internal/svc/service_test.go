package svc

import (
	"strings"
	"testing"

	"qosres/internal/qos"
)

func lvl(name string, q float64) Level {
	return Level{Name: name, Vector: qos.MustVector(qos.P("q", q))}
}

func simpleComponent(id ComponentID, in, out []Level, table TranslationTable) *Component {
	return &Component{ID: id, In: in, Out: out, Translate: table.Func(), Resources: []string{"r"}}
}

// chain3 builds a valid 3-component chain a->b->c.
func chain3(t *testing.T) *Service {
	t.Helper()
	a := simpleComponent("a",
		[]Level{lvl("A0", 0)},
		[]Level{lvl("A1", 1), lvl("A2", 2)},
		TranslationTable{"A0": {"A1": {"r": 1}, "A2": {"r": 2}}})
	b := simpleComponent("b",
		[]Level{lvl("B1", 1), lvl("B2", 2)},
		[]Level{lvl("B3", 3)},
		TranslationTable{"B1": {"B3": {"r": 3}}, "B2": {"B3": {"r": 1}}})
	c := simpleComponent("c",
		[]Level{lvl("C3", 3)},
		[]Level{lvl("C4", 4), lvl("C5", 5)},
		TranslationTable{"C3": {"C4": {"r": 1}, "C5": {"r": 2}}})
	s, err := NewService("chain", []*Component{a, b, c},
		[]Edge{{From: "a", To: "b"}, {From: "b", To: "c"}},
		[]string{"C5", "C4"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestChainServiceValid(t *testing.T) {
	s := chain3(t)
	if !s.IsChain() {
		t.Fatal("expected chain")
	}
	order, err := s.Chain()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" || order[2] != "c" {
		t.Fatalf("chain order = %v", order)
	}
	src, err := s.Source()
	if err != nil || src.ID != "a" {
		t.Fatalf("source = %v, %v", src, err)
	}
	sink, err := s.Sink()
	if err != nil || sink.ID != "c" {
		t.Fatalf("sink = %v, %v", sink, err)
	}
}

func TestRankOf(t *testing.T) {
	s := chain3(t)
	if s.RankOf("C5") != 2 || s.RankOf("C4") != 1 {
		t.Fatalf("ranks = %d, %d", s.RankOf("C5"), s.RankOf("C4"))
	}
	if s.RankOf("nope") != 0 {
		t.Fatal("unknown level must rank 0")
	}
}

func TestComponentLevelLookups(t *testing.T) {
	s := chain3(t)
	a := s.Components["a"]
	if _, ok := a.InLevel("A0"); !ok {
		t.Fatal("InLevel(A0) missing")
	}
	if _, ok := a.OutLevel("A2"); !ok {
		t.Fatal("OutLevel(A2) missing")
	}
	if _, ok := a.OutLevel("A0"); ok {
		t.Fatal("OutLevel(A0) should miss")
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	a := simpleComponent("a", []Level{lvl("A0", 0)}, []Level{lvl("A1", 1)},
		TranslationTable{"A0": {"A1": {"r": 1}}})
	b := simpleComponent("b", []Level{lvl("B1", 1)}, []Level{lvl("B2", 2)},
		TranslationTable{"B1": {"B2": {"r": 1}}})
	_, err := NewService("cyc", []*Component{a, b},
		[]Edge{{From: "a", To: "b"}, {From: "b", To: "a"}}, []string{"B2"})
	if err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestValidateRejectsSelfLoop(t *testing.T) {
	a := simpleComponent("a", []Level{lvl("A0", 0)}, []Level{lvl("A1", 1)},
		TranslationTable{"A0": {"A1": {"r": 1}}})
	_, err := NewService("self", []*Component{a}, []Edge{{From: "a", To: "a"}}, []string{"A1"})
	if err == nil || !strings.Contains(err.Error(), "self-loop") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsUnknownEdgeEndpoint(t *testing.T) {
	a := simpleComponent("a", []Level{lvl("A0", 0)}, []Level{lvl("A1", 1)},
		TranslationTable{"A0": {"A1": {"r": 1}}})
	_, err := NewService("bad", []*Component{a}, []Edge{{From: "a", To: "ghost"}}, []string{"A1"})
	if err == nil {
		t.Fatal("expected unknown-component error")
	}
}

func TestValidateRejectsDuplicateEdge(t *testing.T) {
	a := simpleComponent("a", []Level{lvl("A0", 0)}, []Level{lvl("A1", 1)},
		TranslationTable{"A0": {"A1": {"r": 1}}})
	b := simpleComponent("b", []Level{lvl("B1", 1)}, []Level{lvl("B2", 2)},
		TranslationTable{"B1": {"B2": {"r": 1}}})
	_, err := NewService("dup", []*Component{a, b},
		[]Edge{{From: "a", To: "b"}, {From: "a", To: "b"}}, []string{"B2"})
	if err == nil || !strings.Contains(err.Error(), "duplicate edge") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsMultiSourceOrSink(t *testing.T) {
	a := simpleComponent("a", []Level{lvl("A0", 0)}, []Level{lvl("A1", 1)},
		TranslationTable{"A0": {"A1": {"r": 1}}})
	b := simpleComponent("b", []Level{lvl("B0", 0)}, []Level{lvl("B1", 1)},
		TranslationTable{"B0": {"B1": {"r": 1}}})
	if _, err := NewService("two", []*Component{a, b}, nil, []string{"A1"}); err == nil {
		t.Fatal("expected multiple source/sink rejection")
	}
}

func TestValidateRejectsBadRanking(t *testing.T) {
	mk := func(ranking []string) error {
		a := simpleComponent("a", []Level{lvl("A0", 0)}, []Level{lvl("A1", 1), lvl("A2", 2)},
			TranslationTable{"A0": {"A1": {"r": 1}, "A2": {"r": 2}}})
		_, err := NewService("r", []*Component{a}, nil, ranking)
		return err
	}
	if err := mk([]string{"A1"}); err == nil {
		t.Fatal("short ranking accepted")
	}
	if err := mk([]string{"A1", "A1"}); err == nil {
		t.Fatal("repeated ranking accepted")
	}
	if err := mk([]string{"A1", "ghost"}); err == nil {
		t.Fatal("unknown level in ranking accepted")
	}
	if err := mk([]string{"A2", "A1"}); err != nil {
		t.Fatalf("valid ranking rejected: %v", err)
	}
}

func TestValidateRejectsMultiLevelSourceInput(t *testing.T) {
	a := simpleComponent("a", []Level{lvl("A0", 0), lvl("A9", 9)}, []Level{lvl("A1", 1)},
		TranslationTable{"A0": {"A1": {"r": 1}}})
	if _, err := NewService("src", []*Component{a}, nil, []string{"A1"}); err == nil {
		t.Fatal("source with two input levels accepted")
	}
}

func TestValidateRejectsUndeclaredResource(t *testing.T) {
	a := &Component{
		ID: "a", In: []Level{lvl("A0", 0)}, Out: []Level{lvl("A1", 1)},
		Translate: TranslationTable{"A0": {"A1": {"mystery": 1}}}.Func(),
		Resources: []string{"r"},
	}
	if _, err := NewService("un", []*Component{a}, nil, []string{"A1"}); err == nil {
		t.Fatal("undeclared resource accepted")
	}
}

func TestValidateRejectsNegativeRequirement(t *testing.T) {
	a := &Component{
		ID: "a", In: []Level{lvl("A0", 0)}, Out: []Level{lvl("A1", 1)},
		Translate: TranslationTable{"A0": {"A1": {"r": -1}}}.Func(),
		Resources: []string{"r"},
	}
	if _, err := NewService("neg", []*Component{a}, nil, []string{"A1"}); err == nil {
		t.Fatal("negative requirement accepted")
	}
}

func TestValidateRejectsComponentDefects(t *testing.T) {
	base := func() *Component {
		return simpleComponent("a", []Level{lvl("A0", 0)}, []Level{lvl("A1", 1)},
			TranslationTable{"A0": {"A1": {"r": 1}}})
	}
	cases := map[string]func(*Component){
		"empty id":       func(c *Component) { c.ID = "" },
		"no inputs":      func(c *Component) { c.In = nil },
		"no outputs":     func(c *Component) { c.Out = nil },
		"nil translate":  func(c *Component) { c.Translate = nil },
		"dup in level":   func(c *Component) { c.In = append(c.In, c.In[0]) },
		"dup out level":  func(c *Component) { c.Out = append(c.Out, c.Out[0]) },
		"empty level":    func(c *Component) { c.In = []Level{{Name: "", Vector: qos.Vector{}}} },
		"dup resource":   func(c *Component) { c.Resources = []string{"r", "r"} },
		"empty resource": func(c *Component) { c.Resources = []string{""} },
	}
	for name, mutate := range cases {
		c := base()
		mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestDAGFanInFanOut(t *testing.T) {
	a := simpleComponent("a", []Level{lvl("A0", 0)}, []Level{lvl("A1", 1)},
		TranslationTable{"A0": {"A1": {"r": 1}}})
	b := simpleComponent("b", []Level{lvl("B1", 1)}, []Level{lvl("B2", 2)},
		TranslationTable{"B1": {"B2": {"r": 1}}})
	c := simpleComponent("c", []Level{lvl("C1", 1)}, []Level{lvl("C2", 9)},
		TranslationTable{"C1": {"C2": {"r": 1}}})
	dIn := Level{Name: "D", Vector: qos.ConcatAll([]string{"b", "c"},
		[]qos.Vector{qos.MustVector(qos.P("q", 2)), qos.MustVector(qos.P("q", 9))})}
	d := simpleComponent("d", []Level{dIn}, []Level{lvl("D1", 10)},
		TranslationTable{"D": {"D1": {"r": 1}}})
	// a has equal vectors for b and c inputs? a.Out A1 q=1; b.In B1 q=1; c.In C1 q=1.
	s, err := NewService("dag", []*Component{a, b, c, d}, []Edge{
		{From: "a", To: "b"}, {From: "a", To: "c"},
		{From: "b", To: "d"}, {From: "c", To: "d"},
	}, []string{"D1"})
	if err != nil {
		t.Fatal(err)
	}
	if s.IsChain() {
		t.Fatal("DAG misdetected as chain")
	}
	if !s.FanOut("a") || s.FanOut("b") {
		t.Fatal("fan-out detection wrong")
	}
	if !s.FanIn("d") || s.FanIn("b") {
		t.Fatal("fan-in detection wrong")
	}
	order, err := s.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[ComponentID]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range s.Edges {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("topo order violates edge %s->%s: %v", e.From, e.To, order)
		}
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	s := chain3(t)
	first, err := s.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := s.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("order changed: %v vs %v", first, again)
			}
		}
	}
}

func TestBindingBind(t *testing.T) {
	b := Binding{"a": {"cpu": "cpu@h1", "net": "link:L1"}}
	out, err := b.Bind("a", qos.ResourceVector{"cpu": 2, "net": 3})
	if err != nil {
		t.Fatal(err)
	}
	if out["cpu@h1"] != 2 || out["link:L1"] != 3 {
		t.Fatalf("bound = %v", out)
	}
}

func TestBindingBindAccumulates(t *testing.T) {
	b := Binding{"a": {"cpu": "shared", "gpu": "shared"}}
	out, err := b.Bind("a", qos.ResourceVector{"cpu": 2, "gpu": 3})
	if err != nil {
		t.Fatal(err)
	}
	if out["shared"] != 5 {
		t.Fatalf("accumulated = %v", out["shared"])
	}
}

func TestBindingBindMissing(t *testing.T) {
	b := Binding{"a": {"cpu": "cpu@h1"}}
	if _, err := b.Bind("a", qos.ResourceVector{"net": 1}); err == nil {
		t.Fatal("unbound resource accepted")
	}
	if _, err := b.Bind("ghost", qos.ResourceVector{"net": 1}); err == nil {
		t.Fatal("unbound component accepted")
	}
}

func TestTranslationTableFuncClones(t *testing.T) {
	table := TranslationTable{"A0": {"A1": {"r": 1}}}
	f := table.Func()
	req, ok := f(lvl("A0", 0), lvl("A1", 1))
	if !ok {
		t.Fatal("pair missing")
	}
	req["r"] = 99
	again, _ := f(lvl("A0", 0), lvl("A1", 1))
	if again["r"] != 1 {
		t.Fatal("table mutated through returned requirement")
	}
	if _, ok := f(lvl("A0", 0), lvl("ghost", 9)); ok {
		t.Fatal("unknown pair should be unsupported")
	}
	if _, ok := f(lvl("ghost", 9), lvl("A1", 1)); ok {
		t.Fatal("unknown input should be unsupported")
	}
}

func TestTranslationTableScaleAndPairs(t *testing.T) {
	table := TranslationTable{"A0": {"A1": {"r": 2}, "A2": {"r": 4}}}
	scaled := table.Scale(2.5)
	if scaled["A0"]["A1"]["r"] != 5 || scaled["A0"]["A2"]["r"] != 10 {
		t.Fatalf("scaled = %v", scaled)
	}
	if table["A0"]["A1"]["r"] != 2 {
		t.Fatal("Scale mutated the original table")
	}
	pairs := table.Pairs()
	if len(pairs) != 2 || pairs[0] != [2]string{"A0", "A1"} || pairs[1] != [2]string{"A0", "A2"} {
		t.Fatalf("pairs = %v", pairs)
	}
}

func TestConcatLevelNames(t *testing.T) {
	name := ConcatLevelName("Qn", "Qp")
	if name != "Qn||Qp" {
		t.Fatalf("name = %q", name)
	}
	parts := SplitConcatLevelName(name)
	if len(parts) != 2 || parts[0] != "Qn" || parts[1] != "Qp" {
		t.Fatalf("parts = %v", parts)
	}
}

func TestSuccsPreds(t *testing.T) {
	s := chain3(t)
	if got := s.Succs("a"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Succs(a) = %v", got)
	}
	if got := s.Preds("c"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Preds(c) = %v", got)
	}
	if got := s.Succs("c"); got != nil {
		t.Fatalf("Succs(c) = %v", got)
	}
	ids := s.ComponentIDs()
	if len(ids) != 3 || ids[0] != "a" || ids[1] != "b" || ids[2] != "c" {
		t.Fatalf("ComponentIDs = %v", ids)
	}
}

func TestMustServicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustService("bad", nil, nil, nil)
}
