package svc

import (
	"fmt"
	"sort"

	"qosres/internal/qos"
)

// Edge is a directed dependency edge between two service components: the
// output of From is the input of To, and From's Qout is equivalent to
// (or, for fan-in components, contributes to) To's Qin.
type Edge struct {
	From, To ComponentID
}

// Service is a distributed service: a set of collaborating service
// components plus their dependency graph (section 2.2). The dependency
// graph must be a connected DAG with a single source component and a
// single sink component; the basic algorithm additionally requires it to
// be a chain.
type Service struct {
	// Name identifies the service, e.g. "S1" or "VideoStreamingTracking".
	Name string
	// Components holds the participating components.
	Components map[ComponentID]*Component
	// Edges is the dependency graph.
	Edges []Edge
	// EndToEndRanking orders the sink component's output level names from
	// best to worst. The paper assumes end-to-end QoS levels can be ranked
	// in a linear order by user preference; the best level has the highest
	// "level number" (level K for K levels, down to level 1).
	EndToEndRanking []string
}

// NewService builds and validates a Service.
func NewService(name string, components []*Component, edges []Edge, ranking []string) (*Service, error) {
	s := &Service{
		Name:            name,
		Components:      make(map[ComponentID]*Component, len(components)),
		Edges:           edges,
		EndToEndRanking: ranking,
	}
	for _, c := range components {
		if _, dup := s.Components[c.ID]; dup {
			return nil, fmt.Errorf("svc: service %s has duplicate component %s", name, c.ID)
		}
		s.Components[c.ID] = c
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustService is NewService that panics on error, for static definitions.
func MustService(name string, components []*Component, edges []Edge, ranking []string) *Service {
	s, err := NewService(name, components, edges, ranking)
	if err != nil {
		panic(err)
	}
	return s
}

// Succs returns the IDs of the components downstream of id, in edge order.
func (s *Service) Succs(id ComponentID) []ComponentID {
	var out []ComponentID
	for _, e := range s.Edges {
		if e.From == id {
			out = append(out, e.To)
		}
	}
	return out
}

// Preds returns the IDs of the components upstream of id, in edge order.
func (s *Service) Preds(id ComponentID) []ComponentID {
	var out []ComponentID
	for _, e := range s.Edges {
		if e.To == id {
			out = append(out, e.From)
		}
	}
	return out
}

// Source returns the unique source component (no incoming edges).
func (s *Service) Source() (*Component, error) {
	var src *Component
	for id, c := range s.Components {
		if len(s.Preds(id)) == 0 {
			if src != nil {
				return nil, fmt.Errorf("svc: service %s has multiple source components (%s, %s)", s.Name, src.ID, id)
			}
			src = c
		}
	}
	if src == nil {
		return nil, fmt.Errorf("svc: service %s has no source component", s.Name)
	}
	return src, nil
}

// Sink returns the unique sink component (no outgoing edges); its Qout is
// the end-to-end QoS of the service.
func (s *Service) Sink() (*Component, error) {
	var sink *Component
	for id, c := range s.Components {
		if len(s.Succs(id)) == 0 {
			if sink != nil {
				return nil, fmt.Errorf("svc: service %s has multiple sink components (%s, %s)", s.Name, sink.ID, id)
			}
			sink = c
		}
	}
	if sink == nil {
		return nil, fmt.Errorf("svc: service %s has no sink component", s.Name)
	}
	return sink, nil
}

// TopoOrder returns the component IDs in a deterministic topological
// order (Kahn's algorithm with lexicographic tie-breaking).
func (s *Service) TopoOrder() ([]ComponentID, error) {
	indeg := make(map[ComponentID]int, len(s.Components))
	for id := range s.Components {
		indeg[id] = 0
	}
	for _, e := range s.Edges {
		indeg[e.To]++
	}
	var ready []ComponentID
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	sortIDs(ready)
	order := make([]ComponentID, 0, len(s.Components))
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		var newly []ComponentID
		for _, nxt := range s.Succs(id) {
			indeg[nxt]--
			if indeg[nxt] == 0 {
				newly = append(newly, nxt)
			}
		}
		sortIDs(newly)
		ready = append(ready, newly...)
		sortIDs(ready)
	}
	if len(order) != len(s.Components) {
		return nil, fmt.Errorf("svc: service %s dependency graph has a cycle", s.Name)
	}
	return order, nil
}

// IsChain reports whether the dependency graph is a simple chain, the
// implicit assumption of the basic algorithm (before section 4.3.2).
func (s *Service) IsChain() bool {
	for id := range s.Components {
		if len(s.Succs(id)) > 1 || len(s.Preds(id)) > 1 {
			return false
		}
	}
	_, errSrc := s.Source()
	_, errSink := s.Sink()
	return errSrc == nil && errSink == nil && len(s.Edges) == len(s.Components)-1
}

// Chain returns the component IDs in chain order. It fails when the
// dependency graph is not a chain.
func (s *Service) Chain() ([]ComponentID, error) {
	if !s.IsChain() {
		return nil, fmt.Errorf("svc: service %s dependency graph is not a chain", s.Name)
	}
	return s.TopoOrder()
}

// FanIn reports whether the component has more than one upstream
// component (its Qin is a concatenation of upstream Qouts).
func (s *Service) FanIn(id ComponentID) bool { return len(s.Preds(id)) > 1 }

// FanOut reports whether the component has more than one downstream
// component (its Qout feeds every adjacent component).
func (s *Service) FanOut(id ComponentID) bool { return len(s.Succs(id)) > 1 }

// Validate checks the service definition: all components valid, edges
// referencing known components, graph acyclic and connected with a single
// source and sink, and the end-to-end ranking exactly covering the sink's
// output levels.
func (s *Service) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("svc: service with empty name")
	}
	if len(s.Components) == 0 {
		return fmt.Errorf("svc: service %s has no components", s.Name)
	}
	for _, c := range s.Components {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	seenEdge := make(map[Edge]bool, len(s.Edges))
	for _, e := range s.Edges {
		if _, ok := s.Components[e.From]; !ok {
			return fmt.Errorf("svc: service %s edge references unknown component %s", s.Name, e.From)
		}
		if _, ok := s.Components[e.To]; !ok {
			return fmt.Errorf("svc: service %s edge references unknown component %s", s.Name, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("svc: service %s has self-loop on %s", s.Name, e.From)
		}
		if seenEdge[e] {
			return fmt.Errorf("svc: service %s has duplicate edge %s->%s", s.Name, e.From, e.To)
		}
		seenEdge[e] = true
	}
	if _, err := s.TopoOrder(); err != nil {
		return err
	}
	src, err := s.Source()
	if err != nil {
		return err
	}
	sink, err := s.Sink()
	if err != nil {
		return err
	}
	// Connectivity: every component reachable from the source.
	reach := map[ComponentID]bool{src.ID: true}
	stack := []ComponentID{src.ID}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nxt := range s.Succs(id) {
			if !reach[nxt] {
				reach[nxt] = true
				stack = append(stack, nxt)
			}
		}
	}
	if len(reach) != len(s.Components) {
		return fmt.Errorf("svc: service %s has components unreachable from source %s", s.Name, src.ID)
	}
	// Source components must have exactly one input level: the original
	// quality of the source data.
	if len(src.In) != 1 {
		return fmt.Errorf("svc: service %s source component %s must have exactly one input level (the source data quality), has %d", s.Name, src.ID, len(src.In))
	}
	// End-to-end ranking must be a permutation of the sink's output levels.
	if len(s.EndToEndRanking) != len(sink.Out) {
		return fmt.Errorf("svc: service %s end-to-end ranking has %d levels, sink %s has %d output levels", s.Name, len(s.EndToEndRanking), sink.ID, len(sink.Out))
	}
	seen := make(map[string]bool, len(s.EndToEndRanking))
	for _, name := range s.EndToEndRanking {
		if seen[name] {
			return fmt.Errorf("svc: service %s end-to-end ranking repeats level %s", s.Name, name)
		}
		seen[name] = true
		if _, ok := sink.OutLevel(name); !ok {
			return fmt.Errorf("svc: service %s end-to-end ranking names unknown sink level %s", s.Name, name)
		}
	}
	return nil
}

// RankOf returns the paper-style level number of an end-to-end QoS level
// name: the best level gets K (for K levels), the worst gets 1. Unknown
// names get 0.
func (s *Service) RankOf(levelName string) int {
	for i, name := range s.EndToEndRanking {
		if name == levelName {
			return len(s.EndToEndRanking) - i
		}
	}
	return 0
}

// ComponentIDs returns all component IDs sorted lexicographically.
func (s *Service) ComponentIDs() []ComponentID {
	out := make([]ComponentID, 0, len(s.Components))
	for id := range s.Components {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

func sortIDs(ids []ComponentID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// Binding maps, per component, the component's abstract resource names to
// concrete environment resource IDs for one particular service session.
// Example: component cP's "cpu" binds to "cpu@H1" and its "net" binds to
// "net:H4->H1" once the session's placement is known.
type Binding map[ComponentID]map[string]string

// Bind rewrites a requirement vector keyed by abstract names into one
// keyed by concrete resource IDs. Unbound names are an error: a session
// must bind every resource a component can require. When two abstract
// names bind to the same concrete resource, their amounts accumulate.
func (b Binding) Bind(comp ComponentID, req qos.ResourceVector) (qos.ResourceVector, error) {
	m := b[comp]
	out := make(qos.ResourceVector, len(req))
	for name, amount := range req {
		concrete, ok := m[name]
		if !ok {
			return nil, fmt.Errorf("svc: component %s has no binding for resource %q", comp, name)
		}
		out[concrete] += amount
	}
	return out, nil
}
