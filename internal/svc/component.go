// Package svc implements the component-based QoS-Resource Model of
// section 2 of the paper. A distributed service is a set of collaborating
// service components arranged in a dependency graph (a chain in the basic
// model, a DAG in the extended model of section 4.3.2). Each component
// carries a set of discrete input QoS levels, a set of discrete output QoS
// levels, and a translation function T_c(Qin, Qout) -> R mapping a level
// pair to the resource requirement vector needed to achieve it.
package svc

import (
	"fmt"
	"sort"
	"strings"

	"qosres/internal/qos"
)

// ComponentID identifies a service component within a service, e.g.
// "VideoSender" or "cS".
type ComponentID string

// Level is one discrete QoS level of a component's Qin or Qout: a short
// name (the paper's Qa, Qb, ...) plus the QoS vector it denotes.
type Level struct {
	Name   string
	Vector qos.Vector
}

// ConcatLevelName builds the canonical name of a fan-in input level formed
// by concatenating upstream output levels, e.g. "Qn||Qp".
func ConcatLevelName(parts ...string) string { return strings.Join(parts, "||") }

// SplitConcatLevelName splits a fan-in level name into its upstream parts.
func SplitConcatLevelName(name string) []string { return strings.Split(name, "||") }

// TranslationFunc is the component developer's "plug-in" translation
// function T_c. Given an input QoS level and a desired output QoS level it
// returns the component's resource requirement vector, keyed by the
// component's abstract resource names. ok=false means the component cannot
// produce qout from qin at all (no edge in the QRG, regardless of
// availability).
type TranslationFunc func(qin, qout Level) (req qos.ResourceVector, ok bool)

// Component is one service component: a functional unit participating in
// the service delivery (section 2.1).
type Component struct {
	// ID names the component within its service.
	ID ComponentID
	// In lists the component's acceptable input QoS levels. For the
	// source component this is the single level describing the original
	// quality of the source data.
	In []Level
	// Out lists the component's achievable output QoS levels.
	Out []Level
	// Translate is the component's translation function.
	Translate TranslationFunc
	// Resources lists the abstract resource names this component may
	// require (e.g. "cpu", "net"). It is the declared domain of the
	// requirement vectors Translate returns, used for binding and
	// validation.
	Resources []string
}

// InLevel returns the input level with the given name.
func (c *Component) InLevel(name string) (Level, bool) {
	for _, l := range c.In {
		if l.Name == name {
			return l, true
		}
	}
	return Level{}, false
}

// OutLevel returns the output level with the given name.
func (c *Component) OutLevel(name string) (Level, bool) {
	for _, l := range c.Out {
		if l.Name == name {
			return l, true
		}
	}
	return Level{}, false
}

// Validate checks structural sanity of the component definition.
func (c *Component) Validate() error {
	if c.ID == "" {
		return fmt.Errorf("svc: component with empty ID")
	}
	if len(c.In) == 0 {
		return fmt.Errorf("svc: component %s has no input levels", c.ID)
	}
	if len(c.Out) == 0 {
		return fmt.Errorf("svc: component %s has no output levels", c.ID)
	}
	if c.Translate == nil {
		return fmt.Errorf("svc: component %s has no translation function", c.ID)
	}
	seen := make(map[string]bool)
	for _, l := range c.In {
		if l.Name == "" {
			return fmt.Errorf("svc: component %s has input level with empty name", c.ID)
		}
		if seen["in:"+l.Name] {
			return fmt.Errorf("svc: component %s has duplicate input level %s", c.ID, l.Name)
		}
		seen["in:"+l.Name] = true
	}
	for _, l := range c.Out {
		if l.Name == "" {
			return fmt.Errorf("svc: component %s has output level with empty name", c.ID)
		}
		if seen["out:"+l.Name] {
			return fmt.Errorf("svc: component %s has duplicate output level %s", c.ID, l.Name)
		}
		seen["out:"+l.Name] = true
	}
	declared := make(map[string]bool, len(c.Resources))
	for _, r := range c.Resources {
		if r == "" {
			return fmt.Errorf("svc: component %s declares empty resource name", c.ID)
		}
		if declared[r] {
			return fmt.Errorf("svc: component %s declares duplicate resource %q", c.ID, r)
		}
		declared[r] = true
	}
	// Probe the translation function over the full level cross product and
	// check that every returned requirement only names declared resources.
	for _, in := range c.In {
		for _, out := range c.Out {
			req, ok := c.Translate(in, out)
			if !ok {
				continue
			}
			if err := req.Validate(); err != nil {
				return fmt.Errorf("svc: component %s, T(%s,%s): %v", c.ID, in.Name, out.Name, err)
			}
			for name := range req {
				if !declared[name] {
					return fmt.Errorf("svc: component %s, T(%s,%s) requires undeclared resource %q", c.ID, in.Name, out.Name, name)
				}
			}
		}
	}
	return nil
}

// TranslationTable is a table-driven TranslationFunc: requirement vectors
// indexed by input level name, then output level name. Missing entries
// mean the (Qin, Qout) pair is unsupported.
type TranslationTable map[string]map[string]qos.ResourceVector

// Func returns the TranslationFunc backed by the table. The returned
// requirement is cloned so callers may mutate it freely.
func (t TranslationTable) Func() TranslationFunc {
	return func(qin, qout Level) (qos.ResourceVector, bool) {
		row, ok := t[qin.Name]
		if !ok {
			return nil, false
		}
		req, ok := row[qout.Name]
		if !ok {
			return nil, false
		}
		return req.Clone(), true
	}
}

// Scale returns a copy of the table with every requirement scaled by f.
func (t TranslationTable) Scale(f float64) TranslationTable {
	out := make(TranslationTable, len(t))
	for in, row := range t {
		nr := make(map[string]qos.ResourceVector, len(row))
		for o, req := range row {
			nr[o] = req.Scale(f)
		}
		out[in] = nr
	}
	return out
}

// Pairs returns the supported (in, out) level-name pairs in deterministic
// order, useful for tests and diagnostics.
func (t TranslationTable) Pairs() [][2]string {
	var out [][2]string
	ins := make([]string, 0, len(t))
	for in := range t {
		ins = append(ins, in)
	}
	sort.Strings(ins)
	for _, in := range ins {
		outs := make([]string, 0, len(t[in]))
		for o := range t[in] {
			outs = append(outs, o)
		}
		sort.Strings(outs)
		for _, o := range outs {
			out = append(out, [2]string{in, o})
		}
	}
	return out
}
