package obs

// Adaptation metric names: the mid-session renegotiation subsystem's
// visibility surface. Documented in README.md ("Observability").
const (
	// MetricAdaptUpgrades counts sessions renegotiated to a higher
	// end-to-end QoS level.
	MetricAdaptUpgrades = "qosres_adapt_upgrades_total"
	// MetricAdaptDowngrades counts sessions renegotiated to a lower
	// end-to-end QoS level (brownout victims included).
	MetricAdaptDowngrades = "qosres_adapt_downgrades_total"
	// MetricAdaptHeld counts controller ticks spent inside the
	// hysteresis band — utilization between the watermarks, no action.
	MetricAdaptHeld = "qosres_adapt_held_total"
	// MetricAdaptFlapsSuppressed counts renegotiations the controller
	// wanted but suppressed: per-session cooldown not yet elapsed, or
	// the tick's action budget exhausted.
	MetricAdaptFlapsSuppressed = "qosres_adapt_flaps_suppressed_total"
	// MetricDeliveredQoSSeconds gauges the delivered QoS-seconds so far
	// (end-to-end rank × time held, summed over sessions) — the headline
	// adaptation metric.
	MetricDeliveredQoSSeconds = "qosres_delivered_qos_seconds"
)

// AdaptMetrics bundles the mid-session adaptation counters. The zero
// value (or one built from a nil registry) is fully inert.
type AdaptMetrics struct {
	// Upgrades counts renegotiations to a higher level.
	Upgrades *Counter
	// Downgrades counts renegotiations to a lower level.
	Downgrades *Counter
	// Held counts ticks held inside the hysteresis band.
	Held *Counter
	// FlapsSuppressed counts actions suppressed by cooldown or budget.
	FlapsSuppressed *Counter
	// DeliveredQoSSeconds gauges the running delivered-QoS-seconds total.
	DeliveredQoSSeconds *Gauge
}

// NewAdaptMetrics registers (or re-fetches) the adaptation counters. A
// nil registry yields an inert value whose counters record nothing.
func NewAdaptMetrics(r *Registry) *AdaptMetrics {
	return &AdaptMetrics{
		Upgrades: r.Counter(MetricAdaptUpgrades,
			"Sessions renegotiated to a higher end-to-end QoS level."),
		Downgrades: r.Counter(MetricAdaptDowngrades,
			"Sessions renegotiated to a lower end-to-end QoS level."),
		Held: r.Counter(MetricAdaptHeld,
			"Adaptation controller ticks held inside the hysteresis band."),
		FlapsSuppressed: r.Counter(MetricAdaptFlapsSuppressed,
			"Renegotiations suppressed by per-session cooldown or tick budget."),
		DeliveredQoSSeconds: r.Gauge(MetricDeliveredQoSSeconds,
			"Delivered QoS-seconds: end-to-end rank x held time, summed over sessions."),
	}
}
