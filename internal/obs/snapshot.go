package obs

// Snapshot renders the registry as plain data for JSON exposition and
// programmatic consumption (end-of-run tables, experiment rows).

// SnapshotData is a point-in-time copy of every metric.
type SnapshotData struct {
	Counters   []MetricValue    `json:"counters"`
	Gauges     []MetricValue    `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// MetricValue is one counter or gauge sample.
type MetricValue struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// HistogramValue is one histogram with its quantile summary. Buckets
// hold cumulative counts for the finite upper bounds; Count includes
// the +Inf overflow bucket.
type HistogramValue struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	P50     float64           `json:"p50"`
	P90     float64           `json:"p90"`
	P99     float64           `json:"p99"`
	Buckets []BucketValue     `json:"buckets"`
}

// BucketValue is one cumulative histogram bucket. Exemplar, when
// present, is the trace that most recently landed in this bucket.
type BucketValue struct {
	UpperBound float64   `json:"le"`
	Count      uint64    `json:"count"`
	Exemplar   *Exemplar `json:"exemplar,omitempty"`
}

// Snapshot copies every metric out of the registry. A nil registry
// yields an empty (but non-nil-sliced) snapshot.
func (r *Registry) Snapshot() SnapshotData {
	snap := SnapshotData{
		Counters:   []MetricValue{},
		Gauges:     []MetricValue{},
		Histograms: []HistogramValue{},
	}
	r.visit(func(f *family, _ string, ch *child) {
		labels := labelMap(ch.labels)
		switch f.typ {
		case TypeCounter:
			snap.Counters = append(snap.Counters, MetricValue{
				Name: f.name, Labels: labels, Value: ch.c.Value()})
		case TypeGauge:
			snap.Gauges = append(snap.Gauges, MetricValue{
				Name: f.name, Labels: labels, Value: ch.g.Value()})
		case TypeHistogram:
			bounds, counts, sum, total := ch.h.snapshot()
			exemplars := ch.h.exemplarSnapshot()
			hv := HistogramValue{
				Name: f.name, Labels: labels, Count: total, Sum: sum,
				P50: ch.h.Quantile(0.50), P90: ch.h.Quantile(0.90), P99: ch.h.Quantile(0.99),
				Buckets: make([]BucketValue, 0, len(bounds)),
			}
			var cum uint64
			for i, b := range bounds {
				cum += counts[i]
				bv := BucketValue{UpperBound: b, Count: cum}
				if exemplars != nil && exemplars[i].TraceID != "" {
					ex := exemplars[i]
					bv.Exemplar = &ex
				}
				hv.Buckets = append(hv.Buckets, bv)
			}
			snap.Histograms = append(snap.Histograms, hv)
		}
	})
	return snap
}

func labelMap(pairs []labelPair) map[string]string {
	if len(pairs) == 0 {
		return nil
	}
	m := make(map[string]string, len(pairs))
	for _, p := range pairs {
		m[p.k] = p.v
	}
	return m
}
