package obs

// Durability metric names: the write-ahead log and crash-recovery
// visibility surface. Documented in README.md ("Observability").
const (
	// MetricWALAppends counts records appended (and fsynced, unless the
	// log runs NoSync) to the write-ahead log.
	MetricWALAppends = "qosres_wal_appends_total"
	// MetricWALReplayRecords counts records applied by WAL replay during
	// Recover or CrashRestart.
	MetricWALReplayRecords = "qosres_wal_replay_records_total"
	// MetricRecoveryInDoubt counts in-doubt prepares resolved by
	// post-replay reconciliation, by outcome (commit, abort, unresolved).
	MetricRecoveryInDoubt = "qosres_recovery_indoubt_resolved_total"
	// MetricRecoveryLeasesSwept counts holds whose lease lapsed while the
	// proxy was down, swept exactly once on recovery before any new
	// admission.
	MetricRecoveryLeasesSwept = "qosres_recovery_leases_swept_total"
)

// WALMetrics bundles the durability counters. The zero value (or one
// built from a nil registry) is fully inert.
type WALMetrics struct {
	reg *Registry

	// Appends counts durable record appends.
	Appends *Counter
	// ReplayRecords counts records applied by replay.
	ReplayRecords *Counter
	// LeasesSwept counts holds reclaimed by the recovery lease sweep.
	LeasesSwept *Counter
}

// NewWALMetrics registers (or re-fetches) the durability counters. A nil
// registry yields an inert value whose counters record nothing.
func NewWALMetrics(r *Registry) *WALMetrics {
	return &WALMetrics{
		reg: r,
		Appends: r.Counter(MetricWALAppends,
			"Records appended to the write-ahead log."),
		ReplayRecords: r.Counter(MetricWALReplayRecords,
			"Write-ahead-log records applied by crash-recovery replay."),
		LeasesSwept: r.Counter(MetricRecoveryLeasesSwept,
			"Holds whose lease lapsed during downtime, swept on recovery."),
	}
}

// InDoubt counts one in-doubt prepare resolved during recovery with the
// given outcome (commit, abort, unresolved). Safe on a nil receiver or a
// receiver built from a nil registry.
func (m *WALMetrics) InDoubt(outcome string) {
	if m == nil {
		return
	}
	m.reg.Counter(MetricRecoveryInDoubt,
		"In-doubt prepares resolved by recovery reconciliation, by outcome.",
		"outcome", outcome).Inc()
}
