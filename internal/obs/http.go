package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in the Prometheus text exposition format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// SnapshotHandler serves the registry as a JSON snapshot.
func SnapshotHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// NewMux builds the full exposition mux: /metrics (Prometheus text),
// /snapshot (JSON), and the net/http/pprof profiling endpoints under
// /debug/pprof/.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/snapshot", SnapshotHandler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
