package obs

// Fault and repair metric names: the fault-injection subsystem's
// visibility surface. Documented in README.md ("Observability").
const (
	// MetricFaultInjected counts injected fault events by kind
	// (link_down, host_down, resource_down, capacity_shrink, recover,
	// capacity_restore).
	MetricFaultInjected = "qosres_fault_injected_total"
	// MetricSessionsRepaired counts live sessions whose reservation was
	// invalidated by a fault and re-established at the same (or better)
	// end-to-end QoS level.
	MetricSessionsRepaired = "qosres_sessions_repaired_total"
	// MetricSessionsDegraded counts sessions re-established at a lower
	// end-to-end QoS level via the tradeoff downgrade path.
	MetricSessionsDegraded = "qosres_sessions_degraded_total"
	// MetricSessionsRepairFailed counts sessions terminated because no
	// feasible plan existed even after the tradeoff downgrade.
	MetricSessionsRepairFailed = "qosres_sessions_repair_failed_total"
	// MetricLeasesExpired counts reservation leases reclaimed by expiry
	// sweeps — capacity that a crashed or silent session would otherwise
	// have stranded.
	MetricLeasesExpired = "qosres_leases_expired_total"
)

// FaultMetrics bundles the fault-injection and session-repair counters.
// The zero value (or one built from a nil registry) is fully inert.
type FaultMetrics struct {
	reg *Registry

	// Repaired counts sessions re-admitted at the same or better QoS.
	Repaired *Counter
	// Degraded counts sessions re-admitted at a lower QoS level.
	Degraded *Counter
	// RepairFailed counts sessions terminated with no feasible repair.
	RepairFailed *Counter
	// LeasesExpired counts holds reclaimed by lease-expiry sweeps.
	LeasesExpired *Counter
	// RepairAbandoned counts sessions a repair sweep left unexamined
	// because its deadline expired first.
	RepairAbandoned *Counter
}

// NewFaultMetrics registers (or re-fetches) the fault counters. A nil
// registry yields an inert value whose counters record nothing.
func NewFaultMetrics(r *Registry) *FaultMetrics {
	return &FaultMetrics{
		reg: r,
		Repaired: r.Counter(MetricSessionsRepaired,
			"Sessions repaired after a fault at the same or better QoS level."),
		Degraded: r.Counter(MetricSessionsDegraded,
			"Sessions repaired after a fault at a lower QoS level."),
		RepairFailed: r.Counter(MetricSessionsRepairFailed,
			"Sessions terminated after a fault with no feasible repair plan."),
		LeasesExpired: r.Counter(MetricLeasesExpired,
			"Reservation leases reclaimed by expiry sweeps."),
		RepairAbandoned: r.Counter(MetricRepairAbandoned,
			"Sessions left unexamined by a repair sweep whose deadline expired."),
	}
}

// Injected counts one injected fault event of the given kind. Safe on a
// nil receiver or a receiver built from a nil registry.
func (m *FaultMetrics) Injected(kind string) {
	if m == nil {
		return
	}
	m.reg.Counter(MetricFaultInjected,
		"Fault events injected, by kind.", "kind", kind).Inc()
}
