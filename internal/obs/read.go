package obs

// Read-path metric names: the lock-free snapshot cache and plan memo's
// visibility surface. Documented in README.md ("Observability").
const (
	// MetricSnapshotCacheHits counts snapshot queries served from a
	// cached epoch-validated snapshot without rebuilding it.
	MetricSnapshotCacheHits = "qosres_snapshot_cache_hits_total"
	// MetricSnapshotCacheMisses counts snapshot queries that had to
	// rebuild the snapshot because a broker epoch moved (or the entry
	// was cold).
	MetricSnapshotCacheMisses = "qosres_snapshot_cache_misses_total"
	// MetricPlanMemoHits counts admissions that reused a memoized plan
	// (same template, same planner, identical epoch vector) and skipped
	// QRG instantiation and Dijkstra entirely.
	MetricPlanMemoHits = "qosres_plan_memo_hits_total"
	// MetricPlanMemoMisses counts admissions that had to plan afresh.
	MetricPlanMemoMisses = "qosres_plan_memo_misses_total"
	// MetricPlanMemoEvictions counts memoized plans invalidated because
	// a commit bumped an epoch in their vector (or they were displaced
	// by the size bound).
	MetricPlanMemoEvictions = "qosres_plan_memo_evictions_total"
)

// ReadMetrics groups the read-path counters: how often the shared
// snapshot cache and the plan memo short-circuited the plan-side hot
// path, and how many memo entries commits invalidated. The zero value
// (or one built from a nil registry) is fully inert.
type ReadMetrics struct {
	// SnapshotHits counts epoch-validated snapshot cache hits.
	SnapshotHits *Counter
	// SnapshotMisses counts snapshot cache rebuilds.
	SnapshotMisses *Counter
	// PlanMemoHits counts admissions served by a memoized plan.
	PlanMemoHits *Counter
	// PlanMemoMisses counts admissions that planned afresh.
	PlanMemoMisses *Counter
	// PlanMemoEvictions counts memo entries invalidated by commits or
	// displaced by the size bound.
	PlanMemoEvictions *Counter
}

// NewReadMetrics registers (or re-fetches) the read-path counters. A
// nil registry yields an inert value whose counters record nothing.
func NewReadMetrics(r *Registry) *ReadMetrics {
	return &ReadMetrics{
		SnapshotHits: r.Counter(MetricSnapshotCacheHits,
			"Snapshot queries served from the epoch-validated shared snapshot cache."),
		SnapshotMisses: r.Counter(MetricSnapshotCacheMisses,
			"Snapshot queries that rebuilt the snapshot after an epoch moved or a cold entry."),
		PlanMemoHits: r.Counter(MetricPlanMemoHits,
			"Admissions that reused a memoized plan against an unchanged epoch vector."),
		PlanMemoMisses: r.Counter(MetricPlanMemoMisses,
			"Admissions that instantiated and planned afresh."),
		PlanMemoEvictions: r.Counter(MetricPlanMemoEvictions,
			"Memoized plans invalidated by epoch bumps or displaced by the memo size bound."),
	}
}
