package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, each preceded by its
// # HELP and # TYPE lines; histograms expand to cumulative _bucket
// samples (with an le label), plus _sum and _count. A nil registry
// writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var err error
	lastFamily := ""
	r.visit(func(f *family, _ string, ch *child) {
		if err != nil {
			return
		}
		if f.name != lastFamily {
			lastFamily = f.name
			if f.help != "" {
				_, err = fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
				if err != nil {
					return
				}
			}
			if _, err = fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
				return
			}
		}
		switch f.typ {
		case TypeCounter:
			err = writeSample(w, f.name, ch.labels, "", "", ch.c.Value())
		case TypeGauge:
			err = writeSample(w, f.name, ch.labels, "", "", ch.g.Value())
		case TypeHistogram:
			bounds, counts, sum, total := ch.h.snapshot()
			var cum uint64
			for i, bound := range bounds {
				cum += counts[i]
				le := strconv.FormatFloat(bound, 'g', -1, 64)
				if err = writeSample(w, f.name+"_bucket", ch.labels, "le", le, float64(cum)); err != nil {
					return
				}
			}
			cum += counts[len(counts)-1]
			if err = writeSample(w, f.name+"_bucket", ch.labels, "le", "+Inf", float64(cum)); err != nil {
				return
			}
			if err = writeSample(w, f.name+"_sum", ch.labels, "", "", sum); err != nil {
				return
			}
			err = writeSample(w, f.name+"_count", ch.labels, "", "", float64(total))
		}
	})
	return err
}

// writeSample writes one sample line, rendering the child labels plus
// an optional extra label (the histogram le).
func writeSample(w io.Writer, name string, labels []labelPair, extraK, extraV string, value float64) error {
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 || extraK != "" {
		b.WriteByte('{')
		for i, p := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(p.k)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(p.v))
			b.WriteByte('"')
		}
		if extraK != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraK)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(extraV))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	_, err := fmt.Fprintf(w, "%s %s\n", b.String(), strconv.FormatFloat(value, 'g', -1, 64))
	return err
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

func escapeHelp(s string) string { return helpEscaper.Replace(s) }
