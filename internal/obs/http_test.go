package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// populated builds a registry holding one of each metric type.
func populated() *Registry {
	r := New()
	r.Counter(MetricSessionEvents, "Session lifecycle events.", "event", "reserved").Add(3)
	r.Gauge(MetricUtilization, "Reserved fraction.", "resource", `cpu@H1`).Set(0.25)
	h := r.Histogram(MetricPlanStage, "Stage latency.", []float64{0.001, 0.01, 0.1}, "stage", StagePlan)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5) // +Inf bucket
	return r
}

// TestMetricsEndpointPrometheusFormat is the acceptance criterion that
// /metrics serves well-formed Prometheus text format.
func TestMetricsEndpointPrometheusFormat(t *testing.T) {
	srv := httptest.NewServer(NewMux(populated()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)

	for _, want := range []string{
		"# HELP qosres_session_events_total Session lifecycle events.",
		"# TYPE qosres_session_events_total counter",
		`qosres_session_events_total{event="reserved"} 3`,
		"# TYPE qosres_resource_utilization gauge",
		`qosres_resource_utilization{resource="cpu@H1"} 0.25`,
		"# TYPE qosres_plan_stage_seconds histogram",
		`qosres_plan_stage_seconds_bucket{stage="plan",le="0.001"} 1`,
		`qosres_plan_stage_seconds_bucket{stage="plan",le="0.1"} 2`,
		`qosres_plan_stage_seconds_bucket{stage="plan",le="+Inf"} 3`,
		`qosres_plan_stage_seconds_count{stage="plan"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
	// Structural checks: every non-comment line is "name{labels} value",
	// and every sample's family has a preceding TYPE line.
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
			continue
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Errorf("unbalanced labels in %q", line)
			}
			name = name[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[base] {
			t.Errorf("sample %q has no TYPE line", line)
		}
	}
}

// TestSnapshotEndpointJSON is the acceptance criterion that /snapshot
// serves valid JSON.
func TestSnapshotEndpointJSON(t *testing.T) {
	srv := httptest.NewServer(NewMux(populated()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var snap SnapshotData
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 3 {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Labels["resource"] != "cpu@H1" {
		t.Fatalf("gauges = %+v", snap.Gauges)
	}
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
	h := snap.Histograms[0]
	if h.Count != 3 || len(h.Buckets) != 3 || h.P50 <= 0 {
		t.Fatalf("histogram = %+v", h)
	}
}

func TestPprofEndpoint(t *testing.T) {
	srv := httptest.NewServer(NewMux(New()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "goroutine") {
		t.Fatal("pprof index does not list profiles")
	}
}

func TestPrometheusEscaping(t *testing.T) {
	r := New()
	r.Gauge("weird", "help with\nnewline", "l", `va"l\ue`).Set(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `# HELP weird help with\nnewline`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `weird{l="va\"l\\ue"} 1`) {
		t.Errorf("label not escaped:\n%s", out)
	}
}
