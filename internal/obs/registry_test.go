package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g", got)
	}
	if again := r.Counter("reqs_total", "other help"); again != c {
		t.Fatal("re-registration must return the same counter")
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g", got)
	}
}

func TestLabeledChildrenAreDistinct(t *testing.T) {
	r := New()
	a := r.Counter("evs_total", "", "kind", "a")
	b := r.Counter("evs_total", "", "kind", "b")
	if a == b {
		t.Fatal("different labels must yield different children")
	}
	a.Inc()
	if b.Value() != 0 {
		t.Fatal("label children must not share state")
	}
	// Label order must not matter.
	x := r.Gauge("multi", "", "b", "2", "a", "1")
	y := r.Gauge("multi", "", "a", "1", "b", "2")
	if x != y {
		t.Fatal("label order must not create distinct children")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering m as gauge after counter must panic")
		}
	}()
	r.Gauge("m", "")
}

func TestHistogramCountsAndQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("lat", "", []float64{1, 2, 4, 8})
	for v := 0.5; v <= 8; v += 0.5 {
		h.Observe(v)
	}
	h.Observe(100) // overflow bucket
	if h.Count() != 17 {
		t.Fatalf("count = %d", h.Count())
	}
	// Quantile interpolation stays within the data range and is
	// monotone in q.
	last := 0.0
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		v := h.Quantile(q)
		if v < last {
			t.Fatalf("quantiles not monotone: q=%g gave %g < %g", q, v, last)
		}
		last = v
	}
	if p50 := h.Quantile(0.5); p50 < 1 || p50 > 8 {
		t.Fatalf("p50 = %g out of data range", p50)
	}
	// Overflow observations clamp to the largest finite bound.
	if p100 := h.Quantile(1); p100 != 8 {
		t.Fatalf("q=1 = %g, want clamp to 8", p100)
	}
	if (&Histogram{}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	r := New()
	h := r.Histogram("u", "", LinearBuckets(0.1, 0.1, 10))
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	for _, tc := range []struct{ q, want float64 }{{0.5, 0.5}, {0.9, 0.9}, {0.99, 0.99}} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 0.02 {
			t.Errorf("q=%g: got %g, want ~%g", tc.q, got, tc.want)
		}
	}
}

func TestNopRegistryIsInert(t *testing.T) {
	r := Nop()
	if r.Enabled() {
		t.Fatal("nop registry reports enabled")
	}
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", StageBuckets())
	c.Inc()
	g.Set(3)
	h.Observe(1)
	sp := StartSpan(h)
	if d := sp.End(); d != 0 {
		t.Fatalf("inert span measured %v", d)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nop metrics recorded state")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nop exposition wrote %q, err %v", sb.String(), err)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nop snapshot not empty")
	}
}

// TestNopHotPathNoAllocs is the acceptance criterion that disabled
// instrumentation adds no allocations to the planning hot path.
func TestNopHotPathNoAllocs(t *testing.T) {
	st := NewPlanStages(Nop())
	c := Nop().Counter("evs", "")
	g := Nop().Gauge("g", "")
	allocs := testing.AllocsPerRun(1000, func() {
		sp := StartSpan(st.Plan)
		c.Inc()
		g.Set(1)
		st.Snapshot.Observe(2)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nop hot path allocates %.1f per op", allocs)
	}
}

// TestRegistryConcurrentStress exercises get-or-create plus all metric
// mutations and readers from many goroutines; run under -race.
func TestRegistryConcurrentStress(t *testing.T) {
	r := New()
	kinds := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := kinds[i%len(kinds)]
				r.Counter("evs_total", "events", "kind", k).Inc()
				r.Gauge("depth", "").Add(1)
				r.Histogram("lat", "", StageBuckets(), "stage", k).Observe(float64(i) * 1e-6)
				if i%50 == 0 {
					var sb strings.Builder
					_ = r.WritePrometheus(&sb)
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	var total float64
	for _, k := range kinds {
		total += r.Counter("evs_total", "", "kind", k).Value()
	}
	if total != 8*500 {
		t.Fatalf("counter lost updates: %g", total)
	}
	if g := r.Gauge("depth", "").Value(); g != 8*500 {
		t.Fatalf("gauge lost updates: %g", g)
	}
	var hist uint64
	for _, k := range kinds {
		hist += r.Histogram("lat", "", nil, "stage", k).Count()
	}
	if hist != 8*500 {
		t.Fatalf("histogram lost observations: %d", hist)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	for i, want := range []float64{1, 2, 4, 8} {
		if exp[i] != want {
			t.Fatalf("exp = %v", exp)
		}
	}
	lin := LinearBuckets(0, 5, 3)
	for i, want := range []float64{0, 5, 10} {
		if lin[i] != want {
			t.Fatalf("lin = %v", lin)
		}
	}
}

func BenchmarkNopSpan(b *testing.B) {
	st := NewPlanStages(Nop())
	c := Nop().Counter("evs", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpan(st.Plan)
		c.Inc()
		sp.End()
	}
}

func BenchmarkLiveSpan(b *testing.B) {
	st := NewPlanStages(New())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpan(st.Plan)
		sp.End()
	}
}

func BenchmarkCounterParallel(b *testing.B) {
	c := New().Counter("evs", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
