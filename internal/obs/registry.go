// Package obs is a stdlib-only observability subsystem: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms with quantile summaries), a Prometheus-text-format and
// JSON exposition layer (see prom.go, snapshot.go, http.go), and
// lightweight stage spans for instrumenting the planning hot path
// (see span.go).
//
// The registry is designed so that a disabled ("Nop") registry costs
// nothing on the hot path: a nil *Registry is a valid no-op registry,
// every metric handle it returns is nil, and every metric method is
// nil-safe and allocation-free when the receiver is nil. Callers can
// therefore instrument unconditionally and let the caller's choice of
// registry decide whether anything is recorded.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType discriminates metric families, using the Prometheus
// exposition-format type names.
type MetricType string

// The supported metric types.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Registry is a concurrency-safe collection of metric families. The
// zero *Registry (nil) is the no-op registry: it accepts every call and
// records nothing. Create a recording registry with New.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric family: every (label set) child shares the
// name, help text and type.
type family struct {
	name    string
	help    string
	typ     MetricType
	buckets []float64
	// metrics maps the canonical label rendering to the child metric.
	metrics map[string]*child
}

// child is one labeled instance of a family.
type child struct {
	labels []labelPair
	c      *Counter
	g      *Gauge
	h      *Histogram
}

type labelPair struct{ k, v string }

// New creates an empty recording registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Nop returns the no-op registry. All metric handles obtained from it
// are nil and record nothing, at zero allocation cost.
func Nop() *Registry { return nil }

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// labelKey renders kv label pairs canonically (sorted by key). It
// panics on an odd-length labels list, which is a programming error.
func labelKey(labels []string) ([]labelPair, string) {
	if len(labels) == 0 {
		return nil, ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	pairs := make([]labelPair, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, labelPair{k: labels[i], v: labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteByte('=')
		b.WriteString(p.v)
	}
	return pairs, b.String()
}

// get returns the child for (name, labels), creating the family and/or
// child on first use. Re-registration with the same name returns the
// existing metric (get-or-create semantics); the help text and buckets
// of the first registration win. Registering the same name with a
// different type panics.
func (r *Registry) get(typ MetricType, name, help string, buckets []float64, labels []string) *child {
	pairs, key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, buckets: buckets,
			metrics: make(map[string]*child)}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	}
	ch := f.metrics[key]
	if ch == nil {
		ch = &child{labels: pairs}
		switch typ {
		case TypeCounter:
			ch.c = &Counter{}
		case TypeGauge:
			ch.g = &Gauge{}
		case TypeHistogram:
			ch.h = newHistogram(f.buckets)
		}
		f.metrics[key] = ch
	}
	return ch
}

// Counter returns the counter for (name, labels), creating it on first
// use. Labels are alternating key/value pairs. A nil registry returns a
// nil (no-op) counter.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.get(TypeCounter, name, help, nil, labels).c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(TypeGauge, name, help, nil, labels).g
}

// Histogram returns the histogram for (name, labels), creating it on
// first use with the given bucket upper bounds (ascending; an implicit
// +Inf bucket is always appended). Buckets of later calls for the same
// name are ignored; the first registration wins.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(TypeHistogram, name, help, buckets, labels).h
}

// visit calls fn for every family (sorted by name) and, within a
// family, for every child (sorted by label rendering), under the
// registry lock. Used by the exposition layer.
func (r *Registry) visit(fn func(f *family, key string, ch *child)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := r.families[n]
		keys := make([]string, 0, len(f.metrics))
		for k := range f.metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fn(f, k, f.metrics[k])
		}
	}
}

// Counter is a monotonically increasing float64. A nil *Counter is a
// valid no-op. Safe for concurrent use.
type Counter struct {
	bits atomic.Uint64
}

// Add increases the counter. Negative deltas are ignored.
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a settable float64. A nil *Gauge is a valid no-op. Safe for
// concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set positions the gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by a (possibly negative) delta.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram of float64 observations. A nil
// *Histogram is a valid no-op. Safe for concurrent use.
type Histogram struct {
	mu sync.Mutex
	// bounds are the finite bucket upper bounds, ascending. counts has
	// len(bounds)+1 entries; the last is the +Inf overflow bucket.
	bounds []float64
	counts []uint64
	sum    float64
	total  uint64
	// exemplars pairs each bucket with the trace that most recently
	// landed in it; allocated lazily on the first exemplar so plain
	// observations pay nothing.
	exemplars []Exemplar
}

// Exemplar ties a bucket's most recent observation to the trace that
// produced it, letting dashboards jump from a latency bucket to a
// concrete trace tree.
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// ObserveExemplar records one value and attaches the trace that
// produced it as the landing bucket's exemplar (replacing any previous
// one). An empty trace ID degrades to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	if traceID == "" {
		h.Observe(v)
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	if h.exemplars == nil {
		h.exemplars = make([]Exemplar, len(h.counts))
	}
	h.exemplars[i] = Exemplar{Value: v, TraceID: traceID}
	h.mu.Unlock()
}

// exemplarSnapshot copies the per-bucket exemplars (nil when none were
// ever attached).
func (h *Histogram) exemplarSnapshot() []Exemplar {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.exemplars == nil {
		return nil
	}
	out := make([]Exemplar, len(h.exemplars))
	copy(out, h.exemplars)
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation within the target bucket, Prometheus-style: the first
// bucket interpolates from 0, and observations landing in the +Inf
// overflow bucket report the largest finite bound. Returns 0 when the
// histogram is empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	bounds := h.bounds
	counts := make([]uint64, len(h.counts))
	copy(counts, h.counts)
	total := h.total
	h.mu.Unlock()
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < target || c == 0 {
			continue
		}
		if i >= len(bounds) {
			// Overflow bucket: the best estimate is the largest bound.
			return bounds[len(bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = bounds[i-1]
		}
		upper := bounds[i]
		return lower + (upper-lower)*(target-prev)/float64(c)
	}
	return bounds[len(bounds)-1]
}

// snapshotLocked returns copies of the histogram internals for the
// exposition layer.
func (h *Histogram) snapshot() (bounds []float64, counts []uint64, sum float64, total uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	counts = make([]uint64, len(h.counts))
	copy(counts, h.counts)
	return h.bounds, counts, h.sum, h.total
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and multiplying by factor: start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n evenly spaced bucket bounds: start,
// start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 || width <= 0 {
		panic("obs: LinearBuckets needs n >= 1, width > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}
