// Distributed tracing: causal trace contexts propagated across the
// transport fabric, recorded as hierarchical span trees with typed
// events, head-based sampling plus always-sample-on-error tail rescue,
// and a bounded resident-trace store (LRU by root completion).
//
// The recorder follows the package's nil-is-inert discipline: a nil
// *TraceRecorder is a valid no-op recorder, the zero ActiveSpan is
// inert, and with sampling off the hot path never locks, never reads
// the clock, and never allocates.
package obs

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// MetricTraceEvictions counts completed traces evicted from the
// recorder's bounded resident store.
const MetricTraceEvictions = "qosres_trace_evictions_total"

// Span event types: protocol adversities annotated on the owning span.
const (
	// EventRetry marks an admission retry attempt.
	EventRetry = "retry"
	// EventBackoff marks a backoff wait before a retry.
	EventBackoff = "backoff"
	// EventBreakerFastFail marks a call refused by an open breaker.
	EventBreakerFastFail = "breaker_fastfail"
	// EventShed marks an admission refused by the in-flight gate.
	EventShed = "shed"
	// EventDeadlineExceeded marks work abandoned at a context deadline.
	EventDeadlineExceeded = "deadline_exceeded"
	// EventDegradedToCached marks an availability snapshot served from a
	// cached (aged) report after a fabric failure.
	EventDegradedToCached = "degraded_to_cached"
	// EventPartitionDrop marks a delivery dropped by a network partition.
	EventPartitionDrop = "partition_drop"
	// EventLossDrop marks a delivery dropped by the loss knob.
	EventLossDrop = "loss_drop"
	// EventDuplicateSuppressed marks a duplicated delivery suppressed by
	// the receiver (one span per logical message, not per copy).
	EventDuplicateSuppressed = "duplicate_suppressed"
	// EventBatchRound marks a member joining a group-commit round; the
	// detail carries the round size.
	EventBatchRound = "batch_round"
	// EventPlanMemoHit marks an admission that reused a memoized plan
	// against an unchanged epoch vector, skipping the build and plan
	// stages entirely.
	EventPlanMemoHit = "plan_memo_hit"
)

// Span statuses. Any status other than "" or StatusOK marks the span —
// and its whole trace — as errored, which triggers tail rescue.
const (
	StatusOK = "ok"
)

// SpanContext is the wire-propagated causal identity of a span: enough
// for a remote participant to parent its own spans under the caller's.
// The zero value is "not recording".
type SpanContext struct {
	Trace uint64
	Span  uint64
	// Sampled reports that the trace is being recorded (head-sampled or
	// provisionally retained for error rescue).
	Sampled bool
}

// SpanEventRecord is one typed event annotated on a span.
type SpanEventRecord struct {
	At     time.Time
	Type   string
	Detail string
}

// SpanRecord is one completed span of a trace tree.
type SpanRecord struct {
	Trace  uint64
	Span   uint64
	Parent uint64 // 0 for roots
	Name   string
	Scope  string
	Start  time.Time
	Dur    time.Duration
	Status string
	Events []SpanEventRecord
}

// Root reports whether the span is a trace root.
func (s SpanRecord) Root() bool { return s.Parent == 0 }

// TraceSink receives the spans of retained traces, one call per span,
// at trace completion (root ended and every child span ended).
type TraceSink interface {
	ExportSpan(SpanRecord)
}

// TraceOptions configures a recorder.
type TraceOptions struct {
	// Sample is the head-sampling probability in [0,1]. 0 disables
	// head sampling (only error rescue, if enabled, retains traces).
	Sample float64
	// RescueErrors retains unsampled traces whose tree contains at
	// least one errored span (tail rescue).
	RescueErrors bool
	// MaxResident caps completed traces kept in memory; the oldest
	// completion is evicted first. Defaults to 512.
	MaxResident int
	// Seed seeds the head-sampling roll for reproducible runs.
	Seed int64
	// Sink, when non-nil, receives every span of retained traces.
	Sink TraceSink
}

// CompletedTrace is one retained trace tree, spans in end order.
type CompletedTrace struct {
	Trace   uint64
	Spans   []SpanRecord
	Errored bool
}

// traceBuf accumulates one in-flight trace.
type traceBuf struct {
	id        uint64
	sampled   bool
	errored   bool
	rootEnded bool
	open      int
	spans     []SpanRecord
	// openEvents holds events of spans that have not ended yet.
	openEvents map[uint64][]SpanEventRecord
}

// TraceRecorder creates, collects and retains trace trees. A nil
// recorder is a valid no-op. Safe for concurrent use.
type TraceRecorder struct {
	mu        sync.Mutex
	rng       *rand.Rand
	sample    float64
	rescue    bool
	capacity  int
	sink      TraceSink
	nextTrace uint64
	nextSpan  uint64
	building  map[uint64]*traceBuf
	done      []CompletedTrace
	evictions *Counter
	// exports tracks in-flight sink export loops: a completed tree is
	// removed from building before its spans are written to the sink, so
	// OpenTraces()==0 alone does not mean the sink has seen everything.
	exports sync.WaitGroup
}

// NewTraceRecorder creates a recorder. The registry (nil allowed) hosts
// the eviction counter.
func NewTraceRecorder(reg *Registry, o TraceOptions) *TraceRecorder {
	if o.MaxResident <= 0 {
		o.MaxResident = 512
	}
	if o.Sample < 0 {
		o.Sample = 0
	}
	if o.Sample > 1 {
		o.Sample = 1
	}
	return &TraceRecorder{
		rng:      rand.New(rand.NewSource(o.Seed)),
		sample:   o.Sample,
		rescue:   o.RescueErrors,
		capacity: o.MaxResident,
		sink:     o.Sink,
		building: make(map[uint64]*traceBuf),
		evictions: reg.Counter(MetricTraceEvictions,
			"Completed traces evicted from the bounded resident store."),
	}
}

// Root starts a new trace with a root span, rolling head sampling.
// Returns an inert span (Recording() false) when the trace is not
// retained, at zero allocation cost.
func (r *TraceRecorder) Root(name, scope string) ActiveSpan {
	if r == nil {
		return ActiveSpan{}
	}
	// sample and rescue are immutable after construction; with both off
	// the recorder can bail before touching the lock or the clock.
	if r.sample <= 0 && !r.rescue {
		return ActiveSpan{}
	}
	r.mu.Lock()
	sampled := r.sample > 0 && r.rng.Float64() < r.sample
	if !sampled && !r.rescue {
		r.mu.Unlock()
		return ActiveSpan{}
	}
	r.nextTrace++
	r.nextSpan++
	tid, sid := r.nextTrace, r.nextSpan
	r.building[tid] = &traceBuf{
		id: tid, sampled: sampled, open: 1,
		openEvents: make(map[uint64][]SpanEventRecord),
	}
	r.mu.Unlock()
	return ActiveSpan{rec: r, trace: tid, span: sid, name: name, scope: scope,
		start: time.Now()}
}

// ChildOf starts a span causally parented under a remote caller's span
// context — the participant side of cross-fabric propagation. Inert
// when the context is unsampled or its trace is no longer resident
// (late delivery after root completion).
func (r *TraceRecorder) ChildOf(sc SpanContext, name, scope string) ActiveSpan {
	if r == nil || !sc.Sampled {
		return ActiveSpan{}
	}
	r.mu.Lock()
	buf := r.building[sc.Trace]
	if buf == nil || buf.rootEnded {
		r.mu.Unlock()
		return ActiveSpan{}
	}
	r.nextSpan++
	sid := r.nextSpan
	buf.open++
	r.mu.Unlock()
	return ActiveSpan{rec: r, trace: sc.Trace, span: sid, parent: sc.Span,
		name: name, scope: scope, start: time.Now()}
}

// EventOn annotates an event on the span identified by a remote
// context — used for adversities observed away from the span's owner
// (e.g. a duplicated delivery suppressed by the receiver). The event
// attaches to the span whether it is still open or already ended, as
// long as its trace is resident; otherwise it is dropped silently.
func (r *TraceRecorder) EventOn(sc SpanContext, typ, detail string) {
	if r == nil || !sc.Sampled {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	buf := r.building[sc.Trace]
	if buf == nil {
		return
	}
	ev := SpanEventRecord{At: time.Now(), Type: typ, Detail: detail}
	for i := range buf.spans {
		if buf.spans[i].Span == sc.Span {
			buf.spans[i].Events = append(buf.spans[i].Events, ev)
			return
		}
	}
	// Not ended yet: park the event with the open span; endSpan folds
	// the accumulated events into the record.
	buf.openEvents[sc.Span] = append(buf.openEvents[sc.Span], ev)
}

// startChild registers a child span under an open local parent.
func (r *TraceRecorder) startChild(parent ActiveSpan, name, scope string) ActiveSpan {
	r.mu.Lock()
	buf := r.building[parent.trace]
	if buf == nil || buf.rootEnded {
		r.mu.Unlock()
		return ActiveSpan{}
	}
	r.nextSpan++
	sid := r.nextSpan
	buf.open++
	r.mu.Unlock()
	return ActiveSpan{rec: r, trace: parent.trace, span: sid, parent: parent.span,
		name: name, scope: scope, start: time.Now()}
}

// event records an event on an open local span.
func (r *TraceRecorder) event(s ActiveSpan, typ, detail string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	buf := r.building[s.trace]
	if buf == nil {
		return
	}
	buf.openEvents[s.span] = append(buf.openEvents[s.span],
		SpanEventRecord{At: time.Now(), Type: typ, Detail: detail})
}

// endSpan completes a span. When the root has ended and no spans
// remain open, the trace is flushed: exported to the sink (if
// retained) and moved into the bounded completed store.
func (r *TraceRecorder) endSpan(s ActiveSpan, status string) {
	var flushed *traceBuf
	r.mu.Lock()
	buf := r.building[s.trace]
	if buf == nil {
		r.mu.Unlock()
		return
	}
	rec := SpanRecord{
		Trace: s.trace, Span: s.span, Parent: s.parent,
		Name: s.name, Scope: s.scope,
		Start: s.start, Dur: time.Since(s.start), Status: status,
		Events: buf.openEvents[s.span],
	}
	delete(buf.openEvents, s.span)
	buf.spans = append(buf.spans, rec)
	buf.open--
	if status != "" && status != StatusOK {
		buf.errored = true
	}
	if s.parent == 0 {
		buf.rootEnded = true
	}
	if buf.rootEnded && buf.open <= 0 {
		delete(r.building, s.trace)
		if buf.sampled || (r.rescue && buf.errored) {
			r.done = append(r.done, CompletedTrace{
				Trace: buf.id, Spans: buf.spans, Errored: buf.errored})
			for len(r.done) > r.capacity {
				r.done = r.done[1:]
				r.evictions.Inc()
			}
			flushed = buf
			r.exports.Add(1)
		}
	}
	r.mu.Unlock()
	if flushed != nil {
		if r.sink != nil {
			for _, sp := range flushed.spans {
				r.sink.ExportSpan(sp)
			}
		}
		r.exports.Done()
	}
}

// DrainExports blocks until every in-flight sink export has finished.
// Call after the last span has ended (OpenTraces()==0) and before
// closing or flushing the sink: trees are removed from the open table
// before their spans are written, so without this wait a caller can
// flush the sink mid-export and tear the last tree.
func (r *TraceRecorder) DrainExports() {
	if r == nil {
		return
	}
	r.exports.Wait()
}

// OpenTraces returns the number of traces whose tree is not yet
// complete (root or some span still open).
func (r *TraceRecorder) OpenTraces() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.building)
}

// Completed returns a snapshot of the retained trace trees,
// oldest-completion first.
func (r *TraceRecorder) Completed() []CompletedTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CompletedTrace, len(r.done))
	copy(out, r.done)
	return out
}

// ActiveSpan is an in-progress span. The zero value is inert: every
// method is a no-op that never locks, never reads the clock, and
// never allocates. Pass by value.
type ActiveSpan struct {
	rec    *TraceRecorder
	trace  uint64
	span   uint64
	parent uint64
	name   string
	scope  string
	start  time.Time
}

// Recording reports whether the span records anything.
func (s ActiveSpan) Recording() bool { return s.rec != nil }

// Context returns the wire-propagatable causal identity of the span.
func (s ActiveSpan) Context() SpanContext {
	if s.rec == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.trace, Span: s.span, Sampled: true}
}

// TraceID renders the trace identifier as fixed-width hex — the
// exemplar format attached to histogram buckets.
func (s ActiveSpan) TraceID() string {
	if s.rec == nil {
		return ""
	}
	return TraceIDString(s.trace)
}

// TraceIDString renders a trace identifier as fixed-width hex.
func TraceIDString(id uint64) string { return fmt.Sprintf("%016x", id) }

// Child starts a child span under this span.
func (s ActiveSpan) Child(name, scope string) ActiveSpan {
	if s.rec == nil {
		return ActiveSpan{}
	}
	return s.rec.startChild(s, name, scope)
}

// Event annotates a typed event on the span.
func (s ActiveSpan) Event(typ, detail string) {
	if s.rec == nil {
		return
	}
	s.rec.event(s, typ, detail)
}

// End completes the span with StatusOK.
func (s ActiveSpan) End() {
	if s.rec == nil {
		return
	}
	s.rec.endSpan(s, StatusOK)
}

// EndStatus completes the span with an explicit status; anything other
// than "" or StatusOK marks the trace errored (tail rescue).
func (s ActiveSpan) EndStatus(status string) {
	if s.rec == nil {
		return
	}
	if status == "" {
		status = StatusOK
	}
	s.rec.endSpan(s, status)
}

// EndErr completes the span: StatusOK when err is nil, otherwise the
// status given (or "error" when empty).
func (s ActiveSpan) EndErr(err error, status string) {
	if s.rec == nil {
		return
	}
	if err == nil {
		s.rec.endSpan(s, StatusOK)
		return
	}
	if status == "" {
		status = "error"
	}
	s.rec.endSpan(s, status)
}

// spanCtxKey keys the active span in a context.
type spanCtxKey struct{}

// ContextWithSpan attaches an active span to a context. Inert spans
// return the context unchanged (no allocation on the unsampled path).
func ContextWithSpan(ctx context.Context, s ActiveSpan) context.Context {
	if s.rec == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the active span attached to the context, or
// the inert zero span.
func SpanFromContext(ctx context.Context) ActiveSpan {
	if ctx == nil {
		return ActiveSpan{}
	}
	if s, ok := ctx.Value(spanCtxKey{}).(ActiveSpan); ok {
		return s
	}
	return ActiveSpan{}
}
