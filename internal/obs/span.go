package obs

import "time"

// Span stages of the session-planning hot path, used as the stage label
// of the MetricPlanStage histogram and as trace span stage names. The
// direct simulation path and the QoSProxy runtime's three-phase
// protocol record into the same stages so dashboards need not care
// which execution mode produced a sample.
const (
	// StageSnapshot is availability snapshot collection (phase 1).
	StageSnapshot = "snapshot"
	// StageBuild is QoS-Resource-Graph construction.
	StageBuild = "qrg_build"
	// StagePlan is the planning algorithm itself (min-max Dijkstra and
	// the tradeoff/DAG passes).
	StagePlan = "plan"
	// StageReserve is reservation dispatch (phase 3), including any
	// rollback on refusal.
	StageReserve = "reserve"
	// StageEstablish is the whole three-phase protocol end to end; only
	// emitted as a trace span by runtime-mode simulations.
	StageEstablish = "establish"
	// StageBatchCommit is one member's share of a group-commit round:
	// a child of the member's reserve-stage span covering the batched
	// 2PC fan-out. Every batch member keeps its own trace root; the
	// round itself appears only as these per-member children.
	StageBatchCommit = "batch_commit"
)

// Canonical metric names of the instrumented system; documented in
// README.md ("Observability").
const (
	// MetricPlanStage is the planning stage-latency histogram
	// (seconds), labeled stage=snapshot|qrg_build|plan|reserve.
	MetricPlanStage = "qosres_plan_stage_seconds"
	// MetricSessionEvents counts session lifecycle events, labeled
	// event=arrival|planned|plan_failed|reserved|reserve_failed|released.
	MetricSessionEvents = "qosres_session_events_total"
	// MetricRollbacks counts multi-resource reservation rollbacks.
	MetricRollbacks = "qosres_reservation_rollbacks_total"
	// MetricPlanPsi is the bottleneck contention index Ψ of accepted
	// plans.
	MetricPlanPsi = "qosres_plan_psi"
	// MetricPlanRank counts accepted plans by end-to-end QoS level
	// rank, labeled rank=<n>.
	MetricPlanRank = "qosres_plan_rank_total"
	// MetricUtilization is the per-resource reserved fraction (0..1),
	// labeled resource=<id>.
	MetricUtilization = "qosres_resource_utilization"
	// MetricAlpha is the last observed availability change index α per
	// resource, labeled resource=<id>.
	MetricAlpha = "qosres_resource_alpha"
	// MetricSimTime is the current simulation clock in TUs.
	MetricSimTime = "qosres_sim_time_tus"
	// MetricTemplateHits counts QRG constructions served from a
	// compiled (service, binding) template.
	MetricTemplateHits = "qosres_qrg_template_hits_total"
	// MetricTemplateMisses counts QRG template cache misses (each miss
	// compiles and caches a new template).
	MetricTemplateMisses = "qosres_qrg_template_misses_total"
	// MetricTemplatesCached gauges the number of compiled templates
	// resident in a cache.
	MetricTemplatesCached = "qosres_qrg_templates_cached"
	// MetricTemplateEvictions counts compiled templates evicted by the
	// cache's LRU bound.
	MetricTemplateEvictions = "qosres_qrg_template_evictions_total"
)

// StageBuckets are the default latency buckets of the stage histograms:
// 1µs up to ~0.5s, exponentially spaced.
func StageBuckets() []float64 { return ExpBuckets(1e-6, 2, 20) }

// PlanStages bundles the stage-latency histograms of the planning hot
// path. Obtained from NewPlanStages; with a nil registry every field is
// nil and spans cost nothing.
type PlanStages struct {
	Snapshot  *Histogram
	Build     *Histogram
	Plan      *Histogram
	Reserve   *Histogram
	Establish *Histogram
}

// NewPlanStages registers (or re-fetches) the stage histograms. Safe to
// call repeatedly: the same histograms are returned each time, which
// lets post-run code read the quantiles the run recorded.
func NewPlanStages(r *Registry) *PlanStages {
	help := "Planning hot-path stage latency in seconds."
	bk := StageBuckets()
	return &PlanStages{
		Snapshot:  r.Histogram(MetricPlanStage, help, bk, "stage", StageSnapshot),
		Build:     r.Histogram(MetricPlanStage, help, bk, "stage", StageBuild),
		Plan:      r.Histogram(MetricPlanStage, help, bk, "stage", StagePlan),
		Reserve:   r.Histogram(MetricPlanStage, help, bk, "stage", StageReserve),
		Establish: r.Histogram(MetricPlanStage, help, bk, "stage", StageEstablish),
	}
}

// Span measures one stage execution into a histogram. The zero Span
// (and any span started against a nil histogram) is a no-op that never
// reads the clock.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing a stage. With a nil histogram the returned
// span is inert and free.
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End stops the span, records the elapsed time in seconds, and returns
// the duration (0 for inert spans).
func (s Span) End() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.start)
	s.h.Observe(d.Seconds())
	return d
}
