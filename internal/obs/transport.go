package obs

// Transport metric names: the message-fabric visibility surface.
// Documented in README.md ("Observability").
const (
	// MetricTransportMessages counts messages sent over the fabric, by
	// message kind (availability, model, prepare, commit, abort).
	MetricTransportMessages = "qosres_transport_messages_total"
	// MetricTransportDropped counts deliveries dropped by the fabric, by
	// reason (loss, partition, closed).
	MetricTransportDropped = "qosres_transport_dropped_total"
	// MetricTransportDuplicated counts deliveries the fabric duplicated.
	MetricTransportDuplicated = "qosres_transport_duplicated_total"
	// MetricTransportCallTimeouts counts calls that hit their context
	// deadline (or cancellation) before a reply arrived.
	MetricTransportCallTimeouts = "qosres_transport_call_timeouts_total"
	// MetricTransportBreakerFastFail counts calls failed fast by an open
	// circuit breaker.
	MetricTransportBreakerFastFail = "qosres_transport_breaker_fastfail_total"
	// MetricTransportBreakerState gauges each route's breaker position
	// (0 closed, 1 half-open, 2 open).
	MetricTransportBreakerState = "qosres_transport_breaker_state"
	// MetricTransportCallSeconds is the per-route call-latency
	// histogram (seconds), labeled route=<from->to> and kind=<message
	// kind>; it covers every call outcome (reply, timeout, fast-fail).
	MetricTransportCallSeconds = "qosres_transport_call_seconds"
	// MetricAdmissionShed counts admission requests refused by the
	// bounded in-flight gate (overload shedding).
	MetricAdmissionShed = "qosres_admission_shed_total"
	// MetricRepairAbandoned counts sessions a RepairAffected sweep left
	// unexamined because its deadline expired first.
	MetricRepairAbandoned = "qosres_repair_deadline_abandoned_total"
)

// TransportMetrics bundles the message-fabric counters. The zero value
// (or one built from a nil registry) is fully inert.
type TransportMetrics struct {
	reg *Registry

	// Duplicated counts deliveries the fabric duplicated.
	Duplicated *Counter
	// CallTimeouts counts calls abandoned at their context deadline.
	CallTimeouts *Counter
	// BreakerFastFails counts calls refused by an open breaker.
	BreakerFastFails *Counter
}

// NewTransportMetrics registers (or re-fetches) the transport counters.
// A nil registry yields an inert value whose counters record nothing.
func NewTransportMetrics(r *Registry) *TransportMetrics {
	return &TransportMetrics{
		reg: r,
		Duplicated: r.Counter(MetricTransportDuplicated,
			"Fabric deliveries duplicated by the duplication knob."),
		CallTimeouts: r.Counter(MetricTransportCallTimeouts,
			"Fabric calls abandoned at their context deadline."),
		BreakerFastFails: r.Counter(MetricTransportBreakerFastFail,
			"Fabric calls failed fast by an open circuit breaker."),
	}
}

// Enabled reports whether the metrics record anything (a backing
// registry exists). Safe on a nil receiver.
func (m *TransportMetrics) Enabled() bool { return m != nil && m.reg != nil }

// Sent counts one message of the given kind. Safe on a nil receiver or
// one built from a nil registry.
func (m *TransportMetrics) Sent(kind string) {
	if m == nil {
		return
	}
	m.reg.Counter(MetricTransportMessages,
		"Messages sent over the transport fabric, by kind.", "kind", kind).Inc()
}

// Dropped counts one delivery dropped for the given reason (loss,
// partition, closed). Safe on a nil receiver.
func (m *TransportMetrics) Dropped(reason string) {
	if m == nil {
		return
	}
	m.reg.Counter(MetricTransportDropped,
		"Fabric deliveries dropped, by reason.", "reason", reason).Inc()
}

// Duplicate counts one duplicated delivery. Safe on a nil receiver.
func (m *TransportMetrics) Duplicate() {
	if m == nil {
		return
	}
	m.Duplicated.Inc()
}

// Timeout counts one call abandoned at its deadline. Safe on a nil
// receiver.
func (m *TransportMetrics) Timeout() {
	if m == nil {
		return
	}
	m.CallTimeouts.Inc()
}

// FastFail counts one breaker fast-failure. Safe on a nil receiver.
func (m *TransportMetrics) FastFail() {
	if m == nil {
		return
	}
	m.BreakerFastFails.Inc()
}

// Call records one fabric call's end-to-end latency in seconds for a
// route ("from->to") and message kind. Safe on a nil receiver.
func (m *TransportMetrics) Call(route, kind string, seconds float64) {
	if m == nil {
		return
	}
	m.reg.Histogram(MetricTransportCallSeconds,
		"Fabric call latency in seconds, by route and message kind.",
		StageBuckets(), "route", route, "kind", kind).Observe(seconds)
}

// BreakerState gauges one route's breaker position (0 closed, 1
// half-open, 2 open). Safe on a nil receiver.
func (m *TransportMetrics) BreakerState(route string, state float64) {
	if m == nil {
		return
	}
	m.reg.Gauge(MetricTransportBreakerState,
		"Per-route circuit breaker state (0 closed, 1 half-open, 2 open).",
		"route", route).Set(state)
}
