package obs

import (
	"context"
	"errors"
	"testing"
)

// recordedSink collects exported spans for assertions.
type recordedSink struct {
	spans []SpanRecord
}

func (s *recordedSink) ExportSpan(sp SpanRecord) { s.spans = append(s.spans, sp) }

// TestTraceRecorderBuildsTree pins the core lifecycle: a sampled root
// with nested children and typed events flushes, at completion, into
// one retained trace whose spans carry the right parents, statuses and
// events — and the flush waits for children that outlive the root.
func TestTraceRecorderBuildsTree(t *testing.T) {
	sink := &recordedSink{}
	rec := NewTraceRecorder(nil, TraceOptions{Sample: 1, Sink: sink})

	root := rec.Root("establish", "H1")
	if !root.Recording() {
		t.Fatal("sample-1 root not recording")
	}
	stage := root.Child("reserve", "H1")
	call := stage.Child("prepare", "H1->H2")
	call.Event(EventRetry, "attempt 2")

	// The participant side: a span parented via the wire context.
	remote := rec.ChildOf(call.Context(), "prepare", "H2")

	call.EndStatus("timeout")
	stage.End()
	root.End()
	// The root has ended but the remote span is still open: the trace
	// must not flush yet.
	if got := len(rec.Completed()); got != 0 {
		t.Fatalf("trace flushed with %d open span(s) pending", got)
	}
	if got := rec.OpenTraces(); got != 1 {
		t.Fatalf("OpenTraces = %d, want 1", got)
	}
	remote.End()

	done := rec.Completed()
	if len(done) != 1 {
		t.Fatalf("Completed() = %d traces, want 1", len(done))
	}
	tr := done[0]
	if !tr.Errored {
		t.Error("trace with a timeout span not marked errored")
	}
	if len(tr.Spans) != 4 {
		t.Fatalf("trace has %d spans, want 4", len(tr.Spans))
	}
	byName := map[string]SpanRecord{}
	for _, sp := range tr.Spans {
		byName[sp.Name+"@"+sp.Scope] = sp
	}
	rootSp := byName["establish@H1"]
	if !rootSp.Root() {
		t.Error("establish span is not the root")
	}
	if p := byName["prepare@H1->H2"].Parent; p != byName["reserve@H1"].Span {
		t.Errorf("call span parent = %d, want the stage span", p)
	}
	if p := byName["prepare@H2"].Parent; p != byName["prepare@H1->H2"].Span {
		t.Errorf("remote span parent = %d, want the call span", p)
	}
	cs := byName["prepare@H1->H2"]
	if cs.Status != "timeout" {
		t.Errorf("call span status = %q", cs.Status)
	}
	if len(cs.Events) != 1 || cs.Events[0].Type != EventRetry {
		t.Errorf("call span events = %+v, want one retry", cs.Events)
	}
	if len(sink.spans) != 4 {
		t.Errorf("sink received %d spans, want 4", len(sink.spans))
	}
}

// TestTraceRecorderEventOnEndedSpan pins the duplicate-suppression
// path: an event addressed to a span that already ended still attaches,
// as long as the trace is resident; after the trace flushes, it is
// dropped silently.
func TestTraceRecorderEventOnEndedSpan(t *testing.T) {
	rec := NewTraceRecorder(nil, TraceOptions{Sample: 1})
	root := rec.Root("establish", "H1")
	call := root.Child("prepare", "H1->H2")
	sc := call.Context()
	call.End()

	// Call span ended, root still open: the event must land.
	rec.EventOn(sc, EventDuplicateSuppressed, "prepare")
	root.End()
	done := rec.Completed()
	if len(done) != 1 {
		t.Fatalf("Completed() = %d traces, want 1", len(done))
	}
	var found bool
	for _, sp := range done[0].Spans {
		for _, ev := range sp.Events {
			if ev.Type == EventDuplicateSuppressed {
				found = true
			}
		}
	}
	if !found {
		t.Error("duplicate-suppressed event on an ended span was lost")
	}

	// Flushed trace: the late event (and a late child) must be inert.
	rec.EventOn(sc, EventDuplicateSuppressed, "late")
	if late := rec.ChildOf(sc, "prepare", "H2"); late.Recording() {
		t.Error("ChildOf recorded under a flushed trace")
	}
	if got := rec.OpenTraces(); got != 0 {
		t.Fatalf("OpenTraces = %d after flush", got)
	}
}

// TestTraceRecorderRescuesErroredTraces pins tail rescue: with head
// sampling off, an all-ok trace is dropped but a trace containing an
// errored span is retained.
func TestTraceRecorderRescuesErroredTraces(t *testing.T) {
	rec := NewTraceRecorder(nil, TraceOptions{Sample: 0, RescueErrors: true})

	ok := rec.Root("establish", "H1")
	ok.Child("plan", "H1").End()
	ok.End()
	if got := len(rec.Completed()); got != 0 {
		t.Fatalf("all-ok unsampled trace retained (%d)", got)
	}

	bad := rec.Root("establish", "H1")
	bad.Child("reserve", "H1").EndStatus("refused")
	bad.End()
	done := rec.Completed()
	if len(done) != 1 || !done[0].Errored {
		t.Fatalf("errored trace not rescued: %+v", done)
	}
}

// TestTraceRecorderEvictsAtCapacity pins the bounded resident store:
// completions beyond MaxResident evict the oldest trace and advance
// qosres_trace_evictions_total.
func TestTraceRecorderEvictsAtCapacity(t *testing.T) {
	reg := New()
	rec := NewTraceRecorder(reg, TraceOptions{Sample: 1, MaxResident: 2})
	var first uint64
	for i := 0; i < 5; i++ {
		root := rec.Root("establish", "H1")
		if i == 0 {
			first = root.Context().Trace
		}
		root.End()
	}
	done := rec.Completed()
	if len(done) != 2 {
		t.Fatalf("resident traces = %d, want 2", len(done))
	}
	for _, tr := range done {
		if tr.Trace == first {
			t.Error("oldest trace survived eviction")
		}
	}
	var evicted float64
	for _, c := range reg.Snapshot().Counters {
		if c.Name == MetricTraceEvictions {
			evicted += c.Value
		}
	}
	if evicted != 3 {
		t.Fatalf("%s = %g, want 3", MetricTraceEvictions, evicted)
	}
}

// TestTraceRecorderUnsampledZeroAlloc protects the plan-path fast lane:
// with tracing compiled in but sampling off, the whole span surface —
// root, children, events, context plumbing, exemplar IDs — must not
// allocate at all.
func TestTraceRecorderUnsampledZeroAlloc(t *testing.T) {
	rec := NewTraceRecorder(nil, TraceOptions{Sample: 0})
	var nilRec *TraceRecorder
	ctx := context.Background()
	errBoom := errors.New("boom")
	allocs := testing.AllocsPerRun(1000, func() {
		root := rec.Root("establish", "H1")
		c := root.Child("reserve", "H1")
		c.Event(EventRetry, "attempt 2")
		cctx := ContextWithSpan(ctx, c)
		sp := SpanFromContext(cctx)
		sp.EndErr(errBoom, "error")
		if sp.TraceID() != "" {
			t.Fatal("inert span has a trace ID")
		}
		rec.EventOn(root.Context(), EventShed, "")
		rec.ChildOf(c.Context(), "prepare", "H2").End()
		root.EndStatus("shed")
		nilRec.Root("establish", "H1").End()
	})
	if allocs != 0 {
		t.Fatalf("unsampled tracing path allocates %.1f per op, want 0", allocs)
	}
}

// TestTraceRecorderHeadSampling sanity-checks the sampling roll: with
// probability 0.5 over many roots, both outcomes occur, and unsampled
// roots (rescue off) retain nothing.
func TestTraceRecorderHeadSampling(t *testing.T) {
	rec := NewTraceRecorder(nil, TraceOptions{Sample: 0.5, MaxResident: 4096, Seed: 42})
	sampled := 0
	const n = 400
	for i := 0; i < n; i++ {
		root := rec.Root("establish", "H1")
		if root.Recording() {
			sampled++
		}
		root.End()
	}
	if sampled == 0 || sampled == n {
		t.Fatalf("sample=0.5 produced %d/%d sampled roots", sampled, n)
	}
	if got := len(rec.Completed()); got != sampled {
		t.Fatalf("retained %d traces, want %d (the sampled ones)", got, sampled)
	}
}
