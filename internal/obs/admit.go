package obs

// Admission metric names: the validate-at-commit reserve protocol's
// visibility surface. Documented in README.md ("Observability").
const (
	// MetricAdmitRetries counts fresh-snapshot replanning attempts made
	// after a plan was refused at commit time.
	MetricAdmitRetries = "qosres_admit_retries_total"
	// MetricAdmitStaleRejects counts commit-time refusals: plans that
	// were feasible against their planning snapshot but no longer fit
	// the brokers' availability at reserve time.
	MetricAdmitStaleRejects = "qosres_admit_stale_rejections_total"
	// MetricAdmitBatches counts group-commit rounds run by the batching
	// admission front end.
	MetricAdmitBatches = "qosres_admit_batches_total"
	// MetricAdmitBatchMembers counts sessions that went through a
	// group-commit round (members across all batches).
	MetricAdmitBatchMembers = "qosres_admit_batch_members_total"
	// MetricAdmitCoalesced counts sessions that shared their round with
	// at least one other session — the admissions whose lock rounds and
	// 2PC fan-out were actually amortized.
	MetricAdmitCoalesced = "qosres_admit_coalesced_total"
	// MetricAdmitBatchSize is the histogram of group-commit round sizes.
	MetricAdmitBatchSize = "qosres_admit_batch_size"
	// MetricStripeLocks counts distinct broker lock stripes acquired by
	// group-commit rounds (each stripe once per round).
	MetricStripeLocks = "qosres_broker_stripe_locks_total"
	// MetricStripeAmortized counts stripe acquisitions saved by
	// batching: what the same members would have locked as individual
	// commits, minus what their rounds actually locked.
	MetricStripeAmortized = "qosres_broker_stripe_locks_amortized_total"
)

// AdmitMetrics bundles the admission-path counters: how often a
// computed plan was refused at commit time because its snapshot went
// stale, how many replanning retries that caused, and how many
// reservation attempts were rolled back. The zero value (or one built
// from a nil registry) is fully inert.
type AdmitMetrics struct {
	// Retries counts replanning attempts after commit refusals.
	Retries *Counter
	// Rollbacks counts rolled-back reservation attempts; it shares the
	// MetricRollbacks family with the simulation's direct path so
	// dashboards see one rollback signal regardless of execution mode.
	Rollbacks *Counter
	// StaleRejects counts commit-time refusals of stale-snapshot plans.
	StaleRejects *Counter
	// Shed counts admission requests refused outright by the bounded
	// in-flight gate (overload shedding).
	Shed *Counter
	// Batches counts group-commit rounds.
	Batches *Counter
	// BatchMembers counts sessions admitted through group-commit
	// rounds (admitted or refused — every member of every round).
	BatchMembers *Counter
	// Coalesced counts members that shared a round with at least one
	// other member.
	Coalesced *Counter
	// BatchSize records the distribution of round sizes.
	BatchSize *Histogram
	// StripeLocks counts distinct lock stripes acquired per round,
	// summed over rounds.
	StripeLocks *Counter
	// StripeAmortized counts stripe acquisitions batching saved
	// relative to serialized one-member commits.
	StripeAmortized *Counter
}

// NewAdmitMetrics registers (or re-fetches) the admission counters. A
// nil registry yields an inert value whose counters record nothing.
func NewAdmitMetrics(r *Registry) *AdmitMetrics {
	return &AdmitMetrics{
		Retries: r.Counter(MetricAdmitRetries,
			"Admission replanning attempts after a commit-time refusal."),
		Rollbacks: r.Counter(MetricRollbacks,
			"Multi-resource reservations rolled back after a partial failure."),
		StaleRejects: r.Counter(MetricAdmitStaleRejects,
			"Reservation plans refused at commit time because the planning snapshot went stale."),
		Shed: r.Counter(MetricAdmissionShed,
			"Admission requests shed by the bounded in-flight overload gate."),
		Batches: r.Counter(MetricAdmitBatches,
			"Group-commit admission rounds."),
		BatchMembers: r.Counter(MetricAdmitBatchMembers,
			"Sessions that went through a group-commit admission round."),
		Coalesced: r.Counter(MetricAdmitCoalesced,
			"Sessions that shared a group-commit round with at least one other session."),
		BatchSize: r.Histogram(MetricAdmitBatchSize,
			"Group-commit round sizes (members per round).",
			[]float64{1, 2, 4, 8, 16, 32, 64}),
		StripeLocks: r.Counter(MetricStripeLocks,
			"Distinct broker lock stripes acquired by group-commit rounds."),
		StripeAmortized: r.Counter(MetricStripeAmortized,
			"Stripe acquisitions amortized away by batching admissions."),
	}
}
