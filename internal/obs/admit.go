package obs

// Admission metric names: the validate-at-commit reserve protocol's
// visibility surface. Documented in README.md ("Observability").
const (
	// MetricAdmitRetries counts fresh-snapshot replanning attempts made
	// after a plan was refused at commit time.
	MetricAdmitRetries = "qosres_admit_retries_total"
	// MetricAdmitStaleRejects counts commit-time refusals: plans that
	// were feasible against their planning snapshot but no longer fit
	// the brokers' availability at reserve time.
	MetricAdmitStaleRejects = "qosres_admit_stale_rejections_total"
)

// AdmitMetrics bundles the admission-path counters: how often a
// computed plan was refused at commit time because its snapshot went
// stale, how many replanning retries that caused, and how many
// reservation attempts were rolled back. The zero value (or one built
// from a nil registry) is fully inert.
type AdmitMetrics struct {
	// Retries counts replanning attempts after commit refusals.
	Retries *Counter
	// Rollbacks counts rolled-back reservation attempts; it shares the
	// MetricRollbacks family with the simulation's direct path so
	// dashboards see one rollback signal regardless of execution mode.
	Rollbacks *Counter
	// StaleRejects counts commit-time refusals of stale-snapshot plans.
	StaleRejects *Counter
	// Shed counts admission requests refused outright by the bounded
	// in-flight gate (overload shedding).
	Shed *Counter
}

// NewAdmitMetrics registers (or re-fetches) the admission counters. A
// nil registry yields an inert value whose counters record nothing.
func NewAdmitMetrics(r *Registry) *AdmitMetrics {
	return &AdmitMetrics{
		Retries: r.Counter(MetricAdmitRetries,
			"Admission replanning attempts after a commit-time refusal."),
		Rollbacks: r.Counter(MetricRollbacks,
			"Multi-resource reservations rolled back after a partial failure."),
		StaleRejects: r.Counter(MetricAdmitStaleRejects,
			"Reservation plans refused at commit time because the planning snapshot went stale."),
		Shed: r.Counter(MetricAdmissionShed,
			"Admission requests shed by the bounded in-flight overload gate."),
	}
}
