package trace

import (
	"strings"
	"sync"
	"testing"

	"bytes"
)

func ev(k Kind, session uint64) Event {
	return Event{At: 1, Kind: k, Session: session, Service: "S1", Class: "Norm.-short"}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Arrival: "arrival", Planned: "planned", PlanFailed: "plan_failed",
		Reserved: "reserved", ReserveFailed: "reserve_failed", Released: "released",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind must render")
	}
}

func TestRingRetainsLastN(t *testing.T) {
	r := NewRing(3)
	for i := uint64(1); i <= 5; i++ {
		r.Trace(ev(Arrival, i))
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	events := r.Events()
	for i, want := range []uint64{3, 4, 5} {
		if events[i].Session != want {
			t.Fatalf("events = %+v", events)
		}
	}
}

func TestRingPartial(t *testing.T) {
	r := NewRing(10)
	r.Trace(ev(Arrival, 1))
	r.Trace(ev(Planned, 1))
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	events := r.Events()
	if len(events) != 2 || events[0].Kind != Arrival || events[1].Kind != Planned {
		t.Fatalf("events = %+v", events)
	}
}

func TestRingMinimumSize(t *testing.T) {
	r := NewRing(0)
	r.Trace(ev(Arrival, 1))
	r.Trace(ev(Arrival, 2))
	if r.Len() != 1 || r.Events()[0].Session != 2 {
		t.Fatal("size-0 ring must clamp to 1 and keep the latest")
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); i < 100; i++ {
				r.Trace(ev(Arrival, i))
				_ = r.Events()
			}
		}()
	}
	wg.Wait()
	if r.Len() != 64 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestCSVOutput(t *testing.T) {
	var buf bytes.Buffer
	c, err := NewCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c.Trace(Event{
		At: 2.5, Kind: Reserved, Session: 7, Service: "S2",
		Class: "Fat-long", Level: "Qp", Rank: 3, Psi: 0.25,
		Bottleneck: "cpu@H1", Path: "Qa-Qb",
	})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "time,kind,session") {
		t.Fatalf("header = %q", lines[0])
	}
	for _, want := range []string{"2.5", "reserved", "7", "S2", "Fat-long", "Qp", "3", "0.25", "cpu@H1", "Qa-Qb"} {
		if !strings.Contains(lines[1], want) {
			t.Errorf("row missing %q: %q", want, lines[1])
		}
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewCounter(), NewCounter()
	m := Multi{a, b, Nop{}}
	m.Trace(ev(Planned, 1))
	m.Trace(ev(Planned, 2))
	if a.Count(Planned) != 2 || b.Count(Planned) != 2 {
		t.Fatalf("counts = %d, %d", a.Count(Planned), b.Count(Planned))
	}
	if a.Count(Released) != 0 {
		t.Fatal("wrong kind counted")
	}
}
