// Package trace records structured session-level events from simulation
// runs and live runtimes: arrivals, plan computations, reservation
// outcomes, and releases. Tracers are pluggable sinks; the package
// provides a bounded in-memory ring (for tests and postmortems) and a
// CSV writer (for external analysis/plotting).
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"sync"

	"qosres/internal/broker"
)

// Kind classifies an event.
type Kind int

// Event kinds, in session lifecycle order.
const (
	// Arrival is a session arrival before planning.
	Arrival Kind = iota
	// Planned is a successfully computed reservation plan.
	Planned
	// PlanFailed is a session with no feasible plan.
	PlanFailed
	// Reserved is a successful multi-resource reservation.
	Reserved
	// ReserveFailed is a plan that failed at reservation time (stale
	// observations).
	ReserveFailed
	// Released is a completed session returning its resources.
	Released
	// Span is a planning-stage timing observation (see the Stage and
	// Duration event fields); emitted only when span tracing is enabled.
	Span
	// SpanEnd is one completed span of a distributed trace tree (see
	// the Trace/Span/Parent/Scope/Status fields); emitted at trace
	// completion when distributed tracing is enabled.
	SpanEnd
	// SpanEvent is one typed adversity event (retry, backoff, shed,
	// partition drop, duplicate suppressed, ...) annotated on a span of
	// a distributed trace tree.
	SpanEvent
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Arrival:
		return "arrival"
	case Planned:
		return "planned"
	case PlanFailed:
		return "plan_failed"
	case Reserved:
		return "reserved"
	case ReserveFailed:
		return "reserve_failed"
	case Released:
		return "released"
	case Span:
		return "span"
	case SpanEnd:
		return "span_end"
	case SpanEvent:
		return "span_event"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds lists every event kind in lifecycle order.
func Kinds() []Kind {
	return []Kind{Arrival, Planned, PlanFailed, Reserved, ReserveFailed, Released,
		Span, SpanEnd, SpanEvent}
}

// KindFromString parses a Kind's String rendering.
func KindFromString(s string) (Kind, bool) {
	for _, k := range Kinds() {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// MarshalJSON renders the kind as its string name, keeping JSONL traces
// machine-readable without magic numbers.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(k.String())), nil
}

// UnmarshalJSON parses a string kind name.
func (k *Kind) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("trace: kind must be a JSON string: %w", err)
	}
	parsed, ok := KindFromString(s)
	if !ok {
		return fmt.Errorf("trace: unknown event kind %q", s)
	}
	*k = parsed
	return nil
}

// Event is one session-lifecycle event.
type Event struct {
	At      broker.Time `json:"at"`
	Kind    Kind        `json:"kind"`
	Session uint64      `json:"session"`
	// Service is the requested service's name.
	Service string `json:"service,omitempty"`
	// Class is the paper's session class label (Norm.-short, ...).
	Class string `json:"class,omitempty"`
	// Level is the selected end-to-end QoS level name (Planned/Reserved).
	Level string `json:"level,omitempty"`
	// Rank is the paper-style level number.
	Rank int `json:"rank,omitempty"`
	// Psi is the plan's bottleneck contention index.
	Psi float64 `json:"psi,omitempty"`
	// Bottleneck is the plan's bottleneck resource.
	Bottleneck string `json:"bottleneck,omitempty"`
	// Path is the dash-joined selected path (chain services).
	Path string `json:"path,omitempty"`
	// Stage names the planning stage of a Span event (see package obs
	// for the stage vocabulary); for SpanEnd/SpanEvent events it names
	// the span (establish, snapshot, prepare, ...) or the event type.
	Stage string `json:"stage,omitempty"`
	// Duration is the wall-clock seconds a Span event's stage took; for
	// SpanEnd events, the span's duration; for SpanEvent events, the
	// event's offset from its span's start.
	Duration float64 `json:"duration,omitempty"`
	// TraceID is the distributed trace identifier (fixed-width hex) of
	// SpanEnd/SpanEvent events.
	TraceID string `json:"trace,omitempty"`
	// SpanID is the span identifier (hex) of SpanEnd/SpanEvent events.
	SpanID string `json:"span,omitempty"`
	// ParentID is the parent span identifier (hex); empty for roots.
	ParentID string `json:"parent,omitempty"`
	// Scope locates where the span ran (a host, or a route "from->to").
	Scope string `json:"scope,omitempty"`
	// Status is the span's terminal status ("ok", "timeout",
	// "partition", "circuit_open", ...).
	Status string `json:"status,omitempty"`
	// Detail carries free-form SpanEvent context (e.g. attempt number).
	Detail string `json:"detail,omitempty"`
}

// Tracer consumes events. Implementations must be safe for use from a
// single simulation goroutine; the Ring is additionally safe for
// concurrent use.
type Tracer interface {
	Trace(Event)
}

// Nop discards every event.
type Nop struct{}

// Trace implements Tracer.
func (Nop) Trace(Event) {}

// Tee fans every event out to each of the given tracers in order (nil
// entries are skipped). Concurrency-safety is whatever the slowest
// member provides.
func Tee(ts ...Tracer) Tracer {
	live := make(tee, 0, len(ts))
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	return live
}

type tee []Tracer

// Trace implements Tracer.
func (t tee) Trace(ev Event) {
	for _, x := range t {
		x.Trace(ev)
	}
}

// Ring keeps the last N events in memory.
type Ring struct {
	mu     sync.Mutex
	events []Event
	next   int
	full   bool
}

// NewRing creates a ring holding up to n events (n >= 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{events: make([]Event, n)}
}

// Trace implements Tracer.
func (r *Ring) Trace(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events[r.next] = ev
	r.next = (r.next + 1) % len(r.events)
	if r.next == 0 {
		r.full = true
	}
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.events)
	}
	return r.next
}

// Events returns the retained events oldest-first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Event, r.next)
		copy(out, r.events[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// CSV streams events as CSV rows to an io.Writer. Create with NewCSV;
// call Flush (or Close) when done. The first write error is latched and
// reported by every subsequent Flush/Close.
type CSV struct {
	mu  sync.Mutex
	w   *csv.Writer
	err error
}

// csvHeader is the column layout of CSV traces.
var csvHeader = []string{
	"time", "kind", "session", "service", "class",
	"level", "rank", "psi", "bottleneck", "path", "stage", "duration",
	"trace", "span", "parent", "scope", "status", "detail",
}

// NewCSV creates a CSV tracer and writes the header row.
func NewCSV(w io.Writer) (*CSV, error) {
	c := &CSV{w: csv.NewWriter(w)}
	if err := c.w.Write(csvHeader); err != nil {
		return nil, err
	}
	return c, nil
}

// Trace implements Tracer. Write errors are latched and surface on
// Flush or Close; once a write has failed, further events are dropped.
func (c *CSV) Trace(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return
	}
	c.err = c.w.Write([]string{
		strconv.FormatFloat(float64(ev.At), 'g', -1, 64),
		ev.Kind.String(),
		strconv.FormatUint(ev.Session, 10),
		ev.Service,
		ev.Class,
		ev.Level,
		strconv.Itoa(ev.Rank),
		strconv.FormatFloat(ev.Psi, 'g', -1, 64),
		ev.Bottleneck,
		ev.Path,
		ev.Stage,
		strconv.FormatFloat(ev.Duration, 'g', -1, 64),
		ev.TraceID,
		ev.SpanID,
		ev.ParentID,
		ev.Scope,
		ev.Status,
		ev.Detail,
	})
}

// Flush flushes buffered rows and reports the first write error.
func (c *CSV) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.w.Flush()
	if c.err != nil {
		return c.err
	}
	return c.w.Error()
}

// Close flushes buffered rows and reports the first write error. The
// underlying writer is not closed (the tracer did not open it).
func (c *CSV) Close() error { return c.Flush() }

// Multi fans events out to several tracers.
type Multi []Tracer

// Trace implements Tracer.
func (m Multi) Trace(ev Event) {
	for _, t := range m {
		t.Trace(ev)
	}
}

// Counter tallies events by kind, a cheap Tracer for tests.
type Counter struct {
	mu     sync.Mutex
	counts map[Kind]int
}

// NewCounter creates an empty counter.
func NewCounter() *Counter { return &Counter{counts: map[Kind]int{}} }

// Trace implements Tracer.
func (c *Counter) Trace(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts[ev.Kind]++
}

// Count returns the tally of one kind.
func (c *Counter) Count(k Kind) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[k]
}

// Counts returns a copied snapshot of every kind's tally. Kinds never
// observed are absent from the map.
func (c *Counter) Counts() map[Kind]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[Kind]int, len(c.counts))
	for k, n := range c.counts {
		out[k] = n
	}
	return out
}
