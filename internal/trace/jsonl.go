package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// JSONL streams events as JSON Lines (one JSON object per line) to an
// io.Writer — machine-readable without CSV quoting pitfalls. Event
// kinds render as their string names. Create with NewJSONL; call Flush
// (or Close) when done. The first write error is latched and reported
// by every subsequent Flush/Close.
type JSONL struct {
	mu  sync.Mutex
	buf *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONL creates a JSONL tracer over w.
func NewJSONL(w io.Writer) *JSONL {
	buf := bufio.NewWriter(w)
	return &JSONL{buf: buf, enc: json.NewEncoder(buf)}
}

// Trace implements Tracer. Write errors are latched and surface on
// Flush or Close; once a write has failed, further events are dropped.
func (j *JSONL) Trace(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(ev)
}

// Flush flushes buffered lines and reports the first write error.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.buf.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}

// Close flushes buffered lines and reports the first write error. The
// underlying writer is not closed (the tracer did not open it).
func (j *JSONL) Close() error { return j.Flush() }

// ReadJSONL parses a JSONL trace back into events, the round-trip
// counterpart of the JSONL tracer. Blank lines are skipped; a malformed
// line fails with its line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: jsonl read: %w", err)
	}
	return out, nil
}
