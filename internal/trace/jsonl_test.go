package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{At: 1, Kind: Arrival, Session: 1, Service: "S1", Class: "Norm.-short"},
		{At: 1.25, Kind: Planned, Session: 1, Service: "S1", Class: "Norm.-short",
			Level: "Qp", Rank: 3, Psi: 0.25, Bottleneck: `cpu@H1`, Path: "Qa-Qb,c"},
		{At: 1.25, Kind: Span, Session: 1, Service: "S1", Stage: "plan", Duration: 12.5e-6},
		{At: 2, Kind: Reserved, Session: 1, Service: "S1", Class: "Norm.-short",
			Level: "Qp", Rank: 3, Psi: 0.25, Bottleneck: `cpu@H1`},
		{At: 9, Kind: Released, Session: 1, Service: "S1", Class: "Norm.-short"},
	}
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	for _, ev := range events {
		j.Trace(ev)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Kinds must be string names on the wire.
	if out := buf.String(); !strings.Contains(out, `"kind":"planned"`) {
		t.Fatalf("kind not a string name:\n%s", out)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip returned %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestReadJSONLRejectsBadLines(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"kind\":\"arrival\"}\nnot json\n")); err == nil {
		t.Fatal("malformed line accepted")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error lacks line number: %v", err)
	}
	if _, err := ReadJSONL(strings.NewReader("{\"kind\":\"warp\"}\n")); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// failAfter errors every write once n bytes have been accepted.
type failAfter struct {
	n   int
	err error
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, f.err
	}
	f.n -= len(p)
	return len(p), nil
}

func TestJSONLLatchesWriteError(t *testing.T) {
	sink := &failAfter{n: 1, err: errors.New("disk full")}
	j := NewJSONL(sink)
	for i := 0; i < 100000; i++ {
		j.Trace(Event{Kind: Arrival, Session: uint64(i)})
	}
	if err := j.Flush(); !errors.Is(err, sink.err) {
		t.Fatalf("flush error = %v, want latched %v", err, sink.err)
	}
	if err := j.Close(); !errors.Is(err, sink.err) {
		t.Fatalf("close must keep reporting the latched error, got %v", err)
	}
}

func TestCSVCloseAndErrorLatch(t *testing.T) {
	var buf bytes.Buffer
	c, err := NewCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c.Trace(ev(Reserved, 1))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "reserved") {
		t.Fatal("close did not flush")
	}

	sink := &failAfter{n: len(buf.Bytes()), err: errors.New("pipe broken")}
	c2, err := NewCSV(sink)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		c2.Trace(ev(Arrival, uint64(i)))
	}
	if err := c2.Close(); !errors.Is(err, sink.err) {
		t.Fatalf("close error = %v, want latched %v", err, sink.err)
	}
}

func TestCounterCounts(t *testing.T) {
	c := NewCounter()
	c.Trace(ev(Arrival, 1))
	c.Trace(ev(Arrival, 2))
	c.Trace(ev(Planned, 1))
	got := c.Counts()
	if got[Arrival] != 2 || got[Planned] != 1 || len(got) != 2 {
		t.Fatalf("counts = %v", got)
	}
	// The snapshot must be a copy.
	got[Arrival] = 99
	if c.Count(Arrival) != 2 {
		t.Fatal("Counts leaked internal state")
	}
}

func TestKindParsing(t *testing.T) {
	for _, k := range Kinds() {
		parsed, ok := KindFromString(k.String())
		if !ok || parsed != k {
			t.Errorf("round trip failed for %v", k)
		}
	}
	if _, ok := KindFromString("nope"); ok {
		t.Fatal("unknown kind parsed")
	}
}
