// Package adapt implements the mid-session QoS adaptation loop: a
// controller that watches the published broker signals — utilization
// and the α availability-change index, read wait-free off the brokers'
// published records — against a watermark policy with a hysteresis
// band, and renegotiates live sessions through proxy.Runtime.
//
// The loop provably cannot flap or stampede:
//
//   - Hysteresis: brownout downgrades run only above the high
//     watermark, upgrades only below the low watermark; the band
//     between them absorbs oscillation (ticks there do nothing and
//     count as held).
//   - Per-session cooldown: a session renegotiated (or even attempted)
//     at tick t is untouchable until t + Cooldown, so a square-wave
//     load bounds each session's renegotiation count by duration /
//     Cooldown regardless of tick rate.
//   - Tick budget: at most MaxActionsPerTick renegotiations per tick,
//     so a mass watermark crossing ramps gradually instead of
//     stampeding the admission path.
//
// Brownout victim ordering follows Ψ-weighted priority: lowest
// end-to-end rank first (least criticality), highest plan Ψ first
// within a rank (largest contention share), so the sessions costing
// the most contention at the least QoS value brown out first.
package adapt

import (
	"context"
	"sort"
	"sync"

	"qosres/internal/broker"
	"qosres/internal/obs"
	"qosres/internal/proxy"
)

// Policy is the watermark/hysteresis configuration of a Controller.
type Policy struct {
	// HighWater is the utilization (1 - available/capacity) at or above
	// which a resource counts as hot and brownout downgrades run.
	HighWater float64
	// LowWater is the utilization below which (on every watched
	// resource) upgrade renegotiations may run. The band between the
	// watermarks is the hysteresis dead zone: no action either way.
	LowWater float64
	// Cooldown is the minimum time between renegotiation attempts on
	// one session. Attempts count even when they fail, so a refused
	// upgrade cannot be retried into a stampede.
	Cooldown broker.Time
	// MaxActionsPerTick bounds renegotiations per tick (default 4).
	MaxActionsPerTick int
	// FloorRank is the rank below which adaptation never downgrades a
	// session (default 1, the worst ranked level — adaptation may brown
	// a session out, never terminate it).
	FloorRank int
	// UpgradeAlphaMin, when positive, gates upgrades on the bottleneck
	// availability trend: no upgrade unless every watched resource's α
	// is at least this (1.0 = availability not shrinking). Zero disables
	// the gate.
	UpgradeAlphaMin float64
}

// DefaultPolicy is a conservative starting point: brown out above 85%
// utilization, upgrade below 55%, at most 4 actions per tick.
func DefaultPolicy() Policy {
	return Policy{HighWater: 0.85, LowWater: 0.55, MaxActionsPerTick: 4, FloorRank: 1}
}

// withDefaults fills unset fields.
func (p Policy) withDefaults() Policy {
	d := DefaultPolicy()
	if p.HighWater <= 0 {
		p.HighWater = d.HighWater
	}
	if p.LowWater <= 0 {
		p.LowWater = d.LowWater
	}
	if p.LowWater > p.HighWater {
		p.LowWater = p.HighWater
	}
	if p.MaxActionsPerTick <= 0 {
		p.MaxActionsPerTick = d.MaxActionsPerTick
	}
	if p.FloorRank < 1 {
		p.FloorRank = 1
	}
	return p
}

// Action records one renegotiation the controller attempted on a tick.
type Action struct {
	Session  *proxy.Session
	Level    string
	FromRank int
	ToRank   int
	// Err is the renegotiation outcome; nil means the session now runs
	// at Level.
	Err error
}

// Controller drives mid-session adaptation over one runtime. Ticks are
// externally paced — a wall-clock ticker in qosserved, the driver loop
// in the chaos harness — so simulated and real deployments share the
// control law.
type Controller struct {
	rt      *proxy.Runtime
	brokers []broker.Broker

	mu      sync.Mutex
	policy  Policy
	metrics *obs.AdaptMetrics
	// last remembers each session's most recent renegotiation attempt
	// for the cooldown; entries of dead sessions are pruned every tick.
	last map[*proxy.Session]broker.Time
}

// New builds a controller watching the given brokers' published
// signals. The policy is normalized via defaults.
func New(rt *proxy.Runtime, policy Policy, brokers []broker.Broker) *Controller {
	return &Controller{
		rt:      rt,
		brokers: brokers,
		policy:  policy.withDefaults(),
		metrics: &obs.AdaptMetrics{},
		last:    make(map[*proxy.Session]broker.Time),
	}
}

// Instrument attaches adaptation counters; nil detaches them.
func (c *Controller) Instrument(m *obs.AdaptMetrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m == nil {
		m = &obs.AdaptMetrics{}
	}
	c.metrics = m
}

// Policy returns the controller's normalized policy.
func (c *Controller) Policy() Policy {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.policy
}

// candidate is one live session with the plan fields the ordering and
// floor checks need, snapshotted once per tick.
type candidate struct {
	s     *proxy.Session
	rank  int
	psi   float64
	path  string
	top   int // best rank the session's service defines
	level string
}

// Tick runs one control round at now: read the broker signals, decide
// hot / cool / in-band, and renegotiate up to the tick budget's worth
// of sessions, respecting per-session cooldowns and the rank floor.
// Returns the attempted actions (empty on held ticks).
func (c *Controller) Tick(ctx context.Context, now broker.Time) []Action {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.policy
	m := c.metrics

	// Signals: wait-free utilization reads plus the α trend.
	hot := make(map[string]bool)
	maxUtil := 0.0
	minAlpha := 1.0
	for _, b := range c.brokers {
		cap := b.Capacity()
		if cap <= 0 {
			continue
		}
		util := 1 - b.Available()/cap
		if util > maxUtil {
			maxUtil = util
		}
		if util >= p.HighWater {
			hot[b.Resource()] = true
		}
		if rep := b.Report(now); rep.Alpha < minAlpha {
			minAlpha = rep.Alpha
		}
	}

	// Prune cooldown entries of sessions that no longer exist.
	for s := range c.last {
		if s.State() != proxy.StateActive {
			delete(c.last, s)
		}
	}

	switch {
	case len(hot) > 0:
		return c.brownout(ctx, now, p, m, hot)
	case maxUtil < p.LowWater:
		if p.UpgradeAlphaMin > 0 && minAlpha < p.UpgradeAlphaMin {
			// Headroom exists but the availability trend is shrinking;
			// upgrading into a downtrend is how flapping starts.
			m.Held.Inc()
			return nil
		}
		return c.upgrade(ctx, now, p, m)
	default:
		// Inside the hysteresis band: hold everything.
		m.Held.Inc()
		return nil
	}
}

// snapshot gathers the live sessions as ordered candidates.
func (c *Controller) snapshot() []candidate {
	var out []candidate
	for _, s := range c.rt.SessionList() {
		if s.State() != proxy.StateActive {
			continue
		}
		plan := s.CurrentPlan()
		if plan == nil {
			continue
		}
		out = append(out, candidate{
			s:     s,
			rank:  plan.Rank,
			psi:   plan.Psi,
			path:  plan.PathLevels,
			top:   len(s.Service().EndToEndRanking),
			level: plan.EndToEnd.Name,
		})
	}
	return out
}

// brownout downgrades victims touching a hot resource, one rank each,
// by Ψ-weighted priority: lowest rank first, highest Ψ within a rank.
func (c *Controller) brownout(ctx context.Context, now broker.Time, p Policy, m *obs.AdaptMetrics, hot map[string]bool) []Action {
	var victims []candidate
	for _, cand := range c.snapshot() {
		if cand.rank-1 < p.FloorRank {
			continue // already at (or below) the floor: never push further
		}
		touchesHot := false
		for _, r := range cand.s.Touches() {
			if hot[r] {
				touchesHot = true
				break
			}
		}
		if touchesHot {
			victims = append(victims, cand)
		}
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].rank != victims[j].rank {
			return victims[i].rank < victims[j].rank
		}
		if victims[i].psi != victims[j].psi {
			return victims[i].psi > victims[j].psi
		}
		return victims[i].path < victims[j].path
	})
	return c.act(ctx, now, p, m, victims, -1)
}

// upgrade promotes sessions running below their service's best level,
// most-degraded first.
func (c *Controller) upgrade(ctx context.Context, now broker.Time, p Policy, m *obs.AdaptMetrics) []Action {
	var cands []candidate
	for _, cand := range c.snapshot() {
		if cand.rank < cand.top {
			cands = append(cands, cand)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].rank != cands[j].rank {
			return cands[i].rank < cands[j].rank
		}
		return cands[i].path < cands[j].path
	})
	return c.act(ctx, now, p, m, cands, +1)
}

// act renegotiates the ordered candidates by step ranks (+1 upgrade,
// -1 downgrade) under the cooldown and the tick budget. Attempts stamp
// the cooldown whether they succeed or not. Callers hold c.mu.
func (c *Controller) act(ctx context.Context, now broker.Time, p Policy, m *obs.AdaptMetrics, cands []candidate, step int) []Action {
	var actions []Action
	for _, cand := range cands {
		if len(actions) >= p.MaxActionsPerTick {
			m.FlapsSuppressed.Inc()
			continue
		}
		if t, ok := c.last[cand.s]; ok && now-t < p.Cooldown {
			m.FlapsSuppressed.Inc()
			continue
		}
		target := cand.rank + step
		level := proxy.LevelAt(cand.s.Service(), target)
		if level == "" {
			continue
		}
		c.last[cand.s] = now
		err := c.rt.Renegotiate(ctx, cand.s, level)
		actions = append(actions, Action{
			Session:  cand.s,
			Level:    level,
			FromRank: cand.rank,
			ToRank:   target,
			Err:      err,
		})
	}
	m.DeliveredQoSSeconds.Set(c.rt.DeliveredQoSSeconds())
	return actions
}
