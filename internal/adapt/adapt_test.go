package adapt

import (
	"context"
	"testing"

	"qosres/internal/broker"
	"qosres/internal/core"
	"qosres/internal/obs"
	"qosres/internal/proxy"
	"qosres/internal/qos"
	"qosres/internal/svc"
	"qosres/internal/topo"
)

func lvl(name string, q float64) svc.Level {
	return svc.Level{Name: name, Vector: qos.MustVector(qos.P("q", q))}
}

// world deploys the proxy test topology through the exported API: hosts
// X and Y, a cpu broker each, a net broker on the receiver side.
func world(t *testing.T) (*proxy.Runtime, *proxy.ManualClock, map[string]*broker.Local) {
	t.Helper()
	clock := &proxy.ManualClock{}
	rt := proxy.NewRuntime(clock)
	brokers := map[string]*broker.Local{}
	for _, h := range []topo.HostID{"X", "Y"} {
		if _, err := rt.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []struct {
		resource string
		host     topo.HostID
	}{{"cpu@X", "X"}, {"cpu@Y", "Y"}, {"net:X->Y", "Y"}} {
		b, err := broker.NewLocal(r.resource, 100)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Deploy(r.host, b); err != nil {
			t.Fatal(err)
		}
		brokers[r.resource] = b
	}
	rt.Start()
	t.Cleanup(rt.Stop)
	return rt, clock, brokers
}

// pipeService is the two-component, two-level service of the proxy
// tests: "best" (rank 2) holds 30 cpu@X / 20 cpu@Y / 40 net, "ok"
// (rank 1) holds 10 / 8 / 10.
func pipeService(t *testing.T) (*svc.Service, svc.Binding) {
	t.Helper()
	a := &svc.Component{
		ID: "a", In: []svc.Level{lvl("A0", 0)},
		Out: []svc.Level{lvl("hi", 1), lvl("lo", 2)},
		Translate: svc.TranslationTable{
			"A0": {"hi": {"cpu": 30}, "lo": {"cpu": 10}},
		}.Func(),
		Resources: []string{"cpu"},
	}
	b := &svc.Component{
		ID: "b",
		In: []svc.Level{lvl("in-hi", 1), lvl("in-lo", 2)},
		Out: []svc.Level{
			lvl("best", 10), lvl("ok", 11),
		},
		Translate: svc.TranslationTable{
			"in-hi": {"best": {"cpu": 20, "net": 40}},
			"in-lo": {"best": {"cpu": 35, "net": 25}, "ok": {"cpu": 8, "net": 10}},
		}.Func(),
		Resources: []string{"cpu", "net"},
	}
	service := svc.MustService("pipe", []*svc.Component{a, b},
		[]svc.Edge{{From: "a", To: "b"}}, []string{"best", "ok"})
	binding := svc.Binding{
		"a": {"cpu": "cpu@X"},
		"b": {"cpu": "cpu@Y", "net": "net:X->Y"},
	}
	return service, binding
}

func establish(t *testing.T, rt *proxy.Runtime, planner core.Planner) *proxy.Session {
	t.Helper()
	service, binding := pipeService(t)
	s, err := rt.Establish("X", proxy.SessionSpec{Service: service, Binding: binding, Planner: planner})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPolicyDefaults(t *testing.T) {
	p := Policy{}.withDefaults()
	if p != DefaultPolicy() {
		t.Errorf("zero policy normalized to %+v, want defaults %+v", p, DefaultPolicy())
	}
	// An inverted band collapses onto the high watermark instead of
	// creating a region where both directions fire.
	p = Policy{HighWater: 0.5, LowWater: 0.9}.withDefaults()
	if p.LowWater != p.HighWater {
		t.Errorf("inverted watermarks kept: low %g, high %g", p.LowWater, p.HighWater)
	}
	if p.FloorRank < 1 {
		t.Errorf("floor rank %d below 1", p.FloorRank)
	}
}

// TestHysteresisUnderOscillatingLoad is the no-flap tentpole: a square
// wave of external contention toggling every tick — far faster than the
// cooldown — must bound each session's renegotiations by duration /
// cooldown, with the hysteresis band absorbing ticks and the cooldown
// suppressing the rest. The session books stay audit-clean on every
// single tick.
func TestHysteresisUnderOscillatingLoad(t *testing.T) {
	rt, clock, brokers := world(t)
	reg := obs.New()
	metrics := obs.NewAdaptMetrics(reg)
	rt.InstrumentAdapt(metrics)

	s1 := establish(t, rt, core.Basic{})
	s2 := establish(t, rt, core.Basic{})
	for _, s := range []*proxy.Session{s1, s2} {
		if got := s.CurrentPlan().EndToEnd.Name; got != "best" {
			t.Fatalf("established at %s, want best", got)
		}
	}

	const (
		ticks    = 200
		cooldown = 10
	)
	var list []broker.Broker
	for _, b := range brokers {
		list = append(list, b)
	}
	ctrl := New(rt, Policy{
		HighWater:         0.85,
		LowWater:          0.55,
		Cooldown:          cooldown,
		MaxActionsPerTick: 4,
	}, list)
	ctrl.Instrument(metrics)

	// The square wave: external contention grabbing 95% of cpu@Y's
	// remaining availability on even ticks, released on odd ones —
	// utilization slams past the high watermark and back far faster
	// than the cooldown allows reacting.
	hot := brokers["cpu@Y"]
	var surge broker.ReservationID
	surged := false
	ctx := context.Background()
	renegotiated := 0
	for i := 0; i < ticks; i++ {
		clock.Advance(1)
		now := clock.Now()
		if i%2 == 0 && !surged {
			if avail := hot.Available(); avail > 1 {
				id, err := hot.Reserve(now, avail*0.95)
				if err != nil {
					t.Fatalf("tick %d: surge: %v", i, err)
				}
				surge, surged = id, true
			}
		} else if surged {
			if err := hot.Release(now, surge); err != nil {
				t.Fatal(err)
			}
			surged = false
		}
		for _, a := range ctrl.Tick(ctx, now) {
			if a.Err != nil {
				t.Logf("tick %d: -> %s refused: %v", i, a.Level, a.Err)
				continue
			}
			renegotiated++
			if a.ToRank < ctrl.Policy().FloorRank {
				t.Fatalf("tick %d: downgraded below the floor: %d -> %d", i, a.FromRank, a.ToRank)
			}
		}
		for _, msg := range rt.AuditSessions(1e-9) {
			t.Fatalf("tick %d: audit: %s", i, msg)
		}
	}

	// The flap bound: each session renegotiates at most once per
	// cooldown window, whatever the (much faster) load oscillation does.
	if max := 2 * (ticks/cooldown + 1); renegotiated > max {
		t.Errorf("%d renegotiations over %d ticks, cooldown bound is %d", renegotiated, ticks, max)
	}
	if renegotiated < 4 {
		t.Errorf("only %d renegotiations — the controller never adapted", renegotiated)
	}
	if got := int(metrics.Upgrades.Value() + metrics.Downgrades.Value()); got != renegotiated {
		t.Errorf("metrics count %d renegotiations, controller reported %d", got, renegotiated)
	}
	if metrics.FlapsSuppressed.Value() == 0 {
		t.Error("oscillating load suppressed no flaps — the cooldown never engaged")
	}
	if metrics.Held.Value() == 0 {
		t.Error("no tick landed in the hysteresis band")
	}

	if surged {
		if err := hot.Release(clock.Now(), surge); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range []*proxy.Session{s1, s2} {
		if err := s.Release(); err != nil {
			t.Fatal(err)
		}
	}
	for r, b := range brokers {
		if b.Reservations() != 0 {
			t.Errorf("%s holds %d reservations after drain", r, b.Reservations())
		}
	}
}

// TestAdaptationDeliversMoreQoS is the acceptance comparison, run
// deterministically: a session admitted at a degraded level during a
// capacity dip delivers strictly more QoS-seconds with the controller
// (which upgrades it once the dip passes) than without, same world and
// same timeline.
func TestAdaptationDeliversMoreQoS(t *testing.T) {
	run := func(adaptive bool) float64 {
		rt, clock, brokers := world(t)
		// A capacity dip at admission time: "best" needs 20 cpu@Y, only
		// "ok" (8) fits under a 15-unit cap.
		if err := brokers["cpu@Y"].SetCapacity(clock.Now(), 15); err != nil {
			t.Fatal(err)
		}
		s := establish(t, rt, core.Basic{})
		if got := s.CurrentPlan().EndToEnd.Name; got != "ok" {
			t.Fatalf("established at %s, want ok under the dip", got)
		}
		if err := brokers["cpu@Y"].SetCapacity(clock.Now(), 100); err != nil {
			t.Fatal(err)
		}

		var ctrl *Controller
		if adaptive {
			var list []broker.Broker
			for _, b := range brokers {
				list = append(list, b)
			}
			ctrl = New(rt, Policy{HighWater: 0.85, LowWater: 0.55, Cooldown: 1}, list)
		}
		ctx := context.Background()
		for i := 0; i < 50; i++ {
			clock.Advance(1)
			if ctrl != nil {
				ctrl.Tick(ctx, clock.Now())
			}
		}
		if adaptive {
			if got := s.CurrentPlan().EndToEnd.Name; got != "best" {
				t.Fatalf("controller never upgraded: still at %s", got)
			}
		}
		if err := s.Release(); err != nil {
			t.Fatal(err)
		}
		return rt.DeliveredQoSSeconds()
	}

	baseline := run(false)
	adapted := run(true)
	if adapted < baseline {
		t.Errorf("adaptation delivered %g QoS-seconds, baseline %g", adapted, baseline)
	}
	if adapted <= baseline {
		t.Errorf("upgrade path added nothing: adaptive %g vs baseline %g", adapted, baseline)
	}
}
