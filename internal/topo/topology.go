// Package topo provides the simulated network substrate: hosts, network
// links, and static routing between hosts. It models the environment of
// figure 9 of the paper — high performance servers, client domains, and
// the high speed links connecting them — and supplies the link paths over
// which two-level end-to-end network resources are composed (section 3).
package topo

import (
	"fmt"
	"sort"
)

// HostID identifies an end host (a server such as H1, or a client domain
// gateway such as D3 — the paper abstracts all client machines of a domain
// behind their domain).
type HostID string

// LinkID identifies a network link, e.g. L7.
type LinkID string

// Link is an undirected network link between two hosts.
type Link struct {
	ID   LinkID
	A, B HostID
}

// Other returns the endpoint of the link opposite to h.
func (l Link) Other(h HostID) (HostID, bool) {
	switch h {
	case l.A:
		return l.B, true
	case l.B:
		return l.A, true
	}
	return "", false
}

// Topology is an undirected multigraph of hosts and links with
// precomputed minimum-hop routes between every pair of hosts. Routes are
// deterministic: among equal-hop-count paths the one visiting
// lexicographically smaller link IDs first wins.
type Topology struct {
	hosts []HostID
	links map[LinkID]Link
	adj   map[HostID][]Link
	// routes[a][b] is the ordered list of link IDs on the route a->b.
	routes map[HostID]map[HostID][]LinkID
}

// New builds a topology from hosts and links and precomputes all routes.
func New(hosts []HostID, links []Link) (*Topology, error) {
	t := &Topology{
		links:  make(map[LinkID]Link, len(links)),
		adj:    make(map[HostID][]Link, len(hosts)),
		routes: make(map[HostID]map[HostID][]LinkID, len(hosts)),
	}
	seen := make(map[HostID]bool, len(hosts))
	for _, h := range hosts {
		if h == "" {
			return nil, fmt.Errorf("topo: empty host ID")
		}
		if seen[h] {
			return nil, fmt.Errorf("topo: duplicate host %s", h)
		}
		seen[h] = true
		t.hosts = append(t.hosts, h)
		t.adj[h] = nil
	}
	for _, l := range links {
		if l.ID == "" {
			return nil, fmt.Errorf("topo: empty link ID")
		}
		if _, dup := t.links[l.ID]; dup {
			return nil, fmt.Errorf("topo: duplicate link %s", l.ID)
		}
		if !seen[l.A] || !seen[l.B] {
			return nil, fmt.Errorf("topo: link %s references unknown host (%s-%s)", l.ID, l.A, l.B)
		}
		if l.A == l.B {
			return nil, fmt.Errorf("topo: link %s is a self-loop on %s", l.ID, l.A)
		}
		t.links[l.ID] = l
		t.adj[l.A] = append(t.adj[l.A], l)
		t.adj[l.B] = append(t.adj[l.B], l)
	}
	for h := range t.adj {
		ls := t.adj[h]
		sort.Slice(ls, func(i, j int) bool { return ls[i].ID < ls[j].ID })
	}
	if err := t.computeRoutes(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustNew is New that panics on error, for static environments.
func MustNew(hosts []HostID, links []Link) *Topology {
	t, err := New(hosts, links)
	if err != nil {
		panic(err)
	}
	return t
}

// computeRoutes runs BFS from every host. BFS visits neighbors in sorted
// link-ID order, making routes deterministic.
func (t *Topology) computeRoutes() error {
	for _, src := range t.hosts {
		type hop struct {
			via  LinkID
			prev HostID
		}
		parent := map[HostID]hop{src: {}}
		queue := []HostID{src}
		for len(queue) > 0 {
			h := queue[0]
			queue = queue[1:]
			for _, l := range t.adj[h] {
				nxt, _ := l.Other(h)
				if _, done := parent[nxt]; done {
					continue
				}
				parent[nxt] = hop{via: l.ID, prev: h}
				queue = append(queue, nxt)
			}
		}
		t.routes[src] = make(map[HostID][]LinkID, len(t.hosts))
		for _, dst := range t.hosts {
			if dst == src {
				t.routes[src][dst] = nil
				continue
			}
			p, ok := parent[dst]
			if !ok {
				return fmt.Errorf("topo: host %s unreachable from %s", dst, src)
			}
			var path []LinkID
			for cur := dst; cur != src; {
				path = append(path, p.via)
				cur = p.prev
				p = parent[cur]
			}
			// Reverse into src->dst order.
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			t.routes[src][dst] = path
		}
	}
	return nil
}

// Hosts returns all host IDs in definition order.
func (t *Topology) Hosts() []HostID {
	out := make([]HostID, len(t.hosts))
	copy(out, t.hosts)
	return out
}

// Links returns all links sorted by ID.
func (t *Topology) Links() []Link {
	out := make([]Link, 0, len(t.links))
	for _, l := range t.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Link returns the link with the given ID.
func (t *Topology) Link(id LinkID) (Link, bool) {
	l, ok := t.links[id]
	return l, ok
}

// HasHost reports whether the host exists.
func (t *Topology) HasHost(h HostID) bool {
	_, ok := t.adj[h]
	return ok
}

// Route returns the ordered link IDs of the minimum-hop route from a to
// b. The route from a host to itself is empty.
func (t *Topology) Route(a, b HostID) ([]LinkID, error) {
	m, ok := t.routes[a]
	if !ok {
		return nil, fmt.Errorf("topo: unknown host %s", a)
	}
	p, ok := m[b]
	if !ok {
		return nil, fmt.Errorf("topo: unknown host %s", b)
	}
	out := make([]LinkID, len(p))
	copy(out, p)
	return out, nil
}

// Hops returns the number of links on the route from a to b.
func (t *Topology) Hops(a, b HostID) (int, error) {
	p, err := t.Route(a, b)
	if err != nil {
		return 0, err
	}
	return len(p), nil
}
