package topo

import "fmt"

// This file builds the simulated distributed environment of figure 9 of
// the paper: four high performance servers H1-H4, client machines in
// eight domains D1-D8 (abstracted behind one gateway host per domain),
// and fourteen high speed links L1-L14.
//
// The paper does not print the exact wiring, but it fixes two anchors:
// there are exactly 14 links, and a session from a client in D2
// requesting S4 uses the proxy component on H1 — i.e. the proxy host for
// domain Di is H⌈i/2⌉, the server "closest" to the domain. We therefore
// wire each domain to its proxy server with one access link (8 links) and
// connect the servers with a ring plus both diagonals (6 links), giving
// 14 links and multi-hop, link-sharing routes between servers.

// Figure 9 host names.
const (
	H1 HostID = "H1"
	H2 HostID = "H2"
	H3 HostID = "H3"
	H4 HostID = "H4"
)

// NumServers is the number of high performance servers in figure 9.
const NumServers = 4

// NumDomains is the number of client domains in figure 9.
const NumDomains = 8

// ServerHost returns the host ID of server i (1-based): H1..H4.
func ServerHost(i int) HostID {
	if i < 1 || i > NumServers {
		panic(fmt.Sprintf("topo: server index %d out of range 1..%d", i, NumServers))
	}
	return HostID(fmt.Sprintf("H%d", i))
}

// DomainHost returns the host ID of the gateway of domain i (1-based):
// D1..D8.
func DomainHost(i int) HostID {
	if i < 1 || i > NumDomains {
		panic(fmt.Sprintf("topo: domain index %d out of range 1..%d", i, NumDomains))
	}
	return HostID(fmt.Sprintf("D%d", i))
}

// ProxyServerFor returns the index (1-based) of the server hosting the
// proxy component for clients of domain i: ⌈i/2⌉, matching the paper's
// worked example (D2 -> H1).
func ProxyServerFor(domain int) int {
	if domain < 1 || domain > NumDomains {
		panic(fmt.Sprintf("topo: domain index %d out of range 1..%d", domain, NumDomains))
	}
	return (domain + 1) / 2
}

// Figure9 builds the figure-9 environment topology.
func Figure9() *Topology {
	hosts := make([]HostID, 0, NumServers+NumDomains)
	for i := 1; i <= NumServers; i++ {
		hosts = append(hosts, ServerHost(i))
	}
	for i := 1; i <= NumDomains; i++ {
		hosts = append(hosts, DomainHost(i))
	}
	links := []Link{
		// Server backbone: ring plus diagonals.
		{ID: "L1", A: H1, B: H2},
		{ID: "L2", A: H2, B: H3},
		{ID: "L3", A: H3, B: H4},
		{ID: "L4", A: H4, B: H1},
		{ID: "L5", A: H1, B: H3},
		{ID: "L6", A: H2, B: H4},
	}
	// Access links: domain Di attaches to its proxy server H⌈i/2⌉ via
	// link L(6+i).
	for i := 1; i <= NumDomains; i++ {
		links = append(links, Link{
			ID: LinkID(fmt.Sprintf("L%d", 6+i)),
			A:  DomainHost(i),
			B:  ServerHost(ProxyServerFor(i)),
		})
	}
	return MustNew(hosts, links)
}
