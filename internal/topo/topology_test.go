package topo

import (
	"testing"
	"testing/quick"
)

func square() *Topology {
	return MustNew(
		[]HostID{"A", "B", "C", "D"},
		[]Link{
			{ID: "1", A: "A", B: "B"},
			{ID: "2", A: "B", B: "C"},
			{ID: "3", A: "C", B: "D"},
			{ID: "4", A: "D", B: "A"},
		})
}

func TestRouteMinHop(t *testing.T) {
	s := square()
	r, err := s.Route("A", "C")
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 {
		t.Fatalf("A->C hops = %d, want 2", len(r))
	}
	r, err = s.Route("A", "B")
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 1 || r[0] != "1" {
		t.Fatalf("A->B = %v", r)
	}
	if h, _ := s.Hops("A", "A"); h != 0 {
		t.Fatalf("self hops = %d", h)
	}
}

func TestRouteDeterministic(t *testing.T) {
	s := square()
	first, _ := s.Route("A", "C")
	for i := 0; i < 10; i++ {
		again, _ := s.Route("A", "C")
		if len(again) != len(first) {
			t.Fatal("route length changed")
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("route changed: %v vs %v", first, again)
			}
		}
	}
}

func TestRouteUnknownHost(t *testing.T) {
	s := square()
	if _, err := s.Route("A", "Z"); err == nil {
		t.Fatal("expected unknown host error")
	}
	if _, err := s.Route("Z", "A"); err == nil {
		t.Fatal("expected unknown host error")
	}
}

func TestRouteReturnsCopy(t *testing.T) {
	s := square()
	r, _ := s.Route("A", "C")
	r[0] = "clobber"
	again, _ := s.Route("A", "C")
	if again[0] == "clobber" {
		t.Fatal("Route aliases internal state")
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name  string
		hosts []HostID
		links []Link
	}{
		{"empty host", []HostID{""}, nil},
		{"dup host", []HostID{"A", "A"}, nil},
		{"empty link id", []HostID{"A", "B"}, []Link{{ID: "", A: "A", B: "B"}}},
		{"dup link", []HostID{"A", "B"}, []Link{{ID: "1", A: "A", B: "B"}, {ID: "1", A: "A", B: "B"}}},
		{"unknown endpoint", []HostID{"A"}, []Link{{ID: "1", A: "A", B: "Z"}}},
		{"self loop", []HostID{"A"}, []Link{{ID: "1", A: "A", B: "A"}}},
		{"disconnected", []HostID{"A", "B"}, nil},
	}
	for _, tc := range cases {
		if _, err := New(tc.hosts, tc.links); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestLinkOther(t *testing.T) {
	l := Link{ID: "1", A: "A", B: "B"}
	if o, ok := l.Other("A"); !ok || o != "B" {
		t.Fatalf("Other(A) = %v %v", o, ok)
	}
	if o, ok := l.Other("B"); !ok || o != "A" {
		t.Fatalf("Other(B) = %v %v", o, ok)
	}
	if _, ok := l.Other("C"); ok {
		t.Fatal("Other(C) should fail")
	}
}

func TestFigure9Shape(t *testing.T) {
	f := Figure9()
	if got := len(f.Hosts()); got != NumServers+NumDomains {
		t.Fatalf("hosts = %d, want %d", got, NumServers+NumDomains)
	}
	if got := len(f.Links()); got != 14 {
		t.Fatalf("links = %d, want 14 (L1-L14)", got)
	}
	// The paper's worked example: a client in D2 requesting S4 uses the
	// proxy on H1.
	if ProxyServerFor(2) != 1 {
		t.Fatalf("ProxyServerFor(2) = %d, want 1", ProxyServerFor(2))
	}
	if ProxyServerFor(7) != 4 || ProxyServerFor(8) != 4 {
		t.Fatal("domains 7,8 must use H4")
	}
	// Every domain reaches its proxy server in exactly one hop.
	for d := 1; d <= NumDomains; d++ {
		h, err := f.Hops(DomainHost(d), ServerHost(ProxyServerFor(d)))
		if err != nil {
			t.Fatal(err)
		}
		if h != 1 {
			t.Errorf("domain %d to proxy: %d hops, want 1", d, h)
		}
	}
	// Every server pair is at most 2 hops apart (ring + diagonals).
	for i := 1; i <= NumServers; i++ {
		for j := 1; j <= NumServers; j++ {
			h, err := f.Hops(ServerHost(i), ServerHost(j))
			if err != nil {
				t.Fatal(err)
			}
			if i != j && (h < 1 || h > 2) {
				t.Errorf("H%d->H%d: %d hops", i, j, h)
			}
		}
	}
}

func TestFigure9LinkNames(t *testing.T) {
	f := Figure9()
	for i := 1; i <= 14; i++ {
		id := LinkID([]string{"L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9", "L10", "L11", "L12", "L13", "L14"}[i-1])
		if _, ok := f.Link(id); !ok {
			t.Errorf("missing link %s", id)
		}
	}
}

func TestServerDomainHostPanics(t *testing.T) {
	for _, f := range []func(){
		func() { ServerHost(0) },
		func() { ServerHost(5) },
		func() { DomainHost(0) },
		func() { DomainHost(9) },
		func() { ProxyServerFor(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPropertyRoutesSymmetricLength(t *testing.T) {
	f := Figure9()
	hosts := f.Hosts()
	check := func(i, j uint8) bool {
		a := hosts[int(i)%len(hosts)]
		b := hosts[int(j)%len(hosts)]
		ha, err1 := f.Hops(a, b)
		hb, err2 := f.Hops(b, a)
		return err1 == nil && err2 == nil && ha == hb
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRouteEndpointsConnect(t *testing.T) {
	f := Figure9()
	hosts := f.Hosts()
	check := func(i, j uint8) bool {
		a := hosts[int(i)%len(hosts)]
		b := hosts[int(j)%len(hosts)]
		r, err := f.Route(a, b)
		if err != nil {
			return false
		}
		// Walk the route: it must start at a, end at b, and chain.
		cur := a
		for _, lid := range r {
			l, ok := f.Link(lid)
			if !ok {
				return false
			}
			nxt, ok := l.Other(cur)
			if !ok {
				return false
			}
			cur = nxt
		}
		return cur == b
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
