// Package spec defines a JSON document format for describing one
// service session — the QoS-Resource Model of the service, the session's
// resource binding, and the observed availability — and converts it into
// the library's model types. It backs cmd/qosplan and gives downstream
// tools a stable interchange format.
package spec

import (
	"encoding/json"
	"fmt"
	"sort"

	"qosres/internal/broker"
	"qosres/internal/qos"
	"qosres/internal/svc"
)

// Session is the top-level JSON document.
type Session struct {
	// Name of the service.
	Name string `json:"name"`
	// Components of the service.
	Components []Component `json:"components"`
	// Edges of the dependency graph.
	Edges []Edge `json:"edges"`
	// Ranking orders the sink component's output level names best-first.
	Ranking []string `json:"ranking"`
	// Binding maps component ID -> abstract resource name -> concrete
	// resource ID.
	Binding map[string]map[string]string `json:"binding"`
	// Availability maps concrete resource ID -> available amount.
	Availability map[string]float64 `json:"availability"`
	// Alpha optionally maps concrete resource ID -> availability change
	// index (default 1.0).
	Alpha map[string]float64 `json:"alpha,omitempty"`
}

// Component describes one service component.
type Component struct {
	ID string `json:"id"`
	// In/Out map level name -> QoS parameter values.
	In  map[string]map[string]float64 `json:"in"`
	Out map[string]map[string]float64 `json:"out"`
	// Table maps input level -> output level -> abstract resource
	// requirements.
	Table map[string]map[string]map[string]float64 `json:"table"`
	// Resources lists the abstract resource names the component uses.
	Resources []string `json:"resources"`
	// InOrder/OutOrder optionally fix level ordering (JSON maps are
	// unordered); both default to sorted names. OutOrder matters for
	// sink components only through Ranking, but fixing it keeps QRG node
	// layouts reproducible.
	InOrder  []string `json:"inOrder,omitempty"`
	OutOrder []string `json:"outOrder,omitempty"`
}

// Edge is one dependency edge.
type Edge struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// Parse decodes a JSON document.
func Parse(data []byte) (*Session, error) {
	var s Session
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("spec: %v", err)
	}
	return &s, nil
}

// levelsOf converts a level map into ordered svc.Levels.
func levelsOf(m map[string]map[string]float64, order []string) ([]svc.Level, error) {
	if len(order) == 0 {
		for name := range m {
			order = append(order, name)
		}
		sort.Strings(order)
	}
	if len(order) != len(m) {
		return nil, fmt.Errorf("level order names %d levels, component defines %d", len(order), len(m))
	}
	var out []svc.Level
	for _, name := range order {
		params, ok := m[name]
		if !ok {
			return nil, fmt.Errorf("level order names unknown level %q", name)
		}
		keys := make([]string, 0, len(params))
		for k := range params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ps := make([]qos.Param, 0, len(keys))
		for _, k := range keys {
			ps = append(ps, qos.P(k, params[k]))
		}
		v, err := qos.NewVector(ps...)
		if err != nil {
			return nil, err
		}
		out = append(out, svc.Level{Name: name, Vector: v})
	}
	return out, nil
}

// Build converts the document into the library model: the validated
// service, the session binding, and the availability snapshot.
func (s *Session) Build() (*svc.Service, svc.Binding, *broker.Snapshot, error) {
	var comps []*svc.Component
	for _, cs := range s.Components {
		in, err := levelsOf(cs.In, cs.InOrder)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("spec: component %s: %v", cs.ID, err)
		}
		out, err := levelsOf(cs.Out, cs.OutOrder)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("spec: component %s: %v", cs.ID, err)
		}
		table := svc.TranslationTable{}
		for inName, row := range cs.Table {
			table[inName] = map[string]qos.ResourceVector{}
			for outName, req := range row {
				table[inName][outName] = qos.NewResourceVector(req)
			}
		}
		comps = append(comps, &svc.Component{
			ID:        svc.ComponentID(cs.ID),
			In:        in,
			Out:       out,
			Translate: table.Func(),
			Resources: cs.Resources,
		})
	}
	var edges []svc.Edge
	for _, e := range s.Edges {
		edges = append(edges, svc.Edge{From: svc.ComponentID(e.From), To: svc.ComponentID(e.To)})
	}
	service, err := svc.NewService(s.Name, comps, edges, s.Ranking)
	if err != nil {
		return nil, nil, nil, err
	}
	binding := svc.Binding{}
	for comp, m := range s.Binding {
		binding[svc.ComponentID(comp)] = m
	}
	snap := &broker.Snapshot{
		Avail: qos.NewResourceVector(s.Availability),
		Alpha: map[string]float64{},
	}
	for r := range s.Availability {
		snap.Alpha[r] = 1
	}
	for r, a := range s.Alpha {
		if _, known := s.Availability[r]; !known {
			return nil, nil, nil, fmt.Errorf("spec: alpha names resource %q with no availability", r)
		}
		snap.Alpha[r] = a
	}
	return service, binding, snap, nil
}

// FromModel renders a library model back into a document, the inverse of
// Build (up to level ordering, which it makes explicit). The translation
// tables are reconstructed by probing the components' translation
// functions over their level cross products.
func FromModel(service *svc.Service, binding svc.Binding, snap *broker.Snapshot) (*Session, error) {
	doc := &Session{
		Name:         service.Name,
		Ranking:      append([]string(nil), service.EndToEndRanking...),
		Binding:      map[string]map[string]string{},
		Availability: map[string]float64{},
		Alpha:        map[string]float64{},
	}
	for _, cid := range service.ComponentIDs() {
		comp := service.Components[cid]
		cs := Component{
			ID:        string(cid),
			In:        map[string]map[string]float64{},
			Out:       map[string]map[string]float64{},
			Table:     map[string]map[string]map[string]float64{},
			Resources: append([]string(nil), comp.Resources...),
		}
		for _, lv := range comp.In {
			cs.InOrder = append(cs.InOrder, lv.Name)
			cs.In[lv.Name] = paramsOf(lv.Vector)
		}
		for _, lv := range comp.Out {
			cs.OutOrder = append(cs.OutOrder, lv.Name)
			cs.Out[lv.Name] = paramsOf(lv.Vector)
		}
		for _, in := range comp.In {
			for _, out := range comp.Out {
				req, ok := comp.Translate(in, out)
				if !ok {
					continue
				}
				if cs.Table[in.Name] == nil {
					cs.Table[in.Name] = map[string]map[string]float64{}
				}
				cs.Table[in.Name][out.Name] = map[string]float64(req)
			}
		}
		doc.Components = append(doc.Components, cs)
	}
	for _, e := range service.Edges {
		doc.Edges = append(doc.Edges, Edge{From: string(e.From), To: string(e.To)})
	}
	for comp, m := range binding {
		doc.Binding[string(comp)] = m
	}
	if snap != nil {
		for r, a := range snap.Avail {
			doc.Availability[r] = a
		}
		for r, a := range snap.Alpha {
			doc.Alpha[r] = a
		}
	}
	return doc, nil
}

func paramsOf(v qos.Vector) map[string]float64 {
	out := map[string]float64{}
	for _, p := range v.Params() {
		out[p.Name] = p.Value
	}
	return out
}

// Encode renders the document as indented JSON.
func (s *Session) Encode() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
