package spec

import "testing"

// FuzzParseBuild ensures arbitrary JSON inputs never panic the parser or
// the model builder: they must either produce a valid model or a clean
// error.
func FuzzParseBuild(f *testing.F) {
	f.Add([]byte(exampleDoc))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","components":[{"id":"a","in":{"i":{"q":1}},"out":{"o":{"q":2}},"table":{"i":{"o":{"r":1}}},"resources":["r"]}],"ranking":["o"],"availability":{"ra":10},"binding":{"a":{"r":"ra"}}}`))
	f.Add([]byte(`{"components":[{"id":""}]}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Parse(data)
		if err != nil {
			return
		}
		service, binding, snap, err := doc.Build()
		if err != nil {
			return
		}
		// A built model must be internally consistent.
		if err := service.Validate(); err != nil {
			t.Fatalf("Build returned invalid service: %v", err)
		}
		_ = binding
		if snap == nil {
			t.Fatal("Build returned nil snapshot without error")
		}
	})
}
